package umzi_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"umzi"
)

func ordersDef(name string) umzi.TableDef {
	return umzi.TableDef{
		Name: name,
		Columns: []umzi.TableColumn{
			{Name: "order_id", Kind: umzi.KindInt64},
			{Name: "customer", Kind: umzi.KindInt64},
			{Name: "amount", Kind: umzi.KindFloat64},
			{Name: "region", Kind: umzi.KindString},
		},
		PrimaryKey: []string{"order_id"},
		ShardKey:   []string{"order_id"},
	}
}

var regions = []string{"amer", "emea", "apac"}

func fillOrders(t *testing.T, tbl *umzi.Table, n int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		err := tbl.Upsert(ctx, umzi.Row{
			umzi.I64(int64(i)),
			umzi.I64(int64(i % 10)),
			umzi.F64(float64(i)),
			umzi.Str(regions[i%len(regions)]),
		})
		if err != nil {
			t.Fatal(err)
		}
		if (i+1)%64 == 0 {
			if err := tbl.Groom(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tbl.Groom(); err != nil {
		t.Fatal(err)
	}
}

// TestDBQuerySurface drives the whole builder surface on 1-shard and
// 4-shard tables: point get, ordered scan, projection, aggregation,
// limit, Via, Scan destinations.
func TestDBQuerySurface(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(map[int]string{1: "single", 4: "sharded"}[shards], func(t *testing.T) {
			ctx := context.Background()
			db, err := umzi.OpenDB(umzi.DBConfig{Store: umzi.NewMemStore(umzi.LatencyModel{})})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			tbl, err := db.CreateTable(ordersDef("orders"), umzi.TableOptions{
				Shards: shards,
				Index:  umzi.IndexSpec{Sort: []string{"order_id"}},
				Secondaries: []umzi.SecondaryIndexSpec{{
					Name:      "by_customer",
					IndexSpec: umzi.IndexSpec{Equality: []string{"customer"}, Included: []string{"amount"}},
				}},
			})
			if err != nil {
				t.Fatal(err)
			}
			fillOrders(t, tbl, 500)

			// Point get: full primary key pinned.
			row, found, err := tbl.Query().Where(umzi.Eq("order_id", umzi.I64(123))).One(ctx)
			if err != nil || !found {
				t.Fatalf("point get: found=%v err=%v", found, err)
			}
			if row[2].Float() != 123 {
				t.Fatalf("point get amount = %v, want 123", row[2].Float())
			}

			// Ordered scan with bounds, projection and Scan destinations.
			rows, err := tbl.Query().
				Where(umzi.And(umzi.Ge("order_id", umzi.I64(100)), umzi.Le("order_id", umzi.I64(109)))).
				Select("order_id", "amount").
				OrderBy("order_id").
				Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			var got []int64
			for rows.Next() {
				var id int64
				var amount float64
				if err := rows.Scan(&id, &amount); err != nil {
					t.Fatal(err)
				}
				if float64(id) != amount {
					t.Fatalf("row %d has amount %v", id, amount)
				}
				got = append(got, id)
			}
			if err := rows.Err(); err != nil {
				t.Fatal(err)
			}
			rows.Close()
			if len(got) != 10 || got[0] != 100 || got[9] != 109 {
				t.Fatalf("ordered scan ids = %v", got)
			}

			// Limit stops the stream early.
			all, err := tbl.Query().OrderBy("order_id").Limit(7).All(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(all) != 7 || all[6][0].Int() != 6 {
				t.Fatalf("limited scan = %d rows, last %v", len(all), all[len(all)-1])
			}

			// Aggregate with GROUP BY.
			agg, err := tbl.Query().
				Where(umzi.Lt("order_id", umzi.I64(300))).
				GroupBy("region").
				Aggs(umzi.Agg{Func: umzi.AggCount, As: "n"}, umzi.Agg{Func: umzi.AggSum, Col: "amount"}).
				All(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(agg) != len(regions) {
				t.Fatalf("aggregate groups = %d, want %d", len(agg), len(regions))
			}
			var n int64
			for _, g := range agg {
				n += g[1].Int()
			}
			if n != 300 {
				t.Fatalf("aggregate total count = %d, want 300", n)
			}

			// Count convenience.
			cnt, err := tbl.Query().Where(umzi.Eq("customer", umzi.I64(3))).Count(ctx)
			if err != nil || cnt != 50 {
				t.Fatalf("count = %d (err %v), want 50", cnt, err)
			}

			// Via forces the covered secondary; verified against the
			// executor path.
			viaRows, err := tbl.Query().
				Where(umzi.Eq("customer", umzi.I64(3))).
				Select("amount").
				Via("by_customer").
				All(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(viaRows)) != cnt {
				t.Fatalf("via secondary returned %d rows, want %d", len(viaRows), cnt)
			}
		})
	}
}

// TestDBRestart is the multi-table recovery story: OpenDB on an
// existing store must bring back every table from the persisted db
// catalog — shard counts, index sets and data — in one call.
func TestDBRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	open := func() *umzi.DB {
		store, err := umzi.NewFSStore(dir, umzi.LatencyModel{})
		if err != nil {
			t.Fatal(err)
		}
		db, err := umzi.OpenDB(umzi.DBConfig{Store: store})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	ctx := context.Background()

	db := open()
	orders, err := db.CreateTable(ordersDef("orders"), umzi.TableOptions{
		Shards:   3,
		Replicas: 2,
		Index:    umzi.IndexSpec{Sort: []string{"order_id"}},
		Secondaries: []umzi.SecondaryIndexSpec{{
			Name:      "by_customer",
			IndexSpec: umzi.IndexSpec{Equality: []string{"customer"}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	events, err := db.CreateTable(umzi.TableDef{
		Name: "events",
		Columns: []umzi.TableColumn{
			{Name: "stream", Kind: umzi.KindInt64},
			{Name: "offset", Kind: umzi.KindInt64},
		},
		PrimaryKey: []string{"stream", "offset"},
		ShardKey:   []string{"stream"},
	}, umzi.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fillOrders(t, orders, 200)
	for i := 0; i < 50; i++ {
		if err := events.Upsert(ctx, umzi.Row{umzi.I64(int64(i % 5)), umzi.I64(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := events.Groom(); err != nil {
		t.Fatal(err)
	}
	if err := orders.PostGroom(); err != nil {
		t.Fatal(err)
	}
	if err := orders.SyncIndex(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: no CreateTable calls — everything must come back from
	// the catalog.
	db2 := open()
	defer db2.Close()
	names := db2.Tables()
	if len(names) != 2 || names[0] != "orders" || names[1] != "events" {
		t.Fatalf("recovered tables = %v", names)
	}
	orders2, err := db2.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	if orders2.NumShards() != 3 {
		t.Fatalf("orders recovered with %d shards, want 3", orders2.NumShards())
	}
	ix := orders2.Indexes()
	if len(ix) != 1 || ix[0].Name != "by_customer" {
		t.Fatalf("orders recovered secondaries = %v", ix)
	}
	cnt, err := orders2.Query().Count(ctx)
	if err != nil || cnt != 200 {
		t.Fatalf("orders count after restart = %d (err %v), want 200", cnt, err)
	}
	row, found, err := orders2.Query().Where(umzi.Eq("order_id", umzi.I64(42))).One(ctx)
	if err != nil || !found || row[2].Float() != 42 {
		t.Fatalf("point get after restart: row=%v found=%v err=%v", row, found, err)
	}
	// Table-level options beyond the topology must survive the restart
	// too: the table was created with 2 multi-master replicas, so
	// ingesting through replica 1 must still work.
	if err := orders2.UpsertReplica(ctx, 1, umzi.Row{
		umzi.I64(9999), umzi.I64(0), umzi.F64(1), umzi.Str("amer"),
	}); err != nil {
		t.Fatalf("replica 1 upsert after restart: %v", err)
	}
	events2, err := db2.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	cnt, err = events2.Query().Where(umzi.Eq("stream", umzi.I64(2))).Count(ctx)
	if err != nil || cnt != 10 {
		t.Fatalf("events stream 2 count after restart = %d (err %v), want 10", cnt, err)
	}
}

// TestDBMultiTableTx stages rows into two tables in one transaction.
func TestDBMultiTableTx(t *testing.T) {
	ctx := context.Background()
	db, err := umzi.OpenDB(umzi.DBConfig{Store: umzi.NewMemStore(umzi.LatencyModel{})})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	a, err := db.CreateTable(ordersDef("a"), umzi.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.CreateTable(ordersDef("b"), umzi.TableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		row := umzi.Row{umzi.I64(int64(i)), umzi.I64(0), umzi.F64(1), umzi.Str("amer")}
		if err := tx.Upsert("a", row); err != nil {
			t.Fatal(err)
		}
		if err := tx.Upsert("b", row); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []*umzi.Table{a, b} {
		if err := tbl.Groom(); err != nil {
			t.Fatal(err)
		}
		cnt, err := tbl.Query().Count(ctx)
		if err != nil || cnt != 10 {
			t.Fatalf("table %s count = %d (err %v), want 10", tbl.Name(), cnt, err)
		}
	}
	// A cancelled context refuses the commit.
	tx2, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Upsert("a", umzi.Row{umzi.I64(99), umzi.I64(0), umzi.F64(1), umzi.Str("amer")}); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if err := tx2.Commit(cancelled); err == nil {
		t.Fatal("commit with cancelled context succeeded")
	}
}

// TestDBCrashRecoveryDurability is the DB-layer durability story: a
// whole-process crash (the DB dropped without Close) after acknowledged
// upserts loses nothing on reopen — OpenDB recovers every table AND its
// un-groomed commit-log tail in one call, under the durability options
// persisted in the catalog.
func TestDBCrashRecoveryDurability(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	open := func() *umzi.DB {
		store, err := umzi.NewFSStore(dir, umzi.LatencyModel{})
		if err != nil {
			t.Fatal(err)
		}
		// The CI durability tier (UMZI_FSYNC=1, -run Recovery) re-runs
		// this test against real fsync costs and ordering.
		if os.Getenv("UMZI_FSYNC") != "" {
			store.SetFsync(true)
		}
		db, err := umzi.OpenDB(umzi.DBConfig{Store: store})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	ctx := context.Background()

	db := open()
	orders, err := db.CreateTable(ordersDef("orders"), umzi.TableOptions{
		Shards:     3,
		Durability: umzi.DurabilityOptions{SyncPolicy: umzi.SyncPerCommit, SegmentBytes: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 100 rows groomed, then 37 more acknowledged but never groomed.
	fillOrders(t, orders, 100)
	if err := orders.Groom(); err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 137; i++ {
		err := orders.Upsert(ctx, umzi.Row{
			umzi.I64(int64(i)), umzi.I64(int64(i % 10)), umzi.F64(float64(i)), umzi.Str(regions[i%len(regions)]),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if orders.LiveCount() == 0 {
		t.Fatal("test expects an un-groomed tail")
	}
	// Crash: drop everything without Close.
	db, orders = nil, nil

	db2 := open()
	defer db2.Close()
	orders2, err := db2.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	if got := orders2.Durability(); got.SyncPolicy != umzi.SyncPerCommit || got.SegmentBytes != 4096 {
		t.Fatalf("durability options not recovered from the catalog: %+v", got)
	}
	if got := orders2.LiveCount(); got != 37 {
		t.Fatalf("replayed live tail = %d rows, want 37", got)
	}
	cnt, err := orders2.Query().At(umzi.MaxTS).IncludeLive().Count(ctx)
	if err != nil || cnt != 137 {
		t.Fatalf("count after crash recovery = %d (err %v), want 137", cnt, err)
	}
	// The tail grooms normally and the per-shard logs drain.
	if err := orders2.Groom(); err != nil {
		t.Fatal(err)
	}
	for shard, st := range orders2.WALStatus() {
		if st.Mark != st.MaxSeq {
			t.Fatalf("shard %d: mark %d != max seq %d after groom", shard, st.Mark, st.MaxSeq)
		}
		if st.Segments != 0 {
			t.Fatalf("shard %d: %d log segments survive a full groom", shard, st.Segments)
		}
	}
	cnt, err = orders2.Query().Count(ctx)
	if err != nil || cnt != 137 {
		t.Fatalf("groomed count after recovery = %d (err %v), want 137", cnt, err)
	}
}
