// Benchmarks regenerating the paper's evaluation (§8) through the Go
// testing harness: one benchmark per figure plus one per ablation study.
// Each iteration runs the figure's full sweep at the tiny scale so
// `go test -bench=.` finishes quickly; run `cmd/umzi-bench` for the
// paper-shaped tables at small or paper scale.
package umzi_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"umzi"
	"umzi/internal/bench"
)

func benchFigure(b *testing.B, f func(bench.Scale) (*bench.Result, error)) {
	b.Helper()
	s := bench.TinyScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig08IndexBuild regenerates Figure 8 (index build time vs run
// size for the I1/I2/I3 definitions).
func BenchmarkFig08IndexBuild(b *testing.B) { benchFigure(b, bench.Fig08IndexBuild) }

// BenchmarkFig09SingleRun regenerates Figure 9 (single-run batched
// lookups, sequential and random query batches).
func BenchmarkFig09SingleRun(b *testing.B) { benchFigure(b, bench.Fig09SingleRun) }

// BenchmarkFig10MultiRunSeq regenerates Figure 10 (multi-run queries over
// sequentially ingested keys: batch-size, run-count and scan-range
// sweeps).
func BenchmarkFig10MultiRunSeq(b *testing.B) { benchFigure(b, bench.Fig10MultiRunSeq) }

// BenchmarkFig11MultiRunRand regenerates Figure 11 (the Figure 10 sweeps
// with randomly ingested keys).
func BenchmarkFig11MultiRunRand(b *testing.B) { benchFigure(b, bench.Fig11MultiRunRand) }

// BenchmarkFig12ConcurrentReaders regenerates Figure 12 (end-to-end
// lookup latency under a growing number of concurrent readers).
func BenchmarkFig12ConcurrentReaders(b *testing.B) { benchFigure(b, bench.Fig12ConcurrentReaders) }

// BenchmarkFig13UpdateRates regenerates Figure 13 (end-to-end lookup
// latency across IoT update rates p = 0..100%).
func BenchmarkFig13UpdateRates(b *testing.B) { benchFigure(b, bench.Fig13UpdateRates) }

// BenchmarkFig14PurgeLevels regenerates Figure 14 (lookup latency with
// none/half/all runs purged from the SSD cache).
func BenchmarkFig14PurgeLevels(b *testing.B) { benchFigure(b, bench.Fig14PurgeLevels) }

// BenchmarkFig15Evolve regenerates Figure 15 (post-groomer and index
// evolve enabled vs disabled).
func BenchmarkFig15Evolve(b *testing.B) { benchFigure(b, bench.Fig15Evolve) }

// BenchmarkAblationOffsetArray measures the offset-array ablation (A1).
func BenchmarkAblationOffsetArray(b *testing.B) { benchFigure(b, bench.AblationOffsetArray) }

// BenchmarkAblationReconcile measures set vs priority-queue
// reconciliation (A2).
func BenchmarkAblationReconcile(b *testing.B) { benchFigure(b, bench.AblationReconcile) }

// BenchmarkAblationSynopsis measures synopsis pruning on/off (A3).
func BenchmarkAblationSynopsis(b *testing.B) { benchFigure(b, bench.AblationSynopsis) }

// BenchmarkAblationBatchSort measures batched vs individual lookups (A4).
func BenchmarkAblationBatchSort(b *testing.B) { benchFigure(b, bench.AblationBatchSort) }

// BenchmarkAblationMergePolicy sweeps the merge knobs K and T (A5).
func BenchmarkAblationMergePolicy(b *testing.B) { benchFigure(b, bench.AblationMergePolicy) }

// BenchmarkAblationNonPersisted measures write traffic with non-persisted
// levels (A6).
func BenchmarkAblationNonPersisted(b *testing.B) { benchFigure(b, bench.AblationNonPersisted) }

// BenchmarkAblationAggPushdown runs the aggregation pushdown vs
// client-side sweep (A7).
func BenchmarkAblationAggPushdown(b *testing.B) { benchFigure(b, bench.AblationAggPushdown) }

// BenchmarkFigS1ShardScaling regenerates Figure S1 (the scatter-gather
// shard-count sweep, an extension beyond the paper's single-shard
// evaluation).
func BenchmarkFigS1ShardScaling(b *testing.B) { benchFigure(b, bench.FigS1ShardScaling) }

// BenchmarkFigS4Serving regenerates Figure S4 (the serving layer's
// client-count sweep over real TCP, with and without write admission
// control) — so the figure, server boot included, runs on every PR via
// bench-smoke.
func BenchmarkFigS4Serving(b *testing.B) { benchFigure(b, bench.FigS4Serving) }

// Scatter-gather benchmarks: the same dataset partitioned across 1, 2, 4
// and 8 shards, queried through the sharded engine. Shared storage
// carries a simulated per-read latency (as the Figure 14 benchmark does)
// and there is no SSD cache, so index reads hit shared storage — the
// regime scatter-gather is built for: per-shard reads overlap instead of
// queueing behind a single index instance. Expect the 4-shard ordered
// scan to beat the 1-shard baseline by roughly the shard count.

const (
	shardBenchRows  = 8_000
	shardBenchBatch = 256
)

// newShardBenchEngine builds an n-shard ledger (single-column primary
// key that is both sharding and sort key, so every scan scatters) with
// shardBenchRows rows, through the same builder the Figure S1 sweep
// uses so both measure the same workload.
func newShardBenchEngine(b *testing.B, name string, shards int) *umzi.ShardedEngine {
	b.Helper()
	eng, err := bench.NewShardedLedger(name, shards, shardBenchRows,
		umzi.LatencyModel{PerOp: 100 * time.Microsecond})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	return eng
}

// BenchmarkShardedScan measures the full ordered index-only scan (every
// shard scanned concurrently, results sort-merged) at growing shard
// counts over the same data.
func BenchmarkShardedScan(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			eng := newShardBenchEngine(b, fmt.Sprintf("bscan%d", shards), shards)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := eng.IndexOnlyScan(nil, nil, nil, umzi.QueryOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != shardBenchRows {
					b.Fatalf("scan returned %d rows, want %d", len(rows), shardBenchRows)
				}
			}
			b.ReportMetric(float64(shardBenchRows*b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkAggPushdown compares the analytical executor against the
// client-side plan it replaces, on a low-selectivity aggregation over a
// 4-shard orders table (amount <= 1% of the key space; COUNT +
// SUM(amount)). The pushdown path ships per-shard partial aggregates —
// sum/count pairs — to the coordinator and skips non-qualifying blocks
// by their min/max synopses; the client-side path scatter-gathers every
// record to the coordinator and filters and aggregates there. Expect
// the pushdown to win by well over 2x.
func BenchmarkAggPushdown(b *testing.B) {
	const shards = 4
	eng, err := bench.NewShardedOrders("baggpush", shards, shardBenchRows,
		umzi.LatencyModel{PerOp: 100 * time.Microsecond})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	threshold := int64(shardBenchRows/100) - 1 // 1% selectivity
	plan := bench.AggPushdownPlan(threshold)
	wantCount := int64(shardBenchRows / 100)
	wantSum := wantCount * (wantCount - 1) / 2 // amounts are 0..threshold

	b.Run("pushdown", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := eng.Execute(plan, umzi.QueryOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if res.Rows[0][0].Int() != wantCount || res.Rows[0][1].Int() != wantSum {
				b.Fatalf("pushdown aggregate = %v, want (%d, %d)", res.Rows[0], wantCount, wantSum)
			}
		}
	})
	b.Run("client-side", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			count, sum, err := bench.ClientSideAggregate(eng, threshold)
			if err != nil {
				b.Fatal(err)
			}
			if count != wantCount || sum != wantSum {
				b.Fatalf("client aggregate = (%d, %d), want (%d, %d)", count, sum, wantCount, wantSum)
			}
		}
	})
}

// BenchmarkSecondaryLookup compares a selective equality query on a
// non-key column served by its covering secondary index (the executor
// picks it automatically) against the same plan forced onto the
// zone-scan path. The secondary column has 256 distinct values over the
// dataset, so the query selects ~0.4% of the rows; the index path runs
// one secondary range scan plus a primary back-check per candidate and
// never touches a data block (COUNT + SUM over an included column),
// while the scan path reconciles every row of every block. Expect the
// index plan to win by well over 5x at this selectivity.
func BenchmarkSecondaryLookup(b *testing.B) {
	const (
		shards  = 4
		rows    = 4 * shardBenchRows
		regions = 256
	)
	eng, err := bench.NewSecondaryOrders("bseclook", shards, rows, regions, umzi.LatencyModel{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	plan := bench.SecondaryLookupPlan(bench.SecondaryRegionName(regions / 2))
	want, err := eng.Execute(plan, umzi.QueryOptions{NoIndexSelection: true})
	if err != nil {
		b.Fatal(err)
	}

	check := func(b *testing.B, res *umzi.QueryResult) {
		b.Helper()
		if len(res.Rows) != 1 ||
			res.Rows[0][0].Int() != want.Rows[0][0].Int() ||
			res.Rows[0][1].Int() != want.Rows[0][1].Int() {
			b.Fatalf("result %v, want %v", res.Rows, want.Rows)
		}
	}
	b.Run("index", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := eng.Execute(plan, umzi.QueryOptions{})
			if err != nil {
				b.Fatal(err)
			}
			check(b, res)
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := eng.Execute(plan, umzi.QueryOptions{NoIndexSelection: true})
			if err != nil {
				b.Fatal(err)
			}
			check(b, res)
		}
	})
}

// BenchmarkFigS5EncodedScan regenerates Figure S5 (encoded vectorized
// scan vs the scalar executor across selectivities, plus the encoded
// on-store footprint against the plain layout).
func BenchmarkFigS5EncodedScan(b *testing.B) { benchFigure(b, bench.FigS5EncodedScan) }

// BenchmarkVectorizedScan compares the default vectorized executor
// against the preserved scalar row-at-a-time path on a full-table
// aggregation over a 4-shard orders table. Both paths see identical
// blocks and the same min/max synopses; the difference is pure
// evaluation strategy — selection bitmaps over encoded columns and
// direct row emission vs per-row Value calls through the multi-version
// winner map. This is the Figure S5 headline cell as a plain Go
// benchmark; expect the vectorized path to win by over 3x.
func BenchmarkVectorizedScan(b *testing.B) {
	const shards = 4
	eng, err := bench.NewShardedOrders("bvecscan", shards, shardBenchRows,
		umzi.LatencyModel{PerOp: 100 * time.Microsecond})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	plan := bench.AggPushdownPlan(int64(shardBenchRows)) // selects every row
	wantCount := int64(shardBenchRows)
	wantSum := wantCount * (wantCount - 1) / 2

	check := func(b *testing.B, res *umzi.QueryResult) {
		b.Helper()
		if res.Rows[0][0].Int() != wantCount || res.Rows[0][1].Int() != wantSum {
			b.Fatalf("aggregate = %v, want (%d, %d)", res.Rows[0], wantCount, wantSum)
		}
	}
	b.Run("vectorized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := eng.Execute(plan, umzi.QueryOptions{})
			if err != nil {
				b.Fatal(err)
			}
			check(b, res)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := eng.Execute(plan, umzi.QueryOptions{ScalarExec: true})
			if err != nil {
				b.Fatal(err)
			}
			check(b, res)
		}
	})
}

// BenchmarkAblationSecondaryIndex runs the index-selection vs zone-scan
// sweep (A8).
func BenchmarkAblationSecondaryIndex(b *testing.B) { benchFigure(b, bench.AblationSecondaryIndex) }

// BenchmarkShardedLookup measures a random point-lookup batch split
// across the shards and executed concurrently.
func BenchmarkShardedLookup(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			eng := newShardBenchEngine(b, fmt.Sprintf("blook%d", shards), shards)
			rng := rand.New(rand.NewSource(11))
			keys := make([]umzi.LookupKey, shardBenchBatch)
			for i := range keys {
				keys[i] = umzi.LookupKey{Sort: []umzi.Value{umzi.I64(rng.Int63n(shardBenchRows))}}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, found, err := eng.GetBatch(keys, umzi.QueryOptions{})
				if err != nil {
					b.Fatal(err)
				}
				for j, f := range found {
					if !f {
						b.Fatalf("key %d not found", j)
					}
				}
			}
			b.ReportMetric(float64(shardBenchBatch*b.N)/b.Elapsed().Seconds(), "lookups/s")
		})
	}
}

// BenchmarkGroupCommit measures the durable write path: ingest
// throughput (rows/s, reported as rows_per_sec) under per-commit
// durability with 1 writer (the naive baseline: every transaction pays
// the simulated device sync alone) and with 8 concurrent writers
// sharing segment writes through group commit, plus the SyncOff
// ceiling. The group-commit acceptance bar — >=5x the naive per-commit
// rate at >=8 writers — is what Figure S3 sweeps in full
// (cmd/umzi-bench -figure s3).
func BenchmarkGroupCommit(b *testing.B) {
	lat := bench.WALDeviceLatency()
	cases := []struct {
		name    string
		opts    umzi.DurabilityOptions
		writers int
	}{
		{"per-commit/writers=1", umzi.DurabilityOptions{SyncPolicy: umzi.SyncPerCommit}, 1},
		{"per-commit/writers=8", umzi.DurabilityOptions{SyncPolicy: umzi.SyncPerCommit, GroupCommitWindow: time.Millisecond}, 8},
		{"off/writers=8", umzi.DurabilityOptions{SyncPolicy: umzi.SyncOff}, 8},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var sum float64
			for i := 0; i < b.N; i++ {
				tput, err := bench.WALIngest(fmt.Sprintf("bgc-%s-%d", c.name, i), c.opts, c.writers, 24, 4, lat)
				if err != nil {
					b.Fatal(err)
				}
				sum += tput
			}
			b.ReportMetric(sum/float64(b.N), "rows_per_sec")
		})
	}
}
