// Benchmarks regenerating the paper's evaluation (§8) through the Go
// testing harness: one benchmark per figure plus one per ablation study.
// Each iteration runs the figure's full sweep at the tiny scale so
// `go test -bench=.` finishes quickly; run `cmd/umzi-bench` for the
// paper-shaped tables at small or paper scale.
package umzi_test

import (
	"testing"

	"umzi/internal/bench"
)

func benchFigure(b *testing.B, f func(bench.Scale) (*bench.Result, error)) {
	b.Helper()
	s := bench.TinyScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig08IndexBuild regenerates Figure 8 (index build time vs run
// size for the I1/I2/I3 definitions).
func BenchmarkFig08IndexBuild(b *testing.B) { benchFigure(b, bench.Fig08IndexBuild) }

// BenchmarkFig09SingleRun regenerates Figure 9 (single-run batched
// lookups, sequential and random query batches).
func BenchmarkFig09SingleRun(b *testing.B) { benchFigure(b, bench.Fig09SingleRun) }

// BenchmarkFig10MultiRunSeq regenerates Figure 10 (multi-run queries over
// sequentially ingested keys: batch-size, run-count and scan-range
// sweeps).
func BenchmarkFig10MultiRunSeq(b *testing.B) { benchFigure(b, bench.Fig10MultiRunSeq) }

// BenchmarkFig11MultiRunRand regenerates Figure 11 (the Figure 10 sweeps
// with randomly ingested keys).
func BenchmarkFig11MultiRunRand(b *testing.B) { benchFigure(b, bench.Fig11MultiRunRand) }

// BenchmarkFig12ConcurrentReaders regenerates Figure 12 (end-to-end
// lookup latency under a growing number of concurrent readers).
func BenchmarkFig12ConcurrentReaders(b *testing.B) { benchFigure(b, bench.Fig12ConcurrentReaders) }

// BenchmarkFig13UpdateRates regenerates Figure 13 (end-to-end lookup
// latency across IoT update rates p = 0..100%).
func BenchmarkFig13UpdateRates(b *testing.B) { benchFigure(b, bench.Fig13UpdateRates) }

// BenchmarkFig14PurgeLevels regenerates Figure 14 (lookup latency with
// none/half/all runs purged from the SSD cache).
func BenchmarkFig14PurgeLevels(b *testing.B) { benchFigure(b, bench.Fig14PurgeLevels) }

// BenchmarkFig15Evolve regenerates Figure 15 (post-groomer and index
// evolve enabled vs disabled).
func BenchmarkFig15Evolve(b *testing.B) { benchFigure(b, bench.Fig15Evolve) }

// BenchmarkAblationOffsetArray measures the offset-array ablation (A1).
func BenchmarkAblationOffsetArray(b *testing.B) { benchFigure(b, bench.AblationOffsetArray) }

// BenchmarkAblationReconcile measures set vs priority-queue
// reconciliation (A2).
func BenchmarkAblationReconcile(b *testing.B) { benchFigure(b, bench.AblationReconcile) }

// BenchmarkAblationSynopsis measures synopsis pruning on/off (A3).
func BenchmarkAblationSynopsis(b *testing.B) { benchFigure(b, bench.AblationSynopsis) }

// BenchmarkAblationBatchSort measures batched vs individual lookups (A4).
func BenchmarkAblationBatchSort(b *testing.B) { benchFigure(b, bench.AblationBatchSort) }

// BenchmarkAblationMergePolicy sweeps the merge knobs K and T (A5).
func BenchmarkAblationMergePolicy(b *testing.B) { benchFigure(b, bench.AblationMergePolicy) }

// BenchmarkAblationNonPersisted measures write traffic with non-persisted
// levels (A6).
func BenchmarkAblationNonPersisted(b *testing.B) { benchFigure(b, bench.AblationNonPersisted) }
