package umzi_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"umzi"
)

// Cancellation tests (run under -race in CI): cancelling a context
// mid-scatter-gather must surface ctx.Err() promptly and leave no
// goroutine behind — the per-shard stream workers are cancelled and
// waited out by Rows.Close, so the goroutine count returns to its
// pre-query baseline.

// cancelTestTable builds an 8-shard table over a deliberately slow
// store (per-op latency on every shared-storage read) so a full scan
// takes long enough to cancel mid-flight.
func cancelTestTable(t *testing.T, rows int) (*umzi.DB, *umzi.Table) {
	t.Helper()
	db, err := umzi.OpenDB(umzi.DBConfig{
		Store: umzi.NewMemStore(umzi.LatencyModel{PerOp: 200 * time.Microsecond}),
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(umzi.TableDef{
		Name: "ledger",
		Columns: []umzi.TableColumn{
			{Name: "id", Kind: umzi.KindInt64},
			{Name: "amount", Kind: umzi.KindInt64},
		},
		PrimaryKey: []string{"id"},
		ShardKey:   []string{"id"},
	}, umzi.TableOptions{
		Shards: 8,
		Index:  umzi.IndexSpec{Sort: []string{"id"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	batch := make([]umzi.Row, 0, 256)
	for i := 0; i < rows; i++ {
		batch = append(batch, umzi.Row{umzi.I64(int64(i)), umzi.I64(int64(i) % 97)})
		if len(batch) == cap(batch) || i == rows-1 {
			if err := tbl.Upsert(ctx, batch...); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
		if (i+1)%500 == 0 {
			if err := tbl.Groom(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tbl.Groom(); err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (with a little scheduler slack) or the deadline passes.
func waitGoroutines(t *testing.T, baseline int, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("%s: %d goroutines still running (baseline %d):\n%s",
				what, n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestQueryCancellationMidScatterGather(t *testing.T) {
	db, tbl := cancelTestTable(t, 4000)
	defer db.Close()
	baseline := runtime.NumGoroutine()

	for iter := 0; iter < 10; iter++ {
		ctx, cancel := context.WithCancel(context.Background())
		rows, err := tbl.Query().OrderBy("id").Run(ctx)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		// Pull a few rows so every shard worker is in flight, then
		// cancel mid-stream.
		for i := 0; i < 5 && rows.Next(); i++ {
		}
		start := time.Now()
		cancel()
		for rows.Next() { //nolint:revive // drain until the cancel lands
		}
		elapsed := time.Since(start)
		if err := rows.Err(); !errors.Is(err, context.Canceled) {
			t.Fatalf("iter %d: Err() = %v, want context.Canceled", iter, err)
		}
		if elapsed > 2*time.Second {
			t.Fatalf("iter %d: cancellation took %v to surface", iter, elapsed)
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, baseline, "after cancel")
	}
}

func TestQueryEarlyCloseStopsWorkers(t *testing.T) {
	db, tbl := cancelTestTable(t, 4000)
	defer db.Close()
	baseline := runtime.NumGoroutine()

	for iter := 0; iter < 10; iter++ {
		rows, err := tbl.Query().OrderBy("id").Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3 && rows.Next(); i++ {
		}
		// Close with thousands of rows unread: workers must be cancelled
		// and waited out, not left streaming into abandoned channels.
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, baseline, "after early close")
	}
}

func TestQueryDeadlineExceeded(t *testing.T) {
	db, tbl := cancelTestTable(t, 4000)
	defer db.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	rows, err := tbl.Query().OrderBy("id").Run(ctx)
	if err != nil {
		// The deadline may already have fired during planning.
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Run: %v", err)
		}
		return
	}
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Err() = %v, want context.DeadlineExceeded", err)
	}
	rows.Close()
}
