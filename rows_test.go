package umzi

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"umzi/internal/keyenc"
)

// Scan destination/kind matrix for scanValue: every supported pairing,
// the numeric narrowing overflow errors (ErrRange), and the rejection
// paths for mismatched kinds and unsupported destination types.
func TestScanValueMatrix(t *testing.T) {
	t.Run("int64-dest", func(t *testing.T) {
		var d int64
		if err := scanValue(I64(-42), &d); err != nil || d != -42 {
			t.Fatalf("int64<-int64: d=%d err=%v", d, err)
		}
		if err := scanValue(U64(7), &d); err != nil || d != 7 {
			t.Fatalf("int64<-uint64 small: d=%d err=%v", d, err)
		}
		err := scanValue(U64(math.MaxInt64+1), &d)
		if !errors.Is(err, ErrRange) {
			t.Fatalf("int64<-uint64 overflow: err=%v, want ErrRange", err)
		}
		if err := scanValue(F64(1.5), &d); err == nil || errors.Is(err, ErrRange) {
			t.Fatalf("int64<-float64: err=%v, want a non-range kind error", err)
		}
	})
	t.Run("int-dest", func(t *testing.T) {
		var d int
		if err := scanValue(I64(99), &d); err != nil || d != 99 {
			t.Fatalf("int<-int64: d=%d err=%v", d, err)
		}
		if err := scanValue(U64(12), &d); err != nil || d != 12 {
			t.Fatalf("int<-uint64 small: d=%d err=%v", d, err)
		}
		if err := scanValue(U64(math.MaxUint64), &d); !errors.Is(err, ErrRange) {
			t.Fatalf("int<-uint64 overflow: err=%v, want ErrRange", err)
		}
		if math.MaxInt == math.MaxInt32 {
			// 32-bit platforms: int64 values past 31 bits must not wrap.
			if err := scanValue(I64(math.MaxInt32+1), &d); !errors.Is(err, ErrRange) {
				t.Fatalf("int<-int64 overflow on 32-bit: err=%v, want ErrRange", err)
			}
		}
	})
	t.Run("uint64-dest", func(t *testing.T) {
		var d uint64
		if err := scanValue(U64(math.MaxUint64), &d); err != nil || d != math.MaxUint64 {
			t.Fatalf("uint64<-uint64: d=%d err=%v", d, err)
		}
		if err := scanValue(I64(1), &d); err == nil {
			t.Fatal("uint64<-int64 should be rejected (negative values cannot round-trip)")
		}
	})
	t.Run("float64-dest", func(t *testing.T) {
		var d float64
		for _, v := range []Value{F64(2.5), I64(3), U64(4)} {
			if err := scanValue(v, &d); err != nil {
				t.Fatalf("float64<-%v: %v", v.Kind(), err)
			}
		}
		if d != 4 {
			t.Fatalf("float64<-uint64 = %v, want 4", d)
		}
		if err := scanValue(Str("x"), &d); err == nil {
			t.Fatal("float64<-string should be rejected")
		}
	})
	t.Run("string-and-bytes-dest", func(t *testing.T) {
		var s string
		var b []byte
		if err := scanValue(Str("hi"), &s); err != nil || s != "hi" {
			t.Fatalf("string<-string: %q %v", s, err)
		}
		if err := scanValue(Raw([]byte("raw")), &s); err != nil || s != "raw" {
			t.Fatalf("string<-bytes: %q %v", s, err)
		}
		if err := scanValue(Str("bs"), &b); err != nil || string(b) != "bs" {
			t.Fatalf("bytes<-string: %q %v", b, err)
		}
		if err := scanValue(I64(1), &s); err == nil {
			t.Fatal("string<-int64 should be rejected")
		}
	})
	t.Run("bool-dest", func(t *testing.T) {
		var d bool
		if err := scanValue(Bool(true), &d); err != nil || !d {
			t.Fatalf("bool<-bool: %v %v", d, err)
		}
		if err := scanValue(I64(1), &d); err == nil {
			t.Fatal("bool<-int64 should be rejected")
		}
	})
	t.Run("value-dest", func(t *testing.T) {
		var d Value
		if err := scanValue(U64(9), &d); err != nil || d.Kind() != keyenc.KindUint64 || d.Uint() != 9 {
			t.Fatalf("Value<-uint64: %v %v", d, err)
		}
	})
	t.Run("unsupported-dest", func(t *testing.T) {
		var d int32
		err := scanValue(I64(1), &d)
		if err == nil || !strings.Contains(err.Error(), "unsupported destination") {
			t.Fatalf("int32 dest: err=%v, want unsupported-destination error", err)
		}
	})
}

func rowsFixture(t *testing.T) *Table {
	t.Helper()
	db, err := OpenDB(DBConfig{Store: NewMemStore(LatencyModel{})})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	tbl, err := db.CreateTable(TableDef{
		Name: "t",
		Columns: []TableColumn{
			{Name: "id", Kind: KindInt64},
			{Name: "seq", Kind: KindInt64},
			{Name: "big", Kind: KindUint64},
			{Name: "amt", Kind: KindFloat64},
		},
		PrimaryKey: []string{"id", "seq"},
		ShardKey:   []string{"id"},
	}, TableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// End-to-end Scan through a streaming result, including the overflow
// error surfacing with the column name attached.
func TestRowsScan(t *testing.T) {
	ctx := context.Background()
	tbl := rowsFixture(t)
	if err := tbl.Upsert(ctx,
		Row{I64(1), I64(0), U64(5), F64(1.5)},
		Row{I64(2), I64(0), U64(math.MaxUint64), F64(2.5)},
	); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Groom(); err != nil {
		t.Fatal(err)
	}

	rows, err := tbl.Query().At(MaxTS).IncludeLive().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var sum float64
	for rows.Next() {
		var id, seq int64
		var big int64
		var amt float64
		err := rows.Scan(&id, &seq, &big, &amt)
		switch id2 := rows.Values()[0].Int(); id2 {
		case 1:
			if err != nil || big != 5 {
				t.Fatalf("row 1: big=%d err=%v", big, err)
			}
		default:
			// Row 2 carries MaxUint64: narrowing into *int64 must fail
			// with ErrRange and name the column.
			if !errors.Is(err, ErrRange) || !strings.Contains(err.Error(), `"big"`) {
				t.Fatalf("row 2: err=%v, want ErrRange mentioning column big", err)
			}
			var u uint64
			if err := rows.Scan(&id, &seq, &u, &amt); err != nil || u != math.MaxUint64 {
				t.Fatalf("row 2 via *uint64: u=%d err=%v", u, err)
			}
		}
		sum += amt
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if sum != 4 {
		t.Fatalf("amt sum = %v, want 4", sum)
	}
	if err := rows.Scan(new(int64)); err == nil {
		t.Fatal("Scan with wrong arity after exhaustion should error")
	}
}

// After Next returns false the stream has fully released: Values goes
// stale (nil), Err stays nil on clean exhaustion, and Close — first and
// repeated — is a no-op that must not re-release the query.
func TestRowsExhaustionThenClose(t *testing.T) {
	ctx := context.Background()
	tbl := rowsFixture(t)
	if err := tbl.Upsert(ctx, Row{I64(1), I64(0), U64(1), F64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Groom(); err != nil {
		t.Fatal(err)
	}

	// Exhaustion path: index-served (OrderBy) and executor-served plans
	// release through different teardown code; check both.
	for name, run := range map[string]func() (*Rows, error){
		"executor": func() (*Rows, error) {
			return tbl.Query().At(MaxTS).IncludeLive().Run(ctx)
		},
		"index": func() (*Rows, error) {
			return tbl.Query().Where(Eq("id", I64(1))).OrderBy("seq").Run(ctx)
		},
	} {
		rows, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n := 0
		for rows.Next() {
			n++
		}
		if n != 1 {
			t.Fatalf("%s: drained %d rows, want 1", name, n)
		}
		if got := rows.Values(); got != nil {
			t.Fatalf("%s: Values after exhaustion = %v, want nil", name, got)
		}
		if err := rows.Err(); err != nil {
			t.Fatalf("%s: Err after clean exhaustion = %v", name, err)
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("%s: Close after exhaustion = %v", name, err)
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("%s: second Close = %v", name, err)
		}
	}

	// Early-close path: Close before exhaustion, then again.
	rows, err := tbl.Query().At(MaxTS).IncludeLive().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if rows.Next() {
		t.Fatal("Next after Close should report exhaustion")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
}
