// Smoke tests that compile and run every program under examples/ and
// cmd/, so example drift breaks `go test ./...` instead of rotting
// silently. Each program must build, exit zero and print something it
// is expected to print.
package umzi_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"umzi"
)

// buildProgram compiles one main package into dir and returns the binary
// path.
func buildProgram(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func TestExamplesAndCommandsSmoke(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH")
	}
	dir := t.TempDir()

	cases := []struct {
		pkg  string
		args []string
		want string // substring expected on stdout
	}{
		{"examples/quickstart", nil, ""},
		{"examples/iot", nil, ""},
		{"examples/htap", nil, ""},
		{"examples/recovery", nil, ""},
		{"examples/durability", nil, "zero acknowledged rows lost"},
		{"examples/sharded", []string{"-rows", "20000", "-shards", "4"}, "global id order verified"},
		{"examples/analytics", []string{"-rows", "20000", "-shards", "4"}, "pushdown verified against client-side aggregation"},
		{"examples/secondary", []string{"-rows", "20000", "-customers", "128", "-shards", "4"}, "index plan, zone scan and covered scan agree"},
		{"examples/server", nil, "local and remote agree"},
		{"cmd/umzi-server", []string{"-selftest"}, "selftest ok"},
		{"cmd/umzi-bench", []string{"-list"}, "available figures"},
		{"cmd/umzi-bench", []string{"-figure", "s1", "-scale", "tiny"}, "Figure S1"},
		{"cmd/umzi-bench", []string{"-figure", "s2", "-scale", "tiny"}, "Figure S2"},
		{"cmd/umzi-bench", []string{"-figure", "s3", "-scale", "tiny"}, "Figure S3"},
		{"cmd/umzi-bench", []string{"-figure", "a7", "-scale", "tiny"}, "Ablation A7"},
		{"cmd/umzi-bench", []string{"-figure", "a8", "-scale", "tiny"}, "Ablation A8"},
		{"cmd/umzi-inspect", []string{"-store", dir}, ""},
		{"cmd/umzi-workload", []string{"-list"}, "htap.OrderAnalytics"},
		{"cmd/umzi-workload", []string{"-run", "stream.EarlyClose"}, `"passed": true`},
	}

	bins := map[string]string{}
	for _, c := range cases {
		if _, ok := bins[c.pkg]; !ok {
			bins[c.pkg] = buildProgram(t, dir, c.pkg)
		}
	}

	for _, c := range cases {
		name := c.pkg
		if len(c.args) > 0 {
			name += " " + strings.Join(c.args, " ")
		}
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command(bins[c.pkg], c.args...)
			cmd.Env = os.Environ()
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%s: %v\n%s", name, err, out)
			}
			if c.want != "" && !strings.Contains(string(out), c.want) {
				t.Fatalf("%s: output missing %q:\n%s", name, c.want, out)
			}
		})
	}
}

// TestInspectStoreSmoke materializes a two-table DB — one of them
// sharded, with a secondary index — in a filesystem store and checks
// both umzi-inspect modes: the default -store mode lists every table of
// the DB catalog, and -table prints one table's whole index set, all
// from shared storage alone.
func TestInspectStoreSmoke(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH")
	}
	ctx := context.Background()
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	store, err := umzi.NewFSStore(storeDir, umzi.LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := umzi.OpenDB(umzi.DBConfig{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	orders, err := db.CreateTable(umzi.TableDef{
		Name: "orders",
		Columns: []umzi.TableColumn{
			{Name: "id", Kind: umzi.KindInt64},
			{Name: "region", Kind: umzi.KindString},
		},
		PrimaryKey: []string{"id"},
		ShardKey:   []string{"id"},
	}, umzi.TableOptions{
		Shards: 2,
		Secondaries: []umzi.SecondaryIndexSpec{{
			Name:      "by_region",
			IndexSpec: umzi.IndexSpec{Equality: []string{"region"}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(umzi.TableDef{
		Name:       "events",
		Columns:    []umzi.TableColumn{{Name: "seq", Kind: umzi.KindInt64}},
		PrimaryKey: []string{"seq"},
	}, umzi.TableOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := orders.Upsert(ctx, umzi.Row{umzi.I64(i), umzi.Str("r")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := orders.Groom(); err != nil {
		t.Fatal(err)
	}
	if err := orders.PostGroom(); err != nil {
		t.Fatal(err)
	}
	if err := orders.SyncIndex(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	bin := buildProgram(t, dir, "cmd/umzi-inspect")
	out, err := exec.Command(bin, "-store", storeDir).CombinedOutput()
	if err != nil {
		t.Fatalf("umzi-inspect -store: %v\n%s", err, out)
	}
	for _, want := range []string{"2 tables", "orders (2 shards)", "events (1 shards)", "by_region", "post-groomed"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("inspect -store output missing %q:\n%s", want, out)
		}
	}
	out, err = exec.Command(bin, "-store", storeDir, "-table", "orders/shard-000").CombinedOutput()
	if err != nil {
		t.Fatalf("umzi-inspect -table: %v\n%s", err, out)
	}
	for _, want := range []string{"2 indexes", "(primary)", "by_region", "IndexedPSN=1",
		"data blocks", "bytes on store", "plain layout", "+bloom"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("inspect -table output missing %q:\n%s", want, out)
		}
	}
}
