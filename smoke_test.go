// Smoke tests that compile and run every program under examples/ and
// cmd/, so example drift breaks `go test ./...` instead of rotting
// silently. Each program must build, exit zero and print something it
// is expected to print.
package umzi_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildProgram compiles one main package into dir and returns the binary
// path.
func buildProgram(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func TestExamplesAndCommandsSmoke(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH")
	}
	dir := t.TempDir()

	cases := []struct {
		pkg  string
		args []string
		want string // substring expected on stdout
	}{
		{"examples/quickstart", nil, ""},
		{"examples/iot", nil, ""},
		{"examples/htap", nil, ""},
		{"examples/recovery", nil, ""},
		{"examples/sharded", []string{"-rows", "20000", "-shards", "4"}, "global id order verified"},
		{"examples/analytics", []string{"-rows", "20000", "-shards", "4"}, "pushdown verified against client-side aggregation"},
		{"cmd/umzi-bench", []string{"-list"}, "available figures"},
		{"cmd/umzi-bench", []string{"-figure", "s1", "-scale", "tiny"}, "Figure S1"},
		{"cmd/umzi-bench", []string{"-figure", "a7", "-scale", "tiny"}, "Ablation A7"},
		{"cmd/umzi-inspect", []string{"-store", dir}, ""},
	}

	bins := map[string]string{}
	for _, c := range cases {
		if _, ok := bins[c.pkg]; !ok {
			bins[c.pkg] = buildProgram(t, dir, c.pkg)
		}
	}

	for _, c := range cases {
		name := c.pkg
		if len(c.args) > 0 {
			name += " " + strings.Join(c.args, " ")
		}
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command(bins[c.pkg], c.args...)
			cmd.Env = os.Environ()
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%s: %v\n%s", name, err, out)
			}
			if c.want != "" && !strings.Contains(string(out), c.want) {
				t.Fatalf("%s: output missing %q:\n%s", name, c.want, out)
			}
		})
	}
}
