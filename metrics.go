package umzi

import (
	"net/http"

	"umzi/internal/obs"
	"umzi/internal/storage"
)

// Observability surface. Every DB owns one metric registry; all engines
// of all its tables register into it, labeled by (shard-qualified) table
// name. Three ways out:
//
//   - DB.Metrics() — a point-in-time snapshot for programs and tests;
//   - DB.MetricsHandler() — an http.Handler serving Prometheus text
//     (default) or JSON (?format=json / Accept: application/json);
//   - DB.MetricsText(filter) — the aligned human-readable table that
//     umzi-inspect -metrics prints.
//
// Per-query tracing rides on the same package: Query.Explain() attaches
// a trace capturing the compiled plan, per-shard spans, blocks read vs.
// synopsis-skipped, live-union sizes and back-check counts.

// MetricsSnapshot is a point-in-time view of every registered metric.
type MetricsSnapshot = obs.Snapshot

// Metric is one metric instance within a MetricsSnapshot.
type Metric = obs.MetricSnapshot

// MetricLabels is the label set of a metric instance.
type MetricLabels = obs.Labels

// HistSnapshot is a histogram's snapshot: count, sum, min/max, mean and
// nearest-rank p50/p90/p99 over a recent-sample reservoir.
type HistSnapshot = obs.HistSnapshot

// QueryTrace captures one query's execution profile; obtain one with
// Query.Explain and read it with Snapshot or String after the query ran.
type QueryTrace = obs.QueryTrace

// TraceSnapshot is a QueryTrace's point-in-time view.
type TraceSnapshot = obs.TraceSnapshot

// TraceSpan is one shard's contribution to a query trace.
type TraceSpan = obs.TraceSpan

// Metrics snapshots every engine metric of the DB: WAL and group-commit
// activity, groom cycles and commit-ack→groomed-visibility freshness,
// block cache and synopsis skip counters, per-plan query counts and
// latencies, live-zone and log gauges, and shared-store I/O totals.
func (db *DB) Metrics() *MetricsSnapshot {
	return db.obs.Snapshot()
}

// Registry exposes the DB's metric registry so subsystems layered on
// top of a DB (the network server's admission control and connection
// accounting) can register their own metric families next to the engine
// ones — one registry, one exposition surface.
func (db *DB) Registry() *obs.Registry { return db.obs }

// MetricsHandler returns an http.Handler exposing the DB's metrics:
// Prometheus text format by default, JSON when the request asks for it
// (?format=json or an Accept header containing application/json).
//
//	http.Handle("/metrics", db.MetricsHandler())
func (db *DB) MetricsHandler() http.Handler {
	return obs.Handler(db.obs)
}

// MetricsText renders the DB's metrics as an aligned human-readable
// table. A non-empty tableFilter keeps only metrics of that table
// (including its shards); durations print in milliseconds.
func (db *DB) MetricsText(tableFilter string) string {
	return obs.FormatTable(db.obs.Snapshot(), tableFilter)
}

// registerStorageGauges wires shared-store I/O totals and SSD-cache
// state into the registry, when the backends expose them (the built-in
// MemStore/FSStore do; a custom ObjectStore without Stats simply goes
// unreported).
func (db *DB) registerStorageGauges() {
	if s, ok := db.store.(interface{ Stats() *storage.Stats }); ok {
		st := s.Stats()
		db.obs.GaugeFunc("store_reads", "object reads issued to the shared store", nil,
			func() int64 { return st.Reads.Load() })
		db.obs.GaugeFunc("store_writes", "object writes issued to the shared store", nil,
			func() int64 { return st.Writes.Load() })
		db.obs.GaugeFunc("store_deletes", "object deletes issued to the shared store", nil,
			func() int64 { return st.Deletes.Load() })
		db.obs.GaugeFunc("store_bytes_read", "bytes read from the shared store", nil,
			func() int64 { return st.BytesRead.Load() })
		db.obs.GaugeFunc("store_bytes_written", "bytes written to the shared store", nil,
			func() int64 { return st.BytesWrite.Load() })
	}
	if c := db.cache; c != nil {
		db.obs.GaugeFunc("cache_ssd_hits", "SSD-cache block hits", nil,
			func() int64 { return c.Stats().Hits })
		db.obs.GaugeFunc("cache_ssd_misses", "SSD-cache block misses", nil,
			func() int64 { return c.Stats().Misses })
		db.obs.GaugeFunc("cache_ssd_used_bytes", "SSD-cache bytes in use", nil,
			func() int64 { return c.Stats().Used })
		db.obs.GaugeFunc("cache_ssd_blocks", "SSD-cache blocks held", nil,
			func() int64 { return int64(c.Stats().Blocks) })
	}
}
