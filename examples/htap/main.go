// HTAP end-to-end: transactions and analytics running concurrently over
// one table, with the groomer, post-groomer and indexer daemons
// auto-started by the DB — the workload shape of the paper's §8.4
// experiments. An order stream updates account balances (OLTP) while an
// analytics thread repeatedly aggregates per-account history through
// the same query surface (OLAP over data that evolves groomed ->
// post-groomed underneath it).
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"umzi"
)

func main() {
	ctx := context.Background()

	// Background daemons per table: groom every 20ms, post-groom every
	// 100ms (the paper's 1s / 10min cadence, scaled down for a demo).
	db, err := umzi.OpenDB(umzi.DBConfig{
		Store:          umzi.NewMemStore(umzi.LatencyModel{PerOp: 50 * time.Microsecond}),
		Cache:          umzi.NewSSDCache(1<<22, umzi.LatencyModel{}),
		GroomEvery:     20 * time.Millisecond,
		PostGroomEvery: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	ledger, err := db.CreateTable(umzi.TableDef{
		Name: "ledger",
		Columns: []umzi.TableColumn{
			{Name: "account", Kind: umzi.KindInt64},
			{Name: "seq", Kind: umzi.KindInt64},
			{Name: "amount", Kind: umzi.KindFloat64},
			{Name: "region", Kind: umzi.KindString},
		},
		PrimaryKey:   []string{"account", "seq"},
		ShardKey:     []string{"account"},
		PartitionKey: "region",
	}, umzi.TableOptions{
		Index: umzi.IndexSpec{
			Equality: []string{"account"},
			Sort:     []string{"seq"},
			Included: []string{"amount"},
		},
		Replicas: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	regions := []string{"emea", "apac", "amer"}
	const accounts = 16
	var stop atomic.Bool
	var txns, scans atomic.Int64
	var wg sync.WaitGroup

	// OLTP: two writer threads, one per replica, streaming transactions.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(replica int) {
			defer wg.Done()
			seq := int64(replica) * 1_000_000
			for !stop.Load() {
				tx, err := db.Begin(ctx)
				if err != nil {
					return
				}
				tx.WithReplica(replica)
				for i := 0; i < 5; i++ {
					acct := (seq + int64(i)) % accounts
					row := umzi.Row{
						umzi.I64(acct),
						umzi.I64(seq + int64(i)),
						umzi.F64(float64(seq%1000) / 10),
						umzi.Str(regions[int(acct)%len(regions)]),
					}
					if err := tx.Upsert("ledger", row); err != nil {
						tx.Abort()
						return
					}
				}
				if err := tx.Commit(ctx); err != nil {
					return
				}
				seq += 5
				txns.Add(1)
				time.Sleep(200 * time.Microsecond)
			}
		}(w)
	}

	// OLAP: an analytics thread aggregating account activity — a
	// covered plan (account, seq, amount all indexed) racing the
	// pipeline underneath it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			for acct := int64(0); acct < accounts; acct++ {
				_, err := ledger.Query().
					Where(umzi.Eq("account", umzi.I64(acct))).
					Aggs(umzi.Agg{Func: umzi.AggCount}, umzi.Agg{Func: umzi.AggSum, Col: "amount"}).
					All(ctx)
				if err != nil {
					return
				}
				scans.Add(1)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Let the system run and report its shape every 100ms.
	for tick := 0; tick < 6; tick++ {
		time.Sleep(100 * time.Millisecond)
		fmt.Printf("t=%3dms txns=%-5d scans=%-5d live=%-5d snapshot=%v\n",
			(tick+1)*100, txns.Load(), scans.Load(), ledger.LiveCount(), ledger.SnapshotTS())
	}
	stop.Store(true)
	wg.Wait()

	// Final consistency check: every account's streamed history is a
	// de-duplicated sequence, and its turnover matches a pushed-down
	// aggregate of the same snapshot.
	fmt.Println("\nfinal per-account history (first 4 accounts):")
	ts := ledger.SnapshotTS()
	for acct := int64(0); acct < 4; acct++ {
		rows, err := ledger.Query().
			Where(umzi.Eq("account", umzi.I64(acct))).
			Select("seq", "amount").
			OrderBy("seq").
			At(ts).
			Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		var entries int
		var total float64
		last := int64(-1)
		for rows.Next() {
			var seq int64
			var amount float64
			if err := rows.Scan(&seq, &amount); err != nil {
				log.Fatal(err)
			}
			if seq <= last {
				log.Fatalf("account %d: sequence %d out of order (after %d)", acct, seq, last)
			}
			last = seq
			entries++
			total += amount
		}
		if err := rows.Err(); err != nil {
			log.Fatal(err)
		}
		rows.Close()

		agg, err := ledger.Query().
			Where(umzi.Eq("account", umzi.I64(acct))).
			Aggs(umzi.Agg{Func: umzi.AggCount}, umzi.Agg{Func: umzi.AggSum, Col: "amount"}).
			At(ts).
			All(ctx)
		if err != nil {
			log.Fatal(err)
		}
		var aggN int64
		var aggSum float64
		if len(agg) > 0 {
			aggN, aggSum = agg[0][0].Int(), agg[0][1].Float()
		}
		if int64(entries) != aggN || total != aggSum {
			log.Fatalf("account %d: scan found %d entries / %.1f, aggregate %d / %.1f",
				acct, entries, total, aggN, aggSum)
		}
		fmt.Printf("  account %d: %d entries, turnover %.1f (scan and aggregate agree)\n",
			acct, entries, total)
	}
}
