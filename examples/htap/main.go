// HTAP end-to-end: transactions and analytics running concurrently over
// one engine, with the groomer, post-groomer and indexer daemons in the
// background — the workload shape of the paper's §8.4 experiments. An
// order stream updates account balances (OLTP) while an analytics thread
// repeatedly scans per-account history and measures freshness (OLAP over
// data that evolves groomed -> post-groomed underneath it).
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"umzi"
)

func main() {
	eng, err := umzi.NewEngine(umzi.EngineConfig{
		Table: umzi.TableDef{
			Name: "ledger",
			Columns: []umzi.TableColumn{
				{Name: "account", Kind: umzi.KindInt64},
				{Name: "seq", Kind: umzi.KindInt64},
				{Name: "amount", Kind: umzi.KindFloat64},
				{Name: "region", Kind: umzi.KindString},
			},
			PrimaryKey:   []string{"account", "seq"},
			ShardKey:     []string{"account"},
			PartitionKey: "region",
		},
		Index: umzi.IndexSpec{
			Equality: []string{"account"},
			Sort:     []string{"seq"},
			Included: []string{"amount"},
		},
		Store:    umzi.NewMemStore(umzi.LatencyModel{PerOp: 50 * time.Microsecond}),
		Cache:    umzi.NewSSDCache(1<<22, umzi.LatencyModel{}),
		Replicas: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Background daemons: groom every 20ms, post-groom every 100ms (the
	// paper's 1s / 10min cadence, scaled down for a demo).
	eng.Start(20*time.Millisecond, 100*time.Millisecond)

	regions := []string{"emea", "apac", "amer"}
	const accounts = 16
	var stop atomic.Bool
	var txns, scans atomic.Int64
	var wg sync.WaitGroup

	// OLTP: two writer threads, one per replica, streaming transactions.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(replica int) {
			defer wg.Done()
			seq := int64(replica) * 1_000_000
			for !stop.Load() {
				tx, err := eng.Begin(replica)
				if err != nil {
					return
				}
				for i := 0; i < 5; i++ {
					acct := (seq + int64(i)) % accounts
					row := umzi.Row{
						umzi.I64(acct),
						umzi.I64(seq + int64(i)),
						umzi.F64(float64(seq%1000) / 10),
						umzi.Str(regions[int(acct)%len(regions)]),
					}
					if err := tx.Upsert(row); err != nil {
						tx.Abort()
						return
					}
				}
				if err := tx.Commit(); err != nil {
					return
				}
				seq += 5
				txns.Add(1)
				time.Sleep(200 * time.Microsecond)
			}
		}(w)
	}

	// OLAP: an analytics thread scanning account activity.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			for acct := int64(0); acct < accounts; acct++ {
				rows, err := eng.IndexOnlyScan([]umzi.Value{umzi.I64(acct)}, nil, nil, umzi.QueryOptions{})
				if err != nil {
					return
				}
				_ = rows
				scans.Add(1)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Let the system run and report its shape every 100ms.
	for tick := 0; tick < 6; tick++ {
		time.Sleep(100 * time.Millisecond)
		g, p := eng.Index().RunCounts()
		st := eng.Index().Stats()
		fmt.Printf("t=%3dms txns=%-5d scans=%-5d live=%-5d groomedRuns=%-2d postRuns=%-2d merges=%-2d evolves=%-2d covered=%d\n",
			(tick+1)*100, txns.Load(), scans.Load(), eng.LiveCount(), g, p,
			st.Merges, st.Evolves, eng.Index().MaxCoveredGroomedID())
	}
	stop.Store(true)
	wg.Wait()

	// Final consistency check: every account's scan returns a contiguous,
	// de-duplicated sequence history.
	fmt.Println("\nfinal per-account history (first 4 accounts):")
	for acct := int64(0); acct < 4; acct++ {
		recs, err := eng.Scan([]umzi.Value{umzi.I64(acct)}, nil, nil, umzi.QueryOptions{})
		if err != nil {
			log.Fatal(err)
		}
		var total float64
		for _, r := range recs {
			total += r.Row[2].Float()
		}
		fmt.Printf("  account %d: %d entries, turnover %.1f\n", acct, len(recs), total)
	}
	fmt.Printf("\nsnapshot semantics: LastGroomTS=%v MaxPSN=%d IndexedPSN=%d\n",
		eng.LastGroomTS(), eng.MaxPSN(), eng.Index().IndexedPSN())
}
