// The serving layer end to end: an umzi-server embedded in-process, a
// client.DB speaking the wire protocol to it over TCP, and the property
// the protocol exists to preserve — remote queries return exactly what
// the same queries return against the same DB locally.
//
// The program boots a server with token auth on an ephemeral port,
// creates a sharded table through the client, ingests through client
// transactions, grooms, then runs the HTAP reads from the quickstart
// twice — once in-process, once over the wire — and verifies the
// answers agree. It ends by abandoning a streaming scan mid-flight to
// show cancellation: the server stops the cursor, the connection
// returns to the pool, and the next request proceeds.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"umzi"
	"umzi/client"
	"umzi/internal/server"
)

func main() {
	ctx := context.Background()

	// The database and the server serving it. A real deployment runs
	// `umzi-server -addr :7777 -dir /data -token team=s3cret`; embedding
	// is the same three calls.
	db, err := umzi.OpenDB(umzi.DBConfig{Store: umzi.NewMemStore(umzi.LatencyModel{})})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	srv, err := server.New(server.Config{
		DB:     db,
		Tokens: map[string]string{"s3cret": "team"},
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Fatal(err)
		}
		fmt.Println("server shut down cleanly")
	}()

	// A client. Open dials and authenticates; the handle pools
	// connections and is safe for concurrent use.
	cdb, err := client.Open(client.Config{Addr: ln.Addr().String(), Token: "s3cret"})
	if err != nil {
		log.Fatal(err)
	}
	defer cdb.Close()
	fmt.Printf("connected to %s as tenant %q\n", cdb.ServerVersion(), cdb.Tenant())

	// DDL over the wire: the same TableDef the local API takes.
	orders, err := cdb.CreateTable(ctx, umzi.TableDef{
		Name: "orders",
		Columns: []umzi.TableColumn{
			{Name: "order_id", Kind: umzi.KindInt64},
			{Name: "region", Kind: umzi.KindString},
			{Name: "revenue", Kind: umzi.KindFloat64},
		},
		PrimaryKey: []string{"order_id"},
		ShardKey:   []string{"order_id"},
	}, client.TableOptions{Shards: 4, Index: umzi.IndexSpec{Sort: []string{"order_id"}}})
	if err != nil {
		log.Fatal(err)
	}

	// Transactional ingest through client transactions: rows stage
	// locally and ship in one Commit frame, applied atomically under the
	// server's write admission control.
	regions := []string{"amer", "emea", "apac"}
	const rows = 30_000
	for lo := int64(0); lo < rows; lo += 1000 {
		tx, err := cdb.Begin(ctx)
		if err != nil {
			log.Fatal(err)
		}
		for i := lo; i < lo+1000; i++ {
			row := umzi.Row{umzi.I64(i), umzi.Str(regions[i%3]), umzi.F64(float64(i % 1000))}
			if err := tx.Upsert("orders", row); err != nil {
				log.Fatal(err)
			}
		}
		if err := tx.Commit(ctx); err != nil {
			log.Fatal(err)
		}
	}
	local, err := db.Table("orders")
	if err != nil {
		log.Fatal(err)
	}
	if err := local.Groom(); err != nil {
		log.Fatal(err)
	}

	// Point read over the wire: the filter pins the primary key, the
	// server compiles a point get routed to the owning shard.
	row, found, err := orders.Query().Where(umzi.Eq("order_id", umzi.I64(42))).One(ctx)
	if err != nil || !found {
		log.Fatalf("point get: found=%v err=%v", found, err)
	}
	fmt.Println("order 42 revenue:", row[2])

	// The same analytical question asked both ways must agree — the
	// equivalence the wire protocol is tested on.
	agg := func(all func(ctx context.Context) ([][]umzi.Value, error)) map[string]int64 {
		groups, err := all(ctx)
		if err != nil {
			log.Fatal(err)
		}
		out := map[string]int64{}
		for _, g := range groups {
			out[g[0].String()] = g[1].Int()
		}
		return out
	}
	remote := agg(orders.Query().
		Where(umzi.Ge("revenue", umzi.F64(500))).
		GroupBy("region").
		Aggs(umzi.Agg{Func: umzi.AggCount, As: "orders"}).All)
	inProcess := agg(local.Query().
		Where(umzi.Ge("revenue", umzi.F64(500))).
		GroupBy("region").
		Aggs(umzi.Agg{Func: umzi.AggCount, As: "orders"}).All)
	for region, n := range inProcess {
		if remote[region] != n {
			log.Fatalf("region %s: local %d rows, remote %d", region, n, remote[region])
		}
		fmt.Printf("big orders in %s: %d\n", region, n)
	}
	fmt.Println("local and remote agree")

	// Streaming reads hold their connection until drained — or until
	// Close, which cancels the server-side cursor mid-flight and returns
	// the connection to the pool. The Ping proves the channel survived.
	stream, err := orders.Query().Select("order_id").OrderBy("order_id").Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3 && stream.Next(); i++ {
		var id int64
		if err := stream.Scan(&id); err != nil {
			log.Fatal(err)
		}
	}
	if err := stream.Close(); err != nil {
		log.Fatal(err)
	}
	if err := cdb.Ping(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("abandoned stream canceled server-side; connection reusable")
}
