// Sharded ingest and scatter-gather queries: the "large-scale" half of
// the paper's title. Wildfire hash-partitions every table by its
// sharding key across shards, each shard running its own engine and
// Umzi index instance (§2.1, §3); queries either pin to the shard that
// owns their key or fan out to all shards in parallel and merge.
//
// This program ingests a million-row ledger across 8 shards (tune with
// -rows / -shards), then demonstrates:
//
//   - lockstep grooming: one groom round advances every shard's
//     snapshot clock together, so one timestamp cuts all shards
//     consistently;
//   - an ordered scatter-gather range scan: every shard scans
//     concurrently, and a k-way sort-merge restores global id order;
//   - routed point lookups and a batched lookup split across shards.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"umzi"
)

func main() {
	rows := flag.Int("rows", 1_000_000, "total rows to ingest")
	shards := flag.Int("shards", 8, "number of table shards")
	flag.Parse()
	if *rows < 1 || *shards < 1 {
		log.Fatalf("-rows (%d) and -shards (%d) must be at least 1", *rows, *shards)
	}

	eng, err := umzi.NewShardedEngine(umzi.ShardedConfig{
		Table: umzi.TableDef{
			Name: "ledger",
			Columns: []umzi.TableColumn{
				{Name: "id", Kind: umzi.KindInt64},
				{Name: "amount", Kind: umzi.KindInt64},
			},
			PrimaryKey: []string{"id"},
			ShardKey:   []string{"id"},
		},
		Index: umzi.IndexSpec{
			// No equality columns: a pure range index over id, so every
			// scan is a global ordered scan that must touch all shards.
			Sort:     []string{"id"},
			Included: []string{"amount"},
		},
		Shards:   *shards,
		Store:    umzi.NewMemStore(umzi.LatencyModel{}),
		Replicas: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Ingest through both replicas (any replica of a shard can ingest —
	// multi-master), grooming every ~rows/8 records the way the groomer
	// daemon would every second.
	fmt.Printf("ingesting %d rows across %d shards...\n", *rows, *shards)
	start := time.Now()
	groomEvery := *rows / 8
	if groomEvery == 0 {
		groomEvery = 1
	}
	for i := 0; i < *rows; i++ {
		id := int64(i)
		if err := eng.UpsertRows(i%2, umzi.Row{umzi.I64(id), umzi.I64(id % 997)}); err != nil {
			log.Fatal(err)
		}
		if (i+1)%groomEvery == 0 {
			if err := eng.Groom(); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := eng.Groom(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("ingested and groomed in %v (%.0f rows/s)\n\n", elapsed.Round(time.Millisecond),
		float64(*rows)/elapsed.Seconds())

	// Every shard holds a hash slice of the table; the snapshot boundary
	// is shared because grooms run in lockstep.
	fmt.Printf("snapshot %v; per-shard distribution:\n", eng.SnapshotTS())
	for i := 0; i < eng.NumShards(); i++ {
		part, err := eng.Shard(i).IndexOnlyScan(nil, nil, nil, umzi.QueryOptions{TS: umzi.MaxTS})
		if err != nil {
			log.Fatal(err)
		}
		g, p := eng.Shard(i).Index().RunCounts()
		fmt.Printf("  shard %d: %7d rows, %d groomed + %d post-groomed runs\n", i, len(part), g, p)
	}

	// Ordered scatter-gather scan: ids 1000..1019 in global order even
	// though consecutive ids live on different shards.
	lo, hi := umzi.I64(1000), umzi.I64(1019)
	recs, err := eng.Scan(nil, []umzi.Value{lo}, []umzi.Value{hi}, umzi.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nordered scan ids [1000,1019] -> %d rows:\n  ", len(recs))
	for _, r := range recs {
		fmt.Printf("%d ", r.Row[0].Int())
	}
	fmt.Println()

	// A full ordered index-only scan, timed: all shards in parallel.
	start = time.Now()
	all, err := eng.IndexOnlyScan(nil, nil, nil, umzi.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull index-only ordered scan: %d rows in %v\n", len(all),
		time.Since(start).Round(time.Millisecond))
	for i := 1; i < len(all); i++ {
		if all[i][0].Int() <= all[i-1][0].Int() {
			log.Fatalf("merge order violated at %d", i)
		}
	}
	fmt.Println("global id order verified")

	// Point lookups route to the owning shard; a batch splits across
	// shards and runs concurrently.
	rec, found, err := eng.Get(nil, []umzi.Value{umzi.I64(424242 % int64(*rows))}, umzi.QueryOptions{})
	if err != nil || !found {
		log.Fatal("point lookup failed: ", err)
	}
	fmt.Printf("\npoint lookup id %d -> amount %d\n", rec.Row[0].Int(), rec.Row[1].Int())

	batch := make([]umzi.LookupKey, 1000)
	for i := range batch {
		batch[i] = umzi.LookupKey{Sort: []umzi.Value{umzi.I64(int64(i*7919) % int64(*rows))}}
	}
	start = time.Now()
	_, foundAll, err := eng.GetBatch(batch, umzi.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	for _, f := range foundAll {
		if f {
			hits++
		}
	}
	fmt.Printf("batched lookup of %d keys: %d hits in %v\n", len(batch), hits,
		time.Since(start).Round(time.Microsecond))
}
