// Sharded ingest and streaming scatter-gather queries: the
// "large-scale" half of the paper's title. A table created with
// TableOptions{Shards: N} hash-partitions by its sharding key across N
// engines, each with its own Umzi index instance (§2.1, §3) — and the
// query surface does not change: the same fluent builder pins to one
// shard or fans out to all of them, k-way merging the per-shard
// ordered streams.
//
// This program ingests a million-row ledger across 8 shards (tune with
// -rows / -shards), then demonstrates:
//
//   - lockstep grooming: one groom round advances every shard's
//     snapshot clock together, so one timestamp cuts all shards
//     consistently;
//   - an ordered scatter-gather scan streamed through a Rows cursor,
//     with global id order restored by the k-way merge;
//   - early close: a limited read of a huge ordered scan cancels the
//     per-shard workers instead of materializing the table;
//   - routed point gets through the same builder.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"umzi"
)

func main() {
	rows := flag.Int("rows", 1_000_000, "total rows to ingest")
	shards := flag.Int("shards", 8, "number of table shards")
	flag.Parse()
	if *rows < 1 || *shards < 1 {
		log.Fatalf("-rows (%d) and -shards (%d) must be at least 1", *rows, *shards)
	}
	ctx := context.Background()

	db, err := umzi.OpenDB(umzi.DBConfig{Store: umzi.NewMemStore(umzi.LatencyModel{})})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	ledger, err := db.CreateTable(umzi.TableDef{
		Name: "ledger",
		Columns: []umzi.TableColumn{
			{Name: "id", Kind: umzi.KindInt64},
			{Name: "amount", Kind: umzi.KindInt64},
		},
		PrimaryKey: []string{"id"},
		ShardKey:   []string{"id"},
	}, umzi.TableOptions{
		Shards: *shards,
		Index: umzi.IndexSpec{
			// No equality columns: a pure range index over id, so every
			// ordered scan is a global scatter-gather over all shards.
			Sort:     []string{"id"},
			Included: []string{"amount"},
		},
		Replicas: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ingest through both replicas (any replica of a shard can ingest —
	// multi-master), grooming every ~rows/8 records the way the groomer
	// daemon would every second.
	fmt.Printf("ingesting %d rows across %d shards...\n", *rows, *shards)
	start := time.Now()
	groomEvery := *rows / 8
	if groomEvery == 0 {
		groomEvery = 1
	}
	const batch = 512
	buf := make([]umzi.Row, 0, batch)
	flush := func(replica int) {
		if len(buf) == 0 {
			return
		}
		if err := ledger.UpsertReplica(ctx, replica, buf...); err != nil {
			log.Fatal(err)
		}
		buf = buf[:0]
	}
	for i := 0; i < *rows; i++ {
		id := int64(i)
		buf = append(buf, umzi.Row{umzi.I64(id), umzi.I64(id % 997)})
		if len(buf) == batch {
			flush(i % 2)
		}
		if (i+1)%groomEvery == 0 {
			flush(i % 2)
			if err := ledger.Groom(); err != nil {
				log.Fatal(err)
			}
		}
	}
	flush(0)
	if err := ledger.Groom(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("ingested and groomed in %v (%.0f rows/s)\n\n", elapsed.Round(time.Millisecond),
		float64(*rows)/elapsed.Seconds())
	fmt.Printf("snapshot %v across %d shards (lockstep grooming)\n", ledger.SnapshotTS(), ledger.NumShards())

	// Ordered scatter-gather scan: ids 1000..1019 in global order even
	// though consecutive ids live on different shards.
	got, err := ledger.Query().
		Where(umzi.And(umzi.Ge("id", umzi.I64(1000)), umzi.Le("id", umzi.I64(1019)))).
		OrderBy("id").
		All(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nordered scan ids [1000,1019] -> %d rows:\n  ", len(got))
	for _, r := range got {
		fmt.Printf("%d ", r[0].Int())
	}
	fmt.Println()

	// A full ordered scan, streamed and verified: all shards in
	// parallel, k-way merged, pulled row by row (the index covers the
	// query, so no data block is touched).
	start = time.Now()
	stream, err := ledger.Query().OrderBy("id").Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	count, prev := 0, int64(-1)
	for stream.Next() {
		id := stream.Values()[0].Int()
		if id <= prev {
			log.Fatalf("merge order violated at row %d: %d after %d", count, id, prev)
		}
		prev = id
		count++
	}
	if err := stream.Err(); err != nil {
		log.Fatal(err)
	}
	stream.Close()
	fmt.Printf("\nfull ordered stream: %d rows in %v\n", count, time.Since(start).Round(time.Millisecond))
	fmt.Println("global id order verified")

	// Early close: read 10 rows of the same full scan and stop. The
	// cursor cancels the per-shard workers — the other ~1M rows are
	// never merged, fetched or materialized.
	start = time.Now()
	stream, err = ledger.Query().OrderBy("id").Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10 && stream.Next(); i++ {
	}
	stream.Close()
	fmt.Printf("first 10 rows of the same scan via early close: %v\n", time.Since(start).Round(time.Microsecond))

	// Declaring the limit is better still: it is pushed into every
	// shard's index walk, so no shard even scans past its first 10
	// entries.
	start = time.Now()
	if _, err := ledger.Query().OrderBy("id").Limit(10).All(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same 10 rows with Limit(10) pushed into the shards: %v\n", time.Since(start).Round(time.Microsecond))

	// Point gets route to the owning shard through the same builder.
	row, found, err := ledger.Query().
		Where(umzi.Eq("id", umzi.I64(424242%int64(*rows)))).
		One(ctx)
	if err != nil || !found {
		log.Fatal("point lookup failed: ", err)
	}
	fmt.Printf("\npoint lookup id %d -> amount %d\n", row[0].Int(), row[1].Int())
}
