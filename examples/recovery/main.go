// Recovery: the crash story (§5.5), generalized to the whole database.
// A DB lives in durable, filesystem-backed shared storage: table
// definitions and shard counts in the db catalog, each table's index
// set in its own catalog, runs and data blocks as immutable objects.
// The process "crashes" (the DB is dropped without cleanup) and one
// OpenDB call recovers every table — a sharded orders table with a
// secondary index, and an events table — purely from storage, then
// keeps ingesting as if nothing happened.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"umzi"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "umzi-recovery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("shared storage at %s\n\n", dir)

	open := func() *umzi.DB {
		store, err := umzi.NewFSStore(dir, umzi.LatencyModel{})
		if err != nil {
			log.Fatal(err)
		}
		db, err := umzi.OpenDB(umzi.DBConfig{Store: store})
		if err != nil {
			log.Fatal(err)
		}
		return db
	}

	// Phase 1: create two tables, ingest, run the pipeline.
	db := open()
	orders, err := db.CreateTable(umzi.TableDef{
		Name: "orders",
		Columns: []umzi.TableColumn{
			{Name: "order_id", Kind: umzi.KindInt64},
			{Name: "customer", Kind: umzi.KindInt64},
			{Name: "amount", Kind: umzi.KindFloat64},
		},
		PrimaryKey: []string{"order_id"},
		ShardKey:   []string{"order_id"},
	}, umzi.TableOptions{
		Shards: 3,
		Index:  umzi.IndexSpec{Sort: []string{"order_id"}},
		Secondaries: []umzi.SecondaryIndexSpec{{
			Name:      "by_customer",
			IndexSpec: umzi.IndexSpec{Equality: []string{"customer"}, Included: []string{"amount"}},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	events, err := db.CreateTable(umzi.TableDef{
		Name: "events",
		Columns: []umzi.TableColumn{
			{Name: "stream", Kind: umzi.KindInt64},
			{Name: "offset", Kind: umzi.KindInt64},
		},
		PrimaryKey: []string{"stream", "offset"},
		ShardKey:   []string{"stream"},
	}, umzi.TableOptions{})
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 300; i++ {
		err := orders.Upsert(ctx, umzi.Row{
			umzi.I64(int64(i)), umzi.I64(int64(i % 7)), umzi.F64(float64(i)),
		})
		if err != nil {
			log.Fatal(err)
		}
		if i%2 == 0 {
			if err := events.Upsert(ctx, umzi.Row{umzi.I64(int64(i % 5)), umzi.I64(int64(i))}); err != nil {
				log.Fatal(err)
			}
		}
		if (i+1)%100 == 0 {
			for _, t := range []*umzi.Table{orders, events} {
				if err := t.Groom(); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	// Push part of the data through post-groom + evolve so recovery has
	// all three zones to rebuild.
	if err := orders.PostGroom(); err != nil {
		log.Fatal(err)
	}
	if err := orders.SyncIndex(); err != nil {
		log.Fatal(err)
	}

	count3 := countCustomer(ctx, orders, 3)
	fmt.Printf("before crash: tables=%v, orders(customer 3)=%d rows, events=%d streams\n",
		db.Tables(), count3, 5)

	// Phase 2: crash. No Close, no flush — the handles are just dropped.
	db = nil
	orders, events = nil, nil
	fmt.Println("\n-- crash: process state lost; only shared storage survives --")

	// Phase 3: one OpenDB recovers the whole database from the catalog.
	db2 := open()
	defer db2.Close()
	fmt.Printf("\nrecovered tables: %v\n", db2.Tables())
	orders2, err := db2.Table("orders")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orders: %d shards, secondaries %v\n", orders2.NumShards(), indexNames(orders2))
	if got := countCustomer(ctx, orders2, 3); got != count3 {
		log.Fatalf("data lost in recovery: %d != %d", got, count3)
	}
	fmt.Printf("orders(customer 3) still %d rows — nothing lost\n", count3)

	// Phase 4: life goes on — new ingest and queries on the recovered
	// tables, including the recovered secondary index.
	if err := orders2.Upsert(ctx, umzi.Row{umzi.I64(1000), umzi.I64(3), umzi.F64(1000)}); err != nil {
		log.Fatal(err)
	}
	if err := orders2.Groom(); err != nil {
		log.Fatal(err)
	}
	rows, err := orders2.Query().
		Where(umzi.Eq("customer", umzi.I64(3))).
		Select("amount").
		Via("by_customer").
		All(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npost-recovery ingest: customer 3 now has %d orders (served via the recovered secondary)\n",
		len(rows))
}

func countCustomer(ctx context.Context, tbl *umzi.Table, customer int64) int {
	rows, err := tbl.Query().Where(umzi.Eq("customer", umzi.I64(customer))).All(ctx)
	if err != nil {
		log.Fatal(err)
	}
	return len(rows)
}

func indexNames(tbl *umzi.Table) []string {
	var out []string
	for _, s := range tbl.Indexes() {
		out = append(out, s.Name)
	}
	return out
}
