// Recovery: Umzi's crash story (§5.5). The index lives in durable,
// filesystem-backed shared storage; the process "crashes" (the instance
// is dropped without cleanup) and a fresh instance recovers every run
// list, the evolve watermark and the indexed PSN purely from storage —
// then keeps ingesting as if nothing happened.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"umzi"
)

func main() {
	dir, err := os.MkdirTemp("", "umzi-recovery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("shared storage at %s\n\n", dir)

	cfg := func() umzi.Config {
		store, err := umzi.NewFSStore(dir, umzi.LatencyModel{})
		if err != nil {
			log.Fatal(err)
		}
		return umzi.Config{
			Name: "events",
			Def: umzi.IndexDef{
				Equality: []umzi.Column{{Name: "stream", Kind: umzi.KindInt64}},
				Sort:     []umzi.Column{{Name: "offset", Kind: umzi.KindInt64}},
			},
			Store: store,
			K:     2,
		}
	}

	// Phase 1: ingest five groom cycles, merge, evolve two of them.
	ix, err := umzi.New(cfg())
	if err != nil {
		log.Fatal(err)
	}
	build := func(ix *umzi.Index, cycle uint64, zone umzi.ZoneID) []umzi.Entry {
		var entries []umzi.Entry
		for i := uint32(0); i < 50; i++ {
			e, err := ix.MakeEntry(
				[]umzi.Value{umzi.I64(int64(i % 5))},
				[]umzi.Value{umzi.I64(int64(cycle)*100 + int64(i))},
				nil,
				umzi.MakeTS(cycle, i),
				umzi.RID{Zone: zone, Block: cycle, Offset: i},
			)
			if err != nil {
				log.Fatal(err)
			}
			entries = append(entries, e)
		}
		return entries
	}
	for c := uint64(1); c <= 5; c++ {
		if err := ix.BuildRun(build(ix, c, umzi.ZoneGroomed), umzi.BlockRange{Min: c, Max: c}); err != nil {
			log.Fatal(err)
		}
	}
	if err := ix.Quiesce(); err != nil {
		log.Fatal(err)
	}
	evolved := append(build(ix, 1, umzi.ZonePostGroomed), build(ix, 2, umzi.ZonePostGroomed)...)
	if err := ix.Evolve(1, evolved, umzi.BlockRange{Min: 1, Max: 2}); err != nil {
		log.Fatal(err)
	}
	g, p := ix.RunCounts()
	fmt.Printf("before crash: groomed=%d post=%d covered=%d psn=%d\n",
		g, p, ix.MaxCoveredGroomedID(), ix.IndexedPSN())
	count := countStream(ix, 3)
	fmt.Printf("stream 3 has %d events\n\n", count)

	// Phase 2: crash. No Close, no flush — the instance is just dropped.
	ix = nil
	fmt.Println("-- crash: process state lost; only shared storage survives --")
	objects, _ := filepath.Glob(filepath.Join(dir, "events", "*", "*"))
	fmt.Printf("storage holds %d objects\n\n", len(objects))

	// Phase 3: recover from storage alone.
	ix2, err := umzi.Open(cfg())
	if err != nil {
		log.Fatal(err)
	}
	defer ix2.Close()
	g, p = ix2.RunCounts()
	fmt.Printf("recovered: groomed=%d post=%d covered=%d psn=%d\n",
		g, p, ix2.MaxCoveredGroomedID(), ix2.IndexedPSN())
	if got := countStream(ix2, 3); got != count {
		log.Fatalf("data lost in recovery: %d != %d", got, count)
	}
	fmt.Printf("stream 3 still has %d events — nothing lost\n\n", count)

	// Phase 4: life goes on — new grooms and evolves on the recovered
	// index.
	if err := ix2.BuildRun(build(ix2, 6, umzi.ZoneGroomed), umzi.BlockRange{Min: 6, Max: 6}); err != nil {
		log.Fatal(err)
	}
	if err := ix2.Evolve(2, build(ix2, 3, umzi.ZonePostGroomed), umzi.BlockRange{Min: 3, Max: 3}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-recovery ingest + evolve: covered=%d psn=%d, stream 3 now %d events\n",
		ix2.MaxCoveredGroomedID(), ix2.IndexedPSN(), countStream(ix2, 3))
}

func countStream(ix *umzi.Index, stream int64) int {
	matches, err := ix.RangeScan(umzi.ScanOptions{
		Equality: []umzi.Value{umzi.I64(stream)},
		TS:       umzi.MaxTS,
	})
	if err != nil {
		log.Fatal(err)
	}
	return len(matches)
}
