// Durability: the commit log in action. Wildfire acknowledges a
// transaction only once it is in the shard's durable commit log ("the
// log is the database", §2.1): the live zone is just an in-memory view
// of the log tail, so a process crash between commit and groom loses
// nothing. This demo ingests into a filesystem-backed store under
// per-commit durability, "kills" the process mid-ingest (the DB is
// dropped without Close, half the data never groomed), reopens the
// store, and verifies that every acknowledged row survived — then
// grooms and shows the log segments being reclaimed behind the
// watermark.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"umzi"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "umzi-durability-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("shared storage at %s\n\n", dir)

	open := func() *umzi.DB {
		store, err := umzi.NewFSStore(dir, umzi.LatencyModel{})
		if err != nil {
			log.Fatal(err)
		}
		db, err := umzi.OpenDB(umzi.DBConfig{Store: store})
		if err != nil {
			log.Fatal(err)
		}
		return db
	}

	// Phase 1: create a sharded ledger with per-commit durability (the
	// default; spelled out here because it is the point) and ingest.
	// Only the first 600 rows are ever groomed — the rest live solely in
	// the commit log when the "crash" hits.
	db := open()
	ledger, err := db.CreateTable(umzi.TableDef{
		Name: "ledger",
		Columns: []umzi.TableColumn{
			{Name: "account", Kind: umzi.KindInt64},
			{Name: "txn", Kind: umzi.KindInt64},
			{Name: "amount", Kind: umzi.KindFloat64},
		},
		PrimaryKey: []string{"account", "txn"},
		ShardKey:   []string{"account"},
	}, umzi.TableOptions{
		Shards: 2,
		Durability: umzi.DurabilityOptions{
			SyncPolicy:   umzi.SyncPerCommit, // ack only after the log write
			SegmentBytes: 4096,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	const total = 1000
	acked := 0
	for i := 0; i < total; i++ {
		err := ledger.Upsert(ctx, umzi.Row{
			umzi.I64(int64(i % 16)), umzi.I64(int64(i)), umzi.F64(float64(i) / 100),
		})
		if err != nil {
			log.Fatal(err)
		}
		acked++
		if i == 599 {
			if err := ledger.Groom(); err != nil {
				log.Fatal(err)
			}
		}
	}
	segs, bytes := walTotals(ledger)
	fmt.Printf("acknowledged %d rows; %d groomed, %d only in the commit log\n", acked, 600, ledger.LiveCount())
	fmt.Printf("commit log before crash: %d segments, %d bytes\n", segs, bytes)

	// Phase 2: kill. No Close, no flush, no groom — the handles are
	// dropped with 400 acknowledged rows living only in the log tail.
	db, ledger = nil, nil
	fmt.Println("\n-- kill: process state lost mid-ingest; only shared storage survives --")

	// Phase 3: reopen. OpenDB recovers the table and replays the log
	// tail above the groom watermark into the live zone.
	db2 := open()
	defer db2.Close()
	ledger2, err := db2.Table("ledger")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreopened: %d rows replayed into the live zone\n", ledger2.LiveCount())
	count, err := ledger2.Query().At(umzi.MaxTS).IncludeLive().Count(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if int(count) != acked {
		log.Fatalf("DATA LOSS: %d rows after recovery, want %d", count, acked)
	}
	fmt.Printf("recovered count = %d — zero acknowledged rows lost\n", count)

	// Phase 4: groom the tail; the watermark advances and the log
	// segments behind it are reclaimed (bounded disk).
	if err := ledger2.Groom(); err != nil {
		log.Fatal(err)
	}
	segs, bytes = walTotals(ledger2)
	fmt.Printf("\nafter grooming the tail: %d segments, %d bytes (log reclaimed behind the watermark)\n", segs, bytes)
	for shard, st := range ledger2.WALStatus() {
		fmt.Printf("  shard %d: watermark seq %d / max seq %d\n", shard, st.Mark, st.MaxSeq)
	}
	count, err = ledger2.Query().Count(ctx)
	if err != nil || int(count) != acked {
		log.Fatalf("groomed count = %d (err %v), want %d", count, err, acked)
	}
	fmt.Printf("groomed count still %d\n", count)
}

func walTotals(tbl *umzi.Table) (segments int, bytes int64) {
	for _, st := range tbl.WALStatus() {
		segments += st.Segments
		bytes += st.SegmentBytes
	}
	return segments, bytes
}
