// IoT telemetry: the paper's motivating scenario (§2.1, §4.1). Devices
// stream readings into a Wildfire table sharded by device ID and
// partitioned by day. The Umzi index uses deviceID as the equality
// column and the message number as the sort column, so one fluent query
// surface answers "latest reading of device 17" (compiled to a point
// get), "messages 5-9 of device 3" (an ordered index scan) and a
// per-device aggregate (an index-only plan over the included column).
package main

import (
	"context"
	"fmt"
	"log"

	"umzi"
)

func main() {
	ctx := context.Background()

	db, err := umzi.OpenDB(umzi.DBConfig{
		Store: umzi.NewMemStore(umzi.LatencyModel{}),
		Cache: umzi.NewSSDCache(0, umzi.LatencyModel{}),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	telemetry, err := db.CreateTable(umzi.TableDef{
		Name: "telemetry",
		Columns: []umzi.TableColumn{
			{Name: "device", Kind: umzi.KindInt64},
			{Name: "msg", Kind: umzi.KindInt64},
			{Name: "temp", Kind: umzi.KindFloat64},
			{Name: "day", Kind: umzi.KindInt64},
		},
		PrimaryKey:   []string{"device", "msg"},
		ShardKey:     []string{"device"},
		PartitionKey: "day", // analytics-friendly organization (§2.1)
	}, umzi.TableOptions{
		Index: umzi.IndexSpec{
			Equality: []string{"device"},
			Sort:     []string{"msg"},
			Included: []string{"temp"},
		},
		Replicas: 2, // multi-master shard replicas
	})
	if err != nil {
		log.Fatal(err)
	}

	// Stream 3 days of readings from 4 devices; groom once per "second"
	// (here: one groom per day of data to keep the output readable).
	msg := map[int64]int64{}
	for day := int64(0); day < 3; day++ {
		for burst := 0; burst < 5; burst++ {
			for dev := int64(0); dev < 4; dev++ {
				row := umzi.Row{
					umzi.I64(dev),
					umzi.I64(msg[dev]),
					umzi.F64(18.0 + float64(dev) + float64(burst)/10),
					umzi.I64(day),
				}
				// Any replica can ingest (multi-master).
				if err := telemetry.UpsertReplica(ctx, int(dev)%2, row); err != nil {
					log.Fatal(err)
				}
				msg[dev]++
			}
		}
		if err := telemetry.Groom(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %d groomed: snapshot=%v live=%d\n", day, telemetry.SnapshotTS(), telemetry.LiveCount())
	}

	// OLTP side: the latest reading of device 2 — the full primary key
	// is pinned, so this compiles to a point get.
	row, found, err := telemetry.Query().
		Where(umzi.And(umzi.Eq("device", umzi.I64(2)), umzi.Eq("msg", umzi.I64(msg[2]-1)))).
		One(ctx)
	if err != nil || !found {
		log.Fatal(err, found)
	}
	fmt.Printf("\ndevice 2 latest reading: msg=%d temp=%.1f\n", row[1].Int(), row[2].Float())

	// OLAP side: post-groom re-organizes by day, the indexer evolves,
	// then a covered aggregate runs without touching a data block (the
	// index carries device, msg and temp).
	if err := telemetry.PostGroom(); err != nil {
		log.Fatal(err)
	}
	if err := telemetry.SyncIndex(); err != nil {
		log.Fatal(err)
	}
	agg, err := telemetry.Query().
		Where(umzi.Eq("device", umzi.I64(1))).
		Aggs(
			umzi.Agg{Func: umzi.AggCount, As: "readings"},
			umzi.Agg{Func: umzi.AggAvg, Col: "temp", As: "avg_temp"},
		).
		All(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device 1: %d readings, avg temp %.2f (index-only plan)\n",
		agg[0][0].Int(), agg[0][1].Float())

	// Ordered range scan with bounds: messages 5..9 of device 3,
	// streamed row by row.
	rows, err := telemetry.Query().
		Where(umzi.And(
			umzi.Eq("device", umzi.I64(3)),
			umzi.Ge("msg", umzi.I64(5)),
			umzi.Le("msg", umzi.I64(9)),
		)).
		OrderBy("msg").
		Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device 3 msgs 5..9:\n")
	for rows.Next() {
		r := rows.Values()
		fmt.Printf("  msg=%d temp=%.1f day=%d\n", r[1].Int(), r[2].Float(), r[3].Int())
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	rows.Close()

	// Freshness read: a just-committed reading, visible before grooming
	// through the live-zone union.
	if err := telemetry.Upsert(ctx, umzi.Row{umzi.I64(9), umzi.I64(0), umzi.F64(99.9), umzi.I64(3)}); err != nil {
		log.Fatal(err)
	}
	row, found, err = telemetry.Query().
		Where(umzi.And(umzi.Eq("device", umzi.I64(9)), umzi.Eq("msg", umzi.I64(0)))).
		IncludeLive().
		One(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfresh (ungroomed) reading visible with IncludeLive: found=%v temp=%.1f\n",
		found, row[2].Float())
}
