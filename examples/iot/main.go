// IoT telemetry: the paper's motivating scenario (§2.1, §4.1). Devices
// stream readings into a Wildfire table sharded by device ID and
// partitioned by day. The Umzi index uses deviceID as the equality column
// and the message number as the sort column, so one index answers both
// "latest reading of device 17" (point lookup) and "messages 100-200 of
// device 17" (range scan), plus index-only aggregation over the included
// reading column.
package main

import (
	"fmt"
	"log"

	"umzi"
)

func main() {
	eng, err := umzi.NewEngine(umzi.EngineConfig{
		Table: umzi.TableDef{
			Name: "telemetry",
			Columns: []umzi.TableColumn{
				{Name: "device", Kind: umzi.KindInt64},
				{Name: "msg", Kind: umzi.KindInt64},
				{Name: "temp", Kind: umzi.KindFloat64},
				{Name: "day", Kind: umzi.KindInt64},
			},
			PrimaryKey:   []string{"device", "msg"},
			ShardKey:     []string{"device"},
			PartitionKey: "day", // analytics-friendly organization (§2.1)
		},
		Index: umzi.IndexSpec{
			Equality: []string{"device"},
			Sort:     []string{"msg"},
			Included: []string{"temp"},
		},
		Store:    umzi.NewMemStore(umzi.LatencyModel{}),
		Cache:    umzi.NewSSDCache(0, umzi.LatencyModel{}),
		Replicas: 2, // multi-master shard replicas
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Stream 3 days of readings from 4 devices; groom once per "second"
	// (here: one groom per day of data to keep the output readable).
	msg := map[int64]int64{}
	for day := int64(0); day < 3; day++ {
		for burst := 0; burst < 5; burst++ {
			for dev := int64(0); dev < 4; dev++ {
				row := umzi.Row{
					umzi.I64(dev),
					umzi.I64(msg[dev]),
					umzi.F64(18.0 + float64(dev) + float64(burst)/10),
					umzi.I64(day),
				}
				// Any replica can ingest (multi-master).
				if err := eng.UpsertRows(int(dev)%2, row); err != nil {
					log.Fatal(err)
				}
				msg[dev]++
			}
		}
		if err := eng.Groom(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %d groomed: lastGroomTS=%v live=%d\n", day, eng.LastGroomTS(), eng.LiveCount())
	}

	// OLTP side: the latest reading of device 2.
	rec, found, err := eng.Get([]umzi.Value{umzi.I64(2)}, []umzi.Value{umzi.I64(msg[2] - 1)}, umzi.QueryOptions{})
	if err != nil || !found {
		log.Fatal(err, found)
	}
	fmt.Printf("\ndevice 2 latest reading: msg=%d temp=%.1f (from %v)\n",
		rec.Row[1].Int(), rec.Row[2].Float(), rec.RID.Zone)

	// OLAP side: post-groom re-organizes by day, then an index-only scan
	// aggregates device 1's temperatures without touching data blocks.
	if _, err := eng.PostGroom(); err != nil {
		log.Fatal(err)
	}
	if err := eng.SyncIndex(); err != nil {
		log.Fatal(err)
	}
	g, p := eng.Index().RunCounts()
	fmt.Printf("after post-groom + evolve: groomed runs=%d post runs=%d maxPSN=%d\n", g, p, eng.MaxPSN())

	rows, err := eng.IndexOnlyScan([]umzi.Value{umzi.I64(1)}, nil, nil, umzi.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	for _, r := range rows {
		sum += r[2].Float() // equality, sort, then included columns
	}
	fmt.Printf("device 1: %d readings, avg temp %.2f (index-only plan)\n", len(rows), sum/float64(len(rows)))

	// Range scan with bounds: messages 5..9 of device 3.
	recs, err := eng.Scan(
		[]umzi.Value{umzi.I64(3)},
		[]umzi.Value{umzi.I64(5)},
		[]umzi.Value{umzi.I64(9)},
		umzi.QueryOptions{},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device 3 msgs 5..9:\n")
	for _, r := range recs {
		fmt.Printf("  msg=%d temp=%.1f day=%d zone=%v\n",
			r.Row[1].Int(), r.Row[2].Float(), r.Row[3].Int(), r.RID.Zone)
	}

	// Freshness read: a just-committed reading, visible before grooming.
	if err := eng.UpsertRows(0, umzi.Row{umzi.I64(9), umzi.I64(0), umzi.F64(99.9), umzi.I64(3)}); err != nil {
		log.Fatal(err)
	}
	rec, found, err = eng.Get([]umzi.Value{umzi.I64(9)}, []umzi.Value{umzi.I64(0)},
		umzi.QueryOptions{IncludeLive: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfresh (ungroomed) reading visible with IncludeLive: found=%v temp=%.1f\n",
		found, rec.Row[2].Float())
}
