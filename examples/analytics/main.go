// Analytical queries over a sharded table: the workload Umzi's
// analytical side exists for (paper §1, §7). An orders table is
// hash-sharded by order id across 4 engines; the analytical executor
// pushes a filtered GROUP-BY aggregation down into every shard, where
// it runs block-at-a-time over the columnar groomed and post-groomed
// blocks — skipping blocks whose min/max synopses rule them out — and
// unions in the live zone, so orders committed after the last groom are
// counted too. Only partial aggregates (per-group sum/count states)
// travel back to the coordinator, never rows.
//
// The program verifies every executor result against a client-side
// scan+aggregate of the same snapshot, then times both plans.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"umzi"
)

var regions = []string{"amer", "emea", "apac", "latam"}

func main() {
	rows := flag.Int("rows", 200_000, "orders to ingest")
	shards := flag.Int("shards", 4, "number of table shards")
	flag.Parse()
	if *rows < 1 || *shards < 1 {
		log.Fatalf("-rows (%d) and -shards (%d) must be at least 1", *rows, *shards)
	}

	eng, err := umzi.NewShardedEngine(umzi.ShardedConfig{
		Table: umzi.TableDef{
			Name: "orders",
			Columns: []umzi.TableColumn{
				{Name: "order_id", Kind: umzi.KindInt64},
				{Name: "region", Kind: umzi.KindString},
				{Name: "revenue", Kind: umzi.KindFloat64},
			},
			PrimaryKey: []string{"order_id"},
			ShardKey:   []string{"order_id"},
		},
		Index:  umzi.IndexSpec{Sort: []string{"order_id"}},
		Shards: *shards,
		Store:  umzi.NewMemStore(umzi.LatencyModel{}),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Ingest in groom rounds; the last 5% of orders stay in the live
	// zone, so the analytical snapshot straddles the live/groomed
	// boundary the way a fresh HTAP workload does.
	fmt.Printf("ingesting %d orders across %d shards...\n", *rows, *shards)
	groomEvery := *rows / 8
	if groomEvery == 0 {
		groomEvery = 1
	}
	liveFrom := *rows - *rows/20
	for i := 0; i < *rows; i++ {
		revenue := float64(10 + (i*7919)%990)
		row := umzi.Row{
			umzi.I64(int64(i)),
			umzi.Str(regions[i%len(regions)]),
			umzi.F64(revenue),
		}
		if err := eng.UpsertRows(0, row); err != nil {
			log.Fatal(err)
		}
		if (i+1 < liveFrom && (i+1)%groomEvery == 0) || i+1 == liveFrom {
			if err := eng.Groom(); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("groomed snapshot %v, %d orders still live\n\n", eng.SnapshotTS(), eng.LiveCount())

	// The analytical query: revenue per region for big orders,
	// including the not-yet-groomed tail.
	const minRevenue = 500
	plan := umzi.Plan{
		Filter:  umzi.Ge("revenue", umzi.F64(minRevenue)),
		GroupBy: []string{"region"},
		Aggs: []umzi.Agg{
			{Func: umzi.AggCount, As: "orders"},
			{Func: umzi.AggSum, Col: "revenue", As: "revenue"},
			{Func: umzi.AggAvg, Col: "revenue", As: "avg"},
		},
	}
	opts := umzi.QueryOptions{IncludeLive: true}

	start := time.Now()
	res, err := eng.Execute(plan, opts)
	if err != nil {
		log.Fatal(err)
	}
	pushdownTime := time.Since(start)

	fmt.Printf("revenue per region, revenue >= %d (pushdown, %v):\n", minRevenue, pushdownTime.Round(time.Microsecond))
	fmt.Printf("  %-8s %10s %14s %10s\n", "region", "orders", "revenue", "avg")
	for _, r := range res.Rows {
		fmt.Printf("  %-8s %10d %14.0f %10.2f\n",
			r[0].Bytes(), r[1].Int(), r[2].Float(), r[3].Float())
	}

	// Client-side reference: scatter-gather every record (same snapshot,
	// live zone included via the executor's row mode is not needed —
	// Scan covers the indexed zones, so replay the filter over an
	// unfiltered pushdown row query instead) and aggregate at the
	// coordinator.
	start = time.Now()
	all, err := eng.Execute(umzi.Plan{}, opts)
	if err != nil {
		log.Fatal(err)
	}
	type acc struct {
		count int64
		sum   float64
	}
	byRegion := map[string]*acc{}
	for _, r := range all.Rows {
		if r[2].Float() < minRevenue {
			continue
		}
		key := string(r[1].Bytes())
		a, ok := byRegion[key]
		if !ok {
			a = &acc{}
			byRegion[key] = a
		}
		a.count++
		a.sum += r[2].Float()
	}
	clientTime := time.Since(start)

	if len(byRegion) != len(res.Rows) {
		log.Fatalf("client-side found %d regions, pushdown %d", len(byRegion), len(res.Rows))
	}
	for _, r := range res.Rows {
		a := byRegion[string(r[0].Bytes())]
		if a == nil || a.count != r[1].Int() || a.sum != r[2].Float() || a.sum/float64(a.count) != r[3].Float() {
			log.Fatalf("region %s: pushdown %v disagrees with client-side (%d, %.0f)",
				r[0].Bytes(), r, a.count, a.sum)
		}
	}
	fmt.Printf("\npushdown verified against client-side aggregation (%d rows shipped vs %d)\n",
		len(res.Rows), len(all.Rows))
	fmt.Printf("pushdown %v vs client-side %v\n", pushdownTime.Round(time.Microsecond), clientTime.Round(time.Microsecond))
}
