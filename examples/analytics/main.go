// Analytical queries over a sharded table: the workload Umzi's
// analytical side exists for (paper §1, §7). An orders table is
// hash-sharded by order id across 4 engines; an aggregate query built
// with the fluent builder compiles to a pushed-down executor plan that
// runs block-at-a-time over the columnar groomed and post-groomed
// blocks of every shard — skipping blocks whose min/max synopses rule
// them out — and unions in the live zone (IncludeLive), so orders
// committed after the last groom are counted too. Only partial
// aggregates (per-group sum/count states) travel back to the
// coordinator, never rows.
//
// The program verifies every aggregate result against a client-side
// aggregation over a row query of the same snapshot, then times both.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"umzi"
)

var regions = []string{"amer", "emea", "apac", "latam"}

func main() {
	rows := flag.Int("rows", 200_000, "orders to ingest")
	shards := flag.Int("shards", 4, "number of table shards")
	flag.Parse()
	if *rows < 1 || *shards < 1 {
		log.Fatalf("-rows (%d) and -shards (%d) must be at least 1", *rows, *shards)
	}
	ctx := context.Background()

	db, err := umzi.OpenDB(umzi.DBConfig{Store: umzi.NewMemStore(umzi.LatencyModel{})})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	orders, err := db.CreateTable(umzi.TableDef{
		Name: "orders",
		Columns: []umzi.TableColumn{
			{Name: "order_id", Kind: umzi.KindInt64},
			{Name: "region", Kind: umzi.KindString},
			{Name: "revenue", Kind: umzi.KindFloat64},
		},
		PrimaryKey: []string{"order_id"},
		ShardKey:   []string{"order_id"},
	}, umzi.TableOptions{
		Shards: *shards,
		Index:  umzi.IndexSpec{Sort: []string{"order_id"}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ingest in groom rounds; the last 5% of orders stay in the live
	// zone, so the analytical snapshot straddles the live/groomed
	// boundary the way a fresh HTAP workload does.
	fmt.Printf("ingesting %d orders across %d shards...\n", *rows, *shards)
	groomEvery := *rows / 8
	if groomEvery == 0 {
		groomEvery = 1
	}
	liveFrom := *rows - *rows/20
	for i := 0; i < *rows; i++ {
		revenue := float64(10 + (i*7919)%990)
		row := umzi.Row{
			umzi.I64(int64(i)),
			umzi.Str(regions[i%len(regions)]),
			umzi.F64(revenue),
		}
		if err := orders.Upsert(ctx, row); err != nil {
			log.Fatal(err)
		}
		if (i+1 < liveFrom && (i+1)%groomEvery == 0) || i+1 == liveFrom {
			if err := orders.Groom(); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("groomed snapshot %v, %d orders still live\n\n", orders.SnapshotTS(), orders.LiveCount())

	// The analytical query: revenue per region for big orders,
	// including the not-yet-groomed tail.
	const minRevenue = 500
	start := time.Now()
	res, err := orders.Query().
		Where(umzi.Ge("revenue", umzi.F64(minRevenue))).
		GroupBy("region").
		Aggs(
			umzi.Agg{Func: umzi.AggCount, As: "orders"},
			umzi.Agg{Func: umzi.AggSum, Col: "revenue", As: "revenue"},
			umzi.Agg{Func: umzi.AggAvg, Col: "revenue", As: "avg"},
		).
		IncludeLive().
		All(ctx)
	if err != nil {
		log.Fatal(err)
	}
	pushdownTime := time.Since(start)

	fmt.Printf("revenue per region, revenue >= %d (pushdown, %v):\n", minRevenue, pushdownTime.Round(time.Microsecond))
	fmt.Printf("  %-8s %10s %14s %10s\n", "region", "orders", "revenue", "avg")
	for _, r := range res {
		fmt.Printf("  %-8s %10d %14.0f %10.2f\n",
			r[0].Bytes(), r[1].Int(), r[2].Float(), r[3].Float())
	}

	// Client-side reference: stream every order of the same snapshot to
	// the coordinator and aggregate there — the plan shape pushdown
	// exists to avoid.
	start = time.Now()
	stream, err := orders.Query().
		Select("region", "revenue").
		IncludeLive().
		Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	type acc struct {
		count int64
		sum   float64
	}
	byRegion := map[string]*acc{}
	total := 0
	for stream.Next() {
		var region string
		var revenue float64
		if err := stream.Scan(&region, &revenue); err != nil {
			log.Fatal(err)
		}
		total++
		if revenue < minRevenue {
			continue
		}
		a, ok := byRegion[region]
		if !ok {
			a = &acc{}
			byRegion[region] = a
		}
		a.count++
		a.sum += revenue
	}
	if err := stream.Err(); err != nil {
		log.Fatal(err)
	}
	stream.Close()
	clientTime := time.Since(start)

	if len(byRegion) != len(res) {
		log.Fatalf("client-side found %d regions, pushdown %d", len(byRegion), len(res))
	}
	for _, r := range res {
		a := byRegion[string(r[0].Bytes())]
		if a == nil || a.count != r[1].Int() || a.sum != r[2].Float() || a.sum/float64(a.count) != r[3].Float() {
			log.Fatalf("region %s: pushdown %v disagrees with client-side (%d, %.0f)",
				r[0].Bytes(), r, a.count, a.sum)
		}
	}
	fmt.Printf("\npushdown verified against client-side aggregation (%d rows shipped vs %d)\n",
		len(res), total)
	fmt.Printf("pushdown %v vs client-side %v\n", pushdownTime.Round(time.Microsecond), clientTime.Round(time.Microsecond))
}
