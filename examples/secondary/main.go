// Secondary indexes under concurrent ingest: the classic HTAP scenario
// the multi-index set unlocks — selective operational lookups on a
// NON-KEY column running concurrently with transactional ingest and the
// whole groom/post-groom/evolve pipeline.
//
// An orders table is sharded by order id (the primary key) and carries
// a covering secondary index on customer (equality column) with amount
// included. All three ways of asking "customer 7's revenue" go through
// the one query builder:
//
//   - the default aggregate, whose predicate the planner's executor
//     routes through the secondary automatically;
//   - the same aggregate with NoIndex(), forced to scan the columnar
//     zones;
//   - a covered row query forced through the index with Via, answered
//     entirely from index entries (key + included columns) without
//     touching a data block;
//
// while a writer keeps committing orders and the DB's background
// daemons groom, post-groom and evolve all indexes in lockstep. Every
// round pins one snapshot (At) and verifies the three answers agree.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"umzi"
)

func main() {
	rows := flag.Int("rows", 120_000, "orders to ingest")
	customers := flag.Int("customers", 512, "distinct customers (selectivity = 1/customers)")
	shards := flag.Int("shards", 4, "number of table shards")
	flag.Parse()
	if *rows < 1 || *customers < 1 || *shards < 1 {
		log.Fatalf("-rows, -customers and -shards must be at least 1")
	}
	ctx := context.Background()

	// Background pipeline per table: groom fast, post-groom slower —
	// the cadence of §2.1 — with the indexer evolving every index of
	// the set.
	db, err := umzi.OpenDB(umzi.DBConfig{
		Store:          umzi.NewMemStore(umzi.LatencyModel{}),
		GroomEvery:     5 * time.Millisecond,
		PostGroomEvery: 25 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	orders, err := db.CreateTable(umzi.TableDef{
		Name: "orders",
		Columns: []umzi.TableColumn{
			{Name: "order_id", Kind: umzi.KindInt64},
			{Name: "customer", Kind: umzi.KindInt64},
			{Name: "amount", Kind: umzi.KindInt64},
		},
		PrimaryKey: []string{"order_id"},
		ShardKey:   []string{"order_id"},
	}, umzi.TableOptions{
		Shards: *shards,
		Index:  umzi.IndexSpec{Equality: []string{"order_id"}},
		Secondaries: []umzi.SecondaryIndexSpec{{
			Name: "by_customer",
			IndexSpec: umzi.IndexSpec{
				Equality: []string{"customer"},
				Included: []string{"amount"},
			},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Writer: commit orders continuously; order i belongs to customer
	// i % customers and is worth i.
	var ingested atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < *rows; i++ {
			row := umzi.Row{
				umzi.I64(int64(i)),
				umzi.I64(int64(i % *customers)),
				umzi.I64(int64(i)),
			}
			if err := orders.Upsert(ctx, row); err != nil {
				log.Fatal(err)
			}
			ingested.Add(1)
		}
	}()

	fmt.Printf("ingesting %d orders for %d customers across %d shards, querying concurrently...\n",
		*rows, *customers, *shards)

	// Reader: per-customer covered lookups racing the pipeline. Each
	// round checks one customer's revenue three ways at one snapshot.
	customer := int64(7)
	queries := 0
	var lastCount, lastSum int64
	revenueQuery := func() *umzi.Query {
		return orders.Query().
			Where(umzi.Eq("customer", umzi.I64(customer))).
			Aggs(
				umzi.Agg{Func: umzi.AggCount, As: "orders"},
				umzi.Agg{Func: umzi.AggSum, Col: "amount", As: "revenue"},
			)
	}
	for ingested.Load() < int64(*rows) || queries < 20 {
		ts := orders.SnapshotTS() // one snapshot for all three plans
		viaIndex, err := revenueQuery().At(ts).All(ctx)
		if err != nil {
			log.Fatal(err)
		}
		viaScan, err := revenueQuery().NoIndex().At(ts).All(ctx)
		if err != nil {
			log.Fatal(err)
		}
		covered, err := orders.Query().
			Where(umzi.Eq("customer", umzi.I64(customer))).
			Select("amount").
			Via("by_customer").
			At(ts).
			Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		var count, sum int64
		for covered.Next() {
			var amount int64
			if err := covered.Scan(&amount); err != nil {
				log.Fatal(err)
			}
			count++
			sum += amount
		}
		if err := covered.Err(); err != nil {
			log.Fatal(err)
		}
		covered.Close()

		var ic, is int64
		if len(viaIndex) > 0 {
			ic, is = viaIndex[0][0].Int(), viaIndex[0][1].Int()
		}
		var sc, ss int64
		if len(viaScan) > 0 {
			sc, ss = viaScan[0][0].Int(), viaScan[0][1].Int()
		}
		if ic != sc || is != ss || ic != count || is != sum {
			log.Fatalf("snapshot %d disagrees: index plan (%d, %d), zone scan (%d, %d), covered scan (%d, %d)",
				ts, ic, is, sc, ss, count, sum)
		}
		lastCount, lastSum = count, sum
		queries++
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()

	// Flush everything through the pipeline, then the final answer.
	for orders.LiveCount() > 0 {
		if err := orders.Groom(); err != nil {
			log.Fatal(err)
		}
	}
	if err := orders.PostGroom(); err != nil {
		log.Fatal(err)
	}
	if err := orders.SyncIndex(); err != nil {
		log.Fatal(err)
	}
	final, err := revenueQuery().All(ctx)
	if err != nil {
		log.Fatal(err)
	}
	wantCount := int64(*rows / *customers)
	if customer < int64(*rows%*customers) {
		wantCount++
	}
	gotCount, gotSum := final[0][0].Int(), final[0][1].Int()
	if gotCount != wantCount {
		log.Fatalf("customer %d has %d orders, want %d", customer, gotCount, wantCount)
	}
	fmt.Printf("ran %d covered secondary-index queries during ingest (last snapshot: %d orders, %d revenue)\n",
		queries, lastCount, lastSum)
	fmt.Printf("customer %d final: %d orders, %d revenue — index plan, zone scan and covered scan agree\n",
		customer, gotCount, gotSum)
}
