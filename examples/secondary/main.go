// Secondary indexes under concurrent ingest: the classic HTAP scenario
// the multi-index set unlocks — selective operational lookups on a
// NON-KEY column running concurrently with transactional ingest and the
// whole groom/post-groom/evolve pipeline.
//
// An orders table is sharded by order id (the primary key) and carries
// a covering secondary index on customer (equality column) with amount
// included, so a per-customer revenue query is answered entirely from
// the index — key plus included columns — without touching a data
// block. While a writer keeps committing orders and the background
// daemons groom, post-groom and evolve all indexes in lockstep, the
// program repeatedly runs:
//
//   - a covered index-only scan (ScanOn / IndexOnlyScanOn) for one
//     customer's orders, and
//   - an aggregate plan whose predicate the executor routes through the
//     secondary automatically (compare QueryOptions.NoIndexSelection);
//
// every result is verified against a forced zone scan of the same
// snapshot.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"umzi"
)

func main() {
	rows := flag.Int("rows", 120_000, "orders to ingest")
	customers := flag.Int("customers", 512, "distinct customers (selectivity = 1/customers)")
	shards := flag.Int("shards", 4, "number of table shards")
	flag.Parse()
	if *rows < 1 || *customers < 1 || *shards < 1 {
		log.Fatalf("-rows, -customers and -shards must be at least 1")
	}

	eng, err := umzi.NewShardedEngine(umzi.ShardedConfig{
		Table: umzi.TableDef{
			Name: "orders",
			Columns: []umzi.TableColumn{
				{Name: "order_id", Kind: umzi.KindInt64},
				{Name: "customer", Kind: umzi.KindInt64},
				{Name: "amount", Kind: umzi.KindInt64},
			},
			PrimaryKey: []string{"order_id"},
			ShardKey:   []string{"order_id"},
		},
		Index: umzi.IndexSpec{Equality: []string{"order_id"}},
		Secondaries: []umzi.SecondaryIndexSpec{{
			Name: "by_customer",
			IndexSpec: umzi.IndexSpec{
				Equality: []string{"customer"},
				Included: []string{"amount"},
			},
		}},
		Shards: *shards,
		Store:  umzi.NewMemStore(umzi.LatencyModel{}),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Background pipeline: groom fast, post-groom slower — the cadence
	// of §2.1 — with the indexer evolving every index of the set.
	eng.Start(5*time.Millisecond, 25*time.Millisecond)

	// Writer: commit orders continuously; order i belongs to customer
	// i % customers and is worth i.
	var ingested atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < *rows; i++ {
			row := umzi.Row{
				umzi.I64(int64(i)),
				umzi.I64(int64(i % *customers)),
				umzi.I64(int64(i)),
			}
			if err := eng.UpsertRows(0, row); err != nil {
				log.Fatal(err)
			}
			ingested.Add(1)
		}
	}()

	fmt.Printf("ingesting %d orders for %d customers across %d shards, querying concurrently...\n",
		*rows, *customers, *shards)

	// Reader: per-customer covered lookups racing the pipeline. Each
	// round checks one customer's revenue three ways at one snapshot.
	customer := int64(7)
	queries := 0
	var lastCount, lastSum int64
	for ingested.Load() < int64(*rows) || queries < 20 {
		ts := eng.SnapshotTS() // one snapshot for all three plans
		plan := umzi.Plan{
			Filter: umzi.Eq("customer", umzi.I64(customer)),
			Aggs: []umzi.Agg{
				{Func: umzi.AggCount, As: "orders"},
				{Func: umzi.AggSum, Col: "amount", As: "revenue"},
			},
		}
		viaIndex, err := eng.Execute(plan, umzi.QueryOptions{TS: ts})
		if err != nil {
			log.Fatal(err)
		}
		viaScan, err := eng.Execute(plan, umzi.QueryOptions{TS: ts, NoIndexSelection: true})
		if err != nil {
			log.Fatal(err)
		}
		rows, err := eng.IndexOnlyScanOn("by_customer",
			[]umzi.Value{umzi.I64(customer)}, nil, nil, umzi.QueryOptions{TS: ts})
		if err != nil {
			log.Fatal(err)
		}
		// Reconcile the three answers: covered scan rows (layout:
		// customer, order_id, amount) vs both executor paths.
		var count, sum int64
		for _, r := range rows {
			count++
			sum += r[2].Int()
		}
		var ic, is int64
		if len(viaIndex.Rows) > 0 {
			ic, is = viaIndex.Rows[0][0].Int(), viaIndex.Rows[0][1].Int()
		}
		var sc, ss int64
		if len(viaScan.Rows) > 0 {
			sc, ss = viaScan.Rows[0][0].Int(), viaScan.Rows[0][1].Int()
		}
		if ic != sc || is != ss || ic != count || is != sum {
			log.Fatalf("snapshot %d disagrees: index plan (%d, %d), zone scan (%d, %d), covered scan (%d, %d)",
				ts, ic, is, sc, ss, count, sum)
		}
		lastCount, lastSum = count, sum
		queries++
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()

	// Flush everything through the pipeline, then the final answer.
	for eng.LiveCount() > 0 {
		if err := eng.Groom(); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.PostGroom(); err != nil {
		log.Fatal(err)
	}
	if err := eng.SyncIndex(); err != nil {
		log.Fatal(err)
	}
	final, err := eng.Execute(umzi.Plan{
		Filter: umzi.Eq("customer", umzi.I64(customer)),
		Aggs:   []umzi.Agg{{Func: umzi.AggCount}, {Func: umzi.AggSum, Col: "amount"}},
	}, umzi.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	wantCount := int64(*rows / *customers)
	if int64(customer) < int64(*rows%*customers) {
		wantCount++
	}
	gotCount, gotSum := final.Rows[0][0].Int(), final.Rows[0][1].Int()
	if gotCount != wantCount {
		log.Fatalf("customer %d has %d orders, want %d", customer, gotCount, wantCount)
	}
	fmt.Printf("ran %d covered secondary-index queries during ingest (last snapshot: %d orders, %d revenue)\n",
		queries, lastCount, lastSum)
	fmt.Printf("customer %d final: %d orders, %d revenue — index plan, zone scan and covered scan agree\n",
		customer, gotCount, gotSum)
}
