// Quickstart: the Umzi index API in isolation — define an index, build
// runs (as the groomer would), run point lookups and range scans at
// different snapshot timestamps, merge runs, and evolve entries into the
// post-groomed zone.
package main

import (
	"fmt"
	"log"

	"umzi"
)

func main() {
	// An index over (customer; order) with the order total carried as an
	// included column for index-only reads (§4.1 of the paper).
	ix, err := umzi.New(umzi.Config{
		Name: "orders",
		Def: umzi.IndexDef{
			Equality: []umzi.Column{{Name: "customer", Kind: umzi.KindInt64}},
			Sort:     []umzi.Column{{Name: "order", Kind: umzi.KindInt64}},
			Included: []umzi.Column{{Name: "total", Kind: umzi.KindFloat64}},
		},
		Store: umzi.NewMemStore(umzi.LatencyModel{}),
		Cache: umzi.NewSSDCache(0, umzi.LatencyModel{}),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	// Three groom cycles, each producing one level-0 run. Cycle 2
	// re-ingests order 100 of customer 7: an update, i.e. a new version.
	cycles := []struct {
		cycle  uint64
		orders []struct {
			customer, order int64
			total           float64
		}
	}{
		{1, []struct {
			customer, order int64
			total           float64
		}{{7, 100, 19.99}, {7, 101, 5.00}, {9, 200, 120.00}}},
		{2, []struct {
			customer, order int64
			total           float64
		}{{7, 100, 24.99}, {9, 201, 60.00}}},
		{3, []struct {
			customer, order int64
			total           float64
		}{{7, 102, 9.50}}},
	}
	for _, c := range cycles {
		var entries []umzi.Entry
		for i, o := range c.orders {
			e, err := ix.MakeEntry(
				[]umzi.Value{umzi.I64(o.customer)},
				[]umzi.Value{umzi.I64(o.order)},
				[]umzi.Value{umzi.F64(o.total)},
				umzi.MakeTS(c.cycle, uint32(i)),
				umzi.RID{Zone: umzi.ZoneGroomed, Block: c.cycle, Offset: uint32(i)},
			)
			if err != nil {
				log.Fatal(err)
			}
			entries = append(entries, e)
		}
		if err := ix.BuildRun(entries, umzi.BlockRange{Min: c.cycle, Max: c.cycle}); err != nil {
			log.Fatal(err)
		}
	}
	g, p := ix.RunCounts()
	fmt.Printf("after 3 grooms: %d groomed runs, %d post-groomed runs\n", g, p)

	// Point lookup: newest version wins.
	e, found, err := ix.PointLookup([]umzi.Value{umzi.I64(7)}, []umzi.Value{umzi.I64(100)}, umzi.MaxTS)
	if err != nil || !found {
		log.Fatal(err, found)
	}
	_, _, incl, _ := ix.DecodeEntry(e)
	fmt.Printf("customer 7 order 100 (newest): total=%.2f beginTS=%v\n", incl[0].Float(), e.BeginTS)

	// Time travel: the same key as of groom cycle 1.
	e, found, _ = ix.PointLookup([]umzi.Value{umzi.I64(7)}, []umzi.Value{umzi.I64(100)}, umzi.MakeTS(1, 1<<20))
	if found {
		_, _, incl, _ = ix.DecodeEntry(e)
		fmt.Printf("customer 7 order 100 (cycle 1):  total=%.2f\n", incl[0].Float())
	}

	// Range scan over one customer's orders.
	matches, err := ix.RangeScan(umzi.ScanOptions{
		Equality: []umzi.Value{umzi.I64(7)},
		SortLo:   []umzi.Value{umzi.I64(100)},
		SortHi:   []umzi.Value{umzi.I64(102)},
		TS:       umzi.MaxTS,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("customer 7 orders 100..102: %d matches\n", len(matches))
	for _, m := range matches {
		_, sortv, incl, _ := ix.DecodeEntry(m)
		fmt.Printf("  order %d: total=%.2f rid=%v\n", sortv[0].Int(), incl[0].Float(), m.RID)
	}

	// Merge maintenance (§5.3).
	if err := ix.Quiesce(); err != nil {
		log.Fatal(err)
	}
	g, p = ix.RunCounts()
	fmt.Printf("after maintenance: %d groomed runs, %d post-groomed runs\n", g, p)

	// Evolve cycles 1-2 into the post-groomed zone (§5.4) — in Wildfire
	// the post-groomer triggers this with new post-groomed RIDs.
	var evolved []umzi.Entry
	for _, c := range cycles[:2] {
		for i, o := range c.orders {
			e, err := ix.MakeEntry(
				[]umzi.Value{umzi.I64(o.customer)},
				[]umzi.Value{umzi.I64(o.order)},
				[]umzi.Value{umzi.F64(o.total)},
				umzi.MakeTS(c.cycle, uint32(i)),
				umzi.RID{Zone: umzi.ZonePostGroomed, Block: 1, Offset: uint32(i)},
			)
			if err != nil {
				log.Fatal(err)
			}
			evolved = append(evolved, e)
		}
	}
	if err := ix.Evolve(1, evolved, umzi.BlockRange{Min: 1, Max: 2}); err != nil {
		log.Fatal(err)
	}
	g, p = ix.RunCounts()
	fmt.Printf("after evolve(PSN 1): %d groomed runs, %d post-groomed runs, covered=%d\n",
		g, p, ix.MaxCoveredGroomedID())

	// Queries keep working across the zone boundary, de-duplicated.
	matches, _ = ix.RangeScan(umzi.ScanOptions{
		Equality: []umzi.Value{umzi.I64(7)},
		TS:       umzi.MaxTS,
	})
	fmt.Printf("customer 7 all orders after evolve: %d matches\n", len(matches))
	st := ix.Stats()
	fmt.Printf("stats: queries=%d runsSearched=%d runsPruned=%d merges=%d evolves=%d\n",
		st.Queries, st.RunsSearched, st.RunsPruned, st.Merges, st.Evolves)
}
