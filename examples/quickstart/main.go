// Quickstart: the unified umzi.DB front end. One DB owns a shared
// store, a multi-table catalog and any number of tables; every table —
// sharded or not — is queried through the same fluent builder, which
// the planner compiles into a point get, an index(-only) scan or a
// pushed-down executor plan. Results stream through a Rows cursor and
// every call takes a context.
package main

import (
	"context"
	"fmt"
	"log"

	"umzi"
)

func main() {
	ctx := context.Background()

	db, err := umzi.OpenDB(umzi.DBConfig{
		Store: umzi.NewMemStore(umzi.LatencyModel{}),
		Cache: umzi.NewSSDCache(0, umzi.LatencyModel{}),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// An orders table over (customer; order), hash-sharded by customer
	// across 4 engines. The primary Umzi index serves "orders of
	// customer 7" as a pinned single-shard scan and carries the total as
	// an included column for index-only reads (§4.1 of the paper).
	orders, err := db.CreateTable(umzi.TableDef{
		Name: "orders",
		Columns: []umzi.TableColumn{
			{Name: "customer", Kind: umzi.KindInt64},
			{Name: "order", Kind: umzi.KindInt64},
			{Name: "total", Kind: umzi.KindFloat64},
		},
		PrimaryKey: []string{"customer", "order"},
		ShardKey:   []string{"customer"},
	}, umzi.TableOptions{
		Shards: 4,
		Index: umzi.IndexSpec{
			Equality: []string{"customer"},
			Sort:     []string{"order"},
			Included: []string{"total"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three groom cycles of ingest; cycle 2 re-ingests order 100 of
	// customer 7 — an update, i.e. a new version.
	cycles := [][]umzi.Row{
		{
			{umzi.I64(7), umzi.I64(100), umzi.F64(19.99)},
			{umzi.I64(7), umzi.I64(101), umzi.F64(5.00)},
			{umzi.I64(9), umzi.I64(200), umzi.F64(120.00)},
		},
		{
			{umzi.I64(7), umzi.I64(100), umzi.F64(24.99)},
			{umzi.I64(9), umzi.I64(201), umzi.F64(60.00)},
		},
		{
			{umzi.I64(7), umzi.I64(102), umzi.F64(9.50)},
		},
	}
	var cut umzi.TS // snapshot boundary after cycle 1, for time travel
	for i, rows := range cycles {
		if err := orders.Upsert(ctx, rows...); err != nil {
			log.Fatal(err)
		}
		if err := orders.Groom(); err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			cut = orders.SnapshotTS()
		}
	}
	fmt.Printf("tables: %v; orders runs on %d shards\n", db.Tables(), orders.NumShards())

	// Point get: the filter pins the whole primary key, so the planner
	// compiles one index lookup.
	row, found, err := orders.Query().
		Where(umzi.And(umzi.Eq("customer", umzi.I64(7)), umzi.Eq("order", umzi.I64(100)))).
		One(ctx)
	if err != nil || !found {
		log.Fatal(err, found)
	}
	fmt.Printf("customer 7 order 100 (newest): total=%.2f\n", row[2].Float())

	// Time travel: the same key as of the first groom cycle.
	row, found, _ = orders.Query().
		Where(umzi.And(umzi.Eq("customer", umzi.I64(7)), umzi.Eq("order", umzi.I64(100)))).
		At(cut).
		One(ctx)
	if found {
		fmt.Printf("customer 7 order 100 (cycle 1):  total=%.2f\n", row[2].Float())
	}

	// Ordered range scan, streamed: the scan pins to customer 7's shard
	// and the Rows cursor fetches lazily.
	rows, err := orders.Query().
		Where(umzi.And(
			umzi.Eq("customer", umzi.I64(7)),
			umzi.Ge("order", umzi.I64(100)),
			umzi.Le("order", umzi.I64(102)),
		)).
		Select("order", "total").
		OrderBy("order").
		Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("customer 7 orders 100..102:")
	for rows.Next() {
		var order int64
		var total float64
		if err := rows.Scan(&order, &total); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  order %d: total=%.2f\n", order, total)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	rows.Close()

	// Analytics on the same table: a pushed-down aggregate. Each shard
	// reduces its columnar blocks to partial aggregates; only those
	// travel to the coordinator.
	agg, err := orders.Query().
		GroupBy("customer").
		Aggs(
			umzi.Agg{Func: umzi.AggCount, As: "orders"},
			umzi.Agg{Func: umzi.AggSum, Col: "total", As: "revenue"},
		).
		All(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("revenue per customer:")
	for _, g := range agg {
		fmt.Printf("  customer %d: %d orders, %.2f total\n", g[0].Int(), g[1].Int(), g[2].Float())
	}
}
