package umzi

import (
	"context"
	"time"

	"umzi/internal/types"
	"umzi/internal/wildfire"
)

// topology is the internal seam that collapses the Engine/ShardedEngine
// fork: a Table talks to "a table that may be sharded" through this one
// interface, and the two adapters below paper over the few signature
// differences. Everything query-shaped goes through RunQuery — the
// planner entry point in internal/wildfire — so there is exactly one
// query surface regardless of shard count.
type topology interface {
	Table() wildfire.TableDef
	NumShards() int
	Start(groomEvery, postGroomEvery time.Duration)
	Close() error
	Groom() error
	PostGroom() error
	SyncIndex() error
	LiveCount() int
	SnapshotTS() types.TS
	CreateIndex(spec wildfire.SecondaryIndexSpec) error
	SecondarySpecs() []wildfire.SecondaryIndexSpec
	RunQuery(ctx context.Context, spec wildfire.QuerySpec) (*wildfire.QueryRows, error)
	WALStatus() []wildfire.WALStatus
	BlockCache() *wildfire.BlockCache
	begin(replica int) (commitTxn, error)
}

// commitTxn is the common shape of Txn and ShardedTxn.
type commitTxn interface {
	Upsert(row Row) error
	CommitContext(ctx context.Context) error
	Abort()
}

// singleTopo adapts a one-shard Engine.
type singleTopo struct{ *wildfire.Engine }

func (t singleTopo) NumShards() int       { return 1 }
func (t singleTopo) SnapshotTS() types.TS { return t.LastGroomTS() }
func (t singleTopo) PostGroom() error     { _, err := t.Engine.PostGroom(); return err }
func (t singleTopo) WALStatus() []wildfire.WALStatus {
	return []wildfire.WALStatus{t.Engine.WALStatus()}
}
func (t singleTopo) begin(replica int) (commitTxn, error) {
	return t.Engine.Begin(replica)
}

// shardedTopo adapts an N-shard ShardedEngine.
type shardedTopo struct{ *wildfire.ShardedEngine }

func (t shardedTopo) begin(replica int) (commitTxn, error) {
	return t.ShardedEngine.Begin(replica)
}

// Table is the handle of one table of a DB: a single declarative query
// surface (Query) and transactional ingest, independent of whether the
// table runs on one engine or N hash shards.
type Table struct {
	db   *DB
	name string
	topo topology
	// catalogEntry is the table's full catalog record as created or
	// recovered — the source of truth for catalog rewrites, so options
	// that are invisible on the topology (Replicas, Partitions,
	// Parallelism) survive every restart.
	catalogEntry dbCatalogEntry
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Def returns the table definition.
func (t *Table) Def() TableDef { return t.topo.Table() }

// NumShards returns the table's shard count (1 for unsharded tables).
func (t *Table) NumShards() int { return t.topo.NumShards() }

// PrimaryIndex returns the table's primary Umzi index layout as created
// (or derived from the defaults) and persisted in the DB catalog.
func (t *Table) PrimaryIndex() IndexSpec { return t.catalogEntry.Index }

// BlockCacheStats snapshots the table's decoded-block cache: occupancy
// versus the configured byte budget plus hit/miss/eviction/dedup
// counters. Sharded tables share one cache across shards, so this is
// the whole table's read-path picture.
func (t *Table) BlockCacheStats() BlockCacheStats {
	return t.topo.BlockCache().Stats()
}

// entry returns the table's catalog record for persisting the DB
// catalog.
func (t *Table) entry() dbCatalogEntry { return t.catalogEntry }

// Query starts a fluent query against the table; see Query's docs for
// the builder surface and Run for execution.
func (t *Table) Query() *Query {
	return &Query{tbl: t}
}

// RunSpec compiles and starts one pre-built declarative query spec,
// returning the same streaming Rows that Query().…Run(ctx) would. The
// builder lowers to it; the server front end calls it directly with
// specs that arrived over the wire (wildfire.UnmarshalQuerySpec), so
// local and remote execution share one entry point.
func (t *Table) RunSpec(ctx context.Context, spec wildfire.QuerySpec) (*Rows, error) {
	ctx, cancel := context.WithCancel(ctx)
	qr, err := t.topo.RunQuery(ctx, spec)
	if err != nil {
		cancel()
		return nil, err
	}
	return &Rows{qr: qr, cancel: cancel}, nil
}

// Upsert runs one auto-committed transaction staging the rows on
// replica 0.
func (t *Table) Upsert(ctx context.Context, rows ...Row) error {
	return t.UpsertReplica(ctx, 0, rows...)
}

// UpsertReplica is Upsert through a chosen multi-master replica.
func (t *Table) UpsertReplica(ctx context.Context, replica int, rows ...Row) error {
	tx, err := t.db.Begin(ctx)
	if err != nil {
		return err
	}
	if err := tx.WithReplica(replica).Upsert(t.name, rows...); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit(ctx)
}

// Begin starts a transaction scoped to this table's DB (it may stage
// rows into any table); provided here so table-centric code reads
// naturally.
func (t *Table) Begin(ctx context.Context) (*Tx, error) { return t.db.Begin(ctx) }

// CreateIndex builds a secondary index online — on every shard — and
// persists it in the table's index catalog.
func (t *Table) CreateIndex(spec SecondaryIndexSpec) error { return t.topo.CreateIndex(spec) }

// Indexes returns the declared spec of every secondary index.
func (t *Table) Indexes() []SecondaryIndexSpec { return t.topo.SecondarySpecs() }

// Start launches the background daemons (groomer, post-groomer,
// indexer) at the given cadences. DBs opened with DBConfig.GroomEvery
// set have already started them.
func (t *Table) Start(groomEvery, postGroomEvery time.Duration) {
	t.topo.Start(groomEvery, postGroomEvery)
}

// Groom runs one groom operation (a lockstep round on sharded tables).
func (t *Table) Groom() error { return t.topo.Groom() }

// PostGroom runs one post-groom operation on every shard.
func (t *Table) PostGroom() error { return t.topo.PostGroom() }

// SyncIndex applies pending index evolve operations on every shard.
func (t *Table) SyncIndex() error { return t.topo.SyncIndex() }

// LiveCount reports committed-but-ungroomed records across all shards.
func (t *Table) LiveCount() int { return t.topo.LiveCount() }

// SnapshotTS returns the table's default read point: the newest groomed
// snapshot every shard can serve.
func (t *Table) SnapshotTS() TS { return t.topo.SnapshotTS() }

// Durability returns the table's commit-log configuration as created or
// recovered from the catalog (defaults resolved).
func (t *Table) Durability() DurabilityOptions { return t.catalogEntry.Durability }

// WALStatus reports each shard's commit-log state: durable segments and
// bytes, the groom watermark, and the largest commit sequence assigned.
// The distance between watermark and max sequence is the replay tail a
// crash would rebuild into the live zone.
func (t *Table) WALStatus() []WALStatus { return t.topo.WALStatus() }
