package client

import (
	"context"
	"fmt"
	"time"

	"umzi"
	"umzi/internal/wildfire"
	"umzi/internal/wire"
)

// Table is a handle on one remote table.
type Table struct {
	db   *DB
	name string
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Query starts a fluent query against the remote table. The builder
// surface mirrors umzi.Query — the spec it assembles is the same one —
// minus Explain: traces are process-local and do not travel.
type Query struct {
	tbl  *Table
	spec wildfire.QuerySpec
}

// Query starts a fluent query against the table.
func (t *Table) Query() *Query { return &Query{tbl: t} }

// Where filters rows by a predicate (build with umzi.Eq/Lt/.../And/Or).
// Multiple calls AND their predicates.
func (q *Query) Where(e umzi.Expr) *Query {
	if q.spec.Filter == nil {
		q.spec.Filter = e
	} else {
		q.spec.Filter = umzi.And(q.spec.Filter, e)
	}
	return q
}

// Select projects the result to the named columns.
func (q *Query) Select(cols ...string) *Query {
	q.spec.Columns = cols
	return q
}

// OrderBy asks for rows ordered by the named columns (index-served,
// like the local builder).
func (q *Query) OrderBy(cols ...string) *Query {
	q.spec.OrderBy = cols
	return q
}

// GroupBy groups an aggregate query by the named columns.
func (q *Query) GroupBy(cols ...string) *Query {
	q.spec.GroupBy = cols
	return q
}

// Aggs requests aggregates.
func (q *Query) Aggs(aggs ...umzi.Agg) *Query {
	q.spec.Aggs = append(q.spec.Aggs, aggs...)
	return q
}

// Limit caps the result rows; 0 means unlimited.
func (q *Query) Limit(n int) *Query {
	q.spec.Limit = n
	return q
}

// At pins the snapshot timestamp (time travel).
func (q *Query) At(ts umzi.TS) *Query {
	q.spec.TS = ts
	return q
}

// Via forces the named index ("" is the primary).
func (q *Query) Via(index string) *Query {
	q.spec.Via = index
	q.spec.ViaSet = true
	return q
}

// IncludeLive unions committed-but-ungroomed records into point gets
// and executor plans.
func (q *Query) IncludeLive() *Query {
	q.spec.IncludeLive = true
	return q
}

// NoIndex forces executor plans to scan the columnar zones.
func (q *Query) NoIndex() *Query {
	q.spec.NoIndexSelection = true
	return q
}

// Run ships the compiled spec to the server and streams the result.
// The context governs the whole result lifetime: cancelling it — or
// closing the Rows early — sends a Cancel frame that stops the
// server-side cursor and its shard workers.
func (q *Query) Run(ctx context.Context) (*Rows, error) {
	return q.tbl.RunSpec(ctx, q.spec)
}

// RunSpec runs a pre-built declarative spec remotely — the network
// analogue of umzi.Table.RunSpec, and what the local-vs-remote
// equivalence property test drives both sides with.
func (t *Table) RunSpec(ctx context.Context, spec wildfire.QuerySpec) (*Rows, error) {
	specBytes, err := wildfire.MarshalQuerySpec(spec)
	if err != nil {
		return nil, err
	}
	var timeoutNS uint64
	if dl, ok := ctx.Deadline(); ok {
		d := time.Until(dl)
		if d <= 0 {
			return nil, context.DeadlineExceeded
		}
		timeoutNS = uint64(d)
	}
	payload := wire.AppendU64(nil, timeoutNS)
	payload = wire.AppendString(payload, t.name)
	payload = wire.AppendUvarint(payload, uint64(len(specBytes)))
	payload = append(payload, specBytes...)

	// The connection is held for the stream's lifetime; Rows releases it.
	var rows *Rows
	err = t.db.withConn(ctx, func(cn *conn) error {
		if err := cn.write(wire.FrameQuery, payload); err != nil {
			cn.broken.Store(true)
			return errRetryable{err}
		}
		typ, resp, err := wire.ReadFrame(cn.br)
		if err != nil {
			cn.broken.Store(true)
			return errRetryable{err}
		}
		switch typ {
		case wire.FrameRowHeader:
			d := wire.NewDec(resp)
			cols := d.Strings()
			if err := d.Err(); err != nil {
				cn.broken.Store(true)
				return err
			}
			rows = newRows(t.db, cn, ctx, cols)
			// Pin the conn: hand withConn a pinned marker so release is
			// deferred to the Rows. See pinErr below.
			return errPinned
		case wire.FrameDone:
			return doneError(doneParts(resp))
		default:
			cn.broken.Store(true)
			return fmt.Errorf("client: unexpected frame 0x%02x awaiting query header", typ)
		}
	})
	if err == errPinned {
		return rows, nil
	}
	return nil, err
}

// All runs the query and materializes every row.
func (q *Query) All(ctx context.Context) ([][]umzi.Value, error) {
	rows, err := q.Run(ctx)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out [][]umzi.Value
	for rows.Next() {
		out = append(out, append([]umzi.Value(nil), rows.Values()...))
	}
	return out, rows.Err()
}

// One runs the query and returns its first row, with found=false when
// the result is empty.
func (q *Query) One(ctx context.Context) ([]umzi.Value, bool, error) {
	rows, err := q.Limit(1).Run(ctx)
	if err != nil {
		return nil, false, err
	}
	defer rows.Close()
	if !rows.Next() {
		return nil, false, rows.Err()
	}
	return append([]umzi.Value(nil), rows.Values()...), true, nil
}

// Count runs the query as COUNT(*) over its filter.
func (q *Query) Count(ctx context.Context) (int64, error) {
	if len(q.spec.Columns)+len(q.spec.GroupBy)+len(q.spec.Aggs)+len(q.spec.OrderBy) > 0 {
		return 0, fmt.Errorf("client: Count is a bare-filter convenience; build the aggregate explicitly instead")
	}
	q.spec.Aggs = []umzi.Agg{{Func: umzi.AggCount}}
	row, found, err := q.One(ctx)
	if err != nil || !found {
		return 0, err
	}
	return row[0].Int(), nil
}
