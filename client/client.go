// Package client is the Go client for umzi-server. Its API mirrors the
// in-process umzi surface — Open returns a DB, tables hand out fluent
// Query builders, results stream through Rows with the same
// Next/Scan/Close discipline — so a program written against umzi.DB
// ports to the network with an import swap and an address.
//
//	db, err := client.Open(client.Config{Addr: "127.0.0.1:7777", Token: "t0"})
//	rows, err := db.Table("orders").Query().
//	    Where(umzi.Eq("customer", umzi.I64(7))).
//	    OrderBy("order").
//	    Run(ctx)
//
// One TCP connection carries one request at a time (a streaming query
// holds its connection until drained or closed); concurrency comes from
// a connection pool bounded by Config.MaxConns. Contexts work like they
// do locally: cancelling a query's context — or closing its Rows early
// — sends a Cancel frame, the server stops its cursor and shard
// workers, and the client drains to the stream's end so the connection
// returns to the pool. Neither side leaks a goroutine on that path.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"umzi/internal/wire"
)

// Config configures a client DB.
type Config struct {
	// Addr is the server's host:port (required).
	Addr string
	// Token authenticates the connection; the server maps it to a
	// tenant.
	Token string
	// MaxConns bounds the connection pool (concurrent in-flight
	// requests); 0 means 8.
	MaxConns int
	// DialTimeout bounds one TCP dial + handshake; 0 means 5s.
	DialTimeout time.Duration
}

// AdmissionError reports a write the server's admission control refused
// or timed out queueing; back off and retry. Test with errors.As.
type AdmissionError struct{ Msg string }

func (e *AdmissionError) Error() string { return e.Msg }

// DB is a client handle on one umzi-server. It is safe for concurrent
// use; all methods taking a context honor cancellation.
type DB struct {
	cfg Config

	mu      sync.Mutex
	idle    []*conn
	open    map[*conn]struct{} // every live conn, idle or checked out
	numOpen int
	closed  bool
	waiters []chan *conn // FIFO of acquirers waiting for a released conn

	tenant        string
	serverVersion string
}

// Open validates the configuration by dialing and authenticating one
// connection, which seeds the pool.
func Open(cfg Config) (*DB, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("client: Config.Addr is required")
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 8
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	db := &DB{cfg: cfg, open: make(map[*conn]struct{})}
	cn, err := db.dial()
	if err != nil {
		return nil, err
	}
	db.tenant, db.serverVersion = cn.tenant, cn.serverVersion
	db.mu.Lock()
	db.numOpen = 1
	db.idle = []*conn{cn}
	db.mu.Unlock()
	return db, nil
}

// Tenant returns the tenant name the server authenticated this client
// as.
func (db *DB) Tenant() string { return db.tenant }

// ServerVersion returns the server's self-reported version.
func (db *DB) ServerVersion() string { return db.serverVersion }

// Table returns a handle on a named table. Like database/sql, the
// handle is lazy: a missing table surfaces when a query or commit runs.
func (db *DB) Table(name string) *Table { return &Table{db: db, name: name} }

// Close closes every pooled connection and refuses further use.
// Requests in flight on checked-out connections fail as their
// connections are closed underneath them.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.idle = nil
	open := db.open
	db.open = nil
	waiters := db.waiters
	db.waiters = nil
	db.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
	// Every live connection dies, including ones checked out to streams
	// in flight — their reads fail as the socket closes underneath them.
	for cn := range open {
		cn.destroy()
	}
	return nil
}

// ---- Connection pool -------------------------------------------------

// conn is one authenticated protocol connection. At most one request
// uses it at a time; writeMu serializes the one concurrent write the
// protocol allows (a Cancel racing the request writer / watcher).
type conn struct {
	c             net.Conn
	br            *bufio.Reader
	bw            *bufio.Writer
	writeMu       sync.Mutex
	tenant        string
	serverVersion string
	// broken means protocol state is lost; do not pool. Atomic because a
	// Rows' context watcher and DB.Close set it from goroutines racing
	// the connection's owner.
	broken atomic.Bool
}

func (db *DB) dial() (*conn, error) {
	c, err := net.DialTimeout("tcp", db.cfg.Addr, db.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dialing %s: %w", db.cfg.Addr, err)
	}
	cn := &conn{
		c:  c,
		br: bufio.NewReaderSize(c, 64<<10),
		bw: bufio.NewWriterSize(c, 64<<10),
	}
	c.SetDeadline(time.Now().Add(db.cfg.DialTimeout))
	payload := append([]byte(wire.Magic), wire.Version)
	payload = wire.AppendString(payload, db.cfg.Token)
	if err := cn.write(wire.FrameHello, payload); err != nil {
		c.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	typ, resp, err := wire.ReadFrame(cn.br)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	c.SetDeadline(time.Time{})
	switch typ {
	case wire.FrameHelloOK:
		d := wire.NewDec(resp)
		cn.tenant = d.String()
		cn.serverVersion = d.String()
		if err := d.Err(); err != nil {
			c.Close()
			return nil, fmt.Errorf("client: handshake: %w", err)
		}
		db.mu.Lock()
		if db.closed {
			db.mu.Unlock()
			c.Close()
			return nil, fmt.Errorf("client: db closed")
		}
		db.open[cn] = struct{}{}
		db.mu.Unlock()
		return cn, nil
	case wire.FrameDone:
		c.Close()
		_, msg := doneParts(resp)
		return nil, fmt.Errorf("client: server rejected connection: %s", msg)
	default:
		c.Close()
		return nil, fmt.Errorf("client: handshake: unexpected frame 0x%02x", typ)
	}
}

// write frames and flushes one payload under the write lock.
func (cn *conn) write(typ byte, payload []byte) error {
	cn.writeMu.Lock()
	defer cn.writeMu.Unlock()
	if err := wire.WriteFrame(cn.bw, typ, payload); err != nil {
		return err
	}
	return cn.bw.Flush()
}

func (cn *conn) destroy() { cn.broken.Store(true); cn.c.Close() }

// acquire checks a connection out of the pool, dialing when below the
// limit, queueing otherwise.
func (db *DB) acquire(ctx context.Context) (*conn, error) {
	db.mu.Lock()
	for {
		if db.closed {
			db.mu.Unlock()
			return nil, fmt.Errorf("client: db closed")
		}
		if n := len(db.idle); n > 0 {
			cn := db.idle[n-1]
			db.idle = db.idle[:n-1]
			db.mu.Unlock()
			return cn, nil
		}
		if db.numOpen < db.cfg.MaxConns {
			db.numOpen++
			db.mu.Unlock()
			cn, err := db.dial()
			if err != nil {
				db.mu.Lock()
				db.numOpen--
				db.mu.Unlock()
				return nil, err
			}
			return cn, nil
		}
		// At the limit: wait for a release.
		w := make(chan *conn, 1)
		db.waiters = append(db.waiters, w)
		db.mu.Unlock()
		select {
		case cn, ok := <-w:
			if !ok {
				return nil, fmt.Errorf("client: db closed")
			}
			if cn != nil {
				return cn, nil
			}
			// released a slot, not a conn: loop to dial
			db.mu.Lock()
		case <-ctx.Done():
			// Abandon the waiter slot; a release finding this channel
			// full-of-nobody hands the conn to the next waiter instead.
			db.mu.Lock()
			for i, o := range db.waiters {
				if o == w {
					db.waiters = append(db.waiters[:i], db.waiters[i+1:]...)
					break
				}
			}
			db.mu.Unlock()
			// A conn may have been handed off concurrently; put it back.
			select {
			case cn := <-w:
				if cn != nil {
					db.release(cn)
				}
			default:
			}
			return nil, ctx.Err()
		}
	}
}

// release returns a healthy connection to the pool (or hands it to a
// waiter); broken connections close and free their slot.
func (db *DB) release(cn *conn) {
	db.mu.Lock()
	if cn.broken.Load() || db.closed {
		delete(db.open, cn)
		db.numOpen--
		waiters := db.waiters
		db.waiters = nil
		db.mu.Unlock()
		cn.c.Close()
		// Freed a dial slot: wake every waiter to re-contend (they loop
		// and dial).
		for _, w := range waiters {
			select {
			case w <- nil:
			default:
			}
		}
		return
	}
	// Defense in depth: no request's leftover read deadline may follow a
	// connection back into the pool.
	cn.c.SetReadDeadline(time.Time{})
	for len(db.waiters) > 0 {
		w := db.waiters[0]
		db.waiters = db.waiters[1:]
		select {
		case w <- cn:
			db.mu.Unlock()
			return
		default: // waiter gave up; try the next
		}
	}
	db.idle = append(db.idle, cn)
	db.mu.Unlock()
}

// ---- Request running -------------------------------------------------

// errRetryable marks a failure where the request cannot have taken
// effect server-side — the write never completed (a partial frame is
// unparseable), or the response vanished for a request that is safe to
// re-run — so withConn may retry once on a fresh connection.
type errRetryable struct{ err error }

func (e errRetryable) Error() string { return e.err.Error() }
func (e errRetryable) Unwrap() error { return e.err }

// withConn runs fn on a pooled connection, retrying once on a fresh
// connection when a stale pooled one failed before any response
// arrived. fn must either leave the connection at a frame boundary or
// mark it broken.
func (db *DB) withConn(ctx context.Context, fn func(cn *conn) error) error {
	for attempt := 0; ; attempt++ {
		cn, err := db.acquire(ctx)
		if err != nil {
			return err
		}
		err = fn(cn)
		if err == errPinned {
			// The connection now belongs to a streaming Rows, which
			// releases it when the stream ends; see errPinned.
			return err
		}
		db.release(cn)
		var retry errRetryable
		if err != nil && errors.As(err, &retry) && attempt == 0 {
			continue
		}
		if err != nil {
			var r errRetryable
			if errors.As(err, &r) {
				return r.err
			}
		}
		return err
	}
}

// doneParts splits a Done payload.
func doneParts(payload []byte) (status byte, msg string) {
	if len(payload) == 0 {
		return wire.StatusError, "empty Done frame"
	}
	return payload[0], string(payload[1:])
}

// doneError maps a non-OK Done frame to the error the caller sees.
func doneError(status byte, msg string) error {
	switch status {
	case wire.StatusOK:
		return nil
	case wire.StatusCanceled:
		return context.Canceled
	case wire.StatusAdmission:
		return &AdmissionError{Msg: msg}
	default:
		return fmt.Errorf("client: server error: %s", msg)
	}
}

// roundTrip sends one request frame and reads the one Done that answers
// it, honoring ctx via a read-deadline watcher. idempotent declares
// whether the request is safe to re-run when the response never
// arrives: a write failure leaves at most a partial (unparseable) frame
// on the wire, so it is always retryable, but a read failure after a
// completed write is ambiguous — the server may already have applied
// the request — so only idempotent round-trips (Ping, reads) report it
// as retryable; Commit and CreateTable surface the ambiguity instead of
// risking a silent double-apply.
func (cn *conn) roundTrip(ctx context.Context, typ byte, payload []byte, idempotent bool) (err error) {
	stop := cn.watch(ctx)
	defer func() { err = stop(err) }()
	if err := cn.write(typ, payload); err != nil {
		cn.broken.Store(true)
		return errRetryable{err}
	}
	ftyp, resp, err := wire.ReadFrame(cn.br)
	if err != nil {
		cn.broken.Store(true)
		if idempotent {
			return errRetryable{err}
		}
		return fmt.Errorf("client: connection lost awaiting response (request may have been applied): %w", err)
	}
	if ftyp != wire.FrameDone {
		cn.broken.Store(true)
		return fmt.Errorf("client: unexpected frame 0x%02x awaiting Done", ftyp)
	}
	return doneError(doneParts(resp))
}

// watch unblocks this connection's reads when ctx ends by expiring the
// read deadline; the returned stop func tears the watcher down and
// rewrites a deadline-shaped error as the context's. A connection
// interrupted this way is mid-response and must not be pooled.
func (cn *conn) watch(ctx context.Context) func(error) error {
	if ctx.Done() == nil {
		return func(err error) error { return err }
	}
	stopCh := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			cn.c.SetReadDeadline(time.Now())
		case <-stopCh:
		}
	}()
	return func(err error) error {
		close(stopCh)
		if ctxErr := ctx.Err(); ctxErr != nil && err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				cn.broken.Store(true)
				return ctxErr
			}
			var r errRetryable
			if errors.As(err, &r) {
				cn.broken.Store(true)
				return ctxErr
			}
		}
		cn.c.SetReadDeadline(time.Time{})
		return err
	}
}

// Ping round-trips a health check.
func (db *DB) Ping(ctx context.Context) error {
	return db.withConn(ctx, func(cn *conn) error {
		return cn.roundTrip(ctx, wire.FramePing, nil, true)
	})
}
