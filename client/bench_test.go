package client_test

import (
	"context"
	"net"
	"testing"
	"time"

	"umzi"
	"umzi/client"
	"umzi/internal/server"
)

// BenchmarkRemoteQuery measures one point query over the wire —
// request frame, server-side point get, one row batch back — against a
// pooled client, parallel across connections. Compare with the local
// point-get numbers in Figure S2 to see what the network hop costs.
func BenchmarkRemoteQuery(b *testing.B) {
	ctx := context.Background()
	db, err := umzi.OpenDB(umzi.DBConfig{Store: umzi.NewMemStore(umzi.LatencyModel{})})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(umzi.TableDef{
		Name: "bench",
		Columns: []umzi.TableColumn{
			{Name: "k", Kind: umzi.KindInt64},
			{Name: "v", Kind: umzi.KindInt64},
		},
		PrimaryKey: []string{"k"},
		ShardKey:   []string{"k"},
	}, umzi.TableOptions{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	const rows = 4096
	batch := make([]umzi.Row, 0, rows)
	for i := int64(0); i < rows; i++ {
		batch = append(batch, umzi.Row{umzi.I64(i), umzi.I64(i * 3)})
	}
	if err := tbl.Upsert(ctx, batch...); err != nil {
		b.Fatal(err)
	}
	if err := tbl.Groom(); err != nil {
		b.Fatal(err)
	}

	srv, err := server.New(server.Config{DB: db})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}()

	cdb, err := client.Open(client.Config{Addr: ln.Addr().String(), MaxConns: 16})
	if err != nil {
		b.Fatal(err)
	}
	defer cdb.Close()
	ctbl := cdb.Table("bench")

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		k := int64(0)
		for pb.Next() {
			row, found, err := ctbl.Query().Where(umzi.Eq("k", umzi.I64(k%rows))).One(ctx)
			if err != nil || !found {
				b.Errorf("point query k=%d: found=%v err=%v", k%rows, found, err)
				return
			}
			if row[1].Int() != (k%rows)*3 {
				b.Errorf("k=%d: wrong row %v", k%rows, row)
				return
			}
			k++
		}
	})
}
