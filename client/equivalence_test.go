package client_test

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"testing"
	"time"

	"umzi"
	"umzi/client"
	"umzi/internal/server"
	"umzi/internal/wildfire"
	"umzi/internal/wire"
)

// The local-vs-remote equivalence property: a query spec shipped over
// the wire to umzi-server must return exactly the rows the same spec
// returns against the same DB in-process. Specs are generated randomly
// over every builder-expressible shape (filters, projections, ordering,
// aggregates, forced indexes, limits, live unions); when a spec fails
// to compile, both sides must refuse it.

var eqRegions = []string{"east", "west", "north"}

func eqSetup(t *testing.T) (*umzi.Table, *client.Table, func()) {
	t.Helper()
	db, err := umzi.OpenDB(umzi.DBConfig{
		Store:      umzi.NewMemStore(umzi.LatencyModel{}),
		GroomEvery: time.Hour, // manual grooming only: a quiescent DB is deterministic
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(umzi.TableDef{
		Name: "eq",
		Columns: []umzi.TableColumn{
			{Name: "k", Kind: umzi.KindInt64},
			{Name: "region", Kind: umzi.KindString},
			{Name: "v", Kind: umzi.KindString},
			{Name: "w", Kind: umzi.KindFloat64},
		},
		PrimaryKey: []string{"k"},
		ShardKey:   []string{"k"},
	}, umzi.TableOptions{
		Shards: 3,
		Index:  umzi.IndexSpec{Sort: []string{"k"}},
		Secondaries: []umzi.SecondaryIndexSpec{{
			Name:      "by_region",
			IndexSpec: umzi.IndexSpec{Equality: []string{"region"}, Sort: []string{"k"}, Included: []string{"v"}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	fill := func(lo, hi int) {
		var rows []umzi.Row
		for k := lo; k < hi; k++ {
			rows = append(rows, umzi.Row{
				umzi.I64(int64(k)),
				umzi.Str(eqRegions[rng.Intn(len(eqRegions))]),
				umzi.Str(fmt.Sprintf("v%04d", rng.Intn(50))),
				umzi.F64(float64(rng.Intn(1000)) / 8),
			})
		}
		if err := tbl.Upsert(ctx, rows...); err != nil {
			t.Fatal(err)
		}
	}
	fill(0, 400)
	if err := tbl.Groom(); err != nil {
		t.Fatal(err)
	}
	fill(400, 500) // stays in the live zone: IncludeLive sees 500 rows, snapshots 400

	srv, err := server.New(server.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	cdb, err := client.Open(client.Config{Addr: ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	ctbl := cdb.Table("eq")
	cleanup := func() {
		cdb.Close()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
		db.Close()
	}
	return tbl, ctbl, cleanup
}

// eqValue draws a filter constant typed for the given column, biased
// into the data's own range so filters select nonempty results often.
func eqValue(rng *rand.Rand, col string) umzi.Value {
	switch col {
	case "k":
		return umzi.I64(int64(rng.Intn(600)) - 50)
	case "region":
		return umzi.Str(append(eqRegions, "nowhere")[rng.Intn(4)])
	case "v":
		return umzi.Str(fmt.Sprintf("v%04d", rng.Intn(60)))
	default: // w
		return umzi.F64(float64(rng.Intn(1100)) / 8)
	}
}

func eqFilter(rng *rand.Rand, depth int) umzi.Expr {
	cols := []string{"k", "region", "v", "w"}
	if depth >= 3 || rng.Intn(3) > 0 {
		col := cols[rng.Intn(len(cols))]
		v := eqValue(rng, col)
		switch rng.Intn(6) {
		case 0:
			return umzi.Eq(col, v)
		case 1:
			return umzi.Ne(col, v)
		case 2:
			return umzi.Lt(col, v)
		case 3:
			return umzi.Le(col, v)
		case 4:
			return umzi.Gt(col, v)
		default:
			return umzi.Ge(col, v)
		}
	}
	kids := make([]umzi.Expr, 1+rng.Intn(3))
	for i := range kids {
		kids[i] = eqFilter(rng, depth+1)
	}
	if rng.Intn(2) == 0 {
		return umzi.And(kids...)
	}
	return umzi.Or(kids...)
}

func eqSpec(rng *rand.Rand) wildfire.QuerySpec {
	spec := wildfire.QuerySpec{
		IncludeLive:      rng.Intn(2) == 0,
		NoIndexSelection: rng.Intn(4) == 0,
	}
	if rng.Intn(4) > 0 {
		spec.Filter = eqFilter(rng, 0)
	}
	if rng.Intn(3) == 0 {
		spec.Limit = 1 + rng.Intn(40)
	}
	switch rng.Intn(6) {
	case 0: // aggregate query
		if rng.Intn(2) == 0 {
			spec.GroupBy = []string{"region"}
		}
		n := 1 + rng.Intn(2)
		for i := 0; i < n; i++ {
			agg := []umzi.Agg{
				{Func: umzi.AggCount},
				{Func: umzi.AggSum, Col: "w", As: "total"},
				{Func: umzi.AggMin, Col: "k"},
				{Func: umzi.AggMax, Col: "w"},
				{Func: umzi.AggAvg, Col: "w", As: "mean"},
			}[rng.Intn(5)]
			spec.Aggs = append(spec.Aggs, agg)
		}
	case 1: // ordered rows off the primary index
		spec.OrderBy = []string{"k"}
	case 2: // forced secondary: pin its equality column so it can scan
		pin := umzi.Eq("region", umzi.Str(eqRegions[rng.Intn(len(eqRegions))]))
		if spec.Filter != nil {
			spec.Filter = umzi.And(spec.Filter, pin)
		} else {
			spec.Filter = pin
		}
		spec.Via, spec.ViaSet = "by_region", true
	case 3: // projection
		all := []string{"k", "region", "v", "w"}
		n := 1 + rng.Intn(len(all))
		spec.Columns = all[:n]
	}
	return spec
}

// encodeRows canonicalizes a result set: each row wire-encoded, so
// value comparison is the codec's own bit-exact equality.
func encodeRow(t *testing.T, vals []umzi.Value) string {
	b, err := wire.AppendRow(nil, vals)
	if err != nil {
		t.Fatalf("encode row: %v", err)
	}
	return string(b)
}

func TestLocalRemoteEquivalence(t *testing.T) {
	tbl, ctbl, cleanup := eqSetup(t)
	defer cleanup()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1234))

	const iters = 300
	ran, failedBoth := 0, 0
	for i := 0; i < iters; i++ {
		spec := eqSpec(rng)

		var localRows []string
		var localCols []string
		lr, lerr := tbl.RunSpec(ctx, spec)
		if lerr == nil {
			localCols = lr.Columns()
			for lr.Next() {
				localRows = append(localRows, encodeRow(t, lr.Values()))
			}
			if err := lr.Err(); err != nil {
				t.Fatalf("iter %d: local stream: %v (spec %+v)", i, err, spec)
			}
			lr.Close()
		}

		var remoteRows []string
		var remoteCols []string
		rr, rerr := ctbl.RunSpec(ctx, spec)
		if rerr == nil {
			remoteCols = rr.Columns()
			for rr.Next() {
				remoteRows = append(remoteRows, encodeRow(t, rr.Values()))
			}
			if err := rr.Err(); err != nil {
				t.Fatalf("iter %d: remote stream: %v (spec %+v)", i, err, spec)
			}
			rr.Close()
		}

		if (lerr == nil) != (rerr == nil) {
			t.Fatalf("iter %d: compile divergence: local=%v remote=%v (spec %+v)", i, lerr, rerr, spec)
		}
		if lerr != nil {
			failedBoth++
			continue
		}
		ran++

		if strings.Join(localCols, ",") != strings.Join(remoteCols, ",") {
			t.Fatalf("iter %d: columns differ: local %v remote %v (spec %+v)", i, localCols, remoteCols, spec)
		}
		if len(spec.OrderBy) > 0 || len(spec.Aggs) > 0 {
			// Ordered results (and aggregate results, ordered by group
			// key) must match row for row.
			for j := range localRows {
				if j >= len(remoteRows) || localRows[j] != remoteRows[j] {
					t.Fatalf("iter %d: ordered rows diverge at %d (local %d rows, remote %d; spec %+v)",
						i, j, len(localRows), len(remoteRows), spec)
				}
			}
		}
		sort.Strings(localRows)
		sort.Strings(remoteRows)
		if len(localRows) != len(remoteRows) {
			t.Fatalf("iter %d: row counts differ: local %d remote %d (spec %+v)", i, len(localRows), len(remoteRows), spec)
		}
		for j := range localRows {
			if localRows[j] != remoteRows[j] {
				t.Fatalf("iter %d: row multisets differ at %d (spec %+v)", i, j, spec)
			}
		}
	}
	if ran == 0 {
		t.Fatal("no generated spec compiled; the generator is broken")
	}
	t.Logf("equivalence held on %d specs (%d refused identically on both sides)", ran, failedBoth)
}
