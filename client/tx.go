package client

import (
	"context"
	"encoding/json"
	"fmt"

	"umzi"
	"umzi/internal/wildfire"
	"umzi/internal/wire"
)

// TableOptions mirror umzi.TableOptions for remote table creation; the
// zero value means defaults, exactly as locally.
type TableOptions struct {
	// Shards is the hash-shard count; 0 means unsharded.
	Shards int
	// Index overrides the primary Umzi index layout.
	Index umzi.IndexSpec
	// Secondaries declares secondary indexes built at creation.
	Secondaries []umzi.SecondaryIndexSpec
	// Replicas is the multi-master replica count; 0 means 1.
	Replicas int
	// Partitions is the groomed-zone partition count; 0 means default.
	Partitions int
	// Parallelism caps per-shard scan workers; 0 means default.
	Parallelism int
	// Durability configures the per-shard commit log.
	Durability umzi.DurabilityOptions
}

// TableInfo is one catalog entry as reported by the server.
type TableInfo struct {
	Def    umzi.TableDef
	Index  umzi.IndexSpec
	Shards int
}

// CreateTable creates a table on the server.
func (db *DB) CreateTable(ctx context.Context, def umzi.TableDef, opts TableOptions) (*Table, error) {
	payload, err := json.Marshal(wildfire.CreateTableRequest{
		Def:         def,
		Index:       opts.Index,
		Secondaries: opts.Secondaries,
		Shards:      opts.Shards,
		Replicas:    opts.Replicas,
		Partitions:  opts.Partitions,
		Parallelism: opts.Parallelism,
		Durability:  opts.Durability,
	})
	if err != nil {
		return nil, err
	}
	err = db.withConn(ctx, func(cn *conn) error {
		return cn.roundTrip(ctx, wire.FrameCreateTable, payload, false)
	})
	if err != nil {
		return nil, err
	}
	return db.Table(def.Name), nil
}

// Catalog lists the server's tables.
func (db *DB) Catalog(ctx context.Context) ([]TableInfo, error) {
	var out []TableInfo
	err := db.withConn(ctx, func(cn *conn) error {
		stop := cn.watch(ctx)
		err := func() error {
			if err := cn.write(wire.FrameCatalog, nil); err != nil {
				cn.broken.Store(true)
				return errRetryable{err}
			}
			typ, resp, err := wire.ReadFrame(cn.br)
			if err != nil {
				cn.broken.Store(true)
				return errRetryable{err}
			}
			switch typ {
			case wire.FrameCatalogData:
				var cr wildfire.CatalogResponse
				if err := json.Unmarshal(resp, &cr); err != nil {
					return fmt.Errorf("client: decoding catalog: %w", err)
				}
				out = out[:0]
				for _, t := range cr.Tables {
					out = append(out, TableInfo{Def: t.Def, Index: t.Index, Shards: t.Shards})
				}
				return nil
			case wire.FrameDone:
				return doneError(doneParts(resp))
			default:
				cn.broken.Store(true)
				return fmt.Errorf("client: unexpected frame 0x%02x awaiting catalog", typ)
			}
		}()
		return stop(err)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Tx is a client-side transaction: rows stage locally and ship to the
// server in one Commit frame, which applies them in one engine
// transaction — all tables, all rows, atomically, under write
// admission control.
type Tx struct {
	db      *DB
	replica int
	order   []string
	staged  map[string][]umzi.Row
	done    bool
}

// Begin starts a transaction. Staging is purely local; Commit talks to
// the server.
func (db *DB) Begin(ctx context.Context) (*Tx, error) {
	db.mu.Lock()
	closed := db.closed
	db.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("client: db closed")
	}
	_ = ctx
	return &Tx{db: db, staged: make(map[string][]umzi.Row)}, nil
}

// WithReplica routes the commit through a chosen multi-master replica.
func (tx *Tx) WithReplica(replica int) *Tx {
	tx.replica = replica
	return tx
}

// Upsert stages rows into the named table.
func (tx *Tx) Upsert(table string, rows ...umzi.Row) error {
	if tx.done {
		return fmt.Errorf("client: transaction already finished")
	}
	if _, ok := tx.staged[table]; !ok {
		tx.order = append(tx.order, table)
	}
	tx.staged[table] = append(tx.staged[table], rows...)
	return nil
}

// Abort discards the staged rows; nothing has reached the server.
func (tx *Tx) Abort() { tx.done = true; tx.staged = nil }

// Commit ships the staged rows. A server refusal under write pressure
// surfaces as *AdmissionError.
func (tx *Tx) Commit(ctx context.Context) error {
	if tx.done {
		return fmt.Errorf("client: transaction already finished")
	}
	tx.done = true
	payload := wire.AppendUvarint(nil, uint64(tx.replica))
	payload = wire.AppendUvarint(payload, uint64(len(tx.order)))
	for _, table := range tx.order {
		rows := tx.staged[table]
		payload = wire.AppendString(payload, table)
		payload = wire.AppendUvarint(payload, uint64(len(rows)))
		for _, row := range rows {
			var err error
			if payload, err = wire.AppendRow(payload, row); err != nil {
				return err
			}
		}
	}
	tx.staged = nil
	return tx.db.withConn(ctx, func(cn *conn) error {
		return cn.roundTrip(ctx, wire.FrameCommit, payload, false)
	})
}

// Upsert runs one auto-committed transaction staging the rows on
// replica 0, mirroring umzi.Table.Upsert.
func (t *Table) Upsert(ctx context.Context, rows ...umzi.Row) error {
	tx, err := t.db.Begin(ctx)
	if err != nil {
		return err
	}
	if err := tx.Upsert(t.name, rows...); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit(ctx)
}
