package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"umzi"
	"umzi/internal/wire"
)

// errPinned is the sentinel a streaming request returns through withConn
// to say "the connection now belongs to a Rows; do not release it".
var errPinned = errors.New("client: conn pinned to stream")

// drainGrace bounds how long Close waits for the server to acknowledge
// a Cancel with the stream's terminal Done frame before giving the
// connection up for dead.
const drainGrace = 10 * time.Second

// frameBufPool recycles the per-stream frame read buffer. RowBatch
// payloads decode into it, and wire.Dec copies byte strings out, so the
// buffer is reusable the moment a batch is decoded — one buffer serves
// a whole stream, and streams recycle it through the pool.
var frameBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	},
}

// Rows streams one remote query result. It mirrors umzi.Rows: call Next
// until false, read Values/Scan per row, check Err, and always Close.
// The Rows owns its connection until the stream ends; Close on a
// half-read stream sends a Cancel frame — stopping the server-side
// cursor and its shard workers — and drains to the terminal Done so the
// connection returns to the pool at a frame boundary.
type Rows struct {
	db   *DB
	cn   *conn
	ctx  context.Context
	cols []string

	// stopWatch tears down the context watcher goroutine.
	stopWatch chan struct{}

	// mu guards the done transition. The context watcher's select can
	// pick ctx.Done over an already-closed stopWatch, so sendCancel must
	// re-check ownership under mu before touching a connection that
	// finish/fail may have released to the pool.
	mu sync.Mutex

	batch [][]umzi.Value
	idx   int // position in batch; -1 before the first Next

	// rbuf is the pooled frame read buffer; released once the stream
	// reaches a terminal state (finish or fail).
	rbuf *[]byte

	err      error
	done     bool // terminal Done consumed; cn released (guarded by mu)
	closed   bool
	canceled bool // we sent a Cancel frame
}

func newRows(db *DB, cn *conn, ctx context.Context, cols []string) *Rows {
	r := &Rows{db: db, cn: cn, ctx: ctx, cols: cols, idx: -1,
		stopWatch: make(chan struct{}), rbuf: frameBufPool.Get().(*[]byte)}
	if ctx.Done() != nil {
		// The watcher translates context cancellation into a Cancel frame.
		// The server answers with Done(Canceled), so the blocked Next read
		// completes; no read-deadline games needed on this path.
		go func() {
			select {
			case <-ctx.Done():
				r.sendCancel()
			case <-r.stopWatch:
			}
		}()
	}
	return r
}

// Columns returns the result's output column names.
func (r *Rows) Columns() []string { return r.cols }

// sendCancel sends one Cancel frame (idempotence is the server's
// problem; stale cancels are ignored there) and bounds the drain that
// must follow. It is a no-op once the stream is done: the connection
// then belongs to the pool (or another request), and arming a deadline
// or writing a frame on it would poison an unrelated round-trip.
func (r *Rows) sendCancel() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return
	}
	r.cn.c.SetReadDeadline(time.Now().Add(drainGrace))
	if err := r.cn.write(wire.FrameCancel, nil); err != nil {
		r.cn.broken.Store(true)
	}
}

// Next advances to the next row, pulling RowBatch frames off the wire
// as needed. It returns false at the end of the stream or on error;
// check Err to tell the two apart.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if r.idx+1 < len(r.batch) {
		r.idx++
		return true
	}
	if r.done {
		return false
	}
	// Batch exhausted: read the next frame. The previous batch's values
	// were copied out of rbuf at decode time, so reusing it here cannot
	// corrupt rows a caller still holds.
	for {
		typ, payload, err := wire.ReadFrameInto(r.cn.br, r.rbuf)
		if err != nil {
			r.fail(fmt.Errorf("client: reading query stream: %w", err))
			return false
		}
		switch typ {
		case wire.FrameRowBatch:
			d := wire.NewDec(payload)
			n := d.Count(1 << 20)
			batch := r.batch[:0]
			for i := 0; i < n && d.Err() == nil; i++ {
				batch = append(batch, d.Row())
			}
			if err := d.Err(); err != nil {
				r.fail(err)
				return false
			}
			if n == 0 {
				continue // defensive: empty batch, keep reading
			}
			r.batch, r.idx = batch, 0
			return true
		case wire.FrameDone:
			r.finish(doneError(doneParts(payload)))
			return false
		default:
			r.fail(fmt.Errorf("client: unexpected frame 0x%02x in query stream", typ))
			return false
		}
	}
}

// fail records a transport-level error: the connection is mid-stream
// and unpoolable.
func (r *Rows) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		// A read unblocked by the context watcher surfaces as a deadline
		// error; report the context's instead.
		if ctxErr := r.ctx.Err(); ctxErr != nil {
			err = ctxErr
		}
		r.err = err
	}
	if r.done {
		r.mu.Unlock()
		return
	}
	r.done = true
	r.mu.Unlock()
	close(r.stopWatch)
	r.releaseBuf()
	r.cn.destroy()
	r.db.release(r.cn)
}

// finish consumes the stream's terminal Done: the connection is at a
// frame boundary and goes back to the pool.
func (r *Rows) finish(err error) {
	r.mu.Lock()
	if r.err == nil {
		if err != nil && errors.Is(err, context.Canceled) && r.ctx.Err() != nil {
			err = r.ctx.Err()
		}
		r.err = err
	}
	if r.done {
		r.mu.Unlock()
		return
	}
	r.done = true
	r.mu.Unlock()
	close(r.stopWatch)
	r.releaseBuf()
	r.cn.c.SetReadDeadline(time.Time{})
	r.db.release(r.cn)
}

// releaseBuf returns the frame read buffer to the pool; finish and fail
// are mutually exclusive and run once, so this never double-releases.
func (r *Rows) releaseBuf() {
	if r.rbuf != nil {
		frameBufPool.Put(r.rbuf)
		r.rbuf = nil
	}
}

// Values returns the current row. The slice is reused; copy it to keep
// it past the next call to Next.
func (r *Rows) Values() []umzi.Value {
	if r.idx < 0 || r.idx >= len(r.batch) {
		return nil
	}
	return r.batch[r.idx]
}

// Scan copies the current row's values into dest pointers
// (*int64, *uint64, *float64, *bool, *string, *[]byte, *umzi.Value, or
// *any), one per output column.
func (r *Rows) Scan(dest ...any) error {
	vals := r.Values()
	if vals == nil {
		return fmt.Errorf("client: Scan called without a current row")
	}
	if len(dest) != len(vals) {
		return fmt.Errorf("client: Scan got %d destinations for %d columns", len(dest), len(vals))
	}
	for i, v := range vals {
		if err := umzi.ScanValue(v, dest[i]); err != nil {
			return fmt.Errorf("column %d (%s): %w", i, r.cols[i], err)
		}
	}
	return nil
}

// Err returns the first error hit while streaming (nil after a clean
// end of stream). A context-driven cancellation reports the context's
// error; a server-reported admission or execution failure arrives here
// too.
func (r *Rows) Err() error { return r.err }

// Close releases the result. On a half-read stream it cancels the
// server-side cursor (Cancel frame) and drains to the terminal Done so
// the connection is reusable; either way the connection goes back to
// the pool or, if the protocol state is lost, is torn down. Close is
// idempotent and returns the stream's first error, matching the local
// umzi.Rows contract that teardown failures are not silently dropped.
func (r *Rows) Close() error {
	if r.closed {
		return r.closeErr()
	}
	r.closed = true
	if r.done {
		return r.closeErr()
	}
	r.canceled = true
	r.sendCancel()
	// Drain to Done. The server owes exactly one terminal frame; row
	// batches in flight before the cancel took effect are discarded.
	for {
		typ, payload, err := wire.ReadFrameInto(r.cn.br, r.rbuf)
		if err != nil {
			r.fail(fmt.Errorf("client: draining canceled stream: %w", err))
			return r.closeErr()
		}
		switch typ {
		case wire.FrameRowBatch:
			continue
		case wire.FrameDone:
			r.finish(doneError(doneParts(payload)))
			return r.closeErr()
		default:
			r.fail(fmt.Errorf("client: unexpected frame 0x%02x draining stream", typ))
			return r.closeErr()
		}
	}
}

// closeErr is the error Close reports: an early Close that canceled a
// healthy stream is a success, not a context.Canceled.
func (r *Rows) closeErr() error {
	err := r.Err()
	if r.canceled && (errors.Is(err, context.Canceled) && r.ctx.Err() == nil) {
		return nil
	}
	return err
}
