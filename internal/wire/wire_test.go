package wire

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"umzi/internal/keyenc"
)

// randValue draws one value covering every encodable kind, including
// the edges the fixed-width encodings must round-trip exactly.
func randValue(rng *rand.Rand) keyenc.Value {
	switch rng.Intn(9) {
	case 8:
		return keyenc.Value{} // null: what aggregates over empty groups yield
	case 0:
		return keyenc.I64(rng.Int63() - rng.Int63())
	case 1:
		return keyenc.I64([]int64{0, 1, -1, math.MinInt64, math.MaxInt64}[rng.Intn(5)])
	case 2:
		return keyenc.U64(rng.Uint64())
	case 3:
		return keyenc.F64([]float64{0, -0.0, 1.5, -1e308, math.Inf(1), math.Inf(-1), math.SmallestNonzeroFloat64}[rng.Intn(7)])
	case 4:
		return keyenc.B(rng.Intn(2) == 0)
	case 5:
		n := rng.Intn(64)
		b := make([]byte, n)
		rng.Read(b)
		return keyenc.Str(string(b))
	case 6:
		return keyenc.Str("")
	default:
		n := rng.Intn(64)
		b := make([]byte, n)
		rng.Read(b)
		return keyenc.Raw(b)
	}
}

// sameValue compares two values through their encodings, which treats
// an empty byte payload and a nil one as the same value (they are).
func sameValue(a, b keyenc.Value) bool {
	ab, aerr := AppendValue(nil, a)
	bb, berr := AppendValue(nil, b)
	return aerr == nil && berr == nil && bytes.Equal(ab, bb)
}

func TestValueRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		v := randValue(rng)
		b, err := AppendValue(nil, v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		d := NewDec(b)
		got := d.Value()
		if err := d.Err(); err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if d.Len() != 0 {
			t.Fatalf("decode %v left %d bytes", v, d.Len())
		}
		if got.Kind() != v.Kind() || !sameValue(got, v) {
			t.Fatalf("round-trip changed value: %#v -> %#v", v, got)
		}
	}
}

func TestFloatBitsExact(t *testing.T) {
	// NaN payloads and signed zero must survive: the equivalence
	// property between local and remote execution rests on bit-exact
	// floats, not on ==.
	for _, bits := range []uint64{
		math.Float64bits(math.NaN()),
		0x7ff8000000000001, // NaN with a payload
		math.Float64bits(math.Copysign(0, -1)),
	} {
		v := keyenc.F64(math.Float64frombits(bits))
		b, err := AppendValue(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		got := NewDec(b).Value()
		if math.Float64bits(got.Float()) != bits {
			t.Errorf("float bits %x -> %x", bits, math.Float64bits(got.Float()))
		}
	}
}

func TestRowRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		row := make([]keyenc.Value, rng.Intn(8))
		for j := range row {
			row[j] = randValue(rng)
		}
		b, err := AppendRow(nil, row)
		if err != nil {
			t.Fatal(err)
		}
		d := NewDec(b)
		got := d.Row()
		if err := d.Err(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(row) {
			t.Fatalf("row length %d -> %d", len(row), len(got))
		}
		for j := range row {
			if got[j].Kind() != row[j].Kind() || !sameValue(got[j], row[j]) {
				t.Fatalf("row[%d] changed: %#v -> %#v", j, row[j], got[j])
			}
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte("x"), 100000)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != byte(i+1) {
			t.Fatalf("frame %d type %d", i, typ)
		}
		if len(got) != len(p) {
			t.Fatalf("frame %d payload %d bytes, want %d", i, len(got), len(p))
		}
		if len(p) > 0 && !bytes.Equal(got, p) {
			t.Fatalf("frame %d payload changed", i)
		}
	}
}

func TestFrameLimits(t *testing.T) {
	if err := WriteFrame(&bytes.Buffer{}, 1, make([]byte, MaxFrame)); err == nil {
		t.Error("oversized frame written")
	}
	// A peer announcing an absurd length must fail before allocating.
	hdr := []byte{0xff, 0xff, 0xff, 0xff, 0x01}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Error("absurd frame length accepted")
	}
	// Zero-length frames have no type byte and are invalid.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Error("zero-length frame accepted")
	}
}

func TestDecShortInputsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(32))
		rng.Read(b)
		d := NewDec(b)
		// Exercise every reader on garbage; the sticky error must absorb
		// all failures without panics or giant allocations.
		d.Byte()
		d.Uvarint()
		d.U64()
		_ = d.String()
		d.Strings()
		d.Value()
		d.Row()
		d.Count(10)
	}
}

func TestDecCountBounds(t *testing.T) {
	b := AppendUvarint(nil, 1<<40)
	d := NewDec(b)
	if d.Count(1 << 16); d.Err() == nil {
		t.Error("absurd count accepted")
	}
}
