// Package wire is the dependency-free binary protocol umzi-server
// speaks: length-prefixed frames over a byte stream, plus the primitive
// encodings (uvarints, strings, column values, row batches) both the
// server and the client package compose payloads from.
//
// One frame is
//
//	u32 length (big endian, of everything after itself)
//	u8  type   (Frame* constants)
//	payload    (length-1 bytes)
//
// The conversation: the client opens with Hello (magic, protocol
// version, auth token) and the server answers HelloOK or Done with an
// error status. After that the connection is a sequential
// request/response channel — the client sends one request frame (Query,
// Commit, CreateTable, Catalog, Ping) and reads frames until the
// request's terminator. Query streams: RowHeader with the output
// columns, any number of RowBatch frames, then Done. The one frame a
// client may send while a response is in flight is Cancel, which stops
// the server-side cursor; the client then drains to the Done the server
// still owes it, so both ends agree on the frame boundary and the
// connection stays reusable.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"umzi/internal/keyenc"
)

// Magic opens every Hello payload; it doubles as a fail-fast check that
// whatever dialed the port actually speaks this protocol.
const Magic = "UMZW1"

// Version is the protocol version carried in Hello; the server rejects
// versions it does not speak.
const Version = 1

// MaxFrame bounds one frame's length field: a peer announcing more is
// broken or hostile, and the reader fails instead of allocating.
const MaxFrame = 16 << 20

// Frame types. Client-to-server types have the high bit clear,
// server-to-client types have it set.
const (
	FrameHello       byte = 0x01 // magic | u8 version | str token
	FrameQuery       byte = 0x02 // u64 timeout ns (0 = none) | str table | marshaled QuerySpec
	FrameCancel      byte = 0x03 // empty; stop the in-flight query
	FrameCommit      byte = 0x04 // uvarint replica | uvarint #tables | per table: str name, uvarint #rows, rows
	FrameCreateTable byte = 0x05 // JSON wildfire.CreateTableRequest
	FrameCatalog     byte = 0x06 // empty; request the table catalog
	FramePing        byte = 0x07 // empty; health check

	FrameHelloOK     byte = 0x81 // str tenant | str server version
	FrameRowHeader   byte = 0x82 // uvarint #cols | str...
	FrameRowBatch    byte = 0x83 // uvarint #rows | per row: uvarint #vals, value...
	FrameDone        byte = 0x84 // u8 status | str message; terminates any request
	FrameCatalogData byte = 0x85 // JSON wildfire.CatalogResponse; terminates Catalog
)

// Done statuses.
const (
	// StatusOK terminates a successful request.
	StatusOK byte = 0
	// StatusError carries the request's error message.
	StatusError byte = 1
	// StatusCanceled acknowledges a Cancel frame (or a server-observed
	// disconnect/deadline) ending a query stream early.
	StatusCanceled byte = 2
	// StatusAdmission reports a write rejected (or timed out queued) by
	// the server's admission control; clients surface it as a typed
	// error so callers can back off and retry.
	StatusAdmission byte = 3
)

// WriteFrame writes one frame. The payload must fit MaxFrame.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds the %d-byte limit", len(payload)+1, MaxFrame)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame, enforcing MaxFrame. The payload is freshly
// allocated and owned by the caller.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var buf []byte
	return ReadFrameInto(r, &buf)
}

// ReadFrameInto reads one frame like ReadFrame, but decodes the payload
// into *buf — growing it as needed — so a streaming reader can recycle
// one buffer across frames. The returned payload aliases *buf and is
// valid only until the next call with the same buffer; Dec's
// byte-string readers copy, so decoded values outlive it.
func ReadFrameInto(r io.Reader, buf *[]byte) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 || n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame length %d out of range", n)
	}
	if n > 1 {
		if need := int(n - 1); cap(*buf) < need {
			*buf = make([]byte, need)
		}
		payload = (*buf)[:n-1]
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, nil, fmt.Errorf("wire: short frame: %w", err)
		}
	}
	return hdr[4], payload, nil
}

// ---- Primitive encodings ---------------------------------------------

// AppendUvarint appends v as a uvarint.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendU64 appends v as 8 big-endian bytes.
func AppendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendStrings appends a counted list of strings.
func AppendStrings(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = AppendString(b, s)
	}
	return b
}

// AppendValue appends one column value: a kind byte, then a
// kind-specific payload (8 raw big-endian bytes for the fixed-width
// numerics, one byte for bool, a length-prefixed byte string
// otherwise). The encoding round-trips every value exactly — the
// local-vs-remote equivalence property rests on it.
func AppendValue(b []byte, v keyenc.Value) ([]byte, error) {
	k := v.Kind()
	b = append(b, byte(k))
	switch k {
	case keyenc.KindInvalid:
		// The engine's null: aggregates over empty groups produce it
		// (MIN of nothing). It is a kind byte with no payload.
		return b, nil
	case keyenc.KindInt64:
		return binary.BigEndian.AppendUint64(b, uint64(v.Int())), nil
	case keyenc.KindUint64:
		return binary.BigEndian.AppendUint64(b, v.Uint()), nil
	case keyenc.KindFloat64:
		return binary.BigEndian.AppendUint64(b, math.Float64bits(v.Float())), nil
	case keyenc.KindBool:
		if v.Bool() {
			return append(b, 1), nil
		}
		return append(b, 0), nil
	case keyenc.KindString, keyenc.KindBytes:
		p := v.Bytes()
		b = binary.AppendUvarint(b, uint64(len(p)))
		return append(b, p...), nil
	default:
		return nil, fmt.Errorf("wire: cannot encode value of kind %v", k)
	}
}

// AppendRow appends one row as a counted list of values.
func AppendRow(b []byte, row []keyenc.Value) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(row)))
	var err error
	for _, v := range row {
		if b, err = AppendValue(b, v); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Dec decodes a payload with a sticky error: call the typed readers in
// sequence and check Err once at the end. Short or malformed input
// never panics; it trips the error and every later read returns a zero
// value.
type Dec struct {
	b   []byte
	err error
}

// NewDec returns a decoder over b.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decoding error.
func (d *Dec) Err() error { return d.err }

// Len returns the number of undecoded bytes.
func (d *Dec) Len() int { return len(d.b) }

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

// Fail records a decoding error from the caller's own validation (first
// error wins, like the built-in readers).
func (d *Dec) Fail(format string, args ...any) { d.fail(format, args...) }

// Byte reads one byte.
func (d *Dec) Byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail("short payload reading byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// U64 reads 8 big-endian bytes.
func (d *Dec) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("short payload reading u64")
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[:8])
	d.b = d.b[8:]
	return v
}

// Uvarint reads one uvarint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("malformed uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Count reads a uvarint bounded by max — list lengths, so a corrupt
// count cannot drive a giant allocation.
func (d *Dec) Count(max int) int {
	v := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(max) {
		d.fail("count %d exceeds limit %d", v, max)
		return 0
	}
	return int(v)
}

// Bytes reads a length-prefixed byte string (copied out of the payload).
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.fail("short payload reading %d bytes", n)
		return nil
	}
	v := append([]byte(nil), d.b[:n]...)
	d.b = d.b[n:]
	return v
}

// String reads a length-prefixed string.
func (d *Dec) String() string { return string(d.Bytes()) }

// Strings reads a counted list of strings.
func (d *Dec) Strings() []string {
	n := d.Count(1 << 16)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.String()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Value reads one column value.
func (d *Dec) Value() keyenc.Value {
	k := keyenc.Kind(d.Byte())
	if d.err != nil {
		return keyenc.Value{}
	}
	switch k {
	case keyenc.KindInvalid:
		return keyenc.Value{} // null; d.err stays nil
	case keyenc.KindInt64:
		return keyenc.I64(int64(d.U64()))
	case keyenc.KindUint64:
		return keyenc.U64(d.U64())
	case keyenc.KindFloat64:
		return keyenc.F64(math.Float64frombits(d.U64()))
	case keyenc.KindBool:
		return keyenc.B(d.Byte() != 0)
	case keyenc.KindString:
		return keyenc.StrBytes(d.Bytes())
	case keyenc.KindBytes:
		return keyenc.Raw(d.Bytes())
	default:
		d.fail("unknown value kind %d", byte(k))
		return keyenc.Value{}
	}
}

// Row reads one counted row.
func (d *Dec) Row() []keyenc.Value {
	n := d.Count(1 << 16)
	if d.err != nil {
		return nil
	}
	out := make([]keyenc.Value, n)
	for i := range out {
		out[i] = d.Value()
	}
	if d.err != nil {
		return nil
	}
	return out
}
