// Package wal implements the per-shard durable commit log that the
// Wildfire engine ingests through ("the log is the database", §2.1 of
// the paper): committed transactions land in the log before they are
// acknowledged, the live zone is a replayable view of the log tail, and
// the groomer consumes the log up to a persisted watermark.
//
// The log is built on the same append-only shared-storage abstraction as
// every other persistent structure in the system: it is a sequence of
// immutable segment objects under one prefix, each segment holding a
// checksummed batch of length-prefixed commit records. Because objects
// are written whole, the unit of durability is the segment — a group
// commit gathers the records of concurrent committers into one segment
// write, which is exactly the batching real group commit performs
// against fsync.
//
// A record carries the owning table, the commit sequence number of its
// first row (the per-shard PSN role of the paper's log order), a commit
// wall-clock timestamp, and the encoded rows; row i of a record has
// sequence Base+i. Replay skips rows at or below the groom watermark and
// applies each surviving sequence exactly once, so re-running recovery
// is idempotent.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"time"

	"umzi/internal/storage"
)

// SyncPolicy selects when a commit becomes durable.
type SyncPolicy int

const (
	// SyncDefault resolves to SyncPerCommit.
	SyncDefault SyncPolicy = iota
	// SyncPerCommit acknowledges a commit only after its records are in
	// a durable segment. Concurrent committers are batched into one
	// segment write (group commit), so the cost of the write amortizes
	// across the group.
	SyncPerCommit
	// SyncInterval buffers records in memory and writes a segment every
	// Options.Interval; a crash loses at most one interval of
	// acknowledged commits.
	SyncInterval
	// SyncOff buffers records until the buffer exceeds
	// Options.SegmentBytes (or the log is flushed or closed); a crash
	// loses everything buffered since the last segment write.
	SyncOff
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncDefault, SyncPerCommit:
		return "per-commit"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Options configure a Log.
type Options struct {
	// Policy selects the durability point (default: SyncPerCommit).
	Policy SyncPolicy
	// SegmentBytes is the target segment size: SyncOff flushes when the
	// buffer exceeds it, and per-commit group batches never merge past
	// it. Default 1 MiB.
	SegmentBytes int
	// GroupCommitWindow is how long a per-commit group leader waits for
	// more committers to join its batch before writing the segment.
	// Zero still batches whatever arrived while the previous segment
	// write was in flight — the natural group commit — but adds no
	// artificial delay.
	GroupCommitWindow time.Duration
	// Interval is the SyncInterval flush cadence (default 5ms).
	Interval time.Duration

	// Observer hooks, all optional (nil is a no-op). The log stays free
	// of any metrics dependency; the embedding engine wires these to its
	// own counters and histograms.

	// OnSegment is called after every successful segment write with the
	// record count of the batch (the group-commit batch size), the
	// segment's size in bytes, and how long the store write took.
	OnSegment func(records, bytes int, elapsed time.Duration)
	// OnFlushError is called when a background or size-triggered flush
	// fails on a buffered policy. Such errors are deliberately not
	// returned to committers (the records stay buffered and a later
	// flush retries), so without this hook they would be invisible.
	OnFlushError func(err error)
	// OnReclaim is called after Reclaim deletes segments, with the count.
	OnReclaim func(segments int)
}

func (o Options) withDefaults() Options {
	if o.Policy == SyncDefault {
		o.Policy = SyncPerCommit
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.Interval <= 0 {
		o.Interval = 5 * time.Millisecond
	}
	return o
}

// Record is one committed transaction in the log.
type Record struct {
	// Table names the owning table shard (sanity-checked at replay).
	Table string
	// Replica is the multi-master replica ordinal the commit arrived on.
	Replica uint32
	// Base is the commit sequence number of Rows[0]; Rows[i] carries
	// sequence Base+i. Sequences are the per-shard commit order the
	// groomer merges by.
	Base uint64
	// CommitTS is the commit wall-clock time in Unix nanoseconds
	// (informational: inspection and debugging).
	CommitTS int64
	// Rows holds the engine-encoded rows of the transaction.
	Rows [][]byte
}

// maxSeq returns the sequence of the record's last row.
func (r Record) maxSeq() uint64 { return r.Base + uint64(len(r.Rows)) - 1 }

// SegmentInfo describes one durable segment (inspection and reclaim).
type SegmentInfo struct {
	Name    string
	Bytes   int64
	First   uint64 // smallest row sequence in the segment
	Last    uint64 // largest row sequence in the segment
	Records int
}

// Log is one per-shard commit log. All methods are safe for concurrent
// use.
type Log struct {
	store  storage.ObjectStore
	prefix string
	opts   Options

	// mu guards the buffered state; flushMu serializes segment writes
	// (the log has a single tail).
	mu       sync.Mutex
	buf      []byte
	bufFirst uint64
	bufLast  uint64
	bufRecs  int
	cur      *batch // open per-commit group, nil when none
	segSeq   uint64 // last segment number written
	segments []SegmentInfo
	maxSeq   uint64 // largest sequence ever appended (buffered or durable)
	closed   bool

	flushMu sync.Mutex

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// batch is one per-commit group: records staged by concurrent
// committers, written as a single segment by the first stager (the
// leader).
type batch struct {
	buf         []byte
	first, last uint64
	recs        int
	done        chan struct{}
	err         error
}

// Open opens (or initializes) the log under prefix, reading the headers
// of existing segments so replay and reclamation know each segment's
// sequence range without parsing record payloads.
func Open(store storage.ObjectStore, prefix string, opts Options) (*Log, error) {
	l := &Log{
		store:  store,
		prefix: prefix,
		opts:   opts.withDefaults(),
		stopCh: make(chan struct{}),
	}
	segs, err := Inspect(store, prefix)
	if err != nil {
		return nil, err
	}
	l.segments = segs
	for _, s := range segs {
		if n, ok := segNumber(prefix, s.Name); ok && n > l.segSeq {
			l.segSeq = n
		}
		if s.Last > l.maxSeq {
			l.maxSeq = s.Last
		}
	}
	if l.opts.Policy == SyncInterval {
		l.wg.Add(1)
		go l.flushLoop()
	}
	return l, nil
}

func (l *Log) flushLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stopCh:
			return
		case <-t.C:
			if err := l.Flush(); err != nil && l.opts.OnFlushError != nil {
				l.opts.OnFlushError(err)
			}
		}
	}
}

// MaxSeq returns the largest row sequence the log has seen (durable or
// still buffered). Freshly opened logs report the largest durable
// sequence; engines floor their commit clock on it so sequences are
// never reused (segment contents must stay append-ordered).
func (l *Log) MaxSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.maxSeq
}

// Stats returns the durable segment count and total bytes.
func (l *Log) Stats() (segments int, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.segments {
		bytes += s.Bytes
	}
	return len(l.segments), bytes
}

// Commit appends a record and makes it durable according to the sync
// policy: per-commit waits for the segment write (joining the current
// group), interval and off return once the record is buffered.
//
// Commit deliberately takes no context: once a sequence number is woven
// into a group batch the write must run to completion — a caller that
// abandoned the group would leave its rows in a segment it believes
// failed. Callers cancel before Commit, not during.
func (l *Log) Commit(rec Record) error {
	if len(rec.Rows) == 0 {
		return nil
	}
	data := appendRecord(nil, rec)

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: log closed")
	}
	if l.opts.Policy != SyncPerCommit {
		// Backpressure: when flushes keep failing, the buffer must not
		// grow without bound while commits keep getting acknowledged —
		// that would silently stretch the documented loss window from
		// "one interval / one segment" to everything since the failure
		// began. Reject BEFORE buffering (a record that entered the
		// buffer is accepted: failing it afterwards could resurrect a
		// commit the caller was told failed once a retry flush lands).
		if len(l.buf) >= walBackpressureSegments*l.opts.SegmentBytes {
			l.mu.Unlock()
			if err := l.Flush(); err != nil {
				return fmt.Errorf("wal: commit rejected, flush backlog exceeds %d segments: %w", walBackpressureSegments, err)
			}
			l.mu.Lock()
			if l.closed {
				l.mu.Unlock()
				return fmt.Errorf("wal: log closed")
			}
		}
		if rec.maxSeq() > l.maxSeq {
			l.maxSeq = rec.maxSeq()
		}
		if l.bufRecs == 0 || rec.Base < l.bufFirst {
			l.bufFirst = rec.Base
		}
		if rec.maxSeq() > l.bufLast {
			l.bufLast = rec.maxSeq()
		}
		l.buf = append(l.buf, data...)
		l.bufRecs++
		over := len(l.buf) >= l.opts.SegmentBytes
		l.mu.Unlock()
		if over {
			// The commit itself succeeded the moment it was buffered —
			// that is the buffered-policy contract — so a failing
			// size-triggered flush must not fail it: the records stay
			// buffered (Flush re-buffers on error) and a later flush,
			// groom or Close retries. Reporting the error here would make
			// the engine declare already-accepted sequences lost while
			// the retry could still make them durable. It is counted
			// through OnFlushError so it is not silently invisible.
			if err := l.Flush(); err != nil && l.opts.OnFlushError != nil {
				l.opts.OnFlushError(err)
			}
		}
		return nil
	}
	if rec.maxSeq() > l.maxSeq {
		l.maxSeq = rec.maxSeq()
	}

	// Group commit: stage into the open batch; the first stager leads.
	leader := false
	if l.cur == nil || len(l.cur.buf) >= l.opts.SegmentBytes {
		l.cur = &batch{done: make(chan struct{})}
		leader = true
	}
	b := l.cur
	if b.recs == 0 || rec.Base < b.first {
		b.first = rec.Base
	}
	if rec.maxSeq() > b.last {
		b.last = rec.maxSeq()
	}
	b.buf = append(b.buf, data...)
	b.recs++
	l.mu.Unlock()

	if !leader {
		<-b.done
		return b.err
	}
	if w := l.opts.GroupCommitWindow; w > 0 {
		time.Sleep(w)
	}
	// Serialize on the log tail first, then detach the batch: committers
	// arriving while an earlier segment write is in flight keep joining
	// this batch, which is where group commit wins without any window.
	l.flushMu.Lock()
	l.mu.Lock()
	if l.cur == b {
		l.cur = nil
	}
	l.mu.Unlock()
	b.err = l.writeSegment(b.buf, b.first, b.last, b.recs)
	l.flushMu.Unlock()
	close(b.done)
	return b.err
}

// Flush writes all buffered records (interval/off policies) to a
// segment. It is a no-op for an empty buffer.
func (l *Log) Flush() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	if l.bufRecs == 0 {
		l.mu.Unlock()
		return nil
	}
	buf, first, last, recs := l.buf, l.bufFirst, l.bufLast, l.bufRecs
	l.buf, l.bufFirst, l.bufLast, l.bufRecs = nil, 0, 0, 0
	l.mu.Unlock()
	if err := l.writeSegment(buf, first, last, recs); err != nil {
		// Put the records back so a later flush (or Close) retries; the
		// buffer order no longer matters — replay orders by sequence.
		l.mu.Lock()
		l.buf = append(l.buf, buf...)
		if l.bufRecs == 0 || first < l.bufFirst {
			l.bufFirst = first
		}
		if last > l.bufLast {
			l.bufLast = last
		}
		l.bufRecs += recs
		l.mu.Unlock()
		return err
	}
	return nil
}

// writeSegment publishes one segment object. Callers hold flushMu.
func (l *Log) writeSegment(records []byte, first, last uint64, recs int) error {
	l.mu.Lock()
	l.segSeq++
	seq := l.segSeq
	l.mu.Unlock()
	name := segmentName(l.prefix, seq)
	data := make([]byte, 0, segHeaderSize+len(records))
	data = append(data, segMagic...)
	data = binary.BigEndian.AppendUint64(data, first)
	data = binary.BigEndian.AppendUint64(data, last)
	data = binary.BigEndian.AppendUint32(data, uint32(recs))
	data = binary.BigEndian.AppendUint32(data, 0) // reserved
	data = append(data, records...)
	start := time.Now()
	if err := l.store.Put(name, data); err != nil {
		return fmt.Errorf("wal: segment write: %w", err)
	}
	if l.opts.OnSegment != nil {
		l.opts.OnSegment(recs, len(data), time.Since(start))
	}
	l.mu.Lock()
	l.segments = append(l.segments, SegmentInfo{Name: name, Bytes: int64(len(data)), First: first, Last: last, Records: recs})
	l.mu.Unlock()
	return nil
}

// Replay visits every durable record whose sequence range reaches above
// afterSeq, in segment order. Rows at or below afterSeq inside a
// visited record are the caller's to skip (Record.Base tells it where
// each row sits).
func (l *Log) Replay(afterSeq uint64, visit func(Record) error) error {
	l.mu.Lock()
	segs := append([]SegmentInfo(nil), l.segments...)
	l.mu.Unlock()
	sort.Slice(segs, func(i, j int) bool { return segs[i].Name < segs[j].Name })
	for _, s := range segs {
		if s.Last <= afterSeq {
			continue
		}
		data, err := l.store.Get(s.Name)
		if err != nil {
			return fmt.Errorf("wal: reading segment %s: %w", s.Name, err)
		}
		if err := visitSegment(s.Name, data, visit); err != nil {
			return err
		}
	}
	return nil
}

// Reclaim deletes segments entirely at or below throughSeq — segments
// whose every row the groomer has durably consumed. It returns the
// number of segments deleted.
func (l *Log) Reclaim(throughSeq uint64) (int, error) {
	l.mu.Lock()
	var keep, drop []SegmentInfo
	for _, s := range l.segments {
		if s.Last <= throughSeq {
			drop = append(drop, s)
		} else {
			keep = append(keep, s)
		}
	}
	l.segments = keep
	l.mu.Unlock()
	for i, s := range drop {
		if err := l.store.Delete(s.Name); err != nil {
			// Put the survivors back; a later reclaim retries.
			l.mu.Lock()
			l.segments = append(l.segments, drop[i:]...)
			l.mu.Unlock()
			if i > 0 && l.opts.OnReclaim != nil {
				l.opts.OnReclaim(i)
			}
			return i, err
		}
	}
	if len(drop) > 0 && l.opts.OnReclaim != nil {
		l.opts.OnReclaim(len(drop))
	}
	return len(drop), nil
}

// Close flushes buffered records and stops the interval flusher. The
// log is unusable afterwards; Close after Close is a no-op.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stopCh)
	l.wg.Wait()
	return l.Flush()
}

// ---- wire format ------------------------------------------------------

// Segment: header (magic, first/last sequence, record count), then
// length-prefixed checksummed records. Record: u32 payload length, u32
// CRC-32C of the payload, payload. Payload: base sequence u64, commit TS
// i64, replica u32, row count u32, table (u16 length + bytes), then per
// row a u32 length + encoded bytes.
const segMagic = "UMZIWAL1"

const segHeaderSize = 8 + 8 + 8 + 4 + 4

// walBackpressureSegments bounds the buffered policies' in-memory
// backlog: once the buffer holds this many segments' worth of records
// and a forced flush cannot drain it, further commits are rejected.
const walBackpressureSegments = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func segmentName(prefix string, seq uint64) string {
	return fmt.Sprintf("%s/seg-%016d", prefix, seq)
}

// segNumber parses a segment object name back into its number.
func segNumber(prefix, name string) (uint64, bool) {
	var n uint64
	if _, err := fmt.Sscanf(name, prefix+"/seg-%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

func appendRecord(dst []byte, rec Record) []byte {
	payload := make([]byte, 0, 32+len(rec.Table)+16*len(rec.Rows))
	payload = binary.BigEndian.AppendUint64(payload, rec.Base)
	payload = binary.BigEndian.AppendUint64(payload, uint64(rec.CommitTS))
	payload = binary.BigEndian.AppendUint32(payload, rec.Replica)
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(rec.Rows)))
	payload = binary.BigEndian.AppendUint16(payload, uint16(len(rec.Table)))
	payload = append(payload, rec.Table...)
	for _, row := range rec.Rows {
		payload = binary.BigEndian.AppendUint32(payload, uint32(len(row)))
		payload = append(payload, row...)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// decodeRecord parses one record from the front of b, returning the
// record and bytes consumed.
func decodeRecord(b []byte) (Record, int, error) {
	if len(b) < 8 {
		return Record{}, 0, fmt.Errorf("wal: truncated record header")
	}
	n := int(binary.BigEndian.Uint32(b))
	sum := binary.BigEndian.Uint32(b[4:])
	if len(b) < 8+n {
		return Record{}, 0, fmt.Errorf("wal: truncated record payload (%d of %d bytes)", len(b)-8, n)
	}
	payload := b[8 : 8+n]
	if crc32.Checksum(payload, crcTable) != sum {
		return Record{}, 0, fmt.Errorf("wal: record checksum mismatch")
	}
	if len(payload) < 26 {
		return Record{}, 0, fmt.Errorf("wal: short record payload")
	}
	rec := Record{
		Base:     binary.BigEndian.Uint64(payload),
		CommitTS: int64(binary.BigEndian.Uint64(payload[8:])),
		Replica:  binary.BigEndian.Uint32(payload[16:]),
	}
	rows := int(binary.BigEndian.Uint32(payload[20:]))
	tlen := int(binary.BigEndian.Uint16(payload[24:]))
	off := 26
	if off+tlen > len(payload) {
		return Record{}, 0, fmt.Errorf("wal: truncated table name")
	}
	rec.Table = string(payload[off : off+tlen])
	off += tlen
	rec.Rows = make([][]byte, 0, rows)
	for i := 0; i < rows; i++ {
		if off+4 > len(payload) {
			return Record{}, 0, fmt.Errorf("wal: truncated row %d length", i)
		}
		rl := int(binary.BigEndian.Uint32(payload[off:]))
		off += 4
		if off+rl > len(payload) {
			return Record{}, 0, fmt.Errorf("wal: truncated row %d (%d bytes)", i, rl)
		}
		row := make([]byte, rl)
		copy(row, payload[off:off+rl])
		rec.Rows = append(rec.Rows, row)
		off += rl
	}
	return rec, 8 + n, nil
}

func visitSegment(name string, data []byte, visit func(Record) error) error {
	if len(data) < segHeaderSize || string(data[:8]) != segMagic {
		return fmt.Errorf("wal: %s is not a log segment", name)
	}
	recs := int(binary.BigEndian.Uint32(data[24:]))
	off := segHeaderSize
	for i := 0; i < recs; i++ {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			return fmt.Errorf("wal: %s record %d: %w", name, i, err)
		}
		off += n
		if err := visit(rec); err != nil {
			return err
		}
	}
	return nil
}

// ---- storage-only inspection ------------------------------------------

// Inspect lists the log's durable segments from storage alone, reading
// only the fixed-size headers — the recovery-procedure view used by
// Open and by tooling (umzi-inspect).
func Inspect(store storage.ObjectStore, prefix string) ([]SegmentInfo, error) {
	names, err := store.List(prefix + "/seg-")
	if err != nil {
		return nil, err
	}
	out := make([]SegmentInfo, 0, len(names))
	for _, name := range names {
		size, err := store.Size(name)
		if errors.Is(err, storage.ErrNotExist) {
			continue // racing reclaim
		}
		if err != nil {
			// Any other failure must surface: silently skipping a
			// readable segment would drop acknowledged rows from replay
			// AND lower the commit-clock floor, letting new commits
			// reuse the skipped segment's sequences.
			return nil, fmt.Errorf("wal: inspecting segment %s: %w", name, err)
		}
		if size < segHeaderSize {
			continue // not a segment (foreign object under the prefix)
		}
		hdr, err := store.GetRange(name, 0, segHeaderSize)
		if errors.Is(err, storage.ErrNotExist) {
			continue // racing reclaim
		}
		if err != nil {
			return nil, fmt.Errorf("wal: inspecting segment %s: %w", name, err)
		}
		if string(hdr[:8]) != segMagic {
			continue // not a segment
		}
		out = append(out, SegmentInfo{
			Name:    name,
			Bytes:   size,
			First:   binary.BigEndian.Uint64(hdr[8:]),
			Last:    binary.BigEndian.Uint64(hdr[16:]),
			Records: int(binary.BigEndian.Uint32(hdr[24:])),
		})
	}
	return out, nil
}

// TailRows counts the durable rows above afterSeq — the replay tail a
// reopen would rebuild into the live zone. It parses record headers
// only, not row payloads.
func TailRows(store storage.ObjectStore, prefix string, afterSeq uint64) (int, error) {
	segs, err := Inspect(store, prefix)
	if err != nil {
		return 0, err
	}
	return TailRowsIn(store, segs, afterSeq)
}

// TailRowsIn is TailRows over an already-inspected segment list, for
// callers that hold one (tooling that also reports the inventory). It
// walks record headers (base sequence + row count) without decoding or
// copying row payloads, so cost scales with record count, not WAL
// bytes held in rows.
func TailRowsIn(store storage.ObjectStore, segs []SegmentInfo, afterSeq uint64) (int, error) {
	total := 0
	for _, s := range segs {
		if s.Last <= afterSeq {
			continue
		}
		data, err := store.Get(s.Name)
		if err != nil {
			return 0, err
		}
		if len(data) < segHeaderSize || string(data[:8]) != segMagic {
			return 0, fmt.Errorf("wal: %s is not a log segment", s.Name)
		}
		recs := int(binary.BigEndian.Uint32(data[24:]))
		off := segHeaderSize
		for i := 0; i < recs; i++ {
			if len(data[off:]) < 8 {
				return 0, fmt.Errorf("wal: %s record %d: truncated header", s.Name, i)
			}
			n := int(binary.BigEndian.Uint32(data[off:]))
			payload := data[off+8:]
			if len(payload) < n || n < 24 {
				return 0, fmt.Errorf("wal: %s record %d: truncated payload", s.Name, i)
			}
			base := binary.BigEndian.Uint64(payload)
			rows := binary.BigEndian.Uint32(payload[20:])
			if rows > 0 {
				// Row r carries sequence base+r, so the rows above
				// afterSeq form the suffix [max(base, afterSeq+1), last].
				last := base + uint64(rows) - 1
				if last > afterSeq {
					from := base
					if afterSeq+1 > from {
						from = afterSeq + 1
					}
					total += int(last - from + 1)
				}
			}
			off += 8 + n
		}
	}
	return total, nil
}
