package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"umzi/internal/storage"
)

func testRecord(base uint64, rows int) Record {
	rec := Record{Table: "t", Replica: 1, Base: base, CommitTS: 42}
	for i := 0; i < rows; i++ {
		rec.Rows = append(rec.Rows, []byte(fmt.Sprintf("row-%d", base+uint64(i))))
	}
	return rec
}

func TestRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		rec := Record{
			Table:    fmt.Sprintf("tbl-%d", i),
			Replica:  uint32(rng.Intn(4)),
			Base:     rng.Uint64() >> 1,
			CommitTS: rng.Int63(),
		}
		for r := 0; r < rng.Intn(5); r++ {
			row := make([]byte, rng.Intn(64))
			rng.Read(row)
			rec.Rows = append(rec.Rows, row)
		}
		if len(rec.Rows) == 0 {
			rec.Rows = [][]byte{{}}
		}
		enc := appendRecord(nil, rec)
		got, n, err := decodeRecord(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("decode consumed %d of %d", n, len(enc))
		}
		if got.Table != rec.Table || got.Replica != rec.Replica || got.Base != rec.Base || got.CommitTS != rec.CommitTS {
			t.Fatalf("header mismatch: %+v != %+v", got, rec)
		}
		if len(got.Rows) != len(rec.Rows) {
			t.Fatalf("row count %d != %d", len(got.Rows), len(rec.Rows))
		}
		for j := range rec.Rows {
			if !bytes.Equal(got.Rows[j], rec.Rows[j]) {
				t.Fatalf("row %d mismatch", j)
			}
		}
	}
}

func TestRecordChecksum(t *testing.T) {
	enc := appendRecord(nil, testRecord(1, 2))
	enc[len(enc)-1] ^= 0xFF
	if _, _, err := decodeRecord(enc); err == nil {
		t.Fatal("corrupted record decoded cleanly")
	}
	if _, _, err := decodeRecord(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated record decoded cleanly")
	}
}

func TestPerCommitDurable(t *testing.T) {
	store := storage.NewMemStore(storage.LatencyModel{})
	l, err := Open(store, "wal", Options{Policy: SyncPerCommit})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Commit(testRecord(uint64(i*2+1), 2)); err != nil {
			t.Fatal(err)
		}
	}
	// Per-commit: every record is durable as soon as Commit returns.
	var rows int
	if err := l.Replay(0, func(r Record) error { rows += len(r.Rows); return nil }); err != nil {
		t.Fatal(err)
	}
	if rows != 10 {
		t.Fatalf("replayed %d rows, want 10", rows)
	}
	if got := l.MaxSeq(); got != 10 {
		t.Fatalf("MaxSeq = %d, want 10", got)
	}
	l.Close()
}

func TestGroupCommitBatches(t *testing.T) {
	// A slow store makes segment writes overlap with arriving
	// committers, so the group forms naturally even with a zero window.
	store := storage.NewMemStore(storage.LatencyModel{PerOp: 2 * time.Millisecond})
	l, err := Open(store, "wal", Options{Policy: SyncPerCommit})
	if err != nil {
		t.Fatal(err)
	}
	const committers = 32
	var wg sync.WaitGroup
	errs := make([]error, committers)
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = l.Commit(testRecord(uint64(i+1), 1))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	segs, _ := l.Stats()
	if segs >= committers {
		t.Fatalf("group commit wrote %d segments for %d commits (no batching)", segs, committers)
	}
	seen := map[uint64]bool{}
	if err := l.Replay(0, func(r Record) error { seen[r.Base] = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != committers {
		t.Fatalf("replay found %d records, want %d", len(seen), committers)
	}
	l.Close()
}

func TestSyncOffBuffersUntilFlush(t *testing.T) {
	store := storage.NewMemStore(storage.LatencyModel{})
	l, err := Open(store, "wal", Options{Policy: SyncOff, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(testRecord(1, 3)); err != nil {
		t.Fatal(err)
	}
	if segs, _ := l.Stats(); segs != 0 {
		t.Fatalf("SyncOff wrote %d segments before flush", segs)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if segs, _ := l.Stats(); segs != 1 {
		t.Fatalf("flush produced %d segments, want 1", segs)
	}
	// A tiny segment budget forces a size-triggered flush.
	l2, err := Open(store, "wal2", Options{Policy: SyncOff, SegmentBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Commit(testRecord(1, 2)); err != nil {
		t.Fatal(err)
	}
	if segs, _ := l2.Stats(); segs != 1 {
		t.Fatalf("size-triggered flush produced %d segments, want 1", segs)
	}
	l.Close()
	l2.Close()
}

func TestSyncIntervalFlushes(t *testing.T) {
	store := storage.NewMemStore(storage.LatencyModel{})
	l, err := Open(store, "wal", Options{Policy: SyncInterval, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Commit(testRecord(1, 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if segs, _ := l.Stats(); segs >= 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never wrote a segment")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReopenReplayReclaim(t *testing.T) {
	store := storage.NewMemStore(storage.LatencyModel{})
	l, err := Open(store, "wal", Options{Policy: SyncPerCommit})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Commit(testRecord(uint64(i*3+1), 3)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: drop without Close. Reopen sees the same segments.
	l2, err := Open(store, "wal", Options{Policy: SyncPerCommit})
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.MaxSeq(); got != 12 {
		t.Fatalf("reopened MaxSeq = %d, want 12", got)
	}
	// Replay above a watermark skips whole segments below it.
	var rows []uint64
	err = l2.Replay(6, func(r Record) error {
		for i := range r.Rows {
			if s := r.Base + uint64(i); s > 6 {
				rows = append(rows, s)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("tail above 6 has %d rows, want 6: %v", len(rows), rows)
	}
	// New appends continue after the recovered tail without colliding
	// with existing segment names.
	if err := l2.Commit(testRecord(13, 1)); err != nil {
		t.Fatal(err)
	}
	if n, err := l2.Reclaim(6); err != nil || n != 2 {
		t.Fatalf("Reclaim = %d, %v; want 2 segments", n, err)
	}
	segs, _ := l2.Stats()
	if segs != 3 {
		t.Fatalf("%d segments left, want 3", segs)
	}
	if tail, err := TailRows(store, "wal", 6); err != nil || tail != 7 {
		t.Fatalf("TailRows = %d, %v; want 7", tail, err)
	}
	infos, err := Inspect(store, "wal")
	if err != nil || len(infos) != 3 {
		t.Fatalf("Inspect = %d segments, %v; want 3", len(infos), err)
	}
	l.Close()
	l2.Close()
}
