package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"umzi/internal/run"
	"umzi/internal/storage"
	"umzi/internal/types"
)

// Index is one Umzi index instance, serving a single table shard (§3).
// All query methods are safe for arbitrary concurrency and never block on
// maintenance; maintenance methods may be driven explicitly (MaintainOnce)
// for deterministic tests or by the background workers started with Start.
type Index struct {
	cfg   Config
	rdef  run.Def
	store storage.ObjectStore
	cache *storage.SSDCache

	groomed *zoneList
	post    *zoneList

	// maxCovered is the maximum groomed block ID covered by the
	// post-groomed run list (§5.4 step 2). Queries load it before
	// snapshotting the lists; groomed runs with Blocks.Max <= maxCovered
	// are ignored.
	maxCovered atomic.Uint64
	// indexedPSN is the PSN of the last applied evolve operation.
	indexedPSN atomic.Uint64

	// cachedLevel is the current cached level of §6.2: runs at global
	// levels strictly greater are purged from the SSD cache.
	cachedLevel atomic.Int32

	runSeq  atomic.Uint64
	metaSeq atomic.Uint64

	stats Stats

	// maintMu serializes whole maintenance operations (merge planning /
	// evolve / recovery) so list state transitions stay simple; queries
	// never touch it.
	maintMu sync.Mutex

	stopCh  chan struct{}
	wg      sync.WaitGroup
	started atomic.Bool
	closed  atomic.Bool
}

// Stats exposes operational counters; all fields are atomics so queries
// can bump them without coordination.
type Stats struct {
	Queries        atomic.Int64
	RunsSearched   atomic.Int64
	RunsPruned     atomic.Int64
	RunsCovered    atomic.Int64 // groomed runs skipped via maxCovered
	EntriesScanned atomic.Int64
	Builds         atomic.Int64
	Merges         atomic.Int64
	Evolves        atomic.Int64
	RunsGCed       atomic.Int64
	RunsPurged     atomic.Int64
	RunsLoaded     atomic.Int64
}

// StatsSnapshot is a plain copy of the counters.
type StatsSnapshot struct {
	Queries, RunsSearched, RunsPruned, RunsCovered, EntriesScanned int64
	Builds, Merges, Evolves, RunsGCed, RunsPurged, RunsLoaded      int64
}

// Stats returns a snapshot of the index counters.
func (ix *Index) Stats() StatsSnapshot {
	return StatsSnapshot{
		Queries:        ix.stats.Queries.Load(),
		RunsSearched:   ix.stats.RunsSearched.Load(),
		RunsPruned:     ix.stats.RunsPruned.Load(),
		RunsCovered:    ix.stats.RunsCovered.Load(),
		EntriesScanned: ix.stats.EntriesScanned.Load(),
		Builds:         ix.stats.Builds.Load(),
		Merges:         ix.stats.Merges.Load(),
		Evolves:        ix.stats.Evolves.Load(),
		RunsGCed:       ix.stats.RunsGCed.Load(),
		RunsPurged:     ix.stats.RunsPurged.Load(),
		RunsLoaded:     ix.stats.RunsLoaded.Load(),
	}
}

// New creates a fresh index. Fails if storage already holds objects under
// cfg.Name (use Open to recover an existing index).
func New(cfg Config) (*Index, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	existing, err := cfg.Store.List(cfg.Name + "/")
	if err != nil {
		return nil, fmt.Errorf("core: listing storage: %w", err)
	}
	if len(existing) > 0 {
		return nil, fmt.Errorf("core: index %q already exists in storage (%d objects); use Open", cfg.Name, len(existing))
	}
	return newIndex(cfg), nil
}

// Open recovers an index from shared storage (§5.5), or creates a fresh
// one when storage holds nothing under cfg.Name.
func Open(cfg Config) (*Index, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ix := newIndex(cfg)
	if err := ix.recover(); err != nil {
		return nil, err
	}
	return ix, nil
}

func newIndex(cfg Config) *Index {
	ix := &Index{
		cfg:   cfg,
		rdef:  cfg.Def.RunDef(),
		store: cfg.Store,
		cache: cfg.Cache,
		groomed: &zoneList{
			zone:      types.ZoneGroomed,
			baseLevel: 0,
			levels:    cfg.GroomedLevels,
		},
		post: &zoneList{
			zone:      types.ZonePostGroomed,
			baseLevel: cfg.GroomedLevels,
			levels:    cfg.PostGroomedLevels,
		},
		stopCh: make(chan struct{}),
	}
	if cfg.DisableOffsetArray {
		ix.rdef.HashBits = 0
	}
	// Everything cached by default; the cache manager moves the boundary.
	ix.cachedLevel.Store(int32(cfg.GroomedLevels + cfg.PostGroomedLevels - 1))
	return ix
}

// Def returns the index definition.
func (ix *Index) Def() IndexDef { return ix.cfg.Def }

// MaxLevel returns the highest global level (post-groomed zone top).
func (ix *Index) MaxLevel() int { return ix.cfg.GroomedLevels + ix.cfg.PostGroomedLevels - 1 }

// MaxCoveredGroomedID returns the maximum groomed block ID covered by the
// post-groomed run list.
func (ix *Index) MaxCoveredGroomedID() uint64 { return ix.maxCovered.Load() }

// IndexedPSN returns the PSN of the last applied evolve operation.
func (ix *Index) IndexedPSN() types.PSN { return types.PSN(ix.indexedPSN.Load()) }

// RunCounts returns the number of runs per zone (groomed, post-groomed).
func (ix *Index) RunCounts() (groomed, post int) {
	return ix.groomed.len(), ix.post.len()
}

// MinLiveGroomedBlock returns the smallest groomed block ID still
// referenced by any run in the groomed list, and false when the list is
// empty. The engine uses it to decide which deprecated groomed data
// blocks are truly unreferenced and safe to delete: merged runs may span
// block ranges only partially covered by evolve (§5.4), and their entries
// can still hand out RIDs into low blocks.
func (ix *Index) MinLiveGroomedBlock() (uint64, bool) {
	refs, release := ix.groomed.snapshot()
	defer release()
	if len(refs) == 0 {
		return 0, false
	}
	min := refs[0].blocks().Min
	for _, r := range refs[1:] {
		if b := r.blocks().Min; b < min {
			min = b
		}
	}
	return min, true
}

// Start launches background maintenance: one worker per (zone, level) as
// in §5.1, each periodically checking its level for merge work, plus one
// cache-manager worker. Interval is the poll period.
func (ix *Index) Start(interval time.Duration) {
	if !ix.started.CompareAndSwap(false, true) {
		return
	}
	for _, z := range []*zoneList{ix.groomed, ix.post} {
		for l := 0; l < z.levels; l++ {
			ix.wg.Add(1)
			go ix.levelWorker(z, l, interval)
		}
	}
	ix.wg.Add(1)
	go ix.cacheWorker(interval)
}

func (ix *Index) levelWorker(z *zoneList, local int, interval time.Duration) {
	defer ix.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ix.stopCh:
			return
		case <-t.C:
			if _, err := ix.mergeLevel(z, local); err != nil {
				// Maintenance errors are retried next tick; they must
				// never take queries down.
				continue
			}
		}
	}
}

func (ix *Index) cacheWorker(interval time.Duration) {
	defer ix.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ix.stopCh:
			return
		case <-t.C:
			ix.AdjustCache()
		}
	}
}

// Close stops background maintenance and waits for workers to exit.
// Queries issued after Close fail.
func (ix *Index) Close() error {
	if !ix.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(ix.stopCh)
	ix.wg.Wait()
	return nil
}

// nextRunName mints a unique storage object name for a run in the given
// zone. Names embed the level and block range for human inspection; only
// uniqueness and the zone prefix carry semantics.
func (ix *Index) nextRunName(zone types.ZoneID, level int, blocks types.BlockRange) string {
	seq := ix.runSeq.Add(1)
	return fmt.Sprintf("%s/z%d/run-%08d-L%d-%d-%d", ix.cfg.Name, zone, seq, level, blocks.Min, blocks.Max)
}

// newRunRef wraps a built run object as a list node holding the initial
// list reference.
func (ix *Index) newRunRef(name string, h *run.Header, mem []byte) *runRef {
	ref := &runRef{ix: ix, seq: ix.runSeq.Load(), name: name, header: h, mem: mem}
	ref.refs.Store(1)
	return ref
}

// zoneOf maps a global level to its zone list.
func (ix *Index) zoneOf(level int) *zoneList {
	if level < ix.cfg.GroomedLevels {
		return ix.groomed
	}
	return ix.post
}
