package core

import (
	"testing"

	"umzi/internal/keyenc"
	"umzi/internal/run"
	"umzi/internal/types"
)

// postGroom simulates the post-groomer's side of Figure 5: it re-locates
// every record of groomed blocks [lo,hi] into a post-groomed block and
// hands the index the evolve operation. The model's RIDs are updated the
// same way so lookups can verify the migrated locations.
func postGroom(t *testing.T, ix *Index, m *model, psn types.PSN, lo, hi uint64) {
	t.Helper()
	// Collect the newest state of every record in the groomed range by
	// scanning the model (stand-in for reading the groomed blocks).
	var entries []run.Entry
	if m != nil {
		offset := uint32(0)
		for k, versions := range m.versions {
			for i := range versions {
				r := &versions[i]
				if r.rid.Zone == types.ZoneGroomed && r.rid.Block >= lo && r.rid.Block <= hi {
					r.rid = types.RID{Zone: types.ZonePostGroomed, Block: uint64(psn), Offset: offset}
					offset++
					e, err := ix.MakeEntry(
						[]keyenc.Value{keyenc.I64(k[0])},
						[]keyenc.Value{keyenc.I64(r.msg)},
						[]keyenc.Value{keyenc.I64(r.val)},
						r.ts, r.rid,
					)
					if err != nil {
						t.Fatal(err)
					}
					entries = append(entries, e)
				}
			}
		}
	}
	if err := ix.Evolve(psn, entries, types.BlockRange{Min: lo, Max: hi}); err != nil {
		t.Fatal(err)
	}
}

func TestEvolveBasic(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	for c := uint64(1); c <= 4; c++ {
		groom(t, ix, m, c, recsSeq(40, 4, 0))
	}
	postGroom(t, ix, m, 1, 1, 2)

	if got := ix.MaxCoveredGroomedID(); got != 2 {
		t.Fatalf("MaxCoveredGroomedID = %d, want 2", got)
	}
	if got := ix.IndexedPSN(); got != 1 {
		t.Fatalf("IndexedPSN = %d, want 1", got)
	}
	g, p := ix.RunCounts()
	if p != 1 {
		t.Fatalf("post-groomed runs = %d, want 1", p)
	}
	if g != 2 {
		t.Fatalf("groomed runs = %d, want 2 (blocks 1 and 2 GCed)\n%s", g, fmtRuns(ix))
	}
	// All data remains visible, with RIDs pointing at the new zone for
	// migrated records.
	for dev := int64(0); dev < 4; dev++ {
		for msg := int64(0); msg < 10; msg++ {
			checkLookup(t, ix, m, dev, msg, types.MaxTS)
		}
	}
	if err := ix.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvolvePSNOrder(t *testing.T) {
	ix := newTestIndex(t, nil)
	groom(t, ix, nil, 1, recsSeq(4, 2, 0))
	if err := ix.Evolve(2, nil, types.BlockRange{Min: 1, Max: 1}); err == nil {
		t.Error("out-of-order PSN accepted")
	}
	if err := ix.Evolve(1, nil, types.BlockRange{Min: 1, Max: 1}); err != nil {
		t.Errorf("in-order PSN rejected: %v", err)
	}
	if err := ix.Evolve(1, nil, types.BlockRange{Min: 1, Max: 1}); err == nil {
		t.Error("replayed PSN accepted")
	}
}

func TestEvolvePartialCoverageKeepsGroomedRun(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	// One groomed run covering blocks 1-3 (via merge), then post-groom
	// only blocks 1-2: the groomed run is partially covered and must stay.
	for c := uint64(1); c <= 3; c++ {
		groom(t, ix, m, c, recsSeq(20, 2, 0))
	}
	if err := ix.Quiesce(); err != nil {
		t.Fatal(err)
	}
	postGroom(t, ix, m, 1, 1, 2)

	g, p := ix.RunCounts()
	if p != 1 {
		t.Fatalf("post runs = %d", p)
	}
	if g == 0 {
		t.Fatalf("partially covered groomed run was GCed\n%s", fmtRuns(ix))
	}
	// Duplicates across zones are benign: each key returns exactly once.
	got, err := ix.RangeScan(ScanOptions{
		Equality: []keyenc.Value{keyenc.I64(0)},
		TS:       types.MaxTS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("scan with cross-zone duplicates returned %d results, want 10", len(got))
	}
	for dev := int64(0); dev < 2; dev++ {
		for msg := int64(0); msg < 10; msg++ {
			checkLookup(t, ix, m, dev, msg, types.MaxTS)
		}
	}
}

func TestEvolveChainAndPostZoneMerge(t *testing.T) {
	ix := newTestIndex(t, func(c *Config) { c.K = 2 })
	m := newModel()
	psn := types.PSN(0)
	for c := uint64(1); c <= 12; c++ {
		groom(t, ix, m, c, recsSeq(30, 3, 0))
		if c%2 == 0 {
			psn++
			postGroom(t, ix, m, psn, c-1, c)
		}
	}
	if err := ix.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := ix.VerifyInvariants(); err != nil {
		t.Fatalf("%v\n%s", err, fmtRuns(ix))
	}
	if got := ix.MaxCoveredGroomedID(); got != 12 {
		t.Fatalf("covered = %d, want 12", got)
	}
	g, p := ix.RunCounts()
	if g != 0 {
		t.Fatalf("groomed runs = %d, want 0 (all evolved)\n%s", g, fmtRuns(ix))
	}
	if p >= 6 {
		t.Fatalf("post-zone merges did not reduce run count: %d", p)
	}
	for dev := int64(0); dev < 3; dev++ {
		for msg := int64(0); msg < 10; msg++ {
			checkLookup(t, ix, m, dev, msg, types.MaxTS)
		}
	}
	// Historical reads still correct after evolve + merges.
	for c := uint64(1); c <= 12; c += 3 {
		checkLookup(t, ix, m, 1, 4, types.MakeTS(c, 1<<20))
		checkScan(t, ix, m, 1, 0, 9, types.MakeTS(c, 1<<20), MethodPQ)
	}
}

func TestEvolveDeletesGCedObjects(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	for c := uint64(1); c <= 2; c++ {
		groom(t, ix, m, c, recsSeq(10, 2, 0))
	}
	postGroom(t, ix, m, 1, 1, 2)
	names, err := ix.store.List("t/z1/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Errorf("GCed groomed objects remain in storage: %v", names)
	}
	post, err := ix.store.List("t/z2/")
	if err != nil {
		t.Fatal(err)
	}
	if len(post) != 1 {
		t.Errorf("post zone objects = %v, want exactly 1", post)
	}
}

func TestEvolveEmptyRange(t *testing.T) {
	// A post-groom over records that were all deleted produces no
	// entries; the evolve must still advance coverage and GC.
	ix := newTestIndex(t, nil)
	groom(t, ix, nil, 1, recsSeq(6, 2, 0))
	if err := ix.Evolve(1, nil, types.BlockRange{Min: 1, Max: 1}); err != nil {
		t.Fatal(err)
	}
	if got := ix.MaxCoveredGroomedID(); got != 1 {
		t.Fatalf("covered = %d", got)
	}
	g, p := ix.RunCounts()
	if g != 0 || p != 0 {
		t.Fatalf("run counts after empty evolve = (%d,%d)", g, p)
	}
}

func TestQueryDuringEvolveSeesEverythingOnce(t *testing.T) {
	// Exercise the intermediate states: between every pair of evolve
	// steps, a query must return each key exactly once (invariant 3).
	// crash points give deterministic access to the in-between states.
	for _, point := range []string{"evolve.after-step1", "evolve.after-step2"} {
		t.Run(point, func(t *testing.T) {
			ix := newTestIndex(t, nil)
			m := newModel()
			for c := uint64(1); c <= 3; c++ {
				groom(t, ix, m, c, recsSeq(20, 2, 0))
			}
			crashPoints[point] = true
			defer delete(crashPoints, point)
			func() {
				defer func() {
					if r := recover(); r == nil {
						t.Fatal("crash point did not fire")
					}
				}()
				postGroom(t, ix, m, 1, 1, 2)
			}()
			delete(crashPoints, point)

			// The index instance is mid-evolve: exactly the state a
			// concurrent query would observe. Each key must appear exactly
			// once with its newest version.
			got, err := ix.RangeScan(ScanOptions{
				Equality: []keyenc.Value{keyenc.I64(1)},
				TS:       types.MaxTS,
				Method:   MethodPQ,
			})
			if err != nil {
				t.Fatal(err)
			}
			seen := map[int64]bool{}
			for _, e := range got {
				_, sortv, _, err := ix.DecodeEntry(e)
				if err != nil {
					t.Fatal(err)
				}
				msg := sortv[0].Int()
				if seen[msg] {
					t.Fatalf("key msg=%d returned twice mid-evolve (%s)", msg, point)
				}
				seen[msg] = true
			}
			if len(seen) != 10 {
				t.Fatalf("mid-evolve scan returned %d keys, want 10 (%s)", len(seen), point)
			}
			// Set method must agree.
			got2, err := ix.RangeScan(ScanOptions{
				Equality: []keyenc.Value{keyenc.I64(1)},
				TS:       types.MaxTS,
				Method:   MethodSet,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got2) != len(got) {
				t.Fatalf("set method returned %d, PQ returned %d mid-evolve", len(got2), len(got))
			}
		})
	}
}
