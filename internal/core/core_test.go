package core

import (
	"fmt"
	"testing"

	"umzi/internal/keyenc"
	"umzi/internal/run"
	"umzi/internal/storage"
	"umzi/internal/types"
)

// testDef is the I1-style definition used across the core tests: device is
// the equality column, msg the sort column, val an included column.
func testDef() IndexDef {
	return IndexDef{
		Equality: []Column{{"device", keyenc.KindInt64}},
		Sort:     []Column{{"msg", keyenc.KindInt64}},
		Included: []Column{{"val", keyenc.KindInt64}},
		HashBits: 6,
	}
}

// testConfig returns a small-levels config backed by a fresh MemStore.
func testConfig(name string) Config {
	return Config{
		Name:              name,
		Def:               testDef(),
		Store:             storage.NewMemStore(storage.LatencyModel{}),
		BlockSize:         1024,
		K:                 2,
		T:                 2,
		GroomedLevels:     3,
		PostGroomedLevels: 2,
	}
}

func newTestIndex(t *testing.T, mutate func(*Config)) *Index {
	t.Helper()
	cfg := testConfig("t")
	if mutate != nil {
		mutate(&cfg)
	}
	ix, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

// record is the logical row the tests ingest.
type record struct {
	device, msg, val int64
	ts               types.TS
	rid              types.RID
}

// model tracks the expected index contents: key -> all versions.
type model struct {
	versions map[[2]int64][]record
}

func newModel() *model { return &model{versions: make(map[[2]int64][]record)} }

func (m *model) add(r record) {
	k := [2]int64{r.device, r.msg}
	m.versions[k] = append(m.versions[k], r)
}

// visible returns the newest version of (device,msg) with ts <= queryTS.
func (m *model) visible(device, msg int64, queryTS types.TS) (record, bool) {
	var best record
	found := false
	for _, r := range m.versions[[2]int64{device, msg}] {
		if r.ts <= queryTS && (!found || r.ts > best.ts) {
			best = r
			found = true
		}
	}
	return best, found
}

// visibleRange returns all newest-visible records for device with
// msgLo <= msg <= msgHi, ordered by msg.
func (m *model) visibleRange(device, msgLo, msgHi int64, queryTS types.TS) []record {
	var out []record
	for msg := msgLo; msg <= msgHi; msg++ {
		if r, ok := m.visible(device, msg, queryTS); ok {
			out = append(out, r)
		}
	}
	return out
}

// groom ingests one groom cycle: the records get beginTS from the cycle
// sequence and land in groomed block `cycle`, then an index run is built
// over that block (mirrors §5.2).
func groom(t *testing.T, ix *Index, m *model, cycle uint64, recs []record) {
	t.Helper()
	entries := make([]run.Entry, 0, len(recs))
	for i := range recs {
		r := &recs[i]
		r.ts = types.MakeTS(cycle, uint32(i))
		r.rid = types.RID{Zone: types.ZoneGroomed, Block: cycle, Offset: uint32(i)}
		e, err := ix.MakeEntry(
			[]keyenc.Value{keyenc.I64(r.device)},
			[]keyenc.Value{keyenc.I64(r.msg)},
			[]keyenc.Value{keyenc.I64(r.val)},
			r.ts, r.rid,
		)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, e)
		if m != nil {
			m.add(*r)
		}
	}
	if err := ix.BuildRun(entries, types.BlockRange{Min: cycle, Max: cycle}); err != nil {
		t.Fatal(err)
	}
}

// recsSeq builds n records: device = i % devices, msg = i / devices.
func recsSeq(n, devices int, base int64) []record {
	out := make([]record, n)
	for i := range out {
		out[i] = record{device: int64(i % devices), msg: base + int64(i/devices), val: int64(i)}
	}
	return out
}

// lookup asserts a point lookup against the model.
func checkLookup(t *testing.T, ix *Index, m *model, device, msg int64, ts types.TS) {
	t.Helper()
	e, found, err := ix.PointLookup(
		[]keyenc.Value{keyenc.I64(device)},
		[]keyenc.Value{keyenc.I64(msg)},
		ts,
	)
	if err != nil {
		t.Fatal(err)
	}
	want, wantFound := m.visible(device, msg, ts)
	if found != wantFound {
		t.Fatalf("lookup(%d,%d)@%v: found=%v, want %v", device, msg, ts, found, wantFound)
	}
	if !found {
		return
	}
	if e.BeginTS != want.ts {
		t.Fatalf("lookup(%d,%d)@%v: ts=%v, want %v", device, msg, ts, e.BeginTS, want.ts)
	}
	_, _, incl, err := ix.DecodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	if incl[0].Int() != want.val {
		t.Fatalf("lookup(%d,%d)@%v: val=%d, want %d", device, msg, ts, incl[0].Int(), want.val)
	}
}

// checkScan asserts a range scan (PQ method: globally ordered) against the
// model.
func checkScan(t *testing.T, ix *Index, m *model, device, msgLo, msgHi int64, ts types.TS, method Method) {
	t.Helper()
	got, err := ix.RangeScan(ScanOptions{
		Equality: []keyenc.Value{keyenc.I64(device)},
		SortLo:   []keyenc.Value{keyenc.I64(msgLo)},
		SortHi:   []keyenc.Value{keyenc.I64(msgHi)},
		TS:       ts,
		Method:   method,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := m.visibleRange(device, msgLo, msgHi, ts)
	if len(got) != len(want) {
		t.Fatalf("scan(dev=%d, %d..%d)@%v: %d results, want %d", device, msgLo, msgHi, ts, len(got), len(want))
	}
	// Normalize got into (msg -> record) since set-method order is by run.
	byMsg := map[int64]run.Entry{}
	for _, e := range got {
		_, sortv, _, err := ix.DecodeEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		byMsg[sortv[0].Int()] = e
	}
	for _, w := range want {
		e, ok := byMsg[w.msg]
		if !ok {
			t.Fatalf("scan missing msg %d", w.msg)
		}
		if e.BeginTS != w.ts || e.RID != w.rid {
			t.Fatalf("scan msg %d: (ts=%v, rid=%v), want (ts=%v, rid=%v)", w.msg, e.BeginTS, e.RID, w.ts, w.rid)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Name: "x", Store: storage.NewMemStore(storage.LatencyModel{})}); err == nil {
		t.Error("config without key columns accepted")
	}
	cfg := testConfig("dup")
	cfg.Def.Sort = append(cfg.Def.Sort, Column{"device", keyenc.KindInt64})
	if _, err := New(cfg); err == nil {
		t.Error("duplicate column accepted")
	}
	cfg = testConfig("npl")
	cfg.NonPersistedGroomedLevels = cfg.GroomedLevels
	if _, err := New(cfg); err == nil {
		t.Error("non-persisted range covering whole zone accepted")
	}
}

func TestNewRefusesExistingStorage(t *testing.T) {
	cfg := testConfig("t")
	ix, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	groom(t, ix, nil, 1, recsSeq(10, 2, 0))
	ix.Close()
	if _, err := New(cfg); err == nil {
		t.Error("New over existing storage must fail; Open is for recovery")
	}
}

func TestBuildAndPointLookup(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	groom(t, ix, m, 1, recsSeq(100, 10, 0))
	g, p := ix.RunCounts()
	if g != 1 || p != 0 {
		t.Fatalf("run counts = (%d,%d), want (1,0)", g, p)
	}
	for dev := int64(0); dev < 10; dev++ {
		checkLookup(t, ix, m, dev, 3, types.MaxTS)
	}
	// Absent keys.
	checkLookup(t, ix, m, 99, 0, types.MaxTS)
	checkLookup(t, ix, m, 0, 9999, types.MaxTS)
}

func TestEmptyBuildIsNoop(t *testing.T) {
	ix := newTestIndex(t, nil)
	if err := ix.BuildRun(nil, types.BlockRange{Min: 1, Max: 1}); err != nil {
		t.Fatal(err)
	}
	if g, _ := ix.RunCounts(); g != 0 {
		t.Error("empty build created a run")
	}
}

func TestMultiRunLookupNewestWins(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	// Same keys re-ingested across cycles: later cycles are updates.
	for c := uint64(1); c <= 5; c++ {
		groom(t, ix, m, c, recsSeq(50, 5, 0))
	}
	g, _ := ix.RunCounts()
	if g != 5 {
		t.Fatalf("run count = %d, want 5 (no maintenance yet)", g)
	}
	for dev := int64(0); dev < 5; dev++ {
		for msg := int64(0); msg < 10; msg++ {
			checkLookup(t, ix, m, dev, msg, types.MaxTS)
		}
	}
}

func TestSnapshotReads(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	for c := uint64(1); c <= 4; c++ {
		groom(t, ix, m, c, recsSeq(30, 3, 0))
	}
	// Query at each historical groom boundary: must see exactly the
	// version from that cycle (snapshot isolation / time travel).
	for c := uint64(1); c <= 4; c++ {
		ts := types.MakeTS(c, 1<<20) // end of cycle c
		checkLookup(t, ix, m, 1, 2, ts)
		checkScan(t, ix, m, 1, 0, 9, ts, MethodPQ)
	}
	// Before any data.
	checkLookup(t, ix, m, 1, 2, types.MakeTS(0, 0))
}

func TestRangeScanMethodsAgree(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	for c := uint64(1); c <= 6; c++ {
		groom(t, ix, m, c, recsSeq(60, 4, int64(c)))
	}
	for dev := int64(0); dev < 4; dev++ {
		checkScan(t, ix, m, dev, 0, 25, types.MaxTS, MethodSet)
		checkScan(t, ix, m, dev, 0, 25, types.MaxTS, MethodPQ)
		checkScan(t, ix, m, dev, 3, 7, types.MaxTS, MethodSet)
		checkScan(t, ix, m, dev, 3, 7, types.MaxTS, MethodPQ)
	}
}

func TestRangeScanPQOrdered(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	for c := uint64(1); c <= 3; c++ {
		groom(t, ix, m, c, recsSeq(90, 3, 0))
	}
	got, err := ix.RangeScan(ScanOptions{
		Equality: []keyenc.Value{keyenc.I64(1)},
		TS:       types.MaxTS,
		Method:   MethodPQ,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("open scan returned %d, want 30", len(got))
	}
	var prev int64 = -1
	for _, e := range got {
		_, sortv, _, err := ix.DecodeEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		if sortv[0].Int() <= prev {
			t.Fatalf("PQ results not in key order: %d after %d", sortv[0].Int(), prev)
		}
		prev = sortv[0].Int()
	}
}

func TestRangeScanLimit(t *testing.T) {
	ix := newTestIndex(t, nil)
	groom(t, ix, nil, 1, recsSeq(100, 2, 0))
	got, err := ix.RangeScan(ScanOptions{
		Equality: []keyenc.Value{keyenc.I64(0)},
		TS:       types.MaxTS,
		Method:   MethodPQ,
		Limit:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("limit scan returned %d, want 7", len(got))
	}
	got, err = ix.RangeScan(ScanOptions{
		Equality: []keyenc.Value{keyenc.I64(0)},
		TS:       types.MaxTS,
		Method:   MethodSet,
		Limit:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("limit set-scan returned %d, want 7", len(got))
	}
}

func TestRangeScanUnboundedSides(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	groom(t, ix, m, 1, recsSeq(40, 4, 0))
	// Only lower bound.
	got, err := ix.RangeScan(ScanOptions{
		Equality: []keyenc.Value{keyenc.I64(2)},
		SortLo:   []keyenc.Value{keyenc.I64(5)},
		TS:       types.MaxTS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 { // msgs 5..9
		t.Fatalf("lower-bounded scan returned %d, want 5", len(got))
	}
	// Only upper bound.
	got, err = ix.RangeScan(ScanOptions{
		Equality: []keyenc.Value{keyenc.I64(2)},
		SortHi:   []keyenc.Value{keyenc.I64(4)},
		TS:       types.MaxTS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 { // msgs 0..4
		t.Fatalf("upper-bounded scan returned %d, want 5", len(got))
	}
}

func TestPointLookupRequiresFullKey(t *testing.T) {
	ix := newTestIndex(t, nil)
	groom(t, ix, nil, 1, recsSeq(10, 2, 0))
	if _, _, err := ix.PointLookup([]keyenc.Value{keyenc.I64(0)}, nil, types.MaxTS); err == nil {
		t.Error("point lookup without sort values accepted")
	}
}

func TestLookupBatch(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	for c := uint64(1); c <= 4; c++ {
		groom(t, ix, m, c, recsSeq(80, 8, 0))
	}
	var keys []LookupKey
	type want struct {
		dev, msg int64
	}
	var wants []want
	for dev := int64(0); dev < 8; dev++ {
		for msg := int64(0); msg < 10; msg += 3 {
			keys = append(keys, LookupKey{
				Equality: []keyenc.Value{keyenc.I64(dev)},
				Sort:     []keyenc.Value{keyenc.I64(msg)},
			})
			wants = append(wants, want{dev, msg})
		}
	}
	// Plus some misses.
	keys = append(keys, LookupKey{Equality: []keyenc.Value{keyenc.I64(42)}, Sort: []keyenc.Value{keyenc.I64(0)}})
	wants = append(wants, want{42, 0})

	out, found, err := ix.LookupBatch(keys, types.MaxTS)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range wants {
		wantRec, wantFound := m.visible(w.dev, w.msg, types.MaxTS)
		if found[i] != wantFound {
			t.Fatalf("batch[%d] (%d,%d): found=%v, want %v", i, w.dev, w.msg, found[i], wantFound)
		}
		if found[i] && out[i].BeginTS != wantRec.ts {
			t.Fatalf("batch[%d] (%d,%d): ts=%v, want %v", i, w.dev, w.msg, out[i].BeginTS, wantRec.ts)
		}
	}
}

func TestLookupBatchEmpty(t *testing.T) {
	ix := newTestIndex(t, nil)
	out, found, err := ix.LookupBatch(nil, types.MaxTS)
	if err != nil || len(out) != 0 || len(found) != 0 {
		t.Errorf("empty batch: %v %v %v", out, found, err)
	}
}

func TestSynopsisPruning(t *testing.T) {
	ix := newTestIndex(t, nil)
	// Two runs with disjoint device ranges.
	groom(t, ix, nil, 1, []record{{device: 1, msg: 1, val: 1}, {device: 2, msg: 1, val: 2}})
	groom(t, ix, nil, 2, []record{{device: 100, msg: 1, val: 3}, {device: 101, msg: 1, val: 4}})

	before := ix.Stats()
	if _, _, err := ix.PointLookup([]keyenc.Value{keyenc.I64(100)}, []keyenc.Value{keyenc.I64(1)}, types.MaxTS); err != nil {
		t.Fatal(err)
	}
	after := ix.Stats()
	if pruned := after.RunsPruned - before.RunsPruned; pruned != 1 {
		t.Errorf("pruned %d runs, want 1 (device 100 only in run 2)", pruned)
	}
	if searched := after.RunsSearched - before.RunsSearched; searched != 1 {
		t.Errorf("searched %d runs, want 1", searched)
	}
}

func TestSynopsisDisabled(t *testing.T) {
	ix := newTestIndex(t, func(c *Config) { c.DisableSynopsis = true })
	groom(t, ix, nil, 1, []record{{device: 1, msg: 1}})
	groom(t, ix, nil, 2, []record{{device: 100, msg: 1}})
	before := ix.Stats()
	if _, _, err := ix.PointLookup([]keyenc.Value{keyenc.I64(100)}, []keyenc.Value{keyenc.I64(1)}, types.MaxTS); err != nil {
		t.Fatal(err)
	}
	after := ix.Stats()
	if pruned := after.RunsPruned - before.RunsPruned; pruned != 0 {
		t.Errorf("pruned %d runs with synopsis disabled", pruned)
	}
}

func TestDecodeEntryRoundTrip(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	groom(t, ix, m, 1, []record{{device: 7, msg: 9, val: 55}})
	e, found, err := ix.PointLookup([]keyenc.Value{keyenc.I64(7)}, []keyenc.Value{keyenc.I64(9)}, types.MaxTS)
	if err != nil || !found {
		t.Fatal(err, found)
	}
	eq, sortv, incl, err := ix.DecodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	if eq[0].Int() != 7 || sortv[0].Int() != 9 || incl[0].Int() != 55 {
		t.Errorf("decoded (%v,%v,%v)", eq, sortv, incl)
	}
}

func TestClosedIndexRejectsOps(t *testing.T) {
	ix := newTestIndex(t, nil)
	groom(t, ix, nil, 1, recsSeq(4, 2, 0))
	ix.Close()
	if err := ix.BuildRun([]run.Entry{{}}, types.BlockRange{}); err == nil {
		t.Error("BuildRun after Close accepted")
	}
	if _, err := ix.RangeScan(ScanOptions{Equality: []keyenc.Value{keyenc.I64(0)}}); err == nil {
		t.Error("RangeScan after Close accepted")
	}
	if _, _, err := ix.PointLookup([]keyenc.Value{keyenc.I64(0)}, []keyenc.Value{keyenc.I64(0)}, 0); err == nil {
		t.Error("PointLookup after Close accepted")
	}
}

func TestVerifyInvariantsOnFreshIngest(t *testing.T) {
	ix := newTestIndex(t, nil)
	for c := uint64(1); c <= 10; c++ {
		groom(t, ix, nil, c, recsSeq(20, 4, 0))
	}
	if err := ix.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPureHashIndex(t *testing.T) {
	ix := newTestIndex(t, func(c *Config) {
		c.Def = IndexDef{
			Equality: []Column{{"k", keyenc.KindString}},
			HashBits: 6,
		}
	})
	e, err := ix.MakeEntry([]keyenc.Value{keyenc.Str("alpha")}, nil, nil, types.MakeTS(1, 0), types.RID{Block: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.BuildRun([]run.Entry{e}, types.BlockRange{Min: 1, Max: 1}); err != nil {
		t.Fatal(err)
	}
	got, found, err := ix.PointLookup([]keyenc.Value{keyenc.Str("alpha")}, nil, types.MaxTS)
	if err != nil || !found {
		t.Fatal(err, found)
	}
	if got.RID.Block != 1 {
		t.Errorf("RID = %v", got.RID)
	}
	if _, found, _ := ix.PointLookup([]keyenc.Value{keyenc.Str("beta")}, nil, types.MaxTS); found {
		t.Error("found absent key")
	}
}

func TestPureRangeIndex(t *testing.T) {
	ix := newTestIndex(t, func(c *Config) {
		c.Def = IndexDef{
			Sort: []Column{{"seq", keyenc.KindInt64}},
		}
	})
	var entries []run.Entry
	for i := int64(0); i < 50; i++ {
		e, err := ix.MakeEntry(nil, []keyenc.Value{keyenc.I64(i)}, nil, types.MakeTS(1, uint32(i)), types.RID{Block: 1, Offset: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, e)
	}
	if err := ix.BuildRun(entries, types.BlockRange{Min: 1, Max: 1}); err != nil {
		t.Fatal(err)
	}
	got, err := ix.RangeScan(ScanOptions{
		SortLo: []keyenc.Value{keyenc.I64(10)},
		SortHi: []keyenc.Value{keyenc.I64(19)},
		TS:     types.MaxTS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("pure range scan returned %d, want 10", len(got))
	}
}

func TestStatsCounting(t *testing.T) {
	ix := newTestIndex(t, nil)
	groom(t, ix, nil, 1, recsSeq(10, 2, 0))
	groom(t, ix, nil, 2, recsSeq(10, 2, 0))
	if _, _, err := ix.PointLookup([]keyenc.Value{keyenc.I64(0)}, []keyenc.Value{keyenc.I64(0)}, types.MaxTS); err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.Builds != 2 {
		t.Errorf("Builds = %d", st.Builds)
	}
	if st.Queries != 1 {
		t.Errorf("Queries = %d", st.Queries)
	}
	if st.RunsSearched == 0 || st.EntriesScanned == 0 {
		t.Errorf("stats not counting: %+v", st)
	}
}

func fmtRuns(ix *Index) string {
	var s string
	for _, z := range []*zoneList{ix.groomed, ix.post} {
		refs, release := z.snapshot()
		s += fmt.Sprintf("%v:", z.zone)
		for _, r := range refs {
			s += fmt.Sprintf(" L%d%v(%d)", r.level(), r.blocks(), r.entries())
			if r.active {
				s += "*"
			}
		}
		release()
		s += "\n"
	}
	return s
}

var _ = fmtRuns // debugging helper for failed maintenance tests
