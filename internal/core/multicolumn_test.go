package core

import (
	"testing"

	"umzi/internal/keyenc"
	"umzi/internal/run"
	"umzi/internal/storage"
	"umzi/internal/types"
)

// TestMultiColumnIndex exercises an index with two equality columns, two
// sort columns and mixed kinds — the fully general §4.1 definition —
// through build, merge, evolve and all query paths.
func TestMultiColumnIndex(t *testing.T) {
	cfg := Config{
		Name: "mc",
		Def: IndexDef{
			Equality: []Column{{"region", keyenc.KindString}, {"device", keyenc.KindInt64}},
			Sort:     []Column{{"day", keyenc.KindInt64}, {"seq", keyenc.KindUint64}},
			Included: []Column{{"temp", keyenc.KindFloat64}},
			HashBits: 6,
		},
		Store: storage.NewMemStore(storage.LatencyModel{}),
		K:     2,
	}
	ix, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	regions := []string{"emea", "apac"}
	type fullKey struct {
		region   string
		device   int64
		day, seq int64
	}
	expect := map[fullKey]float64{}
	for c := uint64(1); c <= 4; c++ {
		var entries []run.Entry
		i := uint32(0)
		for _, region := range regions {
			for device := int64(0); device < 3; device++ {
				for day := int64(0); day < 2; day++ {
					for seq := int64(0); seq < 4; seq++ {
						temp := float64(c)*100 + float64(seq)
						e, err := ix.MakeEntry(
							[]keyenc.Value{keyenc.Str(region), keyenc.I64(device)},
							[]keyenc.Value{keyenc.I64(day), keyenc.U64(uint64(seq))},
							[]keyenc.Value{keyenc.F64(temp)},
							types.MakeTS(c, i),
							types.RID{Zone: types.ZoneGroomed, Block: c, Offset: i},
						)
						if err != nil {
							t.Fatal(err)
						}
						entries = append(entries, e)
						expect[fullKey{region, device, day, seq}] = temp
						i++
					}
				}
			}
		}
		if err := ix.BuildRun(entries, types.BlockRange{Min: c, Max: c}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Quiesce(); err != nil {
		t.Fatal(err)
	}

	// Point lookups with the full four-column key.
	for k, temp := range expect {
		e, found, err := ix.PointLookup(
			[]keyenc.Value{keyenc.Str(k.region), keyenc.I64(k.device)},
			[]keyenc.Value{keyenc.I64(k.day), keyenc.U64(uint64(k.seq))},
			types.MaxTS,
		)
		if err != nil || !found {
			t.Fatalf("lookup %+v: %v %v", k, err, found)
		}
		_, _, incl, err := ix.DecodeEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		if incl[0].Float() != temp {
			t.Fatalf("lookup %+v: temp %v, want %v", k, incl[0].Float(), temp)
		}
	}

	// Prefix range scan: bound only the leading sort column (day); all
	// seqs of that day must return.
	got, err := ix.RangeScan(ScanOptions{
		Equality: []keyenc.Value{keyenc.Str("emea"), keyenc.I64(1)},
		SortLo:   []keyenc.Value{keyenc.I64(1)},
		SortHi:   []keyenc.Value{keyenc.I64(1)},
		TS:       types.MaxTS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("prefix scan returned %d, want 4 (seqs of day 1)", len(got))
	}

	// Full-depth range: day 0, seqs 1..2.
	got, err = ix.RangeScan(ScanOptions{
		Equality: []keyenc.Value{keyenc.Str("apac"), keyenc.I64(2)},
		SortLo:   []keyenc.Value{keyenc.I64(0), keyenc.U64(1)},
		SortHi:   []keyenc.Value{keyenc.I64(0), keyenc.U64(2)},
		TS:       types.MaxTS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("deep range scan returned %d, want 2", len(got))
	}

	// Evolve and re-verify a sample across zones.
	var migrated []run.Entry
	i := uint32(0)
	for k, temp := range expect {
		e, err := ix.MakeEntry(
			[]keyenc.Value{keyenc.Str(k.region), keyenc.I64(k.device)},
			[]keyenc.Value{keyenc.I64(k.day), keyenc.U64(uint64(k.seq))},
			[]keyenc.Value{keyenc.F64(temp)},
			types.MakeTS(4, i), // the newest version came from cycle 4
			types.RID{Zone: types.ZonePostGroomed, Block: 1, Offset: i},
		)
		if err != nil {
			t.Fatal(err)
		}
		migrated = append(migrated, e)
		i++
	}
	if err := ix.Evolve(1, migrated, types.BlockRange{Min: 1, Max: 4}); err != nil {
		t.Fatal(err)
	}
	e, found, err := ix.PointLookup(
		[]keyenc.Value{keyenc.Str("emea"), keyenc.I64(0)},
		[]keyenc.Value{keyenc.I64(0), keyenc.U64(0)},
		types.MaxTS,
	)
	if err != nil || !found {
		t.Fatal(err, found)
	}
	if e.RID.Zone != types.ZonePostGroomed {
		t.Errorf("post-evolve lookup served from %v", e.RID.Zone)
	}
	if err := ix.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}
