package core

import (
	"math/rand"
	"testing"

	"umzi/internal/keyenc"
	"umzi/internal/run"
	"umzi/internal/types"
)

// TestRandomizedWorkloadAgainstModel drives the index with a long random
// sequence of grooms, updates, merges, evolves and recoveries, checking
// every few steps that point lookups, range scans (both reconciliation
// methods) and batched lookups agree exactly with a simple in-memory
// model at randomly chosen snapshot timestamps. This is the repository's
// strongest single correctness check: it composes every maintenance
// operation with every query path under multi-version semantics.
func TestRandomizedWorkloadAgainstModel(t *testing.T) {
	seeds := []int64{1, 7, 1234}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run("", func(t *testing.T) { randomizedWorkload(t, seed) })
	}
}

func randomizedWorkload(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	cfg := testConfig("rw")
	cfg.K = 2 + rng.Intn(3)
	cfg.T = 2 + rng.Intn(3)
	cfg.GroomedLevels = 2 + rng.Intn(3)
	cfg.PostGroomedLevels = 1 + rng.Intn(2)
	if rng.Intn(2) == 1 && cfg.GroomedLevels > 1 {
		cfg.NonPersistedGroomedLevels = 1
	}
	ix, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { ix.Close() }()

	m := newModel()
	const devices, msgs = 5, 8
	cycle := uint64(0)
	psn := types.PSN(0)
	var groomTimes []types.TS // snapshot boundary per cycle

	groomRandom := func() {
		cycle++
		n := 1 + rng.Intn(3*devices)
		recs := make([]record, n)
		for i := range recs {
			recs[i] = record{
				device: int64(rng.Intn(devices)),
				msg:    int64(rng.Intn(msgs)),
				val:    rng.Int63n(1 << 30),
			}
		}
		groom(t, ix, m, cycle, recs)
		groomTimes = append(groomTimes, types.MakeTS(cycle, 1<<20))
	}

	evolveAll := func() {
		covered := ix.MaxCoveredGroomedID()
		if covered >= cycle {
			return
		}
		psn++
		postGroom(t, ix, m, psn, covered+1, cycle)
	}

	checkEverything := func() {
		ts := types.MaxTS
		if len(groomTimes) > 0 && rng.Intn(2) == 0 {
			ts = groomTimes[rng.Intn(len(groomTimes))]
		}
		// Point lookups across the whole key space.
		for dev := int64(0); dev < devices; dev++ {
			for msg := int64(0); msg < msgs; msg++ {
				checkLookup(t, ix, m, dev, msg, ts)
			}
		}
		// Range scans with both methods on a random device.
		dev := int64(rng.Intn(devices))
		checkScanValues(t, ix, m, dev, ts, MethodSet)
		checkScanValues(t, ix, m, dev, ts, MethodPQ)
		// A batched lookup mixing hits and misses.
		var keys []LookupKey
		type kk struct{ dev, msg int64 }
		var expect []kk
		for i := 0; i < 10; i++ {
			k := kk{int64(rng.Intn(devices + 1)), int64(rng.Intn(msgs + 2))}
			keys = append(keys, LookupKey{
				Equality: []keyenc.Value{keyenc.I64(k.dev)},
				Sort:     []keyenc.Value{keyenc.I64(k.msg)},
			})
			expect = append(expect, k)
		}
		out, found, err := ix.LookupBatch(keys, ts)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range expect {
			want, wantFound := m.visible(k.dev, k.msg, ts)
			if found[i] != wantFound {
				t.Fatalf("seed batch (%d,%d)@%v: found=%v want %v", k.dev, k.msg, ts, found[i], wantFound)
			}
			if found[i] && out[i].BeginTS != want.ts {
				t.Fatalf("seed batch (%d,%d)@%v: ts=%v want %v", k.dev, k.msg, ts, out[i].BeginTS, want.ts)
			}
		}
	}

	for step := 0; step < 60; step++ {
		switch r := rng.Intn(10); {
		case r < 5:
			groomRandom()
		case r < 7:
			if _, err := ix.MaintainOnce(); err != nil {
				t.Fatal(err)
			}
		case r < 9:
			evolveAll()
		default:
			// Crash and recover mid-workload.
			old := ix
			ix2, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			old.Close()
			ix = ix2
		}
		if step%7 == 0 {
			checkEverything()
			if err := ix.VerifyInvariants(); err != nil {
				t.Fatalf("step %d: %v\n%s", step, err, fmtRuns(ix))
			}
		}
	}
	if err := ix.Quiesce(); err != nil {
		t.Fatal(err)
	}
	checkEverything()
	if err := ix.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

// checkScanValues compares an unbounded per-device scan against the model
// (value-level comparison; RIDs may legitimately point at either zone for
// duplicated versions).
func checkScanValues(t *testing.T, ix *Index, m *model, device int64, ts types.TS, method Method) {
	t.Helper()
	got, err := ix.RangeScan(ScanOptions{
		Equality: []keyenc.Value{keyenc.I64(device)},
		TS:       ts,
		Method:   method,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]record{}
	for key := range m.versions {
		if key[0] != device {
			continue
		}
		if r, ok := m.visible(key[0], key[1], ts); ok {
			want[key[1]] = r
		}
	}
	if len(got) != len(want) {
		t.Fatalf("scan dev %d @%v (%v): %d results, want %d", device, ts, method, len(got), len(want))
	}
	for _, e := range got {
		_, sortv, incl, err := ix.DecodeEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		w, ok := want[sortv[0].Int()]
		if !ok {
			t.Fatalf("scan dev %d: unexpected msg %d", device, sortv[0].Int())
		}
		if e.BeginTS != w.ts || incl[0].Int() != w.val {
			t.Fatalf("scan dev %d msg %d: (ts=%v val=%d), want (ts=%v val=%d)",
				device, sortv[0].Int(), e.BeginTS, incl[0].Int(), w.ts, w.val)
		}
	}
}

// TestLookupBatchPruning verifies the batch-level synopsis pruning of
// §8.3.2: a batch confined to one run's key range must skip the others.
func TestLookupBatchPruning(t *testing.T) {
	ix := newTestIndex(t, nil)
	// Three runs with disjoint device ranges.
	groom(t, ix, nil, 1, []record{{device: 1, msg: 1}, {device: 2, msg: 1}})
	groom(t, ix, nil, 2, []record{{device: 10, msg: 1}, {device: 11, msg: 1}})
	groom(t, ix, nil, 3, []record{{device: 20, msg: 1}, {device: 21, msg: 1}})

	before := ix.Stats()
	// Keys living in the OLDEST run: the two newer runs must both be
	// pruned by the batch bounds before the batch reaches it.
	keys := []LookupKey{
		{Equality: []keyenc.Value{keyenc.I64(1)}, Sort: []keyenc.Value{keyenc.I64(1)}},
		{Equality: []keyenc.Value{keyenc.I64(2)}, Sort: []keyenc.Value{keyenc.I64(1)}},
	}
	_, found, err := ix.LookupBatch(keys, types.MaxTS)
	if err != nil {
		t.Fatal(err)
	}
	if !found[0] || !found[1] {
		t.Fatal("batch keys not found")
	}
	after := ix.Stats()
	if pruned := after.RunsPruned - before.RunsPruned; pruned != 2 {
		t.Errorf("batch pruned %d runs, want 2 (devices 1-2 live in run 1 only)", pruned)
	}
	if searched := after.RunsSearched - before.RunsSearched; searched != 1 {
		t.Errorf("batch searched %d runs, want 1", searched)
	}
}

// TestPerKeyBatchPruning verifies the opt-in extension: with it enabled, a
// random batch over sequentially ingested runs searches each run only for
// the keys it can contain.
func TestPerKeyBatchPruning(t *testing.T) {
	scanned := func(perKey bool) int64 {
		cfg := testConfig("pk")
		cfg.PerKeyBatchPruning = perKey
		ix, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		// Sequentially ingested: run c holds devices [10c, 10c+9].
		for c := uint64(1); c <= 4; c++ {
			var recs []record
			for d := int64(0); d < 10; d++ {
				recs = append(recs, record{device: int64(c)*10 + d, msg: 1})
			}
			groom(t, ix, nil, c, recs)
		}
		// A batch spanning all runs.
		var keys []LookupKey
		for _, dev := range []int64{11, 22, 33, 44} {
			keys = append(keys, LookupKey{
				Equality: []keyenc.Value{keyenc.I64(dev)},
				Sort:     []keyenc.Value{keyenc.I64(1)},
			})
		}
		_, found, err := ix.LookupBatch(keys, types.MaxTS)
		if err != nil {
			t.Fatal(err)
		}
		for i, f := range found {
			if !f {
				t.Fatalf("key %d not found", i)
			}
		}
		return ix.Stats().EntriesScanned
	}
	with := scanned(true)
	without := scanned(false)
	if with >= without {
		t.Errorf("per-key pruning scanned %d entries, plain batch scanned %d", with, without)
	}
}

// TestPointLookupPostGroomed verifies the zone-restricted lookup the
// post-groomer depends on.
func TestPointLookupPostGroomed(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	groom(t, ix, m, 1, []record{{device: 1, msg: 1, val: 10}})
	groom(t, ix, m, 2, []record{{device: 1, msg: 1, val: 20}})

	// Nothing post-groomed yet: the restricted lookup must miss even
	// though the key exists in the groomed zone.
	_, found, err := ix.PointLookupPostGroomed([]keyenc.Value{keyenc.I64(1)}, []keyenc.Value{keyenc.I64(1)}, types.MaxTS)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("post-zone lookup found a groomed-only key")
	}

	// Evolve cycle 1 only: the restricted lookup sees version 1, the
	// unrestricted lookup still returns version 2 from the groomed zone.
	postGroom(t, ix, m, 1, 1, 1)
	e, found, err := ix.PointLookupPostGroomed([]keyenc.Value{keyenc.I64(1)}, []keyenc.Value{keyenc.I64(1)}, types.MaxTS)
	if err != nil || !found {
		t.Fatal(err, found)
	}
	if e.RID.Zone != types.ZonePostGroomed {
		t.Errorf("restricted lookup returned zone %v", e.RID.Zone)
	}
	if e.BeginTS.GroomSeq() != 1 {
		t.Errorf("restricted lookup returned cycle-%d version, want 1", e.BeginTS.GroomSeq())
	}
	full, found, err := ix.PointLookup([]keyenc.Value{keyenc.I64(1)}, []keyenc.Value{keyenc.I64(1)}, types.MaxTS)
	if err != nil || !found {
		t.Fatal(err, found)
	}
	if full.BeginTS.GroomSeq() != 2 {
		t.Errorf("unrestricted lookup returned cycle-%d version, want 2", full.BeginTS.GroomSeq())
	}
}

// TestScanRespectsVersionBoundaries covers the timestamp filter at exact
// version boundaries (beginTS == queryTS is visible; beginTS+1 is not).
func TestScanRespectsVersionBoundaries(t *testing.T) {
	ix := newTestIndex(t, nil)
	var entries []run.Entry
	for _, ts := range []types.TS{10, 20, 30} {
		e, err := ix.MakeEntry(
			[]keyenc.Value{keyenc.I64(1)},
			[]keyenc.Value{keyenc.I64(1)},
			[]keyenc.Value{keyenc.I64(int64(ts))},
			ts, types.RID{Zone: types.ZoneGroomed, Block: 1, Offset: uint32(ts)},
		)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, e)
	}
	if err := ix.BuildRun(entries, types.BlockRange{Min: 1, Max: 1}); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		ts   types.TS
		want int64 // expected visible val, -1 = none
	}{
		{9, -1}, {10, 10}, {19, 10}, {20, 20}, {29, 20}, {30, 30}, {types.MaxTS, 30},
	} {
		e, found, err := ix.PointLookup([]keyenc.Value{keyenc.I64(1)}, []keyenc.Value{keyenc.I64(1)}, c.ts)
		if err != nil {
			t.Fatal(err)
		}
		if c.want == -1 {
			if found {
				t.Errorf("ts=%v: found version %v, want none", c.ts, e.BeginTS)
			}
			continue
		}
		if !found {
			t.Fatalf("ts=%v: not found", c.ts)
		}
		_, _, incl, err := ix.DecodeEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		if incl[0].Int() != c.want {
			t.Errorf("ts=%v: val=%d, want %d", c.ts, incl[0].Int(), c.want)
		}
	}
}
