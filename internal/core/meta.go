package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"umzi/internal/storage"
)

// Index meta records persist the evolve watermark — maxCoveredGroomedID
// and IndexedPSN (§5.5) — in shared storage. Because shared storage has no
// in-place update, each write creates a new sequenced object under
// <name>/meta/ and recovery reads the highest sequence; older records are
// pruned opportunistically.

const metaMagic = "UMZIMETA"

func metaName(prefix string, seq uint64) string {
	return fmt.Sprintf("%s/meta/%012d", prefix, seq)
}

// writeMeta persists the current watermark as a fresh meta object.
func (ix *Index) writeMeta() error {
	seq := ix.metaSeq.Add(1)
	buf := make([]byte, 0, 8+16)
	buf = append(buf, metaMagic...)
	buf = binary.BigEndian.AppendUint64(buf, ix.maxCovered.Load())
	buf = binary.BigEndian.AppendUint64(buf, ix.indexedPSN.Load())
	if err := ix.store.Put(metaName(ix.cfg.Name, seq), buf); err != nil {
		return err
	}
	// Prune all but the two most recent records; failures are harmless
	// (recovery always picks the highest sequence).
	names, err := ix.store.List(ix.cfg.Name + "/meta/")
	if err == nil && len(names) > 2 {
		sort.Strings(names)
		for _, n := range names[:len(names)-2] {
			_ = ix.store.Delete(n)
		}
	}
	return nil
}

// newestMeta walks the meta records under prefix newest to oldest (in
// case the newest is an unreadable interrupted write) and decodes the
// first valid one, including its sequence number. ok is false when no
// valid record exists. Both the recovery path (readMeta) and offline
// tooling (InspectMeta) parse the record format through this one
// function.
func newestMeta(store storage.ObjectStore, prefix string) (maxCovered, indexedPSN, seq uint64, ok bool, err error) {
	names, err := store.List(prefix + "/meta/")
	if err != nil {
		return 0, 0, 0, false, err
	}
	sort.Strings(names)
	for i := len(names) - 1; i >= 0; i-- {
		data, err := store.Get(names[i])
		if err != nil {
			continue
		}
		if len(data) != 8+16 || string(data[:8]) != metaMagic {
			continue
		}
		var s uint64
		fmt.Sscanf(strings.TrimPrefix(names[i], prefix+"/meta/"), "%d", &s)
		return binary.BigEndian.Uint64(data[8:16]), binary.BigEndian.Uint64(data[16:24]), s, true, nil
	}
	return 0, 0, 0, false, nil
}

// InspectMeta reads the newest meta record of the index stored under
// prefix without opening (and thereby repairing) the index: the evolve
// watermark pair (maxCoveredGroomedID, IndexedPSN). ok is false when the
// index has never persisted a meta record. Offline tooling
// (cmd/umzi-inspect) uses it; engines use Open.
func InspectMeta(store storage.ObjectStore, prefix string) (maxCovered, indexedPSN uint64, ok bool, err error) {
	maxCovered, indexedPSN, _, ok, err = newestMeta(store, prefix)
	return maxCovered, indexedPSN, ok, err
}

// readMeta loads the most recent meta record, returning ok=false when the
// index has never written one.
func (ix *Index) readMeta() (maxCovered, indexedPSN uint64, seq uint64, ok bool, err error) {
	return newestMeta(ix.store, ix.cfg.Name)
}
