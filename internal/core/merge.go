package core

import (
	"container/heap"
	"fmt"

	"umzi/internal/run"
	"umzi/internal/types"
)

// Merge policy (§5.3): Umzi uses a hybrid of tiering and leveling
// controlled by K (maximum inactive runs per level) and T (size ratio).
// Each level keeps its first run as the active run; incoming runs from
// level L-1 always merge into the active run of level L. When the active
// run grows to T times an incoming inactive run it is sealed (marked
// inactive) and the next merge starts a fresh active run. When a level
// accumulates K inactive runs they merge together with the next level's
// active run.
//
// Level 0 holds only inactive runs (index builds arrive sealed). The top
// level of a zone never seals its active run; merges there fold the
// level's inactive runs into it.

// MaintainOnce performs at most one merge per zone and returns whether any
// work was done. Tests and benchmarks drive maintenance deterministically
// with it; Start launches workers that call the same logic periodically.
func (ix *Index) MaintainOnce() (bool, error) {
	worked := false
	for _, z := range []*zoneList{ix.groomed, ix.post} {
		for local := 0; local < z.levels; local++ {
			did, err := ix.mergeLevel(z, local)
			if err != nil {
				return worked, err
			}
			if did {
				worked = true
				break // one merge per zone per call
			}
		}
	}
	return worked, nil
}

// Quiesce runs maintenance until no merge is pending. Useful in tests and
// at the end of ingest phases.
func (ix *Index) Quiesce() error {
	for {
		did, err := ix.MaintainOnce()
		if err != nil {
			return err
		}
		if !did {
			return nil
		}
	}
}

// mergePlan captures the inputs of one merge decision.
type mergePlan struct {
	seg         []*runRef // contiguous list segment: K inactive at L, then active at L+1 (if any)
	targetLocal int       // local level of the output run
	sealAfter   bool      // whether the output seals immediately
	avgInput    uint64    // average size of the level-L inputs (seal test)
}

// planMergeLocked inspects level `local` of zone z and returns a plan if
// its inactive runs are due to merge. Callers hold z.mu.
func (ix *Index) planMergeLocked(z *zoneList, local int) *mergePlan {
	runs := z.runsLocked()

	// Collect the level's runs in list order (newest first).
	var levelRuns []*runRef
	for _, r := range runs {
		if r.level() == z.baseLevel+local {
			levelRuns = append(levelRuns, r)
		}
	}
	var inactive []*runRef
	for _, r := range levelRuns {
		if !r.active {
			inactive = append(inactive, r)
		}
	}
	if len(inactive) < ix.cfg.K {
		return nil
	}

	var total uint64
	for _, r := range inactive {
		total += r.entries()
	}
	avgInput := total / uint64(len(inactive))

	if top := local == z.levels-1; top {
		// Top level: compact the whole level section (it is contiguous in
		// the list; the active run, if any, leads it) into a single run at
		// the same level. There is no higher level to push into.
		if len(levelRuns) < 2 {
			return nil
		}
		return &mergePlan{
			seg:         append([]*runRef(nil), levelRuns...),
			targetLocal: local,
			avgInput:    avgInput,
		}
	}

	targetLocal := local + 1

	// Merge the K *oldest* inactive runs: they form the tail of this
	// level's list section, adjacent to the next level's section head.
	seg := append([]*runRef(nil), inactive[len(inactive)-ix.cfg.K:]...)

	// The next level's active run joins the merge. Within a level section
	// the active run, when present, is always the first (newest) run.
	for _, r := range runs {
		if r.level() == z.baseLevel+targetLocal {
			if r.active {
				seg = append(seg, r)
			}
			break
		}
	}
	return &mergePlan{
		seg:         seg,
		targetLocal: targetLocal,
		avgInput:    avgInput,
	}
}

// mergeLevel executes one merge for the given zone level if due.
func (ix *Index) mergeLevel(z *zoneList, local int) (bool, error) {
	if ix.closed.Load() {
		return false, nil
	}
	ix.maintMu.Lock()
	defer ix.maintMu.Unlock()

	z.mu.Lock()
	plan := ix.planMergeLocked(z, local)
	if plan == nil {
		z.mu.Unlock()
		return false, nil
	}
	// Hold references to the inputs across the unlocked merge phase.
	for _, r := range plan.seg {
		if !r.acquire() {
			z.mu.Unlock()
			return false, fmt.Errorf("core: merge input died during planning")
		}
	}
	z.mu.Unlock()

	ref, err := ix.executeMerge(z, plan)
	for _, r := range plan.seg {
		r.release()
	}
	if err != nil {
		return false, err
	}

	// Splice under the short list lock (Figure 4).
	z.mu.Lock()
	targetGlobal := z.baseLevel + plan.targetLocal
	persistedTarget := ix.isPersistedLevel(targetGlobal)
	// Inputs' objects are deletable only if the output is persisted;
	// otherwise the persisted inputs become the output's ancestors and
	// must survive a crash (§6.1).
	z.replaceSegment(plan.seg, ref, persistedTarget)
	// Seal check: the new active run is full once it reaches T times an
	// incoming run's size.
	ref.active = !plan.sealAfter
	z.mu.Unlock()

	if persistedTarget {
		// Ancestors of the (possibly non-persisted) inputs are subsumed by
		// the persisted output; delete them from shared storage.
		for _, r := range plan.seg {
			for _, a := range r.header.Meta.Ancestors {
				_ = ix.store.Delete(a)
				if ix.cache != nil {
					ix.cache.DropObject(a)
				}
			}
		}
	}
	ix.stats.Merges.Add(1)
	return true, nil
}

// executeMerge performs the I/O of a merge outside any list lock: k-way
// merge the input runs into a new run at the target level.
func (ix *Index) executeMerge(z *zoneList, plan *mergePlan) (*runRef, error) {
	targetGlobal := z.baseLevel + plan.targetLocal

	blocks := plan.seg[0].blocks()
	var psn types.PSN
	var ancestors []string
	for _, r := range plan.seg {
		blocks = blocks.Union(r.blocks())
		if p := r.header.Meta.PSN; p > psn {
			psn = p
		}
	}
	persisted := ix.isPersistedLevel(targetGlobal)
	if !persisted {
		// Record persisted inputs (or their ancestors) so recovery can
		// resurrect this run's data after a crash (§6.1).
		for _, r := range plan.seg {
			if r.persisted() {
				ancestors = append(ancestors, r.name)
			} else {
				ancestors = append(ancestors, r.header.Meta.Ancestors...)
			}
		}
	}

	meta := run.Meta{
		Zone:      z.zone,
		Level:     uint16(targetGlobal),
		Blocks:    blocks,
		PSN:       psn,
		Ancestors: ancestors,
	}
	b, err := run.NewBuilder(ix.rdef, meta, ix.cfg.BlockSize)
	if err != nil {
		return nil, err
	}

	if err := ix.mergeInto(b, plan.seg); err != nil {
		return nil, err
	}

	ref, err := ix.finishBuilder(b, meta, persisted)
	if err != nil {
		return nil, err
	}
	// Seal decision (§5.3): the merged active run is full when its size
	// reaches T times an incoming inactive run; top-level actives never
	// seal.
	if plan.targetLocal < z.levels-1 && plan.avgInput > 0 &&
		ref.entries() >= uint64(ix.cfg.T)*plan.avgInput {
		plan.sealAfter = true
	}
	return ref, nil
}

// mergeInto streams the entries of the input runs (newest first) into the
// builder in sorted order, dropping exact duplicates — entries with the
// same key and beginTS — that arise from evolve's benign overlap (§5.4).
// Distinct versions are all retained: Umzi is a multi-version index.
func (ix *Index) mergeInto(b *run.Builder, seg []*runRef) error {
	h := make(mergeHeap, 0, len(seg))
	for pri, ref := range seg {
		src := ix.source(ref)
		it := run.NewReader(ref.header, src).Begin()
		if !it.Valid() {
			continue
		}
		e, err := it.Entry()
		if err != nil {
			return err
		}
		h = append(h, &mergeStream{it: it, cur: e, pri: pri})
	}
	heap.Init(&h)

	var last run.Entry
	var haveLast bool
	for h.Len() > 0 {
		s := h[0]
		e := s.cur
		if !haveLast || run.Compare(last, e) != 0 {
			// Entries reference block memory owned by the source run;
			// copy so the output builder outlives the inputs.
			b.Add(cloneEntry(e))
			last = e
			haveLast = true
		}
		s.it.Next()
		if s.it.Valid() {
			ne, err := s.it.Entry()
			if err != nil {
				return err
			}
			s.cur = ne
			heap.Fix(&h, 0)
		} else {
			if err := s.it.Err(); err != nil {
				return err
			}
			s.it.Close()
			heap.Pop(&h)
		}
	}
	return nil
}

func cloneEntry(e run.Entry) run.Entry {
	out := e
	out.Key = append([]byte(nil), e.Key...)
	if len(e.Included) > 0 {
		out.Included = append([]byte(nil), e.Included...)
	}
	return out
}

// isPersistedLevel reports whether runs at the global level are persisted
// to shared storage. Only groomed levels 1..NonPersistedGroomedLevels are
// non-persisted; level 0 and the whole post-groomed zone always persist.
func (ix *Index) isPersistedLevel(global int) bool {
	if global == 0 {
		return true
	}
	if global >= ix.cfg.GroomedLevels {
		return true
	}
	return global > ix.cfg.NonPersistedGroomedLevels
}

// mergeStream is one input run's cursor in the k-way merge.
type mergeStream struct {
	it  *run.Iter
	cur run.Entry
	pri int // recency priority: lower = newer run, wins ties
}

type mergeHeap []*mergeStream

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if c := run.Compare(h[i].cur, h[j].cur); c != 0 {
		return c < 0
	}
	return h[i].pri < h[j].pri
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(*mergeStream)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
