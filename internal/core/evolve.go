package core

import (
	"fmt"

	"umzi/internal/run"
	"umzi/internal/types"
)

// Evolve applies the index evolve operation of §5.4 for one post-groom
// operation. entries are the index entries of the newly post-groomed
// blocks (same keys and beginTS as their groomed counterparts, new RIDs in
// the post-groomed zone); blocks is the groomed-block-ID range the
// post-groom consumed.
//
// The operation decomposes into three atomic sub-steps, each leaving the
// index in a valid state for concurrent lock-free queries:
//
//  1. build a run for the post-groomed data and atomically prepend it to
//     the post-groomed run list (it keeps its groomed block range);
//  2. atomically raise the maximum covered groomed block ID — from that
//     instant queries ignore groomed runs whose end ID is covered;
//  3. garbage-collect those fully covered groomed runs.
//
// Between steps the index may contain duplicates (the same key version in
// both zones); queries de-duplicate during reconciliation, so duplicates
// are benign (§5.4).
//
// Evolve operations must arrive in PSN order: psn == IndexedPSN()+1.
func (ix *Index) Evolve(psn types.PSN, entries []run.Entry, blocks types.BlockRange) error {
	if ix.closed.Load() {
		return fmt.Errorf("core: index closed")
	}
	if uint64(psn) != ix.indexedPSN.Load()+1 {
		return fmt.Errorf("core: evolve PSN %d out of order (indexed %d)", psn, ix.indexedPSN.Load())
	}
	ix.maintMu.Lock()
	defer ix.maintMu.Unlock()

	// Step 1: build and publish the post-groomed run.
	if len(entries) > 0 {
		meta := run.Meta{
			Zone:   types.ZonePostGroomed,
			Level:  uint16(ix.post.baseLevel),
			Blocks: blocks,
			PSN:    psn,
		}
		ref, err := ix.buildAndPersist(entries, meta, true)
		if err != nil {
			return fmt.Errorf("core: evolve step 1: %w", err)
		}
		ix.post.prepend(ref)
		ix.crash("evolve.after-step1")
	}

	// Step 2: raise the covered boundary. Queries loading it afterwards
	// will skip covered groomed runs; the post run from step 1 is already
	// visible to them (sequentially consistent atomics).
	if blocks.Max > ix.maxCovered.Load() {
		ix.maxCovered.Store(blocks.Max)
	}
	ix.indexedPSN.Store(uint64(psn))
	ix.crash("evolve.after-step2")

	// Step 3: GC groomed runs that are now fully covered.
	ix.gcCoveredGroomedRuns()
	ix.stats.Evolves.Add(1)

	// Persist the evolve watermark so recovery resumes from here.
	if err := ix.writeMeta(); err != nil {
		return fmt.Errorf("core: evolve meta: %w", err)
	}
	return nil
}

// BootstrapPostZone initializes a freshly created index's post-groomed
// zone from already-post-groomed data: one run holding the entries of
// every record version currently in the post-groomed zone, covering the
// groomed block IDs [0, coveredMax], with the evolve watermark
// fast-forwarded to psn so subsequent evolve operations continue from
// the engine's published PSN. This is the CREATE INDEX backfill path —
// a new secondary adopts the table's post-groomed history wholesale
// instead of replaying every evolve — and it is only valid on an empty
// index.
func (ix *Index) BootstrapPostZone(psn types.PSN, entries []run.Entry, coveredMax uint64) error {
	if ix.closed.Load() {
		return fmt.Errorf("core: index closed")
	}
	ix.maintMu.Lock()
	defer ix.maintMu.Unlock()
	if ix.groomed.len() != 0 || ix.post.len() != 0 || ix.indexedPSN.Load() != 0 {
		return fmt.Errorf("core: BootstrapPostZone on a non-empty index")
	}
	if len(entries) > 0 {
		meta := run.Meta{
			Zone:   types.ZonePostGroomed,
			Level:  uint16(ix.post.baseLevel),
			Blocks: types.BlockRange{Min: 0, Max: coveredMax},
			PSN:    psn,
		}
		ref, err := ix.buildAndPersist(entries, meta, true)
		if err != nil {
			return fmt.Errorf("core: bootstrap post zone: %w", err)
		}
		ix.post.prepend(ref)
	}
	if coveredMax > ix.maxCovered.Load() {
		ix.maxCovered.Store(coveredMax)
	}
	ix.indexedPSN.Store(uint64(psn))
	if err := ix.writeMeta(); err != nil {
		return fmt.Errorf("core: bootstrap meta: %w", err)
	}
	return nil
}

// RebuildGroomedRun re-creates a lost level-0 groomed run from re-derived
// entries. Engine recovery uses it when a crash hit a groom between
// writing the data block and persisting every index's run (§5.5: no run
// is normally rebuilt from data blocks; this is the exception that heals
// the window). The run is inserted at its recency position rather than
// the head, because later grooms may already have persisted runs. Only
// safe during recovery, before maintenance and queries start.
func (ix *Index) RebuildGroomedRun(entries []run.Entry, blocks types.BlockRange) error {
	if len(entries) == 0 {
		return nil
	}
	meta := run.Meta{Zone: types.ZoneGroomed, Level: 0, Blocks: blocks}
	ref, err := ix.buildAndPersist(entries, meta, true)
	if err != nil {
		return err
	}
	ix.groomed.insertOrdered(ref)
	ix.stats.Builds.Add(1)
	return nil
}

// CoversGroomedBlock reports whether the index holds entries for the
// given groomed block ID — through the evolve watermark (the block's
// versions migrated to the post-groomed zone) or through a groomed run
// whose range contains it. Engine recovery uses it to detect groom
// operations whose data block persisted but whose run build was lost.
func (ix *Index) CoversGroomedBlock(id uint64) bool {
	if id <= ix.maxCovered.Load() {
		return true
	}
	refs, release := ix.groomed.snapshot()
	defer release()
	for _, r := range refs {
		if b := r.blocks(); b.Min <= id && id <= b.Max {
			return true
		}
	}
	return false
}

// gcCoveredGroomedRuns removes groomed runs whose whole block range is
// covered by the post-groomed list. Their storage objects are deleted once
// in-flight readers drain (reference counting); ancestors of non-persisted
// runs are deleted immediately since the covering post-groomed run is
// persisted.
func (ix *Index) gcCoveredGroomedRuns() {
	covered := ix.maxCovered.Load()
	ix.groomed.mu.Lock()
	for _, ref := range ix.groomed.runsLocked() {
		if ref.blocks().Max <= covered {
			for _, a := range ref.header.Meta.Ancestors {
				_ = ix.store.Delete(a)
				if ix.cache != nil {
					ix.cache.DropObject(a)
				}
			}
			ix.groomed.remove(ref, true)
			ix.stats.RunsGCed.Add(1)
		}
	}
	ix.groomed.mu.Unlock()
}

// crashPoints enables deterministic failure injection in tests: when the
// named point is armed, crash panics with crashError. Production code
// never arms points, so the branch predictor hides the checks.
var crashPoints = map[string]bool{}

type crashError struct{ point string }

func (e crashError) Error() string { return "injected crash at " + e.point }

func (ix *Index) crash(point string) {
	if crashPoints[point] {
		panic(crashError{point})
	}
}
