package core

import (
	"fmt"

	"umzi/internal/run"
	"umzi/internal/types"
)

// Evolve applies the index evolve operation of §5.4 for one post-groom
// operation. entries are the index entries of the newly post-groomed
// blocks (same keys and beginTS as their groomed counterparts, new RIDs in
// the post-groomed zone); blocks is the groomed-block-ID range the
// post-groom consumed.
//
// The operation decomposes into three atomic sub-steps, each leaving the
// index in a valid state for concurrent lock-free queries:
//
//  1. build a run for the post-groomed data and atomically prepend it to
//     the post-groomed run list (it keeps its groomed block range);
//  2. atomically raise the maximum covered groomed block ID — from that
//     instant queries ignore groomed runs whose end ID is covered;
//  3. garbage-collect those fully covered groomed runs.
//
// Between steps the index may contain duplicates (the same key version in
// both zones); queries de-duplicate during reconciliation, so duplicates
// are benign (§5.4).
//
// Evolve operations must arrive in PSN order: psn == IndexedPSN()+1.
func (ix *Index) Evolve(psn types.PSN, entries []run.Entry, blocks types.BlockRange) error {
	if ix.closed.Load() {
		return fmt.Errorf("core: index closed")
	}
	if uint64(psn) != ix.indexedPSN.Load()+1 {
		return fmt.Errorf("core: evolve PSN %d out of order (indexed %d)", psn, ix.indexedPSN.Load())
	}
	ix.maintMu.Lock()
	defer ix.maintMu.Unlock()

	// Step 1: build and publish the post-groomed run.
	if len(entries) > 0 {
		meta := run.Meta{
			Zone:   types.ZonePostGroomed,
			Level:  uint16(ix.post.baseLevel),
			Blocks: blocks,
			PSN:    psn,
		}
		ref, err := ix.buildAndPersist(entries, meta, true)
		if err != nil {
			return fmt.Errorf("core: evolve step 1: %w", err)
		}
		ix.post.prepend(ref)
		ix.crash("evolve.after-step1")
	}

	// Step 2: raise the covered boundary. Queries loading it afterwards
	// will skip covered groomed runs; the post run from step 1 is already
	// visible to them (sequentially consistent atomics).
	if blocks.Max > ix.maxCovered.Load() {
		ix.maxCovered.Store(blocks.Max)
	}
	ix.indexedPSN.Store(uint64(psn))
	ix.crash("evolve.after-step2")

	// Step 3: GC groomed runs that are now fully covered.
	ix.gcCoveredGroomedRuns()
	ix.stats.Evolves.Add(1)

	// Persist the evolve watermark so recovery resumes from here.
	if err := ix.writeMeta(); err != nil {
		return fmt.Errorf("core: evolve meta: %w", err)
	}
	return nil
}

// gcCoveredGroomedRuns removes groomed runs whose whole block range is
// covered by the post-groomed list. Their storage objects are deleted once
// in-flight readers drain (reference counting); ancestors of non-persisted
// runs are deleted immediately since the covering post-groomed run is
// persisted.
func (ix *Index) gcCoveredGroomedRuns() {
	covered := ix.maxCovered.Load()
	ix.groomed.mu.Lock()
	for _, ref := range ix.groomed.runsLocked() {
		if ref.blocks().Max <= covered {
			for _, a := range ref.header.Meta.Ancestors {
				_ = ix.store.Delete(a)
				if ix.cache != nil {
					ix.cache.DropObject(a)
				}
			}
			ix.groomed.remove(ref, true)
			ix.stats.RunsGCed.Add(1)
		}
	}
	ix.groomed.mu.Unlock()
}

// crashPoints enables deterministic failure injection in tests: when the
// named point is armed, crash panics with crashError. Production code
// never arms points, so the branch predictor hides the checks.
var crashPoints = map[string]bool{}

type crashError struct{ point string }

func (e crashError) Error() string { return "injected crash at " + e.point }

func (ix *Index) crash(point string) {
	if crashPoints[point] {
		panic(crashError{point})
	}
}
