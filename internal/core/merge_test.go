package core

import (
	"strings"
	"testing"

	"umzi/internal/keyenc"
	"umzi/internal/run"
	"umzi/internal/storage"
	"umzi/internal/types"
)

func TestMergeReducesRunCount(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	for c := uint64(1); c <= 8; c++ {
		groom(t, ix, m, c, recsSeq(40, 4, 0))
	}
	g0, _ := ix.RunCounts()
	if g0 != 8 {
		t.Fatalf("pre-merge run count = %d", g0)
	}
	if err := ix.Quiesce(); err != nil {
		t.Fatal(err)
	}
	g1, _ := ix.RunCounts()
	if g1 >= g0 {
		t.Fatalf("maintenance did not reduce run count: %d -> %d\n%s", g0, g1, fmtRuns(ix))
	}
	if err := ix.VerifyInvariants(); err != nil {
		t.Fatalf("%v\n%s", err, fmtRuns(ix))
	}
	// Every key still visible with the correct newest version.
	for dev := int64(0); dev < 4; dev++ {
		for msg := int64(0); msg < 10; msg++ {
			checkLookup(t, ix, m, dev, msg, types.MaxTS)
		}
	}
	// Historical snapshots survive merges (multi-version merge keeps all
	// versions).
	for c := uint64(1); c <= 8; c++ {
		checkLookup(t, ix, m, 2, 3, types.MakeTS(c, 1<<20))
	}
}

func TestMergePolicyInactiveBound(t *testing.T) {
	ix := newTestIndex(t, func(c *Config) { c.K = 3; c.GroomedLevels = 4 })
	for c := uint64(1); c <= 20; c++ {
		groom(t, ix, nil, c, recsSeq(10, 2, 0))
		if err := ix.Quiesce(); err != nil {
			t.Fatal(err)
		}
	}
	// After quiescing, no level may hold K or more inactive runs
	// (except the top level, which only compacts at K).
	ix.groomed.mu.Lock()
	perLevel := map[int][]bool{} // level -> active flags
	for _, r := range ix.groomed.runsLocked() {
		perLevel[r.level()] = append(perLevel[r.level()], r.active)
	}
	ix.groomed.mu.Unlock()
	for lvl, flags := range perLevel {
		inactive := 0
		for _, a := range flags {
			if !a {
				inactive++
			}
		}
		if inactive >= ix.cfg.K && lvl != ix.cfg.GroomedLevels-1 {
			t.Errorf("level %d holds %d inactive runs (K=%d)\n%s", lvl, inactive, ix.cfg.K, fmtRuns(ix))
		}
	}
	if err := ix.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMergePreservesAllVersionsAndRIDs(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	// Key (0,0) is updated every cycle; all versions must survive merges.
	for c := uint64(1); c <= 6; c++ {
		groom(t, ix, m, c, []record{{device: 0, msg: 0, val: int64(c)}, {device: 1, msg: int64(c), val: 9}})
	}
	if err := ix.Quiesce(); err != nil {
		t.Fatal(err)
	}
	for c := uint64(1); c <= 6; c++ {
		ts := types.MakeTS(c, 1<<20)
		checkLookup(t, ix, m, 0, 0, ts)
	}
}

func TestTopLevelCompaction(t *testing.T) {
	// With one groomed level, everything compacts within level 0.
	ix := newTestIndex(t, func(c *Config) { c.GroomedLevels = 1; c.K = 2 })
	m := newModel()
	for c := uint64(1); c <= 6; c++ {
		groom(t, ix, m, c, recsSeq(12, 3, 0))
	}
	if err := ix.Quiesce(); err != nil {
		t.Fatal(err)
	}
	g, _ := ix.RunCounts()
	if g != 1 {
		t.Fatalf("single-level zone should compact to 1 run, got %d\n%s", g, fmtRuns(ix))
	}
	for dev := int64(0); dev < 3; dev++ {
		checkLookup(t, ix, m, dev, 2, types.MaxTS)
	}
	if err := ix.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeDeletesInputObjects(t *testing.T) {
	store := storage.NewMemStore(storage.LatencyModel{})
	ix := newTestIndex(t, func(c *Config) { c.Store = store })
	for c := uint64(1); c <= 4; c++ {
		groom(t, ix, nil, c, recsSeq(10, 2, 0))
	}
	if err := ix.Quiesce(); err != nil {
		t.Fatal(err)
	}
	names, err := store.List("t/z1/")
	if err != nil {
		t.Fatal(err)
	}
	g, _ := ix.RunCounts()
	if len(names) != g {
		t.Errorf("storage holds %d groomed objects, list holds %d runs: %v", len(names), g, names)
	}
}

func TestNonPersistedLevels(t *testing.T) {
	store := storage.NewMemStore(storage.LatencyModel{})
	ix := newTestIndex(t, func(c *Config) {
		c.Store = store
		c.GroomedLevels = 3
		c.NonPersistedGroomedLevels = 1 // level 1 non-persisted
	})
	m := newModel()
	for c := uint64(1); c <= 4; c++ {
		groom(t, ix, m, c, recsSeq(10, 2, 0))
	}
	if err := ix.Quiesce(); err != nil {
		t.Fatal(err)
	}

	// Find runs at level 1: they must be memory-resident, un-named, and
	// carry persisted ancestors.
	refs, release := ix.groomed.snapshot()
	defer release()
	sawNonPersisted := false
	for _, r := range refs {
		if r.level() == 1 {
			sawNonPersisted = true
			if r.persisted() {
				t.Error("level-1 run has a storage object despite NonPersistedGroomedLevels=1")
			}
			if r.mem == nil {
				t.Error("non-persisted run lost its in-memory data")
			}
			if len(r.header.Meta.Ancestors) == 0 {
				t.Error("non-persisted run has no recorded ancestors (§6.1)")
			}
			for _, a := range r.header.Meta.Ancestors {
				if _, err := store.Size(a); err != nil {
					t.Errorf("ancestor %s missing from shared storage: %v", a, err)
				}
			}
		}
	}
	if !sawNonPersisted {
		t.Skip("maintenance produced no level-1 run in this configuration")
	}
	// Queries still see everything.
	for dev := int64(0); dev < 2; dev++ {
		for msg := int64(0); msg < 5; msg++ {
			checkLookup(t, ix, m, dev, msg, types.MaxTS)
		}
	}
}

func TestNonPersistedAncestorsDeletedOnPersistedMerge(t *testing.T) {
	store := storage.NewMemStore(storage.LatencyModel{})
	ix := newTestIndex(t, func(c *Config) {
		c.Store = store
		c.GroomedLevels = 3
		c.NonPersistedGroomedLevels = 1
		c.K = 2
		c.T = 1 // seal aggressively so level-1 runs stack up and push to level 2
	})
	for c := uint64(1); c <= 12; c++ {
		groom(t, ix, nil, c, recsSeq(10, 2, 0))
		if err := ix.Quiesce(); err != nil {
			t.Fatal(err)
		}
	}
	// After enough merges some runs reached persisted level 2; their
	// ancestor chains must be gone from storage. Remaining level-0 objects
	// must be: live level-0 runs + ancestors of live level-1 runs, nothing
	// else.
	refs, release := ix.groomed.snapshot()
	expect := map[string]bool{}
	for _, r := range refs {
		if r.persisted() {
			expect[r.name] = true
		}
		for _, a := range r.header.Meta.Ancestors {
			expect[a] = true
		}
	}
	release()
	names, err := store.List("t/z1/")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if !expect[n] {
			t.Errorf("orphan object in storage: %s", n)
		}
	}
	for n := range expect {
		if _, err := store.Size(n); err != nil {
			t.Errorf("expected object missing: %s", n)
		}
	}
}

func TestMergeWriteAmplification(t *testing.T) {
	// Non-persisted levels must cut shared-storage write traffic (§6.1).
	writes := func(nonPersisted int) int64 {
		store := storage.NewMemStore(storage.LatencyModel{})
		cfg := testConfig("wa")
		cfg.Store = store
		cfg.GroomedLevels = 3
		cfg.NonPersistedGroomedLevels = nonPersisted
		ix, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		for c := uint64(1); c <= 16; c++ {
			groom(t, ix, nil, c, recsSeq(40, 4, 0))
			if err := ix.Quiesce(); err != nil {
				t.Fatal(err)
			}
		}
		return store.Stats().Snapshot().BytesWritten
	}
	persisted := writes(0)
	nonPersisted := writes(1)
	if nonPersisted >= persisted {
		t.Errorf("non-persisted levels wrote %d bytes, persisted-everything wrote %d", nonPersisted, persisted)
	}
}

func TestMaintainOnceIsIncremental(t *testing.T) {
	ix := newTestIndex(t, nil)
	for c := uint64(1); c <= 6; c++ {
		groom(t, ix, nil, c, recsSeq(10, 2, 0))
	}
	did, err := ix.MaintainOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !did {
		t.Fatal("expected pending merge work")
	}
	st := ix.Stats()
	if st.Merges != 1 {
		t.Fatalf("MaintainOnce performed %d merges, want 1", st.Merges)
	}
}

func TestMergedRunNameEncodesLevel(t *testing.T) {
	store := storage.NewMemStore(storage.LatencyModel{})
	ix := newTestIndex(t, func(c *Config) { c.Store = store })
	for c := uint64(1); c <= 4; c++ {
		groom(t, ix, nil, c, recsSeq(10, 2, 0))
	}
	if err := ix.Quiesce(); err != nil {
		t.Fatal(err)
	}
	names, _ := store.List("t/z1/")
	sawMerged := false
	for _, n := range names {
		if strings.Contains(n, "-L1-") || strings.Contains(n, "-L2-") {
			sawMerged = true
		}
	}
	if !sawMerged {
		t.Errorf("no merged-level object names found: %v", names)
	}
}

func TestQuiesceIdempotent(t *testing.T) {
	ix := newTestIndex(t, nil)
	for c := uint64(1); c <= 5; c++ {
		groom(t, ix, nil, c, recsSeq(10, 2, 0))
	}
	if err := ix.Quiesce(); err != nil {
		t.Fatal(err)
	}
	did, err := ix.MaintainOnce()
	if err != nil {
		t.Fatal(err)
	}
	if did {
		t.Error("MaintainOnce found work immediately after Quiesce")
	}
}

func TestMergeDedupesEvolveDuplicates(t *testing.T) {
	// Two post-groomed runs carrying an identical (key, beginTS) entry —
	// the benign duplicate of §5.4 — must merge into a single entry.
	ix := newTestIndex(t, func(c *Config) { c.PostGroomedLevels = 2; c.K = 2 })
	// The same version can only appear once per zone through the real
	// protocol; duplicates arise across zones transiently. Exercise the
	// merge dedupe directly with two runs holding the same (key, beginTS).
	e1, err := ix.MakeEntry([]keyenc.Value{keyenc.I64(1)}, []keyenc.Value{keyenc.I64(1)}, []keyenc.Value{keyenc.I64(7)}, types.MakeTS(1, 0), types.RID{Zone: types.ZoneGroomed, Block: 1})
	if err != nil {
		t.Fatal(err)
	}
	e2 := e1 // identical key and beginTS, different RID (copied record)
	e2.RID = types.RID{Zone: types.ZonePostGroomed, Block: 50}
	if err := ix.BuildRun([]run.Entry{e1}, types.BlockRange{Min: 1, Max: 1}); err != nil {
		t.Fatal(err)
	}
	if err := ix.BuildRun([]run.Entry{e2}, types.BlockRange{Min: 2, Max: 2}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Quiesce(); err != nil {
		t.Fatal(err)
	}
	got, err := ix.RangeScan(ScanOptions{
		Equality: []keyenc.Value{keyenc.I64(1)},
		TS:       types.MaxTS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("duplicate versions not reconciled: %d results", len(got))
	}
}
