package core

import (
	"fmt"

	"umzi/internal/keyenc"
	"umzi/internal/run"
	"umzi/internal/storage"
	"umzi/internal/types"
)

// EntrySource yields the index entries of one build operation. BuildRun
// accepts a slice; the wildfire groomer converts groomed blocks to entries.
type EntrySource = []run.Entry

// BuildRun performs the index build of §5.2: it sorts the entries of a
// newly groomed block range into a level-0 run, persists it to shared
// storage (level 0 is always persisted, §6.1), writes it through to the
// SSD cache when below the current cached level, and atomically publishes
// it at the head of the groomed run list.
//
// blocks is the range of groomed block IDs the entries come from; it must
// be adjacent to and after the ranges already indexed.
func (ix *Index) BuildRun(entries []run.Entry, blocks types.BlockRange) error {
	if ix.closed.Load() {
		return fmt.Errorf("core: index closed")
	}
	if len(entries) == 0 {
		return nil // an empty groom cycle produces no run
	}
	meta := run.Meta{Zone: types.ZoneGroomed, Level: 0, Blocks: blocks}
	ref, err := ix.buildAndPersist(entries, meta, true)
	if err != nil {
		return err
	}
	ix.groomed.prepend(ref)
	ix.stats.Builds.Add(1)
	return nil
}

// MakeEntry encodes one index entry from column values; a convenience for
// callers that do not want to deal with the run package directly.
func (ix *Index) MakeEntry(eq, sortv, incl []keyenc.Value, ts types.TS, rid types.RID) (run.Entry, error) {
	return run.MakeEntry(ix.rdef, eq, sortv, incl, ts, rid)
}

// buildAndPersist serializes entries into a run and returns its list node.
// When persist is false the run lives only in memory (non-persisted
// levels, §6.1).
func (ix *Index) buildAndPersist(entries []run.Entry, meta run.Meta, persist bool) (*runRef, error) {
	b, err := run.NewBuilder(ix.rdef, meta, ix.cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		b.Add(e)
	}
	return ix.finishBuilder(b, meta, persist)
}

// finishBuilder completes a populated run builder: serialize, persist,
// write through the SSD cache, and wrap as a list node.
func (ix *Index) finishBuilder(b *run.Builder, meta run.Meta, persist bool) (*runRef, error) {
	data, h, err := b.Finish()
	if err != nil {
		return nil, err
	}
	if !persist {
		ref := ix.newRunRef("", h, data)
		return ref, nil
	}
	name := ix.nextRunName(meta.Zone, int(meta.Level), meta.Blocks)
	if err := ix.store.Put(name, data); err != nil {
		return nil, fmt.Errorf("core: persisting run: %w", err)
	}
	ref := ix.newRunRef(name, h, nil)
	// Write-through cache policy (§6.2): new runs below the current
	// cached level go straight into the SSD cache.
	if ix.cache != nil && int(meta.Level) <= int(ix.cachedLevel.Load()) {
		for i, bi := range h.BlockIndex {
			ix.cache.Put(storage.BlockKey{Object: name, Block: uint32(i)}, data[bi.Off:bi.Off+uint64(bi.Len)], false)
		}
	} else if ix.cache != nil {
		ref.purged.Store(true)
	}
	return ref, nil
}
