package core

import (
	"fmt"

	"umzi/internal/run"
	"umzi/internal/storage"
)

// tieredSource fetches a persisted run's data blocks through the storage
// hierarchy: SSD cache first, shared storage on a miss. Blocks fetched on
// behalf of a query because the run was purged enter the cache pinned and
// are released (and thus evictable) when the query finishes — the
// block-basis transfer policy of §7.
type tieredSource struct {
	ix   *Index
	ref  *runRef
	pins []uint32 // blocks this source pinned (released on Release/Close)
}

// source returns the block source for a run: memory for non-persisted
// runs, the tiered hierarchy for persisted ones.
func (ix *Index) source(ref *runRef) run.BlockSource {
	if ref.mem != nil {
		return run.NewMemSource(ref.mem, ref.header)
	}
	return &tieredSource{ix: ix, ref: ref}
}

// FetchBlock implements run.BlockSource.
func (s *tieredSource) FetchBlock(i uint32) ([]byte, error) {
	h := s.ref.header
	if int(i) >= len(h.BlockIndex) {
		return nil, fmt.Errorf("core: block %d out of range for %s", i, s.ref.name)
	}
	key := storage.BlockKey{Object: s.ref.name, Block: i}
	if s.ix.cache != nil {
		if data, ok := s.ix.cache.Get(key, false); ok {
			return data, nil
		}
	}
	bi := h.BlockIndex[i]
	data, err := s.ix.store.GetRange(s.ref.name, int64(bi.Off), int64(bi.Len))
	if err != nil {
		return nil, fmt.Errorf("core: fetching block %d of %s: %w", i, s.ref.name, err)
	}
	if s.ix.cache != nil {
		// Query-driven fetch of a purged block: cache it pinned so the
		// rest of the query batch reuses it, release at query end.
		s.ix.cache.Put(key, data, true)
		s.pins = append(s.pins, i)
	}
	return data, nil
}

// Release implements run.BlockSource: unpins a block this source pinned.
func (s *tieredSource) Release(i uint32) {
	if s.ix.cache == nil {
		return
	}
	for j, b := range s.pins {
		if b == i {
			s.ix.cache.Release(storage.BlockKey{Object: s.ref.name, Block: i})
			s.pins = append(s.pins[:j], s.pins[j+1:]...)
			return
		}
	}
}

// Close releases every block the source still pins.
func (s *tieredSource) Close() {
	if s.ix.cache == nil {
		return
	}
	for _, b := range s.pins {
		s.ix.cache.Release(storage.BlockKey{Object: s.ref.name, Block: b})
	}
	s.pins = nil
}

// SetCachedLevel moves the current cached level (§6.2, Figure 7): runs at
// global levels strictly greater than level are purged — their data blocks
// leave the SSD cache while headers stay resident — and runs at levels
// less than or equal are loaded back from shared storage.
//
// The benchmarks for Figure 14 drive this directly (purge none/half/all);
// AdjustCache moves it automatically based on cache pressure.
func (ix *Index) SetCachedLevel(level int) {
	if level < -1 {
		level = -1
	}
	if max := ix.MaxLevel(); level > max {
		level = max
	}
	ix.cachedLevel.Store(int32(level))
	if ix.cache == nil {
		return
	}
	for _, z := range []*zoneList{ix.groomed, ix.post} {
		refs, release := z.snapshot()
		for _, ref := range refs {
			if !ref.persisted() {
				continue
			}
			if ref.level() > level {
				ix.purgeRun(ref)
			} else {
				ix.loadRun(ref)
			}
		}
		release()
	}
}

// CachedLevel returns the current cached level.
func (ix *Index) CachedLevel() int { return int(ix.cachedLevel.Load()) }

// purgeRun drops a run's data blocks from the SSD cache, keeping only the
// in-memory header for queries to locate blocks later (§6.2). Dropping is
// unconditional: queries re-insert blocks of purged runs while they read
// them, and a repeated purge must evict those again.
func (ix *Index) purgeRun(ref *runRef) {
	ix.cache.DropObject(ref.name)
	if ref.purged.Swap(true) {
		return
	}
	ix.stats.RunsPurged.Add(1)
}

// loadRun fetches a purged run's data blocks from shared storage back into
// the SSD cache.
func (ix *Index) loadRun(ref *runRef) {
	if !ref.purged.Swap(false) {
		return
	}
	for i, bi := range ref.header.BlockIndex {
		key := storage.BlockKey{Object: ref.name, Block: uint32(i)}
		if _, ok := ix.cache.Get(key, false); ok {
			continue
		}
		data, err := ix.store.GetRange(ref.name, int64(bi.Off), int64(bi.Len))
		if err != nil {
			ref.purged.Store(true)
			return
		}
		ix.cache.Put(key, data, false)
	}
	ix.stats.RunsLoaded.Add(1)
}

// AdjustCache implements the dynamic purge/load policy of §6.2: when the
// SSD cache is nearly full the oldest (highest-level) cached runs are
// purged and the cached level decremented once a whole level is purged;
// when the cache has room, recent purged runs are loaded back in the
// reverse direction.
func (ix *Index) AdjustCache() {
	if ix.cache == nil || ix.cache.Capacity() <= 0 {
		return
	}
	used, cap := ix.cache.Used(), ix.cache.Capacity()
	switch {
	case used*10 > cap*9: // over 90%: purge the current cached level
		lvl := int(ix.cachedLevel.Load())
		if lvl >= 0 {
			ix.SetCachedLevel(lvl - 1)
		}
	case used*10 < cap*6: // under 60%: pull one level back in
		lvl := int(ix.cachedLevel.Load())
		if lvl < ix.MaxLevel() {
			ix.SetCachedLevel(lvl + 1)
		}
	}
}
