package core

import (
	"bytes"
	"container/heap"
	"fmt"
	"sort"

	"umzi/internal/keyenc"
	"umzi/internal/run"
	"umzi/internal/types"
)

// Method selects the multi-run reconciliation strategy of §7.1.2.
type Method int

const (
	// MethodAuto picks the set approach for point-like scans and the
	// priority-queue approach otherwise.
	MethodAuto Method = iota
	// MethodSet searches runs newest to oldest remembering returned keys.
	// Intermediate results stay in memory; best for small ranges.
	MethodSet
	// MethodPQ merges all run streams through a priority queue, retaining
	// a global key order without remembering intermediate results.
	MethodPQ
)

// ScanOptions describes a range scan (§7.1). A query specifies values for
// all equality columns and bounds for a prefix of the sort columns, plus
// the snapshot timestamp: only the newest version with beginTS <= TS of
// each matching key is returned.
type ScanOptions struct {
	Equality []keyenc.Value
	// SortLo and SortHi are inclusive bounds on a prefix of the sort
	// columns; nil means unbounded on that side.
	SortLo, SortHi []keyenc.Value
	// TS is the query timestamp. Pass types.MaxTS to see the newest
	// version of everything; a zero TS sees nothing (no version has
	// beginTS <= 0).
	TS     types.TS
	Method Method
	// Limit stops the scan after this many results; 0 means unlimited.
	Limit int
}

// RangeScan executes a range scan and returns the newest visible version
// of every matching key. With MethodPQ (and MethodAuto for ranges) results
// are in global key order; MethodSet returns them grouped by run. Returned
// entries reference immutable run memory and remain valid indefinitely.
func (ix *Index) RangeScan(opts ScanOptions) ([]run.Entry, error) {
	if ix.closed.Load() {
		return nil, fmt.Errorf("core: index closed")
	}
	ts := opts.TS
	lo, err := run.MakeSearchKey(ix.rdef, opts.Equality, opts.SortLo)
	if err != nil {
		return nil, err
	}
	group, err := run.MakeSearchKey(ix.rdef, opts.Equality, nil)
	if err != nil {
		return nil, err
	}
	var upper []byte
	if opts.SortHi != nil {
		hi, err := run.MakeSearchKey(ix.rdef, opts.Equality, opts.SortHi)
		if err != nil {
			return nil, err
		}
		upper = hi.Key
	}

	refs, release := ix.collectCandidates(opts.Equality, opts.SortLo, opts.SortHi)
	defer release()
	ix.stats.Queries.Add(1)

	method := opts.Method
	if method == MethodAuto {
		// Point-like scans (sort columns pinned to a single value)
		// reconcile cheaply via the set approach; real ranges use the
		// priority queue, which also yields global key order (§7.1.2:
		// "the set approach mainly works well for small range queries").
		method = MethodPQ
		if len(opts.SortLo) == len(ix.rdef.SortKinds) && len(opts.SortHi) == len(opts.SortLo) {
			pinned := true
			for i := range opts.SortLo {
				if keyenc.Compare(opts.SortLo[i], opts.SortHi[i]) != 0 {
					pinned = false
					break
				}
			}
			if pinned {
				method = MethodSet
			}
		}
	}
	switch method {
	case MethodSet:
		return ix.scanSet(refs, lo, group, upper, ts, opts.Limit)
	default:
		return ix.scanPQ(refs, lo, group, upper, ts, opts.Limit)
	}
}

// collectCandidates snapshots the run lists in query order — groomed runs
// (newest first) that are not covered, then post-groomed runs — and prunes
// by synopsis. The returned release function must be called when the query
// is done with the entries.
func (ix *Index) collectCandidates(eq []keyenc.Value, sortLo, sortHi []keyenc.Value) ([]*runRef, func()) {
	// Order matters for consistency (§5.4): load the covered boundary
	// BEFORE snapshotting the lists. If we observe boundary B, the post
	// run that raised it is already in the post list we snapshot later,
	// so no groomed run skipped via B can carry data the query misses.
	covered := ix.maxCovered.Load()
	groomedRefs, releaseG := ix.groomed.snapshot()
	postRefs, releaseP := ix.post.snapshot()

	bounds := ix.synopsisBounds(eq, sortLo, sortHi)

	var out []*runRef
	for _, r := range groomedRefs {
		if r.blocks().Max <= covered {
			ix.stats.RunsCovered.Add(1)
			continue
		}
		if bounds != nil && !run.HeaderMayContain(r.header, bounds) {
			ix.stats.RunsPruned.Add(1)
			continue
		}
		out = append(out, r)
	}
	for _, r := range postRefs {
		if bounds != nil && !run.HeaderMayContain(r.header, bounds) {
			ix.stats.RunsPruned.Add(1)
			continue
		}
		out = append(out, r)
	}
	return out, func() { releaseG(); releaseP() }
}

// synopsisBounds builds per-key-column bounds for run pruning. Equality
// columns pin Lo == Hi; sort-column bounds apply hierarchically: column i
// is constrained only while all previous sort columns are pinned equal.
func (ix *Index) synopsisBounds(eq []keyenc.Value, sortLo, sortHi []keyenc.Value) []run.ColumnBound {
	if ix.cfg.DisableSynopsis {
		return nil
	}
	bounds := make([]run.ColumnBound, 0, len(eq)+len(ix.rdef.SortKinds))
	for _, v := range eq {
		enc := keyenc.Append(nil, v)
		bounds = append(bounds, run.ColumnBound{Lo: enc, Hi: enc})
	}
	for i := 0; i < len(ix.rdef.SortKinds); i++ {
		var b run.ColumnBound
		if i < len(sortLo) {
			b.Lo = keyenc.Append(nil, sortLo[i])
		}
		if i < len(sortHi) {
			b.Hi = keyenc.Append(nil, sortHi[i])
		}
		bounds = append(bounds, b)
		// Deeper sort columns are only independently constrained when
		// this one is pinned to a single value.
		pinned := i < len(sortLo) && i < len(sortHi) && bytes.Equal(b.Lo, b.Hi)
		if !pinned {
			break
		}
	}
	return bounds
}

// inUpperBound reports whether the entry is still within the inclusive
// upper bound. A key extending the bound (bound is a strict prefix) is
// inside it: the bound constrains only the leading sort columns.
func inUpperBound(key, upper []byte) bool {
	if upper == nil {
		return true
	}
	n := len(key)
	if len(upper) < n {
		n = len(upper)
	}
	if c := bytes.Compare(key[:n], upper[:n]); c != 0 {
		return c < 0
	}
	return true // equal prefix: inside regardless of which is longer
}

// searchRun implements the single-run range search of §7.1.1: binary
// search (narrowed by the offset array) to the first matching key, then
// forward iteration within the equality group and upper bound, filtering
// on beginTS and keeping only the newest visible version per key. emit
// returns false to stop early.
func (ix *Index) searchRun(ref *runRef, lo, group run.SearchKey, upper []byte, ts types.TS, emit func(run.Entry) bool) error {
	ix.stats.RunsSearched.Add(1)
	src := ix.source(ref)
	defer func() {
		if ts, ok := src.(*tieredSource); ok {
			ts.Close()
		}
	}()
	r := run.NewReader(ref.header, src)
	it, err := r.SeekGE(lo)
	if err != nil {
		return err
	}
	defer it.Close()

	var curKey []byte
	var curHash uint64
	emittedCur := false
	for ; it.Valid(); it.Next() {
		e, err := it.Entry()
		if err != nil {
			return err
		}
		ix.stats.EntriesScanned.Add(1)
		if !run.HasPrefix(e, group) {
			break // left the equality group
		}
		if !inUpperBound(e.Key, upper) {
			break
		}
		if curKey == nil || e.Hash != curHash || !bytes.Equal(e.Key, curKey) {
			curKey = e.Key
			curHash = e.Hash
			emittedCur = false
		}
		if emittedCur || e.BeginTS > ts {
			continue // older version of an emitted key, or not yet visible
		}
		emittedCur = true
		if !emit(e) {
			return nil
		}
	}
	return it.Err()
}

// scanSet reconciles with the set approach (§7.1.2): runs are searched
// newest to oldest and a set of already-returned keys suppresses older
// versions from older runs.
func (ix *Index) scanSet(refs []*runRef, lo, group run.SearchKey, upper []byte, ts types.TS, limit int) ([]run.Entry, error) {
	seen := make(map[string]struct{})
	var out []run.Entry
	for _, ref := range refs {
		if limit > 0 && len(out) >= limit {
			break
		}
		err := ix.searchRun(ref, lo, group, upper, ts, func(e run.Entry) bool {
			k := string(e.Key)
			if _, dup := seen[k]; dup {
				return true
			}
			seen[k] = struct{}{}
			out = append(out, e)
			return !(limit > 0 && len(out) >= limit)
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// scanPQ reconciles with the priority-queue approach (§7.1.2): all run
// streams merge through a heap that orders by key and then by descending
// beginTS and run recency, so the first entry popped for each key is the
// newest visible version and later duplicates are discarded on the fly.
func (ix *Index) scanPQ(refs []*runRef, lo, group run.SearchKey, upper []byte, ts types.TS, limit int) ([]run.Entry, error) {
	var streams []*scanStream
	defer func() {
		for _, s := range streams {
			s.close()
		}
	}()
	h := make(scanHeap, 0, len(refs))
	for pri, ref := range refs {
		s := &scanStream{ix: ix, group: group, upper: upper, ts: ts, pri: pri}
		streams = append(streams, s)
		if err := s.open(ref, lo); err != nil {
			return nil, err
		}
		if s.valid {
			h = append(h, s)
		}
	}
	heap.Init(&h)

	var out []run.Entry
	var lastKey []byte
	var lastHash uint64
	have := false
	for h.Len() > 0 {
		s := h[0]
		e := s.cur
		if !have || e.Hash != lastHash || !bytes.Equal(e.Key, lastKey) {
			out = append(out, e)
			lastKey, lastHash, have = e.Key, e.Hash, true
			if limit > 0 && len(out) >= limit {
				return out, nil
			}
		}
		if err := s.advance(); err != nil {
			return nil, err
		}
		if s.valid {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out, nil
}

// scanStream adapts searchRun's filtering into a pull-based stream for the
// priority-queue reconciliation.
type scanStream struct {
	ix    *Index
	src   run.BlockSource
	it    *run.Iter
	group run.SearchKey
	upper []byte
	ts    types.TS
	pri   int

	cur     run.Entry
	valid   bool
	curKey  []byte
	curHash uint64
	emitted bool
}

func (s *scanStream) open(ref *runRef, lo run.SearchKey) error {
	s.ix.stats.RunsSearched.Add(1)
	s.src = s.ix.source(ref)
	r := run.NewReader(ref.header, s.src)
	it, err := r.SeekGE(lo)
	if err != nil {
		return err
	}
	s.it = it
	return s.advance()
}

// advance moves to the next entry that passes the group/bound/timestamp/
// version filters.
func (s *scanStream) advance() error {
	for ; s.it.Valid(); s.it.Next() {
		e, err := s.it.Entry()
		if err != nil {
			return err
		}
		s.ix.stats.EntriesScanned.Add(1)
		if !run.HasPrefix(e, s.group) || !inUpperBound(e.Key, s.upper) {
			break
		}
		if s.curKey == nil || e.Hash != s.curHash || !bytes.Equal(e.Key, s.curKey) {
			s.curKey, s.curHash, s.emitted = e.Key, e.Hash, false
		}
		if s.emitted || e.BeginTS > s.ts {
			continue
		}
		s.emitted = true
		s.cur = e
		s.it.Next()
		s.valid = true
		return nil
	}
	s.valid = false
	return s.it.Err()
}

func (s *scanStream) close() {
	if s.it != nil {
		s.it.Close()
	}
	if ts, ok := s.src.(*tieredSource); ok {
		ts.Close()
	}
}

type scanHeap []*scanStream

func (h scanHeap) Len() int { return len(h) }
func (h scanHeap) Less(i, j int) bool {
	if c := run.Compare(h[i].cur, h[j].cur); c != 0 {
		return c < 0
	}
	return h[i].pri < h[j].pri
}
func (h scanHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scanHeap) Push(x interface{}) { *h = append(*h, x.(*scanStream)) }
func (h *scanHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// PointLookup finds the newest version with beginTS <= ts of the exact
// key (all equality and all sort columns specified). It searches runs
// newest to oldest and stops at the first hit (§7.2), which is correct
// because run block ranges are disjoint within a zone and beginTS grows
// with groomed block ID.
func (ix *Index) PointLookup(eq, sortv []keyenc.Value, ts types.TS) (run.Entry, bool, error) {
	if ix.closed.Load() {
		return run.Entry{}, false, fmt.Errorf("core: index closed")
	}
	if len(sortv) != len(ix.rdef.SortKinds) {
		return run.Entry{}, false, fmt.Errorf("core: point lookup requires the full key (%d sort values, want %d)", len(sortv), len(ix.rdef.SortKinds))
	}
	key, err := run.MakeSearchKey(ix.rdef, eq, sortv)
	if err != nil {
		return run.Entry{}, false, err
	}
	refs, release := ix.collectCandidates(eq, sortv, sortv)
	defer release()
	ix.stats.Queries.Add(1)

	for _, ref := range refs {
		e, found, err := ix.lookupInRun(ref, key, ts)
		if err != nil {
			return run.Entry{}, false, err
		}
		if found {
			return e, true, nil
		}
	}
	return run.Entry{}, false, nil
}

// lookupInRun finds the newest visible version of an exact key inside one
// run: the point lookup is a range scan whose lower and upper bounds
// coincide (§7.2).
func (ix *Index) lookupInRun(ref *runRef, key run.SearchKey, ts types.TS) (run.Entry, bool, error) {
	ix.stats.RunsSearched.Add(1)
	src := ix.source(ref)
	defer func() {
		if t, ok := src.(*tieredSource); ok {
			t.Close()
		}
	}()
	r := run.NewReader(ref.header, src)
	it, err := r.SeekGE(key)
	if err != nil {
		return run.Entry{}, false, err
	}
	defer it.Close()
	for ; it.Valid(); it.Next() {
		e, err := it.Entry()
		if err != nil {
			return run.Entry{}, false, err
		}
		ix.stats.EntriesScanned.Add(1)
		if e.Hash != key.Hash || !bytes.Equal(e.Key, key.Key) {
			break // moved past the key
		}
		if e.BeginTS <= ts {
			return e, true, nil
		}
	}
	return run.Entry{}, false, it.Err()
}

// PointLookupPostGroomed is PointLookup restricted to the post-groomed
// run list. The post-groomer uses it to collect the RIDs of the
// already-post-groomed records that the new records replace (§2.1): only
// post-groomed RIDs are permanent, so prevRID chains must point there.
func (ix *Index) PointLookupPostGroomed(eq, sortv []keyenc.Value, ts types.TS) (run.Entry, bool, error) {
	if ix.closed.Load() {
		return run.Entry{}, false, fmt.Errorf("core: index closed")
	}
	if len(sortv) != len(ix.rdef.SortKinds) {
		return run.Entry{}, false, fmt.Errorf("core: point lookup requires the full key")
	}
	key, err := run.MakeSearchKey(ix.rdef, eq, sortv)
	if err != nil {
		return run.Entry{}, false, err
	}
	refs, release := ix.post.snapshot()
	defer release()
	ix.stats.Queries.Add(1)
	bounds := ix.synopsisBounds(eq, sortv, sortv)
	for _, ref := range refs {
		if bounds != nil && !run.HeaderMayContain(ref.header, bounds) {
			ix.stats.RunsPruned.Add(1)
			continue
		}
		e, found, err := ix.lookupInRun(ref, key, ts)
		if err != nil {
			return run.Entry{}, false, err
		}
		if found {
			return e, true, nil
		}
	}
	return run.Entry{}, false, nil
}

// LookupKey is one key of a batched point lookup.
type LookupKey struct {
	Equality []keyenc.Value
	Sort     []keyenc.Value
}

// LookupBatch resolves a batch of point lookups at one timestamp. Keys are
// first sorted by their index order so every run is searched sequentially
// and at most once, newest to oldest, until all keys are found or the runs
// are exhausted (§7.2). Results align with the input: found[i] reports
// whether keys[i] matched and out[i] holds its newest visible version.
func (ix *Index) LookupBatch(keys []LookupKey, ts types.TS) ([]run.Entry, []bool, error) {
	if ix.closed.Load() {
		return nil, nil, fmt.Errorf("core: index closed")
	}
	out := make([]run.Entry, len(keys))
	found := make([]bool, len(keys))
	if len(keys) == 0 {
		return out, found, nil
	}

	type item struct {
		key  run.SearchKey
		segs [][]byte // per-key-column encoded values, for synopsis checks
		pos  int
	}
	nKeyCols := len(ix.rdef.EqualityKinds) + len(ix.rdef.SortKinds)
	items := make([]item, len(keys))
	// batchBounds accumulates the per-column min/max over the whole
	// batch, pruning runs that overlap none of the batch's keys.
	batchBounds := make([]run.ColumnBound, nKeyCols)
	for i, k := range keys {
		if len(k.Sort) != len(ix.rdef.SortKinds) {
			return nil, nil, fmt.Errorf("core: batch key %d: point lookup requires the full key", i)
		}
		sk, err := run.MakeSearchKey(ix.rdef, k.Equality, k.Sort)
		if err != nil {
			return nil, nil, fmt.Errorf("core: batch key %d: %w", i, err)
		}
		segs := make([][]byte, 0, nKeyCols)
		for _, v := range k.Equality {
			segs = append(segs, keyenc.Append(nil, v))
		}
		for _, v := range k.Sort {
			segs = append(segs, keyenc.Append(nil, v))
		}
		for c, seg := range segs {
			if batchBounds[c].Lo == nil || bytes.Compare(seg, batchBounds[c].Lo) < 0 {
				batchBounds[c].Lo = seg
			}
			if batchBounds[c].Hi == nil || bytes.Compare(seg, batchBounds[c].Hi) > 0 {
				batchBounds[c].Hi = seg
			}
		}
		items[i] = item{key: sk, segs: segs, pos: i}
	}
	// Sort the batch by hash, equality and sort columns (§7.2) so each
	// run is read in one forward pass.
	sort.Slice(items, func(i, j int) bool {
		if items[i].key.Hash != items[j].key.Hash {
			return items[i].key.Hash < items[j].key.Hash
		}
		return bytes.Compare(items[i].key.Key, items[j].key.Key) < 0
	})

	refs, release := ix.collectCandidates(nil, nil, nil)
	defer release()
	ix.stats.Queries.Add(1)

	// keyInRun checks one key against a run's synopsis: a cheap memcmp
	// per column. The paper prunes candidates per batch only (a random
	// batch therefore searches every run, §8.3.2); per-key pruning is an
	// extension enabled by Config.PerKeyBatchPruning.
	keyInRun := func(segs [][]byte, h *run.Header) bool {
		for c, seg := range segs {
			if c >= len(h.SynMin) || h.SynMin[c] == nil {
				continue
			}
			if bytes.Compare(seg, h.SynMin[c]) < 0 || bytes.Compare(seg, h.SynMax[c]) > 0 {
				return false
			}
		}
		return true
	}

	remaining := len(items)
	for _, ref := range refs {
		if remaining == 0 {
			break
		}
		if !ix.cfg.DisableSynopsis && !run.HeaderMayContain(ref.header, batchBounds) {
			ix.stats.RunsPruned.Add(1)
			continue
		}
		err := func() error {
			ix.stats.RunsSearched.Add(1)
			src := ix.source(ref)
			defer func() {
				if t, ok := src.(*tieredSource); ok {
					t.Close()
				}
			}()
			r := run.NewReader(ref.header, src)
			// One iterator per run: since the batch is sorted, successive
			// seeks revisit the same data blocks, and the iterator's block
			// cache turns those into a single fetch (§8.3.2).
			it := r.Begin()
			defer it.Close()
			for i := range items {
				if found[items[i].pos] {
					continue
				}
				if ix.cfg.PerKeyBatchPruning && !ix.cfg.DisableSynopsis && !keyInRun(items[i].segs, ref.header) {
					continue
				}
				k := items[i].key
				if err := it.SeekGE(k); err != nil {
					return err
				}
				for ; it.Valid(); it.Next() {
					e, err := it.Entry()
					if err != nil {
						return err
					}
					ix.stats.EntriesScanned.Add(1)
					if e.Hash != k.Hash || !bytes.Equal(e.Key, k.Key) {
						break
					}
					if e.BeginTS <= ts {
						out[items[i].pos] = e
						found[items[i].pos] = true
						remaining--
						break
					}
				}
				if err := it.Err(); err != nil {
					return err
				}
			}
			return nil
		}()
		if err != nil {
			return nil, nil, err
		}
	}
	return out, found, nil
}

// DecodeEntry splits an entry back into its column values.
func (ix *Index) DecodeEntry(e run.Entry) (eq, sortv, incl []keyenc.Value, err error) {
	keyVals, _, err := keyenc.DecodeComposite(e.Key, ix.rdef.KeyKinds())
	if err != nil {
		return nil, nil, nil, err
	}
	eq = keyVals[:len(ix.rdef.EqualityKinds)]
	sortv = keyVals[len(ix.rdef.EqualityKinds):]
	if len(ix.rdef.IncludedKinds) > 0 {
		incl, _, err = keyenc.DecodeComposite(e.Included, ix.rdef.IncludedKinds)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return eq, sortv, incl, nil
}
