package core

import (
	"testing"
	"time"

	"umzi/internal/keyenc"
	"umzi/internal/run"
	"umzi/internal/storage"
	"umzi/internal/types"
)

func newCachedIndex(t *testing.T, cacheBytes int64, lat storage.LatencyModel) (*Index, *storage.MemStore, *storage.SSDCache) {
	t.Helper()
	store := storage.NewMemStore(lat)
	cache := storage.NewSSDCache(cacheBytes, storage.LatencyModel{})
	cfg := testConfig("c")
	cfg.Store = store
	cfg.Cache = cache
	ix, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix, store, cache
}

func TestWriteThroughCaching(t *testing.T) {
	ix, store, cache := newCachedIndex(t, 0, storage.LatencyModel{})
	m := newModel()
	groom(t, ix, m, 1, recsSeq(100, 4, 0))

	// The freshly built run's blocks must already be in the SSD cache, so
	// a lookup should hit zero shared-storage reads.
	readsBefore := store.Stats().Snapshot().Reads
	checkLookup(t, ix, m, 1, 3, types.MaxTS)
	readsAfter := store.Stats().Snapshot().Reads
	if readsAfter != readsBefore {
		t.Errorf("lookup did %d shared-storage reads despite write-through cache", readsAfter-readsBefore)
	}
	if cache.Stats().Hits == 0 {
		t.Error("no cache hits recorded")
	}
}

func TestPurgeAndQueryFetchesFromSharedStorage(t *testing.T) {
	ix, store, cache := newCachedIndex(t, 0, storage.LatencyModel{})
	m := newModel()
	groom(t, ix, m, 1, recsSeq(100, 4, 0))

	ix.SetCachedLevel(-1) // purge everything
	if cache.Used() != 0 {
		t.Fatalf("cache not emptied by purge: %d bytes", cache.Used())
	}
	if ix.Stats().RunsPurged == 0 {
		t.Error("purge not counted")
	}

	readsBefore := store.Stats().Snapshot().Reads
	checkLookup(t, ix, m, 1, 3, types.MaxTS)
	readsAfter := store.Stats().Snapshot().Reads
	if readsAfter == readsBefore {
		t.Error("purged lookup did not touch shared storage")
	}
}

func TestLoadRestoresCache(t *testing.T) {
	ix, store, cache := newCachedIndex(t, 0, storage.LatencyModel{})
	m := newModel()
	groom(t, ix, m, 1, recsSeq(100, 4, 0))
	ix.SetCachedLevel(-1)
	ix.SetCachedLevel(ix.MaxLevel()) // load everything back
	if cache.Used() == 0 {
		t.Fatal("load did not repopulate the cache")
	}
	if ix.Stats().RunsLoaded == 0 {
		t.Error("load not counted")
	}
	readsBefore := store.Stats().Snapshot().Reads
	checkLookup(t, ix, m, 1, 3, types.MaxTS)
	if store.Stats().Snapshot().Reads != readsBefore {
		t.Error("lookup after load still reads shared storage")
	}
}

func TestPurgeHalfLevels(t *testing.T) {
	ix, _, _ := newCachedIndex(t, 0, storage.LatencyModel{})
	m := newModel()
	for c := uint64(1); c <= 6; c++ {
		groom(t, ix, m, c, recsSeq(40, 4, 0))
	}
	if err := ix.Quiesce(); err != nil {
		t.Fatal(err)
	}
	// Purge everything above level 0: level-0 runs stay cached.
	ix.SetCachedLevel(0)
	refs, release := ix.groomed.snapshot()
	defer release()
	for _, r := range refs {
		wantPurged := r.level() > 0
		if r.purged.Load() != wantPurged {
			t.Errorf("run L%d purged=%v, want %v", r.level(), r.purged.Load(), wantPurged)
		}
	}
	// Queries remain correct either way.
	for dev := int64(0); dev < 4; dev++ {
		checkLookup(t, ix, m, dev, 5, types.MaxTS)
	}
}

func TestQueryPinnedFetchReleased(t *testing.T) {
	ix, _, cache := newCachedIndex(t, 0, storage.LatencyModel{})
	m := newModel()
	groom(t, ix, m, 1, recsSeq(200, 4, 0))
	ix.SetCachedLevel(-1)
	checkLookup(t, ix, m, 2, 7, types.MaxTS)
	// After the query the fetched blocks may stay cached but must be
	// unpinned: inserting pressure must be able to evict them.
	st := cache.Stats()
	if st.Blocks == 0 {
		t.Skip("query fetched no blocks into cache")
	}
	// Verify nothing is left pinned: dropping every object must empty the
	// cache completely (pinned blocks would survive DropObject pressure
	// accounting as leaked bytes).
	refs, release := ix.groomed.snapshot()
	for _, r := range refs {
		cache.DropObject(r.name)
	}
	release()
	if cache.Used() != 0 {
		t.Errorf("blocks still pinned after query finished: %d bytes", cache.Used())
	}
}

func TestAdjustCachePurgesUnderPressure(t *testing.T) {
	// A tiny cache forces AdjustCache to walk the cached level down.
	ix, _, cache := newCachedIndex(t, 4096, storage.LatencyModel{})
	for c := uint64(1); c <= 8; c++ {
		groom(t, ix, nil, c, recsSeq(200, 4, 0))
	}
	start := ix.CachedLevel()
	for i := 0; i < 16 && cache.Used()*10 > cache.Capacity()*9; i++ {
		ix.AdjustCache()
	}
	if ix.CachedLevel() >= start && cache.Used()*10 > cache.Capacity()*9 {
		t.Errorf("AdjustCache did not reduce cached level under pressure (level %d, used %d/%d)",
			ix.CachedLevel(), cache.Used(), cache.Capacity())
	}
}

func TestAdjustCacheLoadsWhenSpacious(t *testing.T) {
	ix, _, _ := newCachedIndex(t, 1<<20, storage.LatencyModel{})
	groom(t, ix, nil, 1, recsSeq(50, 4, 0))
	ix.SetCachedLevel(-1)
	ix.AdjustCache() // plenty of room: should move the level back up
	if ix.CachedLevel() != 0 {
		t.Errorf("cached level = %d, want 0 after one spacious adjust", ix.CachedLevel())
	}
}

func TestCacheLatencyGapVisible(t *testing.T) {
	// End-to-end sanity for the Figure 14 mechanism: with slow shared
	// storage, purged lookups must be much slower than cached ones.
	lat := storage.LatencyModel{PerOp: 2 * time.Millisecond}
	ix, _, _ := newCachedIndex(t, 0, lat)
	m := newModel()
	groom(t, ix, m, 1, recsSeq(100, 4, 0))

	timeLookup := func() time.Duration {
		start := time.Now()
		checkLookup(t, ix, m, 1, 3, types.MaxTS)
		return time.Since(start)
	}
	cached := timeLookup()
	ix.SetCachedLevel(-1)
	purged := timeLookup()
	if purged < cached {
		t.Errorf("purged lookup (%v) not slower than cached (%v)", purged, cached)
	}
	if purged < lat.PerOp {
		t.Errorf("purged lookup %v beat the storage latency %v", purged, lat.PerOp)
	}
}

func TestNoCacheConfigured(t *testing.T) {
	// cache == nil: everything reads shared storage; no crashes.
	cfg := testConfig("nc")
	ix, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	m := newModel()
	groom(t, ix, m, 1, recsSeq(50, 2, 0))
	ix.SetCachedLevel(-1) // no-op without a cache
	ix.AdjustCache()
	checkLookup(t, ix, m, 1, 3, types.MaxTS)
}

func TestPurgedRunSurvivesGC(t *testing.T) {
	// GC of a purged run must drop cache blocks and the object.
	ix, store, _ := newCachedIndex(t, 0, storage.LatencyModel{})
	groom(t, ix, nil, 1, recsSeq(20, 2, 0))
	ix.SetCachedLevel(-1)
	e, err := ix.MakeEntry(
		[]keyenc.Value{keyenc.I64(0)},
		[]keyenc.Value{keyenc.I64(0)},
		[]keyenc.Value{keyenc.I64(0)},
		types.MakeTS(1, 0),
		types.RID{Zone: types.ZonePostGroomed, Block: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Evolve(1, []run.Entry{e}, types.BlockRange{Min: 1, Max: 1}); err != nil {
		t.Fatal(err)
	}
	names, _ := store.List("c/z1/")
	if len(names) != 0 {
		t.Errorf("GCed purged run still in storage: %v", names)
	}
}
