package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"umzi/internal/keyenc"
	"umzi/internal/run"
	"umzi/internal/types"
)

// ingestCycle builds one groom cycle's run without testing.T plumbing so
// it can run inside goroutines. Every cycle rewrites the same key space
// (devices × msgs), so any complete scan must return exactly msgs results
// per device.
func ingestCycle(ix *Index, c uint64, devices, msgs int) error {
	entries := make([]run.Entry, 0, devices*msgs)
	i := uint32(0)
	for dev := 0; dev < devices; dev++ {
		for msg := 0; msg < msgs; msg++ {
			e, err := ix.MakeEntry(
				[]keyenc.Value{keyenc.I64(int64(dev))},
				[]keyenc.Value{keyenc.I64(int64(msg))},
				[]keyenc.Value{keyenc.I64(int64(c))},
				types.MakeTS(c, i),
				types.RID{Zone: types.ZoneGroomed, Block: c, Offset: i},
			)
			if err != nil {
				return err
			}
			entries = append(entries, e)
			i++
		}
	}
	return ix.BuildRun(entries, types.BlockRange{Min: c, Max: c})
}

// evolveCycle migrates the newest version of every key as of groom cycle
// hi into the post-groomed zone for blocks [lo,hi].
func evolveCycle(ix *Index, psn types.PSN, lo, hi uint64, devices, msgs int) error {
	entries := make([]run.Entry, 0, devices*msgs)
	i := uint32(0)
	for dev := 0; dev < devices; dev++ {
		for msg := 0; msg < msgs; msg++ {
			// The newest version within [lo,hi] came from cycle hi.
			e, err := ix.MakeEntry(
				[]keyenc.Value{keyenc.I64(int64(dev))},
				[]keyenc.Value{keyenc.I64(int64(msg))},
				[]keyenc.Value{keyenc.I64(int64(hi))},
				types.MakeTS(hi, i),
				types.RID{Zone: types.ZonePostGroomed, Block: uint64(psn), Offset: i},
			)
			if err != nil {
				return err
			}
			entries = append(entries, e)
			i++
		}
	}
	return ix.Evolve(psn, entries, types.BlockRange{Min: lo, Max: hi})
}

// TestConcurrentReadersDuringMaintenance is the core §5.1 guarantee: with
// grooms, merges and evolves racing against readers, every query sees each
// key exactly once. Run with -race to exercise the memory model.
func TestConcurrentReadersDuringMaintenance(t *testing.T) {
	ix := newTestIndex(t, func(c *Config) { c.K = 2; c.GroomedLevels = 3; c.PostGroomedLevels = 2 })
	const devices, msgs = 4, 10

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	// Writer: grooms plus periodic evolves. Evolve's simplification here —
	// migrating only the newest version per key — matches the evolve
	// contract because older versions within [lo,hi] are superseded for
	// any queryTS >= MakeTS(hi,0) and the readers query at MaxTS.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		psn := types.PSN(0)
		for c := uint64(1); c <= 40; c++ {
			if err := ingestCycle(ix, c, devices, msgs); err != nil {
				report(err)
				return
			}
			if c%4 == 0 {
				psn++
				if err := evolveCycle(ix, psn, c-3, c, devices, msgs); err != nil {
					report(err)
					return
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Maintenance worker racing with the writer and readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, err := ix.MaintainOnce(); err != nil {
				report(err)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Readers: each scan must return exactly msgs de-duplicated keys per
	// device (or nothing before the first cycle lands).
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for dev := int64(0); dev < devices; dev++ {
					got, err := ix.RangeScan(ScanOptions{
						Equality: []keyenc.Value{keyenc.I64(dev)},
						TS:       types.MaxTS,
						Method:   MethodPQ,
					})
					if err != nil {
						report(err)
						return
					}
					seen := map[string]bool{}
					for _, e := range got {
						if seen[string(e.Key)] {
							report(fmt.Errorf("duplicate key in concurrent scan (dev %d)", dev))
							return
						}
						seen[string(e.Key)] = true
					}
					if len(got) != 0 && len(got) != msgs {
						report(fmt.Errorf("partial scan: %d results, want 0 or %d", len(got), msgs))
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := ix.VerifyInvariants(); err != nil {
		t.Fatalf("%v\n%s", err, fmtRuns(ix))
	}
	// Final state must be fully correct.
	for dev := int64(0); dev < devices; dev++ {
		got, err := ix.RangeScan(ScanOptions{
			Equality: []keyenc.Value{keyenc.I64(dev)},
			TS:       types.MaxTS,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != msgs {
			t.Fatalf("final scan dev %d: %d results, want %d", dev, len(got), msgs)
		}
		for _, e := range got {
			_, _, incl, err := ix.DecodeEntry(e)
			if err != nil {
				t.Fatal(err)
			}
			if incl[0].Int() != 40 {
				t.Fatalf("final value %d, want 40 (newest cycle)", incl[0].Int())
			}
		}
	}
}

// TestConcurrentPointLookups hammers point lookups from many goroutines
// while maintenance runs, mirroring the Figure 12 workload shape.
func TestConcurrentPointLookups(t *testing.T) {
	ix := newTestIndex(t, func(c *Config) { c.K = 2 })
	const devices, msgs = 8, 5
	for c := uint64(1); c <= 6; c++ {
		if err := ingestCycle(ix, c, devices, msgs); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	var lookups atomic.Int64
	errCh := make(chan error, 16)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for c := uint64(7); c <= 20; c++ {
			if err := ingestCycle(ix, c, devices, msgs); err != nil {
				errCh <- err
				return
			}
			if _, err := ix.MaintainOnce(); err != nil {
				errCh <- err
				return
			}
		}
	}()

	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Keep reading while the writer runs, with a floor so the
			// test still exercises lookups if the writer wins the race.
			for i := 0; i < 300 || !stop.Load(); i++ {
				dev := int64((r + i) % devices)
				msg := int64(i % msgs)
				e, found, err := ix.PointLookup(
					[]keyenc.Value{keyenc.I64(dev)},
					[]keyenc.Value{keyenc.I64(msg)},
					types.MaxTS,
				)
				if err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
				if !found {
					select {
					case errCh <- fmt.Errorf("key (%d,%d) vanished mid-maintenance", dev, msg):
					default:
					}
					return
				}
				_ = e
				lookups.Add(1)
			}
		}(r)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if lookups.Load() == 0 {
		t.Fatal("no lookups executed")
	}
}

// TestBackgroundWorkers exercises Start/Close: per-level maintenance
// workers must merge down the run count without manual driving.
func TestBackgroundWorkers(t *testing.T) {
	ix := newTestIndex(t, func(c *Config) { c.K = 2 })
	ix.Start(time.Millisecond)
	const devices, msgs = 4, 5
	for c := uint64(1); c <= 12; c++ {
		if err := ingestCycle(ix, c, devices, msgs); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		g, _ := ix.RunCounts()
		if g < 12 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background workers performed no merge: %d runs\n%s", g, fmtRuns(ix))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing twice is fine.
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGCWaitsForReaders verifies the reference-counted deferred deletion:
// a run GC'd while a snapshot holds it keeps its storage object until the
// snapshot is released.
func TestGCWaitsForReaders(t *testing.T) {
	ix := newTestIndex(t, nil)
	if err := ingestCycle(ix, 1, 2, 4); err != nil {
		t.Fatal(err)
	}
	refs, release := ix.groomed.snapshot()
	if len(refs) != 1 {
		t.Fatal("expected one run")
	}
	name := refs[0].name

	// Evolve covers block 1, GC'ing the groomed run while we hold it.
	if err := evolveCycle(ix, 1, 1, 1, 2, 4); err != nil {
		t.Fatal(err)
	}
	g, _ := ix.RunCounts()
	if g != 0 {
		t.Fatalf("groomed list should be empty, has %d", g)
	}
	if _, err := ix.store.Size(name); err != nil {
		t.Fatal("object deleted while a reader still holds the run")
	}
	release()
	if _, err := ix.store.Size(name); err == nil {
		t.Fatal("object not deleted after last reader released")
	}
}
