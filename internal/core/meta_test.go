package core

import (
	"testing"

	"umzi/internal/types"
)

func TestMetaRecordsPruned(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	// Every evolve writes a meta record; only the two newest survive.
	for c := uint64(1); c <= 6; c++ {
		groom(t, ix, m, c, recsSeq(4, 2, 0))
		postGroom(t, ix, m, types.PSN(c), c, c)
	}
	names, err := ix.store.List("t/meta/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) > 2 {
		t.Errorf("%d meta records retained, want <= 2: %v", len(names), names)
	}
	// The newest record carries the final watermark.
	covered, psn, _, ok, err := ix.readMeta()
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	if covered != 6 || psn != 6 {
		t.Errorf("meta = (covered %d, psn %d), want (6, 6)", covered, psn)
	}
}

func TestMetaRecoverySkipsCorruptRecord(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	groom(t, ix, m, 1, recsSeq(4, 2, 0))
	postGroom(t, ix, m, 1, 1, 1)
	// A corrupt meta record with a higher sequence than the real one.
	if err := ix.store.Put(metaName("t", 999999), []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	covered, psn, _, ok, err := ix.readMeta()
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	if covered != 1 || psn != 1 {
		t.Errorf("readMeta skipped to (%d,%d), want the last valid (1,1)", covered, psn)
	}
	// Recovery also works end to end.
	ix2 := reopen(t, ix)
	if got := ix2.IndexedPSN(); got != 1 {
		t.Errorf("recovered PSN = %d, want 1", got)
	}
}

func TestSetCachedLevelClamps(t *testing.T) {
	ix := newTestIndex(t, nil)
	ix.SetCachedLevel(-99)
	if got := ix.CachedLevel(); got != -1 {
		t.Errorf("low clamp = %d, want -1", got)
	}
	ix.SetCachedLevel(99)
	if got := ix.CachedLevel(); got != ix.MaxLevel() {
		t.Errorf("high clamp = %d, want %d", got, ix.MaxLevel())
	}
}

func TestMinLiveGroomedBlock(t *testing.T) {
	ix := newTestIndex(t, nil)
	if _, ok := ix.MinLiveGroomedBlock(); ok {
		t.Error("empty index reported a live groomed block")
	}
	m := newModel()
	for c := uint64(3); c <= 5; c++ { // start at 3 to make Min visible
		groom(t, ix, m, c, recsSeq(4, 2, 0))
	}
	min, ok := ix.MinLiveGroomedBlock()
	if !ok || min != 3 {
		t.Errorf("MinLiveGroomedBlock = (%d,%v), want (3,true)", min, ok)
	}
	// Merge everything: the merged run spans [3,5], min stays 3.
	if err := ix.Quiesce(); err != nil {
		t.Fatal(err)
	}
	min, ok = ix.MinLiveGroomedBlock()
	if !ok || min != 3 {
		t.Errorf("after merge: MinLiveGroomedBlock = (%d,%v), want (3,true)", min, ok)
	}
	// Evolve everything: groomed list empties.
	postGroom(t, ix, m, 1, 3, 5)
	if _, ok := ix.MinLiveGroomedBlock(); ok {
		t.Error("fully evolved index still reports a live groomed block")
	}
}
