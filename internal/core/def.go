// Package core implements Umzi itself: the unified multi-version,
// multi-zone LSM-like index of §3–§7 of the paper.
//
// An Index maintains one run list per zone (groomed and post-groomed),
// chained through atomic pointers so that queries are lock-free and
// non-blocking while maintenance operations — index build (§5.2), merge
// under the hybrid K/T policy (§5.3), and the three-step evolve operation
// that migrates entries between zones (§5.4) — splice the lists under
// short-duration per-zone locks. Runs persist in append-only shared
// storage, are cached block-by-block in a local SSD cache, and may live in
// non-persisted low levels to cut shared-storage write amplification
// (§6.1). Recovery rebuilds the run lists from shared storage alone
// (§5.5).
package core

import (
	"fmt"

	"umzi/internal/keyenc"
	"umzi/internal/run"
	"umzi/internal/storage"
)

// Column names one indexed column and its type.
type Column struct {
	Name string
	Kind keyenc.Kind
}

// IndexDef declares an Umzi index (§4.1): equality columns answer equality
// predicates through the hash column and offset array, sort columns answer
// range predicates, and included columns ride along to enable index-only
// plans. Leaving Equality empty yields a pure range index; leaving Sort
// empty yields a pure hash index.
type IndexDef struct {
	Equality []Column
	Sort     []Column
	Included []Column
	// HashBits sizes the per-run offset array at 2^HashBits buckets.
	// Zero selects DefaultHashBits when equality columns exist.
	HashBits uint8
}

// DefaultHashBits is the offset-array width used when HashBits is zero.
const DefaultHashBits = 10

// RunDef lowers the definition to the run package's representation.
func (d IndexDef) RunDef() run.Def {
	rd := run.Def{HashBits: d.HashBits}
	for _, c := range d.Equality {
		rd.EqualityKinds = append(rd.EqualityKinds, c.Kind)
	}
	for _, c := range d.Sort {
		rd.SortKinds = append(rd.SortKinds, c.Kind)
	}
	for _, c := range d.Included {
		rd.IncludedKinds = append(rd.IncludedKinds, c.Kind)
	}
	if rd.HashBits == 0 && len(rd.EqualityKinds) > 0 {
		rd.HashBits = DefaultHashBits
	}
	return rd
}

// Validate checks the definition.
func (d IndexDef) Validate() error {
	seen := map[string]bool{}
	for _, group := range [][]Column{d.Equality, d.Sort, d.Included} {
		for _, c := range group {
			if c.Name == "" {
				return fmt.Errorf("core: empty column name")
			}
			if seen[c.Name] {
				return fmt.Errorf("core: duplicate column %q", c.Name)
			}
			seen[c.Name] = true
		}
	}
	return d.RunDef().Validate()
}

// Config configures an Index. Zero values select the documented defaults.
type Config struct {
	// Name prefixes every storage object of this index instance; one name
	// per table shard (§3: one Umzi instance per table shard).
	Name string
	// Def is the index definition.
	Def IndexDef
	// Store is the shared storage backend (required).
	Store storage.ObjectStore
	// Cache is the local SSD block cache; nil disables SSD caching so
	// every purged read goes to shared storage.
	Cache *storage.SSDCache
	// BlockSize is the target data-block size (default run.DefaultBlockSize).
	BlockSize int
	// K is the maximum number of inactive runs a level holds before they
	// merge into the next level (§5.3). Default 4.
	K int
	// T is the size ratio that seals an active run (§5.3). Default 4.
	T int
	// GroomedLevels and PostGroomedLevels assign levels to zones (§4.3).
	// Defaults: 6 and 4 (the paper's example: levels 0–5 groomed, 6–9
	// post-groomed).
	GroomedLevels     int
	PostGroomedLevels int
	// NonPersistedGroomedLevels makes groomed levels 1..N non-persisted
	// (§6.1). Level 0 is always persisted so recovery never rebuilds runs
	// from data blocks. Default 0 (everything persisted).
	NonPersistedGroomedLevels int
	// DisableSynopsis turns off run pruning (ablation benches only).
	DisableSynopsis bool
	// PerKeyBatchPruning additionally checks every key of a batched
	// lookup against each run's synopsis before seeking. The paper prunes
	// candidates per batch only (§7.2, §8.3.2); per-key pruning is an
	// extension that collapses random batches over sequentially ingested
	// data to ~one run per key. Off by default for paper fidelity.
	PerKeyBatchPruning bool
	// DisableOffsetArray builds runs without offset arrays (ablation).
	DisableOffsetArray bool
}

// withDefaults returns a copy with defaults applied, or an error on an
// unusable configuration.
func (c Config) withDefaults() (Config, error) {
	if c.Name == "" {
		return c, fmt.Errorf("core: Config.Name is required")
	}
	if c.Store == nil {
		return c, fmt.Errorf("core: Config.Store is required")
	}
	if err := c.Def.Validate(); err != nil {
		return c, err
	}
	if c.BlockSize <= 0 {
		c.BlockSize = run.DefaultBlockSize
	}
	if c.K <= 0 {
		c.K = 4
	}
	if c.T <= 0 {
		c.T = 4
	}
	if c.GroomedLevels <= 0 {
		c.GroomedLevels = 6
	}
	if c.PostGroomedLevels <= 0 {
		c.PostGroomedLevels = 4
	}
	if c.NonPersistedGroomedLevels < 0 || c.NonPersistedGroomedLevels >= c.GroomedLevels {
		return c, fmt.Errorf("core: NonPersistedGroomedLevels %d out of range [0,%d)", c.NonPersistedGroomedLevels, c.GroomedLevels)
	}
	return c, nil
}
