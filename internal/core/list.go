package core

import (
	"sync"
	"sync/atomic"

	"umzi/internal/run"
	"umzi/internal/types"
)

// runRef is one node of a zone's run list. The list is singly linked
// through atomic pointers, newest run first, and is the concurrency-control
// backbone of §5.1: queries traverse it without locks, every maintenance
// splice leaves the list in a valid state, and nodes removed from the list
// keep their next pointer intact so in-flight readers standing on them can
// continue.
//
// Lifetime is reference counted: the list holds one reference, every query
// snapshot holds one per run it visits. When the count drains to zero and
// the run was marked obsolete, its storage object (and cached blocks) are
// deleted — this is how "eventually deleted" (§5.4) is realized without
// ever blocking a reader.
type runRef struct {
	ix     *Index
	seq    uint64      // unique creation sequence (naming, debugging)
	name   string      // storage object name; "" for non-persisted runs
	header *run.Header // always resident
	mem    []byte      // whole object bytes for non-persisted runs

	next atomic.Pointer[runRef]

	// refs counts list + reader references. 0 means dead.
	refs atomic.Int32
	// obsolete marks the run's object for deletion once refs drains.
	obsolete atomic.Bool
	// purged tracks whether the cache manager dropped this run's data
	// blocks from the SSD cache (§6.2).
	purged atomic.Bool
	// active is the merge-policy flag of §5.3 (guarded by the zone mutex).
	active bool
}

// entries returns the run's size metric for the merge policy.
func (r *runRef) entries() uint64 { return r.header.Entries }

// level returns the run's global level.
func (r *runRef) level() int { return int(r.header.Meta.Level) }

// blocks returns the groomed-block range the run covers.
func (r *runRef) blocks() types.BlockRange { return r.header.Meta.Blocks }

// persisted reports whether the run has a shared-storage object.
func (r *runRef) persisted() bool { return r.name != "" }

// acquire takes a reference if the node is still alive.
func (r *runRef) acquire() bool {
	for {
		v := r.refs.Load()
		if v <= 0 {
			return false
		}
		if r.refs.CompareAndSwap(v, v+1) {
			return true
		}
	}
}

// release drops a reference, reclaiming the run when it was the last one.
func (r *runRef) release() {
	if r.refs.Add(-1) != 0 {
		return
	}
	if r.obsolete.Load() && r.persisted() {
		// Readers have drained: the object really goes away now.
		_ = r.ix.store.Delete(r.name)
		if r.ix.cache != nil {
			r.ix.cache.DropObject(r.name)
		}
	}
	r.mem = nil
}

// zoneList is the per-zone run list plus its maintenance lock.
type zoneList struct {
	zone      types.ZoneID
	baseLevel int // global level of this zone's first level
	levels    int // number of levels assigned to the zone

	head atomic.Pointer[runRef]
	// mu serializes list modifications (§5.1: "a short duration lock is
	// acquired when modifying the run list"); queries never take it.
	mu sync.Mutex
}

// prepend publishes a new run at the head of the list. Per §5.2 the new
// run points at the old header before the head pointer moves, so a
// concurrent reader sees either the old list or the new one — never a
// broken chain.
func (z *zoneList) prepend(ref *runRef) {
	z.mu.Lock()
	ref.next.Store(z.head.Load())
	z.head.Store(ref)
	z.mu.Unlock()
}

// insertOrdered links ref at its invariant position: after every run of
// a lower level or (within the level) a newer block range, before the
// rest. Recovery uses it to rebuild runs whose natural prepend slot has
// already been taken by later runs; it is not safe against concurrent
// list maintenance beyond the zone lock it takes.
func (z *zoneList) insertOrdered(ref *runRef) {
	z.mu.Lock()
	defer z.mu.Unlock()
	var pred *runRef
	for cur := z.head.Load(); cur != nil; cur = cur.next.Load() {
		if cur.level() > ref.level() ||
			(cur.level() == ref.level() && cur.blocks().Max < ref.blocks().Min) {
			break
		}
		pred = cur
	}
	if pred == nil {
		ref.next.Store(z.head.Load())
		z.head.Store(ref)
		return
	}
	ref.next.Store(pred.next.Load())
	pred.next.Store(ref)
}

// snapshot acquires every live run in list order (newest first). If a node
// dies between being observed and acquired, the walk restarts from the
// head; GC is rare so retries are too. The returned release function drops
// all acquired references.
func (z *zoneList) snapshot() ([]*runRef, func()) {
	for {
		var acc []*runRef
		ok := true
		for cur := z.head.Load(); cur != nil; cur = cur.next.Load() {
			if !cur.acquire() {
				ok = false
				break
			}
			acc = append(acc, cur)
		}
		if ok {
			return acc, func() {
				for _, r := range acc {
					r.release()
				}
			}
		}
		for _, r := range acc {
			r.release()
		}
	}
}

// replaceSegment splices newRef into the position occupied by the
// contiguous segment seg (which must be in list order). Following Figure 4
// of the paper: the new run first points at the segment's successor, then
// the predecessor is repointed — each step leaves a valid list. The
// segment nodes keep their next pointers so readers standing on them walk
// back into the live list.
//
// Callers must hold z.mu. The segment's list references are released and
// the nodes are marked obsolete when deleteObjects is true.
func (z *zoneList) replaceSegment(seg []*runRef, newRef *runRef, deleteObjects bool) {
	first, last := seg[0], seg[len(seg)-1]
	newRef.next.Store(last.next.Load())

	if pred := z.predecessor(first); pred != nil {
		pred.next.Store(newRef)
	} else {
		z.head.Store(newRef)
	}
	for _, r := range seg {
		if deleteObjects {
			r.obsolete.Store(true)
		}
		r.release() // drop the list reference
	}
}

// remove splices a single run out of the list (evolve GC, §5.4 step 3).
// Callers must hold z.mu.
func (z *zoneList) remove(ref *runRef, deleteObject bool) {
	if pred := z.predecessor(ref); pred != nil {
		pred.next.Store(ref.next.Load())
	} else if z.head.Load() == ref {
		z.head.Store(ref.next.Load())
	} else {
		return // already gone
	}
	if deleteObject {
		ref.obsolete.Store(true)
	}
	ref.release()
}

// predecessor returns the node whose next points at ref, or nil if ref is
// the head (or absent). Callers must hold z.mu.
func (z *zoneList) predecessor(ref *runRef) *runRef {
	cur := z.head.Load()
	if cur == ref {
		return nil
	}
	for cur != nil {
		nxt := cur.next.Load()
		if nxt == ref {
			return cur
		}
		cur = nxt
	}
	return nil
}

// runsLocked returns the current list contents. Callers must hold z.mu.
func (z *zoneList) runsLocked() []*runRef {
	var out []*runRef
	for cur := z.head.Load(); cur != nil; cur = cur.next.Load() {
		out = append(out, cur)
	}
	return out
}

// len returns the number of runs currently linked (diagnostics only).
func (z *zoneList) len() int {
	n := 0
	for cur := z.head.Load(); cur != nil; cur = cur.next.Load() {
		n++
	}
	return n
}
