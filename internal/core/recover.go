package core

import (
	"fmt"
	"sort"
	"strings"

	"umzi/internal/run"
	"umzi/internal/types"
)

// recover rebuilds the index state from shared storage (§5.5):
//
//  1. read the newest meta record for the evolve watermark;
//  2. list each zone's run objects and parse their headers — unparseable
//     objects are incomplete writes and are deleted;
//  3. per zone, sort runs by descending end groomed block ID and add them
//     one by one, keeping the run with the largest range among overlapping
//     candidates and deleting the rest (they were already merged);
//  4. recompute maxCovered / IndexedPSN from the post-groomed runs in case
//     the crash hit between an evolve step and the meta write, and finish
//     any interrupted GC.
//
// Runs in non-persisted levels are lost by definition; their persisted
// ancestors are on shared storage and resurface through step 3, so no run
// is ever rebuilt from data blocks (level 0 is always persisted, §6.1).
func (ix *Index) recover() error {
	maxCovered, psn, metaSeq, haveMeta, err := ix.readMeta()
	if err != nil {
		return fmt.Errorf("core: recover meta: %w", err)
	}
	if haveMeta {
		ix.maxCovered.Store(maxCovered)
		ix.indexedPSN.Store(psn)
		ix.metaSeq.Store(metaSeq)
	}

	maxSeq := uint64(0)
	for _, z := range []*zoneList{ix.groomed, ix.post} {
		prefix := fmt.Sprintf("%s/z%d/", ix.cfg.Name, z.zone)
		names, err := ix.store.List(prefix)
		if err != nil {
			return fmt.Errorf("core: recover list %s: %w", prefix, err)
		}
		type cand struct {
			name string
			h    *run.Header
		}
		var cands []cand
		for _, name := range names {
			h, err := run.LoadHeader(ix.store, name)
			if err != nil {
				// Unparseable object: an interrupted write. Clean it up.
				_ = ix.store.Delete(name)
				continue
			}
			cands = append(cands, cand{name: name, h: h})
			if s := runSeqFromName(name); s > maxSeq {
				maxSeq = s
			}
		}
		// Sort by descending end groomed block ID; among equal ends the
		// larger range (the merged superset) wins.
		sort.Slice(cands, func(i, j int) bool {
			bi, bj := cands[i].h.Meta.Blocks, cands[j].h.Meta.Blocks
			if bi.Max != bj.Max {
				return bi.Max > bj.Max
			}
			return bi.Len() > bj.Len()
		})
		var kept []cand
		for _, c := range cands {
			overlaps := false
			for _, k := range kept {
				if c.h.Meta.Blocks.Overlaps(k.h.Meta.Blocks) {
					overlaps = true
					break
				}
			}
			if overlaps {
				// Already merged into a kept superset run.
				_ = ix.store.Delete(c.name)
				continue
			}
			kept = append(kept, c)
		}
		// kept is ordered newest-first; rebuild the chain back to front so
		// each node's next pointer is final before it becomes reachable.
		var next *runRef
		for i := len(kept) - 1; i >= 0; i-- {
			ref := ix.newRunRef(kept[i].name, kept[i].h, nil)
			ref.next.Store(next)
			if ix.cache != nil {
				ref.purged.Store(true) // cold cache after restart
			}
			next = ref
		}
		z.head.Store(next)
	}
	ix.runSeq.Store(maxSeq)

	// A crash between evolve steps can leave the meta record behind the
	// post-groomed list; the list is authoritative.
	postRefs, release := ix.post.snapshot()
	for _, ref := range postRefs {
		if ref.blocks().Max > ix.maxCovered.Load() {
			ix.maxCovered.Store(ref.blocks().Max)
		}
		if p := uint64(ref.header.Meta.PSN); p > ix.indexedPSN.Load() {
			ix.indexedPSN.Store(p)
		}
	}
	release()

	// Finish any GC the crash interrupted (evolve step 3).
	ix.gcCoveredGroomedRuns()
	return nil
}

// runSeqFromName extracts the creation sequence from a run object name
// (".../run-<seq>-L...") so freshly minted names never collide with
// recovered ones. Returns 0 when the name doesn't match.
func runSeqFromName(name string) uint64 {
	i := strings.LastIndex(name, "/run-")
	if i < 0 {
		return 0
	}
	rest := name[i+len("/run-"):]
	j := strings.IndexByte(rest, '-')
	if j < 0 {
		return 0
	}
	var seq uint64
	if _, err := fmt.Sscanf(rest[:j], "%d", &seq); err != nil {
		return 0
	}
	return seq
}

// VerifyInvariants checks structural invariants of the index; tests call
// it after maintenance storms and recovery. It is not part of the public
// API surface beyond testing.
func (ix *Index) VerifyInvariants() error {
	for _, z := range []*zoneList{ix.groomed, ix.post} {
		refs, release := z.snapshot()
		prevLevel := -1
		var prevBlocks *types.BlockRange
		for _, r := range refs {
			lvl := r.level()
			if lvl < z.baseLevel || lvl >= z.baseLevel+z.levels {
				release()
				return fmt.Errorf("core: run at level %d outside zone %v", lvl, z.zone)
			}
			if lvl < prevLevel {
				release()
				return fmt.Errorf("core: list not level-ordered in zone %v", z.zone)
			}
			prevLevel = lvl
			b := r.blocks()
			if prevBlocks != nil && b.Overlaps(*prevBlocks) {
				release()
				return fmt.Errorf("core: overlapping runs %v and %v in zone %v", *prevBlocks, b, z.zone)
			}
			if prevBlocks != nil && b.Max > prevBlocks.Min {
				release()
				return fmt.Errorf("core: list not recency-ordered in zone %v (%v after %v)", z.zone, b, *prevBlocks)
			}
			prevBlocks = &b
		}
		release()
	}
	return nil
}
