package core

import (
	"testing"

	"umzi/internal/keyenc"
	"umzi/internal/storage"
	"umzi/internal/types"
)

// reopen simulates an indexer crash + restart: the old instance is
// abandoned and a new one recovers from the same shared storage.
func reopen(t *testing.T, old *Index) *Index {
	t.Helper()
	cfg := old.cfg
	ix, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

// checkAll verifies every key of the model at several timestamps against
// the index.
func checkAll(t *testing.T, ix *Index, m *model, devices, msgs int64, tss ...types.TS) {
	t.Helper()
	for _, ts := range tss {
		for dev := int64(0); dev < devices; dev++ {
			for msg := int64(0); msg < msgs; msg++ {
				checkLookup(t, ix, m, dev, msg, ts)
			}
		}
	}
}

func TestRecoverFreshIndex(t *testing.T) {
	cfg := testConfig("r")
	ix, err := Open(cfg) // nothing in storage: Open creates empty
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	g, p := ix.RunCounts()
	if g != 0 || p != 0 {
		t.Fatalf("fresh open has runs: (%d,%d)", g, p)
	}
}

func TestRecoverAfterIngest(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	for c := uint64(1); c <= 5; c++ {
		groom(t, ix, m, c, recsSeq(30, 3, 0))
	}
	ix2 := reopen(t, ix)
	g, _ := ix2.RunCounts()
	if g != 5 {
		t.Fatalf("recovered %d groomed runs, want 5\n%s", g, fmtRuns(ix2))
	}
	checkAll(t, ix2, m, 3, 10, types.MaxTS, types.MakeTS(3, 1<<20))
	if err := ix2.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverAfterMergesDeletesLeftovers(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	for c := uint64(1); c <= 8; c++ {
		groom(t, ix, m, c, recsSeq(20, 2, 0))
	}
	if err := ix.Quiesce(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that left already-merged inputs behind: re-add a
	// stale small run object overlapping a merged run's range.
	stale, err := ix.store.List("t/z1/")
	if err != nil || len(stale) == 0 {
		t.Fatal(err)
	}
	// Build a fake overlapped run by grooming into a second index with the
	// same name prefix... simpler: copy an existing object under a new
	// name with a doctored header is overkill; instead verify dedup via
	// counting: recovery must keep exactly the live set.
	ix2 := reopen(t, ix)
	g1, p1 := ix.RunCounts()
	g2, p2 := ix2.RunCounts()
	if g1 != g2 || p1 != p2 {
		t.Fatalf("recovered counts (%d,%d) != live counts (%d,%d)", g2, p2, g1, p1)
	}
	checkAll(t, ix2, m, 2, 10, types.MaxTS)
	if err := ix2.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverOverlappingRunsKeepLargest(t *testing.T) {
	// Hand-craft the §5.5 situation: storage holds a merged run [1,4] and
	// two stale inputs [1,2], [3,4]. Recovery must keep [1,4], delete the
	// inputs.
	cfg := testConfig("ov")
	ix, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := newModel()
	groom(t, ix, m, 1, recsSeq(10, 2, 0)) // [1,1]
	groom(t, ix, m, 2, recsSeq(10, 2, 0)) // [2,2]
	// Merge everything into one run [1,2] but keep the inputs by
	// disabling deletion: easiest is to snapshot object bytes before the
	// merge and re-put them after.
	inputs, err := cfg.Store.List("ov/z1/")
	if err != nil {
		t.Fatal(err)
	}
	saved := map[string][]byte{}
	for _, n := range inputs {
		data, err := cfg.Store.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		saved[n] = data
	}
	if err := ix.Quiesce(); err != nil {
		t.Fatal(err)
	}
	ix.Close()
	for n, data := range saved {
		if err := cfg.Store.Put(n, data); err != nil {
			t.Fatal(err)
		}
	}
	pre, _ := cfg.Store.List("ov/z1/")
	if len(pre) != 3 {
		t.Fatalf("setup failed: %d objects, want 3 (merged + 2 stale)", len(pre))
	}

	ix2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	g, _ := ix2.RunCounts()
	if g != 1 {
		t.Fatalf("recovered %d runs, want 1 (largest range wins)\n%s", g, fmtRuns(ix2))
	}
	post, _ := cfg.Store.List("ov/z1/")
	if len(post) != 1 {
		t.Errorf("stale inputs not deleted during recovery: %v", post)
	}
	checkAll(t, ix2, m, 2, 5, types.MaxTS)
}

func TestRecoverDeletesCorruptObjects(t *testing.T) {
	ix := newTestIndex(t, nil)
	groom(t, ix, nil, 1, recsSeq(10, 2, 0))
	// An interrupted run write (garbage object).
	if err := ix.store.Put("t/z1/run-99999999-L0-9-9", []byte("partial garbage")); err != nil {
		t.Fatal(err)
	}
	ix2 := reopen(t, ix)
	g, _ := ix2.RunCounts()
	if g != 1 {
		t.Fatalf("recovered %d runs, want 1", g)
	}
	names, _ := ix2.store.List("t/z1/")
	if len(names) != 1 {
		t.Errorf("corrupt object survived recovery: %v", names)
	}
}

func TestRecoverAfterEvolve(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	for c := uint64(1); c <= 4; c++ {
		groom(t, ix, m, c, recsSeq(20, 2, 0))
	}
	postGroom(t, ix, m, 1, 1, 2)
	ix2 := reopen(t, ix)
	if got := ix2.MaxCoveredGroomedID(); got != 2 {
		t.Fatalf("recovered covered = %d, want 2", got)
	}
	if got := ix2.IndexedPSN(); got != 1 {
		t.Fatalf("recovered PSN = %d, want 1", got)
	}
	checkAll(t, ix2, m, 2, 10, types.MaxTS)
}

func TestRecoverCrashMidEvolve(t *testing.T) {
	// Crash between each pair of evolve steps; recovery must converge to
	// a consistent state answering every query correctly and resume at
	// the right PSN.
	for _, point := range []string{"evolve.after-step1", "evolve.after-step2"} {
		t.Run(point, func(t *testing.T) {
			ix := newTestIndex(t, nil)
			m := newModel()
			for c := uint64(1); c <= 3; c++ {
				groom(t, ix, m, c, recsSeq(20, 2, 0))
			}
			crashPoints[point] = true
			func() {
				defer func() {
					delete(crashPoints, point)
					if recover() == nil {
						t.Fatal("crash point did not fire")
					}
				}()
				postGroom(t, ix, m, 1, 1, 2)
			}()

			ix2 := reopen(t, ix)
			// The post run was persisted in step 1, so recovery must see
			// coverage 2 and PSN 1 in both crash cases.
			if got := ix2.MaxCoveredGroomedID(); got != 2 {
				t.Fatalf("covered = %d, want 2", got)
			}
			if got := ix2.IndexedPSN(); got != 1 {
				t.Fatalf("PSN = %d, want 1", got)
			}
			// Interrupted GC must have completed during recovery.
			refs, release := ix2.groomed.snapshot()
			for _, r := range refs {
				if r.blocks().Max <= 2 {
					t.Errorf("covered groomed run %v survived recovery", r.blocks())
				}
			}
			release()
			checkAll(t, ix2, m, 2, 10, types.MaxTS)
			if err := ix2.VerifyInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRecoverIdempotent(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	for c := uint64(1); c <= 6; c++ {
		groom(t, ix, m, c, recsSeq(20, 2, 0))
	}
	postGroom(t, ix, m, 1, 1, 3)
	if err := ix.Quiesce(); err != nil {
		t.Fatal(err)
	}
	ix2 := reopen(t, ix)
	ix3 := reopen(t, ix2)
	g2, p2 := ix2.RunCounts()
	g3, p3 := ix3.RunCounts()
	if g2 != g3 || p2 != p3 {
		t.Fatalf("recover not idempotent: (%d,%d) vs (%d,%d)", g2, p2, g3, p3)
	}
	checkAll(t, ix3, m, 2, 10, types.MaxTS)
}

func TestRecoverNonPersistedLevelsViaAncestors(t *testing.T) {
	store := storage.NewMemStore(storage.LatencyModel{})
	ix := newTestIndex(t, func(c *Config) {
		c.Store = store
		c.GroomedLevels = 3
		c.NonPersistedGroomedLevels = 1
	})
	m := newModel()
	for c := uint64(1); c <= 6; c++ {
		groom(t, ix, m, c, recsSeq(20, 2, 0))
		if err := ix.Quiesce(); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: non-persisted level-1 runs are lost; their persisted
	// ancestors must bring the data back.
	ix2 := reopen(t, ix)
	checkAll(t, ix2, m, 2, 10, types.MaxTS, types.MakeTS(3, 1<<20))
	if err := ix2.VerifyInvariants(); err != nil {
		t.Fatalf("%v\n%s", err, fmtRuns(ix2))
	}
}

func TestRecoverRunSeqContinues(t *testing.T) {
	ix := newTestIndex(t, nil)
	groom(t, ix, nil, 1, recsSeq(4, 2, 0))
	ix2 := reopen(t, ix)
	// New builds must not collide with recovered object names.
	m := newModel()
	groom(t, ix2, m, 2, recsSeq(4, 2, 0))
	g, _ := ix2.RunCounts()
	if g != 2 {
		t.Fatalf("post-recovery build failed: %d runs", g)
	}
}

func TestRunSeqFromName(t *testing.T) {
	cases := map[string]uint64{
		"t/z1/run-00000042-L0-1-1": 42,
		"t/z1/run-00000001-L2-0-9": 1,
		"weird":                    0,
		"t/z1/run-x-L0-1-1":        0,
	}
	for name, want := range cases {
		if got := runSeqFromName(name); got != want {
			t.Errorf("runSeqFromName(%q) = %d, want %d", name, got, want)
		}
	}
}

func TestRecoveredIndexSupportsEvolve(t *testing.T) {
	ix := newTestIndex(t, nil)
	m := newModel()
	for c := uint64(1); c <= 4; c++ {
		groom(t, ix, m, c, recsSeq(20, 2, 0))
	}
	postGroom(t, ix, m, 1, 1, 2)
	ix2 := reopen(t, ix)
	// The next PSN continues from the recovered watermark.
	postGroom(t, ix2, m, 2, 3, 4)
	if got := ix2.MaxCoveredGroomedID(); got != 4 {
		t.Fatalf("covered = %d, want 4", got)
	}
	checkAll(t, ix2, m, 2, 10, types.MaxTS)
}

func TestSynopsisSurvivesRecovery(t *testing.T) {
	ix := newTestIndex(t, nil)
	groom(t, ix, nil, 1, []record{{device: 1, msg: 1}})
	groom(t, ix, nil, 2, []record{{device: 100, msg: 1}})
	ix2 := reopen(t, ix)
	before := ix2.Stats()
	if _, _, err := ix2.PointLookup([]keyenc.Value{keyenc.I64(100)}, []keyenc.Value{keyenc.I64(1)}, types.MaxTS); err != nil {
		t.Fatal(err)
	}
	after := ix2.Stats()
	if after.RunsPruned-before.RunsPruned != 1 {
		t.Error("synopsis-based pruning lost after recovery")
	}
}
