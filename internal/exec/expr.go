package exec

import (
	"fmt"
	"strings"

	"umzi/internal/columnar"
	"umzi/internal/keyenc"
)

// The predicate model: comparisons between a named table column and a
// constant, composed with AND / OR. Expressions are built unbound (by
// column name) so plans are declared against the public table surface,
// then bound once against a table's column list to ordinals before
// execution; the bound form is what every shard evaluates.

// CmpOp enumerates the comparison operators.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota // ==
	OpNe              // !=
	OpLt              // <
	OpLe              // <=
	OpGt              // >
	OpGe              // >=
)

// String implements fmt.Stringer.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// Expr is a predicate over a table row. Build leaves with Cmp (or the
// Eq/Ne/Lt/Le/Gt/Ge shorthands) and combine them with And / Or.
type Expr interface {
	fmt.Stringer
	bind(cols []columnar.Column) (boundExpr, error)
}

// cmpExpr is one comparison leaf: <column> <op> <constant>.
type cmpExpr struct {
	col string
	op  CmpOp
	val keyenc.Value
}

// Cmp builds a comparison between a column and a constant value.
func Cmp(col string, op CmpOp, v keyenc.Value) Expr { return cmpExpr{col: col, op: op, val: v} }

// Eq builds column == value.
func Eq(col string, v keyenc.Value) Expr { return Cmp(col, OpEq, v) }

// Ne builds column != value.
func Ne(col string, v keyenc.Value) Expr { return Cmp(col, OpNe, v) }

// Lt builds column < value.
func Lt(col string, v keyenc.Value) Expr { return Cmp(col, OpLt, v) }

// Le builds column <= value.
func Le(col string, v keyenc.Value) Expr { return Cmp(col, OpLe, v) }

// Gt builds column > value.
func Gt(col string, v keyenc.Value) Expr { return Cmp(col, OpGt, v) }

// Ge builds column >= value.
func Ge(col string, v keyenc.Value) Expr { return Cmp(col, OpGe, v) }

func (e cmpExpr) String() string { return fmt.Sprintf("%s %v %v", e.col, e.op, e.val) }

// andExpr / orExpr combine child predicates.
type andExpr struct{ kids []Expr }
type orExpr struct{ kids []Expr }

// And builds the conjunction of the operands.
func And(kids ...Expr) Expr { return andExpr{kids: kids} }

// Or builds the disjunction of the operands.
func Or(kids ...Expr) Expr { return orExpr{kids: kids} }

func joinExprs(kids []Expr, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = k.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

func (e andExpr) String() string { return joinExprs(e.kids, " AND ") }
func (e orExpr) String() string  { return joinExprs(e.kids, " OR ") }

// ExprNode is the one-level structural view of an Expr that Decompose
// exposes, so serializers (the wire protocol's QuerySpec marshaler) can
// walk a predicate tree without this package exporting its node types.
type ExprNode struct {
	// Leaf marks a comparison; Col/Op/Val describe it.
	Leaf bool
	Col  string
	Op   CmpOp
	Val  keyenc.Value
	// Interior nodes: And distinguishes conjunction from disjunction,
	// Kids are the operands (decompose each recursively).
	And  bool
	Kids []Expr
}

// Decompose exposes the top-level structure of an expression built by
// this package. It errors on foreign Expr implementations, which have
// no portable form.
func Decompose(e Expr) (ExprNode, error) {
	switch v := e.(type) {
	case cmpExpr:
		return ExprNode{Leaf: true, Col: v.col, Op: v.op, Val: v.val}, nil
	case andExpr:
		return ExprNode{And: true, Kids: v.kids}, nil
	case orExpr:
		return ExprNode{Kids: v.kids}, nil
	default:
		return ExprNode{}, fmt.Errorf("exec: cannot decompose foreign expression %T", e)
	}
}

// RowView accesses one row's column values by table-column ordinal. Both
// materialized rows and columnar block rows adapt to it, so predicates and
// aggregates read only the columns they touch.
type RowView func(col int) keyenc.Value

// boundExpr is a predicate with column names resolved to ordinals.
type boundExpr interface {
	eval(row RowView) bool
	// canMatch conservatively reports whether any row of a block with the
	// given per-column min/max synopses could satisfy the predicate. ok is
	// false when the block has no synopsis for the column (empty block).
	canMatch(minmax func(col int) (min, max keyenc.Value, ok bool)) bool
	// columns reports every column ordinal the predicate reads.
	columns(add func(col int))
	// evalVec evaluates the predicate over every row of the block at
	// once, fully overwriting out with the selection (vector.go).
	evalVec(blk *columnar.Block, out *Bitmap)
	// bloomMatch conservatively reports whether any block row could
	// satisfy the predicate, judged by per-column bloom filters.
	bloomMatch(blk *columnar.Block) bool
}

type boundCmp struct {
	col int
	op  CmpOp
	val keyenc.Value
}

func (e cmpExpr) bind(cols []columnar.Column) (boundExpr, error) {
	idx, err := colOrdinal(cols, e.col)
	if err != nil {
		return nil, fmt.Errorf("exec: predicate column %q not in table", e.col)
	}
	want, got := cols[idx].Kind, e.val.Kind()
	comparable := got == want ||
		(want == keyenc.KindBytes && got == keyenc.KindString) ||
		(want == keyenc.KindString && got == keyenc.KindBytes)
	if !comparable {
		return nil, fmt.Errorf("exec: predicate %q compares %v column with %v constant", e.col, want, got)
	}
	return boundCmp{col: idx, op: e.op, val: e.val}, nil
}

func cmpHolds(op CmpOp, c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	default:
		return c >= 0
	}
}

func (b boundCmp) eval(row RowView) bool {
	return cmpHolds(b.op, keyenc.Compare(row(b.col), b.val))
}

func (b boundCmp) canMatch(minmax func(col int) (min, max keyenc.Value, ok bool)) bool {
	min, max, ok := minmax(b.col)
	if !ok {
		return false
	}
	switch b.op {
	case OpEq:
		return keyenc.Compare(b.val, min) >= 0 && keyenc.Compare(b.val, max) <= 0
	case OpNe:
		// Only a single-valued block pinned to the constant cannot match.
		return !(keyenc.Compare(min, max) == 0 && keyenc.Compare(b.val, min) == 0)
	case OpLt:
		return keyenc.Compare(min, b.val) < 0
	case OpLe:
		return keyenc.Compare(min, b.val) <= 0
	case OpGt:
		return keyenc.Compare(max, b.val) > 0
	default:
		return keyenc.Compare(max, b.val) >= 0
	}
}

func (b boundCmp) columns(add func(int)) { add(b.col) }

type boundAnd struct{ kids []boundExpr }
type boundOr struct{ kids []boundExpr }

func (b boundAnd) columns(add func(int)) {
	for _, k := range b.kids {
		k.columns(add)
	}
}

func (b boundOr) columns(add func(int)) {
	for _, k := range b.kids {
		k.columns(add)
	}
}

func bindKids(kids []Expr, cols []columnar.Column, what string) ([]boundExpr, error) {
	if len(kids) == 0 {
		return nil, fmt.Errorf("exec: %s needs at least one operand", what)
	}
	out := make([]boundExpr, len(kids))
	for i, k := range kids {
		b, err := k.bind(cols)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

func (e andExpr) bind(cols []columnar.Column) (boundExpr, error) {
	kids, err := bindKids(e.kids, cols, "And")
	if err != nil {
		return nil, err
	}
	return boundAnd{kids: kids}, nil
}

func (e orExpr) bind(cols []columnar.Column) (boundExpr, error) {
	kids, err := bindKids(e.kids, cols, "Or")
	if err != nil {
		return nil, err
	}
	return boundOr{kids: kids}, nil
}

func (b boundAnd) eval(row RowView) bool {
	for _, k := range b.kids {
		if !k.eval(row) {
			return false
		}
	}
	return true
}

func (b boundAnd) canMatch(minmax func(col int) (min, max keyenc.Value, ok bool)) bool {
	for _, k := range b.kids {
		if !k.canMatch(minmax) {
			return false
		}
	}
	return true
}

func (b boundOr) eval(row RowView) bool {
	for _, k := range b.kids {
		if k.eval(row) {
			return true
		}
	}
	return false
}

func (b boundOr) canMatch(minmax func(col int) (min, max keyenc.Value, ok bool)) bool {
	for _, k := range b.kids {
		if k.canMatch(minmax) {
			return true
		}
	}
	return false
}
