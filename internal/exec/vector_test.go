package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"umzi/internal/columnar"
	"umzi/internal/keyenc"
)

// TestVectorizedEquivalenceProperty is the correctness anchor of the
// vectorized path: over randomized blocks (every encoding, forced and
// auto-selected) and randomized predicate trees, FilterBlock must select
// exactly the rows the scalar Matches path accepts, and BlockSkip must
// never claim a block skippable when some row matches.
func TestVectorizedEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0xf11e))
	encodings := []*columnar.Encoding{nil} // nil: automatic selection
	for _, e := range []columnar.Encoding{columnar.EncPlain, columnar.EncDict, columnar.EncBitPack, columnar.EncRLE} {
		e := e
		encodings = append(encodings, &e)
	}
	for trial := 0; trial < 300; trial++ {
		rows := rng.Intn(200)
		blk := randomVecBlock(rng, rows, encodings[trial%len(encodings)])
		expr := randomVecExpr(rng, 0)
		plan := Plan{Filter: expr, Aggs: []Agg{{Func: Count}}}
		bound, err := plan.Bind(testCols)
		if err != nil {
			t.Fatalf("trial %d: bind %v: %v", trial, expr, err)
		}
		sel := bound.FilterBlock(blk)
		if sel.Len() != rows {
			t.Fatalf("trial %d: bitmap length %d, rows %d", trial, sel.Len(), rows)
		}
		matches := 0
		for r := 0; r < rows; r++ {
			r := r
			view := RowView(func(c int) keyenc.Value { return blk.Value(r, c) })
			want := bound.Matches(view)
			if want {
				matches++
			}
			if got := sel.Get(r); got != want {
				t.Fatalf("trial %d: row %d: vectorized %v, scalar %v\nexpr: %v\nrow: %v %v %v %v\nencodings: %v %v %v %v",
					trial, r, got, want, expr,
					blk.Value(r, 0), blk.Value(r, 1), blk.Value(r, 2), blk.Value(r, 3),
					blk.ColumnEncoding(0), blk.ColumnEncoding(1), blk.ColumnEncoding(2), blk.ColumnEncoding(3))
			}
		}
		if got := sel.Count(); got != matches {
			t.Fatalf("trial %d: Count() = %d, scalar found %d", trial, got, matches)
		}
		if reason := bound.BlockSkip(blk); reason != SkipNone && matches > 0 {
			t.Fatalf("trial %d: BlockSkip = %v but %d rows match (expr %v)", trial, reason, matches, expr)
		}
		// Marshal round-trip must preserve the verdicts.
		blk2, err := columnar.Unmarshal(blk.Marshal())
		if err != nil {
			t.Fatalf("trial %d: round-trip: %v", trial, err)
		}
		sel2 := bound.FilterBlock(blk2)
		for r := 0; r < rows; r++ {
			if sel.Get(r) != sel2.Get(r) {
				t.Fatalf("trial %d: row %d: selection changed across marshal round-trip", trial, r)
			}
		}
	}
}

// randomVecBlock builds a block over testCols with value distributions
// that exercise each encoding: low-cardinality strings (dict/RLE),
// narrow-range ints (bitpack), sorted and constant stretches (RLE).
func randomVecBlock(rng *rand.Rand, rows int, force *columnar.Encoding) *columnar.Block {
	schema := columnar.MustSchema(testCols...)
	b := columnar.NewBuilder(schema)
	if force != nil {
		b.ForceEncoding(*force)
	}
	b.AddBloom(0, 1)
	base := rng.Int63n(1000)
	sorted := rng.Intn(2) == 0
	for r := 0; r < rows; r++ {
		id := base + rng.Int63n(50)
		if sorted {
			id = base + int64(r)/3
		}
		region := fmt.Sprintf("r%02d", rng.Intn(4))
		row := []keyenc.Value{
			keyenc.I64(id),
			keyenc.Str(region),
			keyenc.F64(float64(rng.Intn(20)) / 4),
			keyenc.U64(uint64(rng.Intn(3))),
		}
		if err := b.Append(row); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// randomVecExpr builds a random predicate tree over testCols, with
// constants drawn from the same distributions as the data so that both
// hits and misses occur.
func randomVecExpr(rng *rand.Rand, depth int) Expr {
	if depth < 2 && rng.Intn(3) == 0 {
		n := 2 + rng.Intn(2)
		kids := make([]Expr, n)
		for i := range kids {
			kids[i] = randomVecExpr(rng, depth+1)
		}
		if rng.Intn(2) == 0 {
			return And(kids...)
		}
		return Or(kids...)
	}
	ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	op := ops[rng.Intn(len(ops))]
	switch rng.Intn(4) {
	case 0:
		return Cmp("id", op, keyenc.I64(rng.Int63n(1100)))
	case 1:
		return Cmp("region", op, keyenc.Str(fmt.Sprintf("r%02d", rng.Intn(5))))
	case 2:
		return Cmp("amount", op, keyenc.F64(float64(rng.Intn(22))/4))
	default:
		return Cmp("qty", op, keyenc.U64(uint64(rng.Intn(4))))
	}
}

// TestBlockSkipBloom pins the bloom skip decision: an equality probe for
// a value inside the min/max range but absent from the column must be
// rejected by the bloom filter, and recorded as SkipBloom rather than
// SkipSynopsis.
func TestBlockSkipBloom(t *testing.T) {
	schema := columnar.MustSchema(testCols...)
	b := columnar.NewBuilder(schema)
	b.AddBloom(0)
	// Even ids only: odd probes fall inside [0, 198] but never match.
	for i := 0; i < 100; i++ {
		err := b.Append([]keyenc.Value{
			keyenc.I64(int64(2 * i)), keyenc.Str("x"), keyenc.F64(0), keyenc.U64(0),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	blk := b.Build()

	bind := func(e Expr) *BoundPlan {
		bp, err := Plan{Filter: e, Aggs: []Agg{{Func: Count}}}.Bind(testCols)
		if err != nil {
			t.Fatal(err)
		}
		return bp
	}
	if got := bind(Eq("id", keyenc.I64(500))).BlockSkip(blk); got != SkipSynopsis {
		t.Errorf("out-of-range probe: BlockSkip = %v, want SkipSynopsis", got)
	}
	if got := bind(Eq("id", keyenc.I64(88))).BlockSkip(blk); got != SkipNone {
		t.Errorf("present probe: BlockSkip = %v, want SkipNone", got)
	}
	bloomSkips := 0
	for probe := int64(1); probe < 198; probe += 2 {
		if bind(Eq("id", keyenc.I64(probe))).BlockSkip(blk) == SkipBloom {
			bloomSkips++
		}
	}
	// ~1% false positive rate; well over half of the 99 odd probes must
	// be excluded by the filter.
	if bloomSkips < 50 {
		t.Errorf("bloom excluded %d of 99 absent probes, want >= 50", bloomSkips)
	}
	// Range predicates never consult the bloom filter.
	if got := bind(And(Ge("id", keyenc.I64(1)), Le("id", keyenc.I64(1)))).BlockSkip(blk); got == SkipBloom {
		t.Errorf("range probe classified as bloom skip")
	}
}
