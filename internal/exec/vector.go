package exec

import (
	"math/bits"

	"umzi/internal/columnar"
)

// The vectorized filter path. Instead of evaluating the predicate tree
// row-at-a-time through RowView (Matches), FilterBlock evaluates each
// comparison leaf over the whole block at once with columnar.CmpSelect —
// which runs directly on the encoded column — and combines leaves with
// word-wise AND/OR over selection bitmaps. Rows materialize only after
// selection (late materialization): the executor walks the surviving
// bits and touches data columns for those rows alone.
//
// BlockSkip extends the min/max synopsis pruning with per-column bloom
// filters: an equality leaf whose probe value the column's bloom filter
// rejects cannot match anywhere in the block, and the usual AND/OR
// short-circuit rules lift leaf verdicts to the whole filter.

// Bitmap is a fixed-length selection vector: bit i is set when row i is
// selected. Bits at positions >= Len are always zero.
type Bitmap struct {
	n     int
	words []uint64
}

// NewBitmap returns an empty (all-zero) bitmap over n rows.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of rows the bitmap covers.
func (b *Bitmap) Len() int { return b.n }

// Words exposes the backing words for vectorized producers
// (columnar.CmpSelect writes into them). len(Words) == ceil(Len/64).
func (b *Bitmap) Words() []uint64 { return b.words }

// Get reports whether row i is selected.
func (b *Bitmap) Get(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// SetAll selects every row.
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.clampTail()
}

// clampTail zeroes the bits beyond Len in the last word.
func (b *Bitmap) clampTail() {
	if b.n&63 != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= 1<<uint(b.n&63) - 1
	}
}

// And intersects o into b. The bitmaps must have equal length.
func (b *Bitmap) And(o *Bitmap) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// Or unions o into b. The bitmaps must have equal length.
func (b *Bitmap) Or(o *Bitmap) {
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// None reports whether no row is selected.
func (b *Bitmap) None() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of selected rows.
func (b *Bitmap) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn for every selected row in ascending order.
func (b *Bitmap) ForEach(fn func(row int)) {
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// opFlags decomposes a comparison operator into the three-way-comparison
// flags CmpSelect consumes: which of {<, ==, >} outcomes select a row.
func opFlags(op CmpOp) (lt, eq, gt bool) {
	switch op {
	case OpEq:
		return false, true, false
	case OpNe:
		return true, false, true
	case OpLt:
		return true, false, false
	case OpLe:
		return true, true, false
	case OpGt:
		return false, false, true
	default: // OpGe
		return false, true, true
	}
}

func (b boundCmp) evalVec(blk *columnar.Block, out *Bitmap) {
	lt, eq, gt := opFlags(b.op)
	blk.CmpSelect(b.col, b.val, lt, eq, gt, out.words)
}

func (b boundAnd) evalVec(blk *columnar.Block, out *Bitmap) {
	b.kids[0].evalVec(blk, out)
	var scratch *Bitmap
	for _, k := range b.kids[1:] {
		if out.None() {
			return
		}
		if scratch == nil {
			scratch = NewBitmap(out.n)
		}
		k.evalVec(blk, scratch)
		out.And(scratch)
	}
}

func (b boundOr) evalVec(blk *columnar.Block, out *Bitmap) {
	b.kids[0].evalVec(blk, out)
	var scratch *Bitmap
	for _, k := range b.kids[1:] {
		if scratch == nil {
			scratch = NewBitmap(out.n)
		}
		k.evalVec(blk, scratch)
		out.Or(scratch)
	}
}

// bloomMatch conservatively reports whether any row of the block could
// satisfy the predicate, judged only by per-column bloom filters:
// equality leaves probe the filter, every other leaf (and columns
// without a filter) passes.
func (b boundCmp) bloomMatch(blk *columnar.Block) bool {
	if b.op != OpEq {
		return true
	}
	return blk.BloomMightContain(b.col, b.val)
}

func (b boundAnd) bloomMatch(blk *columnar.Block) bool {
	for _, k := range b.kids {
		if !k.bloomMatch(blk) {
			return false
		}
	}
	return true
}

func (b boundOr) bloomMatch(blk *columnar.Block) bool {
	for _, k := range b.kids {
		if k.bloomMatch(blk) {
			return true
		}
	}
	return false
}

// SkipReason classifies a block-skip decision.
type SkipReason int

// Block-skip outcomes, ordered by check sequence: synopses are consulted
// before bloom filters, so SkipBloom means "inside the min/max range but
// provably absent".
const (
	SkipNone     SkipReason = iota // block must be scanned
	SkipSynopsis                   // excluded by min/max synopsis
	SkipBloom                      // excluded by a bloom filter
)

// String implements fmt.Stringer.
func (s SkipReason) String() string {
	switch s {
	case SkipNone:
		return "none"
	case SkipSynopsis:
		return "synopsis"
	case SkipBloom:
		return "bloom"
	default:
		return "skip(?)"
	}
}

// BlockSkip reports whether the filter provably matches no row of the
// block, and which pruning structure proved it: min/max synopses first,
// then per-column bloom filters.
func (b *BoundPlan) BlockSkip(blk *columnar.Block) SkipReason {
	if !b.CanMatchBlock(blk) {
		return SkipSynopsis
	}
	if b.filter != nil && !b.filter.bloomMatch(blk) {
		return SkipBloom
	}
	return SkipNone
}

// FilterBlock evaluates the plan's filter vectorized over the block and
// returns the selection bitmap. A plan without a filter selects every
// row.
func (b *BoundPlan) FilterBlock(blk *columnar.Block) *Bitmap {
	bm := NewBitmap(blk.NumRows())
	if b.filter == nil {
		bm.SetAll()
		return bm
	}
	b.filter.evalVec(blk, bm)
	return bm
}
