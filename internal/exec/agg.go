package exec

import (
	"bytes"
	"sort"

	"umzi/internal/keyenc"
)

// Partial aggregation. Each shard accumulates qualifying rows into a
// Partial — per-group aggregate accumulators keyed by the memcmp-encoded
// group key, or projected rows for row queries — and the coordinator
// merges Partials instead of rows. AVG ships as a (sum, count) pair and
// divides only at Finalize, so merging partials is exact.

// aggAcc is one aggregate accumulator. Sums stay in the input column's
// arithmetic (int64 / uint64 / float64) until Finalize.
type aggAcc struct {
	count int64
	isum  int64
	usum  uint64
	fsum  float64
	min   keyenc.Value
	max   keyenc.Value
	hasMM bool // min/max hold values (Min/Max aggregates only)
}

func (a *aggAcc) add(fn AggFunc, kind keyenc.Kind, v keyenc.Value) {
	a.count++
	switch fn {
	case Sum, Avg:
		switch kind {
		case keyenc.KindInt64:
			a.isum += v.Int()
			a.fsum += float64(v.Int())
		case keyenc.KindUint64:
			a.usum += v.Uint()
			a.fsum += float64(v.Uint())
		default:
			a.fsum += v.Float()
		}
	case Min, Max:
		if !a.hasMM || keyenc.Compare(v, a.min) < 0 {
			a.min = v
		}
		if !a.hasMM || keyenc.Compare(v, a.max) > 0 {
			a.max = v
		}
		a.hasMM = true
	}
}

func (a *aggAcc) merge(o *aggAcc) {
	a.count += o.count
	a.isum += o.isum
	a.usum += o.usum
	a.fsum += o.fsum
	if o.hasMM {
		if !a.hasMM || keyenc.Compare(o.min, a.min) < 0 {
			a.min = o.min
		}
		if !a.hasMM || keyenc.Compare(o.max, a.max) > 0 {
			a.max = o.max
		}
		a.hasMM = true
	}
}

// finalize lowers the accumulator to its output value.
func (a *aggAcc) finalize(fn AggFunc, kind keyenc.Kind) keyenc.Value {
	switch fn {
	case Count:
		return keyenc.I64(a.count)
	case Sum:
		switch kind {
		case keyenc.KindInt64:
			return keyenc.I64(a.isum)
		case keyenc.KindUint64:
			return keyenc.U64(a.usum)
		default:
			return keyenc.F64(a.fsum)
		}
	case Avg:
		if a.count == 0 {
			// Empty input: the zero (invalid-kind) Value stands in for
			// SQL NULL, same as Min/Max below — not NaN.
			return keyenc.Value{}
		}
		return keyenc.F64(a.fsum / float64(a.count))
	case Min:
		return a.min
	default:
		return a.max
	}
}

// groupState is one group's key values and accumulators.
type groupState struct {
	keyVals []keyenc.Value
	accs    []aggAcc
}

// Partial is one shard's partially evaluated query: per-group aggregate
// states for aggregate queries, projected rows for row queries. Partials
// of the same BoundPlan merge exactly — this is what the sharded layer
// ships to the coordinator instead of rows.
type Partial struct {
	plan   *BoundPlan
	groups map[string]*groupState
	rows   [][]keyenc.Value
	// rowKeys are the rows' composite encodings, kept only for limited
	// row queries so the partial can hold its top-Limit rows in bounded
	// memory (limit pushdown: the global first Limit rows in encoded
	// order are within the union of the per-shard first Limit rows).
	rowKeys [][]byte

	keyBuf []byte // group-key scratch
}

// NewPartial returns an empty accumulator for the plan.
func (b *BoundPlan) NewPartial() *Partial {
	p := &Partial{plan: b}
	if b.Aggregating() {
		p.groups = make(map[string]*groupState)
	}
	return p
}

// NumRows returns the number of accumulated row-query rows.
func (p *Partial) NumRows() int { return len(p.rows) }

// NumGroups returns the number of accumulated groups.
func (p *Partial) NumGroups() int { return len(p.groups) }

// Add accumulates one qualifying row. The caller is responsible for
// filtering (Matches) and for multi-version reconciliation; Add reads
// only the columns the plan touches.
func (p *Partial) Add(row RowView) {
	b := p.plan
	if !b.Aggregating() {
		out := make([]keyenc.Value, len(b.project))
		for i, c := range b.project {
			out[i] = row(c)
		}
		p.rows = append(p.rows, out)
		if b.limit > 0 {
			p.rowKeys = append(p.rowKeys, keyenc.AppendComposite(nil, out...))
			if len(p.rows) >= 2*b.limit {
				p.truncateToLimit()
			}
		}
		return
	}
	p.keyBuf = p.keyBuf[:0]
	for _, c := range b.groupBy {
		p.keyBuf = keyenc.Append(p.keyBuf, row(c))
	}
	g, ok := p.groups[string(p.keyBuf)]
	if !ok {
		g = &groupState{accs: make([]aggAcc, len(b.aggs))}
		if len(b.groupBy) > 0 {
			g.keyVals = make([]keyenc.Value, len(b.groupBy))
			for i, c := range b.groupBy {
				g.keyVals[i] = row(c)
			}
		}
		p.groups[string(p.keyBuf)] = g
	}
	for i := range b.aggs {
		a := &b.aggs[i]
		var v keyenc.Value
		if a.col >= 0 {
			v = row(a.col)
		}
		g.accs[i].add(a.fn, a.kind, v)
	}
}

// Merge folds another shard's partial of the same plan into p.
func (p *Partial) Merge(o *Partial) {
	if o == nil {
		return
	}
	if !p.plan.Aggregating() {
		p.rows = append(p.rows, o.rows...)
		if p.plan.limit > 0 {
			p.rowKeys = append(p.rowKeys, o.rowKeys...)
			p.truncateToLimit()
		}
		return
	}
	for k, og := range o.groups {
		g, ok := p.groups[k]
		if !ok {
			p.groups[k] = og
			continue
		}
		for i := range g.accs {
			g.accs[i].merge(&og.accs[i])
		}
	}
}

// truncateToLimit keeps the partial's first limit rows in encoded
// order. Safe at any point: a dropped row sorts after limit retained
// rows, so it cannot be part of the global first limit rows either.
func (p *Partial) truncateToLimit() {
	limit := p.plan.limit
	if limit <= 0 || len(p.rows) <= limit {
		return
	}
	sort.Sort(&rowSorter{rows: p.rows, keys: p.rowKeys})
	p.rows = p.rows[:limit]
	p.rowKeys = p.rowKeys[:limit]
}

// Result is a finalized query result: output column names and rows.
// Aggregate results carry one row per group (group-by values first, then
// one value per aggregate) sorted by group key; row-query results are the
// projected rows sorted by their encoded values. Both orders are
// deterministic regardless of shard count and block layout.
type Result struct {
	Columns []string
	Rows    [][]keyenc.Value
}

// RowIter streams a finalized result one row at a time — the emission
// half of Finalize, detached so a coordinator can hand rows to a cursor
// without materializing the full result. The merge of the partials has
// already happened by construction; what RowIter defers is the lowering
// of each group's accumulators (aggregate queries) and the emission
// itself, so an abandoned iterator skips that tail of the work.
type RowIter struct {
	cols []string
	next func() ([]keyenc.Value, bool)
}

// Columns returns the output column names, in result-row order.
func (it *RowIter) Columns() []string { return it.cols }

// Next returns the next result row, or ok=false when the result is
// exhausted.
func (it *RowIter) Next() ([]keyenc.Value, bool) { return it.next() }

// FinalizeIter merges the partials (the coordinator step: partial
// aggregates in, no rows shipped) and returns a RowIter streaming the
// finalized rows in the result's deterministic order. It consumes the
// partials; nil entries — shards with nothing — are skipped.
func (b *BoundPlan) FinalizeIter(parts ...*Partial) *RowIter {
	var merged *Partial
	for _, p := range parts {
		if p == nil {
			continue
		}
		if merged == nil {
			merged = p
			continue
		}
		merged.Merge(p)
	}
	if merged == nil {
		merged = b.NewPartial()
	}
	if b.Aggregating() && len(b.groupBy) == 0 && len(merged.groups) == 0 {
		// A global aggregate (no GROUP BY) always has exactly one result
		// row, even over zero qualifying rows: COUNT(*) is 0, SUM the
		// typed zero, AVG/MIN/MAX the zero Value (the NULL stand-in) —
		// not an empty result set.
		merged.groups[""] = &groupState{accs: make([]aggAcc, len(b.aggs))}
	}
	emitted := 0
	capped := func(row []keyenc.Value, ok bool) ([]keyenc.Value, bool) {
		if !ok || (b.limit > 0 && emitted >= b.limit) {
			return nil, false
		}
		emitted++
		return row, true
	}
	it := &RowIter{cols: b.outCols}
	if b.Aggregating() {
		keys := make([]string, 0, len(merged.groups))
		for k := range merged.groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		it.next = func() ([]keyenc.Value, bool) {
			if i >= len(keys) {
				return nil, false
			}
			g := merged.groups[keys[i]]
			i++
			out := make([]keyenc.Value, 0, len(b.groupBy)+len(b.aggs))
			out = append(out, g.keyVals...)
			for j := range b.aggs {
				out = append(out, g.accs[j].finalize(b.aggs[j].fn, b.aggs[j].kind))
			}
			return capped(out, true)
		}
		return it
	}
	rows := merged.rows
	sorted := false
	i := 0
	it.next = func() ([]keyenc.Value, bool) {
		if !sorted {
			sorted = true
			keys := make([][]byte, len(rows))
			for j, r := range rows {
				keys[j] = keyenc.AppendComposite(nil, r...)
			}
			sort.Sort(&rowSorter{rows: rows, keys: keys})
		}
		if i >= len(rows) {
			return nil, false
		}
		row := rows[i]
		i++
		return capped(row, true)
	}
	return it
}

// Finalize is FinalizeIter drained into a materialized Result.
func (b *BoundPlan) Finalize(parts ...*Partial) *Result {
	it := b.FinalizeIter(parts...)
	res := &Result{Columns: it.Columns()}
	for {
		row, ok := it.Next()
		if !ok {
			return res
		}
		res.Rows = append(res.Rows, row)
	}
}

// rowSorter orders row-query results by their composite encoding.
type rowSorter struct {
	rows [][]keyenc.Value
	keys [][]byte
}

func (s *rowSorter) Len() int           { return len(s.rows) }
func (s *rowSorter) Less(i, j int) bool { return bytes.Compare(s.keys[i], s.keys[j]) < 0 }
func (s *rowSorter) Swap(i, j int) {
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}
