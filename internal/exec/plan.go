// Package exec is the analytical query executor over the multi-zone
// store: a small expression/predicate model (comparisons composed with
// AND/OR over any table column), projection, and aggregation
// (COUNT/SUM/MIN/MAX/AVG with optional GROUP BY) evaluated
// block-at-a-time directly over columnar data blocks.
//
// The HTAP split this package serves (paper §1, §7): transactional reads
// go through the Umzi index key-side, while analytical queries scan the
// columnar groomed and post-groomed blocks — and the win of "pushing
// analytics down next to the data" is realized by evaluating predicates
// and partial aggregates inside each shard, shipping only partial
// aggregate states (sum/count pairs, per-group maps) to the coordinator
// instead of rows.
//
// Usage: declare a Plan against table column names, Bind it once to the
// table's columns, feed qualifying rows into per-shard Partials, then
// Finalize the partials into a Result. Block pruning comes for free:
// CanMatchBlock consults the per-column min/max synopses of a columnar
// block and reports whether any of its rows could satisfy the filter.
package exec

import (
	"fmt"

	"umzi/internal/columnar"
	"umzi/internal/keyenc"
)

// AggFunc enumerates the aggregate functions.
type AggFunc int

// Aggregate functions.
const (
	Count AggFunc = iota // COUNT(*) or COUNT(col)
	Sum                  // SUM(col), numeric columns
	Min                  // MIN(col), any column
	Max                  // MAX(col), any column
	Avg                  // AVG(col), numeric columns; finalizes to float64
)

// String implements fmt.Stringer.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	default:
		return fmt.Sprintf("agg(%d)", int(f))
	}
}

// Agg is one aggregate of a plan. Col may be empty for Count (COUNT(*));
// As optionally names the output column.
type Agg struct {
	Func AggFunc
	Col  string
	As   string
}

func (a Agg) outName() string {
	if a.As != "" {
		return a.As
	}
	if a.Col == "" {
		return a.Func.String() + "(*)"
	}
	return fmt.Sprintf("%v(%s)", a.Func, a.Col)
}

// Plan is one analytical query. Exactly two shapes exist:
//
//   - Row query (Aggs empty): the qualifying rows, projected to Columns
//     (all user columns when empty), sorted by their encoded values for
//     determinism, truncated to Limit when nonzero.
//   - Aggregate query (Aggs nonempty): one output row per GROUP BY group
//     (a single row without GroupBy), sorted by group key; groups with no
//     qualifying rows do not appear — a query matching nothing yields an
//     empty result, even for plain COUNT.
type Plan struct {
	// Filter keeps the rows the predicate accepts; nil keeps everything.
	Filter Expr
	// Columns projects a row query; empty selects all table columns.
	// Must be empty for aggregate queries.
	Columns []string
	// GroupBy names the grouping columns of an aggregate query.
	GroupBy []string
	// Aggs requests aggregation; empty makes this a row query.
	Aggs []Agg
	// Limit truncates the result rows after the deterministic sort;
	// 0 means unlimited. For row queries the limit is also pushed into
	// the per-shard partials, which keep at most Limit rows each.
	Limit int
}

// boundAgg is one aggregate with its column resolved.
type boundAgg struct {
	fn   AggFunc
	col  int // -1 for COUNT(*)
	kind keyenc.Kind
	name string
}

// BoundPlan is a Plan with every column name resolved against a table's
// columns. One BoundPlan is shared by all shards of a query: it carries
// no per-execution state.
type BoundPlan struct {
	cols    []columnar.Column
	filter  boundExpr // nil: no predicate
	project []int     // row queries: projected ordinals
	groupBy []int
	aggs    []boundAgg
	limit   int
	outCols []string
}

func colOrdinal(cols []columnar.Column, name string) (int, error) {
	for i, c := range cols {
		if c.Name == name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("exec: column %q not in table", name)
}

func numericKind(k keyenc.Kind) bool {
	return k == keyenc.KindInt64 || k == keyenc.KindUint64 || k == keyenc.KindFloat64
}

// Bind resolves the plan against a table's columns and validates it. The
// column list is the table's user columns in row order; RowView ordinals
// and block synopsis ordinals refer to the same list.
func (p Plan) Bind(cols []columnar.Column) (*BoundPlan, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("exec: no columns to bind against")
	}
	if p.Limit < 0 {
		return nil, fmt.Errorf("exec: negative limit %d", p.Limit)
	}
	b := &BoundPlan{cols: cols, limit: p.Limit}
	if p.Filter != nil {
		f, err := p.Filter.bind(cols)
		if err != nil {
			return nil, err
		}
		b.filter = f
	}

	if len(p.Aggs) == 0 {
		if len(p.GroupBy) > 0 {
			return nil, fmt.Errorf("exec: GroupBy requires at least one aggregate")
		}
		names := p.Columns
		if len(names) == 0 {
			for _, c := range cols {
				names = append(names, c.Name)
			}
		}
		for _, n := range names {
			i, err := colOrdinal(cols, n)
			if err != nil {
				return nil, err
			}
			b.project = append(b.project, i)
			b.outCols = append(b.outCols, n)
		}
		return b, nil
	}

	if len(p.Columns) > 0 {
		return nil, fmt.Errorf("exec: Columns projection cannot combine with aggregates; use GroupBy")
	}
	for _, n := range p.GroupBy {
		i, err := colOrdinal(cols, n)
		if err != nil {
			return nil, err
		}
		b.groupBy = append(b.groupBy, i)
		b.outCols = append(b.outCols, n)
	}
	for _, a := range p.Aggs {
		ba := boundAgg{fn: a.Func, col: -1, name: a.outName()}
		if a.Col == "" {
			if a.Func != Count {
				return nil, fmt.Errorf("exec: %v needs a column", a.Func)
			}
		} else {
			i, err := colOrdinal(cols, a.Col)
			if err != nil {
				return nil, err
			}
			ba.col, ba.kind = i, cols[i].Kind
			if (a.Func == Sum || a.Func == Avg) && !numericKind(ba.kind) {
				return nil, fmt.Errorf("exec: %v(%s) needs a numeric column, got %v", a.Func, a.Col, ba.kind)
			}
		}
		b.aggs = append(b.aggs, ba)
		b.outCols = append(b.outCols, ba.name)
	}
	return b, nil
}

// Aggregating reports whether the plan computes aggregates (as opposed to
// returning projected rows).
func (b *BoundPlan) Aggregating() bool { return len(b.aggs) > 0 }

// Projection returns a row query's projected column ordinals in output
// order (empty for aggregate plans). The slice is the bound plan's own;
// callers must not mutate it.
func (b *BoundPlan) Projection() []int { return b.project }

// Columns returns the output column names of the result, in result-row
// order (group-by columns, then aggregates; or the projection).
func (b *BoundPlan) Columns() []string { return b.outCols }

// Matches evaluates the filter against one row; a plan without a filter
// matches everything.
func (b *BoundPlan) Matches(row RowView) bool {
	return b.filter == nil || b.filter.eval(row)
}

// CanMatchBlock reports whether any row of the columnar block could
// satisfy the filter, judged by the block's per-column min/max synopses.
// A false return proves the block holds no qualifying row, so the caller
// may skip its data columns entirely.
func (b *BoundPlan) CanMatchBlock(blk *columnar.Block) bool {
	if b.filter == nil {
		return blk.NumRows() > 0
	}
	return b.filter.canMatch(func(col int) (keyenc.Value, keyenc.Value, bool) {
		min, ok := blk.ColumnMin(col)
		if !ok {
			return keyenc.Value{}, keyenc.Value{}, false
		}
		max, _ := blk.ColumnMax(col)
		return min, max, true
	})
}
