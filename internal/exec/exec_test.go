package exec

import (
	"reflect"
	"testing"

	"umzi/internal/columnar"
	"umzi/internal/keyenc"
)

var testCols = []columnar.Column{
	{Name: "id", Kind: keyenc.KindInt64},
	{Name: "region", Kind: keyenc.KindString},
	{Name: "amount", Kind: keyenc.KindFloat64},
	{Name: "qty", Kind: keyenc.KindUint64},
}

func rowView(vals ...keyenc.Value) RowView {
	return func(c int) keyenc.Value { return vals[c] }
}

func testRow(id int64, region string, amount float64, qty uint64) RowView {
	return rowView(keyenc.I64(id), keyenc.Str(region), keyenc.F64(amount), keyenc.U64(qty))
}

func TestBindErrors(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
	}{
		{"unknown filter column", Plan{Filter: Eq("nope", keyenc.I64(1))}},
		{"kind mismatch", Plan{Filter: Gt("region", keyenc.I64(1))}},
		{"empty and", Plan{Filter: And()}},
		{"empty or", Plan{Filter: Or()}},
		{"group by without aggs", Plan{GroupBy: []string{"region"}}},
		{"projection with aggs", Plan{Columns: []string{"id"}, Aggs: []Agg{{Func: Count}}}},
		{"sum on string", Plan{Aggs: []Agg{{Func: Sum, Col: "region"}}}},
		{"avg without column", Plan{Aggs: []Agg{{Func: Avg}}}},
		{"unknown agg column", Plan{Aggs: []Agg{{Func: Sum, Col: "nope"}}}},
		{"unknown group column", Plan{GroupBy: []string{"nope"}, Aggs: []Agg{{Func: Count}}}},
		{"unknown projection", Plan{Columns: []string{"nope"}}},
		{"negative limit", Plan{Limit: -1}},
	}
	for _, c := range cases {
		if _, err := c.plan.Bind(testCols); err == nil {
			t.Errorf("%s: Bind accepted invalid plan", c.name)
		}
	}
}

func TestPredicateEval(t *testing.T) {
	row := testRow(7, "emea", 12.5, 3)
	cases := []struct {
		expr Expr
		want bool
	}{
		{Eq("id", keyenc.I64(7)), true},
		{Eq("id", keyenc.I64(8)), false},
		{Ne("region", keyenc.Str("apac")), true},
		{Lt("amount", keyenc.F64(12.5)), false},
		{Le("amount", keyenc.F64(12.5)), true},
		{Gt("qty", keyenc.U64(2)), true},
		{Ge("qty", keyenc.U64(4)), false},
		{And(Gt("id", keyenc.I64(0)), Eq("region", keyenc.Str("emea"))), true},
		{And(Gt("id", keyenc.I64(0)), Eq("region", keyenc.Str("apac"))), false},
		{Or(Eq("region", keyenc.Str("apac")), Gt("amount", keyenc.F64(10))), true},
		{Or(Eq("region", keyenc.Str("apac")), Gt("amount", keyenc.F64(100))), false},
		// String constants against bytes-compatible columns.
		{Eq("region", keyenc.Raw([]byte("emea"))), true},
	}
	for _, c := range cases {
		b, err := Plan{Filter: c.expr}.Bind(testCols)
		if err != nil {
			t.Fatalf("%v: %v", c.expr, err)
		}
		if got := b.Matches(row); got != c.want {
			t.Errorf("%v: got %v, want %v", c.expr, got, c.want)
		}
	}
}

// buildBlock assembles a columnar block over testCols.
func buildBlock(t *testing.T, rows ...[]keyenc.Value) *columnar.Block {
	t.Helper()
	b := columnar.NewBuilder(columnar.MustSchema(testCols...))
	for _, r := range rows {
		if err := b.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestCanMatchBlock(t *testing.T) {
	blk := buildBlock(t,
		[]keyenc.Value{keyenc.I64(10), keyenc.Str("emea"), keyenc.F64(1), keyenc.U64(5)},
		[]keyenc.Value{keyenc.I64(20), keyenc.Str("emea"), keyenc.F64(9), keyenc.U64(5)},
	)
	cases := []struct {
		expr Expr
		want bool
	}{
		{Eq("id", keyenc.I64(15)), true},          // inside [10,20]
		{Eq("id", keyenc.I64(30)), false},         // above max
		{Lt("id", keyenc.I64(10)), false},         // min not below
		{Le("id", keyenc.I64(10)), true},          // min equals bound
		{Gt("id", keyenc.I64(20)), false},         // max not above
		{Ge("id", keyenc.I64(20)), true},          // max equals bound
		{Ne("region", keyenc.Str("emea")), false}, // single-valued column pinned to constant
		{Ne("id", keyenc.I64(10)), true},
		{And(Ge("id", keyenc.I64(0)), Gt("amount", keyenc.F64(100))), false},
		{Or(Gt("amount", keyenc.F64(100)), Eq("qty", keyenc.U64(5))), true},
	}
	for _, c := range cases {
		b, err := Plan{Filter: c.expr}.Bind(testCols)
		if err != nil {
			t.Fatalf("%v: %v", c.expr, err)
		}
		if got := b.CanMatchBlock(blk); got != c.want {
			t.Errorf("%v: CanMatchBlock=%v, want %v", c.expr, got, c.want)
		}
	}

	// Empty blocks can never match, with or without a filter.
	empty := buildBlock(t)
	for _, p := range []Plan{{}, {Filter: Eq("id", keyenc.I64(1))}} {
		b, err := p.Bind(testCols)
		if err != nil {
			t.Fatal(err)
		}
		if b.CanMatchBlock(empty) {
			t.Errorf("empty block reported matchable (plan %+v)", p)
		}
	}
}

func TestAggregatePartialMerge(t *testing.T) {
	plan := Plan{
		GroupBy: []string{"region"},
		Aggs: []Agg{
			{Func: Count},
			{Func: Sum, Col: "amount"},
			{Func: Min, Col: "id"},
			{Func: Max, Col: "id"},
			{Func: Avg, Col: "qty", As: "avg_qty"},
		},
	}
	b, err := plan.Bind(testCols)
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"region", "count(*)", "sum(amount)", "min(id)", "max(id)", "avg_qty"}
	if !reflect.DeepEqual(b.Columns(), wantCols) {
		t.Fatalf("columns = %v, want %v", b.Columns(), wantCols)
	}

	// Split the same rows across two partials; the merged result must
	// equal a single-partial evaluation — AVG included, since it ships as
	// a sum/count pair.
	rows := []RowView{
		testRow(1, "emea", 10, 1),
		testRow(2, "emea", 20, 2),
		testRow(3, "apac", 5, 7),
		testRow(4, "apac", 2.5, 1),
		testRow(5, "amer", 100, 4),
	}
	one := b.NewPartial()
	p1, p2 := b.NewPartial(), b.NewPartial()
	for i, r := range rows {
		one.Add(r)
		if i%2 == 0 {
			p1.Add(r)
		} else {
			p2.Add(r)
		}
	}
	single := b.Finalize(one)
	merged := b.Finalize(p1, nil, p2)
	if !reflect.DeepEqual(single, merged) {
		t.Fatalf("merged partials differ from single partial:\n%v\nvs\n%v", merged, single)
	}

	// Spot-check content: groups sorted by key (amer, apac, emea).
	if len(merged.Rows) != 3 {
		t.Fatalf("got %d groups, want 3", len(merged.Rows))
	}
	apac := merged.Rows[1]
	if apac[0].Bytes(); string(apac[0].Bytes()) != "apac" {
		t.Fatalf("group order wrong: %v", merged.Rows)
	}
	if apac[1].Int() != 2 || apac[2].Float() != 7.5 || apac[3].Int() != 3 || apac[4].Int() != 4 {
		t.Fatalf("apac aggregates wrong: %v", apac)
	}
	if got := apac[5].Float(); got != 4 {
		t.Fatalf("apac avg qty = %v, want 4", got)
	}
}

func TestGlobalAggregateAndEmptyResult(t *testing.T) {
	plan := Plan{
		Filter: Gt("amount", keyenc.F64(15)),
		Aggs:   []Agg{{Func: Count}, {Func: Avg, Col: "amount"}},
	}
	b, err := plan.Bind(testCols)
	if err != nil {
		t.Fatal(err)
	}
	p := b.NewPartial()
	for _, r := range []RowView{testRow(1, "a", 20, 1), testRow(2, "b", 40, 1), testRow(3, "c", 10, 1)} {
		if b.Matches(r) {
			p.Add(r)
		}
	}
	res := b.Finalize(p)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 || res.Rows[0][1].Float() != 30 {
		t.Fatalf("global aggregate wrong: %v", res.Rows)
	}

	// No qualifying rows: a global aggregate still yields exactly one
	// row — COUNT is 0, AVG is the zero (NULL stand-in) Value.
	empty := b.Finalize(b.NewPartial())
	if len(empty.Rows) != 1 {
		t.Fatalf("empty global aggregate rows = %v, want one row", empty.Rows)
	}
	if got := empty.Rows[0][0].Int(); got != 0 {
		t.Fatalf("empty COUNT = %d, want 0", got)
	}
	if got := empty.Rows[0][1].Kind(); got != keyenc.KindInvalid {
		t.Fatalf("empty AVG kind = %v, want the zero Value", got)
	}
	if noParts := b.Finalize(); len(noParts.Rows) != 1 || noParts.Rows[0][0].Int() != 0 {
		t.Fatalf("Finalize of no partials = %v, want the zero-count row", b.Finalize().Rows)
	}

	// Grouped aggregates keep SQL semantics too: zero qualifying rows
	// means zero groups, not a synthesized one.
	gplan := Plan{
		Filter:  Gt("amount", keyenc.F64(1e9)),
		GroupBy: []string{"region"},
		Aggs:    []Agg{{Func: Count}},
	}
	gb, err := gplan.Bind(testCols)
	if err != nil {
		t.Fatal(err)
	}
	if res := gb.Finalize(gb.NewPartial()); len(res.Rows) != 0 {
		t.Fatalf("empty grouped aggregate returned rows: %v", res.Rows)
	}
}

func TestRowQuerySortAndLimit(t *testing.T) {
	plan := Plan{
		Filter:  Ge("id", keyenc.I64(2)),
		Columns: []string{"region", "id"},
		Limit:   3,
	}
	b, err := plan.Bind(testCols)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := b.NewPartial(), b.NewPartial()
	p1.Add(testRow(4, "d", 0, 0))
	p1.Add(testRow(2, "b", 0, 0))
	p2.Add(testRow(5, "e", 0, 0))
	p2.Add(testRow(3, "b", 0, 0))
	res := b.Finalize(p2, p1) // shard order must not matter
	if !reflect.DeepEqual(res.Columns, []string{"region", "id"}) {
		t.Fatalf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("limit not applied: %d rows", len(res.Rows))
	}
	want := [][2]interface{}{{"b", int64(2)}, {"b", int64(3)}, {"d", int64(4)}}
	for i, w := range want {
		if string(res.Rows[i][0].Bytes()) != w[0].(string) || res.Rows[i][1].Int() != w[1].(int64) {
			t.Fatalf("row %d = %v, want %v", i, res.Rows[i], w)
		}
	}
}

// TestRowQueryLimitPushdown checks that a limited row query's partials
// hold at most Limit rows however many qualify, and that truncation
// never changes the final answer: the global first Limit rows in
// encoded order survive per-partial pruning.
func TestRowQueryLimitPushdown(t *testing.T) {
	const limit = 5
	b, err := Plan{Columns: []string{"id"}, Limit: limit}.Bind(testCols)
	if err != nil {
		t.Fatal(err)
	}
	// Two partials fed descending ids, so the globally smallest rows
	// arrive last — the worst case for premature pruning.
	p1, p2 := b.NewPartial(), b.NewPartial()
	for id := int64(99); id >= 0; id-- {
		part := p1
		if id%2 == 0 {
			part = p2
		}
		part.Add(testRow(id, "", 0, 0))
	}
	for _, p := range []*Partial{p1, p2} {
		if p.NumRows() >= 2*limit {
			t.Fatalf("partial holds %d rows, limit pushdown bounds it below %d", p.NumRows(), 2*limit)
		}
	}
	res := b.Finalize(p1, p2)
	if len(res.Rows) != limit {
		t.Fatalf("got %d rows, want %d", len(res.Rows), limit)
	}
	for i, r := range res.Rows {
		if r[0].Int() != int64(i) {
			t.Fatalf("row %d = %v, want id %d", i, r, i)
		}
	}
}
