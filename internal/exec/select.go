package exec

import (
	"sort"

	"umzi/internal/keyenc"
)

// Index-selection support: the executor's simple access-path rule works
// on per-column constraints extracted from a plan's filter. Extraction
// is purely syntactic — it succeeds only for conjunctive predicates
// (comparison leaves combined with AND), because a disjunction cannot be
// served by one index range without a union plan. The extracted bounds
// are an inclusive superset of the predicate (strict comparisons widen
// to inclusive ones), so a caller driving an index scan with them must
// still re-apply the full filter to every fetched row.

// IndexConstraints are the per-column constraints of a conjunctive
// predicate: exact-match values and inclusive range bounds, keyed by
// column name.
type IndexConstraints struct {
	Eq map[string]keyenc.Value
	Lo map[string]keyenc.Value // inclusive lower bounds (Gt widens to Ge)
	Hi map[string]keyenc.Value // inclusive upper bounds (Lt widens to Le)
}

// ExtractConstraints derives the per-column constraints of a filter
// expression. ok is false when the expression is not a conjunction of
// comparisons (any OR anywhere disqualifies it); a nil filter yields
// empty constraints. Ne leaves contribute nothing. Conflicting Eq
// constraints keep the first value — the residual filter rejects every
// row anyway.
func ExtractConstraints(e Expr) (IndexConstraints, bool) {
	c := IndexConstraints{
		Eq: map[string]keyenc.Value{},
		Lo: map[string]keyenc.Value{},
		Hi: map[string]keyenc.Value{},
	}
	if e == nil {
		return c, true
	}
	return c, collectConstraints(e, &c)
}

func collectConstraints(e Expr, c *IndexConstraints) bool {
	switch x := e.(type) {
	case cmpExpr:
		switch x.op {
		case OpEq:
			if _, dup := c.Eq[x.col]; !dup {
				c.Eq[x.col] = x.val
			}
		case OpGt, OpGe:
			if cur, ok := c.Lo[x.col]; !ok || keyenc.Compare(x.val, cur) > 0 {
				c.Lo[x.col] = x.val
			}
		case OpLt, OpLe:
			if cur, ok := c.Hi[x.col]; !ok || keyenc.Compare(x.val, cur) < 0 {
				c.Hi[x.col] = x.val
			}
		}
		return true
	case andExpr:
		for _, k := range x.kids {
			if !collectConstraints(k, c) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// ExactConstraints reports whether a filter is EXACTLY its extracted
// constraints: a conjunction of Eq / Ge / Le comparisons with no
// conflicting equalities. Strict comparisons (widened to inclusive by
// extraction), Ne (dropped) and OR (not extractable) all make the
// extraction lossy — ok=false. When ok is true and a driver's scan
// bounds absorb every constrained column, re-applying the filter per
// row is a no-op, so the driver may, e.g., push a row limit into the
// scan. A nil filter is exactly its (empty) constraints.
func ExactConstraints(e Expr) (IndexConstraints, bool) {
	c := IndexConstraints{
		Eq: map[string]keyenc.Value{},
		Lo: map[string]keyenc.Value{},
		Hi: map[string]keyenc.Value{},
	}
	if e == nil {
		return c, true
	}
	return c, collectExact(e, &c)
}

func collectExact(e Expr, c *IndexConstraints) bool {
	switch x := e.(type) {
	case cmpExpr:
		switch x.op {
		case OpEq:
			if cur, dup := c.Eq[x.col]; dup {
				return keyenc.Compare(x.val, cur) == 0
			}
			c.Eq[x.col] = x.val
			return true
		case OpGe:
			if cur, ok := c.Lo[x.col]; !ok || keyenc.Compare(x.val, cur) > 0 {
				c.Lo[x.col] = x.val
			}
			return true
		case OpLe:
			if cur, ok := c.Hi[x.col]; !ok || keyenc.Compare(x.val, cur) < 0 {
				c.Hi[x.col] = x.val
			}
			return true
		default:
			return false
		}
	case andExpr:
		for _, k := range x.kids {
			if !collectExact(k, c) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Columns returns the set of constrained column names.
func (c IndexConstraints) Columns() map[string]bool {
	out := make(map[string]bool, len(c.Eq)+len(c.Lo)+len(c.Hi))
	for col := range c.Eq {
		out[col] = true
	}
	for col := range c.Lo {
		out[col] = true
	}
	for col := range c.Hi {
		out[col] = true
	}
	return out
}

// ReferencedOrdinals returns the table-column ordinals the plan touches
// anywhere — filter, projection, grouping and aggregate inputs — in
// ascending order. An access path that can produce all of them (e.g. a
// covering index) can evaluate the plan without materializing rows.
func (b *BoundPlan) ReferencedOrdinals() []int {
	seen := make(map[int]bool)
	add := func(c int) {
		if c >= 0 {
			seen[c] = true
		}
	}
	if b.filter != nil {
		b.filter.columns(add)
	}
	for _, c := range b.project {
		add(c)
	}
	for _, c := range b.groupBy {
		add(c)
	}
	for _, a := range b.aggs {
		add(a.col)
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out) // deterministic for callers that cache or log the set
	return out
}
