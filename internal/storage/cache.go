package storage

import (
	"container/list"
	"sync"
)

// BlockKey identifies one data block of one object in the SSD cache.
type BlockKey struct {
	Object string
	Block  uint32
}

// SSDCache is the local SSD caching layer of §6.2. It caches whole data
// blocks of index runs, bounded by a byte capacity, with LRU eviction among
// unpinned blocks. Queries that fetch purged blocks from shared storage pin
// them for the duration of the query (§7: "after the query is finished, the
// cached data blocks are released, which are further dropped in case of
// cache replacement").
//
// The cache also simulates SSD access latency so end-to-end benchmarks see
// a realistic gap between SSD hits and shared-storage misses.
type SSDCache struct {
	lat      LatencyModel
	capacity int64

	mu    sync.Mutex
	used  int64
	items map[BlockKey]*list.Element
	lru   *list.List // front = most recently used

	hits   int64
	misses int64
}

type cacheItem struct {
	key  BlockKey
	data []byte
	pins int
}

// NewSSDCache returns a cache bounded to capacity bytes. A capacity of 0
// means unbounded (tests); capacity < 0 disables caching entirely.
func NewSSDCache(capacity int64, lat LatencyModel) *SSDCache {
	return &SSDCache{
		lat:      lat,
		capacity: capacity,
		items:    make(map[BlockKey]*list.Element),
		lru:      list.New(),
	}
}

// Get returns the cached block and pins it if pin is true. The boolean
// reports a hit. Callers that pin must call Release.
func (c *SSDCache) Get(key BlockKey, pin bool) ([]byte, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	it := el.Value.(*cacheItem)
	if pin {
		it.pins++
	}
	c.lru.MoveToFront(el)
	c.hits++
	data := it.data
	c.mu.Unlock()
	c.lat.sleep(len(data))
	return data, true
}

// Put inserts a block, evicting LRU unpinned blocks if over capacity.
// If pin is true the block enters pinned (query-driven fetch); Release
// must be called. Put of an existing key refreshes recency only.
func (c *SSDCache) Put(key BlockKey, data []byte, pin bool) {
	if c.capacity < 0 {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		if pin {
			el.Value.(*cacheItem).pins++
		}
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	it := &cacheItem{key: key, data: data}
	if pin {
		it.pins = 1
	}
	c.items[key] = c.lru.PushFront(it)
	c.used += int64(len(data))
	c.evictLocked()
	c.mu.Unlock()
	c.lat.sleep(len(data))
}

// Release unpins a block previously pinned by Get or Put.
func (c *SSDCache) Release(key BlockKey) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		it := el.Value.(*cacheItem)
		if it.pins > 0 {
			it.pins--
		}
	}
	c.evictLocked()
	c.mu.Unlock()
}

// DropObject removes every cached block of the object. This is how the
// cache manager purges a run: data blocks leave the SSD, the header block
// is kept by the run itself (§6.2).
func (c *SSDCache) DropObject(object string) {
	c.mu.Lock()
	for key, el := range c.items {
		if key.Object == object {
			it := el.Value.(*cacheItem)
			c.used -= int64(len(it.data))
			c.lru.Remove(el)
			delete(c.items, key)
		}
	}
	c.mu.Unlock()
}

// evictLocked drops LRU unpinned items until within capacity.
func (c *SSDCache) evictLocked() {
	if c.capacity <= 0 {
		return
	}
	for c.used > c.capacity {
		evicted := false
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			it := el.Value.(*cacheItem)
			if it.pins > 0 {
				continue
			}
			c.used -= int64(len(it.data))
			c.lru.Remove(el)
			delete(c.items, it.key)
			evicted = true
			break
		}
		if !evicted {
			return // everything pinned; allow temporary overshoot
		}
	}
}

// CacheStats reports hit/miss counters and occupancy.
type CacheStats struct {
	Hits, Misses int64
	Used         int64
	Blocks       int
}

// Stats returns a snapshot of the cache counters.
func (c *SSDCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Used: c.used, Blocks: len(c.items)}
}

// Used returns the current occupancy in bytes.
func (c *SSDCache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Capacity returns the configured capacity in bytes.
func (c *SSDCache) Capacity() int64 { return c.capacity }

// Contains reports whether the block is cached (test helper; does not
// count as a hit or miss and does not touch recency).
func (c *SSDCache) Contains(key BlockKey) bool {
	c.mu.Lock()
	_, ok := c.items[key]
	c.mu.Unlock()
	return ok
}
