package storage

import (
	"fmt"
	"sync"
	"testing"
)

func TestCachePutGet(t *testing.T) {
	c := NewSSDCache(0, LatencyModel{})
	key := BlockKey{Object: "run-1", Block: 0}
	c.Put(key, []byte("block data"), false)
	got, ok := c.Get(key, false)
	if !ok || string(got) != "block data" {
		t.Errorf("Get = %q, %v", got, ok)
	}
	if _, ok := c.Get(BlockKey{Object: "run-1", Block: 1}, false); ok {
		t.Error("Get of absent block reported a hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewSSDCache(3000, LatencyModel{})
	blk := make([]byte, 1000)
	for i := uint32(0); i < 3; i++ {
		c.Put(BlockKey{Object: "r", Block: i}, blk, false)
	}
	// Touch block 0 so block 1 is the LRU victim.
	if _, ok := c.Get(BlockKey{Object: "r", Block: 0}, false); !ok {
		t.Fatal("warmup miss")
	}
	c.Put(BlockKey{Object: "r", Block: 3}, blk, false)
	if c.Contains(BlockKey{Object: "r", Block: 1}) {
		t.Error("LRU block 1 should have been evicted")
	}
	for _, b := range []uint32{0, 2, 3} {
		if !c.Contains(BlockKey{Object: "r", Block: b}) {
			t.Errorf("block %d unexpectedly evicted", b)
		}
	}
	if used := c.Used(); used != 3000 {
		t.Errorf("Used = %d, want 3000", used)
	}
}

func TestCachePinnedBlocksSurviveEviction(t *testing.T) {
	c := NewSSDCache(1000, LatencyModel{})
	pinned := BlockKey{Object: "r", Block: 0}
	c.Put(pinned, make([]byte, 800), true) // pinned query fetch
	c.Put(BlockKey{Object: "r", Block: 1}, make([]byte, 800), false)
	if !c.Contains(pinned) {
		t.Fatal("pinned block evicted")
	}
	// After release, pressure can evict it.
	c.Release(pinned)
	c.Put(BlockKey{Object: "r", Block: 2}, make([]byte, 900), false)
	if c.Contains(pinned) && c.Used() > c.Capacity() {
		t.Error("released block kept despite over-capacity")
	}
}

func TestCacheDropObject(t *testing.T) {
	c := NewSSDCache(0, LatencyModel{})
	for i := uint32(0); i < 4; i++ {
		c.Put(BlockKey{Object: "run-A", Block: i}, []byte("aaaa"), false)
		c.Put(BlockKey{Object: "run-B", Block: i}, []byte("bbbb"), false)
	}
	c.DropObject("run-A")
	for i := uint32(0); i < 4; i++ {
		if c.Contains(BlockKey{Object: "run-A", Block: i}) {
			t.Errorf("run-A block %d survived purge", i)
		}
		if !c.Contains(BlockKey{Object: "run-B", Block: i}) {
			t.Errorf("run-B block %d wrongly purged", i)
		}
	}
	if used := c.Used(); used != 16 {
		t.Errorf("Used after purge = %d, want 16", used)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewSSDCache(-1, LatencyModel{})
	c.Put(BlockKey{Object: "r", Block: 0}, []byte("x"), false)
	if _, ok := c.Get(BlockKey{Object: "r", Block: 0}, false); ok {
		t.Error("disabled cache stored a block")
	}
}

func TestCachePutExistingRefreshes(t *testing.T) {
	c := NewSSDCache(2000, LatencyModel{})
	blk := make([]byte, 900)
	c.Put(BlockKey{"r", 0}, blk, false)
	c.Put(BlockKey{"r", 1}, blk, false)
	// Re-put block 0: refresh recency, not duplicate bytes.
	c.Put(BlockKey{"r", 0}, blk, false)
	if used := c.Used(); used != 1800 {
		t.Errorf("Used = %d, want 1800 (no double count)", used)
	}
	c.Put(BlockKey{"r", 2}, blk, false) // evicts LRU = block 1
	if c.Contains(BlockKey{"r", 1}) {
		t.Error("block 1 should be the eviction victim after block 0 refresh")
	}
}

func TestCacheReleaseUnknownKey(t *testing.T) {
	c := NewSSDCache(0, LatencyModel{})
	c.Release(BlockKey{"ghost", 9}) // must not panic
}

func TestCacheAllPinnedOvershoots(t *testing.T) {
	c := NewSSDCache(100, LatencyModel{})
	c.Put(BlockKey{"r", 0}, make([]byte, 90), true)
	c.Put(BlockKey{"r", 1}, make([]byte, 90), true)
	// Both pinned: cache overshoots rather than dropping pinned data.
	if !c.Contains(BlockKey{"r", 0}) || !c.Contains(BlockKey{"r", 1}) {
		t.Error("pinned blocks must never be evicted")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewSSDCache(10_000, LatencyModel{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := BlockKey{Object: fmt.Sprintf("r%d", w%3), Block: uint32(i % 17)}
				if i%3 == 0 {
					c.Put(key, make([]byte, 64), false)
				} else if i%7 == 0 {
					c.Get(key, true)
					c.Release(key)
				} else {
					c.Get(key, false)
				}
				if i%41 == 0 {
					c.DropObject("r0")
				}
			}
		}(w)
	}
	wg.Wait()
	if used := c.Used(); used < 0 || used > 20_000 {
		t.Errorf("Used = %d out of sanity range", used)
	}
}
