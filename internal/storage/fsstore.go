package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FSStore is a directory-backed ObjectStore. Object names map to files
// under the root directory; slashes in names become subdirectories.
// Writes go through a temporary file plus rename so that, like real shared
// storage, an object becomes visible atomically and is never observed
// half-written. FSStore backs the recovery example and the crash tests.
type FSStore struct {
	root  string
	lat   LatencyModel
	stats Stats

	// mu serializes Put existence checks; the filesystem itself is the
	// source of truth for contents.
	mu sync.Mutex
}

// NewFSStore creates (if needed) and opens a store rooted at dir.
func NewFSStore(dir string, lat LatencyModel) (*FSStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create root: %w", err)
	}
	return &FSStore{root: dir, lat: lat}, nil
}

// Stats exposes the traffic counters.
func (s *FSStore) Stats() *Stats { return &s.stats }

func (s *FSStore) path(name string) (string, error) {
	clean := filepath.Clean(name)
	if clean == "." || strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
		return "", fmt.Errorf("storage: invalid object name %q", name)
	}
	return filepath.Join(s.root, filepath.FromSlash(clean)), nil
}

// Put implements ObjectStore.
func (s *FSStore) Put(name string, data []byte) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.Stat(p); err == nil {
		return fmt.Errorf("%w: %s", ErrExists, name)
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("storage: mkdir: %w", err)
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: write temp: %w", err)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: publish object: %w", err)
	}
	s.stats.Writes.Add(1)
	s.stats.BytesWrite.Add(int64(len(data)))
	s.lat.sleep(len(data))
	return nil
}

// Get implements ObjectStore.
func (s *FSStore) Get(name string) ([]byte, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return nil, fmt.Errorf("storage: read: %w", err)
	}
	s.stats.Reads.Add(1)
	s.stats.BytesRead.Add(int64(len(data)))
	s.lat.sleep(len(data))
	return data, nil
}

// GetRange implements ObjectStore.
func (s *FSStore) GetRange(name string, offset, length int64) ([]byte, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return nil, fmt.Errorf("storage: open: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("storage: stat: %w", err)
	}
	if offset < 0 || length < 0 || offset+length > st.Size() {
		return nil, fmt.Errorf("%w: %s [%d,+%d) of %d", ErrRange, name, offset, length, st.Size())
	}
	buf := make([]byte, length)
	if _, err := f.ReadAt(buf, offset); err != nil {
		return nil, fmt.Errorf("storage: read at: %w", err)
	}
	s.stats.Reads.Add(1)
	s.stats.BytesRead.Add(length)
	s.lat.sleep(int(length))
	return buf, nil
}

// Size implements ObjectStore.
func (s *FSStore) Size(name string) (int64, error) {
	p, err := s.path(name)
	if err != nil {
		return 0, err
	}
	st, err := os.Stat(p)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return 0, fmt.Errorf("storage: stat: %w", err)
	}
	return st.Size(), nil
}

// List implements ObjectStore.
func (s *FSStore) List(prefix string) ([]string, error) {
	var names []string
	err := filepath.WalkDir(s.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || strings.HasSuffix(p, ".tmp") {
			return nil
		}
		rel, err := filepath.Rel(s.root, p)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("storage: list: %w", err)
	}
	sort.Strings(names)
	return names, nil
}

// Delete implements ObjectStore.
func (s *FSStore) Delete(name string) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storage: delete: %w", err)
	}
	s.stats.Deletes.Add(1)
	return nil
}
