package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// FSStore is a directory-backed ObjectStore. Object names map to files
// under the root directory; slashes in names become subdirectories.
// Writes go through a temporary file plus rename so that, like real shared
// storage, an object becomes visible atomically and is never observed
// half-written. FSStore backs the recovery example and the crash tests.
type FSStore struct {
	root   string
	lat    LatencyModel
	stats  Stats
	fsync  atomic.Bool
	tmpSeq atomic.Uint64 // staging-file uniquifier (concurrent same-name Puts)

	// mu serializes the exists-check-then-rename window of Put; the
	// filesystem itself is the source of truth for contents.
	mu sync.Mutex
}

// NewFSStore creates (if needed) and opens a store rooted at dir.
func NewFSStore(dir string, lat LatencyModel) (*FSStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create root: %w", err)
	}
	return &FSStore{root: dir, lat: lat}, nil
}

// Stats exposes the traffic counters.
func (s *FSStore) Stats() *Stats { return &s.stats }

// SetFsync controls whether Put syncs the object's contents (and its
// directory entry) to stable media before publishing it. Off by default:
// unit tests and benchmarks value speed, and the rename already gives
// them atomic visibility. The crash-recovery CI tier turns it on so the
// commit-log durability story is exercised against real fsync costs and
// ordering.
func (s *FSStore) SetFsync(on bool) { s.fsync.Store(on) }

func (s *FSStore) path(name string) (string, error) {
	clean := filepath.Clean(name)
	if clean == "." || strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
		return "", fmt.Errorf("storage: invalid object name %q", name)
	}
	return filepath.Join(s.root, filepath.FromSlash(clean)), nil
}

// Put implements ObjectStore. The expensive work — writing and syncing
// the staging file, syncing directories — happens outside the store
// mutex, which guards only the exists-check-then-rename window, so
// concurrent Puts (per-shard commit-log group commits in particular)
// overlap their fsyncs instead of queueing on one lock.
func (s *FSStore) Put(name string, data []byte) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	dir := filepath.Dir(p)
	fsync := s.fsync.Load()
	dirExisted := true
	if fsync {
		// Only the fsync path cares whether MkdirAll creates entries
		// (they need their own directory syncs); keep the stat off the
		// default hot path.
		_, statErr := os.Stat(dir)
		dirExisted = statErr == nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: mkdir: %w", err)
	}
	tmp := fmt.Sprintf("%s.%d.tmp", p, s.tmpSeq.Add(1))
	if err := s.writeTemp(tmp, data); err != nil {
		return err
	}
	s.mu.Lock()
	if _, err := os.Stat(p); err == nil {
		s.mu.Unlock()
		os.Remove(tmp)
		return fmt.Errorf("%w: %s", ErrExists, name)
	}
	if err := os.Rename(tmp, p); err != nil {
		s.mu.Unlock()
		os.Remove(tmp)
		return fmt.Errorf("storage: publish object: %w", err)
	}
	s.mu.Unlock()
	if fsync {
		// Sync the parent directory so the rename survives a power cut
		// — and, when MkdirAll just created the path, every ancestor
		// entry down from the root. Without this the object's
		// durability point is the next journal flush, not the Put
		// return. A sync failure must not leave the object published
		// with Put reporting failure (a commit the caller was told
		// failed would be resurrected by replay), so the object is
		// withdrawn before the error returns.
		syncErr := error(nil)
		if dirExisted {
			syncErr = syncDir(dir)
		} else {
			syncErr = s.syncDirChain(dir)
		}
		if syncErr != nil {
			// Withdraw the published object so "error" keeps meaning
			// "not visible". If this Remove itself fails the outcome is
			// genuinely indeterminate — the same fsync-gate ambiguity
			// real databases face — and the error below stands either
			// way.
			os.Remove(p)
			return syncErr
		}
	}
	s.stats.Writes.Add(1)
	s.stats.BytesWrite.Add(int64(len(data)))
	s.lat.sleep(len(data))
	return nil
}

// writeTemp writes the staging file, syncing contents first when fsync
// is enabled (sync before rename: the object must never become visible
// with contents the disk does not hold).
func (s *FSStore) writeTemp(tmp string, data []byte) error {
	if !s.fsync.Load() {
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			os.Remove(tmp) // a partial write would otherwise orphan the staging file
			return fmt.Errorf("storage: write temp: %w", err)
		}
		return nil
	}
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: write temp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: write temp: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: sync temp: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: close temp: %w", err)
	}
	return nil
}

// syncDirChain fsyncs every directory from the store root down to dir
// (inclusive). dir must be inside the root.
func (s *FSStore) syncDirChain(dir string) error {
	var chain []string
	for d := dir; ; d = filepath.Dir(d) {
		chain = append(chain, d)
		if d == s.root || d == filepath.Dir(d) {
			break
		}
	}
	for i := len(chain) - 1; i >= 0; i-- {
		if err := syncDir(chain[i]); err != nil {
			return err
		}
	}
	return nil
}

// syncDir fsyncs one directory's entries.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: sync dir %s: %w", dir, err)
	}
	err = f.Sync()
	f.Close()
	if err != nil {
		return fmt.Errorf("storage: sync dir %s: %w", dir, err)
	}
	return nil
}

// Get implements ObjectStore.
func (s *FSStore) Get(name string) ([]byte, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return nil, fmt.Errorf("storage: read: %w", err)
	}
	s.stats.Reads.Add(1)
	s.stats.BytesRead.Add(int64(len(data)))
	s.lat.sleep(len(data))
	return data, nil
}

// GetRange implements ObjectStore.
func (s *FSStore) GetRange(name string, offset, length int64) ([]byte, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return nil, fmt.Errorf("storage: open: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("storage: stat: %w", err)
	}
	if offset < 0 || length < 0 || offset+length > st.Size() {
		return nil, fmt.Errorf("%w: %s [%d,+%d) of %d", ErrRange, name, offset, length, st.Size())
	}
	buf := make([]byte, length)
	if _, err := f.ReadAt(buf, offset); err != nil {
		return nil, fmt.Errorf("storage: read at: %w", err)
	}
	s.stats.Reads.Add(1)
	s.stats.BytesRead.Add(length)
	s.lat.sleep(int(length))
	return buf, nil
}

// Size implements ObjectStore.
func (s *FSStore) Size(name string) (int64, error) {
	p, err := s.path(name)
	if err != nil {
		return 0, err
	}
	st, err := os.Stat(p)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return 0, fmt.Errorf("storage: stat: %w", err)
	}
	return st.Size(), nil
}

// List implements ObjectStore.
func (s *FSStore) List(prefix string) ([]string, error) {
	var names []string
	err := filepath.WalkDir(s.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || strings.HasSuffix(p, ".tmp") {
			return nil
		}
		rel, err := filepath.Rel(s.root, p)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("storage: list: %w", err)
	}
	sort.Strings(names)
	return names, nil
}

// Delete implements ObjectStore.
func (s *FSStore) Delete(name string) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storage: delete: %w", err)
	}
	s.stats.Deletes.Add(1)
	return nil
}
