// Package storage implements the multi-tier storage hierarchy that Umzi is
// designed for (§6 of the paper): high-latency, append-only shared storage
// (the HDFS/S3/GlusterFS role), a capacity-bounded local SSD block cache,
// and latency models that let benchmarks reproduce the cached-vs-purged
// performance cliffs of Figures 14 and 15.
//
// The shared-storage substitute deliberately enforces the semantics the
// paper calls out: objects are written whole and are immutable afterwards
// (no in-place updates, no random writes), reads happen at object or block
// granularity, and listing is by prefix. Two implementations are provided:
// MemStore (for tests and benchmarks) and FSStore (durable, for the
// recovery example and crash tests). Both are safe for concurrent use.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Common storage errors.
var (
	// ErrNotExist is returned when an object is absent.
	ErrNotExist = errors.New("storage: object does not exist")
	// ErrExists is returned when writing an object that already exists;
	// shared storage objects are immutable, so writers must pick new names.
	ErrExists = errors.New("storage: object already exists")
	// ErrRange is returned for out-of-bounds block reads.
	ErrRange = errors.New("storage: read beyond object size")
)

// ObjectStore is the shared-storage abstraction. Implementations must be
// safe for concurrent use and must enforce write-once semantics.
type ObjectStore interface {
	// Put writes a complete, immutable object. It fails with ErrExists if
	// the name is taken.
	Put(name string, data []byte) error
	// Get reads a whole object.
	Get(name string) ([]byte, error)
	// GetRange reads length bytes at offset. Implementations charge the
	// latency model once per call: Umzi transfers whole data blocks at a
	// time precisely to amortize this (§7).
	GetRange(name string, offset, length int64) ([]byte, error)
	// Size returns the object's size in bytes.
	Size(name string) (int64, error)
	// List returns the names with the given prefix, sorted ascending.
	List(prefix string) ([]string, error)
	// Delete removes an object. Deleting a missing object is not an error
	// (GC races are benign).
	Delete(name string) error
}

// LatencyModel simulates access cost of a storage tier. The zero value is
// free (no simulated latency), which unit tests use; benchmarks configure
// shared storage to be markedly slower than the SSD cache.
type LatencyModel struct {
	// PerOp is charged once per operation (seek/RPC cost).
	PerOp time.Duration
	// PerKB is charged per 1024 bytes transferred (bandwidth cost).
	PerKB time.Duration
}

// sleep charges the model for transferring n bytes.
func (m LatencyModel) sleep(n int) {
	if m.PerOp == 0 && m.PerKB == 0 {
		return
	}
	d := m.PerOp + m.PerKB*time.Duration((n+1023)/1024)
	if d > 0 {
		time.Sleep(d)
	}
}

// Stats counts storage traffic. All fields are updated atomically; read
// them with the Snapshot method. The write-amplification ablation benches
// (non-persisted levels, §6.1) are built on these counters.
type Stats struct {
	Reads      atomic.Int64
	Writes     atomic.Int64
	Deletes    atomic.Int64
	BytesRead  atomic.Int64
	BytesWrite atomic.Int64
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Reads, Writes, Deletes  int64
	BytesRead, BytesWritten int64
}

// Snapshot returns a consistent-enough copy for reporting.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Reads:        s.Reads.Load(),
		Writes:       s.Writes.Load(),
		Deletes:      s.Deletes.Load(),
		BytesRead:    s.BytesRead.Load(),
		BytesWritten: s.BytesWrite.Load(),
	}
}

// MemStore is an in-memory ObjectStore with a configurable latency model.
type MemStore struct {
	lat   LatencyModel
	stats Stats

	mu      sync.RWMutex
	objects map[string][]byte
}

// NewMemStore returns an empty in-memory store with the given latency.
func NewMemStore(lat LatencyModel) *MemStore {
	return &MemStore{lat: lat, objects: make(map[string][]byte)}
}

// Stats exposes the traffic counters.
func (s *MemStore) Stats() *Stats { return &s.stats }

// Put implements ObjectStore.
func (s *MemStore) Put(name string, data []byte) error {
	s.mu.Lock()
	if _, ok := s.objects[name]; ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrExists, name)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.objects[name] = cp
	s.mu.Unlock()

	s.stats.Writes.Add(1)
	s.stats.BytesWrite.Add(int64(len(data)))
	s.lat.sleep(len(data))
	return nil
}

// Get implements ObjectStore.
func (s *MemStore) Get(name string) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.objects[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	s.stats.Reads.Add(1)
	s.stats.BytesRead.Add(int64(len(data)))
	s.lat.sleep(len(data))
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// GetRange implements ObjectStore.
func (s *MemStore) GetRange(name string, offset, length int64) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.objects[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if offset < 0 || length < 0 || offset+length > int64(len(data)) {
		return nil, fmt.Errorf("%w: %s [%d,+%d) of %d", ErrRange, name, offset, length, len(data))
	}
	s.stats.Reads.Add(1)
	s.stats.BytesRead.Add(length)
	s.lat.sleep(int(length))
	cp := make([]byte, length)
	copy(cp, data[offset:offset+length])
	return cp, nil
}

// Size implements ObjectStore.
func (s *MemStore) Size(name string) (int64, error) {
	s.mu.RLock()
	data, ok := s.objects[name]
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return int64(len(data)), nil
}

// List implements ObjectStore.
func (s *MemStore) List(prefix string) ([]string, error) {
	s.mu.RLock()
	var names []string
	for name := range s.objects {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			names = append(names, name)
		}
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names, nil
}

// Delete implements ObjectStore.
func (s *MemStore) Delete(name string) error {
	s.mu.Lock()
	delete(s.objects, name)
	s.mu.Unlock()
	s.stats.Deletes.Add(1)
	return nil
}

// Len returns the number of stored objects (test helper).
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}
