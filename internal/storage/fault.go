package storage

import (
	"errors"
	"sync/atomic"
)

// Write-fault injection. A FaultStore wraps any ObjectStore and fails
// every mutation (Put, Delete) once a write budget is exhausted,
// simulating a crash cut at an arbitrary storage write — the groomer
// mid-block, the commit log mid-segment, the catalog mid-record. Reads
// always pass through: a "crashed" process's survivors stay readable,
// which is exactly what recovery needs. Once dead the store stays dead
// until Revive arms a fresh budget, so a multi-object operation cannot
// half-succeed after its first failure.
//
// This is the hook behind the crash-recovery property tests and the
// crash.* workload scenarios (cmd/umzi-workload).

// ErrInjectedFault is the error every mutation returns once a
// FaultStore's write budget is exhausted. Test with errors.Is.
var ErrInjectedFault = errors.New("storage: injected write fault (budget exhausted)")

// FaultStore is a budgeted write-fault wrapper around an ObjectStore.
// The zero budget fails the first write; call Revive to arm it. Safe
// for concurrent use (the budget and death flag are atomic).
type FaultStore struct {
	ObjectStore
	budget atomic.Int64
	dead   atomic.Bool
}

// NewFaultStore wraps inner with a write budget of n mutations; n <= 0
// starts the store dead (every write fails until Revive).
func NewFaultStore(inner ObjectStore, n int64) *FaultStore {
	s := &FaultStore{ObjectStore: inner}
	s.Revive(n)
	return s
}

// Revive arms a fresh write budget and clears the death flag.
func (s *FaultStore) Revive(n int64) {
	s.budget.Store(n)
	s.dead.Store(false)
}

// Failing reports whether the budget has been exhausted (writes are
// currently failing).
func (s *FaultStore) Failing() bool { return s.dead.Load() }

// charge consumes one unit of budget, killing the store at zero.
func (s *FaultStore) charge() error {
	if s.dead.Load() {
		return ErrInjectedFault
	}
	if s.budget.Add(-1) < 0 {
		s.dead.Store(true)
		return ErrInjectedFault
	}
	return nil
}

// Put implements ObjectStore, charging the write budget.
func (s *FaultStore) Put(name string, data []byte) error {
	if err := s.charge(); err != nil {
		return err
	}
	return s.ObjectStore.Put(name, data)
}

// Delete implements ObjectStore, charging the write budget.
func (s *FaultStore) Delete(name string) error {
	if err := s.charge(); err != nil {
		return err
	}
	return s.ObjectStore.Delete(name)
}
