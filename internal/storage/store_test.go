package storage

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// storeImpls returns a fresh instance of every ObjectStore implementation
// so the contract tests run against all of them.
func storeImpls(t *testing.T) map[string]ObjectStore {
	t.Helper()
	fs, err := NewFSStore(t.TempDir(), LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]ObjectStore{
		"mem": NewMemStore(LatencyModel{}),
		"fs":  fs,
	}
}

func TestStorePutGet(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			data := []byte("hello shared storage")
			if err := s.Put("a/b/obj1", data); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get("a/b/obj1")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Errorf("Get = %q, want %q", got, data)
			}
			sz, err := s.Size("a/b/obj1")
			if err != nil {
				t.Fatal(err)
			}
			if sz != int64(len(data)) {
				t.Errorf("Size = %d, want %d", sz, len(data))
			}
		})
	}
}

func TestStoreWriteOnce(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("obj", []byte("v1")); err != nil {
				t.Fatal(err)
			}
			err := s.Put("obj", []byte("v2"))
			if !errors.Is(err, ErrExists) {
				t.Errorf("second Put: err = %v, want ErrExists (objects are immutable)", err)
			}
			got, _ := s.Get("obj")
			if string(got) != "v1" {
				t.Errorf("object mutated to %q", got)
			}
		})
	}
}

func TestStoreGetMissing(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Get("nope"); !errors.Is(err, ErrNotExist) {
				t.Errorf("Get missing: %v, want ErrNotExist", err)
			}
			if _, err := s.Size("nope"); !errors.Is(err, ErrNotExist) {
				t.Errorf("Size missing: %v, want ErrNotExist", err)
			}
			if _, err := s.GetRange("nope", 0, 1); !errors.Is(err, ErrNotExist) {
				t.Errorf("GetRange missing: %v, want ErrNotExist", err)
			}
		})
	}
}

func TestStoreGetRange(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("obj", []byte("0123456789")); err != nil {
				t.Fatal(err)
			}
			got, err := s.GetRange("obj", 3, 4)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "3456" {
				t.Errorf("GetRange = %q, want 3456", got)
			}
			// Whole-object range.
			got, err = s.GetRange("obj", 0, 10)
			if err != nil || string(got) != "0123456789" {
				t.Errorf("full GetRange = %q, %v", got, err)
			}
			// Out of bounds.
			if _, err := s.GetRange("obj", 8, 3); !errors.Is(err, ErrRange) {
				t.Errorf("oob GetRange: %v, want ErrRange", err)
			}
			if _, err := s.GetRange("obj", -1, 2); !errors.Is(err, ErrRange) {
				t.Errorf("negative offset: %v, want ErrRange", err)
			}
		})
	}
}

func TestStoreListPrefix(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			for _, n := range []string{"runs/z1/r2", "runs/z1/r1", "runs/z2/r3", "meta/m1"} {
				if err := s.Put(n, []byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			got, err := s.List("runs/z1/")
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"runs/z1/r1", "runs/z1/r2"}
			if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
				t.Errorf("List = %v, want %v (sorted)", got, want)
			}
			all, err := s.List("")
			if err != nil {
				t.Fatal(err)
			}
			if len(all) != 4 {
				t.Errorf("List(\"\") = %v, want 4 objects", all)
			}
		})
	}
}

func TestStoreDelete(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("obj", []byte("x")); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete("obj"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get("obj"); !errors.Is(err, ErrNotExist) {
				t.Error("object still readable after delete")
			}
			// Deleting a missing object is benign (GC races).
			if err := s.Delete("obj"); err != nil {
				t.Errorf("repeat delete: %v", err)
			}
			// The name can be reused after deletion.
			if err := s.Put("obj", []byte("y")); err != nil {
				t.Errorf("Put after delete: %v", err)
			}
		})
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for j := 0; j < 20; j++ {
						n := fmt.Sprintf("w%d/o%d", i, j)
						if err := s.Put(n, []byte(n)); err != nil {
							t.Error(err)
							return
						}
						if got, err := s.Get(n); err != nil || string(got) != n {
							t.Errorf("Get(%s) = %q, %v", n, got, err)
							return
						}
					}
				}(i)
			}
			wg.Wait()
			names, err := s.List("")
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != 160 {
				t.Errorf("got %d objects, want 160", len(names))
			}
		})
	}
}

func TestMemStoreIsolation(t *testing.T) {
	s := NewMemStore(LatencyModel{})
	data := []byte("abc")
	if err := s.Put("o", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X' // caller mutates its buffer after Put
	got, _ := s.Get("o")
	if string(got) != "abc" {
		t.Error("store must copy on Put")
	}
	got[0] = 'Y' // caller mutates the returned buffer
	got2, _ := s.Get("o")
	if string(got2) != "abc" {
		t.Error("store must copy on Get")
	}
}

func TestLatencyModelCharged(t *testing.T) {
	s := NewMemStore(LatencyModel{PerOp: 2 * time.Millisecond})
	if err := s.Put("o", []byte("x")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := s.Get("o"); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("5 reads at 2ms PerOp took %v, want >= 10ms", d)
	}
}

func TestStatsCounters(t *testing.T) {
	s := NewMemStore(LatencyModel{})
	_ = s.Put("a", make([]byte, 100))
	_, _ = s.Get("a")
	_, _ = s.GetRange("a", 0, 10)
	_ = s.Delete("a")
	st := s.Stats().Snapshot()
	if st.Writes != 1 || st.Reads != 2 || st.Deletes != 1 {
		t.Errorf("counters = %+v", st)
	}
	if st.BytesWritten != 100 || st.BytesRead != 110 {
		t.Errorf("byte counters = %+v", st)
	}
}

func TestFSStoreRejectsEscapingNames(t *testing.T) {
	s, err := NewFSStore(t.TempDir(), LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"../evil", "/abs", "a/../../evil", "."} {
		if err := s.Put(n, []byte("x")); err == nil {
			t.Errorf("Put(%q): want error for escaping name", n)
		}
	}
}

func TestFSStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("zone/run-1", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Simulate an indexer crash: reopen the same directory.
	s2, err := NewFSStore(dir, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get("zone/run-1")
	if err != nil || string(got) != "payload" {
		t.Errorf("after reopen: %q, %v", got, err)
	}
	names, _ := s2.List("zone/")
	if len(names) != 1 || names[0] != "zone/run-1" {
		t.Errorf("List after reopen = %v", names)
	}
}
