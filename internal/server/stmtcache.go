package server

import (
	"container/list"
	"sync"

	"umzi/internal/wildfire"
)

// stmtCache is the server-side statement cache: an LRU of decoded
// QuerySpecs keyed by tenant plus the raw spec bytes, so a repeated
// spec skips UnmarshalQuerySpec — decode and validation — entirely.
// Handing the cached spec out by value is safe: the engine treats a
// spec as read-only (RunQuery stamps the timestamp on its own copy),
// the compiled expressions inside are immutable, and a trace handle
// never travels the wire. Keying per tenant keeps one tenant's cache
// pressure from observing another's statements.
type stmtCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     *list.List // of *stmtEntry, front = most recently used
}

type stmtEntry struct {
	key  string
	spec wildfire.QuerySpec
}

func newStmtCache(max int) *stmtCache {
	return &stmtCache{
		max:     max,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

func stmtKey(tenant string, raw []byte) string {
	return tenant + "\x00" + string(raw)
}

// lookup returns the decoded spec for the raw bytes, promoting the
// entry. A nil cache (statement caching disabled) always misses.
func (c *stmtCache) lookup(tenant string, raw []byte) (wildfire.QuerySpec, bool) {
	if c == nil {
		return wildfire.QuerySpec{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[stmtKey(tenant, raw)]
	if !ok {
		return wildfire.QuerySpec{}, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*stmtEntry).spec, true
}

// store caches a freshly decoded spec, evicting from the LRU tail past
// the size bound. No-op on a nil cache.
func (c *stmtCache) store(tenant string, raw []byte, spec wildfire.QuerySpec) {
	if c == nil {
		return
	}
	key := stmtKey(tenant, raw)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*stmtEntry).spec = spec
		return
	}
	c.entries[key] = c.lru.PushFront(&stmtEntry{key: key, spec: spec})
	for c.lru.Len() > c.max {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.entries, tail.Value.(*stmtEntry).key)
	}
}

// size returns the number of cached statements.
func (c *stmtCache) size() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
