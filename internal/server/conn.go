package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"umzi"
	"umzi/internal/wildfire"
	"umzi/internal/wire"
)

// Per-connection handling. Two goroutines per connection:
//
//   - the reader pulls frames off the socket. Cancel frames act
//     immediately — the reader fires the active query's CancelFunc, so
//     cancellation propagates into shard workers even while the
//     dispatcher is blocked writing a row batch to the peer. All other
//     frames queue for the dispatcher; a read error (disconnect) also
//     cancels the active query and closes the queue.
//   - the dispatcher (run) owns all writes and serves requests
//     sequentially: Hello first, then Query/Commit/CreateTable/Catalog/
//     Ping until the peer hangs up or the server shuts down.
//
// Slow consumers are bounded by construction: the dispatcher blocks on
// the TCP write, stops pulling the cursor, and the engine's per-shard
// workers block on their own bounded channels — a stalled client pins
// O(streamBuf) rows, not the result set. A client that cancels must
// drain to the Done frame; cancelGrace caps how long a canceling
// non-drainer can hold the write path before the connection is dropped.

const (
	// frameQueueDepth bounds pipelined client frames awaiting dispatch.
	frameQueueDepth = 8
	// cancelGrace is the write deadline armed when a Cancel arrives: the
	// residual batch and Done frame must drain within it.
	cancelGrace = 5 * time.Second
	// batchRows / batchBytes bound one RowBatch frame.
	batchRows  = 512
	batchBytes = 128 << 10
)

type frame struct {
	typ     byte
	payload []byte
}

// batchBufPool recycles RowBatch encode buffers — the per-batch row
// buffer and the framed payload it is copied into. Sized for a full
// batch so steady-state streaming stops allocating per frame.
var batchBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, batchBytes+1024)
		return &b
	},
}

type connHandler struct {
	s      *Server
	c      net.Conn
	bw     *bufio.Writer
	frames chan frame
	tenant string

	// queryCancel is the active query's CancelFunc slot, owned by the
	// dispatcher, fired by the reader (Cancel frame or disconnect).
	// canceled records that the reader fired it, so the dispatcher can
	// tell a client cancel from spontaneous exhaustion.
	qmu         sync.Mutex
	queryCancel context.CancelFunc
	canceled    bool
}

func newConnHandler(s *Server, c net.Conn) *connHandler {
	return &connHandler{
		s:      s,
		c:      c,
		bw:     bufio.NewWriterSize(c, 64<<10),
		frames: make(chan frame, frameQueueDepth),
	}
}

// run serves the connection to completion. The caller closes the socket.
func (h *connHandler) run() {
	go h.readLoop()
	if !h.hello() {
		return
	}
	for {
		var f frame
		var ok bool
		select {
		case f, ok = <-h.frames:
			if !ok {
				return // peer hung up (or broke framing)
			}
		case <-h.s.ctx.Done():
			return // server shutdown; socket close unblocks the reader
		}
		// Clear any cancel-grace write deadline fireCancel armed for the
		// previous request; every handler starts with a fresh write path.
		h.c.SetWriteDeadline(time.Time{})
		var err error
		switch f.typ {
		case wire.FrameQuery:
			err = h.handleQuery(f.payload)
		case wire.FrameCommit:
			err = h.handleCommit(f.payload)
		case wire.FrameCreateTable:
			err = h.handleCreateTable(f.payload)
		case wire.FrameCatalog:
			err = h.handleCatalog()
		case wire.FramePing:
			err = h.reply(wire.StatusOK, "")
		default:
			h.reply(wire.StatusError, fmt.Sprintf("unexpected frame type 0x%02x", f.typ))
			return
		}
		if err != nil {
			return // write path failed; nothing more to say to this peer
		}
	}
}

// readLoop pulls frames until the peer disconnects. Cancel frames act
// in place; everything else queues for the dispatcher.
func (h *connHandler) readLoop() {
	defer close(h.frames)
	br := bufio.NewReaderSize(h.c, 64<<10)
	for {
		typ, payload, err := wire.ReadFrame(br)
		if err != nil {
			h.fireCancel() // mid-stream disconnect stops the cursor
			return
		}
		if typ == wire.FrameCancel {
			h.fireCancel()
			continue
		}
		select {
		case h.frames <- frame{typ: typ, payload: payload}:
		case <-h.s.ctx.Done():
			return
		}
	}
}

// fireCancel cancels the active query, if any; stale cancels (no query
// in flight) are ignored. It also arms the cancel-grace write deadline:
// a canceling client owes us a drain to Done, and one that never drains
// must not pin the connection's write path forever.
func (h *connHandler) fireCancel() {
	h.qmu.Lock()
	cancel := h.queryCancel
	if cancel != nil {
		h.canceled = true
	}
	h.qmu.Unlock()
	if cancel != nil {
		h.c.SetWriteDeadline(time.Now().Add(cancelGrace))
		cancel()
	}
}

// armQuery installs the active query's cancel slot; the returned func
// clears it and reports whether the reader fired a cancel.
func (h *connHandler) armQuery(cancel context.CancelFunc) (disarm func() (clientCanceled bool)) {
	h.qmu.Lock()
	h.queryCancel = cancel
	h.canceled = false
	h.qmu.Unlock()
	return func() bool {
		h.qmu.Lock()
		defer h.qmu.Unlock()
		h.queryCancel = nil
		return h.canceled
	}
}

// hello performs the opening handshake; on failure it reports and the
// connection ends.
func (h *connHandler) hello() bool {
	var f frame
	var ok bool
	select {
	case f, ok = <-h.frames:
		if !ok {
			return false
		}
	case <-h.s.ctx.Done():
		return false
	case <-time.After(10 * time.Second):
		h.s.mx.authFailures.Inc()
		h.reply(wire.StatusError, "hello timeout")
		return false
	}
	fail := func(msg string) bool {
		h.s.mx.authFailures.Inc()
		h.reply(wire.StatusError, msg)
		return false
	}
	if f.typ != wire.FrameHello {
		return fail("expected Hello")
	}
	d := wire.NewDec(f.payload)
	magic := make([]byte, len(wire.Magic))
	for i := range magic {
		magic[i] = d.Byte()
	}
	ver := d.Byte()
	token := d.String()
	if d.Err() != nil || string(magic) != wire.Magic {
		return fail("bad magic: not an umzi wire client")
	}
	if ver != wire.Version {
		return fail(fmt.Sprintf("protocol version %d not supported (server speaks %d)", ver, wire.Version))
	}
	if len(h.s.cfg.Tokens) == 0 {
		h.tenant = "public"
	} else {
		tenant, ok := h.s.cfg.Tokens[token]
		if !ok {
			return fail("unknown auth token")
		}
		h.tenant = tenant
	}
	payload := wire.AppendString(nil, h.tenant)
	payload = wire.AppendString(payload, h.s.cfg.Version)
	return h.send(wire.FrameHelloOK, payload) == nil
}

// send writes one frame and flushes it.
func (h *connHandler) send(typ byte, payload []byte) error {
	if err := wire.WriteFrame(h.bw, typ, payload); err != nil {
		return err
	}
	return h.bw.Flush()
}

// reply sends a Done frame.
func (h *connHandler) reply(status byte, msg string) error {
	return h.send(wire.FrameDone, append([]byte{status}, msg...))
}

// replyErr maps an error to the Done frame that reports it.
func (h *connHandler) replyErr(err error) error {
	status := wire.StatusError
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		status = wire.StatusCanceled
	}
	var adm *AdmissionError
	if errors.As(err, &adm) {
		status = wire.StatusAdmission
	}
	return h.reply(status, err.Error())
}

// handleQuery serves one Query frame: header, streamed batches, Done.
func (h *connHandler) handleQuery(payload []byte) error {
	h.s.mx.queries.Inc()
	d := wire.NewDec(payload)
	timeoutNS := d.U64()
	table := d.String()
	specBytes := d.Bytes()
	if err := d.Err(); err != nil {
		return h.replyErr(fmt.Errorf("malformed query frame: %w", err))
	}
	// Statement cache: a repeated spec (same tenant, same raw bytes)
	// skips decode and validation. The cached spec is handed out by
	// value; the engine never mutates it (see stmtCache).
	spec, cached := h.s.stmts.lookup(h.tenant, specBytes)
	if cached {
		h.s.mx.stmtHits.Inc()
	} else {
		h.s.mx.stmtMisses.Inc()
		var err error
		spec, err = wildfire.UnmarshalQuerySpec(specBytes)
		if err != nil {
			return h.replyErr(err)
		}
		h.s.stmts.store(h.tenant, specBytes, spec)
	}
	tbl, err := h.s.db.Table(table)
	if err != nil {
		return h.replyErr(err)
	}

	qctx := h.s.ctx
	var cancel context.CancelFunc
	if timeoutNS > 0 {
		qctx, cancel = context.WithTimeout(qctx, time.Duration(timeoutNS))
	} else {
		qctx, cancel = context.WithCancel(qctx)
	}
	defer cancel()
	disarm := h.armQuery(cancel)

	rows, err := tbl.RunSpec(qctx, spec)
	if err != nil {
		disarm()
		return h.replyErr(err)
	}

	if err := h.send(wire.FrameRowHeader, wire.AppendStrings(nil, rows.Columns())); err != nil {
		rows.Close()
		disarm()
		// A failed stream write is a dead or canceling peer either way.
		h.s.mx.queryCancels.Inc()
		return err
	}

	// Stream: encode rows into one batch buffer, flush at the bounds.
	// The cursor honors qctx, so a fired cancel ends the loop within the
	// current batch; a stalled peer blocks the flush and, transitively,
	// the engine's bounded per-shard streams. Both the batch buffer and
	// the framed payload come from batchBufPool — send copies into the
	// bufio writer before returning, so the buffers are reusable the
	// moment it does.
	batchBuf := batchBufPool.Get().(*[]byte)
	batch := (*batchBuf)[:0]
	defer func() {
		*batchBuf = batch[:0]
		batchBufPool.Put(batchBuf)
	}()
	nRows := 0
	flush := func() error {
		if nRows == 0 {
			return nil
		}
		pb := batchBufPool.Get().(*[]byte)
		payload := wire.AppendUvarint((*pb)[:0], uint64(nRows))
		payload = append(payload, batch...)
		batch, nRows = batch[:0], 0
		err := h.send(wire.FrameRowBatch, payload)
		*pb = payload[:0]
		batchBufPool.Put(pb)
		return err
	}
	var streamErr error
	for rows.Next() {
		b, err := wire.AppendRow(batch, rows.Values())
		if err != nil {
			streamErr = err
			break
		}
		batch = b
		nRows++
		if nRows >= batchRows || len(batch) >= batchBytes {
			if err := flush(); err != nil {
				// A dead peer (disconnect) lands here, whether or not the
				// reader has noticed yet and fired the cursor's cancel.
				rows.Close()
				disarm()
				h.s.mx.queryCancels.Inc()
				return err
			}
		}
	}
	if streamErr == nil {
		streamErr = rows.Err()
	}
	closeErr := rows.Close()
	clientCanceled := disarm()

	if streamErr == nil && closeErr != nil {
		// The satellite-audited path: a release failure on an otherwise
		// clean stream must reach the client, not vanish in teardown.
		streamErr = fmt.Errorf("closing query stream: %w", closeErr)
	}
	switch {
	case clientCanceled:
		h.s.mx.queryCancels.Inc()
		return h.reply(wire.StatusCanceled, "canceled")
	case streamErr != nil:
		return h.replyErr(streamErr)
	default:
		if err := flush(); err != nil {
			return err
		}
		return h.reply(wire.StatusOK, "")
	}
}

// handleCommit applies one Commit frame under admission control.
func (h *connHandler) handleCommit(payload []byte) error {
	d := wire.NewDec(payload)
	replica := int(d.Uvarint())
	nTables := d.Count(1 << 12)
	type stage struct {
		table string
		rows  []umzi.Row
	}
	stages := make([]stage, 0, nTables)
	total := 0
	for i := 0; i < nTables && d.Err() == nil; i++ {
		st := stage{table: d.String()}
		nRows := d.Count(1 << 20)
		for j := 0; j < nRows && d.Err() == nil; j++ {
			st.rows = append(st.rows, umzi.Row(d.Row()))
		}
		total += len(st.rows)
		stages = append(stages, st)
	}
	if err := d.Err(); err != nil {
		return h.replyErr(fmt.Errorf("malformed commit frame: %w", err))
	}

	// Admission: every target table must be clear (or clear up) before
	// any row is staged; reads never pass through here.
	for _, st := range stages {
		if err := h.s.adm.admit(h.s.ctx, st.table); err != nil {
			// Only true refusals count; a context error (server shutdown
			// while queued) is not an admission rejection.
			var adm *AdmissionError
			if errors.As(err, &adm) {
				h.s.mx.admissionRejected(st.table).Inc()
			}
			return h.replyErr(err)
		}
	}

	tx, err := h.s.db.Begin(h.s.ctx)
	if err != nil {
		return h.replyErr(err)
	}
	tx.WithReplica(replica)
	for _, st := range stages {
		if err := tx.Upsert(st.table, st.rows...); err != nil {
			tx.Abort()
			return h.replyErr(err)
		}
	}
	if err := tx.Commit(h.s.ctx); err != nil {
		return h.replyErr(err)
	}
	h.s.mx.commits.Inc()
	h.s.mx.commitRows.Add(int64(total))
	return h.reply(wire.StatusOK, "")
}

// handleCreateTable serves one CreateTable frame.
func (h *connHandler) handleCreateTable(payload []byte) error {
	var req wildfire.CreateTableRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return h.replyErr(fmt.Errorf("malformed CreateTable request: %w", err))
	}
	_, err := h.s.db.CreateTable(req.Def, umzi.TableOptions{
		Shards:      req.Shards,
		Index:       req.Index,
		Secondaries: req.Secondaries,
		Replicas:    req.Replicas,
		Partitions:  req.Partitions,
		Parallelism: req.Parallelism,
		Durability:  req.Durability,
	})
	if err != nil {
		return h.replyErr(err)
	}
	return h.reply(wire.StatusOK, "")
}

// handleCatalog serves one Catalog frame.
func (h *connHandler) handleCatalog() error {
	var resp wildfire.CatalogResponse
	for _, name := range h.s.db.Tables() {
		tbl, err := h.s.db.Table(name)
		if err != nil {
			continue // racing a concurrent drop; skip
		}
		resp.Tables = append(resp.Tables, wildfire.CatalogTable{
			Def:    tbl.Def(),
			Index:  tbl.PrimaryIndex(),
			Shards: tbl.NumShards(),
		})
	}
	data, err := json.Marshal(resp)
	if err != nil {
		return h.replyErr(err)
	}
	return h.send(wire.FrameCatalogData, data)
}

// writeDone writes a bare Done frame to a raw conn (pre-handler paths:
// the connection-limit bouncer).
func writeDone(w io.Writer, payload []byte) {
	_ = wire.WriteFrame(w, wire.FrameDone, payload)
}

func statusErrorMsg(msg string) []byte {
	return append([]byte{wire.StatusError}, msg...)
}
