// Package server is umzi's network front end: a TCP listener speaking
// the internal/wire protocol, serving any number of tenants against one
// umzi.DB. Each connection is one sequential request/response channel —
// queries stream row batches, commits and DDL round-trip — with
// per-tenant token auth, a global connection limit, and admission
// control that pushes back on writes when the engine's own backpressure
// signals (WAL watermark lag, live-zone size) say grooming is behind.
// An optional HTTP admin listener exposes the DB's metrics handler.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"umzi"
	"umzi/internal/obs"
)

// Config configures a Server.
type Config struct {
	// DB is the database being served (required).
	DB *umzi.DB
	// Addr is the TCP listen address for ListenAndServe (e.g.
	// "127.0.0.1:7777", ":0" for an ephemeral port).
	Addr string
	// AdminAddr, when non-empty, starts an HTTP listener serving the
	// DB's metrics (at /metrics, Prometheus text or JSON) and a /healthz
	// probe.
	AdminAddr string
	// Tokens maps auth token -> tenant name. Empty means open access:
	// every token authenticates as tenant "public". With tokens
	// configured, an unknown token is rejected at Hello.
	Tokens map[string]string
	// MaxConns bounds simultaneously served connections; excess dials
	// are turned away with an error frame. 0 means 256.
	MaxConns int
	// Version is reported to clients in HelloOK ("dev" when empty).
	Version string
	// Admission configures write admission control; the zero value
	// admits everything.
	Admission AdmissionConfig
	// StmtCacheSize bounds the server-side statement cache: decoded
	// QuerySpecs keyed per tenant on the raw spec bytes, so repeated
	// statements skip decode and validation. 0 means 256; negative
	// disables the cache.
	StmtCacheSize int
}

// Server is one running umzi network front end.
type Server struct {
	cfg   Config
	db    *umzi.DB
	adm   *admission
	stmts *stmtCache
	mx    serverMetrics

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	ln       net.Listener
	adminLn  net.Listener
	adminSrv *http.Server
	conns    map[net.Conn]struct{}
	closed   bool
}

// serverMetrics is the server's own metric bundle, registered into the
// DB's registry so the admin endpoint exposes engine and serving
// metrics side by side.
type serverMetrics struct {
	reg           *obs.Registry
	connsOpen     *obs.Gauge
	connsTotal    *obs.Counter
	connsRejected *obs.Counter
	authFailures  *obs.Counter
	queries       *obs.Counter
	queryCancels  *obs.Counter
	commits       *obs.Counter
	commitRows    *obs.Counter
	queueDepth    *obs.Gauge
	stmtHits      *obs.Counter
	stmtMisses    *obs.Counter
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	return serverMetrics{
		reg:           reg,
		connsOpen:     reg.Gauge("server_conns_open", "client connections currently served", nil),
		connsTotal:    reg.Counter("server_conns_total", "client connections accepted", nil),
		connsRejected: reg.Counter("server_conns_rejected", "connections turned away at the MaxConns limit", nil),
		authFailures:  reg.Counter("server_auth_failures", "Hello frames rejected (bad magic, version, or token)", nil),
		queries:       reg.Counter("server_queries", "query requests served", nil),
		queryCancels:  reg.Counter("server_query_cancels", "query streams ended by a client Cancel or disconnect", nil),
		commits:       reg.Counter("server_commits", "commit requests admitted and applied", nil),
		commitRows:    reg.Counter("server_commit_rows", "rows committed through the server", nil),
		queueDepth:    reg.Gauge("server_queue_depth", "writes currently queued by admission control", nil),
		stmtHits:      reg.Counter("server_stmt_cache_hits", "query specs served from the statement cache (decode skipped)", nil),
		stmtMisses:    reg.Counter("server_stmt_cache_misses", "query specs decoded and validated from wire bytes", nil),
	}
}

// admissionRejected returns the per-table rejection counter; identity
// registration makes repeat lookups cheap and idempotent.
func (m *serverMetrics) admissionRejected(table string) *obs.Counter {
	return m.reg.Counter("server_admission_rejected",
		"writes rejected (or queue-timed-out) by admission control",
		obs.Labels{"table": table})
}

// New builds a server over a DB. Call Serve or ListenAndServe to start
// it, and Shutdown to stop it.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, fmt.Errorf("server: Config.DB is required")
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 256
	}
	if cfg.Version == "" {
		cfg.Version = "dev"
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		db:     cfg.DB,
		mx:     newServerMetrics(cfg.DB.Registry()),
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[net.Conn]struct{}),
	}
	if cfg.StmtCacheSize >= 0 {
		size := cfg.StmtCacheSize
		if size == 0 {
			size = 256
		}
		s.stmts = newStmtCache(size)
		s.mx.reg.GaugeFunc("server_stmt_cache_entries", "statements resident in the server statement cache", nil,
			func() int64 { return int64(s.stmts.size()) })
	}
	s.adm = newAdmission(cfg.DB, cfg.Admission, &s.mx)
	return s, nil
}

// ListenAndServe listens on Config.Addr and serves until Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the main listener's address ("" before Serve) — how
// tests and the -addr-file flag learn an ephemeral port.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections on ln until Shutdown (or a non-temporary
// accept error). It owns ln and closes it. Serve returns nil after a
// Shutdown-initiated stop.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()

	s.adm.start()
	if err := s.startAdmin(); err != nil {
		ln.Close()
		return err
	}

	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-s.ctx.Done():
				return nil // orderly shutdown closed the listener
			default:
			}
			return err
		}
		if !s.track(c) {
			// Over the connection limit (or shutting down): tell the
			// client why before hanging up, best-effort with a short
			// deadline so a non-reading peer cannot stall the accept loop.
			s.mx.connsRejected.Inc()
			c.SetWriteDeadline(time.Now().Add(2 * time.Second))
			writeDone(c, statusErrorMsg("server at connection limit"))
			c.Close()
			continue
		}
		s.mx.connsTotal.Inc()
		s.mx.connsOpen.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.mx.connsOpen.Add(-1)
			defer s.untrack(c)
			newConnHandler(s, c).run()
		}()
	}
}

// track registers a live connection, enforcing MaxConns.
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.conns) >= s.cfg.MaxConns {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

// startAdmin boots the HTTP admin listener when configured.
func (s *Server) startAdmin() error {
	if s.cfg.AdminAddr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", s.cfg.AdminAddr)
	if err != nil {
		return fmt.Errorf("server: admin listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.db.MetricsHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	srv := &http.Server{Handler: mux}
	s.mu.Lock()
	s.adminSrv = srv
	s.adminLn = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// The admin surface is best-effort; its failure must not take
			// the data path down. The error is visible via the closed port.
			_ = err
		}
	}()
	return nil
}

// AdminAddr returns the admin listener's address ("" when disabled or
// before Serve).
func (s *Server) AdminAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.adminLn == nil {
		return ""
	}
	return s.adminLn.Addr().String()
}

// Shutdown stops the server: the listeners close (no new connections),
// in-flight queries are cancelled, every connection is closed, and all
// serving goroutines are waited out — bounded by ctx. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	adminSrv := s.adminSrv
	s.mu.Unlock()

	// Order matters: mark the stop (so the accept loop reads its listener
	// error as shutdown), cancel every in-flight request (their contexts
	// descend from s.ctx), stop accepting, then close the sockets so
	// blocked reads and writes return. Handlers then exit on their own.
	s.cancel()
	if ln != nil {
		ln.Close()
	}
	if adminSrv != nil {
		adminSrv.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.adm.stop()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown timed out: %w", ctx.Err())
	}
}

// Close is Shutdown with no deadline.
func (s *Server) Close() error { return s.Shutdown(context.Background()) }
