package server_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"umzi"
	"umzi/client"
	"umzi/internal/server"
)

// boot opens an in-memory DB, creates an orders-like table, and serves
// it on an ephemeral port; cleanup shuts everything down and asserts
// the shutdown is goroutine-clean.
func boot(t *testing.T, cfg server.Config) (*umzi.DB, *server.Server, string) {
	t.Helper()
	db, err := umzi.OpenDB(umzi.DBConfig{Store: umzi.NewMemStore(umzi.LatencyModel{})})
	if err != nil {
		t.Fatal(err)
	}
	cfg.DB = db
	srv, err := server.New(cfg)
	if err != nil {
		db.Close()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		db.Close()
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
		db.Close()
	})
	return db, srv, ln.Addr().String()
}

func mkTable(t *testing.T, db *umzi.DB, name string, shards int) *umzi.Table {
	t.Helper()
	tbl, err := db.CreateTable(umzi.TableDef{
		Name: name,
		Columns: []umzi.TableColumn{
			{Name: "k", Kind: umzi.KindInt64},
			{Name: "v", Kind: umzi.KindString},
		},
		PrimaryKey: []string{"k"},
		ShardKey:   []string{"k"},
	}, umzi.TableOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestAuth(t *testing.T) {
	_, _, addr := boot(t, server.Config{Tokens: map[string]string{"tok-a": "alpha"}})

	cdb, err := client.Open(client.Config{Addr: addr, Token: "tok-a"})
	if err != nil {
		t.Fatalf("good token rejected: %v", err)
	}
	if got := cdb.Tenant(); got != "alpha" {
		t.Errorf("tenant = %q, want alpha", got)
	}
	cdb.Close()

	if _, err := client.Open(client.Config{Addr: addr, Token: "wrong"}); err == nil {
		t.Fatal("bad token accepted")
	} else if !strings.Contains(err.Error(), "unknown auth token") {
		t.Errorf("bad token error = %v, want token rejection", err)
	}
}

func TestOpenAccessWithoutTokens(t *testing.T) {
	_, _, addr := boot(t, server.Config{})
	cdb, err := client.Open(client.Config{Addr: addr, Token: "anything"})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()
	if got := cdb.Tenant(); got != "public" {
		t.Errorf("tenant = %q, want public", got)
	}
}

func TestBadMagicRejected(t *testing.T) {
	_, _, addr := boot(t, server.Config{})
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// An HTTP-shaped blob instead of a Hello frame: the length prefix
	// parses as an absurd frame and the server hangs up with an error.
	c.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	buf := make([]byte, 1)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(buf); err == nil {
		// Server may answer with a Done-error frame before closing; the
		// connection must close either way.
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		for err == nil {
			_, err = c.Read(make([]byte, 4096))
		}
	}
}

func TestConnLimit(t *testing.T) {
	_, _, addr := boot(t, server.Config{MaxConns: 2})
	c1, err := client.Open(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := client.Open(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	_, err = client.Open(client.Config{Addr: addr})
	if err == nil {
		t.Fatal("third connection accepted over MaxConns=2")
	}
	if !strings.Contains(err.Error(), "connection limit") {
		t.Errorf("over-limit error = %v, want connection-limit rejection", err)
	}
}

func TestQueryRoundTripAndScan(t *testing.T) {
	db, _, addr := boot(t, server.Config{})
	tbl := mkTable(t, db, "t", 2)
	ctx := context.Background()
	var want []string
	for i := 0; i < 50; i++ {
		v := fmt.Sprintf("v%02d", i)
		want = append(want, v)
		if err := tbl.Upsert(ctx, umzi.Row{umzi.I64(int64(i)), umzi.Str(v)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Groom(); err != nil {
		t.Fatal(err)
	}

	cdb, err := client.Open(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()
	rows, err := cdb.Table("t").Query().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]string{}
	for rows.Next() {
		var k int64
		var v string
		if err := rows.Scan(&k, &v); err != nil {
			t.Fatal(err)
		}
		got[k] = v
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i, v := range want {
		if got[int64(i)] != v {
			t.Errorf("row %d = %q, want %q", i, got[int64(i)], v)
		}
	}
}

func TestRemoteCommitVisibleLocally(t *testing.T) {
	db, _, addr := boot(t, server.Config{})
	mkTable(t, db, "t", 1)
	ctx := context.Background()

	cdb, err := client.Open(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()
	tx, err := cdb.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Upsert("t", umzi.Row{umzi.I64(1), umzi.Str("one")}, umzi.Row{umzi.I64(2), umzi.Str("two")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	tbl, err := db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.LiveCount(); got != 2 {
		t.Errorf("LiveCount = %d after remote commit, want 2", got)
	}
}

func TestCreateTableAndCatalog(t *testing.T) {
	_, _, addr := boot(t, server.Config{})
	ctx := context.Background()
	cdb, err := client.Open(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()
	_, err = cdb.CreateTable(ctx, umzi.TableDef{
		Name:       "made",
		Columns:    []umzi.TableColumn{{Name: "k", Kind: umzi.KindInt64}},
		PrimaryKey: []string{"k"},
		ShardKey:   []string{"k"},
	}, client.TableOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	infos, err := cdb.Catalog(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Def.Name != "made" || infos[0].Shards != 3 {
		t.Fatalf("catalog = %+v, want one 3-shard table 'made'", infos)
	}
}

func TestCancelMidStream(t *testing.T) {
	db, _, addr := boot(t, server.Config{})
	tbl := mkTable(t, db, "big", 4)
	ctx := context.Background()
	// Big enough that the server cannot finish the stream into socket
	// buffers before the cancel arrives.
	pad := strings.Repeat("p", 1024)
	for lo := 0; lo < 20000; lo += 200 {
		batch := make([]umzi.Row, 200)
		for i := range batch {
			batch[i] = umzi.Row{umzi.I64(int64(lo + i)), umzi.Str(pad)}
		}
		if err := tbl.Upsert(ctx, batch...); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Groom(); err != nil {
		t.Fatal(err)
	}

	cdb, err := client.Open(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()

	// Close mid-stream: Cancel frame, drain, reusable connection.
	rows, err := cdb.Table("big").Query().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("early close: %v", err)
	}
	if err := cdb.Ping(ctx); err != nil {
		t.Fatalf("ping after cancel: %v", err)
	}

	// Context cancellation mid-stream must surface ctx.Err and leave the
	// pool usable.
	qctx, qcancel := context.WithCancel(ctx)
	rows, err = cdb.Table("big").Query().Run(qctx)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	qcancel()
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("Err after ctx cancel = %v, want context.Canceled", err)
	}
	rows.Close()
	if err := cdb.Ping(ctx); err != nil {
		t.Fatalf("ping after ctx cancel: %v", err)
	}

	// The server counted the cancels.
	snap := db.Metrics()
	if got := metricValue(snap, "server_query_cancels"); got < 2 {
		t.Errorf("server_query_cancels = %d, want >= 2", got)
	}
}

// TestCancelAtStreamCompletion exercises the standard defer-cancel()
// pattern: the context is canceled just as its stream completes, racing
// the Rows' context watcher against finish() releasing the connection.
// A late watcher firing must not touch the released connection — a
// stray Cancel frame or armed read deadline on the pooled conn would
// spuriously cancel the next query that checks it out.
func TestCancelAtStreamCompletion(t *testing.T) {
	db, _, addr := boot(t, server.Config{})
	tbl := mkTable(t, db, "small", 2)
	ctx := context.Background()
	rowsIn := make([]umzi.Row, 64)
	for i := range rowsIn {
		rowsIn[i] = umzi.Row{umzi.I64(int64(i)), umzi.Str("v")}
	}
	if err := tbl.Upsert(ctx, rowsIn...); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Groom(); err != nil {
		t.Fatal(err)
	}

	// One connection: every iteration reuses the conn the previous one
	// released, so any post-release poison hits the next query.
	cdb, err := client.Open(client.Config{Addr: addr, MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()

	for i := 0; i < 300; i++ {
		qctx, cancel := context.WithCancel(ctx)
		rows, err := cdb.Table("small").Query().Run(qctx)
		if err != nil {
			t.Fatalf("iter %d: run: %v", i, err)
		}
		n := 0
		for rows.Next() {
			n++
		}
		cancel() // races the watcher against stream completion
		if err := rows.Err(); err != nil {
			t.Fatalf("iter %d: stream err = %v", i, err)
		}
		if n != len(rowsIn) {
			t.Fatalf("iter %d: got %d rows, want %d", i, n, len(rowsIn))
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("iter %d: close: %v", i, err)
		}
	}
}

// TestDisconnectMidStream injects an abrupt client disconnect while the
// server is streaming: the reader loop must fire the cursor's cancel so
// shard workers release, and the server's goroutines must all return —
// the wire-level audit of the scatterStream release-error path.
func TestDisconnectMidStream(t *testing.T) {
	db, srv, addr := boot(t, server.Config{})
	tbl := mkTable(t, db, "big", 4)
	ctx := context.Background()
	pad := strings.Repeat("p", 1024)
	for lo := 0; lo < 40000; lo += 200 {
		batch := make([]umzi.Row, 200)
		for i := range batch {
			batch[i] = umzi.Row{umzi.I64(int64(lo + i)), umzi.Str(pad)}
		}
		if err := tbl.Upsert(ctx, batch...); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Groom(); err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		cdb, err := client.Open(client.Config{Addr: addr})
		if err != nil {
			t.Fatal(err)
		}
		rows, err := cdb.Table("big").Query().Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("round %d: no first row: %v", round, rows.Err())
		}
		// Abrupt disconnect: no Cancel frame, no drain — the socket just
		// dies under the stream.
		cdb.Close()
	}

	// Server-side goroutines must settle back: the reader observed the
	// disconnect, canceled the cursor, and the dispatcher exited.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after disconnects: before=%d now=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Each round must be accounted a cancel/disconnect. The last round's
	// dispatcher may still be inside its cancel-grace write deadline, so
	// poll rather than assert instantly.
	deadline = time.Now().Add(10 * time.Second)
	for {
		if got := metricValue(db.Metrics(), "server_query_cancels"); got >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server_query_cancels = %d, want >= 5",
				metricValue(db.Metrics(), "server_query_cancels"))
		}
		time.Sleep(50 * time.Millisecond)
	}
	_ = srv
}

func TestAdmissionRejectAndRecover(t *testing.T) {
	db, _, addr := boot(t, server.Config{
		Admission: server.AdmissionConfig{
			MaxLiveRecords: 10,
			SampleEvery:    5 * time.Millisecond,
		},
	})
	tbl := mkTable(t, db, "t", 1)
	ctx := context.Background()

	cdb, err := client.Open(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()
	ctbl := cdb.Table("t")

	// Under the threshold: writes flow.
	rows := make([]umzi.Row, 30)
	for i := range rows {
		rows[i] = umzi.Row{umzi.I64(int64(i)), umzi.Str("x")}
	}
	if err := ctbl.Upsert(ctx, rows...); err != nil {
		t.Fatalf("first write (pressure not yet sampled): %v", err)
	}

	// The live zone now exceeds MaxLiveRecords; once sampled, further
	// writes must bounce with a typed AdmissionError.
	deadline := time.Now().Add(5 * time.Second)
	var admErr *client.AdmissionError
	for {
		err := ctbl.Upsert(ctx, umzi.Row{umzi.I64(999), umzi.Str("y")})
		if errors.As(err, &admErr) {
			break
		}
		if err != nil {
			t.Fatalf("unexpected write error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("admission control never rejected over-threshold writes")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(admErr.Msg, "live_records") {
		t.Errorf("admission error %q does not name the signal", admErr.Msg)
	}

	// Grooming clears the live zone; writes must flow again.
	if err := tbl.Groom(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		err := ctbl.Upsert(ctx, umzi.Row{umzi.I64(1000), umzi.Str("z")})
		if err == nil {
			break
		}
		if !errors.As(err, &admErr) {
			t.Fatalf("unexpected write error during recovery: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("admission control never recovered after groom")
		}
		time.Sleep(10 * time.Millisecond)
	}

	snap := db.Metrics()
	if got := metricValue(snap, "server_admission_rejected"); got < 1 {
		t.Errorf("server_admission_rejected = %d, want >= 1", got)
	}
}

func TestAdmissionQueueWaitsForGroom(t *testing.T) {
	db, _, addr := boot(t, server.Config{
		Admission: server.AdmissionConfig{
			MaxLiveRecords: 10,
			Queue:          true,
			QueueTimeout:   10 * time.Second,
			SampleEvery:    5 * time.Millisecond,
		},
	})
	tbl := mkTable(t, db, "t", 1)
	ctx := context.Background()
	cdb, err := client.Open(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()
	ctbl := cdb.Table("t")

	rows := make([]umzi.Row, 30)
	for i := range rows {
		rows[i] = umzi.Row{umzi.I64(int64(i)), umzi.Str("x")}
	}
	if err := ctbl.Upsert(ctx, rows...); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the sampler see the pressure

	// This write should queue, then complete once the groomer clears the
	// pressure.
	writeDone := make(chan error, 1)
	go func() {
		writeDone <- ctbl.Upsert(ctx, umzi.Row{umzi.I64(999), umzi.Str("y")})
	}()
	select {
	case err := <-writeDone:
		// Either the sampler had not seen the pressure yet (admitted
		// clean) or queueing is broken; tell them apart by timing the next
		// one after pressure is certain.
		if err != nil {
			t.Fatalf("queued write failed: %v", err)
		}
		t.Skip("pressure not sampled before write; timing too tight on this machine")
	case <-time.After(300 * time.Millisecond):
		// Still queued — good.
	}
	if err := tbl.Groom(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-writeDone:
		if err != nil {
			t.Fatalf("queued write failed after groom: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued write never completed after groom cleared the pressure")
	}
}

func TestShutdownUnblocksStreams(t *testing.T) {
	db, srv, addr := boot(t, server.Config{})
	tbl := mkTable(t, db, "big", 2)
	ctx := context.Background()
	pad := strings.Repeat("p", 1024)
	for lo := 0; lo < 4000; lo += 200 {
		batch := make([]umzi.Row, 200)
		for i := range batch {
			batch[i] = umzi.Row{umzi.I64(int64(lo + i)), umzi.Str(pad)}
		}
		if err := tbl.Upsert(ctx, batch...); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Groom(); err != nil {
		t.Fatal(err)
	}

	cdb, err := client.Open(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()
	rows, err := cdb.Table("big").Query().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next() // leave the stream mid-flight

	sctx, scancel := context.WithTimeout(ctx, 10*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown with live stream: %v", err)
	}
	// The client sees the stream die, not hang.
	for rows.Next() {
	}
	if rows.Err() == nil {
		t.Error("stream survived server shutdown with no error")
	}
	rows.Close()
}

// TestStatementCacheHits repeats one remote query and checks the server
// served the later spec decodes from the statement cache — and that a
// different statement does not hit.
func TestStatementCacheHits(t *testing.T) {
	db, _, addr := boot(t, server.Config{})
	tbl := mkTable(t, db, "t", 2)
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if err := tbl.Upsert(ctx, umzi.Row{umzi.I64(int64(i)), umzi.Str("v")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Groom(); err != nil {
		t.Fatal(err)
	}

	cdb, err := client.Open(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()

	const reps = 5
	for i := 0; i < reps; i++ {
		rows, err := cdb.Table("t").Query().Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for rows.Next() {
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
	}
	snap := db.Metrics()
	if got := metricValue(snap, "server_stmt_cache_hits"); got != reps-1 {
		t.Errorf("server_stmt_cache_hits = %d, want %d", got, reps-1)
	}
	if got := metricValue(snap, "server_stmt_cache_misses"); got != 1 {
		t.Errorf("server_stmt_cache_misses = %d, want 1", got)
	}

	// A different statement is its own cache entry: one more miss.
	rows, err := cdb.Table("t").Query().Limit(3).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	rows.Close()
	if got := metricValue(db.Metrics(), "server_stmt_cache_misses"); got != 2 {
		t.Errorf("server_stmt_cache_misses after new statement = %d, want 2", got)
	}
}

func metricValue(snap *umzi.MetricsSnapshot, name string) int64 {
	var total int64
	for i := range snap.Metrics {
		if snap.Metrics[i].Name == name {
			total += snap.Metrics[i].Value
		}
	}
	return total
}
