package server

import (
	"fmt"
	"testing"

	"umzi/internal/exec"
	"umzi/internal/keyenc"
	"umzi/internal/wildfire"
)

func testSpecBytes(t testing.TB, n int64) []byte {
	t.Helper()
	spec := wildfire.QuerySpec{
		Filter:  exec.And(exec.Cmp("k", exec.OpGe, keyenc.I64(n)), exec.Cmp("v", exec.OpNe, keyenc.Str("x"))),
		GroupBy: []string{"v"},
		Aggs:    []exec.Agg{{Func: exec.Count}, {Func: exec.Sum, Col: "k"}},
		Limit:   100,
	}
	b, err := wildfire.MarshalQuerySpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestStmtCacheLRU(t *testing.T) {
	c := newStmtCache(2)
	specs := [][]byte{testSpecBytes(t, 0), testSpecBytes(t, 1), testSpecBytes(t, 2)}
	for i, raw := range specs {
		if _, ok := c.lookup("a", raw); ok {
			t.Fatalf("spec %d hit before store", i)
		}
		spec, err := wildfire.UnmarshalQuerySpec(raw)
		if err != nil {
			t.Fatal(err)
		}
		c.store("a", raw, spec)
	}
	// Capacity 2: spec 0 is the LRU victim; 1 and 2 remain.
	if _, ok := c.lookup("a", specs[0]); ok {
		t.Error("LRU victim still cached")
	}
	for _, i := range []int{1, 2} {
		spec, ok := c.lookup("a", specs[i])
		if !ok {
			t.Fatalf("spec %d evicted out of LRU order", i)
		}
		if spec.Limit != 100 || len(spec.Aggs) != 2 {
			t.Fatalf("spec %d decoded shape lost in cache: %+v", i, spec)
		}
	}
	// Tenants do not share entries.
	if _, ok := c.lookup("b", specs[1]); ok {
		t.Error("tenant b sees tenant a's statement")
	}
	if got := c.size(); got != 2 {
		t.Errorf("size = %d, want 2", got)
	}
	// A nil cache (disabled) misses and ignores stores.
	var nilCache *stmtCache
	if _, ok := nilCache.lookup("a", specs[0]); ok {
		t.Error("nil cache hit")
	}
	nilCache.store("a", specs[0], wildfire.QuerySpec{})
	if nilCache.size() != 0 {
		t.Error("nil cache grew")
	}
}

// BenchmarkStatementCache compares the per-query spec cost with and
// without the statement cache: a cached lookup against a full
// UnmarshalQuerySpec decode+validate of the same bytes.
func BenchmarkStatementCache(b *testing.B) {
	raw := testSpecBytes(b, 5)
	spec, err := wildfire.UnmarshalQuerySpec(raw)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wildfire.UnmarshalQuerySpec(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		c := newStmtCache(256)
		c.store("bench", raw, spec)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := c.lookup("bench", raw); !ok {
				b.Fatal("lookup missed")
			}
		}
	})
	b.Run("cached-parallel", func(b *testing.B) {
		c := newStmtCache(256)
		// Distinct tenants spread map pressure the way a busy multi-tenant
		// server would.
		for i := 0; i < 8; i++ {
			c.store(fmt.Sprintf("t%d", i), raw, spec)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, ok := c.lookup(fmt.Sprintf("t%d", i%8), raw); !ok {
					b.Fatal("lookup missed")
				}
				i++
			}
		})
	})
}
