package server

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"umzi"
)

// Write admission control — the serving-layer analogue of the resource
// isolation argument in the HTAP literature: OLTP ingest that outruns
// grooming degrades every analytical scan (the live zone grows without
// bound and the WAL replay tail lengthens), so the server refuses or
// queues new writes when the engine's own backpressure gauges cross
// thresholds, while reads keep flowing untouched.
//
// The signals come from the DB's metric registry, not the hot path: a
// sampler goroutine snapshots the registry on a short cadence and
// caches per-table pressure, so admit() on the commit path is a mutex
// and a map lookup. Sharded tables report per-shard gauges labeled
// "name/shard-NNN"; the sampler sums them per base table.

// AdmissionConfig configures write admission control. Zero thresholds
// disable the corresponding check; an all-zero config admits everything.
type AdmissionConfig struct {
	// MaxWALLag is the per-table ceiling on wal_watermark_lag (commit
	// sequences not yet durably groomed), summed across shards.
	MaxWALLag int64
	// MaxLiveRecords is the per-table ceiling on live_records (committed
	// but ungroomed rows), summed across shards.
	MaxLiveRecords int64
	// Queue makes over-threshold writes wait for pressure to clear (up
	// to QueueTimeout) instead of failing immediately.
	Queue bool
	// QueueTimeout bounds a queued write's wait; 0 means 2s.
	QueueTimeout time.Duration
	// SampleEvery is the pressure sampling cadence; 0 means 20ms.
	SampleEvery time.Duration
}

func (c AdmissionConfig) enabled() bool { return c.MaxWALLag > 0 || c.MaxLiveRecords > 0 }

// AdmissionError reports a write refused by admission control; it
// travels to clients as a StatusAdmission Done frame, where the client
// package rebuilds it so callers can errors.As and back off.
type AdmissionError struct {
	Table  string
	Reason string
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("admission control: table %s: %s", e.Table, e.Reason)
}

type admission struct {
	cfg AdmissionConfig
	db  *umzi.DB
	mx  *serverMetrics

	mu        sync.Mutex
	pressured map[string]string // base table -> reason, rebuilt per sample
	signal    chan struct{}     // closed and replaced on every sample tick
	started   bool

	stopCh chan struct{}
	doneCh chan struct{}
}

func newAdmission(db *umzi.DB, cfg AdmissionConfig, mx *serverMetrics) *admission {
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = 2 * time.Second
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 20 * time.Millisecond
	}
	return &admission{
		cfg:       cfg,
		db:        db,
		mx:        mx,
		pressured: make(map[string]string),
		signal:    make(chan struct{}),
		stopCh:    make(chan struct{}),
		doneCh:    make(chan struct{}),
	}
}

func (a *admission) start() {
	if !a.cfg.enabled() {
		return
	}
	a.mu.Lock()
	a.started = true
	a.mu.Unlock()
	a.sample() // prime before the first commit can ask
	go a.loop()
}

// stop ends the sampler and waits it out; a no-op when admission is
// disabled or start never ran.
func (a *admission) stop() {
	a.mu.Lock()
	started := a.started
	a.started = false
	a.mu.Unlock()
	if !started {
		return
	}
	close(a.stopCh)
	<-a.doneCh
}

func (a *admission) loop() {
	defer close(a.doneCh)
	t := time.NewTicker(a.cfg.SampleEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			a.sample()
		case <-a.stopCh:
			// Release any queued writers; admit re-checks and, with the
			// server context gone, they fail out of their own ctx select.
			a.publish(nil)
			return
		}
	}
}

// baseTable strips the sharding suffix off a metric's table label:
// "orders/shard-003" -> "orders".
func baseTable(label string) string {
	if i := strings.Index(label, "/shard-"); i >= 0 {
		return label[:i]
	}
	return label
}

// sample recomputes per-table pressure from one registry snapshot and
// wakes queued writers.
func (a *admission) sample() {
	snap := a.db.Metrics()
	walLag := map[string]int64{}
	liveRecs := map[string]int64{}
	for i := range snap.Metrics {
		m := &snap.Metrics[i]
		tbl := baseTable(m.Labels["table"])
		if tbl == "" {
			continue
		}
		switch m.Name {
		case "wal_watermark_lag":
			walLag[tbl] += m.Value
		case "live_records":
			liveRecs[tbl] += m.Value
		}
	}
	pressured := make(map[string]string)
	if a.cfg.MaxWALLag > 0 {
		for tbl, lag := range walLag {
			if lag > a.cfg.MaxWALLag {
				pressured[tbl] = fmt.Sprintf("wal_watermark_lag %d exceeds %d", lag, a.cfg.MaxWALLag)
			}
		}
	}
	if a.cfg.MaxLiveRecords > 0 {
		for tbl, n := range liveRecs {
			if n > a.cfg.MaxLiveRecords && pressured[tbl] == "" {
				pressured[tbl] = fmt.Sprintf("live_records %d exceeds %d", n, a.cfg.MaxLiveRecords)
			}
		}
	}
	a.publish(pressured)
}

// publish swaps in a new pressure map (nil keeps the old one) and wakes
// every queued writer to re-check.
func (a *admission) publish(pressured map[string]string) {
	a.mu.Lock()
	if pressured != nil {
		a.pressured = pressured
	}
	old := a.signal
	a.signal = make(chan struct{})
	a.mu.Unlock()
	close(old)
}

// check returns the pressure reason for a table ("" when clear) and the
// channel that will close at the next sample.
func (a *admission) check(table string) (string, chan struct{}) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pressured[table], a.signal
}

// admit decides one write against one table: nil to proceed, an
// *AdmissionError to refuse. In queue mode it waits — bounded by
// QueueTimeout and the context — for pressure to clear, re-checking on
// every sampler tick.
func (a *admission) admit(ctx context.Context, table string) error {
	if !a.cfg.enabled() {
		return nil
	}
	reason, signal := a.check(table)
	if reason == "" {
		return nil
	}
	if !a.cfg.Queue {
		return &AdmissionError{Table: table, Reason: reason}
	}
	a.mx.queueDepth.Add(1)
	defer a.mx.queueDepth.Add(-1)
	deadline := time.NewTimer(a.cfg.QueueTimeout)
	defer deadline.Stop()
	for {
		select {
		case <-signal:
			reason, signal = a.check(table)
			if reason == "" {
				return nil
			}
		case <-deadline.C:
			return &AdmissionError{Table: table, Reason: reason + " (queue timeout)"}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Pressured reports the tables currently under write pressure; tests
// and Figure S4 use it to observe the controller directly.
func (a *admission) Pressured() map[string]string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]string, len(a.pressured))
	for k, v := range a.pressured {
		out[k] = v
	}
	return out
}
