package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Labels attaches dimensions to a metric: by convention "table" for the
// shard-qualified table name (e.g. "orders/shard-002") and "plan" for
// query plan types. Subsystem is carried in the metric name prefix
// (wal_, groom_, query_, exec_, index_, cache_, live_).
type Labels map[string]string

// metricKind discriminates registry entries.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindGaugeFunc metricKind = "gauge" // exposed as a gauge
	kindHistogram metricKind = "histogram"
)

// entry is one registered metric instance (name + one label set).
type entry struct {
	name    string
	help    string
	unit    string
	kind    metricKind
	labels  Labels
	labelID string // canonical "k=v,k=v" identity suffix

	counter *Counter
	gauge   *Gauge
	fn      func() int64
	hist    *Histogram
}

// family tracks per-name invariants: one name has one kind, one help
// string, one unit, and one label key set across every instance.
type family struct {
	kind      metricKind
	help      string
	unit      string
	labelKeys string
}

// Registry is a hierarchical metric registry. Identity is metric name
// plus the full label set; registering the same identity again returns
// the existing instance (so a reopened table keeps accumulating into
// its metrics), while conflicting re-registration — same name with a
// different type, unit, or label key set, or an invalid name — panics:
// those are programming errors, caught by the tests in this package.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	entries  map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		entries:  make(map[string]*entry),
	}
}

// Counter returns the counter registered under name+labels, creating
// it on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	e := r.register(name, help, "", kindCounter, labels)
	return e.counter
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	e := r.register(name, help, "", kindGauge, labels)
	return e.gauge
}

// GaugeFunc registers a gauge whose value is read by calling fn at
// snapshot time. Re-registering the same identity replaces fn, so a
// table closed and reopened in-process reports through its live engine.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() int64) {
	e := r.register(name, help, "", kindGaugeFunc, labels)
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram registered under name+labels,
// creating it on first use. unit names what observations measure
// ("ns", "records", "bytes", ...) and is carried into snapshots.
func (r *Registry) Histogram(name, help, unit string, labels Labels) *Histogram {
	e := r.register(name, help, unit, kindHistogram, labels)
	return e.hist
}

func (r *Registry) register(name, help, unit string, kind metricKind, labels Labels) *entry {
	if err := checkName(name); err != nil {
		panic(fmt.Sprintf("obs: metric %q: %v", name, err))
	}
	for k := range labels {
		if err := checkName(k); err != nil {
			panic(fmt.Sprintf("obs: metric %q label %q: %v", name, k, err))
		}
	}
	labelID := canonicalLabels(labels)
	keys := labelKeySet(labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{kind: kind, help: help, unit: unit, labelKeys: keys}
		r.families[name] = fam
	} else {
		if fam.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, fam.kind))
		}
		if fam.labelKeys != keys {
			panic(fmt.Sprintf("obs: metric %q re-registered with label keys {%s}, was {%s}", name, keys, fam.labelKeys))
		}
		if fam.unit != unit {
			panic(fmt.Sprintf("obs: metric %q re-registered with unit %q, was %q", name, unit, fam.unit))
		}
	}
	id := name + "{" + labelID + "}"
	if e, ok := r.entries[id]; ok {
		return e
	}
	e := &entry{
		name:    name,
		help:    help,
		unit:    unit,
		kind:    kind,
		labels:  cloneLabels(labels),
		labelID: labelID,
	}
	switch kind {
	case kindCounter:
		e.counter = &Counter{}
	case kindGauge:
		e.gauge = &Gauge{}
	case kindHistogram:
		e.hist = &Histogram{}
	}
	r.entries[id] = e
	return e
}

// MetricSnapshot is one metric instance at snapshot time.
type MetricSnapshot struct {
	Name   string        `json:"name"`
	Help   string        `json:"help,omitempty"`
	Type   string        `json:"type"`
	Unit   string        `json:"unit,omitempty"`
	Labels Labels        `json:"labels,omitempty"`
	Value  int64         `json:"value,omitempty"`
	Hist   *HistSnapshot `json:"hist,omitempty"`
}

// Snapshot is a consistent-enough point-in-time view of a registry:
// each metric is read atomically, ordered by name then labels.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot reads every registered metric. Gauge funcs run outside the
// registry lock, so they may block briefly (e.g. take an engine mutex)
// but must not register new metrics concurrently with themselves.
func (r *Registry) Snapshot() *Snapshot {
	type view struct {
		e  *entry
		fn func() int64 // copied under the lock: GaugeFunc may replace it
	}
	r.mu.Lock()
	views := make([]view, 0, len(r.entries))
	for _, e := range r.entries {
		views = append(views, view{e: e, fn: e.fn})
	}
	r.mu.Unlock()

	sort.Slice(views, func(i, j int) bool {
		if views[i].e.name != views[j].e.name {
			return views[i].e.name < views[j].e.name
		}
		return views[i].e.labelID < views[j].e.labelID
	})
	snap := &Snapshot{Metrics: make([]MetricSnapshot, 0, len(views))}
	for _, v := range views {
		e := v.e
		m := MetricSnapshot{
			Name:   e.name,
			Help:   e.help,
			Type:   string(e.kind),
			Unit:   e.unit,
			Labels: cloneLabels(e.labels),
		}
		switch {
		case e.counter != nil:
			m.Value = e.counter.Load()
		// fn before gauge: a GaugeFunc entry also carries the (unused)
		// gauge its shared "gauge" kind allocates, and the func must win.
		case v.fn != nil:
			m.Value = v.fn()
		case e.gauge != nil:
			m.Value = e.gauge.Load()
		case e.hist != nil:
			h := e.hist.Snapshot()
			m.Hist = &h
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	return snap
}

// Get returns the first snapshotted metric matching name and (subset)
// labels, or nil. A convenience for tests and tools.
func (s *Snapshot) Get(name string, labels Labels) *MetricSnapshot {
	for i := range s.Metrics {
		m := &s.Metrics[i]
		if m.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if m.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return m
		}
	}
	return nil
}

// Sum adds up Value (counters/gauges) or Hist.Count across every
// instance of name whose labels include the given subset.
func (s *Snapshot) Sum(name string, labels Labels) int64 {
	var total int64
	for i := range s.Metrics {
		m := &s.Metrics[i]
		if m.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if m.Labels[k] != v {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if m.Hist != nil {
			total += m.Hist.Count
		} else {
			total += m.Value
		}
	}
	return total
}

// checkName enforces the naming rule shared by metric and label names:
// ^[a-z][a-z0-9_]*$.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("empty name")
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z':
		case i > 0 && (c == '_' || (c >= '0' && c <= '9')):
		default:
			return fmt.Errorf("must match ^[a-z][a-z0-9_]*$")
		}
	}
	return nil
}

func canonicalLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, ",")
}

func labelKeySet(labels Labels) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func cloneLabels(labels Labels) Labels {
	if len(labels) == 0 {
		return nil
	}
	out := make(Labels, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	return out
}
