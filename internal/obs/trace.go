package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// QueryTrace captures one query's execution profile: the plan the
// compiler chose, per-shard spans, and cross-shard totals for blocks
// read vs. synopsis-skipped, live-zone union size, and secondary-index
// rows back-checked against the primary. A trace is attached to a
// query with Query.Explain(); the engine writes into it from every
// shard worker concurrently, so counters are atomic and spans append
// under a mutex. Every method is nil-receiver safe: an untraced query
// pays a nil check per call site and nothing else.
type QueryTrace struct {
	mu    sync.Mutex
	plan  string
	index string
	spans []TraceSpan

	blocksRead         atomic.Int64
	blocksSkipped      atomic.Int64
	blocksBloomSkipped atomic.Int64
	liveUnion          atomic.Int64
	backChecked        atomic.Int64
	backCheckDropped   atomic.Int64
	rowsEmitted        atomic.Int64
}

// TraceSpan is one shard's slice of a query.
type TraceSpan struct {
	Shard              string        `json:"shard"`
	BlocksRead         int64         `json:"blocks_read"`
	BlocksSkipped      int64         `json:"blocks_skipped"`
	BlocksBloomSkipped int64         `json:"blocks_bloom_skipped"`
	LiveUnion          int64         `json:"live_union"`
	Elapsed            time.Duration `json:"elapsed_ns"`
}

// NewQueryTrace returns an empty trace ready to attach to a query.
func NewQueryTrace() *QueryTrace { return &QueryTrace{} }

// SetPlan records the compiled plan mode ("point-get", "index-scan",
// "index-only", "exec") and the chosen index name, if any.
func (t *QueryTrace) SetPlan(plan, index string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.plan, t.index = plan, index
	t.mu.Unlock()
}

// AddSpan appends one shard's span.
func (t *QueryTrace) AddSpan(s TraceSpan) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// AddBlocksRead counts blocks fetched and scanned for the query.
func (t *QueryTrace) AddBlocksRead(n int64) {
	if t != nil {
		t.blocksRead.Add(n)
	}
}

// AddBlocksSkipped counts blocks the min/max synopsis excluded.
func (t *QueryTrace) AddBlocksSkipped(n int64) {
	if t != nil {
		t.blocksSkipped.Add(n)
	}
}

// AddBlocksBloomSkipped counts the subset of skipped blocks that a
// per-column bloom filter excluded (the min/max synopsis admitted them).
func (t *QueryTrace) AddBlocksBloomSkipped(n int64) {
	if t != nil {
		t.blocksBloomSkipped.Add(n)
	}
}

// AddLiveUnion counts live-zone rows unioned over the groomed zones.
func (t *QueryTrace) AddLiveUnion(n int64) {
	if t != nil {
		t.liveUnion.Add(n)
	}
}

// AddBackChecked counts secondary-index entries verified against the
// primary at the query timestamp.
func (t *QueryTrace) AddBackChecked(n int64) {
	if t != nil {
		t.backChecked.Add(n)
	}
}

// AddBackCheckDropped counts back-checked entries the primary rejected
// (superseded or deleted at the query timestamp).
func (t *QueryTrace) AddBackCheckDropped(n int64) {
	if t != nil {
		t.backCheckDropped.Add(n)
	}
}

// AddRowsEmitted counts rows actually streamed to the caller.
func (t *QueryTrace) AddRowsEmitted(n int64) {
	if t != nil {
		t.rowsEmitted.Add(n)
	}
}

// TraceSnapshot is an immutable copy of a QueryTrace.
type TraceSnapshot struct {
	Plan               string      `json:"plan"`
	Index              string      `json:"index,omitempty"`
	BlocksRead         int64       `json:"blocks_read"`
	BlocksSkipped      int64       `json:"blocks_skipped"`
	BlocksBloomSkipped int64       `json:"blocks_bloom_skipped"`
	LiveUnion          int64       `json:"live_union"`
	BackChecked        int64       `json:"back_checked"`
	BackCheckDropped   int64       `json:"back_check_dropped"`
	RowsEmitted        int64       `json:"rows_emitted"`
	Spans              []TraceSpan `json:"spans,omitempty"`
}

// Snapshot copies the trace. Counts settle as the query's rows are
// consumed; snapshot after draining the cursor for final numbers.
func (t *QueryTrace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	spans := make([]TraceSpan, len(t.spans))
	copy(spans, t.spans)
	plan, index := t.plan, t.index
	t.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool { return spans[i].Shard < spans[j].Shard })
	return TraceSnapshot{
		Plan:               plan,
		Index:              index,
		BlocksRead:         t.blocksRead.Load(),
		BlocksSkipped:      t.blocksSkipped.Load(),
		BlocksBloomSkipped: t.blocksBloomSkipped.Load(),
		LiveUnion:          t.liveUnion.Load(),
		BackChecked:        t.backChecked.Load(),
		BackCheckDropped:   t.backCheckDropped.Load(),
		RowsEmitted:        t.rowsEmitted.Load(),
		Spans:              spans,
	}
}

// String renders the trace human-readably, one line plus one per span.
func (t *QueryTrace) String() string {
	if t == nil {
		return "<no trace>"
	}
	s := t.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "plan=%s", s.Plan)
	if s.Index != "" {
		fmt.Fprintf(&b, " index=%s", s.Index)
	}
	fmt.Fprintf(&b, " blocks=%d read/%d skipped (%d by bloom) live_union=%d back_checked=%d (%d dropped) rows=%d",
		s.BlocksRead, s.BlocksSkipped, s.BlocksBloomSkipped, s.LiveUnion, s.BackChecked, s.BackCheckDropped, s.RowsEmitted)
	for _, sp := range s.Spans {
		fmt.Fprintf(&b, "\n  shard %s: blocks=%d read/%d skipped live_union=%d in %s",
			sp.Shard, sp.BlocksRead, sp.BlocksSkipped, sp.LiveUnion, sp.Elapsed)
	}
	return b.String()
}
