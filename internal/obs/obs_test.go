package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Fatalf("nil counter Load = %d", c.Load())
	}
	var g *Gauge
	g.Set(7)
	g.Add(-2)
	if g.Load() != 0 {
		t.Fatalf("nil gauge Load = %d", g.Load())
	}
	var h *Histogram
	h.Observe(42)
	h.ObserveSince(time.Now())
	if snap := h.Snapshot(); snap != (HistSnapshot{}) {
		t.Fatalf("nil histogram Snapshot = %+v", snap)
	}
	var tr *QueryTrace
	tr.SetPlan("exec", "")
	tr.AddSpan(TraceSpan{})
	tr.AddBlocksRead(1)
	tr.AddBlocksSkipped(1)
	tr.AddLiveUnion(1)
	tr.AddBackChecked(1)
	tr.AddBackCheckDropped(1)
	tr.AddRowsEmitted(1)
	if s := tr.Snapshot(); s.BlocksRead != 0 || len(s.Spans) != 0 {
		t.Fatalf("nil trace Snapshot = %+v", s)
	}
	if tr.String() != "<no trace>" {
		t.Fatalf("nil trace String = %q", tr.String())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := &Histogram{}
	// 1..1000 in a scrambled order: nearest-rank must sort, not trust
	// insertion order.
	for i := int64(0); i < 1000; i++ {
		h.Observe((i*617)%1000 + 1)
	}
	snap := h.Snapshot()
	if snap.Count != 1000 {
		t.Errorf("Count = %d, want 1000", snap.Count)
	}
	if want := int64(1000 * 1001 / 2); snap.Sum != want {
		t.Errorf("Sum = %d, want %d", snap.Sum, want)
	}
	if snap.Min != 1 || snap.Max != 1000 {
		t.Errorf("Min/Max = %d/%d, want 1/1000", snap.Min, snap.Max)
	}
	if snap.Mean != 500 {
		t.Errorf("Mean = %d, want 500", snap.Mean)
	}
	// Nearest rank over exactly 1000 distinct samples is exact.
	if snap.P50 != 500 || snap.P90 != 900 || snap.P99 != 990 {
		t.Errorf("P50/P90/P99 = %d/%d/%d, want 500/900/990", snap.P50, snap.P90, snap.P99)
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	h := &Histogram{}
	h.Observe(77)
	snap := h.Snapshot()
	want := HistSnapshot{Count: 1, Sum: 77, Min: 77, Max: 77, Mean: 77, P50: 77, P90: 77, P99: 77}
	if snap != want {
		t.Fatalf("Snapshot = %+v, want %+v", snap, want)
	}
}

func TestHistogramReservoirKeepsRecent(t *testing.T) {
	h := &Histogram{}
	const reservoir = histStripes * histStripeSlots
	// Fill the reservoir twice over with 5s, then overwrite it with 9s:
	// percentiles must reflect the recent window, totals the lifetime.
	for i := 0; i < 2*reservoir; i++ {
		h.Observe(5)
	}
	for i := 0; i < reservoir; i++ {
		h.Observe(9)
	}
	snap := h.Snapshot()
	if snap.Count != 3*reservoir {
		t.Errorf("Count = %d, want %d", snap.Count, 3*reservoir)
	}
	if want := int64(2*reservoir*5 + reservoir*9); snap.Sum != want {
		t.Errorf("Sum = %d, want %d", snap.Sum, want)
	}
	if snap.P50 != 9 || snap.P99 != 9 || snap.Min != 9 {
		t.Errorf("recent window not reflected: P50=%d P99=%d Min=%d, want all 9", snap.P50, snap.P99, snap.Min)
	}
	if snap.Max != 9 {
		t.Errorf("Max = %d, want 9", snap.Max)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < perWorker; i++ {
				h.Observe(i%100 + 1) // values 1..100
				if i%256 == 0 {
					h.Snapshot() // snapshots race with writers by design
				}
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != workers*perWorker {
		t.Errorf("Count = %d, want %d", snap.Count, workers*perWorker)
	}
	var wantSum int64
	for i := int64(0); i < perWorker; i++ {
		wantSum += i%100 + 1
	}
	wantSum *= workers
	if snap.Sum != wantSum {
		t.Errorf("Sum = %d, want %d", snap.Sum, wantSum)
	}
	if snap.Max != 100 {
		t.Errorf("Max = %d, want 100", snap.Max)
	}
	if snap.P50 < 1 || snap.P50 > 100 || snap.P99 < snap.P50 {
		t.Errorf("implausible percentiles: %+v", snap)
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestRegistryNameRules(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "Bad", "9lives", "has-dash", "has space", "_lead"} {
		mustPanic(t, "metric name "+bad, func() { r.Counter(bad, "", nil) })
	}
	mustPanic(t, "label key", func() { r.Counter("ok_name", "", Labels{"Bad-Key": "v"}) })
	// Label values are unconstrained (they carry shard paths like
	// "orders/shard-000").
	r.Counter("ok_name", "", Labels{"table": "orders/shard-000"})
}

func TestRegistryFamilyInvariants(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests", "help", Labels{"table": "a"})
	mustPanic(t, "kind conflict", func() { r.Gauge("requests", "help", Labels{"table": "a"}) })
	mustPanic(t, "label keyset conflict", func() { r.Counter("requests", "help", Labels{"plan": "x"}) })
	r.Histogram("lat", "h", "ns", nil)
	mustPanic(t, "unit conflict", func() { r.Histogram("lat", "h", "records", nil) })
}

func TestRegistrySameIdentitySameInstance(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("hits", "", Labels{"table": "t"})
	c1.Add(3)
	c2 := r.Counter("hits", "", Labels{"table": "t"})
	if c1 != c2 {
		t.Fatalf("same identity returned distinct instances")
	}
	c2.Add(4)
	if c1.Load() != 7 {
		t.Fatalf("accumulation across re-registration broken: %d", c1.Load())
	}
	// Distinct label values are distinct instances.
	other := r.Counter("hits", "", Labels{"table": "u"})
	if other == c1 || other.Load() != 0 {
		t.Fatalf("distinct labels should get a fresh counter")
	}
}

func TestGaugeFuncReplacement(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("live", "", nil, func() int64 { return 1 })
	if got := r.Snapshot().Get("live", nil).Value; got != 1 {
		t.Fatalf("gauge func = %d, want 1", got)
	}
	// A reopened engine re-registers and must win.
	r.GaugeFunc("live", "", nil, func() int64 { return 2 })
	if got := r.Snapshot().Get("live", nil).Value; got != 2 {
		t.Fatalf("replaced gauge func = %d, want 2", got)
	}
}

func TestSnapshotGetAndSum(t *testing.T) {
	r := NewRegistry()
	r.Counter("rows", "", Labels{"table": "t/shard-000"}).Add(10)
	r.Counter("rows", "", Labels{"table": "t/shard-001"}).Add(20)
	r.Histogram("lat", "", "ns", Labels{"table": "t/shard-000"}).Observe(5)
	snap := r.Snapshot()
	if m := snap.Get("rows", Labels{"table": "t/shard-001"}); m == nil || m.Value != 20 {
		t.Fatalf("Get with labels = %+v", m)
	}
	if m := snap.Get("rows", nil); m == nil {
		t.Fatalf("Get with subset labels found nothing")
	}
	if snap.Get("absent", nil) != nil {
		t.Fatalf("Get(absent) should be nil")
	}
	if got := snap.Sum("rows", nil); got != 30 {
		t.Fatalf("Sum(rows) = %d, want 30", got)
	}
	// Histograms sum their observation count.
	if got := snap.Sum("lat", nil); got != 1 {
		t.Fatalf("Sum(lat) = %d, want 1", got)
	}
}

// buildGoldenRegistry assembles a small fixed registry shared by the
// exposition golden tests.
func buildGoldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("wal_appends", "segment appends", Labels{"table": "orders/shard-000"}).Add(12)
	r.Gauge("live_records", "rows in the live zone", Labels{"table": "orders/shard-000"}).Set(34)
	h := r.Histogram("wal_sync_ns", "segment write latency", "ns", Labels{"table": "orders/shard-000"})
	for _, v := range []int64{1000000, 2000000, 3000000, 4000000} {
		h.Observe(v)
	}
	r.Counter("store_reads", "object reads", nil).Add(9)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, buildGoldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# HELP live_records rows in the live zone
# TYPE live_records gauge
live_records{table="orders/shard-000"} 34
# HELP store_reads object reads
# TYPE store_reads counter
store_reads 9
# HELP wal_appends segment appends
# TYPE wal_appends counter
wal_appends{table="orders/shard-000"} 12
# HELP wal_sync_ns segment write latency
# TYPE wal_sync_ns summary
wal_sync_ns{table="orders/shard-000",quantile="0.5"} 2000000
wal_sync_ns{table="orders/shard-000",quantile="0.9"} 4000000
wal_sync_ns{table="orders/shard-000",quantile="0.99"} 4000000
wal_sync_ns_sum{table="orders/shard-000"} 10000000
wal_sync_ns_count{table="orders/shard-000"} 4
`
	got := b.String()
	if got != want {
		t.Errorf("prometheus exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHandlerFormats(t *testing.T) {
	reg := buildGoldenRegistry()
	h := Handler(reg)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "wal_appends{table=\"orders/shard-000\"} 12") {
		t.Errorf("prometheus body missing counter:\n%s", rec.Body.String())
	}

	jsonReq := httptest.NewRequest("GET", "/metrics?format=json", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, jsonReq)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("json body: %v", err)
	}
	if m := snap.Get("wal_appends", nil); m == nil || m.Value != 12 {
		t.Errorf("json snapshot Get(wal_appends) = %+v", m)
	}
	if m := snap.Get("wal_sync_ns", nil); m == nil || m.Hist == nil || m.Hist.Count != 4 {
		t.Errorf("json snapshot histogram = %+v", m)
	}

	acceptReq := httptest.NewRequest("GET", "/metrics", nil)
	acceptReq.Header.Set("Accept", "application/json")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, acceptReq)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Accept-negotiated Content-Type = %q", ct)
	}
}

func TestFormatTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("rows", "", Labels{"table": "orders"}).Add(1)
	r.Counter("rows", "", Labels{"table": "orders/shard-000"}).Add(2)
	r.Counter("rows", "", Labels{"table": "ordersx"}).Add(3)
	r.Histogram("lat", "", "ns", Labels{"table": "orders"}).Observe(1500000)

	out := FormatTable(r.Snapshot(), "")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("unfiltered table has %d lines, want 5 (header + 4 metrics):\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "METRIC") {
		t.Errorf("missing header: %q", lines[0])
	}
	// Columns align: every row's TYPE column starts at the same offset.
	if idx := strings.Index(lines[0], "TYPE"); idx < 0 {
		t.Errorf("header lacks TYPE column")
	} else {
		for _, ln := range lines[1:] {
			if len(ln) < idx {
				t.Errorf("row shorter than header: %q", ln)
			}
		}
	}
	if !strings.Contains(out, "1.500ms") {
		t.Errorf("ns histogram not rendered in ms:\n%s", out)
	}

	filtered := FormatTable(r.Snapshot(), "orders")
	if strings.Contains(filtered, "ordersx") {
		t.Errorf("filter leaked ordersx:\n%s", filtered)
	}
	if !strings.Contains(filtered, "orders/shard-000") {
		t.Errorf("filter dropped the shard of the filtered table:\n%s", filtered)
	}

	if got := FormatTable(NewRegistry().Snapshot(), ""); got != "no metrics\n" {
		t.Errorf("empty table = %q", got)
	}
}

func TestQueryTrace(t *testing.T) {
	tr := NewQueryTrace()
	tr.SetPlan("index-scan", "by_batch")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr.AddBlocksRead(2)
			tr.AddBlocksSkipped(3)
			tr.AddLiveUnion(1)
			tr.AddBackChecked(5)
			tr.AddBackCheckDropped(1)
			tr.AddRowsEmitted(4)
			tr.AddSpan(TraceSpan{Shard: "t/shard-00" + string(rune('0'+w)), BlocksRead: 2, BlocksSkipped: 3})
		}(w)
	}
	wg.Wait()
	s := tr.Snapshot()
	if s.Plan != "index-scan" || s.Index != "by_batch" {
		t.Errorf("plan = %q/%q", s.Plan, s.Index)
	}
	if s.BlocksRead != 8 || s.BlocksSkipped != 12 || s.LiveUnion != 4 ||
		s.BackChecked != 20 || s.BackCheckDropped != 4 || s.RowsEmitted != 16 {
		t.Errorf("totals = %+v", s)
	}
	if len(s.Spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(s.Spans))
	}
	for i := 1; i < len(s.Spans); i++ {
		if s.Spans[i-1].Shard > s.Spans[i].Shard {
			t.Errorf("spans not sorted: %q > %q", s.Spans[i-1].Shard, s.Spans[i].Shard)
		}
	}
	str := tr.String()
	for _, want := range []string{"plan=index-scan", "index=by_batch", "8 read/12 skipped", "shard t/shard-000"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() missing %q:\n%s", want, str)
		}
	}
}
