package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// Handler serves the registry over HTTP: Prometheus text format by
// default (also under ?format=prom) and JSON under ?format=json or
// when the client asks for application/json. Mount it wherever the
// embedding process serves HTTP:
//
//	http.Handle("/metrics", obs.Handler(reg))
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		format := req.URL.Query().Get("format")
		if format == "json" || (format == "" && strings.Contains(req.Header.Get("Accept"), "application/json")) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, snap)
	})
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format. Histograms are rendered as summaries: quantile series plus
// _sum and _count. Metric names are written as registered (no extra
// namespace prefix); histogram names carry their unit as a suffix
// already (e.g. wal_sync_latency_ns).
func WritePrometheus(w io.Writer, snap *Snapshot) error {
	var lastName string
	for i := range snap.Metrics {
		m := &snap.Metrics[i]
		if m.Name != lastName {
			lastName = m.Name
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
					return err
				}
			}
			promType := m.Type
			if promType == "histogram" {
				promType = "summary"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, promType); err != nil {
				return err
			}
		}
		if m.Hist == nil {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.Name, promLabels(m.Labels, "", ""), m.Value); err != nil {
				return err
			}
			continue
		}
		h := m.Hist
		for _, q := range []struct {
			q string
			v int64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.Name, promLabels(m.Labels, "quantile", q.q), q.v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", m.Name, promLabels(m.Labels, "", ""), h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, promLabels(m.Labels, "", ""), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promLabels renders a label set (plus one optional extra pair) as
// {k="v",...}, or "" when empty.
func promLabels(labels Labels, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if extraK != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraK, extraV)
	}
	b.WriteByte('}')
	return b.String()
}

// FormatTable renders a snapshot as an aligned human-readable table —
// the umzi-inspect -metrics view. tableFilter, when non-empty, keeps
// only metrics whose "table" label equals it or is one of its shards
// (prefix match on "<filter>/"). Histogram nanosecond units are shown
// as milliseconds.
func FormatTable(snap *Snapshot, tableFilter string) string {
	rows := [][]string{{"METRIC", "LABELS", "TYPE", "VALUE", "COUNT", "P50", "P90", "P99", "MAX"}}
	for i := range snap.Metrics {
		m := &snap.Metrics[i]
		if tableFilter != "" {
			t := m.Labels["table"]
			if t != tableFilter && !strings.HasPrefix(t, tableFilter+"/") {
				continue
			}
		}
		row := []string{m.Name, canonicalLabels(m.Labels), m.Type, "", "", "", "", "", ""}
		if m.Hist == nil {
			row[3] = fmt.Sprintf("%d", m.Value)
		} else {
			h := m.Hist
			row[4] = fmt.Sprintf("%d", h.Count)
			row[5] = formatUnit(h.P50, m.Unit)
			row[6] = formatUnit(h.P90, m.Unit)
			row[7] = formatUnit(h.P99, m.Unit)
			row[8] = formatUnit(h.Max, m.Unit)
		}
		rows = append(rows, row)
	}
	if len(rows) == 1 {
		return "no metrics\n"
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var b strings.Builder
	for _, row := range rows {
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if c < len(row)-1 {
				b.WriteString(strings.Repeat(" ", widths[c]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// formatUnit renders one histogram value: nanoseconds become
// fractional milliseconds, everything else prints raw.
func formatUnit(v int64, unit string) string {
	if unit == "ns" {
		return fmt.Sprintf("%.3fms", float64(v)/1e6)
	}
	return fmt.Sprintf("%d", v)
}
