// Package obs is the engine-wide observability substrate: dependency-
// free metric primitives (atomic counters, gauges, lock-free sharded
// histograms with nearest-rank percentiles), a hierarchical registry
// keyed by metric name + labels (table/shard/subsystem), per-query
// traces, and exposition in Prometheus text format, JSON, and an
// aligned human-readable table.
//
// Everything in this package is safe for concurrent use and cheap
// enough for hot paths: recording is one or two atomic operations and
// never allocates. All record-side methods are nil-receiver safe, so a
// nil *Counter / *Histogram / *QueryTrace is a true no-op — callers
// instrument unconditionally and pay nothing when a signal is off.
package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta. No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value (0 on a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram reservoir geometry: histStripes sample rings written
// round-robin so concurrent recorders touch different cache lines,
// histStripeSlots slots each. The reservoir keeps the most recent
// histStripes*histStripeSlots observations for percentile estimation;
// count/sum/max are exact over the histogram's whole lifetime.
const (
	histStripes     = 8
	histStripeSlots = 1024
)

// histStripe is one padded ring of raw samples.
type histStripe struct {
	slots [histStripeSlots]atomic.Int64
	_     [64]byte // keep stripes off each other's cache lines
}

// Histogram records int64 observations (latencies in nanoseconds, batch
// sizes in records, ...) lock-free and serves nearest-rank percentile
// snapshots. Recording is two atomic adds plus one atomic store (plus a
// CAS loop only when a new maximum is set); there are no mutexes on the
// record path.
// Observations are assumed non-negative (they are counts, sizes, and
// durations); a negative value would confuse the zero-initialized max.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	max   atomic.Int64
	pos   atomic.Uint64
	rings [histStripes]histStripe
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	i := h.pos.Add(1) - 1
	h.rings[i%histStripes].slots[(i/histStripes)%histStripeSlots].Store(v)
}

// ObserveSince records the elapsed nanoseconds since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(int64(time.Since(start)))
	}
}

// HistSnapshot is a point-in-time summary of a Histogram. Values carry
// the histogram's unit (see Registry.Histogram).
type HistSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	Mean  int64 `json:"mean"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
}

// Snapshot summarizes the histogram. Count/Sum/Max are exact over the
// histogram's lifetime; Min and the percentiles are nearest-rank over
// the retained sample reservoir. Returns a zero snapshot on a nil
// receiver or before any observation.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	count := h.count.Load()
	if count == 0 {
		return HistSnapshot{}
	}
	filled := h.pos.Load()
	if filled > histStripes*histStripeSlots {
		filled = histStripes * histStripeSlots
	}
	samples := make([]int64, 0, filled)
	for i := uint64(0); i < filled; i++ {
		samples = append(samples, h.rings[i%histStripes].slots[(i/histStripes)%histStripeSlots].Load())
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	snap := HistSnapshot{
		Count: count,
		Sum:   h.sum.Load(),
		Min:   samples[0],
		Max:   h.max.Load(),
		P50:   nearestRank(samples, 0.50),
		P90:   nearestRank(samples, 0.90),
		P99:   nearestRank(samples, 0.99),
	}
	snap.Mean = snap.Sum / count
	return snap
}

// nearestRank returns the nearest-rank percentile of sorted samples —
// the same estimator internal/workload used before it moved here.
func nearestRank(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
