package keyenc

import (
	"bytes"
	"math"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInt64:   "int64",
		KindUint64:  "uint64",
		KindFloat64: "float64",
		KindBytes:   "bytes",
		KindString:  "string",
		KindBool:    "bool",
		Kind(99):    "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindFixed(t *testing.T) {
	fixed := map[Kind]bool{
		KindInt64: true, KindUint64: true, KindFloat64: true, KindBool: true,
		KindBytes: false, KindString: false,
	}
	for k, want := range fixed {
		if got := k.Fixed(); got != want {
			t.Errorf("%v.Fixed() = %v, want %v", k, got, want)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if I64(-7).Int() != -7 {
		t.Error("I64 accessor")
	}
	if U64(7).Uint() != 7 {
		t.Error("U64 accessor")
	}
	if F64(2.5).Float() != 2.5 {
		t.Error("F64 accessor")
	}
	if string(Str("hi").Bytes()) != "hi" {
		t.Error("Str accessor")
	}
	if string(Raw([]byte{1, 2}).Bytes()) != "\x01\x02" {
		t.Error("Raw accessor")
	}
	if !B(true).Bool() || B(false).Bool() {
		t.Error("B accessor")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic on kind mismatch", name)
			}
		}()
		f()
	}
	mustPanic("Int on string", func() { Str("x").Int() })
	mustPanic("Uint on int", func() { I64(1).Uint() })
	mustPanic("Float on bool", func() { B(true).Float() })
	mustPanic("Bytes on int", func() { I64(1).Bytes() })
	mustPanic("Bool on bytes", func() { Raw(nil).Bool() })
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{I64(-3), "-3"},
		{U64(3), "3u"},
		{F64(1.5), "1.5"},
		{Str("a"), `"a"`},
		{B(true), "true"},
		{Value{}, "<invalid>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// orderedPairs lists (smaller, larger) pairs per kind used by both the
// Compare test and the encoding-order test.
func orderedPairs() [][2]Value {
	return [][2]Value{
		{I64(math.MinInt64), I64(-1)},
		{I64(-1), I64(0)},
		{I64(0), I64(1)},
		{I64(1), I64(math.MaxInt64)},
		{U64(0), U64(1)},
		{U64(1), U64(math.MaxUint64)},
		{F64(math.Inf(-1)), F64(-1e300)},
		{F64(-1e300), F64(-0.5)},
		{F64(-0.5), F64(0)},
		{F64(0), F64(0.5)},
		{F64(0.5), F64(math.MaxFloat64)},
		{F64(math.MaxFloat64), F64(math.Inf(1))},
		{Str(""), Str("a")},
		{Str("a"), Str("aa")},
		{Str("a"), Str("b")},
		{Str("a\x00"), Str("a\x00\x00")},
		{Str("a\x00b"), Str("ab")}, // 0x00 sorts below any other byte
		{Raw([]byte{0}), Raw([]byte{0, 0})},
		{Raw(nil), Raw([]byte{0})},
		{B(false), B(true)},
	}
}

func TestCompare(t *testing.T) {
	for _, p := range orderedPairs() {
		a, b := p[0], p[1]
		if Compare(a, b) != -1 {
			t.Errorf("Compare(%v, %v) != -1", a, b)
		}
		if Compare(b, a) != 1 {
			t.Errorf("Compare(%v, %v) != 1", b, a)
		}
		if Compare(a, a) != 0 {
			t.Errorf("Compare(%v, %v) != 0", a, a)
		}
	}
}

func TestCompareKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic comparing int64 with uint64")
		}
	}()
	Compare(I64(1), U64(1))
}

func TestCompareStrRawInterchangeable(t *testing.T) {
	if Compare(Str("ab"), Raw([]byte("ab"))) != 0 {
		t.Error("Str and Raw with identical payloads must compare equal")
	}
	if Compare(Raw([]byte("a")), Str("b")) != -1 {
		t.Error("Raw/Str cross comparison order")
	}
}

func TestAppendOrderPreserving(t *testing.T) {
	for _, p := range orderedPairs() {
		a, b := p[0], p[1]
		ea, eb := Append(nil, a), Append(nil, b)
		if bytes.Compare(ea, eb) != -1 {
			t.Errorf("enc(%v) !< enc(%v): %x vs %x", a, b, ea, eb)
		}
	}
}

func TestAppendDescReversesOrder(t *testing.T) {
	for _, p := range orderedPairs() {
		a, b := p[0], p[1]
		ea, eb := AppendDesc(nil, a), AppendDesc(nil, b)
		if bytes.Compare(ea, eb) != 1 {
			t.Errorf("desc enc(%v) !> desc enc(%v)", a, b)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	vals := []Value{
		I64(0), I64(-1), I64(math.MinInt64), I64(math.MaxInt64),
		U64(0), U64(math.MaxUint64),
		F64(0), F64(-0.0), F64(3.14), F64(math.Inf(1)), F64(math.Inf(-1)),
		Str(""), Str("hello"), Str("with\x00nul"), Str("\x00\x00"),
		Raw([]byte{0, 1, 0xFF, 0}),
		B(true), B(false),
	}
	for _, v := range vals {
		enc := Append(nil, v)
		got, n, err := Decode(enc, v.Kind())
		if err != nil {
			t.Fatalf("Decode(enc(%v)): %v", v, err)
		}
		if n != len(enc) {
			t.Errorf("Decode(%v) consumed %d of %d bytes", v, n, len(enc))
		}
		if Compare(v, got) != 0 {
			t.Errorf("round trip %v -> %v", v, got)
		}
		if got := EncodedLen(v); got != len(enc) {
			t.Errorf("EncodedLen(%v) = %d, want %d", v, got, len(enc))
		}
	}
}

func TestRoundTripDesc(t *testing.T) {
	vals := []Value{
		I64(-5), I64(42), U64(7), F64(-2.25), Str("abc\x00def"), B(true),
	}
	for _, v := range vals {
		enc := AppendDesc(nil, v)
		got, n, err := DecodeDesc(enc, v.Kind())
		if err != nil {
			t.Fatalf("DecodeDesc(enc(%v)): %v", v, err)
		}
		if n != len(enc) {
			t.Errorf("DecodeDesc(%v) consumed %d of %d bytes", v, n, len(enc))
		}
		if Compare(v, got) != 0 {
			t.Errorf("desc round trip %v -> %v", v, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
		k    Kind
	}{
		{"short int64", []byte{1, 2, 3}, KindInt64},
		{"short uint64", nil, KindUint64},
		{"short float", []byte{0}, KindFloat64},
		{"short bool", nil, KindBool},
		{"unterminated bytes", []byte{'a', 'b'}, KindBytes},
		{"truncated escape", []byte{'a', 0x00}, KindBytes},
		{"invalid escape", []byte{0x00, 0x7F}, KindBytes},
		{"invalid kind", []byte{1}, KindInvalid},
		{"short desc fixed", []byte{1}, KindInt64},
	}
	for _, c := range cases {
		if _, _, err := Decode(c.b, c.k); err == nil && c.name != "short desc fixed" {
			t.Errorf("%s: Decode want error", c.name)
		}
	}
	if _, _, err := DecodeDesc([]byte{1}, KindInt64); err == nil {
		t.Error("DecodeDesc short: want error")
	}
	if _, _, err := DecodeDesc([]byte{'x'}, KindBytes); err == nil {
		t.Error("DecodeDesc unterminated bytes: want error")
	}
}

func TestCompositeOrder(t *testing.T) {
	// Tuple order must match encoding order, including the tricky case
	// where the first field of one tuple is a prefix of the other's.
	type tup []Value
	ordered := [][2]tup{
		{tup{Str("a"), I64(9)}, tup{Str("aa"), I64(0)}},
		{tup{Str("a"), I64(1)}, tup{Str("a"), I64(2)}},
		{tup{I64(1), Str("z")}, tup{I64(2), Str("a")}},
		{tup{U64(5), F64(1.0)}, tup{U64(5), F64(2.0)}},
		{tup{Str("a\x00"), Str("b")}, tup{Str("a\x00\x00"), Str("a")}},
	}
	for _, p := range ordered {
		ea := AppendComposite(nil, p[0]...)
		eb := AppendComposite(nil, p[1]...)
		if bytes.Compare(ea, eb) != -1 {
			t.Errorf("composite enc(%v) !< enc(%v)", p[0], p[1])
		}
	}
}

func TestCompositeRoundTrip(t *testing.T) {
	vals := []Value{I64(-3), Str("dev\x00ice"), U64(9), F64(0.5), B(true)}
	kinds := []Kind{KindInt64, KindString, KindUint64, KindFloat64, KindBool}
	enc := AppendComposite(nil, vals...)
	got, n, err := DecodeComposite(enc, kinds)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Errorf("consumed %d of %d", n, len(enc))
	}
	for i := range vals {
		if Compare(vals[i], got[i]) != 0 {
			t.Errorf("field %d: %v -> %v", i, vals[i], got[i])
		}
	}
}

func TestCompositeDecodeError(t *testing.T) {
	enc := AppendComposite(nil, I64(1))
	if _, _, err := DecodeComposite(enc, []Kind{KindInt64, KindString}); err == nil {
		t.Error("want error decoding past end of composite")
	}
}

func TestAppendUsesDst(t *testing.T) {
	dst := []byte{0xEE}
	out := Append(dst, I64(1))
	if out[0] != 0xEE || len(out) != 9 {
		t.Error("Append must extend dst in place")
	}
}
