package keyenc

import "testing"

func TestHashValuesEmpty(t *testing.T) {
	if got := HashValues(nil); got != 0 {
		t.Errorf("HashValues(nil) = %d, want 0 (pure range index degenerates)", got)
	}
	if got := HashBytes(nil); got != 0 {
		t.Errorf("HashBytes(nil) = %d, want 0", got)
	}
}

func TestHashValuesDeterministic(t *testing.T) {
	a := HashValues([]Value{I64(42), Str("device-7")})
	b := HashValues([]Value{I64(42), Str("device-7")})
	if a != b {
		t.Error("HashValues must be deterministic")
	}
}

func TestHashValuesDiscriminates(t *testing.T) {
	// Not a collision-freeness proof, just a smoke test that nearby keys
	// land in different buckets.
	seen := map[uint64]Value{}
	for i := int64(0); i < 1000; i++ {
		h := HashValues([]Value{I64(i)})
		if prev, ok := seen[h]; ok {
			t.Fatalf("hash collision between %v and %v in tiny domain", prev, I64(i))
		}
		seen[h] = I64(i)
	}
}

func TestHashStrRawAgree(t *testing.T) {
	a := HashValues([]Value{Str("abc")})
	b := HashValues([]Value{Raw([]byte("abc"))})
	if a != b {
		t.Error("Str and Raw with equal payloads must hash equal")
	}
}

func TestHashValuesMatchesHashBytes(t *testing.T) {
	vals := []Value{U64(9), Str("x\x00y")}
	if HashValues(vals) != HashBytes(AppendComposite(nil, vals...)) {
		t.Error("HashValues must hash the composite encoding")
	}
}

func TestHashPrefix(t *testing.T) {
	h := uint64(0xF1234567_89ABCDEF)
	if got := HashPrefix(h, 4); got != 0xF {
		t.Errorf("HashPrefix(4) = %#x, want 0xF", got)
	}
	if got := HashPrefix(h, 8); got != 0xF1 {
		t.Errorf("HashPrefix(8) = %#x, want 0xF1", got)
	}
	if got := HashPrefix(h, 0); got != 0 {
		t.Errorf("HashPrefix(0) = %d, want 0", got)
	}
}

func TestHashFieldBoundaries(t *testing.T) {
	// ("ab","c") and ("a","bc") must hash differently: the self-terminating
	// encoding keeps field boundaries visible to the hash.
	a := HashValues([]Value{Str("ab"), Str("c")})
	b := HashValues([]Value{Str("a"), Str("bc")})
	if a == b {
		t.Error("field boundaries must affect the hash")
	}
}

func BenchmarkHashValues(b *testing.B) {
	vals := []Value{I64(123456789), Str("device-000042")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HashValues(vals)
	}
}
