package keyenc

// The hash column of Umzi stores a hash of the equality-column values
// (§4.1). It serves two purposes: it is the most significant sort field of
// every index entry, clustering all rows with equal equality columns, and
// its top n bits index the per-run offset array that narrows binary
// searches (§4.2, Figure 2b).
//
// We use FNV-1a over the order-preserving encodings of the equality
// columns. Hashing the *encodings* (rather than raw payloads) guarantees
// that values comparing equal hash equal even across Str/Raw construction.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashValues hashes the equality-column values of an index key.
// An empty slice (index with no equality columns) hashes to 0 so that the
// hash column degenerates gracefully: every entry shares the prefix and the
// index behaves as a pure range index, exactly as §4.1 describes.
func HashValues(vals []Value) uint64 {
	if len(vals) == 0 {
		return 0
	}
	h := uint64(fnvOffset64)
	var scratch [16]byte
	for _, v := range vals {
		enc := Append(scratch[:0], v)
		for _, c := range enc {
			h ^= uint64(c)
			h *= fnvPrime64
		}
	}
	return h
}

// HashBytes hashes a pre-encoded equality-column prefix. It must agree
// with HashValues on the encoding of the same values; run builders that
// already hold encoded keys use this form.
func HashBytes(enc []byte) uint64 {
	if len(enc) == 0 {
		return 0
	}
	h := uint64(fnvOffset64)
	for _, c := range enc {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// HashPrefix returns the top bits of h used to index an offset array of
// 2^bits buckets.
func HashPrefix(h uint64, bits uint8) uint64 {
	if bits == 0 {
		return 0
	}
	return h >> (64 - uint(bits))
}
