package keyenc

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// Property: ascending encodings preserve order for every kind.

func TestQuickInt64Order(t *testing.T) {
	f := func(a, b int64) bool {
		ea, eb := Append(nil, I64(a)), Append(nil, I64(b))
		return bytes.Compare(ea, eb) == cmpOrdered(a, b)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickUint64Order(t *testing.T) {
	f := func(a, b uint64) bool {
		ea, eb := Append(nil, U64(a)), Append(nil, U64(b))
		return bytes.Compare(ea, eb) == cmpOrdered(a, b)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickFloat64Order(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true // NaN has a defined slot but not via <
		}
		ea, eb := Append(nil, F64(a)), Append(nil, F64(b))
		want := 0
		switch {
		case a < b:
			want = -1
		case a > b:
			want = 1
		case a == b:
			// -0.0 == 0.0 but their bit patterns differ; the encoding is a
			// total order, so allow either -1 or 0 there.
			if math.Signbit(a) != math.Signbit(b) {
				return true
			}
		}
		return bytes.Compare(ea, eb) == want
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickBytesOrder(t *testing.T) {
	f := func(a, b []byte) bool {
		ea, eb := Append(nil, Raw(a)), Append(nil, Raw(b))
		return bytes.Compare(ea, eb) == bytes.Compare(a, b)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

// Property: descending encodings reverse order.

func TestQuickDescReverses(t *testing.T) {
	f := func(a, b uint64) bool {
		ea, eb := AppendDesc(nil, U64(a)), AppendDesc(nil, U64(b))
		return bytes.Compare(ea, eb) == -cmpOrdered(a, b)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

// Property: round trips are lossless.

func TestQuickRoundTripInt64(t *testing.T) {
	f := func(a int64) bool {
		v, n, err := Decode(Append(nil, I64(a)), KindInt64)
		return err == nil && n == 8 && v.Int() == a
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTripBytes(t *testing.T) {
	f := func(a []byte) bool {
		enc := Append(nil, Raw(a))
		v, n, err := Decode(enc, KindBytes)
		return err == nil && n == len(enc) && bytes.Equal(v.Bytes(), a)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTripBytesDesc(t *testing.T) {
	f := func(a []byte) bool {
		enc := AppendDesc(nil, Raw(a))
		v, n, err := DecodeDesc(enc, KindBytes)
		return err == nil && n == len(enc) && bytes.Equal(v.Bytes(), a)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

// Property: composite encodings preserve tuple order.

func TestQuickCompositeOrder(t *testing.T) {
	f := func(s1 []byte, i1 int64, s2 []byte, i2 int64) bool {
		a := AppendComposite(nil, Raw(s1), I64(i1))
		b := AppendComposite(nil, Raw(s2), I64(i2))
		want := bytes.Compare(s1, s2)
		if want == 0 {
			want = cmpOrdered(i1, i2)
		}
		return bytes.Compare(a, b) == want
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

// Property: EncodedLen is exact.

func TestQuickEncodedLen(t *testing.T) {
	f := func(a []byte) bool {
		return EncodedLen(Raw(a)) == len(Append(nil, Raw(a)))
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

// Property: HashValues agrees with HashBytes over the encoded prefix, and
// equal values hash equal regardless of construction.

func TestQuickHashConsistency(t *testing.T) {
	f := func(s []byte, n uint64) bool {
		vals := []Value{Raw(s), U64(n)}
		enc := AppendComposite(nil, vals...)
		return HashValues(vals) == HashBytes(enc)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickHashPrefixInRange(t *testing.T) {
	f := func(h uint64) bool {
		for bits := uint8(0); bits <= 16; bits++ {
			if HashPrefix(h, bits) >= 1<<bits && bits > 0 {
				return false
			}
		}
		return HashPrefix(h, 0) == 0
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

func qcfg() *quick.Config { return &quick.Config{MaxCount: 300} }
