// Package keyenc implements order-preserving ("memcmp-comparable") key
// encodings for the Umzi index.
//
// Section 4.2 of the paper requires that all ordering columns — the hash
// column, equality columns, sort columns and beginTS — are "stored in
// lexicographically comparable formats, similar to LevelDB, so that keys can
// be compared by simply using memory compare operations". This package
// provides exactly that: every supported value kind encodes to bytes such
// that bytes.Compare on encodings equals the natural comparison on values,
// composite keys concatenate column encodings with self-terminating byte
// strings, and a descending variant (used for beginTS, which is sorted
// newest-first) inverts the order.
package keyenc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// Kind enumerates the value types a key or included column may hold.
type Kind uint8

// Supported column kinds.
const (
	KindInvalid Kind = iota
	KindInt64        // signed 64-bit integer
	KindUint64       // unsigned 64-bit integer
	KindFloat64      // IEEE-754 double (total order: -NaN < -Inf < ... < +Inf < +NaN)
	KindBytes        // arbitrary byte string
	KindString       // UTF-8 string (encodes identically to KindBytes)
	KindBool         // boolean, false < true
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInt64:
		return "int64"
	case KindUint64:
		return "uint64"
	case KindFloat64:
		return "float64"
	case KindBytes:
		return "bytes"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Fixed reports whether values of this kind encode to a fixed width.
// Fixed-width kinds skip the escaping machinery entirely.
func (k Kind) Fixed() bool {
	switch k {
	case KindInt64, KindUint64, KindFloat64, KindBool:
		return true
	}
	return false
}

// Value is a dynamically-typed column value. The zero Value is invalid;
// construct values with the I64/U64/F64/Str/Raw/B constructors.
//
// Value is a small tagged union rather than an interface so that hot paths
// (run building sorts millions of them) stay allocation-free.
type Value struct {
	kind Kind
	num  uint64 // int64 (as bits), uint64, float64 bits, or bool (0/1)
	str  []byte // bytes / string payload
}

// I64 returns an int64 value.
func I64(v int64) Value { return Value{kind: KindInt64, num: uint64(v)} }

// U64 returns a uint64 value.
func U64(v uint64) Value { return Value{kind: KindUint64, num: v} }

// F64 returns a float64 value.
func F64(v float64) Value { return Value{kind: KindFloat64, num: math.Float64bits(v)} }

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindString, str: []byte(v)} }

// StrBytes returns a string value aliasing b without copying. The slice
// is retained; callers must not mutate it afterwards. Columnar blocks
// use this to hand out string cells without a per-access allocation.
func StrBytes(b []byte) Value { return Value{kind: KindString, str: b} }

// Raw returns a bytes value. The slice is retained, not copied.
func Raw(v []byte) Value { return Value{kind: KindBytes, str: v} }

// B returns a bool value.
func B(v bool) Value {
	var n uint64
	if v {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Kind returns the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// Int returns the int64 payload; it panics on kind mismatch.
func (v Value) Int() int64 {
	v.mustBe(KindInt64)
	return int64(v.num)
}

// Uint returns the uint64 payload; it panics on kind mismatch.
func (v Value) Uint() uint64 {
	v.mustBe(KindUint64)
	return v.num
}

// Float returns the float64 payload; it panics on kind mismatch.
func (v Value) Float() float64 {
	v.mustBe(KindFloat64)
	return math.Float64frombits(v.num)
}

// Bytes returns the bytes payload; it panics on kind mismatch.
func (v Value) Bytes() []byte {
	if v.kind != KindBytes && v.kind != KindString {
		panic(fmt.Sprintf("keyenc: Bytes() on %v value", v.kind))
	}
	return v.str
}

// String renders the value for debugging; it never panics.
func (v Value) String() string {
	switch v.kind {
	case KindInt64:
		return fmt.Sprintf("%d", int64(v.num))
	case KindUint64:
		return fmt.Sprintf("%du", v.num)
	case KindFloat64:
		return fmt.Sprintf("%g", math.Float64frombits(v.num))
	case KindBytes, KindString:
		return fmt.Sprintf("%q", v.str)
	case KindBool:
		return fmt.Sprintf("%t", v.num != 0)
	default:
		return "<invalid>"
	}
}

// Bool returns the bool payload; it panics on kind mismatch.
func (v Value) Bool() bool {
	v.mustBe(KindBool)
	return v.num != 0
}

func (v Value) mustBe(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("keyenc: %v accessor on %v value", k, v.kind))
	}
}

// Compare compares two values of the same kind with the natural order used
// by the encodings. It panics if the kinds differ.
func Compare(a, b Value) int {
	if a.kind != b.kind {
		// String and bytes share an encoding and an order.
		if !((a.kind == KindString || a.kind == KindBytes) &&
			(b.kind == KindString || b.kind == KindBytes)) {
			panic(fmt.Sprintf("keyenc: comparing %v with %v", a.kind, b.kind))
		}
	}
	switch a.kind {
	case KindInt64:
		return cmpOrdered(int64(a.num), int64(b.num))
	case KindUint64:
		return cmpOrdered(a.num, b.num)
	case KindFloat64:
		return cmpOrdered(floatSortKey(a.num), floatSortKey(b.num))
	case KindBytes, KindString:
		return bytes.Compare(a.str, b.str)
	case KindBool:
		return cmpOrdered(a.num, b.num)
	default:
		panic("keyenc: comparing invalid values")
	}
}

func cmpOrdered[T int64 | uint64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// SortKeyBits maps the raw 64-bit representation of a fixed-width kind
// (int64 two's-complement bits, uint64, IEEE-754 float bits, bool 0/1)
// to a uint64 whose unsigned order equals the kind's natural order. It
// is the 64-bit analogue of the byte encodings produced by Append, and
// lets numeric comparison loops run on plain uint64s regardless of the
// column's kind. SortKeyBitsInv is its inverse.
func SortKeyBits(k Kind, bits uint64) uint64 {
	switch k {
	case KindInt64:
		return bits ^ (1 << 63)
	case KindFloat64:
		return floatSortKey(bits)
	default: // uint64, bool: already in natural unsigned order
		return bits
	}
}

// SortKeyBitsInv maps a sort key produced by SortKeyBits back to the raw
// 64-bit representation of the kind.
func SortKeyBitsInv(k Kind, key uint64) uint64 {
	switch k {
	case KindInt64:
		return key ^ (1 << 63)
	case KindFloat64:
		return floatSortKeyInv(key)
	default:
		return key
	}
}

// floatSortKey maps IEEE-754 bits to a uint64 whose unsigned order equals
// the total order of the floats: flip all bits for negatives, flip only the
// sign bit for non-negatives.
func floatSortKey(bits uint64) uint64 {
	if bits&(1<<63) != 0 {
		return ^bits
	}
	return bits | 1<<63
}

// Append appends the ascending order-preserving encoding of v to dst.
// Variable-length kinds (bytes, string) are self-terminating: 0x00 bytes
// are escaped as 0x00 0xFF and the value ends with 0x00 0x01, so that a
// shorter string sorts before any extension of it and encodings can be
// concatenated into composite keys.
func Append(dst []byte, v Value) []byte {
	switch v.kind {
	case KindInt64:
		return appendUint64(dst, v.num^(1<<63))
	case KindUint64:
		return appendUint64(dst, v.num)
	case KindFloat64:
		return appendUint64(dst, floatSortKey(v.num))
	case KindBytes, KindString:
		return appendEscaped(dst, v.str)
	case KindBool:
		return append(dst, byte(v.num))
	default:
		panic("keyenc: encoding invalid value")
	}
}

// AppendDesc appends the descending encoding of v: the ascending encoding
// with every byte inverted, so bytes.Compare order is exactly reversed.
// Umzi uses this for beginTS, which sorts newest-first within a key (§4.2).
func AppendDesc(dst []byte, v Value) []byte {
	start := len(dst)
	dst = Append(dst, v)
	for i := start; i < len(dst); i++ {
		dst[i] = ^dst[i]
	}
	return dst
}

func appendUint64(dst []byte, u uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], u)
	return append(dst, buf[:]...)
}

const (
	escByte  = 0x00
	escPad   = 0xFF // 0x00 inside the payload becomes 0x00 0xFF
	termByte = 0x01 // payload terminator 0x00 0x01
)

func appendEscaped(dst []byte, s []byte) []byte {
	for _, c := range s {
		if c == escByte {
			dst = append(dst, escByte, escPad)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, escByte, termByte)
}

// decodeEscaped decodes a self-terminating byte string from b, returning
// the payload and the number of input bytes consumed.
func decodeEscaped(b []byte) (payload []byte, n int, err error) {
	for i := 0; i < len(b); {
		c := b[i]
		if c != escByte {
			payload = append(payload, c)
			i++
			continue
		}
		if i+1 >= len(b) {
			return nil, 0, fmt.Errorf("keyenc: truncated escape at %d", i)
		}
		switch b[i+1] {
		case escPad:
			payload = append(payload, escByte)
			i += 2
		case termByte:
			return payload, i + 2, nil
		default:
			return nil, 0, fmt.Errorf("keyenc: invalid escape 0x00 0x%02x at %d", b[i+1], i)
		}
	}
	return nil, 0, fmt.Errorf("keyenc: unterminated byte string")
}

// Decode decodes one value of kind k from the front of b, returning the
// value and the number of bytes consumed. For descending-encoded values use
// DecodeDesc.
func Decode(b []byte, k Kind) (Value, int, error) {
	switch k {
	case KindInt64:
		u, err := takeUint64(b)
		if err != nil {
			return Value{}, 0, err
		}
		return I64(int64(u ^ 1<<63)), 8, nil
	case KindUint64:
		u, err := takeUint64(b)
		if err != nil {
			return Value{}, 0, err
		}
		return U64(u), 8, nil
	case KindFloat64:
		u, err := takeUint64(b)
		if err != nil {
			return Value{}, 0, err
		}
		return F64(math.Float64frombits(floatSortKeyInv(u))), 8, nil
	case KindBytes, KindString:
		payload, n, err := decodeEscaped(b)
		if err != nil {
			return Value{}, 0, err
		}
		if k == KindString {
			return Str(string(payload)), n, nil
		}
		return Raw(payload), n, nil
	case KindBool:
		if len(b) < 1 {
			return Value{}, 0, fmt.Errorf("keyenc: short bool")
		}
		return B(b[0] != 0), 1, nil
	default:
		return Value{}, 0, fmt.Errorf("keyenc: decode of %v", k)
	}
}

// DecodeDesc decodes one descending-encoded value of kind k from b.
func DecodeDesc(b []byte, k Kind) (Value, int, error) {
	// Invert a bounded prefix, decode ascending, map consumed length back.
	// Fixed kinds have known widths; variable kinds must invert until the
	// (inverted) terminator is found — invert lazily into a scratch buffer.
	if k.Fixed() {
		w := 8
		if k == KindBool {
			w = 1
		}
		if len(b) < w {
			return Value{}, 0, fmt.Errorf("keyenc: short desc %v", k)
		}
		tmp := make([]byte, w)
		for i := 0; i < w; i++ {
			tmp[i] = ^b[i]
		}
		v, n, err := Decode(tmp, k)
		return v, n, err
	}
	tmp := make([]byte, 0, len(b))
	for i := range b {
		tmp = append(tmp, ^b[i])
	}
	return Decode(tmp, k)
}

func floatSortKeyInv(key uint64) uint64 {
	if key&(1<<63) != 0 {
		return key &^ (1 << 63)
	}
	return ^key
}

func takeUint64(b []byte) (uint64, error) {
	if len(b) < 8 {
		return 0, fmt.Errorf("keyenc: short fixed value: %d bytes", len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}

// EncodedLen returns the exact encoded length of v.
func EncodedLen(v Value) int {
	switch v.kind {
	case KindInt64, KindUint64, KindFloat64:
		return 8
	case KindBool:
		return 1
	case KindBytes, KindString:
		n := 2 // terminator
		for _, c := range v.str {
			if c == escByte {
				n += 2
			} else {
				n++
			}
		}
		return n
	default:
		panic("keyenc: EncodedLen of invalid value")
	}
}

// AppendComposite appends the encodings of vals in order. Because every
// per-value encoding is either fixed-width or self-terminating, the
// concatenation preserves tuple order: (a1,a2) < (b1,b2) lexicographically
// on values iff the encodings compare the same way.
func AppendComposite(dst []byte, vals ...Value) []byte {
	for _, v := range vals {
		dst = Append(dst, v)
	}
	return dst
}

// DecodeComposite decodes len(kinds) values from b, returning the values
// and total bytes consumed.
func DecodeComposite(b []byte, kinds []Kind) ([]Value, int, error) {
	vals := make([]Value, 0, len(kinds))
	total := 0
	for _, k := range kinds {
		v, n, err := Decode(b[total:], k)
		if err != nil {
			return nil, 0, fmt.Errorf("keyenc: composite field %d: %w", len(vals), err)
		}
		vals = append(vals, v)
		total += n
	}
	return vals, total, nil
}
