package wildfire

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"umzi/internal/keyenc"
	"umzi/internal/obs"
	"umzi/internal/storage"
)

// TestEngineMetricsFlow drives one engine through commit, groom and
// query and checks that the registry tells the same story the engine's
// own status APIs do.
func TestEngineMetricsFlow(t *testing.T) {
	reg := obs.NewRegistry()
	e := newTestEngine(t, func(cfg *Config) { cfg.Obs = reg })
	const n = 10
	for i := int64(0); i < n; i++ {
		if err := e.UpsertRows(0, row(1, i, float64(i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	lbl := obs.Labels{"table": "sensors"}
	snap := reg.Snapshot()
	if got := snap.Get("live_records", lbl).Value; got != n {
		t.Errorf("live_records = %d before groom, want %d", got, n)
	}
	if got := snap.Get("wal_rows", lbl).Value; got != n {
		t.Errorf("wal_rows = %d, want %d", got, n)
	}
	// Serial commits: one segment per commit, batch size exactly 1.
	wb := snap.Get("wal_batch_records", lbl).Hist
	if wb.Count != n || wb.Max != 1 || wb.P50 != 1 || wb.P99 != 1 {
		t.Errorf("wal_batch_records = %+v, want %d batches of 1", wb, n)
	}
	if lag := snap.Get("wal_watermark_lag", lbl).Value; lag != n {
		t.Errorf("wal_watermark_lag = %d before groom, want %d", lag, n)
	}

	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap.Get("groom_cycles", lbl).Value; got != 1 {
		t.Errorf("groom_cycles = %d, want 1", got)
	}
	if gr := snap.Get("groom_rows", lbl).Hist; gr.Count != 1 || gr.Sum != n {
		t.Errorf("groom_rows = %+v, want one cycle of %d rows", gr, n)
	}
	if fr := snap.Get("groom_freshness_ns", lbl).Hist; fr.Count != n || fr.Min <= 0 {
		t.Errorf("groom_freshness_ns = %+v, want %d positive samples", fr, n)
	}
	if got := snap.Get("live_records", lbl).Value; got != 0 {
		t.Errorf("live_records = %d after groom, want 0", got)
	}
	if lag := snap.Get("wal_watermark_lag", lbl).Value; lag != 0 {
		t.Errorf("wal_watermark_lag = %d after groom, want 0", lag)
	}
	if st := e.WALStatus(); int64(st.MaxSeq-st.Mark) != snap.Get("wal_watermark_lag", lbl).Value {
		t.Errorf("gauge disagrees with WALStatus: %+v", st)
	}

	// A secondary scan back-checks every candidate against the primary;
	// the verification counter must move once per scanned entry.
	if err := e.CreateIndex(SecondaryIndexSpec{
		Name:      "by_day",
		IndexSpec: IndexSpec{Equality: []string{"day"}, HashBits: 4},
	}); err != nil {
		t.Fatal(err)
	}
	recs, err := e.ScanOn("by_day", []keyenc.Value{keyenc.I64(100)}, nil, nil, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("secondary scan returned %d rows, want %d", len(recs), n)
	}
	snap = reg.Snapshot()
	if got := snap.Get("index_back_checks", lbl).Value; got != n {
		t.Errorf("index_back_checks = %d, want %d", got, n)
	}
}

// failingStore fails Puts whose names contain a substring while the
// fail flag is up — enough to break WAL segment writes selectively.
type failingStore struct {
	storage.ObjectStore
	substr string
	fail   atomic.Bool
}

func (f *failingStore) Put(name string, data []byte) error {
	if f.fail.Load() && strings.Contains(name, f.substr) {
		return errors.New("injected put failure")
	}
	return f.ObjectStore.Put(name, data)
}

// TestWALFlushErrorCounted checks the silent-error audit on the durable
// write path: under a buffered sync policy a size-triggered flush that
// fails must not fail the (already acknowledged) commits, but it must
// be counted — never silently dropped.
func TestWALFlushErrorCounted(t *testing.T) {
	reg := obs.NewRegistry()
	fs := &failingStore{
		ObjectStore: storage.NewMemStore(storage.LatencyModel{}),
		substr:      "/wal",
	}
	e := newTestEngine(t, func(cfg *Config) {
		cfg.Obs = reg
		cfg.Store = fs
		cfg.Durability.SyncPolicy = SyncOff
		cfg.Durability.SegmentBytes = 64 // first commit overflows the buffer
	})
	fs.fail.Store(true)
	if err := e.UpsertRows(0, row(1, 1, 1.0, 1), row(1, 2, 2.0, 1)); err != nil {
		t.Fatalf("buffered commit must not fail on a flush error: %v", err)
	}
	lbl := obs.Labels{"table": "sensors"}
	if got := reg.Snapshot().Get("wal_flush_errors", lbl).Value; got < 1 {
		t.Errorf("wal_flush_errors = %d, want >= 1", got)
	}
	// Let the retry (groom-time flush, close) succeed again.
	fs.fail.Store(false)
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
}

// TestScatterStreamReleaseErrorCounted checks the other audited path: a
// cancelled scatter worker closing its shard cursor counts the Close
// error AND surfaces the first one through the merged cursor's Close —
// the mid-stream-disconnect teardown the network server runs.
func TestScatterStreamReleaseErrorCounted(t *testing.T) {
	var released atomic.Int64
	open := func(ctx context.Context, shard int) (*Cursor[int], error) {
		v := shard * 1000
		return newCursor(
			func() (int, bool, error) { v++; return v, true, nil }, // endless
			func() error { return errors.New("release failed") },
		), nil
	}
	keyOf := func(v int) []byte { return []byte{byte(v >> 8), byte(v)} }
	onErr := func(err error) {
		if err != nil {
			released.Add(1)
		}
	}
	cur := scatterStream(context.Background(), newGatherPool(2), 2, 0, open, keyOf, onErr)
	if !cur.Next() {
		t.Fatalf("no first row: %v", cur.Err())
	}
	err := cur.Close()
	if err == nil || !strings.Contains(err.Error(), "release failed") {
		t.Fatalf("merged close must surface the first release error, got %v", err)
	}
	// Close waited for both workers; both were cancelled mid-scan and
	// their cursor release errors must have been observed.
	if got := released.Load(); got != 2 {
		t.Errorf("release errors observed = %d, want 2", got)
	}
}

// TestScatterStreamReleaseCancelNoiseFiltered checks the filter on the
// surfaced release error: a shard cursor whose Close merely restates
// the cancellation (context.Canceled) is counted for the audit metric
// but does NOT turn an orderly early Close into a failure.
func TestScatterStreamReleaseCancelNoiseFiltered(t *testing.T) {
	var released atomic.Int64
	open := func(ctx context.Context, shard int) (*Cursor[int], error) {
		v := shard * 1000
		return newCursor(
			func() (int, bool, error) { v++; return v, true, nil },
			func() error { return context.Canceled },
		), nil
	}
	keyOf := func(v int) []byte { return []byte{byte(v >> 8), byte(v)} }
	onErr := func(err error) { released.Add(1) }
	cur := scatterStream(context.Background(), newGatherPool(2), 2, 0, open, keyOf, onErr)
	if !cur.Next() {
		t.Fatalf("no first row: %v", cur.Err())
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("cancellation-shaped release errors must not fail Close: %v", err)
	}
	if got := released.Load(); got != 2 {
		t.Errorf("release errors observed = %d, want 2", got)
	}
}

// benchEngine builds an engine for the overhead benchmark; noop swaps
// the metrics bundle for one with nil handles (every record call is a
// nil-receiver no-op), isolating the cost of live instrumentation.
func benchEngine(b *testing.B, noop bool) *Engine {
	b.Helper()
	cfg := Config{
		Table:    iotTable(),
		Index:    iotIndex(),
		Store:    storage.NewMemStore(storage.LatencyModel{}),
		Replicas: 1,
	}
	cfg.IndexTuning.K = 2
	cfg.IndexTuning.GroomedLevels = 3
	cfg.IndexTuning.PostGroomedLevels = 2
	cfg.IndexTuning.BlockSize = 1024
	e, err := NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	if noop {
		e.mx = &engineMetrics{}
	}
	return e
}

// BenchmarkMetricsOverhead compares the instrumented hot paths against
// a no-op metrics bundle. The write path covers the WAL, live-zone and
// groom counters; the query path covers plan counters, per-row counting
// and trace-free cursor accounting. The instrumented variants must stay
// within ~5% of noop (CI's bench-smoke runs both for eyeballing).
func BenchmarkMetricsOverhead(b *testing.B) {
	for _, v := range []struct {
		name string
		noop bool
	}{{"write/instrumented", false}, {"write/noop", true}} {
		b.Run(v.name, func(b *testing.B) {
			e := benchEngine(b, v.noop)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.UpsertRows(0, row(1, int64(i), 1.0, 1)); err != nil {
					b.Fatal(err)
				}
				if i%4096 == 4095 {
					if err := e.Groom(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
	for _, v := range []struct {
		name string
		noop bool
	}{{"query/instrumented", false}, {"query/noop", true}} {
		b.Run(v.name, func(b *testing.B) {
			e := benchEngine(b, v.noop)
			for i := int64(0); i < 512; i++ {
				if err := e.UpsertRows(0, row(1, i, 1.0, 1)); err != nil {
					b.Fatal(err)
				}
			}
			if err := e.Groom(); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := e.RunQuery(ctx, QuerySpec{
					Filter: nil, Columns: []string{"device", "msg"}, Limit: 64,
				})
				if err != nil {
					b.Fatal(err)
				}
				for rows.Cursor.Next() {
				}
				if err := rows.Cursor.Err(); err != nil {
					b.Fatal(err)
				}
				if err := rows.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
