package wildfire

import (
	"bytes"
	"container/heap"
	"sync"

	"umzi/internal/keyenc"
)

// Scatter-gather machinery of the sharding layer: a bounded worker pool
// that fans a query out to every shard concurrently, and a streaming
// k-way merge that reassembles the per-shard ordered results into one
// globally ordered stream.

// gatherPool bounds the number of per-shard query tasks running at once.
// One pool is shared by every query of a ShardedEngine, so a burst of
// concurrent scatter queries cannot spawn shards×queries goroutines.
type gatherPool struct {
	sem chan struct{}
}

func newGatherPool(limit int) *gatherPool {
	if limit < 1 {
		limit = 1
	}
	return &gatherPool{sem: make(chan struct{}, limit)}
}

// each runs f(0..n-1) on the pool and waits for all of them; the first
// error (lowest index) wins. Task submission blocks while the pool is
// saturated, which is what bounds concurrency.
func (p *gatherPool) each(n int, f func(int) error) error {
	if n == 1 {
		return f(0)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		p.sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-p.sem }()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// shardStream is one shard's ordered result slice with its precomputed
// merge keys (the encoded sort-column values of each item, which is the
// order every per-shard scan already returns).
type shardStream struct {
	keys  [][]byte
	pos   int
	shard int
}

// mergeHeap orders streams by their current merge key; ties break by
// shard ordinal for determinism (they cannot happen for scans, since a
// scan key is unique across shards — each primary key lives on exactly
// one shard).
type mergeHeap []*shardStream

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if c := bytes.Compare(h[i].keys[h[i].pos], h[j].keys[h[j].pos]); c != 0 {
		return c < 0
	}
	return h[i].shard < h[j].shard
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(*shardStream)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeIter streams the k-way sort-merge of per-shard results: Next
// yields (shard, position) pairs in global key order. The caller indexes
// its own per-shard slices with them, so one iterator serves both Record
// results and index-only value rows.
type mergeIter struct {
	h mergeHeap
}

// newMergeIter builds the merge over per-shard key slices. Shards with no
// results are skipped.
func newMergeIter(keys [][][]byte) *mergeIter {
	it := &mergeIter{h: make(mergeHeap, 0, len(keys))}
	for shard, ks := range keys {
		if len(ks) > 0 {
			it.h = append(it.h, &shardStream{keys: ks, shard: shard})
		}
	}
	heap.Init(&it.h)
	return it
}

// Next returns the next (shard, position) in global sort-key order.
func (it *mergeIter) Next() (shard, pos int, ok bool) {
	if len(it.h) == 0 {
		return 0, 0, false
	}
	s := it.h[0]
	shard, pos = s.shard, s.pos
	s.pos++
	if s.pos < len(s.keys) {
		heap.Fix(&it.h, 0)
	} else {
		heap.Pop(&it.h)
	}
	return shard, pos, true
}

// mergeOrdered drains the k-way merge of per-shard key slices, calling
// emit with each (shard, position) in global key order and stopping
// after limit emissions (0 = all). Every sharded ordered-scan variant
// funnels through this one loop.
func mergeOrdered(keys [][][]byte, limit int, emit func(shard, pos int)) {
	it := newMergeIter(keys)
	n := 0
	for {
		shard, pos, ok := it.Next()
		if !ok {
			return
		}
		emit(shard, pos)
		n++
		if limit > 0 && n == limit {
			return
		}
	}
}

// cappedTotal sizes a merge result: the sum of per-shard result counts,
// capped at the limit when one is set.
func cappedTotal[T any](parts [][]T, limit int) int {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if limit > 0 && total > limit {
		total = limit
	}
	return total
}

// sortKeyOfRecord encodes the sort-column values of a record for merging,
// using the spec's sort-column ordinals in the table row.
func sortKeyOfRecord(sortIdx []int, rec *Record) []byte {
	var scratch [4]keyenc.Value
	vals := scratch[:0]
	for _, i := range sortIdx {
		vals = append(vals, rec.Row[i])
	}
	return keyenc.AppendComposite(nil, vals...)
}

// sortKeyOfIndexRow encodes the sort-column values of an index-only
// result row (layout: equality, sort, included — §4.1).
func sortKeyOfIndexRow(nEq, nSort int, row []keyenc.Value) []byte {
	return keyenc.AppendComposite(nil, row[nEq:nEq+nSort]...)
}
