package wildfire

import (
	"context"
	"sync"

	"umzi/internal/keyenc"
)

// Scatter-gather machinery of the sharding layer: a bounded worker pool
// that fans a batch task out to every shard concurrently. Ordered
// scatter-gather scans stream through scatterStream (stream.go) instead
// — per-shard workers feeding a k-way merge — with their eager phase
// (index walks, verification) admitted through this same pool, so the
// pool bounds the heavy work of every path: grooming rounds, batched
// lookups, unordered scans, pushed-down analytical plans and the
// streaming scans' startup.

// gatherPool bounds the number of per-shard tasks running at once. One
// pool is shared by every batch query of a ShardedEngine, so a burst of
// concurrent scatter queries cannot spawn shards×queries goroutines.
type gatherPool struct {
	sem chan struct{}
}

func newGatherPool(limit int) *gatherPool {
	if limit < 1 {
		limit = 1
	}
	return &gatherPool{sem: make(chan struct{}, limit)}
}

// each runs f(0..n-1) on the pool and waits for all of them; the first
// error (lowest index) wins, and a context cancellation surfaces as the
// context's error when no task failed on its own. Task submission blocks
// while the pool is saturated, which is what bounds concurrency — a
// cancelled context also unblocks submission, so a cancelled caller is
// never stuck waiting for someone else's slots.
func (p *gatherPool) each(ctx context.Context, n int, f func(int) error) error {
	if n == 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		return f(0)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case p.sem <- struct{}{}:
		case <-ctx.Done():
			errs[i] = ctx.Err()
		}
		if errs[i] != nil {
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-p.sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// sortKeyOfRecord encodes the sort-column values of a record for merging,
// using the spec's sort-column ordinals in the table row.
func sortKeyOfRecord(sortIdx []int, rec *Record) []byte {
	var scratch [4]keyenc.Value
	vals := scratch[:0]
	for _, i := range sortIdx {
		vals = append(vals, rec.Row[i])
	}
	return keyenc.AppendComposite(nil, vals...)
}

// sortKeyOfIndexRow encodes the sort-column values of an index-only
// result row (layout: equality, sort, included — §4.1).
func sortKeyOfIndexRow(nEq, nSort int, row []keyenc.Value) []byte {
	return keyenc.AppendComposite(nil, row[nEq:nEq+nSort]...)
}
