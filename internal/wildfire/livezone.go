package wildfire

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// The live zone (§2.1): transactions append uncommitted changes to a
// local side-log; on commit the side-log is made durable in the shard's
// commit log (internal/wal) and then published to the replica's
// committed in-memory log with its tentative commit sequences. The
// committed log is the groomer's input and is also scanned directly by
// freshness-sensitive queries, since the live zone is not covered by
// the index (§3). The in-memory log is a view of the durable log's
// tail: a crash rebuilds it by replaying every sequence above the groom
// watermark (recoverWAL).

// logRecord is one committed upsert awaiting grooming.
type logRecord struct {
	row       Row
	commitSeq uint64 // global commit order (tentative commit time)
	// ack is the commit acknowledgment wall-clock time in Unix
	// nanoseconds — when the committer learned its rows were durable.
	// The groomer measures ack -> groomed-visibility freshness from it.
	// Zero for rows rebuilt by log replay: their original ack time is
	// unknowable and must not pollute the freshness distribution.
	ack int64
}

// replica is one multi-master shard replica with its own committed log.
type replica struct {
	id int

	mu  sync.Mutex
	log []logRecord
}

// appendWithSeqs publishes rows to the committed log; row i carries the
// pre-assigned commit sequence base+i. Sequences are assigned before
// the durable log append, so by the time a row is visible here it is
// already as durable as the sync policy promises. ack is the commit
// acknowledgment time in Unix nanoseconds (0 for replayed rows).
func (r *replica) appendWithSeqs(rows []Row, base uint64, ack int64) {
	r.mu.Lock()
	for i, row := range rows {
		r.log = append(r.log, logRecord{row: row, commitSeq: base + uint64(i), ack: ack})
	}
	r.mu.Unlock()
}

// requeue puts drained records back (a groom that failed after draining
// must not lose them: they are acknowledged and, per policy, durable).
func (r *replica) requeue(recs []logRecord) {
	r.mu.Lock()
	r.log = append(r.log, recs...)
	r.mu.Unlock()
}

// drain removes and returns all committed records (groom input).
func (r *replica) drain() []logRecord {
	r.mu.Lock()
	out := r.log
	r.log = nil
	r.mu.Unlock()
	return out
}

// scan visits the committed log without draining it (live-zone reads).
func (r *replica) scan(visit func(rec logRecord)) {
	r.mu.Lock()
	for _, rec := range r.log {
		visit(rec)
	}
	r.mu.Unlock()
}

// size returns the number of records awaiting grooming.
func (r *replica) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.log)
}

// Txn is a transaction: upserts accumulate in a side-log and become
// visible (to grooming and live-zone scans) only at Commit. Wildfire
// treats every insert/update/delete as an upsert on the primary key with
// last-writer-wins semantics for concurrent updates (§2.1).
type Txn struct {
	eng      *Engine
	replica  *replica
	sidelog  []Row
	done     bool
	readOnly bool
}

// Begin starts a transaction against the given shard replica. Any replica
// of a shard can ingest data (multi-master).
func (e *Engine) Begin(replicaID int) (*Txn, error) {
	if replicaID < 0 || replicaID >= len(e.replicas) {
		return nil, fmt.Errorf("wildfire: replica %d out of range (%d replicas)", replicaID, len(e.replicas))
	}
	return &Txn{eng: e, replica: e.replicas[replicaID]}, nil
}

// Upsert stages one row. The row is validated eagerly so a malformed
// write fails at the call site, not at commit.
func (tx *Txn) Upsert(row Row) error {
	if tx.done {
		return fmt.Errorf("wildfire: transaction already finished")
	}
	if err := tx.eng.table.validateRow(row); err != nil {
		return err
	}
	cp := make(Row, len(row))
	copy(cp, row)
	tx.sidelog = append(tx.sidelog, cp)
	return nil
}

// Commit publishes the side-log to the replica's committed log with
// tentative commit times; the groomer later resets beginTS so the commit
// effectively happens at groom time (§2.1).
func (tx *Txn) Commit() error {
	return tx.CommitContext(context.Background())
}

// CommitContext is Commit honoring a context: a cancelled context
// aborts the transaction before anything becomes visible. Once past the
// check the commit runs to completion — the side-log is appended to the
// shard's durable commit log (per-commit sync joins a group commit and
// returns only after the shared segment write lands) and then published
// to the replica's committed log; an error from the log append means
// the rows are neither durable nor visible.
func (tx *Txn) CommitContext(ctx context.Context) error {
	if tx.done {
		return fmt.Errorf("wildfire: transaction already finished")
	}
	if err := ctx.Err(); err != nil {
		tx.Abort()
		return err
	}
	tx.done = true
	if len(tx.sidelog) == 0 {
		return nil
	}
	first, err := tx.eng.stageCommit(tx.replica.id, tx.sidelog)
	if err != nil {
		tx.sidelog = nil
		return err
	}
	// The ack point: stageCommit returned, so the rows are as durable as
	// the sync policy promises and the commit is about to be acknowledged
	// to the caller. Freshness is measured from here to groom visibility.
	tx.replica.appendWithSeqs(tx.sidelog, first, time.Now().UnixNano())
	tx.sidelog = nil
	return nil
}

// Abort discards the side-log.
func (tx *Txn) Abort() {
	tx.done = true
	tx.sidelog = nil
}

// UpsertRows is a convenience that runs one auto-committed transaction.
func (e *Engine) UpsertRows(replicaID int, rows ...Row) error {
	tx, err := e.Begin(replicaID)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := tx.Upsert(r); err != nil {
			tx.Abort()
			return err
		}
	}
	return tx.Commit()
}

// LiveCount reports the number of committed-but-ungroomed records across
// all replicas (live-zone size).
func (e *Engine) LiveCount() int {
	n := 0
	for _, r := range e.replicas {
		n += r.size()
	}
	return n
}
