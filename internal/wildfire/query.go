package wildfire

import (
	"bytes"
	"fmt"

	"umzi/internal/core"
	"umzi/internal/keyenc"
	"umzi/internal/run"
	"umzi/internal/types"
)

// Query front end. Depending on the freshness requirement a query reads
// the live zone, the groomed zone and/or the post-groomed zone (§3): the
// indexed zones are served by Umzi; the live zone — small by construction
// because the groomer runs every second — is scanned directly when the
// caller asks for it.

// QueryOptions control snapshot and freshness semantics.
type QueryOptions struct {
	// TS is the snapshot timestamp. Zero selects the newest groomed
	// snapshot (LastGroomTS), the default read point of §2.1's
	// quorum-readable semantics.
	TS types.TS
	// IncludeLive additionally scans committed-but-ungroomed records,
	// trading latency for freshness. Live records have no final beginTS
	// yet, so they are only consulted for reads at the newest snapshot.
	IncludeLive bool
	// Limit stops a scan after this many rows; 0 means unlimited. The
	// sharded layer pushes the limit into every shard and stops its
	// k-way merge after emitting Limit rows, so no shard materializes
	// more than Limit rows for a limited scan. Execute honors it too
	// (the tighter of Limit and the plan's own limit wins).
	Limit int
	// NoIndexSelection makes Execute evaluate its plan as a zone scan
	// even when the filter matches an index (baselines, ablations).
	NoIndexSelection bool
}

func (e *Engine) resolveTS(opts QueryOptions) types.TS {
	if opts.TS == 0 {
		return e.LastGroomTS()
	}
	return opts.TS
}

// Get returns the newest visible version of the primary key assembled
// from equality + sort column values.
func (e *Engine) Get(eq, sortv []keyenc.Value, opts QueryOptions) (Record, bool, error) {
	if e.closed.Load() {
		return Record{}, false, fmt.Errorf("wildfire: engine closed")
	}
	epoch := e.gate.enter()
	defer e.gate.exit(epoch)
	ts := e.resolveTS(opts)

	if opts.IncludeLive && ts >= e.LastGroomTS() {
		if rec, ok := e.liveLookup(eq, sortv); ok {
			return rec, true, nil
		}
	}
	entry, found, err := e.idx.PointLookup(eq, sortv, ts)
	if err != nil || !found {
		return Record{}, false, err
	}
	rec, err := e.Fetch(entry.RID)
	if err != nil {
		return Record{}, false, err
	}
	return rec, true, nil
}

// liveLookup scans the replicas' committed logs for the newest committed
// version of the key. Linear in live-zone size, which the groomer keeps
// small. The target composite is encoded once; each live record is
// compared column by column against the matching target segment through
// a reusable scratch buffer, bailing at the first mismatch instead of
// building a full composite (and an allocation) per record.
func (e *Engine) liveLookup(eq, sortv []keyenc.Value) (Record, bool) {
	primary := e.indexSet()[0]
	target := keyenc.AppendComposite(keyenc.AppendComposite(nil, eq...), sortv...)
	keyOrds := make([]int, 0, len(primary.eqIdx)+len(primary.sortIdx))
	keyOrds = append(keyOrds, primary.eqIdx...)
	keyOrds = append(keyOrds, primary.sortIdx...)
	var scratch []byte
	var best Row
	var bestSeq uint64
	for _, r := range e.replicas {
		r.scan(func(rec logRecord) {
			scratch = scratch[:0]
			for _, ord := range keyOrds {
				prev := len(scratch)
				scratch = keyenc.Append(scratch, rec.row[ord])
				if len(scratch) > len(target) || !bytes.Equal(scratch[prev:], target[prev:len(scratch)]) {
					return // this column already differs from the target
				}
			}
			if len(scratch) != len(target) {
				return
			}
			if rec.commitSeq >= bestSeq {
				best = rec.row
				bestSeq = rec.commitSeq
			}
		})
	}
	if best == nil {
		return Record{}, false
	}
	return Record{Row: best, BeginTS: types.MaxTS, EndTS: types.MaxTS}, true
}

// Scan returns the newest visible version of every key matching the
// equality values and the inclusive sort-column bounds, in key order.
func (e *Engine) Scan(eq []keyenc.Value, sortLo, sortHi []keyenc.Value, opts QueryOptions) ([]Record, error) {
	if e.closed.Load() {
		return nil, fmt.Errorf("wildfire: engine closed")
	}
	epoch := e.gate.enter()
	defer e.gate.exit(epoch)
	ts := e.resolveTS(opts)
	entries, err := e.idx.RangeScan(core.ScanOptions{
		Equality: eq,
		SortLo:   sortLo,
		SortHi:   sortHi,
		TS:       ts,
		Method:   core.MethodPQ,
		Limit:    opts.Limit,
	})
	if err != nil {
		return nil, err
	}
	out := make([]Record, 0, len(entries))
	for _, entry := range entries {
		rec, err := e.Fetch(entry.RID)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// IndexOnlyScan is Scan without fetching records: the result rows are
// assembled entirely from the index (key + included columns), the
// index-only access plan the included columns exist for (§4.1). Each
// result carries only the indexed columns, in spec order
// (equality, sort, included).
func (e *Engine) IndexOnlyScan(eq []keyenc.Value, sortLo, sortHi []keyenc.Value, opts QueryOptions) ([][]keyenc.Value, error) {
	if e.closed.Load() {
		return nil, fmt.Errorf("wildfire: engine closed")
	}
	epoch := e.gate.enter()
	defer e.gate.exit(epoch)
	entries, err := e.idx.RangeScan(core.ScanOptions{
		Equality: eq,
		SortLo:   sortLo,
		SortHi:   sortHi,
		TS:       e.resolveTS(opts),
		Method:   core.MethodPQ,
		Limit:    opts.Limit,
	})
	if err != nil {
		return nil, err
	}
	out := make([][]keyenc.Value, 0, len(entries))
	for _, entry := range entries {
		eqv, sortv, incl, err := e.idx.DecodeEntry(entry)
		if err != nil {
			return nil, err
		}
		row := make([]keyenc.Value, 0, len(eqv)+len(sortv)+len(incl))
		row = append(row, eqv...)
		row = append(row, sortv...)
		row = append(row, incl...)
		out = append(out, row)
	}
	return out, nil
}

// GetBatch resolves a batch of point lookups through the index's sorted
// batch path (§7.2).
func (e *Engine) GetBatch(keys []core.LookupKey, opts QueryOptions) ([]Record, []bool, error) {
	if e.closed.Load() {
		return nil, nil, fmt.Errorf("wildfire: engine closed")
	}
	epoch := e.gate.enter()
	defer e.gate.exit(epoch)
	entries, found, err := e.idx.LookupBatch(keys, e.resolveTS(opts))
	if err != nil {
		return nil, nil, err
	}
	out := make([]Record, len(keys))
	for i := range entries {
		if !found[i] {
			continue
		}
		rec, err := e.Fetch(entries[i].RID)
		if err != nil {
			return nil, nil, err
		}
		out[i] = rec
	}
	return out, found, nil
}

// ---- Index-choice queries ------------------------------------------
//
// Get/Scan serve the primary key; the *On variants accept an index
// choice ("" is the primary). A secondary query walks the chosen index
// and re-validates every candidate against the primary at the query
// timestamp (see indexset.go on the stale-entry problem), so its
// results match what a scan-and-filter over the reconciled table would
// produce for the indexed zones. Like Scan, the *On variants do not
// consult the live zone.

// verifiedEntry is one secondary-index candidate that survived the
// primary back-check: the entry plus its decoded value layout
// (equality ++ sort ++ included).
type verifiedEntry struct {
	entry run.Entry
	flat  []keyenc.Value
}

// indexScanEntries runs a range scan on one index of the set and
// returns the entries a caller may act on. For secondaries every entry
// is decoded and back-checked against the primary: a candidate whose
// beginTS is no longer the row's newest visible version at ts was
// superseded under a different secondary key and is dropped. For the
// primary, flat is decoded only when decode is set. limit counts
// verified entries; 0 means unlimited. Callers hold a gate epoch.
func (e *Engine) indexScanEntries(ti *tableIndex, eq, sortLo, sortHi []keyenc.Value, ts types.TS, limit int, decode bool) ([]verifiedEntry, error) {
	if len(eq) != len(ti.spec.Equality) {
		return nil, fmt.Errorf("wildfire: index %q scan requires all equality values (%d, want %d)",
			ti.name, len(eq), len(ti.spec.Equality))
	}
	// The back-check may drop candidates, so a limited secondary scan
	// over-fetches (4x) rather than materializing every match; if the
	// drops eat the headroom, one retry rescans unbounded.
	scanLimit := limit
	if !ti.primary() && limit > 0 {
		scanLimit = 4 * limit
	}
	for {
		entries, err := ti.idx.RangeScan(core.ScanOptions{
			Equality: eq,
			SortLo:   sortLo,
			SortHi:   sortHi,
			TS:       ts,
			Method:   core.MethodPQ,
			Limit:    scanLimit,
		})
		if err != nil {
			return nil, err
		}
		out, err := e.verifyEntries(ti, entries, ts, limit, decode)
		if err != nil {
			return nil, err
		}
		if limit == 0 || len(out) >= limit || scanLimit == 0 || len(entries) < scanLimit {
			return out, nil // limit reached, or the scan was exhaustive
		}
		scanLimit = 0
	}
}

// verifyEntries runs the primary back-check (and optional decode) over
// scanned entries, stopping after limit verified results (0 = all).
func (e *Engine) verifyEntries(ti *tableIndex, entries []run.Entry, ts types.TS, limit int, decode bool) ([]verifiedEntry, error) {
	out := make([]verifiedEntry, 0, len(entries))
	for _, entry := range entries {
		ve := verifiedEntry{entry: entry}
		var err error
		if !ti.primary() || decode {
			ve.flat, err = ti.decodeFlat(entry)
			if err != nil {
				return nil, err
			}
		}
		if !ti.primary() {
			pkEq, pkSort := ti.pkFromFlat(ve.flat)
			pe, found, err := e.idx.PointLookup(pkEq, pkSort, ts)
			if err != nil {
				return nil, err
			}
			if !found || pe.BeginTS != entry.BeginTS {
				continue // superseded under another secondary key
			}
		}
		out = append(out, ve)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}

// GetOn is Get through a chosen index. For a secondary the key need not
// be unique: eq and sortv cover the index's declared equality and sort
// columns (not the primary-key uniquifier), and the newest visible
// version of the first matching key in index order is returned.
func (e *Engine) GetOn(index string, eq, sortv []keyenc.Value, opts QueryOptions) (Record, bool, error) {
	if index == "" {
		return e.Get(eq, sortv, opts)
	}
	recs, err := e.ScanOn(index, eq, sortv, sortv, withLimit(opts, 1))
	if err != nil || len(recs) == 0 {
		return Record{}, false, err
	}
	return recs[0], true, nil
}

// withLimit tightens the options' row limit.
func withLimit(opts QueryOptions, limit int) QueryOptions {
	if opts.Limit == 0 || opts.Limit > limit {
		opts.Limit = limit
	}
	return opts
}

// ScanOn is Scan through a chosen index: the newest visible version of
// every key matching the equality values and the inclusive bounds on a
// prefix of the index's sort columns, in index-key order. Secondary
// results are verified against the primary before fetching.
func (e *Engine) ScanOn(index string, eq, sortLo, sortHi []keyenc.Value, opts QueryOptions) ([]Record, error) {
	if index == "" {
		return e.Scan(eq, sortLo, sortHi, opts)
	}
	if e.closed.Load() {
		return nil, fmt.Errorf("wildfire: engine closed")
	}
	ti, err := e.lookupIndex(index)
	if err != nil {
		return nil, err
	}
	epoch := e.gate.enter()
	defer e.gate.exit(epoch)
	ves, err := e.indexScanEntries(ti, eq, sortLo, sortHi, e.resolveTS(opts), opts.Limit, false)
	if err != nil {
		return nil, err
	}
	out := make([]Record, 0, len(ves))
	for _, ve := range ves {
		rec, err := e.Fetch(ve.entry.RID)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// IndexOnlyScanOn is ScanOn without fetching records: result rows are
// assembled entirely from the chosen index, in its effective column
// order (equality, sort — including the primary-key uniquifier —
// then included columns). Verification still runs, but touches only
// the primary index, never a data block.
func (e *Engine) IndexOnlyScanOn(index string, eq, sortLo, sortHi []keyenc.Value, opts QueryOptions) ([][]keyenc.Value, error) {
	if index == "" {
		return e.IndexOnlyScan(eq, sortLo, sortHi, opts)
	}
	if e.closed.Load() {
		return nil, fmt.Errorf("wildfire: engine closed")
	}
	ti, err := e.lookupIndex(index)
	if err != nil {
		return nil, err
	}
	epoch := e.gate.enter()
	defer e.gate.exit(epoch)
	ves, err := e.indexScanEntries(ti, eq, sortLo, sortHi, e.resolveTS(opts), opts.Limit, true)
	if err != nil {
		return nil, err
	}
	out := make([][]keyenc.Value, 0, len(ves))
	for _, ve := range ves {
		out = append(out, ve.flat)
	}
	return out, nil
}

// History walks the version chain of a key backwards from its newest
// visible version using prevRID (time travel, §2.1). Versions groomed
// but never post-groomed have no prevRID yet; the walk covers what the
// post-groomer has resolved plus the head version.
func (e *Engine) History(eq, sortv []keyenc.Value, opts QueryOptions, limit int) ([]Record, error) {
	epoch := e.gate.enter()
	defer e.gate.exit(epoch)
	rec, found, err := e.Get(eq, sortv, opts)
	if err != nil || !found {
		return nil, err
	}
	out := []Record{rec}
	for len(out) != limit && !rec.PrevRID.IsZero() {
		prev, err := e.Fetch(rec.PrevRID)
		if err != nil {
			return nil, err
		}
		out = append(out, prev)
		rec = prev
	}
	return out, nil
}
