package wildfire

import (
	"bytes"
	"context"
	"fmt"

	"umzi/internal/core"
	"umzi/internal/keyenc"
	"umzi/internal/obs"
	"umzi/internal/run"
	"umzi/internal/types"
)

// Query front end. Depending on the freshness requirement a query reads
// the live zone, the groomed zone and/or the post-groomed zone (§3): the
// indexed zones are served by Umzi; the live zone — small by construction
// because the groomer runs every second — is scanned directly when the
// caller asks for it.
//
// Every read path exists in one implementation, the streaming one:
// ScanStreamOn / IndexOnlyStreamOn return cursors that fetch data blocks
// lazily and honor context cancellation, and the materialized []Record
// entry points drain those cursors. QueryOptions.Limit therefore behaves
// identically everywhere — it bounds the index scan, the verification
// pass and the emission, on one shard or many.

// QueryOptions control snapshot and freshness semantics.
type QueryOptions struct {
	// TS is the snapshot timestamp. Zero selects the newest groomed
	// snapshot (LastGroomTS), the default read point of §2.1's
	// quorum-readable semantics.
	TS types.TS
	// IncludeLive additionally scans committed-but-ungroomed records,
	// trading latency for freshness. Live records have no final beginTS
	// yet, so they are only consulted for reads at the newest snapshot.
	IncludeLive bool
	// Limit stops a scan after this many rows; 0 means unlimited. The
	// sharded layer pushes the limit into every shard and stops its
	// k-way merge after emitting Limit rows, so no shard materializes
	// more than Limit rows for a limited scan. Execute honors it too
	// (the tighter of Limit and the plan's own limit wins).
	Limit int
	// NoIndexSelection makes Execute evaluate its plan as a zone scan
	// even when the filter matches an index (baselines, ablations).
	NoIndexSelection bool
	// ScalarExec makes Execute evaluate its zone scan with the legacy
	// row-at-a-time path: min/max synopsis skipping only (no bloom
	// filters) and per-row predicate evaluation through RowView instead
	// of vectorized selection bitmaps. Baseline for the Figure S5 sweep.
	ScalarExec bool
	// Trace, when set, receives the query's execution profile: per-shard
	// spans, blocks read vs. synopsis-skipped, live-union size, and
	// back-check counts. Nil is a no-op (every trace method is
	// nil-receiver safe).
	Trace *obs.QueryTrace
}

func (e *Engine) resolveTS(opts QueryOptions) types.TS {
	if opts.TS == 0 {
		return e.LastGroomTS()
	}
	return opts.TS
}

// Get returns the newest visible version of the primary key assembled
// from equality + sort column values.
func (e *Engine) Get(eq, sortv []keyenc.Value, opts QueryOptions) (Record, bool, error) {
	return e.GetContext(context.Background(), eq, sortv, opts)
}

// GetContext is Get honoring a context.
func (e *Engine) GetContext(ctx context.Context, eq, sortv []keyenc.Value, opts QueryOptions) (Record, bool, error) {
	if e.closed.Load() {
		return Record{}, false, fmt.Errorf("wildfire: engine closed")
	}
	if err := ctx.Err(); err != nil {
		return Record{}, false, err
	}
	epoch := e.gate.enter()
	defer e.gate.exit(epoch)
	ts := e.resolveTS(opts)

	if opts.IncludeLive && ts >= e.LastGroomTS() {
		if rec, ok := e.liveLookup(eq, sortv); ok {
			return rec, true, nil
		}
	}
	entry, found, err := e.idx.PointLookup(eq, sortv, ts)
	if err != nil || !found {
		return Record{}, false, err
	}
	rec, err := e.FetchContext(ctx, entry.RID)
	if err != nil {
		return Record{}, false, err
	}
	return rec, true, nil
}

// liveLookup scans the replicas' committed logs for the newest committed
// version of the key. Linear in live-zone size, which the groomer keeps
// small. The target composite is encoded once; each live record is
// compared column by column against the matching target segment through
// a reusable scratch buffer, bailing at the first mismatch instead of
// building a full composite (and an allocation) per record.
func (e *Engine) liveLookup(eq, sortv []keyenc.Value) (Record, bool) {
	primary := e.indexSet()[0]
	target := keyenc.AppendComposite(keyenc.AppendComposite(nil, eq...), sortv...)
	keyOrds := make([]int, 0, len(primary.eqIdx)+len(primary.sortIdx))
	keyOrds = append(keyOrds, primary.eqIdx...)
	keyOrds = append(keyOrds, primary.sortIdx...)
	var scratch []byte
	var best Row
	var bestSeq uint64
	for _, r := range e.replicas {
		r.scan(func(rec logRecord) {
			scratch = scratch[:0]
			for _, ord := range keyOrds {
				prev := len(scratch)
				scratch = keyenc.Append(scratch, rec.row[ord])
				if len(scratch) > len(target) || !bytes.Equal(scratch[prev:], target[prev:len(scratch)]) {
					return // this column already differs from the target
				}
			}
			if len(scratch) != len(target) {
				return
			}
			if rec.commitSeq >= bestSeq {
				best = rec.row
				bestSeq = rec.commitSeq
			}
		})
	}
	if best == nil {
		return Record{}, false
	}
	return Record{Row: best, BeginTS: types.MaxTS, EndTS: types.MaxTS}, true
}

// Scan returns the newest visible version of every key matching the
// equality values and the inclusive sort-column bounds, in key order.
func (e *Engine) Scan(eq []keyenc.Value, sortLo, sortHi []keyenc.Value, opts QueryOptions) ([]Record, error) {
	return drainCursor(e.ScanStreamOn(context.Background(), "", eq, sortLo, sortHi, opts))
}

// IndexOnlyScan is Scan without fetching records: the result rows are
// assembled entirely from the index (key + included columns), the
// index-only access plan the included columns exist for (§4.1). Each
// result carries only the indexed columns, in spec order
// (equality, sort, included).
func (e *Engine) IndexOnlyScan(eq []keyenc.Value, sortLo, sortHi []keyenc.Value, opts QueryOptions) ([][]keyenc.Value, error) {
	return drainCursor(e.IndexOnlyStreamOn(context.Background(), "", eq, sortLo, sortHi, opts))
}

// GetBatch resolves a batch of point lookups through the index's sorted
// batch path (§7.2).
func (e *Engine) GetBatch(keys []core.LookupKey, opts QueryOptions) ([]Record, []bool, error) {
	return e.GetBatchContext(context.Background(), keys, opts)
}

// GetBatchContext is GetBatch honoring a context.
func (e *Engine) GetBatchContext(ctx context.Context, keys []core.LookupKey, opts QueryOptions) ([]Record, []bool, error) {
	if e.closed.Load() {
		return nil, nil, fmt.Errorf("wildfire: engine closed")
	}
	epoch := e.gate.enter()
	defer e.gate.exit(epoch)
	entries, found, err := e.idx.LookupBatch(keys, e.resolveTS(opts))
	if err != nil {
		return nil, nil, err
	}
	out := make([]Record, len(keys))
	for i := range entries {
		if !found[i] {
			continue
		}
		rec, err := e.FetchContext(ctx, entries[i].RID)
		if err != nil {
			return nil, nil, err
		}
		out[i] = rec
	}
	return out, found, nil
}

// ---- Index-choice queries ------------------------------------------
//
// Get/Scan serve the primary key; the *On variants accept an index
// choice ("" is the primary). A secondary query walks the chosen index
// and re-validates every candidate against the primary at the query
// timestamp (see indexset.go on the stale-entry problem), so its
// results match what a scan-and-filter over the reconciled table would
// produce for the indexed zones. Like Scan, the *On variants do not
// consult the live zone.

// verifiedEntry is one secondary-index candidate that survived the
// primary back-check: the entry plus its decoded value layout
// (equality ++ sort ++ included).
type verifiedEntry struct {
	entry run.Entry
	flat  []keyenc.Value
}

// verifyCheckEvery is how many entries a verification pass processes
// between context checks.
const verifyCheckEvery = 256

// indexScanEntries runs a range scan on one index of the set and
// returns the entries a caller may act on. For secondaries every entry
// is decoded and back-checked against the primary: a candidate whose
// beginTS is no longer the row's newest visible version at ts was
// superseded under a different secondary key and is dropped. For the
// primary, flat is decoded only when decode is set. limit counts
// verified entries; 0 means unlimited. Callers hold a gate epoch.
func (e *Engine) indexScanEntries(ctx context.Context, ti *tableIndex, eq, sortLo, sortHi []keyenc.Value, ts types.TS, limit int, decode bool, tr *obs.QueryTrace) ([]verifiedEntry, error) {
	if len(eq) != len(ti.spec.Equality) {
		return nil, fmt.Errorf("wildfire: index %q scan requires all equality values (%d, want %d)",
			ti.name, len(eq), len(ti.spec.Equality))
	}
	// The back-check may drop candidates, so a limited secondary scan
	// over-fetches (4x) rather than materializing every match; if the
	// drops eat the headroom, one retry rescans unbounded.
	scanLimit := limit
	if !ti.primary() && limit > 0 {
		scanLimit = 4 * limit
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		entries, err := ti.idx.RangeScan(core.ScanOptions{
			Equality: eq,
			SortLo:   sortLo,
			SortHi:   sortHi,
			TS:       ts,
			Method:   core.MethodPQ,
			Limit:    scanLimit,
		})
		if err != nil {
			return nil, err
		}
		out, err := e.verifyEntries(ctx, ti, entries, ts, limit, decode, tr)
		if err != nil {
			return nil, err
		}
		if limit == 0 || len(out) >= limit || scanLimit == 0 || len(entries) < scanLimit {
			return out, nil // limit reached, or the scan was exhaustive
		}
		scanLimit = 0
	}
}

// verifyEntry runs the primary back-check (and optional decode) over
// one scanned entry; ok=false means the candidate was superseded under
// another secondary key and must be dropped.
func (e *Engine) verifyEntry(ti *tableIndex, entry run.Entry, ts types.TS, decode bool, tr *obs.QueryTrace) (verifiedEntry, bool, error) {
	ve := verifiedEntry{entry: entry}
	var err error
	if !ti.primary() || decode {
		ve.flat, err = ti.decodeFlat(entry)
		if err != nil {
			return ve, false, err
		}
	}
	if !ti.primary() {
		e.mx.backChecks.Inc()
		tr.AddBackChecked(1)
		pkEq, pkSort := ti.pkFromFlat(ve.flat)
		pe, found, err := e.idx.PointLookup(pkEq, pkSort, ts)
		if err != nil {
			return ve, false, err
		}
		if !found || pe.BeginTS != entry.BeginTS {
			e.mx.backCheckDrops.Inc()
			tr.AddBackCheckDropped(1)
			return ve, false, nil // superseded under another secondary key
		}
	}
	return ve, true, nil
}

// verifyEntries runs the primary back-check (and optional decode) over
// scanned entries, stopping after limit verified results (0 = all). The
// context is checked every verifyCheckEvery entries so a cancelled
// query abandons a large verification pass promptly.
func (e *Engine) verifyEntries(ctx context.Context, ti *tableIndex, entries []run.Entry, ts types.TS, limit int, decode bool, tr *obs.QueryTrace) ([]verifiedEntry, error) {
	out := make([]verifiedEntry, 0, len(entries))
	for i, entry := range entries {
		if i%verifyCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		ve, ok, err := e.verifyEntry(ti, entry, ts, decode, tr)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		out = append(out, ve)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}

// ScanStreamOn streams the newest visible version of every key matching
// the equality values and the inclusive bounds on a prefix of the
// chosen index's sort columns, in index-key order ("" is the primary).
// The raw index walk runs up front (bounded by opts.Limit when set);
// data blocks — and, for unlimited scans, the per-entry verification
// back-check — run lazily per Next, honoring the context. The cursor
// holds a query-gate epoch until Close or exhaustion.
func (e *Engine) ScanStreamOn(ctx context.Context, index string, eq, sortLo, sortHi []keyenc.Value, opts QueryOptions) (*Cursor[Record], error) {
	next, release, err := e.openIndexScan(ctx, index, eq, sortLo, sortHi, opts, false)
	if err != nil {
		return nil, err
	}
	fetch := func() (Record, bool, error) {
		ve, ok, err := next()
		if err != nil || !ok {
			return Record{}, false, err
		}
		rec, err := e.FetchContext(ctx, ve.entry.RID)
		if err != nil {
			return Record{}, false, err
		}
		return rec, true, nil
	}
	return newCursor(fetch, release), nil
}

// IndexOnlyStreamOn is ScanStreamOn without record fetches: result rows
// are assembled entirely from the chosen index, in its effective column
// order (equality, sort — including the primary-key uniquifier for
// secondaries — then included columns). Verification still runs, but
// touches only the primary index, never a data block.
func (e *Engine) IndexOnlyStreamOn(ctx context.Context, index string, eq, sortLo, sortHi []keyenc.Value, opts QueryOptions) (*Cursor[[]keyenc.Value], error) {
	next, release, err := e.openIndexScan(ctx, index, eq, sortLo, sortHi, opts, true)
	if err != nil {
		return nil, err
	}
	fetch := func() ([]keyenc.Value, bool, error) {
		ve, ok, err := next()
		if err != nil || !ok {
			return nil, false, err
		}
		return ve.flat, true, nil
	}
	return newCursor(fetch, release), nil
}

// openIndexScan is the shared front half of the streaming scans: enter
// the query gate, resolve the index, run the raw index walk, and return
// a pull function over verified entries. Limited scans verify eagerly —
// the existing over-fetch/retry machinery bounds the work to ~4x the
// limit. Unlimited scans verify LAZILY, one entry per pull: the raw
// entries are materialized (that is the core index's scan contract),
// but the expensive part — per-candidate decode and primary back-check
// — happens only as the consumer advances, so an early Close abandons
// it. The returned release func exits the gate epoch and must be called
// exactly once (the cursors do this via Close).
func (e *Engine) openIndexScan(ctx context.Context, index string, eq, sortLo, sortHi []keyenc.Value, opts QueryOptions, decode bool) (func() (verifiedEntry, bool, error), func() error, error) {
	if e.closed.Load() {
		return nil, nil, fmt.Errorf("wildfire: engine closed")
	}
	ti, err := e.lookupIndex(index)
	if err != nil {
		return nil, nil, err
	}
	if len(eq) != len(ti.spec.Equality) {
		return nil, nil, fmt.Errorf("wildfire: index %q scan requires all equality values (%d, want %d)",
			ti.name, len(eq), len(ti.spec.Equality))
	}
	ts := e.resolveTS(opts)
	epoch := e.gate.enter()
	release := func() error { e.gate.exit(epoch); return nil }

	if opts.Limit > 0 {
		ves, err := e.indexScanEntries(ctx, ti, eq, sortLo, sortHi, ts, opts.Limit, decode, opts.Trace)
		if err != nil {
			release()
			return nil, nil, err
		}
		i := 0
		next := func() (verifiedEntry, bool, error) {
			if err := ctx.Err(); err != nil {
				return verifiedEntry{}, false, err
			}
			if i >= len(ves) {
				return verifiedEntry{}, false, nil
			}
			ve := ves[i]
			i++
			return ve, true, nil
		}
		return next, release, nil
	}

	entries, err := ti.idx.RangeScan(core.ScanOptions{
		Equality: eq,
		SortLo:   sortLo,
		SortHi:   sortHi,
		TS:       ts,
		Method:   core.MethodPQ,
	})
	if err != nil {
		release()
		return nil, nil, err
	}
	i := 0
	next := func() (verifiedEntry, bool, error) {
		for {
			if i%verifyCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return verifiedEntry{}, false, err
				}
			}
			if i >= len(entries) {
				return verifiedEntry{}, false, nil
			}
			entry := entries[i]
			i++
			ve, ok, err := e.verifyEntry(ti, entry, ts, decode, opts.Trace)
			if err != nil {
				return verifiedEntry{}, false, err
			}
			if !ok {
				continue
			}
			return ve, true, nil
		}
	}
	return next, release, nil
}

// GetOn is Get through a chosen index. For a secondary the key need not
// be unique: eq and sortv cover the index's declared equality and sort
// columns (not the primary-key uniquifier), and the newest visible
// version of the first matching key in index order is returned.
func (e *Engine) GetOn(index string, eq, sortv []keyenc.Value, opts QueryOptions) (Record, bool, error) {
	return e.GetOnContext(context.Background(), index, eq, sortv, opts)
}

// GetOnContext is GetOn honoring a context.
func (e *Engine) GetOnContext(ctx context.Context, index string, eq, sortv []keyenc.Value, opts QueryOptions) (Record, bool, error) {
	if index == "" {
		return e.GetContext(ctx, eq, sortv, opts)
	}
	recs, err := drainCursor(e.ScanStreamOn(ctx, index, eq, sortv, sortv, withLimit(opts, 1)))
	if err != nil || len(recs) == 0 {
		return Record{}, false, err
	}
	return recs[0], true, nil
}

// withLimit tightens the options' row limit.
func withLimit(opts QueryOptions, limit int) QueryOptions {
	if opts.Limit == 0 || opts.Limit > limit {
		opts.Limit = limit
	}
	return opts
}

// ScanOn is Scan through a chosen index: the newest visible version of
// every key matching the equality values and the inclusive bounds on a
// prefix of the index's sort columns, in index-key order. Secondary
// results are verified against the primary before fetching.
func (e *Engine) ScanOn(index string, eq, sortLo, sortHi []keyenc.Value, opts QueryOptions) ([]Record, error) {
	return drainCursor(e.ScanStreamOn(context.Background(), index, eq, sortLo, sortHi, opts))
}

// IndexOnlyScanOn is ScanOn without fetching records: result rows are
// assembled entirely from the chosen index (see IndexOnlyStreamOn).
func (e *Engine) IndexOnlyScanOn(index string, eq, sortLo, sortHi []keyenc.Value, opts QueryOptions) ([][]keyenc.Value, error) {
	return drainCursor(e.IndexOnlyStreamOn(context.Background(), index, eq, sortLo, sortHi, opts))
}

// History walks the version chain of a key backwards from its newest
// visible version using prevRID (time travel, §2.1). Versions groomed
// but never post-groomed have no prevRID yet; the walk covers what the
// post-groomer has resolved plus the head version.
func (e *Engine) History(eq, sortv []keyenc.Value, opts QueryOptions, limit int) ([]Record, error) {
	epoch := e.gate.enter()
	defer e.gate.exit(epoch)
	rec, found, err := e.Get(eq, sortv, opts)
	if err != nil || !found {
		return nil, err
	}
	out := []Record{rec}
	for len(out) != limit && !rec.PrevRID.IsZero() {
		prev, err := e.Fetch(rec.PrevRID)
		if err != nil {
			return nil, err
		}
		out = append(out, prev)
		rec = prev
	}
	return out, nil
}
