package wildfire

import (
	"fmt"

	"umzi/internal/core"
	"umzi/internal/keyenc"
	"umzi/internal/types"
)

// Query front end. Depending on the freshness requirement a query reads
// the live zone, the groomed zone and/or the post-groomed zone (§3): the
// indexed zones are served by Umzi; the live zone — small by construction
// because the groomer runs every second — is scanned directly when the
// caller asks for it.

// QueryOptions control snapshot and freshness semantics.
type QueryOptions struct {
	// TS is the snapshot timestamp. Zero selects the newest groomed
	// snapshot (LastGroomTS), the default read point of §2.1's
	// quorum-readable semantics.
	TS types.TS
	// IncludeLive additionally scans committed-but-ungroomed records,
	// trading latency for freshness. Live records have no final beginTS
	// yet, so they are only consulted for reads at the newest snapshot.
	IncludeLive bool
	// Limit stops a scan after this many rows; 0 means unlimited. The
	// sharded layer pushes the limit into every shard and stops its
	// k-way merge after emitting Limit rows, so no shard materializes
	// more than Limit rows for a limited scan. Execute honors it too
	// (the tighter of Limit and the plan's own limit wins).
	Limit int
}

func (e *Engine) resolveTS(opts QueryOptions) types.TS {
	if opts.TS == 0 {
		return e.LastGroomTS()
	}
	return opts.TS
}

// Get returns the newest visible version of the primary key assembled
// from equality + sort column values.
func (e *Engine) Get(eq, sortv []keyenc.Value, opts QueryOptions) (Record, bool, error) {
	if e.closed.Load() {
		return Record{}, false, fmt.Errorf("wildfire: engine closed")
	}
	epoch := e.gate.enter()
	defer e.gate.exit(epoch)
	ts := e.resolveTS(opts)

	if opts.IncludeLive && ts >= e.LastGroomTS() {
		if rec, ok := e.liveLookup(eq, sortv); ok {
			return rec, true, nil
		}
	}
	entry, found, err := e.idx.PointLookup(eq, sortv, ts)
	if err != nil || !found {
		return Record{}, false, err
	}
	rec, err := e.Fetch(entry.RID)
	if err != nil {
		return Record{}, false, err
	}
	return rec, true, nil
}

// liveLookup scans the replicas' committed logs for the newest committed
// version of the key. Linear in live-zone size, which the groomer keeps
// small.
func (e *Engine) liveLookup(eq, sortv []keyenc.Value) (Record, bool) {
	target := string(keyenc.AppendComposite(keyenc.AppendComposite(nil, eq...), sortv...))
	var best Row
	var bestSeq uint64
	for _, r := range e.replicas {
		r.scan(func(rec logRecord) {
			key := string(keyenc.AppendComposite(
				keyenc.AppendComposite(nil, e.eqVals(rec.row)...),
				e.sortVals(rec.row)...))
			if key == target && rec.commitSeq >= bestSeq {
				best = rec.row
				bestSeq = rec.commitSeq
			}
		})
	}
	if best == nil {
		return Record{}, false
	}
	return Record{Row: best, BeginTS: types.MaxTS, EndTS: types.MaxTS}, true
}

// Scan returns the newest visible version of every key matching the
// equality values and the inclusive sort-column bounds, in key order.
func (e *Engine) Scan(eq []keyenc.Value, sortLo, sortHi []keyenc.Value, opts QueryOptions) ([]Record, error) {
	if e.closed.Load() {
		return nil, fmt.Errorf("wildfire: engine closed")
	}
	epoch := e.gate.enter()
	defer e.gate.exit(epoch)
	ts := e.resolveTS(opts)
	entries, err := e.idx.RangeScan(core.ScanOptions{
		Equality: eq,
		SortLo:   sortLo,
		SortHi:   sortHi,
		TS:       ts,
		Method:   core.MethodPQ,
		Limit:    opts.Limit,
	})
	if err != nil {
		return nil, err
	}
	out := make([]Record, 0, len(entries))
	for _, entry := range entries {
		rec, err := e.Fetch(entry.RID)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// IndexOnlyScan is Scan without fetching records: the result rows are
// assembled entirely from the index (key + included columns), the
// index-only access plan the included columns exist for (§4.1). Each
// result carries only the indexed columns, in spec order
// (equality, sort, included).
func (e *Engine) IndexOnlyScan(eq []keyenc.Value, sortLo, sortHi []keyenc.Value, opts QueryOptions) ([][]keyenc.Value, error) {
	if e.closed.Load() {
		return nil, fmt.Errorf("wildfire: engine closed")
	}
	epoch := e.gate.enter()
	defer e.gate.exit(epoch)
	entries, err := e.idx.RangeScan(core.ScanOptions{
		Equality: eq,
		SortLo:   sortLo,
		SortHi:   sortHi,
		TS:       e.resolveTS(opts),
		Method:   core.MethodPQ,
		Limit:    opts.Limit,
	})
	if err != nil {
		return nil, err
	}
	out := make([][]keyenc.Value, 0, len(entries))
	for _, entry := range entries {
		eqv, sortv, incl, err := e.idx.DecodeEntry(entry)
		if err != nil {
			return nil, err
		}
		row := make([]keyenc.Value, 0, len(eqv)+len(sortv)+len(incl))
		row = append(row, eqv...)
		row = append(row, sortv...)
		row = append(row, incl...)
		out = append(out, row)
	}
	return out, nil
}

// GetBatch resolves a batch of point lookups through the index's sorted
// batch path (§7.2).
func (e *Engine) GetBatch(keys []core.LookupKey, opts QueryOptions) ([]Record, []bool, error) {
	if e.closed.Load() {
		return nil, nil, fmt.Errorf("wildfire: engine closed")
	}
	epoch := e.gate.enter()
	defer e.gate.exit(epoch)
	entries, found, err := e.idx.LookupBatch(keys, e.resolveTS(opts))
	if err != nil {
		return nil, nil, err
	}
	out := make([]Record, len(keys))
	for i := range entries {
		if !found[i] {
			continue
		}
		rec, err := e.Fetch(entries[i].RID)
		if err != nil {
			return nil, nil, err
		}
		out[i] = rec
	}
	return out, found, nil
}

// History walks the version chain of a key backwards from its newest
// visible version using prevRID (time travel, §2.1). Versions groomed
// but never post-groomed have no prevRID yet; the walk covers what the
// post-groomer has resolved plus the head version.
func (e *Engine) History(eq, sortv []keyenc.Value, opts QueryOptions, limit int) ([]Record, error) {
	epoch := e.gate.enter()
	defer e.gate.exit(epoch)
	rec, found, err := e.Get(eq, sortv, opts)
	if err != nil || !found {
		return nil, err
	}
	out := []Record{rec}
	for len(out) != limit && !rec.PrevRID.IsZero() {
		prev, err := e.Fetch(rec.PrevRID)
		if err != nil {
			return nil, err
		}
		out = append(out, prev)
		rec = prev
	}
	return out, nil
}
