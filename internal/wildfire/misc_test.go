package wildfire

import (
	"testing"

	"umzi/internal/keyenc"
	"umzi/internal/types"
)

func TestFetchErrors(t *testing.T) {
	e := newTestEngine(t, nil)
	ingestAndGroom(t, e, row(1, 1, 1.0, 100))
	// Live-zone RIDs have no blocks.
	if _, err := e.Fetch(types.RID{Zone: types.ZoneLive, Block: 1}); err == nil {
		t.Error("Fetch of live-zone RID accepted")
	}
	// Offset out of range.
	if _, err := e.Fetch(types.RID{Zone: types.ZoneGroomed, Block: 1, Offset: 999}); err == nil {
		t.Error("Fetch past block size accepted")
	}
	// Missing block.
	if _, err := e.Fetch(types.RID{Zone: types.ZonePostGroomed, Block: 42, Offset: 0}); err == nil {
		t.Error("Fetch of missing block accepted")
	}
}

func TestPSNMetaRoundTrip(t *testing.T) {
	enc := encodePSNMeta(3, 9, []uint64{100, 101})
	lo, hi, blocks, err := decodePSNMeta(enc)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 3 || hi != 9 || len(blocks) != 2 || blocks[0] != 100 || blocks[1] != 101 {
		t.Errorf("round trip = (%d,%d,%v)", lo, hi, blocks)
	}
	for _, bad := range [][]byte{nil, []byte("short"), enc[:20], append([]byte("XXXXXXXX"), enc[8:]...)} {
		if _, _, _, err := decodePSNMeta(bad); err == nil {
			t.Errorf("corrupt PSN meta accepted: %x", bad)
		}
	}
}

func TestEndTSSidecarRoundTrip(t *testing.T) {
	updates := []endTSUpdate{
		{rid: types.RID{Zone: types.ZonePostGroomed, Block: 1, Offset: 2}, ts: 100},
		{rid: types.RID{Zone: types.ZonePostGroomed, Block: 3, Offset: 4}, ts: 200},
	}
	enc := encodeEndTSSidecar(updates)
	got := map[types.RID]types.TS{}
	decodeEndTSSidecar(enc, func(rid types.RID, ts types.TS) { got[rid] = ts })
	if len(got) != 2 {
		t.Fatalf("decoded %d entries", len(got))
	}
	for _, u := range updates {
		if got[u.rid] != u.ts {
			t.Errorf("rid %v: ts = %v, want %v", u.rid, got[u.rid], u.ts)
		}
	}
	// Corrupt inputs are ignored, never panic.
	decodeEndTSSidecar(nil, func(types.RID, types.TS) { t.Error("visited on nil input") })
	decodeEndTSSidecar([]byte("garbagegarbage"), func(types.RID, types.TS) { t.Error("visited on garbage") })
	// Truncated payload stops early.
	n := 0
	decodeEndTSSidecar(enc[:len(enc)-4], func(types.RID, types.TS) { n++ })
	if n != 1 {
		t.Errorf("truncated sidecar yielded %d entries, want 1", n)
	}
}

func TestPostGroomRetriesAfterFailure(t *testing.T) {
	// A post-groom that cannot publish (duplicate object name injected)
	// must put the drained blocks back so a later call succeeds.
	e := newTestEngine(t, nil)
	ingestAndGroom(t, e, row(1, 1, 1.0, 100))
	// Occupy the PSN meta name the next post-groom will try to write.
	if err := e.store.Put(psnMetaName(e.table.Name, 1), []byte("squatter")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PostGroom(); err == nil {
		t.Fatal("post-groom should fail on the occupied meta name")
	}
	// Clear the squatter; the retry must pick the same blocks up again.
	if err := e.store.Delete(psnMetaName(e.table.Name, 1)); err != nil {
		t.Fatal(err)
	}
	psn, err := e.PostGroom()
	if err != nil {
		t.Fatal(err)
	}
	if psn != 1 {
		t.Fatalf("retry PSN = %d, want 1", psn)
	}
	if err := e.SyncIndex(); err != nil {
		t.Fatal(err)
	}
	eq, sortv := key(1, 1)
	if _, found, _ := e.Get(eq, sortv, QueryOptions{}); !found {
		t.Error("record lost across post-groom retry")
	}
}

func TestLiveLookupPrefersLatestCommit(t *testing.T) {
	e := newTestEngine(t, nil)
	// Two ungroomed versions of the same key on different replicas.
	if err := e.UpsertRows(0, row(1, 1, 1.0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := e.UpsertRows(1, row(1, 1, 2.0, 100)); err != nil {
		t.Fatal(err)
	}
	rec, found := e.liveLookup([]keyenc.Value{keyenc.I64(1)}, []keyenc.Value{keyenc.I64(1)})
	if !found || rec.Row[2].Float() != 2.0 {
		t.Errorf("liveLookup = %v %v, want latest commit 2.0", found, rec.Row)
	}
}

func TestPartitionOfStability(t *testing.T) {
	e := newTestEngine(t, func(c *Config) { c.Partitions = 8 })
	r := row(1, 1, 1.0, 100)
	p := e.partitionOf(r)
	for i := 0; i < 10; i++ {
		if e.partitionOf(r) != p {
			t.Fatal("partitionOf not deterministic")
		}
	}
	if p < 0 || p >= 8 {
		t.Fatalf("partition %d out of range", p)
	}
	// No partition key: everything lands in bucket 0.
	e2 := newTestEngine(t, func(c *Config) { c.Table.PartitionKey = "" })
	if e2.partitionOf(r) != 0 {
		t.Error("no partition key must map to bucket 0")
	}
}
