package wildfire

import (
	"time"

	"umzi/internal/keyenc"
	"umzi/internal/obs"
)

// Engine observability. Every Engine (one table shard) owns an
// engineMetrics bundle: typed handles into an obs.Registry, labeled with
// the shard-qualified table name, so recording on hot paths is a direct
// atomic op with no registry lookup. A ShardedEngine carries its own
// bundle under the base table name for the query-level signals it owns
// (plan counts, latencies, cursor lifetimes); the per-shard write/groom
// signals live under each shard's name. When no registry is supplied the
// bundle records into a private one, so handles are always non-nil and
// the hot paths never branch on configuration.

// planLabel maps a compiled query mode to its metric/trace label.
func planLabel(m queryMode) string {
	switch m {
	case modePointGet:
		return "point-get"
	case modeIndexScan:
		return "index-scan"
	case modeIndexOnly:
		return "index-only"
	default:
		return "exec"
	}
}

var planModes = []queryMode{modeExec, modePointGet, modeIndexScan, modeIndexOnly}

// engineMetrics is the per-table handle bundle. See DESIGN.md
// "Observability" for the metric catalog.
type engineMetrics struct {
	reg *obs.Registry

	// WAL / durable write path.
	walAppends      *obs.Counter
	walRows         *obs.Counter
	walCommitErrors *obs.Counter
	walFlushErrors  *obs.Counter
	walBatch        *obs.Histogram // records per segment (group-commit batch size)
	walSync         *obs.Histogram // segment write latency, ns
	walReclaimed    *obs.Counter
	walPruneErrors  *obs.Counter

	// Groomer.
	groomCycles   *obs.Counter
	groomDuration *obs.Histogram // ns
	groomRows     *obs.Histogram // records per cycle
	freshness     *obs.Histogram // commit-ack -> groomed-visibility, ns

	// Storage / cache (engine block cache).
	blockCacheHits *obs.Counter
	blockFetches   *obs.Counter

	// Analytical executor.
	execBlocksRead         *obs.Counter
	execBlocksSkipped      *obs.Counter
	execBlocksBloomSkipped *obs.Counter

	// Secondary-index verification.
	backChecks     *obs.Counter
	backCheckDrops *obs.Counter

	// Query front end.
	queryCount     map[queryMode]*obs.Counter
	queryLatency   map[queryMode]*obs.Histogram // time to first row, ns
	queryRows      *obs.Counter
	earlyCloses    *obs.Counter
	cursorLifetime *obs.Histogram // open -> close/exhaustion, ns
	releaseErrors  *obs.Counter
}

// newEngineMetrics registers (or re-binds, on reopen) the table's metric
// handles. A nil registry gets a private one: the engine is then fully
// instrumented but nothing is exposed, which is also what the overhead
// benchmark measures against a no-op (nil-handle) bundle.
func newEngineMetrics(reg *obs.Registry, table string) *engineMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	l := obs.Labels{"table": table}
	m := &engineMetrics{
		reg:             reg,
		walAppends:      reg.Counter("wal_appends", "commit records appended to the shard log", l),
		walRows:         reg.Counter("wal_rows", "rows appended to the shard log", l),
		walCommitErrors: reg.Counter("wal_commit_errors", "commit-log appends that failed (sequences recorded as lost)", l),
		walFlushErrors:  reg.Counter("wal_flush_errors", "background/size-triggered log flushes that failed and will retry", l),
		walBatch:        reg.Histogram("wal_batch_records", "records per durable segment write (group-commit batch size)", "records", l),
		walSync:         reg.Histogram("wal_sync_ns", "segment write (sync) latency", "ns", l),
		walReclaimed:    reg.Counter("wal_segments_reclaimed", "log segments deleted below the groom watermark", l),
		walPruneErrors:  reg.Counter("wal_mark_prune_errors", "superseded watermark records whose delete failed", l),
		groomCycles:     reg.Counter("groom_cycles", "groom operations that produced a block", l),
		groomDuration:   reg.Histogram("groom_duration_ns", "groom cycle duration", "ns", l),
		groomRows:       reg.Histogram("groom_rows", "records groomed per cycle", "records", l),
		freshness:       reg.Histogram("groom_freshness_ns", "commit acknowledgment to groomed visibility", "ns", l),
		blockCacheHits:  reg.Counter("cache_block_hits", "data-block reads served from the in-memory block cache", l),
		blockFetches:    reg.Counter("cache_block_fetches", "data-block reads that went to shared storage", l),
		execBlocksRead:  reg.Counter("exec_blocks_read", "blocks scanned with data columns materialized", l),
		execBlocksSkipped: reg.Counter("exec_blocks_skipped",
			"blocks excluded by min/max synopses (timestamp or filter) or bloom filters", l),
		execBlocksBloomSkipped: reg.Counter("exec_blocks_bloom_skipped",
			"blocks excluded by per-column bloom filters (subset of exec_blocks_skipped)", l),
		backChecks:     reg.Counter("index_back_checks", "secondary-index candidates verified against the primary", l),
		backCheckDrops: reg.Counter("index_back_check_drops", "verified candidates dropped as superseded", l),
		queryCount:     make(map[queryMode]*obs.Counter, len(planModes)),
		queryLatency:   make(map[queryMode]*obs.Histogram, len(planModes)),
		queryRows:      reg.Counter("query_rows", "result rows streamed to callers", l),
		earlyCloses:    reg.Counter("query_early_closes", "query cursors closed before exhaustion", l),
		cursorLifetime: reg.Histogram("query_cursor_ns", "query cursor lifetime (open to close or exhaustion)", "ns", l),
		releaseErrors:  reg.Counter("stream_release_errors", "per-shard cursor release errors swallowed by cancelled stream workers", l),
	}
	for _, mode := range planModes {
		pl := obs.Labels{"table": table, "plan": planLabel(mode)}
		m.queryCount[mode] = reg.Counter("query_count", "queries run, by compiled plan", pl)
		m.queryLatency[mode] = reg.Histogram("query_latency_ns", "time from RunQuery to the first result row", "ns", pl)
	}
	return m
}

// onReleaseErr is the scatterStream release-error hook.
func (m *engineMetrics) onReleaseErr(error) { m.releaseErrors.Inc() }

// registerGauges wires the engine-state gauges: values read live at
// snapshot time. GaugeFunc re-registration replaces the closure, so a
// table closed and reopened in-process reports through the new engine.
func (e *Engine) registerGauges() {
	l := obs.Labels{"table": e.table.Name}
	reg := e.mx.reg
	reg.GaugeFunc("wal_watermark_lag", "commit sequences not yet durably groomed (MaxCommitSeq - WALMark)", l,
		func() int64 { return int64(e.MaxCommitSeq() - e.WALMark()) })
	reg.GaugeFunc("wal_segments", "durable log segments held", l,
		func() int64 { n, _ := e.wal.Stats(); return int64(n) })
	reg.GaugeFunc("wal_segment_bytes", "durable log bytes held", l,
		func() int64 { _, b := e.wal.Stats(); return b })
	reg.GaugeFunc("live_records", "committed-but-ungroomed records (live-zone size)", l,
		func() int64 { return int64(e.LiveCount()) })
	reg.GaugeFunc("live_bytes", "estimated live-zone memory", l, e.liveBytes)
}

// liveBytes estimates the live zone's memory footprint: per-value struct
// overhead plus byte/string payload lengths, summed over every committed
// record awaiting grooming.
func (e *Engine) liveBytes() int64 {
	var total int64
	for _, r := range e.replicas {
		r.scan(func(rec logRecord) {
			total += rowMemEstimate(rec.row)
		})
	}
	return total
}

// rowMemEstimate approximates one row's in-memory size: the Value tagged
// union is ~40 bytes (kind + num + slice header, padded), plus payload
// for bytes/string kinds.
func rowMemEstimate(row Row) int64 {
	n := int64(len(row)) * 40
	for _, v := range row {
		if k := v.Kind(); k == keyenc.KindBytes || k == keyenc.KindString {
			n += int64(len(v.Bytes()))
		}
	}
	return n
}

// instrumentRows wraps a query result cursor with the bundle's query
// metrics: plan count at open, time-to-first-row latency, rows streamed,
// cursor lifetime at close/exhaustion, and early closes. It also streams
// row counts into the query's trace, so trace totals settle exactly when
// the metrics do.
func (m *engineMetrics) instrumentRows(mode queryMode, tr *obs.QueryTrace, rows *QueryRows, start time.Time) *QueryRows {
	m.queryCount[mode].Inc()
	inner := rows.Cursor
	firstSeen := false
	first := func() {
		if !firstSeen {
			firstSeen = true
			m.queryLatency[mode].ObserveSince(start)
		}
	}
	finished := false
	finish := func(early bool) {
		if finished {
			return
		}
		finished = true
		m.cursorLifetime.ObserveSince(start)
		if early {
			m.earlyCloses.Inc()
		}
	}
	fetch := func() ([]keyenc.Value, bool, error) {
		if inner.Next() {
			first()
			m.queryRows.Inc()
			tr.AddRowsEmitted(1)
			return inner.Value(), true, nil
		}
		first()
		finish(false)
		return nil, false, inner.Err()
	}
	release := func() error {
		err := inner.Close()
		finish(true)
		return err
	}
	rows.Cursor = newCursor(fetch, release)
	return rows
}
