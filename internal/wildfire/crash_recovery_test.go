package wildfire

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"umzi/internal/exec"
	"umzi/internal/keyenc"
	"umzi/internal/storage"
	"umzi/internal/types"
)

// Crash-recovery suite for the durable write path: commits append to the
// per-shard commit log before they are acknowledged, so a crash — the
// engine dropped without Close, at an arbitrary point between commit,
// groom and run build — must lose zero acknowledged rows under the
// per-commit sync policy. The property test drives randomized ingest
// with injected write failures against an in-memory oracle; the
// concurrent variant runs under -race with writers mid-flight at the
// crash. Set UMZI_FSYNC=1 to run the property test against a
// filesystem store with fsync enabled (the CI durability tier).

// The injected-failure store lives in internal/storage (FaultStore): it
// passes reads through and fails every write once a budget is
// exhausted, simulating a crash cut at an arbitrary storage write. The
// umzi-workload crash scenarios drive the same hook.

// crashBackend returns the underlying durable store: in-memory by
// default, a filesystem store with fsync when UMZI_FSYNC is set.
func crashBackend(t *testing.T, name string) storage.ObjectStore {
	t.Helper()
	if os.Getenv("UMZI_FSYNC") == "" {
		return storage.NewMemStore(storage.LatencyModel{})
	}
	fs, err := storage.NewFSStore(filepath.Join(t.TempDir(), name), storage.LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	fs.SetFsync(true)
	return fs
}

// verifyOracle checks scan and point-get equivalence between the engine
// and the oracle (pk encoding -> freshest acknowledged row).
func verifyOracle(t *testing.T, e *Engine, oracle map[string]Row) {
	t.Helper()
	opts := QueryOptions{TS: types.MaxTS, IncludeLive: true}

	// Scan equivalence through the executor's full-table row plan (it
	// unions every zone and reconciles per key).
	res, err := e.Execute(exec.Plan{}, opts)
	if err != nil {
		t.Fatalf("full scan: %v", err)
	}
	got := make(map[string]Row, len(res.Rows))
	for _, r := range res.Rows {
		got[e.table.pkEncoding(Row(r))] = Row(r)
	}
	for pk, want := range oracle {
		have, ok := got[pk]
		if !ok {
			t.Fatalf("acknowledged row %x lost after recovery", pk)
		}
		for c := range want {
			if keyenc.Compare(have[c], want[c]) != 0 {
				t.Fatalf("row %x column %d = %v, want %v", pk, c, have[c], want[c])
			}
		}
	}
	for pk := range got {
		if _, ok := oracle[pk]; !ok {
			t.Fatalf("scan surfaced unacknowledged row %x", pk)
		}
	}

	// Point-get equivalence on every oracle key plus a missing key.
	for _, want := range oracle {
		eq := []keyenc.Value{want[0]}
		sortv := []keyenc.Value{want[1]}
		rec, found, err := e.Get(eq, sortv, opts)
		if err != nil || !found {
			t.Fatalf("point get (%v,%v): found=%v err=%v", want[0], want[1], found, err)
		}
		for c := range want {
			if keyenc.Compare(rec.Row[c], want[c]) != 0 {
				t.Fatalf("point get (%v,%v) column %d = %v, want %v", want[0], want[1], c, rec.Row[c], want[c])
			}
		}
	}
	if _, found, err := e.Get([]keyenc.Value{keyenc.I64(1 << 40)}, []keyenc.Value{keyenc.I64(1)}, opts); err != nil || found {
		t.Fatalf("missing key: found=%v err=%v", found, err)
	}
}

// TestCrashRecoveryProperty drives randomized ingest/groom/post-groom
// cycles with write failures injected at random storage-write budgets,
// "crashes" (drops the engine without Close), reopens, and asserts
// scan/point-get equivalence against the oracle: with SyncPerCommit no
// acknowledged row is ever lost, and no unacknowledged row surfaces.
func TestCrashRecoveryProperty(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + seed)))
			backend := crashBackend(t, fmt.Sprintf("prop-%d", seed))
			cs := storage.NewFaultStore(backend, 0)
			cfg := Config{
				Table:    iotTable(),
				Index:    iotIndex(),
				Store:    cs,
				Replicas: 2,
				// Tiny segments so lifetimes span several of them.
				Durability: DurabilityOptions{SyncPolicy: SyncPerCommit, SegmentBytes: 256},
			}
			cfg.IndexTuning.BlockSize = 1024

			oracle := map[string]Row{} // pk encoding -> freshest acked row
			def := cfg.Table

			lifetimes := 6
			for life := 0; life < lifetimes; life++ {
				cs.Revive(rng.Int63n(60) + 5)
				e, err := NewEngine(cfg)
				if err != nil {
					if errors.Is(err, storage.ErrInjectedFault) {
						continue // crashed during recovery; next lifetime retries
					}
					t.Fatalf("lifetime %d: reopen: %v", life, err)
				}
				crashed := false
				for op := 0; op < 30 && !crashed; op++ {
					switch r := rng.Intn(10); {
					case r < 6: // upsert batch (one transaction)
						n := rng.Intn(4) + 1
						rows := make([]Row, n)
						for i := range rows {
							rows[i] = row(rng.Int63n(4), rng.Int63n(16), rng.Float64()*100, rng.Int63n(3))
						}
						if err := e.UpsertRows(rng.Intn(2), rows...); err != nil {
							crashed = true
							break
						}
						// One transaction: all rows acked atomically, in
						// side-log order (later rows overwrite earlier
						// ones of the same key).
						for _, r := range rows {
							oracle[def.pkEncoding(r)] = r
						}
					case r < 8:
						if err := e.Groom(); err != nil {
							crashed = true
						}
					case r < 9:
						if _, err := e.PostGroom(); err != nil {
							crashed = true
						}
					default:
						if err := e.SyncIndex(); err != nil {
							crashed = true
						}
					}
				}
				if !crashed && rng.Intn(3) == 0 {
					// Occasionally shut down cleanly so recovery also
					// exercises the clean-marker fast path.
					cs.Revive(1 << 50)
					if err := e.Close(); err != nil {
						t.Fatalf("lifetime %d: clean close: %v", life, err)
					}
					continue
				}
				// Crash: drop the engine without Close.
				_ = e
			}

			// Final reopen with unbounded storage: full equivalence, then
			// quiesce and check the log is bounded.
			cs.Revive(1 << 50)
			e, err := NewEngine(cfg)
			if err != nil {
				t.Fatalf("final reopen: %v", err)
			}
			defer e.Close()
			verifyOracle(t, e, oracle)

			sentinel := row(3, 15, 1.5, 0)
			if err := e.UpsertRows(0, sentinel); err != nil {
				t.Fatal(err)
			}
			oracle[def.pkEncoding(sentinel)] = sentinel
			if err := e.Groom(); err != nil {
				t.Fatal(err)
			}
			st := e.WALStatus()
			if st.Mark != st.MaxSeq {
				t.Fatalf("after quiescing groom: mark %d != max commit seq %d", st.Mark, st.MaxSeq)
			}
			if st.Segments != 0 {
				t.Fatalf("fully-groomed log still holds %d segments (%d bytes): reclamation leaks", st.Segments, st.SegmentBytes)
			}
			verifyOracle(t, e, oracle)
		})
	}
}

// TestCrashRecoveryConcurrent crashes the store while concurrent
// writers and groomers are mid-flight (run under -race in CI): after
// reopening, every acknowledged row must be present and every surfaced
// row must have been attempted.
func TestCrashRecoveryConcurrent(t *testing.T) {
	backend := crashBackend(t, "concurrent")
	cs := storage.NewFaultStore(backend, 0)
	cfg := Config{
		Table:      iotTable(),
		Index:      iotIndex(),
		Store:      cs,
		Replicas:   2,
		Durability: DurabilityOptions{SyncPolicy: SyncPerCommit, SegmentBytes: 512},
	}
	cfg.IndexTuning.BlockSize = 1024
	cs.Revive(400)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 8
	acked := make([]map[string]Row, writers)
	attempted := make([]map[string]Row, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		acked[w] = map[string]Row{}
		attempted[w] = map[string]Row{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			// Disjoint device per writer: no cross-writer overwrites, so
			// each writer's acked set must survive verbatim.
			for msg := int64(0); ; msg++ {
				r := row(int64(w), msg, rng.Float64()*10, msg%3)
				attempted[w][cfg.Table.pkEncoding(r)] = r
				if err := e.UpsertRows(w%2, r); err != nil {
					return // crash reached this writer
				}
				acked[w][cfg.Table.pkEncoding(r)] = r
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if err := e.Groom(); err != nil {
				return
			}
			if _, err := e.PostGroom(); err != nil {
				return
			}
			if err := e.SyncIndex(); err != nil {
				return
			}
		}
	}()
	wg.Wait()
	// Crash: drop the engine without Close and reopen on the survivors.
	cs.Revive(1 << 50)
	e2, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer e2.Close()

	opts := QueryOptions{TS: types.MaxTS, IncludeLive: true}
	for w := 0; w < writers; w++ {
		for pk, want := range acked[w] {
			rec, found, err := e2.Get([]keyenc.Value{want[0]}, []keyenc.Value{want[1]}, opts)
			if err != nil || !found {
				t.Fatalf("writer %d: acked row %x lost (found=%v err=%v)", w, pk, found, err)
			}
			if keyenc.Compare(rec.Row[2], want[2]) != 0 {
				t.Fatalf("writer %d: row %x reads %v, want %v", w, pk, rec.Row[2], want[2])
			}
		}
	}
	// Scan: everything surfaced must at least have been attempted (a
	// commit the crash cut between log append and acknowledgment may
	// legitimately survive).
	res, err := e2.Execute(exec.Plan{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		w := int(Row(r)[0].Int())
		if w < 0 || w >= writers {
			t.Fatalf("scan surfaced row for unknown writer %d", w)
		}
		if _, ok := attempted[w][cfg.Table.pkEncoding(Row(r))]; !ok {
			t.Fatalf("scan surfaced row %v that writer %d never attempted", Row(r), w)
		}
	}
}

// TestRecoveryReplaysLiveTail is the deterministic core of the story: a
// crash (no Close) immediately after Commit returns loses zero
// acknowledged rows under SyncPerCommit — the live zone is rebuilt from
// the log tail.
func TestRecoveryReplaysLiveTail(t *testing.T) {
	store := storage.NewMemStore(storage.LatencyModel{})
	cfg := Config{Table: iotTable(), Index: iotIndex(), Store: store, Replicas: 2}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Some rows groomed, some only committed.
	if err := e.UpsertRows(0, row(1, 1, 10, 0), row(1, 2, 11, 0)); err != nil {
		t.Fatal(err)
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	if err := e.UpsertRows(1, row(1, 3, 12, 0), row(2, 1, 13, 0)); err != nil {
		t.Fatal(err)
	}
	if err := e.UpsertRows(0, row(1, 2, 99, 0)); err != nil { // overwrite a groomed key
		t.Fatal(err)
	}
	// Crash without Close.
	e2, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := e2.LiveCount(); got != 3 {
		t.Fatalf("replayed live zone holds %d records, want 3", got)
	}
	opts := QueryOptions{TS: types.MaxTS, IncludeLive: true}
	expect := map[[2]int64]float64{{1, 1}: 10, {1, 2}: 99, {1, 3}: 12, {2, 1}: 13}
	for k, want := range expect {
		eq, sortv := key(k[0], k[1])
		rec, found, err := e2.Get(eq, sortv, opts)
		if err != nil || !found {
			t.Fatalf("key %v: found=%v err=%v", k, found, err)
		}
		if rec.Row[2].Float() != want {
			t.Fatalf("key %v reads %v, want %v", k, rec.Row[2], want)
		}
	}
	// The tail grooms normally after recovery and the log drains.
	if err := e2.Groom(); err != nil {
		t.Fatal(err)
	}
	st := e2.WALStatus()
	if st.Mark != st.MaxSeq || st.Segments != 0 {
		t.Fatalf("after groom: mark=%d maxSeq=%d segments=%d, want drained log", st.Mark, st.MaxSeq, st.Segments)
	}
}

// TestRecoveryCleanShutdown checks the Close contract: buffered batches
// are flushed, the clean-shutdown marker is written (and consumed on
// the next open), Close after Close is a no-op, and a SyncOff tail that
// was only buffered survives because Close flushed it.
func TestRecoveryCleanShutdown(t *testing.T) {
	store := storage.NewMemStore(storage.LatencyModel{})
	cfg := Config{
		Table: iotTable(), Index: iotIndex(), Store: store, Replicas: 1,
		Durability: DurabilityOptions{SyncPolicy: SyncOff, SegmentBytes: 1 << 20},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.UpsertRows(0, row(1, 1, 10, 0), row(1, 2, 11, 0)); err != nil {
		t.Fatal(err)
	}
	if st := e.WALStatus(); st.Segments != 0 {
		t.Fatalf("SyncOff flushed %d segments before Close", st.Segments)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close after Close: %v", err)
	}
	if _, err := store.Get(walCleanName(cfg.Table.Name)); err != nil {
		t.Fatalf("clean-shutdown marker missing: %v", err)
	}
	e2, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if _, err := store.Get(walCleanName(cfg.Table.Name)); err == nil {
		t.Fatal("clean-shutdown marker not consumed on open")
	}
	if got := e2.LiveCount(); got != 2 {
		t.Fatalf("flushed SyncOff tail lost: live=%d, want 2", got)
	}
}

// TestRecoveryCleanShutdownSkipsReplay: a quiesced Close (everything
// groomed) lets the next open skip reading log segments entirely.
func TestRecoveryCleanShutdownSkipsReplay(t *testing.T) {
	mem := storage.NewMemStore(storage.LatencyModel{})
	cfg := Config{Table: iotTable(), Index: iotIndex(), Store: mem, Replicas: 1}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.UpsertRows(0, row(1, 1, 10, 0)); err != nil {
		t.Fatal(err)
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	reads := mem.Stats().Snapshot().Reads
	e2, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.LiveCount() != 0 {
		t.Fatalf("quiesced reopen rebuilt %d live records", e2.LiveCount())
	}
	// The log was fully reclaimed at groom time, so the clean path reads
	// no segment objects; this stays true if a segment listing sneaks
	// back in (cheap) but full segment Gets would show up here.
	if got := mem.Stats().Snapshot().Reads - reads; got > 30 {
		t.Fatalf("clean reopen performed %d storage reads (replay not skipped?)", got)
	}
}

// TestRecoverySyncOffLosesOnlyTail documents the SyncOff contract: a
// crash loses at most the buffered tail — everything since the last
// segment flush or groom — and never corrupts recovered state.
func TestRecoverySyncOffLosesOnlyTail(t *testing.T) {
	store := storage.NewMemStore(storage.LatencyModel{})
	cfg := Config{
		Table: iotTable(), Index: iotIndex(), Store: store, Replicas: 1,
		Durability: DurabilityOptions{SyncPolicy: SyncOff, SegmentBytes: 1 << 20},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.UpsertRows(0, row(1, 1, 10, 0)); err != nil {
		t.Fatal(err)
	}
	if err := e.Groom(); err != nil { // durable via the groomed block
		t.Fatal(err)
	}
	if err := e.UpsertRows(0, row(1, 2, 11, 0)); err != nil { // buffered only
		t.Fatal(err)
	}
	// Crash without Close: the buffered row is gone, the groomed one is
	// not.
	e2, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := e2.LiveCount(); got != 0 {
		t.Fatalf("SyncOff crash recovered %d buffered records, want 0", got)
	}
	eq, sortv := key(1, 1)
	if _, found, err := e2.Get(eq, sortv, QueryOptions{}); err != nil || !found {
		t.Fatalf("groomed row lost: found=%v err=%v", found, err)
	}
}

// TestShardedCrashRecovery: every shard replays its own log; lockstep
// clocks realign and acknowledged rows on every shard survive a
// whole-process crash.
func TestShardedCrashRecovery(t *testing.T) {
	store := storage.NewMemStore(storage.LatencyModel{})
	cfg := ShardedConfig{
		Table:      iotTable(),
		Index:      iotIndex(),
		Shards:     4,
		Store:      store,
		Replicas:   2,
		Durability: DurabilityOptions{SyncPolicy: SyncPerCommit},
	}
	cfg.IndexTuning.BlockSize = 1024
	s, err := NewShardedEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const devices, msgs = 8, 6
	for dev := int64(0); dev < devices; dev++ {
		for msg := int64(0); msg < msgs; msg++ {
			if err := s.UpsertRows(int(dev)%2, row(dev, msg, float64(dev*100+msg), 0)); err != nil {
				t.Fatal(err)
			}
		}
		if dev == devices/2 {
			// Half the data grooms; the rest stays in the log tails.
			if err := s.Groom(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Crash without Close.
	s2, err := NewShardedEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	opts := QueryOptions{TS: types.MaxTS, IncludeLive: true}
	for dev := int64(0); dev < devices; dev++ {
		for msg := int64(0); msg < msgs; msg++ {
			eq, sortv := key(dev, msg)
			rec, found, err := s2.Get(eq, sortv, opts)
			if err != nil || !found {
				t.Fatalf("dev %d msg %d: found=%v err=%v", dev, msg, found, err)
			}
			if rec.Row[2].Float() != float64(dev*100+msg) {
				t.Fatalf("dev %d msg %d reads %v", dev, msg, rec.Row[2])
			}
		}
	}
	// Grooming drains every shard's log.
	if err := s2.Groom(); err != nil {
		t.Fatal(err)
	}
	for i, st := range s2.WALStatus() {
		if st.Mark != st.MaxSeq || st.Segments != 0 {
			t.Fatalf("shard %d after groom: mark=%d maxSeq=%d segments=%d", i, st.Mark, st.MaxSeq, st.Segments)
		}
	}
}
