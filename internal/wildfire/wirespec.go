package wildfire

import (
	"fmt"

	"umzi/internal/exec"
	"umzi/internal/types"
	"umzi/internal/wire"
)

// QuerySpec wire form. A compiled spec travels from the client package
// to umzi-server inside a Query frame, so remote queries run the exact
// plan the local builder would have run — the local-vs-remote
// equivalence property is a test over this codec. The layout is
// versioned, binary and self-bounded:
//
//	u8  version (wireSpecVersion)
//	u8  flags   (IncludeLive | NoIndexSelection | ViaSet | has-filter)
//	str Via
//	u64 TS
//	uvarint Limit
//	[]str Columns, OrderBy, GroupBy
//	uvarint #aggs, each: u8 func | str col | str as
//	filter (when flagged): predicate tree, depth- and node-capped
//
// Trace never travels: explain traces are a process-local concern.

const wireSpecVersion = 1

const (
	specFlagIncludeLive = 1 << iota
	specFlagNoIndexSelection
	specFlagViaSet
	specFlagFilter
)

// Filter-tree node tags.
const (
	exprTagCmp byte = iota
	exprTagAnd
	exprTagOr
)

// exprMaxDepth bounds predicate-tree nesting on both encode and decode;
// exprMaxNodes bounds the total decoded node count, so a hostile
// payload cannot drive unbounded recursion or allocation.
const (
	exprMaxDepth = 100
	exprMaxNodes = 1 << 16
)

// MarshalQuerySpec encodes a spec for the wire. Trace is dropped; an
// unknown (foreign) filter-expression type is an error.
func MarshalQuerySpec(spec QuerySpec) ([]byte, error) {
	var flags byte
	if spec.IncludeLive {
		flags |= specFlagIncludeLive
	}
	if spec.NoIndexSelection {
		flags |= specFlagNoIndexSelection
	}
	if spec.ViaSet {
		flags |= specFlagViaSet
	}
	if spec.Filter != nil {
		flags |= specFlagFilter
	}
	b := []byte{wireSpecVersion, flags}
	b = wire.AppendString(b, spec.Via)
	b = wire.AppendU64(b, uint64(spec.TS))
	b = wire.AppendUvarint(b, uint64(spec.Limit))
	b = wire.AppendStrings(b, spec.Columns)
	b = wire.AppendStrings(b, spec.OrderBy)
	b = wire.AppendStrings(b, spec.GroupBy)
	b = wire.AppendUvarint(b, uint64(len(spec.Aggs)))
	for _, a := range spec.Aggs {
		b = append(b, byte(a.Func))
		b = wire.AppendString(b, a.Col)
		b = wire.AppendString(b, a.As)
	}
	if spec.Filter != nil {
		var err error
		if b, err = appendExpr(b, spec.Filter, 0); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func appendExpr(b []byte, e exec.Expr, depth int) ([]byte, error) {
	if depth > exprMaxDepth {
		return nil, fmt.Errorf("wildfire: filter deeper than %d levels", exprMaxDepth)
	}
	node, err := exec.Decompose(e)
	if err != nil {
		return nil, err
	}
	if node.Leaf {
		b = append(b, exprTagCmp)
		b = wire.AppendString(b, node.Col)
		b = append(b, byte(node.Op))
		return wire.AppendValue(b, node.Val)
	}
	if node.And {
		b = append(b, exprTagAnd)
	} else {
		b = append(b, exprTagOr)
	}
	b = wire.AppendUvarint(b, uint64(len(node.Kids)))
	for _, k := range node.Kids {
		if b, err = appendExpr(b, k, depth+1); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// UnmarshalQuerySpec decodes a wire-form spec.
func UnmarshalQuerySpec(b []byte) (QuerySpec, error) {
	d := wire.NewDec(b)
	if v := d.Byte(); d.Err() == nil && v != wireSpecVersion {
		return QuerySpec{}, fmt.Errorf("wildfire: query spec version %d, want %d", v, wireSpecVersion)
	}
	flags := d.Byte()
	spec := QuerySpec{
		IncludeLive:      flags&specFlagIncludeLive != 0,
		NoIndexSelection: flags&specFlagNoIndexSelection != 0,
		ViaSet:           flags&specFlagViaSet != 0,
	}
	spec.Via = d.String()
	spec.TS = types.TS(d.U64())
	spec.Limit = int(d.Count(1 << 40))
	spec.Columns = d.Strings()
	spec.OrderBy = d.Strings()
	spec.GroupBy = d.Strings()
	nAggs := d.Count(1 << 12)
	for i := 0; i < nAggs && d.Err() == nil; i++ {
		a := exec.Agg{Func: exec.AggFunc(d.Byte())}
		a.Col = d.String()
		a.As = d.String()
		spec.Aggs = append(spec.Aggs, a)
	}
	if flags&specFlagFilter != 0 {
		nodes := 0
		spec.Filter = decodeExpr(d, 0, &nodes)
	}
	if err := d.Err(); err != nil {
		return QuerySpec{}, fmt.Errorf("wildfire: decoding query spec: %w", err)
	}
	if d.Len() != 0 {
		return QuerySpec{}, fmt.Errorf("wildfire: %d trailing bytes after query spec", d.Len())
	}
	return spec, nil
}

func decodeExpr(d *wire.Dec, depth int, nodes *int) exec.Expr {
	if depth > exprMaxDepth || *nodes >= exprMaxNodes {
		d.Fail("filter tree exceeds decode limits")
		return nil
	}
	*nodes++
	switch tag := d.Byte(); tag {
	case exprTagCmp:
		col := d.String()
		op := exec.CmpOp(d.Byte())
		val := d.Value()
		if d.Err() != nil {
			return nil
		}
		return exec.Cmp(col, op, val)
	case exprTagAnd, exprTagOr:
		n := d.Count(1 << 12)
		kids := make([]exec.Expr, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			kids = append(kids, decodeExpr(d, depth+1, nodes))
		}
		if d.Err() != nil {
			return nil
		}
		if tag == exprTagAnd {
			return exec.And(kids...)
		}
		return exec.Or(kids...)
	default:
		if d.Err() == nil {
			d.Fail("unknown filter node tag %d", tag)
		}
		return nil
	}
}

// ---- DDL and catalog DTOs --------------------------------------------
//
// CreateTable and Catalog payloads are JSON: they are tiny, once-per-DDL
// and debuggable with standard tools, exactly like the persisted DB
// catalog they mirror. They live here (not in package wire) because
// they name engine types; wire stays leaf-level.

// CreateTableRequest is the payload of a CreateTable frame. It mirrors
// the DB layer's TableOptions minus IndexTuning, which holds live
// process-local handles and cannot travel.
type CreateTableRequest struct {
	Def         TableDef
	Index       IndexSpec            `json:",omitempty"`
	Secondaries []SecondaryIndexSpec `json:",omitempty"`
	Shards      int                  `json:",omitempty"`
	Replicas    int                  `json:",omitempty"`
	Partitions  int                  `json:",omitempty"`
	Parallelism int                  `json:",omitempty"`
	Durability  DurabilityOptions
}

// CatalogTable is one table of a CatalogResponse.
type CatalogTable struct {
	Def    TableDef
	Index  IndexSpec
	Shards int
}

// CatalogResponse is the payload of a CatalogData frame.
type CatalogResponse struct {
	Tables []CatalogTable
}
