package wildfire

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"umzi/internal/columnar"
	"umzi/internal/core"
	"umzi/internal/obs"
	"umzi/internal/storage"
	"umzi/internal/types"
	"umzi/internal/wal"
)

// Config configures an Engine (one table shard).
type Config struct {
	Table TableDef
	Index IndexSpec
	// Secondaries declares secondary indexes maintained alongside the
	// primary through the whole groom/post-groom/evolve pipeline. On a
	// recovered table, declarations already in the stored index catalog
	// are reopened (their specs must match); new names are built online
	// from the existing zones (CREATE INDEX backfill).
	Secondaries []SecondaryIndexSpec
	// Store is the shared storage backend for data blocks, index runs and
	// engine metadata.
	Store storage.ObjectStore
	// Cache is the local SSD cache shared by the index and data blocks.
	Cache *storage.SSDCache
	// BlockCache, when set, is a shared decoded-block cache (the sharded
	// layer passes one cache to every shard so a table has one byte
	// budget). Nil gives the engine a private cache of BlockCacheBytes.
	BlockCache *BlockCache
	// BlockCacheBytes budgets the private decoded-block cache when
	// BlockCache is nil (<=0 selects DefaultBlockCacheBytes).
	BlockCacheBytes int64
	// ScanParallelism bounds the engine's intra-shard scan worker pool:
	// an analytical scan partitions its candidate blocks across up to
	// this many workers. <=0 derives it from GOMAXPROCS; 1 scans
	// sequentially.
	ScanParallelism int
	// Replicas is the number of multi-master shard replicas (default 1).
	Replicas int
	// Partitions is the number of partition-key buckets the post-groomer
	// writes (default 4; ignored without a partition key).
	Partitions int
	// IndexTuning forwards merge-policy and level-assignment knobs to
	// every Umzi index of the table; zero values keep core defaults.
	// Name/Def/Store/Cache are managed by the engine and ignored here.
	IndexTuning core.Config
	// Durability configures the shard's commit log: transactions append
	// to it before they are acknowledged and before they enter the live
	// zone, and recovery replays its tail above the groom watermark. The
	// zero value is full per-commit durability with group commit.
	Durability DurabilityOptions
	// Obs is the metric registry the engine records into, keyed by the
	// table name. Nil gives the engine a private registry: fully
	// instrumented, nothing exposed.
	Obs *obs.Registry
}

// Engine is one Wildfire table shard: live zone, groomer, post-groomer,
// indexer and the query front end.
type Engine struct {
	table      TableDef
	ixSpec     IndexSpec
	store      storage.ObjectStore
	cache      *storage.SSDCache
	tuning     core.Config
	replicas   []*replica
	partitions int
	mx         *engineMetrics

	// idx is the primary index; indexes is the full set (element 0 is
	// the primary), immutable slices swapped copy-on-write so queries
	// load it without locks. indexMu serializes set changes and catalog
	// writes.
	idx        *core.Index
	indexes    atomic.Pointer[[]*tableIndex]
	indexMu    sync.Mutex
	catalogSeq atomic.Uint64

	// commitSeq is the global tentative-commit clock; the groomer merges
	// replica logs in this order (§2.1 "merges, in the time order,
	// transaction logs from shard replicas"). It doubles as the commit
	// log's row sequence: every assigned value is either durably logged,
	// groomed, or recorded as lost — and recovery floors the clock so
	// sequences are never reused.
	commitSeq atomic.Uint64

	// wal is the shard's durable commit log; walMu guards the watermark
	// bookkeeping: walMark is the contiguous groomed prefix (every
	// sequence <= walMark is durably groomed) and walDrained holds
	// groomed or lost sequences above it, waiting for gaps to close.
	// walMarkSeq / walMarkPersisted (the mark-record counter and the
	// last persisted watermark) are touched only under groomMu.
	wal              *wal.Log
	durable          DurabilityOptions
	walMu            sync.Mutex
	walMark          uint64
	walDrained       map[uint64]struct{}
	walMarkSeq       uint64
	walMarkPersisted uint64
	// groomCycle numbers groom operations; it doubles as the groomed
	// block ID and as the high part of beginTS.
	groomCycle atomic.Uint64
	// lastGroomTS is the snapshot boundary: every groomed version has
	// beginTS <= lastGroomTS.
	lastGroomTS atomic.Uint64
	// maxPSN is the post-groomer's published watermark; the indexer polls
	// it (Figure 5).
	maxPSN atomic.Uint64
	// consumedHi is the highest groomed block ID consumed by a published
	// post-groom — the boundary between pending and deprecated blocks.
	consumedHi atomic.Uint64
	// postBlockSeq numbers post-groomed blocks.
	postBlockSeq atomic.Uint64

	// pending guards the groomed blocks not yet post-groomed.
	pendingMu sync.Mutex
	pending   []uint64 // groomed block IDs in order

	// postBlocks lists the post-groomed block IDs published by committed
	// post-grooms (in PSN order). Together with pending it enumerates
	// every current record version at least once — a version lives in a
	// not-yet-post-groomed groomed block or in a published post-groomed
	// block, transiently in both around a post-groom commit (the
	// executor reconciles the duplicate away) — and orphaned post blocks
	// of failed post-grooms are never listed. The analytical executor
	// scans this set.
	postListMu sync.Mutex
	postBlocks []uint64

	// groomMu serializes groom operations; postMu serializes post-grooms;
	// syncMu serializes index-evolve passes (the indexer daemon and the
	// post-groomer both drive SyncIndex).
	groomMu sync.Mutex
	postMu  sync.Mutex
	syncMu  sync.Mutex

	// endTS overlays replaced versions: RID -> endTS. Maintained by the
	// post-groomer; persisted as sidecar objects because shared storage
	// forbids in-place updates of data blocks.
	endTSMu sync.Mutex
	endTS   map[types.RID]types.TS

	// blocks is the bounded decoded-block cache (data access path); it
	// may be shared across shards. scanPool bounds the intra-shard
	// parallel-scan workers (scanPar-wide).
	blocks   *BlockCache
	scanPool *gatherPool
	scanPar  int

	// gate tracks in-flight queries; retireQueue holds names of deleted
	// groomed blocks awaiting query-epoch drain, and retiredBlks pins
	// their decodes outside the bounded cache until the drain — so a
	// query that resolved RIDs into a block before its storage object
	// was reclaimed can still read it, realizing "marked deprecated and
	// eventually deleted" (§5.4) without blocking readers.
	gate        queryGate
	retireMu    sync.Mutex
	retireQueue []retireItem
	retiredBlks map[string]*columnar.Block

	// deprecated holds groomed block IDs consumed by post-grooms whose
	// data blocks cannot be deleted yet: reclamation is gated on the
	// watermark of EVERY index of the set — a block is deleted only once
	// no index (primary or secondary) can hand out RIDs into it.
	deprecateMu sync.Mutex
	deprecated  map[uint64]struct{}

	stopCh     chan struct{}
	wg         sync.WaitGroup
	started    atomic.Bool
	maintEvery time.Duration
	closed     atomic.Bool
}

// NewEngine creates a fresh engine, or recovers one when storage already
// holds the table. The index set is restored from the persisted catalog;
// Config.Secondaries not yet in the catalog are built online from the
// existing zones.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Table.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Index.Validate(cfg.Table); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, s := range cfg.Secondaries {
		if err := s.Validate(cfg.Table); err != nil {
			return nil, err
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("wildfire: duplicate secondary index %q", s.Name)
		}
		seen[s.Name] = true
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("wildfire: Config.Store is required")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 4
	}

	e := &Engine{
		table:       cfg.Table,
		ixSpec:      cfg.Index,
		store:       cfg.Store,
		cache:       cfg.Cache,
		tuning:      cfg.IndexTuning,
		durable:     cfg.Durability,
		endTS:       make(map[types.RID]types.TS),
		retiredBlks: make(map[string]*columnar.Block),
		deprecated:  make(map[uint64]struct{}),
		walDrained:  make(map[uint64]struct{}),
		stopCh:      make(chan struct{}),
	}
	e.mx = newEngineMetrics(cfg.Obs, cfg.Table.Name)
	e.blocks = cfg.BlockCache
	if e.blocks == nil {
		// A private per-engine cache; a shard of a sharded table instead
		// shares the one the sharded layer created and instrumented.
		e.blocks = NewBlockCache(cfg.BlockCacheBytes)
		e.blocks.instrument(cfg.Obs, cfg.Table.Name)
	}
	e.scanPar = cfg.ScanParallelism
	if e.scanPar <= 0 {
		e.scanPar = runtime.GOMAXPROCS(0)
	}
	e.scanPool = newGatherPool(e.scanPar)
	e.partitions = cfg.Partitions
	for i := 0; i < cfg.Replicas; i++ {
		e.replicas = append(e.replicas, &replica{id: i})
	}

	// The catalog is the authoritative index set; a table without one
	// (fresh, or created before catalogs existed) starts primary-only and
	// every declared secondary goes through the backfill path below.
	catalog, seq, err := LoadIndexCatalog(cfg.Store, cfg.Table.Name)
	if err != nil {
		return nil, err
	}
	e.catalogSeq.Store(seq)
	catalogMissing := catalog == nil
	if catalogMissing {
		catalog = []IndexCatalogEntry{{Name: "", Spec: cfg.Index}}
	} else if !specEqual(catalog[0].Spec, cfg.Index) {
		return nil, fmt.Errorf("wildfire: table %s: primary index spec differs from the stored catalog", cfg.Table.Name)
	}
	var set []*tableIndex
	closeAll := func() {
		for _, ti := range set {
			ti.idx.Close()
		}
	}
	for i, entry := range catalog {
		if i > 0 {
			if entry.Name == "" {
				closeAll()
				return nil, fmt.Errorf("wildfire: table %s: catalog names a second primary", cfg.Table.Name)
			}
			if decl, ok := declaredSecondary(cfg.Secondaries, entry.Name); ok && !specEqual(decl, entry.Spec) {
				closeAll()
				return nil, fmt.Errorf("wildfire: secondary index %q: declared spec differs from the stored catalog", entry.Name)
			}
		}
		ti, err := e.openTableIndex(entry.Name, entry.Spec)
		if err != nil {
			closeAll()
			return nil, err
		}
		set = append(set, ti)
	}
	e.idx = set[0].idx
	e.indexes.Store(&set)
	if catalogMissing {
		// Persist the catalog even for primary-only tables (fresh, or
		// created before catalogs existed), so the index set is always
		// reconstructable — and inspectable — from storage alone.
		e.indexMu.Lock()
		err := e.writeCatalogLocked()
		e.indexMu.Unlock()
		if err != nil {
			closeAll()
			return nil, err
		}
	}

	// The commit log opens before recovery: recoverState restores the
	// groomed/post-groomed state and recoverWAL then replays the log
	// tail above the groom watermark to rebuild the live zone.
	log, err := wal.Open(cfg.Store, WALStoragePrefix(cfg.Table.Name), e.walOptions())
	if err != nil {
		closeAll()
		return nil, err
	}
	e.wal = log
	fail := func(err error) (*Engine, error) {
		e.wal.Close()
		for _, ti := range e.indexSet() {
			ti.idx.Close()
		}
		return nil, err
	}
	if err := e.recoverState(); err != nil {
		return fail(err)
	}
	if err := e.recoverWAL(); err != nil {
		return fail(err)
	}
	// Secondaries declared in the config but absent from the catalog:
	// online backfill (on a fresh table this is a no-op build).
	for _, s := range cfg.Secondaries {
		if _, err := e.lookupIndex(s.Name); err == nil {
			continue
		}
		if err := e.CreateIndex(s); err != nil {
			return fail(err)
		}
	}
	e.registerGauges()
	return e, nil
}

func declaredSecondary(specs []SecondaryIndexSpec, name string) (IndexSpec, bool) {
	for _, s := range specs {
		if s.Name == name {
			return s.IndexSpec, true
		}
	}
	return IndexSpec{}, false
}

// Index exposes the underlying primary Umzi index (benchmarks tune and
// inspect it directly).
func (e *Engine) Index() *core.Index { return e.idx }

// BlockCache returns the decoded-block cache the engine reads through
// (possibly shared with other shards of its table).
func (e *Engine) BlockCache() *BlockCache { return e.blocks }

// Table returns the table definition.
func (e *Engine) Table() TableDef { return e.table }

// IndexSpec returns the primary index's declared spec.
func (e *Engine) IndexSpec() IndexSpec { return e.ixSpec }

// LastGroomTS returns the snapshot boundary: the largest beginTS any
// groomed version can carry. Queries at this timestamp see everything
// groomed so far ("quorum-readable" content, §2.1).
func (e *Engine) LastGroomTS() types.TS { return types.TS(e.lastGroomTS.Load()) }

// MaxPSN returns the post-groomer's published watermark.
func (e *Engine) MaxPSN() types.PSN { return types.PSN(e.maxPSN.Load()) }

// Start launches the background daemons: the groomer (every groomEvery),
// the post-groomer (every postGroomEvery) and the indexer poller, plus
// every index's own per-level maintenance workers.
func (e *Engine) Start(groomEvery, postGroomEvery time.Duration) {
	e.startIndexMaintenance(groomEvery)
	e.wg.Add(3)
	go e.loop(groomEvery, func() { _ = e.Groom() })
	go e.loop(postGroomEvery, func() { _, _ = e.PostGroom() })
	go e.loop(groomEvery, func() { _ = e.SyncIndex() })
}

// startIndexMaintenance launches every index's per-level maintenance
// workers and records the cadence so indexes created later start theirs
// too. The sharded layer calls this directly: it replaces the per-engine
// groom/post-groom daemons with lockstep rounds but still needs the full
// index set maintained per shard.
func (e *Engine) startIndexMaintenance(every time.Duration) {
	e.indexMu.Lock()
	defer e.indexMu.Unlock()
	e.maintEvery = every
	e.started.Store(true)
	for _, ti := range e.indexSet() {
		ti.idx.Start(every)
	}
}

func (e *Engine) loop(every time.Duration, f func()) {
	defer e.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-e.stopCh:
			return
		case <-t.C:
			f()
		}
	}
}

// Close stops the daemons and the index set, flushes any buffered
// commit-log batch and writes the clean-shutdown marker (so an orderly
// restart can skip log replay). The teardown holds indexMu so it
// serializes against an in-flight CreateIndex: either the create
// publishes first (and its index is closed here) or it observes closed
// under the lock and aborts — a created index can never outlive Close
// with running maintenance workers. Close after Close is a no-op.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(e.stopCh)
	e.wg.Wait()
	first := e.closeWAL()
	e.indexMu.Lock()
	defer e.indexMu.Unlock()
	for _, ti := range e.indexSet() {
		if err := ti.idx.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// safeReclaimBoundary returns the smallest groomed block ID that may
// still be referenced by any index of the set: the minimum over all
// indexes of their evolve watermark and their oldest live groomed run.
// Deprecated blocks below the boundary are unreachable from every index
// and safe to delete (§5.4, generalized to N indexes).
func (e *Engine) safeReclaimBoundary() uint64 {
	safe := ^uint64(0)
	for _, ti := range e.indexSet() {
		s := ti.idx.MaxCoveredGroomedID() + 1
		if min, ok := ti.idx.MinLiveGroomedBlock(); ok && min < s {
			s = min
		}
		if s < safe {
			safe = s
		}
	}
	return safe
}

// recoverState rebuilds engine counters from storage after a restart:
// PSN and the consumed-block boundary from the psn metas, the groom
// cycle and the pending/deprecated split from the groomed block listing,
// the endTS overlay from the sidecar objects — and any index run a crash
// lost between a groom's block write and its per-index run builds.
func (e *Engine) recoverState() error {
	prefix := "tbl/" + e.table.Name

	// PSN metas first: they are the truth of what post-grooming consumed
	// (groomed side) and published (post-groomed side).
	psnNames, err := e.store.List(prefix + "/psn/")
	if err != nil {
		return err
	}
	var maxPSN, consumedHi uint64
	for _, n := range psnNames {
		var id uint64
		if _, err := fmt.Sscanf(n, prefix+"/psn/%d", &id); err != nil {
			continue
		}
		if id > maxPSN {
			maxPSN = id
		}
		// Published post blocks come from the PSN metas, not the raw post/
		// listing: a post-groom that failed after writing some blocks
		// leaves orphans that no meta (and no index run) references, and
		// the executor must not scan them. A meta that exists but does
		// not decode is a hard error — silently skipping it would leave
		// the executor's block list incomplete while the index still
		// serves the rows (the indexer treats the same failure as fatal).
		meta, err := e.store.Get(n)
		if err != nil {
			return err
		}
		_, hi, blocks, err := decodePSNMeta(meta)
		if err != nil {
			return fmt.Errorf("wildfire: recovering PSN meta %s: %w", n, err)
		}
		if hi > consumedHi {
			consumedHi = hi
		}
		e.postBlocks = append(e.postBlocks, blocks...)
	}
	e.maxPSN.Store(maxPSN)
	e.consumedHi.Store(consumedHi)

	// Groomed blocks: those beyond the consumed boundary go back into the
	// pending queue; consumed ones are deprecated until every index of
	// the set has passed them, and deleted once none can reference them.
	names, err := e.store.List(prefix + "/groomed/")
	if err != nil {
		return err
	}
	// The groom clock must never run backwards: reclaimed blocks leave no
	// storage object, so after a quiescent shutdown (everything consumed
	// and deleted) the listing alone would restart the clock at 0 and new
	// grooms would reuse block IDs and beginTS ranges below post-groomed
	// versions. consumedHi floors it at the highest ID ever consumed.
	maxCycle := consumedHi
	safe := e.safeReclaimBoundary()
	for _, n := range names {
		var id uint64
		if _, err := fmt.Sscanf(n, prefix+"/groomed/block-%d", &id); err != nil {
			continue
		}
		if id > maxCycle {
			maxCycle = id
		}
		switch {
		case id > consumedHi:
			// Not yet post-groomed: back into the pending queue.
			e.pending = append(e.pending, id)
		case id < safe:
			// Deprecated and unreferenced by every index: an interrupted
			// deletion.
			_ = e.store.Delete(n)
		default:
			// Deprecated but still referenced by some index's groomed
			// runs or lagging watermark; retired by a later evolve.
			e.deprecated[id] = struct{}{}
		}
	}
	e.groomCycle.Store(maxCycle)
	e.lastGroomTS.Store(uint64(types.MakeTS(maxCycle, 1<<24-1)))

	postNames, err := e.store.List(prefix + "/post/")
	if err != nil {
		return err
	}
	var maxPost uint64
	for _, n := range postNames {
		var id uint64
		if _, err := fmt.Sscanf(n, prefix+"/post/block-%d", &id); err != nil {
			continue
		}
		if id > maxPost {
			maxPost = id
		}
	}
	e.postBlockSeq.Store(maxPost)

	// Rebuild the endTS overlay from sidecars.
	endNames, err := e.store.List(prefix + "/endts/")
	if err != nil {
		return err
	}
	for _, n := range endNames {
		data, err := e.store.Get(n)
		if err != nil {
			continue
		}
		decodeEndTSSidecar(data, func(rid types.RID, ts types.TS) {
			e.endTS[rid] = ts
		})
	}

	// A groom writes its data block first and then builds one run per
	// index; a crash in between leaves pending blocks some index has no
	// run for. Re-derive the lost runs from the data blocks (§5.5's one
	// exception to "no run is rebuilt from data blocks").
	return e.rebuildLostRuns()
}

// rebuildLostRuns re-creates per-index runs for pending groomed blocks
// an index does not cover.
func (e *Engine) rebuildLostRuns() error {
	for _, id := range e.pending {
		for _, ti := range e.indexSet() {
			if ti.idx.CoversGroomedBlock(id) {
				continue
			}
			entries, err := e.entriesFromBlocks(ti, types.ZoneGroomed, []uint64{id})
			if err != nil {
				return err
			}
			if err := ti.idx.RebuildGroomedRun(entries, types.BlockRange{Min: id, Max: id}); err != nil {
				return err
			}
		}
	}
	return nil
}
