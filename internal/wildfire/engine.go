package wildfire

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"umzi/internal/core"
	"umzi/internal/storage"
	"umzi/internal/types"
)

// Config configures an Engine (one table shard).
type Config struct {
	Table TableDef
	Index IndexSpec
	// Store is the shared storage backend for data blocks, index runs and
	// engine metadata.
	Store storage.ObjectStore
	// Cache is the local SSD cache shared by the index and data blocks.
	Cache *storage.SSDCache
	// Replicas is the number of multi-master shard replicas (default 1).
	Replicas int
	// Partitions is the number of partition-key buckets the post-groomer
	// writes (default 4; ignored without a partition key).
	Partitions int
	// IndexTuning forwards merge-policy and level-assignment knobs to the
	// Umzi index; zero values keep core defaults. Name/Def/Store/Cache
	// are managed by the engine and ignored here.
	IndexTuning core.Config
}

// Engine is one Wildfire table shard: live zone, groomer, post-groomer,
// indexer and the query front end.
type Engine struct {
	table      TableDef
	ixSpec     IndexSpec
	store      storage.ObjectStore
	cache      *storage.SSDCache
	idx        *core.Index
	replicas   []*replica
	partitions int

	// commitSeq is the global tentative-commit clock; the groomer merges
	// replica logs in this order (§2.1 "merges, in the time order,
	// transaction logs from shard replicas").
	commitSeq atomic.Uint64
	// groomCycle numbers groom operations; it doubles as the groomed
	// block ID and as the high part of beginTS.
	groomCycle atomic.Uint64
	// lastGroomTS is the snapshot boundary: every groomed version has
	// beginTS <= lastGroomTS.
	lastGroomTS atomic.Uint64
	// maxPSN is the post-groomer's published watermark; the indexer polls
	// it (Figure 5).
	maxPSN atomic.Uint64
	// postBlockSeq numbers post-groomed blocks.
	postBlockSeq atomic.Uint64

	// pending guards the groomed blocks not yet post-groomed.
	pendingMu sync.Mutex
	pending   []uint64 // groomed block IDs in order

	// postBlocks lists the post-groomed block IDs published by committed
	// post-grooms (in PSN order). Together with pending it enumerates
	// every current record version at least once — a version lives in a
	// not-yet-post-groomed groomed block or in a published post-groomed
	// block, transiently in both around a post-groom commit (the
	// executor reconciles the duplicate away) — and orphaned post blocks
	// of failed post-grooms are never listed. The analytical executor
	// scans this set.
	postListMu sync.Mutex
	postBlocks []uint64

	// groomMu serializes groom operations; postMu serializes post-grooms.
	groomMu sync.Mutex
	postMu  sync.Mutex

	// endTS overlays replaced versions: RID -> endTS. Maintained by the
	// post-groomer; persisted as sidecar objects because shared storage
	// forbids in-place updates of data blocks.
	endTSMu sync.Mutex
	endTS   map[types.RID]types.TS

	// blockCache memoizes parsed columnar blocks (data access path).
	// Deprecated groomed blocks stay cached until every query that could
	// hold their RIDs has drained (epoch-based reclamation through gate),
	// realizing "marked deprecated and eventually deleted" (§5.4) without
	// blocking readers.
	blockMu    sync.Mutex
	blockCache map[string]*blockEntry

	// gate tracks in-flight queries; retireQueue holds cache entries of
	// deleted groomed blocks awaiting epoch drain.
	gate        queryGate
	retireMu    sync.Mutex
	retireQueue []retireItem

	// deprecated lists groomed block IDs consumed by post-grooms whose
	// data blocks cannot be deleted yet because a (partially covered)
	// groomed run still references them.
	deprecateMu sync.Mutex
	deprecated  []uint64

	stopCh chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// NewEngine creates a fresh engine with an empty index. Storage must not
// already contain this table.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Table.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Index.Validate(cfg.Table); err != nil {
		return nil, err
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("wildfire: Config.Store is required")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 4
	}

	ixCfg := cfg.IndexTuning
	ixCfg.Name = "tbl/" + cfg.Table.Name + "/idx"
	ixCfg.Def = indexDefFor(cfg.Table, cfg.Index)
	ixCfg.Store = cfg.Store
	ixCfg.Cache = cfg.Cache
	idx, err := core.Open(ixCfg) // Open handles both fresh and recovery
	if err != nil {
		return nil, err
	}

	e := &Engine{
		table:      cfg.Table,
		ixSpec:     cfg.Index,
		store:      cfg.Store,
		cache:      cfg.Cache,
		idx:        idx,
		endTS:      make(map[types.RID]types.TS),
		blockCache: make(map[string]*blockEntry),
		stopCh:     make(chan struct{}),
	}
	e.partitions = cfg.Partitions
	for i := 0; i < cfg.Replicas; i++ {
		e.replicas = append(e.replicas, &replica{id: i})
	}
	if err := e.recoverState(); err != nil {
		idx.Close()
		return nil, err
	}
	return e, nil
}

// Index exposes the underlying Umzi index (benchmarks tune and inspect
// it directly).
func (e *Engine) Index() *core.Index { return e.idx }

// Table returns the table definition.
func (e *Engine) Table() TableDef { return e.table }

// LastGroomTS returns the snapshot boundary: the largest beginTS any
// groomed version can carry. Queries at this timestamp see everything
// groomed so far ("quorum-readable" content, §2.1).
func (e *Engine) LastGroomTS() types.TS { return types.TS(e.lastGroomTS.Load()) }

// MaxPSN returns the post-groomer's published watermark.
func (e *Engine) MaxPSN() types.PSN { return types.PSN(e.maxPSN.Load()) }

// Start launches the background daemons: the groomer (every groomEvery),
// the post-groomer (every postGroomEvery) and the indexer poller, plus
// the index's own per-level maintenance workers.
func (e *Engine) Start(groomEvery, postGroomEvery time.Duration) {
	e.idx.Start(groomEvery)
	e.wg.Add(3)
	go e.loop(groomEvery, func() { _ = e.Groom() })
	go e.loop(postGroomEvery, func() { _, _ = e.PostGroom() })
	go e.loop(groomEvery, func() { _ = e.SyncIndex() })
}

func (e *Engine) loop(every time.Duration, f func()) {
	defer e.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-e.stopCh:
			return
		case <-t.C:
			f()
		}
	}
}

// Close stops the daemons and the index.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(e.stopCh)
	e.wg.Wait()
	return e.idx.Close()
}

// recoverState rebuilds engine counters from storage after a restart:
// the groom cycle from groomed/post block listings, PSN from psn metas,
// the pending groomed blocks (those not covered by the index watermark),
// and the endTS overlay from the sidecar objects.
func (e *Engine) recoverState() error {
	prefix := "tbl/" + e.table.Name
	names, err := e.store.List(prefix + "/groomed/")
	if err != nil {
		return err
	}
	var maxCycle uint64
	covered := e.idx.MaxCoveredGroomedID()
	safe := covered + 1
	if min, ok := e.idx.MinLiveGroomedBlock(); ok && min < safe {
		safe = min
	}
	for _, n := range names {
		var id uint64
		if _, err := fmt.Sscanf(n, prefix+"/groomed/block-%d", &id); err != nil {
			continue
		}
		if id > maxCycle {
			maxCycle = id
		}
		switch {
		case id > covered:
			// Not yet post-groomed: back into the pending queue.
			e.pending = append(e.pending, id)
		case id < safe:
			// Deprecated and unreferenced: an interrupted deletion.
			_ = e.store.Delete(n)
		default:
			// Deprecated but still referenced by a partially covered
			// groomed run; retired by a later evolve.
			e.deprecated = append(e.deprecated, id)
		}
	}
	e.groomCycle.Store(maxCycle)
	e.lastGroomTS.Store(uint64(types.MakeTS(maxCycle, 1<<24-1)))

	postNames, err := e.store.List(prefix + "/post/")
	if err != nil {
		return err
	}
	var maxPost uint64
	for _, n := range postNames {
		var id uint64
		if _, err := fmt.Sscanf(n, prefix+"/post/block-%d", &id); err != nil {
			continue
		}
		if id > maxPost {
			maxPost = id
		}
	}
	e.postBlockSeq.Store(maxPost)

	psnNames, err := e.store.List(prefix + "/psn/")
	if err != nil {
		return err
	}
	var maxPSN uint64
	for _, n := range psnNames {
		var id uint64
		if _, err := fmt.Sscanf(n, prefix+"/psn/%d", &id); err != nil {
			continue
		}
		if id > maxPSN {
			maxPSN = id
		}
		// Published post blocks come from the PSN metas, not the raw post/
		// listing: a post-groom that failed after writing some blocks
		// leaves orphans that no meta (and no index run) references, and
		// the executor must not scan them. A meta that exists but does
		// not decode is a hard error — silently skipping it would leave
		// the executor's block list incomplete while the index still
		// serves the rows (the indexer treats the same failure as fatal).
		meta, err := e.store.Get(n)
		if err != nil {
			return err
		}
		_, _, blocks, err := decodePSNMeta(meta)
		if err != nil {
			return fmt.Errorf("wildfire: recovering PSN meta %s: %w", n, err)
		}
		e.postBlocks = append(e.postBlocks, blocks...)
	}
	e.maxPSN.Store(maxPSN)

	// Rebuild the endTS overlay from sidecars.
	endNames, err := e.store.List(prefix + "/endts/")
	if err != nil {
		return err
	}
	for _, n := range endNames {
		data, err := e.store.Get(n)
		if err != nil {
			continue
		}
		decodeEndTSSidecar(data, func(rid types.RID, ts types.TS) {
			e.endTS[rid] = ts
		})
	}
	return nil
}
