package wildfire

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"umzi/internal/exec"
	"umzi/internal/keyenc"
	"umzi/internal/types"
)

// TestExecuteEquivalenceProperty drives a single Engine and a 4-shard
// ShardedEngine with the same random workload — upserts with key
// updates, lockstep grooms, post-grooms — and checks random analytical
// plans (filters, projections, aggregates, GROUP BY) against a naive
// scan-then-filter-then-aggregate reference computed from a model of
// the table. Checks run with the live zone both excluded and included,
// so groups routinely straddle the live/groomed boundary, and at
// historical groom boundaries so beginTS visibility (and the executor's
// beginTS block skipping) is exercised.
//
// Readings are whole numbers stored as float64, so float sums are exact
// and order-independent: the reference, the single engine and the
// 4-shard partial-aggregate merge must agree bit-for-bit.
func TestExecuteEquivalenceProperty(t *testing.T) {
	seeds := []int64{3, 77}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			executeEquivalence(t, seed)
		})
	}
}

// refFilter is the reference implementation of a generated predicate.
type refFilter func(Row) bool

func refHolds(op exec.CmpOp, c int) bool {
	switch op {
	case exec.OpEq:
		return c == 0
	case exec.OpNe:
		return c != 0
	case exec.OpLt:
		return c < 0
	case exec.OpLe:
		return c <= 0
	case exec.OpGt:
		return c > 0
	default:
		return c >= 0
	}
}

// genLeaf returns a random comparison over the IoT table and its
// independent reference evaluator.
func genLeaf(rng *rand.Rand, devices, msgs int64) (exec.Expr, refFilter) {
	ops := []exec.CmpOp{exec.OpEq, exec.OpNe, exec.OpLt, exec.OpLe, exec.OpGt, exec.OpGe}
	op := ops[rng.Intn(len(ops))]
	switch rng.Intn(4) {
	case 0:
		v := keyenc.I64(rng.Int63n(devices + 1))
		return exec.Cmp("device", op, v), func(r Row) bool { return refHolds(op, keyenc.Compare(r[0], v)) }
	case 1:
		v := keyenc.I64(rng.Int63n(msgs + 1))
		return exec.Cmp("msg", op, v), func(r Row) bool { return refHolds(op, keyenc.Compare(r[1], v)) }
	case 2:
		v := keyenc.F64(float64(rng.Int63n(1000)))
		return exec.Cmp("reading", op, v), func(r Row) bool { return refHolds(op, keyenc.Compare(r[2], v)) }
	default:
		v := keyenc.I64(100 + rng.Int63n(3))
		return exec.Cmp("day", op, v), func(r Row) bool { return refHolds(op, keyenc.Compare(r[3], v)) }
	}
}

// genFilter returns a random predicate tree (nil ~25% of the time).
func genFilter(rng *rand.Rand, devices, msgs int64) (exec.Expr, refFilter) {
	switch rng.Intn(4) {
	case 0:
		return nil, func(Row) bool { return true }
	case 1:
		return genLeaf(rng, devices, msgs)
	case 2:
		a, ra := genLeaf(rng, devices, msgs)
		b, rb := genLeaf(rng, devices, msgs)
		return exec.And(a, b), func(r Row) bool { return ra(r) && rb(r) }
	default:
		a, ra := genLeaf(rng, devices, msgs)
		b, rb := genLeaf(rng, devices, msgs)
		return exec.Or(a, b), func(r Row) bool { return ra(r) || rb(r) }
	}
}

// genPlan returns a random plan and its reference filter. Roughly a
// third are row queries, the rest aggregate with random GROUP BY.
func genPlan(rng *rand.Rand, devices, msgs int64) (exec.Plan, refFilter) {
	f, rf := genFilter(rng, devices, msgs)
	p := exec.Plan{Filter: f}
	if rng.Intn(3) == 0 {
		projections := [][]string{nil, {"device", "msg"}, {"reading"}, {"day", "reading", "device"}}
		p.Columns = projections[rng.Intn(len(projections))]
		if rng.Intn(3) == 0 {
			p.Limit = 1 + rng.Intn(10)
		}
		return p, rf
	}
	groupings := [][]string{nil, {"day"}, {"device"}, {"day", "device"}}
	p.GroupBy = groupings[rng.Intn(len(groupings))]
	aggPool := []exec.Agg{
		{Func: exec.Count},
		{Func: exec.Sum, Col: "reading"},
		{Func: exec.Avg, Col: "reading"},
		{Func: exec.Min, Col: "reading"},
		{Func: exec.Max, Col: "msg"},
		{Func: exec.Count, Col: "day"},
	}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		p.Aggs = append(p.Aggs, aggPool[rng.Intn(len(aggPool))])
	}
	return p, rf
}

// naiveExecute is the reference: filter the reconciled rows, then
// project or aggregate with plain Go — no exec machinery beyond the
// plan shape itself.
func naiveExecute(td TableDef, p exec.Plan, rf refFilter, visible []Row) [][]keyenc.Value {
	var match []Row
	for _, r := range visible {
		if rf(r) {
			match = append(match, r)
		}
	}
	colIdx := func(name string) int { return td.colIndex(name) }

	if len(p.Aggs) == 0 {
		names := p.Columns
		if len(names) == 0 {
			for _, c := range td.Columns {
				names = append(names, c.Name)
			}
		}
		out := make([][]keyenc.Value, 0, len(match))
		for _, r := range match {
			pr := make([]keyenc.Value, len(names))
			for i, n := range names {
				pr[i] = r[colIdx(n)]
			}
			out = append(out, pr)
		}
		sort.Slice(out, func(i, j int) bool {
			a := keyenc.AppendComposite(nil, out[i]...)
			b := keyenc.AppendComposite(nil, out[j]...)
			return string(a) < string(b)
		})
		if p.Limit > 0 && len(out) > p.Limit {
			out = out[:p.Limit]
		}
		return out
	}

	type refGroup struct {
		keyVals []keyenc.Value
		rows    []Row
	}
	groups := map[string]*refGroup{}
	for _, r := range match {
		var kb []byte
		var kv []keyenc.Value
		for _, g := range p.GroupBy {
			v := r[colIdx(g)]
			kb = keyenc.Append(kb, v)
			kv = append(kv, v)
		}
		g, ok := groups[string(kb)]
		if !ok {
			g = &refGroup{keyVals: kv}
			groups[string(kb)] = g
		}
		g.rows = append(g.rows, r)
	}
	if len(p.GroupBy) == 0 && len(groups) == 0 {
		// Global aggregate over zero qualifying rows: exactly one result
		// row — COUNT 0, SUM the typed zero, AVG/MIN/MAX the zero Value
		// (the engine's NULL stand-in).
		rowOut := make([]keyenc.Value, 0, len(p.Aggs))
		for _, a := range p.Aggs {
			switch a.Func {
			case exec.Count:
				rowOut = append(rowOut, keyenc.I64(0))
			case exec.Sum:
				switch td.Columns[colIdx(a.Col)].Kind {
				case keyenc.KindInt64:
					rowOut = append(rowOut, keyenc.I64(0))
				case keyenc.KindUint64:
					rowOut = append(rowOut, keyenc.U64(0))
				default:
					rowOut = append(rowOut, keyenc.F64(0))
				}
			default:
				rowOut = append(rowOut, keyenc.Value{})
			}
		}
		return [][]keyenc.Value{rowOut}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out [][]keyenc.Value
	for _, k := range keys {
		g := groups[k]
		rowOut := append([]keyenc.Value(nil), g.keyVals...)
		for _, a := range p.Aggs {
			switch a.Func {
			case exec.Count:
				rowOut = append(rowOut, keyenc.I64(int64(len(g.rows))))
			case exec.Sum, exec.Avg:
				sum := 0.0
				for _, r := range g.rows {
					sum += r[colIdx(a.Col)].Float()
				}
				if a.Func == exec.Sum {
					rowOut = append(rowOut, keyenc.F64(sum))
				} else {
					rowOut = append(rowOut, keyenc.F64(sum/float64(len(g.rows))))
				}
			case exec.Min, exec.Max:
				best := g.rows[0][colIdx(a.Col)]
				for _, r := range g.rows[1:] {
					v := r[colIdx(a.Col)]
					if (a.Func == exec.Min) == (keyenc.Compare(v, best) < 0) && keyenc.Compare(v, best) != 0 {
						best = v
					}
				}
				rowOut = append(rowOut, best)
			}
		}
		out = append(out, rowOut)
	}
	if p.Limit > 0 && len(out) > p.Limit {
		out = out[:p.Limit]
	}
	return out
}

func executeEquivalence(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const devices, msgs = 6, 9

	single := newTestEngine(t, nil)
	sharded := newTestShardedEngine(t, 4, nil)

	// The model: newest row per primary key, split into the groomed part
	// (committed at or before the last groom) and the live part. Per
	// groom round a copy of the groomed model is kept so historical
	// boundaries can be checked.
	groomedModel := map[string]Row{}
	liveModel := map[string]Row{}
	var boundaries []types.TS
	var history []map[string]Row

	visibleRows := func(m ...map[string]Row) []Row {
		merged := map[string]Row{}
		for _, mm := range m {
			for k, v := range mm {
				merged[k] = v
			}
		}
		out := make([]Row, 0, len(merged))
		for _, r := range merged {
			out = append(out, r)
		}
		return out
	}

	td := iotTable()
	checkPlan := func(p exec.Plan, rf refFilter, opts QueryOptions, visible []Row, label string) {
		t.Helper()
		want := naiveExecute(td, p, rf, visible)
		for _, eng := range []struct {
			name string
			run  func() (*exec.Result, error)
		}{
			{"single", func() (*exec.Result, error) { return single.Execute(p, opts) }},
			{"sharded", func() (*exec.Result, error) { return sharded.Execute(p, opts) }},
			{"scalar", func() (*exec.Result, error) {
				o := opts
				o.ScalarExec = true
				return single.Execute(p, o)
			}},
		} {
			got, err := eng.run()
			if err != nil {
				t.Fatalf("%s %s: %v", label, eng.name, err)
			}
			if len(got.Rows) != len(want) {
				t.Fatalf("%s %s: %d rows, reference %d\nplan: %+v\ngot:  %v\nwant: %v",
					label, eng.name, len(got.Rows), len(want), p, got.Rows, want)
			}
			for i := range want {
				if len(got.Rows[i]) != len(want[i]) {
					t.Fatalf("%s %s row %d: arity %d vs %d", label, eng.name, i, len(got.Rows[i]), len(want[i]))
				}
				for c := range want[i] {
					if got.Rows[i][c].Kind() == keyenc.KindInvalid && want[i][c].Kind() == keyenc.KindInvalid {
						continue // both NULL stand-ins (empty AVG/MIN/MAX)
					}
					if keyenc.Compare(got.Rows[i][c], want[i][c]) != 0 {
						t.Fatalf("%s %s row %d col %d: %v, reference %v\nplan: %+v\ngot:  %v\nwant: %v",
							label, eng.name, i, c, got.Rows[i][c], want[i][c], p, got.Rows, want)
					}
				}
			}
		}
	}

	for round := 0; round < 24; round++ {
		// Groom what the previous round left live (lockstep on both
		// sides), recording the boundary and the model snapshot.
		if _, err := single.GroomCount(); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.GroomCount(); err != nil {
			t.Fatal(err)
		}
		for k, v := range liveModel {
			groomedModel[k] = v
		}
		liveModel = map[string]Row{}
		if single.LastGroomTS() != sharded.SnapshotTS() {
			t.Fatalf("round %d: boundaries diverged: %v vs %v", round, single.LastGroomTS(), sharded.SnapshotTS())
		}
		boundaries = append(boundaries, single.LastGroomTS())
		snap := make(map[string]Row, len(groomedModel))
		for k, v := range groomedModel {
			snap[k] = v
		}
		history = append(history, snap)

		if rng.Intn(3) == 0 {
			if _, err := single.PostGroom(); err != nil {
				t.Fatal(err)
			}
			if err := single.SyncIndex(); err != nil {
				t.Fatal(err)
			}
			if err := sharded.PostGroom(); err != nil {
				t.Fatal(err)
			}
			if err := sharded.SyncIndex(); err != nil {
				t.Fatal(err)
			}
		}

		// New committed-but-ungroomed rows; updates and inserts mix, so
		// some keys have a groomed version shadowed by a live one.
		n := 1 + rng.Intn(12)
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = row(rng.Int63n(devices), rng.Int63n(msgs), float64(rng.Int63n(1000)), 100+rng.Int63n(3))
		}
		replica := rng.Intn(2)
		if err := single.UpsertRows(replica, rows...); err != nil {
			t.Fatal(err)
		}
		if err := sharded.UpsertRows(replica, rows...); err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			liveModel[td.pkEncoding(r)] = r
		}

		if round%3 != 2 {
			continue
		}
		for q := 0; q < 4; q++ {
			p, rf := genPlan(rng, devices, msgs)
			checkPlan(p, rf, QueryOptions{}, visibleRows(groomedModel),
				fmt.Sprintf("round %d q%d groomed", round, q))
			checkPlan(p, rf, QueryOptions{IncludeLive: true}, visibleRows(groomedModel, liveModel),
				fmt.Sprintf("round %d q%d live", round, q))
			if len(boundaries) > 1 {
				b := rng.Intn(len(boundaries))
				checkPlan(p, rf, QueryOptions{TS: boundaries[b]}, visibleRows(history[b]),
					fmt.Sprintf("round %d q%d boundary %d", round, q, b))
			}
		}
	}
}
