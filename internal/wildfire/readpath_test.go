package wildfire

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"umzi/internal/exec"
	"umzi/internal/keyenc"
	"umzi/internal/storage"
	"umzi/internal/types"
)

// TestBlockCacheStampede checks the singleflight: N concurrent queries
// against a cold cache cost exactly as many storage reads as one cold
// query — every block is fetched and decoded once, and the other N-1
// readers piggyback.
func TestBlockCacheStampede(t *testing.T) {
	store := storage.NewMemStore(storage.LatencyModel{})
	e := newTestEngine(t, func(cfg *Config) { cfg.Store = store })
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 4; round++ {
		rows := make([]Row, 24)
		for i := range rows {
			rows[i] = row(rng.Int63n(8), rng.Int63n(64), float64(rng.Int63n(1000)), 100+rng.Int63n(3))
		}
		if err := e.UpsertRows(0, rows...); err != nil {
			t.Fatal(err)
		}
		if _, err := e.GroomCount(); err != nil {
			t.Fatal(err)
		}
	}
	plan := exec.Plan{Aggs: []exec.Agg{{Func: exec.Sum, Col: "reading"}}}

	// One cold query establishes the block count (groom pre-populated the
	// cache, so start from a fresh one).
	e.blocks = NewBlockCache(0)
	before := store.Stats().Snapshot().Reads
	if _, err := e.Execute(plan, QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	coldReads := store.Stats().Snapshot().Reads - before
	if coldReads == 0 {
		t.Fatal("cold query read no blocks; the stampede check would be vacuous")
	}

	// Fresh cold cache again: N concurrent identical queries must not
	// read any object more than once.
	e.blocks = NewBlockCache(0)
	before = store.Stats().Snapshot().Reads
	const n = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, errs[i] = e.Execute(plan, QueryOptions{})
		}(i)
	}
	close(start)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if delta := store.Stats().Snapshot().Reads - before; delta != coldReads {
		t.Fatalf("%d concurrent cold queries cost %d storage reads; singleflight should hold them to %d", n, delta, coldReads)
	}
}

// TestReadPathParallelEquivalence drives four engines — sequential
// (ScanParallelism 1), parallel (8), parallel with a starved block-cache
// budget (eviction churn mid-query), and a 4-shard parallel sharded
// engine — through the same random workload, and checks random plans
// agree across all of them, on the normal and the ScalarExec paths,
// with and without the live zone, and at historical groom boundaries.
func TestReadPathParallelEquivalence(t *testing.T) {
	seeds := []int64{11, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			readPathEquivalence(t, seed)
		})
	}
}

func readPathEquivalence(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const devices, msgs = 6, 9

	seq := newTestEngine(t, func(cfg *Config) { cfg.ScanParallelism = 1 })
	par := newTestEngine(t, func(cfg *Config) { cfg.ScanParallelism = 8 })
	starved := newTestEngine(t, func(cfg *Config) {
		cfg.ScanParallelism = 8
		cfg.BlockCacheBytes = 16 << 10
	})
	sharded := newTestShardedEngine(t, 4, func(cfg *ShardedConfig) { cfg.ScanParallelism = 4 })

	singles := []*Engine{seq, par, starved}
	var boundaries []types.TS

	check := func(p exec.Plan, opts QueryOptions, label string) {
		t.Helper()
		want, err := seq.Execute(p, opts)
		if err != nil {
			t.Fatalf("%s seq: %v", label, err)
		}
		runs := []struct {
			name string
			run  func() (*exec.Result, error)
		}{
			{"par", func() (*exec.Result, error) { return par.Execute(p, opts) }},
			{"starved", func() (*exec.Result, error) { return starved.Execute(p, opts) }},
			{"sharded", func() (*exec.Result, error) { return sharded.Execute(p, opts) }},
			{"par-scalar", func() (*exec.Result, error) {
				o := opts
				o.ScalarExec = true
				return par.Execute(p, o)
			}},
			{"seq-scalar", func() (*exec.Result, error) {
				o := opts
				o.ScalarExec = true
				return seq.Execute(p, o)
			}},
		}
		for _, eng := range runs {
			got, err := eng.run()
			if err != nil {
				t.Fatalf("%s %s: %v", label, eng.name, err)
			}
			if len(got.Rows) != len(want.Rows) {
				t.Fatalf("%s %s: %d rows, sequential got %d\nplan: %+v\ngot:  %v\nwant: %v",
					label, eng.name, len(got.Rows), len(want.Rows), p, got.Rows, want.Rows)
			}
			for i := range want.Rows {
				if len(got.Rows[i]) != len(want.Rows[i]) {
					t.Fatalf("%s %s row %d: arity %d vs %d", label, eng.name, i, len(got.Rows[i]), len(want.Rows[i]))
				}
				for c := range want.Rows[i] {
					if got.Rows[i][c].Kind() == keyenc.KindInvalid && want.Rows[i][c].Kind() == keyenc.KindInvalid {
						continue
					}
					if keyenc.Compare(got.Rows[i][c], want.Rows[i][c]) != 0 {
						t.Fatalf("%s %s row %d col %d: %v, sequential %v\nplan: %+v\ngot:  %v\nwant: %v",
							label, eng.name, i, c, got.Rows[i][c], want.Rows[i][c], p, got.Rows, want.Rows)
					}
				}
			}
		}
	}

	for round := 0; round < 16; round++ {
		for _, e := range singles {
			if _, err := e.GroomCount(); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sharded.GroomCount(); err != nil {
			t.Fatal(err)
		}
		if seq.LastGroomTS() != par.LastGroomTS() || seq.LastGroomTS() != sharded.SnapshotTS() {
			t.Fatalf("round %d: groom boundaries diverged", round)
		}
		boundaries = append(boundaries, seq.LastGroomTS())

		if rng.Intn(3) == 0 {
			for _, e := range singles {
				if _, err := e.PostGroom(); err != nil {
					t.Fatal(err)
				}
				if err := e.SyncIndex(); err != nil {
					t.Fatal(err)
				}
			}
			if err := sharded.PostGroom(); err != nil {
				t.Fatal(err)
			}
			if err := sharded.SyncIndex(); err != nil {
				t.Fatal(err)
			}
		}

		n := 1 + rng.Intn(12)
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = row(rng.Int63n(devices), rng.Int63n(msgs), float64(rng.Int63n(1000)), 100+rng.Int63n(3))
		}
		replica := rng.Intn(2)
		for _, e := range singles {
			if err := e.UpsertRows(replica, rows...); err != nil {
				t.Fatal(err)
			}
		}
		if err := sharded.UpsertRows(replica, rows...); err != nil {
			t.Fatal(err)
		}

		if round%3 != 2 {
			continue
		}
		for q := 0; q < 4; q++ {
			p, _ := genPlan(rng, devices, msgs)
			check(p, QueryOptions{}, fmt.Sprintf("round %d q%d groomed", round, q))
			check(p, QueryOptions{IncludeLive: true}, fmt.Sprintf("round %d q%d live", round, q))
			if len(boundaries) > 1 {
				b := rng.Intn(len(boundaries))
				check(p, QueryOptions{TS: boundaries[b]}, fmt.Sprintf("round %d q%d boundary %d", round, q, b))
			}
		}
	}

	// The starved engine must actually have churned; otherwise the
	// eviction path went untested.
	if st := starved.BlockCache().Stats(); st.Evictions == 0 {
		t.Fatalf("starved engine saw no evictions; budget too generous for the test to bite: %+v", st)
	}
}

// TestBlockCacheChurnInvariant runs parallel scans against a starved
// cache while grooming retires and reclaims blocks underneath them:
// a historical-boundary query must keep returning the same result
// through eviction and reclaim churn, and occupancy must never exceed
// the byte budget.
func TestBlockCacheChurnInvariant(t *testing.T) {
	const budget = 16 << 10
	e := newTestEngine(t, func(cfg *Config) {
		cfg.ScanParallelism = 4
		cfg.BlockCacheBytes = budget
	})
	rng := rand.New(rand.NewSource(7))
	seedRows := make([]Row, 48)
	for i := range seedRows {
		seedRows[i] = row(rng.Int63n(8), rng.Int63n(64), float64(rng.Int63n(1000)), 100+rng.Int63n(3))
	}
	if err := e.UpsertRows(0, seedRows...); err != nil {
		t.Fatal(err)
	}
	if _, err := e.GroomCount(); err != nil {
		t.Fatal(err)
	}
	ts0 := e.LastGroomTS()
	plan := exec.Plan{
		GroupBy: []string{"day"},
		Aggs:    []exec.Agg{{Func: exec.Count}, {Func: exec.Sum, Col: "reading"}},
	}
	want, err := e.Execute(plan, QueryOptions{TS: ts0})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := make(chan string, 16)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				got, err := e.Execute(plan, QueryOptions{TS: ts0})
				if err != nil {
					fail <- fmt.Sprintf("churn query: %v", err)
					return
				}
				if len(got.Rows) != len(want.Rows) {
					fail <- fmt.Sprintf("historical result drifted: %d rows, want %d", len(got.Rows), len(want.Rows))
					return
				}
				for i := range want.Rows {
					for c := range want.Rows[i] {
						if keyenc.Compare(got.Rows[i][c], want.Rows[i][c]) != 0 {
							fail <- fmt.Sprintf("historical result drifted at row %d col %d: %v want %v",
								i, c, got.Rows[i][c], want.Rows[i][c])
							return
						}
					}
				}
				if st := e.blocks.Stats(); st.Bytes > st.Budget {
					fail <- fmt.Sprintf("cache occupancy %d exceeds budget %d", st.Bytes, st.Budget)
					return
				}
			}
		}()
	}

	// Writer: keep grooming and post-grooming so deprecated blocks are
	// retired and reclaimed while the readers scan.
	for round := 0; round < 12; round++ {
		rows := make([]Row, 16)
		for i := range rows {
			rows[i] = row(rng.Int63n(8), rng.Int63n(64), float64(rng.Int63n(1000)), 100+rng.Int63n(3))
		}
		if err := e.UpsertRows(0, rows...); err != nil {
			t.Fatal(err)
		}
		if _, err := e.GroomCount(); err != nil {
			t.Fatal(err)
		}
		if round%3 == 2 {
			if _, err := e.PostGroom(); err != nil {
				t.Fatal(err)
			}
			if err := e.SyncIndex(); err != nil {
				t.Fatal(err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	st := e.blocks.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget; churn test did not bite: %+v", budget, st)
	}
	if st.Bytes > st.Budget {
		t.Fatalf("final occupancy %d exceeds budget %d", st.Bytes, st.Budget)
	}
}

// BenchmarkParallelScan measures an aggregation scan over groomed blocks
// at ScanParallelism 1 vs GOMAXPROCS — the Figure S6 shape, in
// benchmark form for the CI smoke tier.
func BenchmarkParallelScan(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := Config{
				Table:    iotTable(),
				Index:    iotIndex(),
				Store:    storage.NewMemStore(storage.LatencyModel{}),
				Replicas: 2,
			}
			cfg.IndexTuning.K = 2
			cfg.IndexTuning.GroomedLevels = 3
			cfg.IndexTuning.PostGroomedLevels = 2
			cfg.IndexTuning.BlockSize = 1024
			cfg.ScanParallelism = workers
			e, err := NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			rng := rand.New(rand.NewSource(3))
			for round := 0; round < 8; round++ {
				rows := make([]Row, 512)
				for i := range rows {
					rows[i] = row(rng.Int63n(64), rng.Int63n(1024), float64(rng.Int63n(1000)), 100+rng.Int63n(3))
				}
				if err := e.UpsertRows(0, rows...); err != nil {
					b.Fatal(err)
				}
				if _, err := e.GroomCount(); err != nil {
					b.Fatal(err)
				}
			}
			plan := exec.Plan{
				GroupBy: []string{"day"},
				Aggs:    []exec.Agg{{Func: exec.Count}, {Func: exec.Sum, Col: "reading"}, {Func: exec.Max, Col: "reading"}},
			}
			if _, err := e.Execute(plan, QueryOptions{}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Execute(plan, QueryOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
