package wildfire

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"umzi/internal/keyenc"
	"umzi/internal/storage"
	"umzi/internal/wal"
)

// The durable write path. Wildfire's live zone is not a primary data
// structure — "the log is the database" (§2.1): a transaction commits by
// appending to its shard's durable log, the live zone is an in-memory
// view of the log tail, and the groomer consumes the log up to a
// watermark that is persisted only once the groomed block and every
// index run built over it have landed in shared storage. This file wires
// the engine to internal/wal: commit staging, watermark advancement
// (with gap tracking, so out-of-order drains and aborted sequences never
// wedge it), log-tail replay on recovery, segment reclamation, and the
// clean-shutdown marker that lets an orderly restart skip replay.

// SyncPolicy selects when a commit becomes durable; see the wal package
// for the policy semantics.
type SyncPolicy = wal.SyncPolicy

// Durability policies, re-exported so engine users need not import wal.
const (
	// SyncDefault resolves to SyncPerCommit.
	SyncDefault = wal.SyncDefault
	// SyncPerCommit acknowledges a commit only after its log records are
	// durable; concurrent committers share one segment write (group
	// commit).
	SyncPerCommit = wal.SyncPerCommit
	// SyncInterval makes commits durable in the background every
	// DurabilityOptions.SyncInterval.
	SyncInterval = wal.SyncInterval
	// SyncOff buffers the log in memory until a segment fills.
	SyncOff = wal.SyncOff
)

// DurabilityOptions configure the per-shard commit log. The zero value
// is full durability: per-commit sync with group commit and defaulted
// segment sizing.
type DurabilityOptions struct {
	// SyncPolicy selects the durability point of Commit.
	SyncPolicy SyncPolicy
	// SegmentBytes is the target log segment size (default 1 MiB).
	SegmentBytes int
	// GroupCommitWindow is how long a group leader waits for more
	// committers before writing the shared segment. Zero still batches
	// everything that arrives while a prior segment write is in flight.
	GroupCommitWindow time.Duration
	// SyncInterval is the background flush cadence of the SyncInterval
	// policy (default 5ms).
	SyncInterval time.Duration
}

func (d DurabilityOptions) walOptions() wal.Options {
	return wal.Options{
		Policy:            d.SyncPolicy,
		SegmentBytes:      d.SegmentBytes,
		GroupCommitWindow: d.GroupCommitWindow,
		Interval:          d.SyncInterval,
	}
}

// walOptions derives the shard log's options with the engine's observer
// hooks attached: segment writes feed the group-commit batch-size and
// sync-latency histograms, swallowed buffered-policy flush failures are
// counted (they retry internally and would otherwise be invisible), and
// reclaimed segments accumulate.
func (e *Engine) walOptions() wal.Options {
	o := e.durable.walOptions()
	// Read e.mx per call, not captured: the overhead benchmark swaps the
	// bundle after construction, and the hooks must follow it.
	o.OnSegment = func(records, _ int, elapsed time.Duration) {
		e.mx.walBatch.Observe(int64(records))
		e.mx.walSync.Observe(int64(elapsed))
	}
	o.OnFlushError = func(error) { e.mx.walFlushErrors.Inc() }
	o.OnReclaim = func(n int) { e.mx.walReclaimed.Add(int64(n)) }
	return o
}

// ---- storage names ----------------------------------------------------

// WALStoragePrefix is where a table shard's commit-log segments live;
// exported for inspection tooling.
func WALStoragePrefix(table string) string { return "tbl/" + table + "/wal" }

func walMarkPrefix(table string) string { return "tbl/" + table + "/wal-mark/" }

func walMarkName(table string, seq uint64) string {
	return fmt.Sprintf("%s%012d", walMarkPrefix(table), seq)
}

func walCleanName(table string) string { return "tbl/" + table + "/wal-clean" }

// walMarkRecord is the persisted groom watermark: every log row with
// sequence <= Mark is durably contained in groomed blocks (and their
// index runs), written by the groom of cycle Cycle. Records are
// sequenced and immutable like the catalogs; newest valid wins.
type walMarkRecord struct {
	Magic string
	Mark  uint64
	Cycle uint64
}

const walMarkMagic = "UMZIWMK1"

// walCleanRecord is the clean-shutdown marker: Close flushed the log
// and MaxSeq was the largest commit sequence ever assigned. A reopen
// that finds Mark >= MaxSeq knows the replay tail is empty and skips
// reading segments entirely. The marker is deleted on open, so only an
// orderly shutdown can produce it.
type walCleanRecord struct {
	Magic  string
	MaxSeq uint64
}

const walCleanMagic = "UMZIWCL1"

// LoadWALMark reads a table shard's newest valid groom watermark from
// storage alone (inspection and recovery). ok is false when the table
// has never persisted one.
func LoadWALMark(store storage.ObjectStore, table string) (mark, cycle, seq uint64, ok bool, err error) {
	names, err := store.List(walMarkPrefix(table))
	if err != nil {
		return 0, 0, 0, false, err
	}
	sort.Strings(names)
	for i := len(names) - 1; i >= 0; i-- {
		data, err := store.Get(names[i])
		if errors.Is(err, storage.ErrNotExist) {
			continue // racing prune (inspection of a live store)
		}
		if err != nil {
			// A transient read failure must not silently fall back to an
			// older mark: recovery would adopt a stale watermark and a
			// stale mark-record sequence.
			return 0, 0, 0, false, fmt.Errorf("wildfire: reading wal mark %s: %w", names[i], err)
		}
		var rec walMarkRecord
		if json.Unmarshal(data, &rec) != nil || rec.Magic != walMarkMagic {
			continue // interrupted write
		}
		var s uint64
		fmt.Sscanf(strings.TrimPrefix(names[i], walMarkPrefix(table)), "%d", &s)
		return rec.Mark, rec.Cycle, s, true, nil
	}
	return 0, 0, 0, false, nil
}

// ---- engine glue ------------------------------------------------------

// stageCommit makes a transaction's rows durable per the sync policy
// and returns the first commit sequence assigned to them. On error the
// sequences are recorded as lost so the watermark can advance past
// them (they exist nowhere durable and never will).
func (e *Engine) stageCommit(replica int, rows []Row) (uint64, error) {
	n := uint64(len(rows))
	base := e.commitSeq.Add(n)
	first := base - n + 1
	rec := wal.Record{
		Table:    e.table.Name,
		Replica:  uint32(replica),
		Base:     first,
		CommitTS: time.Now().UnixNano(),
		Rows:     make([][]byte, 0, len(rows)),
	}
	for _, r := range rows {
		rec.Rows = append(rec.Rows, keyenc.AppendComposite(nil, r...))
	}
	if err := e.wal.Commit(rec); err != nil {
		e.mx.walCommitErrors.Inc()
		e.noteLostSeqs(first, base)
		return 0, err
	}
	e.mx.walAppends.Inc()
	e.mx.walRows.Add(int64(n))
	return first, nil
}

// noteLostSeqs records sequences that will never reach the live zone
// (failed log appends) so the contiguous groomed prefix can advance
// over them.
func (e *Engine) noteLostSeqs(first, last uint64) {
	e.walMu.Lock()
	for s := first; s <= last; s++ {
		e.walDrained[s] = struct{}{}
	}
	e.walMu.Unlock()
}

// noteGroomedSeqs records the drained commit sequences of a groom whose
// block and index runs have all landed, advances the contiguous
// watermark, and returns the new value. Sequences above a gap (a commit
// between log append and live-zone publish when the groom drained) stay
// in the pending set until the gap closes; the watermark never jumps a
// sequence that could still surface.
func (e *Engine) noteGroomedSeqs(seqs []uint64) uint64 {
	e.walMu.Lock()
	defer e.walMu.Unlock()
	for _, s := range seqs {
		if s > e.walMark {
			e.walDrained[s] = struct{}{}
		}
	}
	for {
		if _, ok := e.walDrained[e.walMark+1]; !ok {
			break
		}
		delete(e.walDrained, e.walMark+1)
		e.walMark++
	}
	return e.walMark
}

// WALMark returns the in-memory groom watermark: every commit sequence
// at or below it is durably groomed.
func (e *Engine) WALMark() uint64 {
	e.walMu.Lock()
	defer e.walMu.Unlock()
	return e.walMark
}

// MaxCommitSeq returns the largest commit sequence assigned so far.
func (e *Engine) MaxCommitSeq() uint64 { return e.commitSeq.Load() }

// publishWalMark persists the watermark reached by the groom of cycle,
// prunes superseded mark records, and reclaims log segments wholly at
// or below it. Reclamation is gated on the persisted mark, which by
// construction trails every index run build of the covered grooms (the
// mark only advances in noteGroomedSeqs, called after the groom's block
// and its per-index runs land) — the log below the mark can never be
// needed again: replay starts above it, and lost index runs are
// re-derived from the groomed data blocks, not from the log (§5.5).
// Callers hold groomMu.
func (e *Engine) publishWalMark(mark, cycle uint64) error {
	if mark <= e.walMarkPersisted {
		// Nothing new to persist, but retry reclamation: a groom whose
		// Reclaim failed transiently must not leak consumed segments
		// until the mark next advances (a no-op when nothing qualifies).
		_, err := e.wal.Reclaim(e.walMarkPersisted)
		return err
	}
	data, err := json.Marshal(walMarkRecord{Magic: walMarkMagic, Mark: mark, Cycle: cycle})
	if err != nil {
		return err
	}
	// The sequence is never rolled back on failure: mark names need not
	// be dense (LoadWALMark takes the newest valid record), and reusing
	// a sequence after a failure that actually published — or that
	// collided with an object a stale in-memory counter missed — would
	// wedge every future publish on write-once ErrExists.
	e.walMarkSeq++
	if err := e.store.Put(walMarkName(e.table.Name, e.walMarkSeq), data); err != nil {
		return fmt.Errorf("wildfire: persisting wal mark: %w", err)
	}
	e.walMarkPersisted = mark
	if names, err := e.store.List(walMarkPrefix(e.table.Name)); err == nil && len(names) > 2 {
		sort.Strings(names)
		for _, n := range names[:len(names)-2] {
			// A failed prune is retried on the next publish (the record is
			// superseded, not load-bearing), but it must not be invisible.
			if err := e.store.Delete(n); err != nil {
				e.mx.walPruneErrors.Inc()
			}
		}
	}
	if _, err := e.wal.Reclaim(mark); err != nil {
		return fmt.Errorf("wildfire: reclaiming wal segments: %w", err)
	}
	return nil
}

// recoverWAL rebuilds the live zone from the log tail after recoverState
// has restored the groomed and post-groomed state. It loads the
// persisted watermark, honors a clean-shutdown marker (skipping replay
// when the marker proves the tail is empty), replays surviving rows
// above the watermark into their replicas' committed logs — idempotent:
// keyed on commit sequence, each applied at most once and never at or
// below the watermark — and floors the commit clock so sequences are
// never reused. Sequences above the watermark present in no segment
// (commits the crash cut before their flush) are recorded as lost so
// the watermark does not wedge below them forever.
func (e *Engine) recoverWAL() error {
	mark, _, markSeq, _, err := LoadWALMark(e.store, e.table.Name)
	if err != nil {
		return err
	}
	e.walMark = mark
	e.walMarkPersisted = mark
	e.walMarkSeq = markSeq

	cleanName := walCleanName(e.table.Name)
	var clean walCleanRecord
	hadClean := false
	if data, err := e.store.Get(cleanName); err == nil {
		if json.Unmarshal(data, &clean) == nil && clean.Magic == walCleanMagic {
			hadClean = true
		}
		// Consume the marker either way: it attests only to the shutdown
		// that wrote it.
		if err := e.store.Delete(cleanName); err != nil {
			return err
		}
	} else if !errors.Is(err, storage.ErrNotExist) {
		return err
	}

	floor := e.wal.MaxSeq()
	if mark > floor {
		floor = mark
	}
	if hadClean && clean.MaxSeq > floor {
		floor = clean.MaxSeq
	}
	e.commitSeq.Store(floor)

	if hadClean && clean.MaxSeq <= mark {
		// Clean, quiesced shutdown: every sequence ever assigned is
		// groomed. Skip replay entirely; just finish any interrupted
		// segment reclamation.
		_, err := e.wal.Reclaim(mark)
		return err
	}

	kinds := make([]keyenc.Kind, len(e.table.Columns))
	for i, c := range e.table.Columns {
		kinds[i] = c.Kind
	}
	seen := make(map[uint64]struct{})
	err = e.wal.Replay(mark, func(rec wal.Record) error {
		if rec.Table != e.table.Name {
			return fmt.Errorf("wildfire: wal record for table %q in log of %q", rec.Table, e.table.Name)
		}
		replica := int(rec.Replica)
		if replica < 0 || replica >= len(e.replicas) {
			replica = 0
		}
		for i, raw := range rec.Rows {
			seq := rec.Base + uint64(i)
			if seq <= mark {
				continue
			}
			if _, dup := seen[seq]; dup {
				continue
			}
			vals, _, err := keyenc.DecodeComposite(raw, kinds)
			if err != nil {
				return fmt.Errorf("wildfire: wal replay of seq %d: %w", seq, err)
			}
			seen[seq] = struct{}{}
			e.replicas[replica].appendWithSeqs([]Row{Row(vals)}, seq, 0)
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Sequences the log never captured are gone for good; treat them as
	// drained so the watermark can move past them.
	for s := mark + 1; s <= floor; s++ {
		if _, ok := seen[s]; !ok {
			e.walDrained[s] = struct{}{}
		}
	}
	_, err = e.wal.Reclaim(mark)
	return err
}

// closeWAL flushes the log and writes the clean-shutdown marker; called
// once from Close.
func (e *Engine) closeWAL() error {
	err := e.wal.Close()
	data, merr := json.Marshal(walCleanRecord{Magic: walCleanMagic, MaxSeq: e.commitSeq.Load()})
	if merr != nil {
		if err == nil {
			err = merr
		}
		return err
	}
	// The marker from a previous orderly shutdown was consumed on open;
	// delete defensively so Put's write-once semantics cannot trip.
	_ = e.store.Delete(walCleanName(e.table.Name))
	if perr := e.store.Put(walCleanName(e.table.Name), data); perr != nil && err == nil {
		err = perr
	}
	return err
}

// WALStatus is a snapshot of a shard's commit-log state.
type WALStatus struct {
	Segments     int
	SegmentBytes int64
	Mark         uint64 // durable groom watermark
	MaxSeq       uint64 // largest commit sequence assigned
}

// WALStatus reports the shard's commit-log state (tooling and tests).
func (e *Engine) WALStatus() WALStatus {
	segs, bytes := e.wal.Stats()
	return WALStatus{
		Segments:     segs,
		SegmentBytes: bytes,
		Mark:         e.WALMark(),
		MaxSeq:       e.commitSeq.Load(),
	}
}
