package wildfire

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"umzi/internal/core"
	"umzi/internal/keyenc"
	"umzi/internal/types"
)

// Concurrency tests for the sharding layer, modeled on
// internal/core/concurrency_test.go: ingest, lockstep grooming,
// post-grooming and index maintenance race against scatter-gather
// queries. Run with -race to exercise the memory model.

// TestShardedConcurrentIngestAndScatterGather hammers a msg-sharded
// table (every scan fans out to all shards and sort-merges) with
// concurrent writers, a maintenance driver and scan/lookup readers.
// Readers must never see a duplicated key, a wrong value or a
// non-monotonic merge order.
func TestShardedConcurrentIngestAndScatterGather(t *testing.T) {
	s := newTestShardedEngine(t, 4, func(c *ShardedConfig) { c.Table = msgShardedTable() })
	const devices, msgs = 4, 32
	value := func(dev, msg int64) float64 { return float64(dev*1000 + msg) }

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	// Writers: each owns a disjoint set of devices, writing every key
	// exactly once through alternating replicas.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for dev := int64(w); dev < devices; dev += 2 {
				for msg := int64(0); msg < msgs; msg++ {
					if err := s.UpsertRows(int(msg)%2, row(dev, msg, value(dev, msg), 100)); err != nil {
						report(err)
						return
					}
				}
			}
		}(w)
	}

	// Maintenance driver: lockstep grooms with periodic post-grooms,
	// index sync and merge maintenance, racing with writers and readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		writersDone := func() bool { return s.LiveCount() == 0 && allIngested(s, devices, msgs) }
		for i := 0; ; i++ {
			if _, err := s.GroomCount(); err != nil {
				report(err)
				return
			}
			if i%3 == 2 {
				if err := s.PostGroom(); err != nil {
					report(err)
					return
				}
				if err := s.SyncIndex(); err != nil {
					report(err)
					return
				}
			}
			if _, err := s.MaintainOnce(); err != nil {
				report(err)
				return
			}
			if writersDone() {
				return
			}
		}
	}()

	// Readers: fan-out scans and batched lookups at MaxTS. A scan may
	// observe a prefix of the ingest, but never duplicates, out-of-order
	// results or wrong values.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				dev := int64((r + i) % devices)
				eq := []keyenc.Value{keyenc.I64(dev)}
				recs, err := s.Scan(eq, nil, nil, QueryOptions{TS: types.MaxTS})
				if err != nil {
					report(err)
					return
				}
				last := int64(-1)
				for _, rec := range recs {
					msg := rec.Row[1].Int()
					if msg <= last {
						report(fmt.Errorf("merge order violated: msg %d after %d (dev %d)", msg, last, dev))
						return
					}
					last = msg
					if rec.Row[2].Float() != value(dev, msg) {
						report(fmt.Errorf("dev %d msg %d: value %v", dev, msg, rec.Row[2]))
						return
					}
				}
				// Batched lookups across all shards.
				var keys []core.LookupKey
				for m := int64(0); m < 8; m++ {
					keys = append(keys, core.LookupKey{
						Equality: []keyenc.Value{keyenc.I64(dev)},
						Sort:     []keyenc.Value{keyenc.I64((int64(i) + m) % msgs)},
					})
				}
				recs2, found, err := s.GetBatch(keys, QueryOptions{TS: types.MaxTS})
				if err != nil {
					report(err)
					return
				}
				for j := range keys {
					if found[j] && recs2[j].Row[2].Float() != value(dev, keys[j].Sort[0].Int()) {
						report(fmt.Errorf("batch dev %d msg %d: value %v", dev, keys[j].Sort[0].Int(), recs2[j].Row[2]))
						return
					}
				}
			}
		}(r)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Final state: every key visible exactly once with the right value.
	for dev := int64(0); dev < devices; dev++ {
		recs, err := s.Scan([]keyenc.Value{keyenc.I64(dev)}, nil, nil, QueryOptions{TS: types.MaxTS})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != msgs {
			t.Fatalf("final scan dev %d: %d rows, want %d", dev, len(recs), msgs)
		}
		for i, rec := range recs {
			if rec.Row[1].Int() != int64(i) || rec.Row[2].Float() != value(dev, int64(i)) {
				t.Fatalf("final dev %d row %d = %v", dev, i, rec.Row)
			}
		}
	}
	for i := 0; i < s.NumShards(); i++ {
		if err := s.Shard(i).Index().VerifyInvariants(); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
}

// allIngested reports whether every expected key is visible at MaxTS.
func allIngested(s *ShardedEngine, devices, msgs int64) bool {
	for dev := int64(0); dev < devices; dev++ {
		recs, err := s.Scan([]keyenc.Value{keyenc.I64(dev)}, nil, nil, QueryOptions{TS: types.MaxTS})
		if err != nil || int64(len(recs)) != msgs {
			return false
		}
	}
	return true
}

// TestShardedSnapshotStabilityUnderIngest verifies that a snapshot
// timestamp captured mid-ingest yields identical scatter-gather results
// on repeated reads while grooming keeps moving underneath — the
// cross-shard read-consistency contract of the sharding layer.
func TestShardedSnapshotStabilityUnderIngest(t *testing.T) {
	s := newTestShardedEngine(t, 4, func(c *ShardedConfig) { c.Table = msgShardedTable() })
	const devices, msgs = 3, 24

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for msg := int64(0); msg < msgs; msg++ {
			for dev := int64(0); dev < devices; dev++ {
				if err := s.UpsertRows(0, row(dev, msg, float64(dev), 100)); err != nil {
					report(err)
					return
				}
			}
			if _, err := s.GroomCount(); err != nil {
				report(err)
				return
			}
			if msg%6 == 5 {
				if err := s.PostGroom(); err != nil {
					report(err)
					return
				}
				if err := s.SyncIndex(); err != nil {
					report(err)
					return
				}
			}
		}
	}()

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !stop.Load() {
				ts := s.SnapshotTS()
				dev := int64(r) % devices
				eq := []keyenc.Value{keyenc.I64(dev)}
				first, err := s.Scan(eq, nil, nil, QueryOptions{TS: ts})
				if err != nil {
					report(err)
					return
				}
				second, err := s.Scan(eq, nil, nil, QueryOptions{TS: ts})
				if err != nil {
					report(err)
					return
				}
				if len(first) != len(second) {
					report(fmt.Errorf("snapshot %v unstable: %d then %d rows", ts, len(first), len(second)))
					return
				}
				for i := range first {
					if first[i].Row[1].Int() != second[i].Row[1].Int() || first[i].BeginTS != second[i].BeginTS {
						report(fmt.Errorf("snapshot %v unstable at row %d", ts, i))
						return
					}
				}
			}
		}(r)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestShardedConcurrentTxns commits transactions spanning all shards
// from many goroutines while grooms run; every committed row must be
// durable and visible exactly once afterwards.
func TestShardedConcurrentTxns(t *testing.T) {
	s := newTestShardedEngine(t, 4, nil)
	const writers, perWriter = 4, 25

	var wg sync.WaitGroup
	errCh := make(chan error, writers+1)
	var stop atomic.Bool

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tx, err := s.Begin(w % 2)
				if err != nil {
					errCh <- err
					return
				}
				// Each txn touches several devices, hence several shards.
				for dev := int64(0); dev < 4; dev++ {
					if err := tx.Upsert(row(dev, int64(w*perWriter+i), float64(w), 100)); err != nil {
						errCh <- err
						return
					}
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	groomerDone := make(chan struct{})
	go func() {
		defer close(groomerDone)
		for !stop.Load() {
			if _, err := s.GroomCount(); err != nil {
				errCh <- err
				return
			}
		}
	}()

	wg.Wait()
	stop.Store(true)
	<-groomerDone
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := s.Groom(); err != nil {
		t.Fatal(err)
	}
	for dev := int64(0); dev < 4; dev++ {
		recs, err := s.Scan([]keyenc.Value{keyenc.I64(dev)}, nil, nil, QueryOptions{TS: types.MaxTS})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != writers*perWriter {
			t.Fatalf("dev %d: %d rows, want %d", dev, len(recs), writers*perWriter)
		}
	}
}
