package wildfire

import (
	"context"
	"fmt"

	"umzi/internal/columnar"
	"umzi/internal/core"
	"umzi/internal/run"
	"umzi/internal/types"
)

// The indexer side of Figure 5, generalized to the index set: each index
// tracks its own IndexedPSN and the indexer polls the post-groomer's
// MaxPSN; whenever an index lags it performs evolve operations for that
// index strictly in PSN order and lets it persist its watermark.
// Asynchrony is safe because a post-groom only copies data between zones
// — a query finds the same record through either zone's RID until the
// groomed blocks are dropped, and dropping is gated on EVERY index
// having passed the block.

// SyncIndex applies every published-but-unindexed post-groom operation
// to every index of the set. It is the poll loop body; tests call it
// directly for determinism.
func (e *Engine) SyncIndex() error {
	// Serialized: the indexer daemon and the post-groomer both drive
	// this, and evolves of one index must arrive in PSN order.
	e.syncMu.Lock()
	defer e.syncMu.Unlock()
	for _, ti := range e.indexSet() {
		for {
			indexed := uint64(ti.idx.IndexedPSN())
			max := e.maxPSN.Load()
			if indexed >= max {
				break
			}
			if err := e.evolveOne(ti, types.PSN(indexed+1)); err != nil {
				return err
			}
		}
	}
	return nil
}

// evolveOne builds one index's entries for one post-groom operation and
// hands them to that index's evolve, then retires whatever deprecated
// groomed blocks the whole set has passed.
func (e *Engine) evolveOne(ti *tableIndex, psn types.PSN) error {
	meta, err := e.store.Get(psnMetaName(e.table.Name, psn))
	if err != nil {
		return fmt.Errorf("wildfire: reading PSN %d meta: %w", psn, err)
	}
	lo, hi, blockIDs, err := decodePSNMeta(meta)
	if err != nil {
		return err
	}

	var entries []run.Entry
	nUser := len(e.table.Columns)
	for _, id := range blockIDs {
		blk, err := e.fetchBlock(context.Background(), postBlockName(e.table.Name, id))
		if err != nil {
			return fmt.Errorf("wildfire: evolve reading post block %d: %w", id, err)
		}
		for r := 0; r < blk.NumRows(); r++ {
			row := make(Row, nUser)
			for c := 0; c < nUser; c++ {
				row[c] = blk.Value(r, c)
			}
			beginTS := types.TS(blk.Value(r, nUser).Uint())
			rid := types.RID{Zone: types.ZonePostGroomed, Block: id, Offset: uint32(r)}
			entry, err := ti.entryForRow(row, beginTS, rid)
			if err != nil {
				return err
			}
			entries = append(entries, entry)
		}
	}

	if err := ti.idx.Evolve(psn, entries, types.BlockRange{Min: lo, Max: hi}); err != nil {
		return err
	}
	e.reclaimDeprecated(lo, hi)
	return nil
}

// reclaimDeprecated marks the groomed blocks a post-groom consumed as
// deprecated and deletes every deprecated block the whole index set has
// passed. "Deprecated and eventually deleted" (§5.4) has three
// conditions here:
//
//   - every index's evolve watermark must cover the block — a lagging
//     secondary still serves queries from its groomed runs over it;
//   - no live groomed run of any index may still reference it — merged
//     runs can span ranges evolve only partially covered, and their
//     entries hand out RIDs into low blocks until they are GC'd;
//   - in-flight queries that already resolved a groomed RID keep the
//     block readable through the engine block cache until their query
//     epoch drains (epoch-based reclamation).
func (e *Engine) reclaimDeprecated(lo, hi uint64) {
	e.deprecateMu.Lock()
	for id := lo; id <= hi; id++ {
		e.deprecated[id] = struct{}{}
	}
	safe := e.safeReclaimBoundary()
	var retire []string
	for id := range e.deprecated {
		if id < safe {
			retire = append(retire, groomedBlockName(e.table.Name, id))
			delete(e.deprecated, id)
		}
	}
	e.deprecateMu.Unlock()
	if len(retire) == 0 {
		return
	}

	// The storage objects can go immediately: current and future queries
	// reach retired blocks only through the retired overlay (no index
	// hands out their RIDs to queries starting after this point, and
	// recovery cannot resurrect references to them thanks to the safe
	// rule above). Each decode is pinned into the overlay before its
	// object is deleted — the bounded cache may have evicted it, and an
	// in-flight query must still be able to read it until its query
	// epoch drains.
	for _, name := range retire {
		e.holdRetired(name)
		_ = e.store.Delete(name)
		e.blocks.drop(name)
	}
	e.retireCacheEntries(retire)
}

// holdRetired pins the named block's decode into the retired overlay,
// reading it back from storage when the bounded cache no longer holds
// it. A block that is gone from both (unreadable object) is skipped: no
// in-flight query can have fetched it either.
func (e *Engine) holdRetired(name string) {
	blk, ok := e.blocks.get(name)
	if !ok {
		data, err := e.store.Get(name)
		if err != nil {
			return
		}
		if blk, err = columnar.Unmarshal(data); err != nil {
			return
		}
	}
	e.retireMu.Lock()
	e.retiredBlks[name] = blk
	e.retireMu.Unlock()
}

// retireItem is one retired block awaiting query-epoch drain.
type retireItem struct {
	name string
	tag  uint64
}

// retireCacheEntries queues the deleted blocks and releases every
// queued entry whose tag epoch has drained from the retired overlay.
func (e *Engine) retireCacheEntries(names []string) {
	e.retireMu.Lock()
	now := e.gate.current()
	for _, n := range names {
		e.retireQueue = append(e.retireQueue, retireItem{name: n, tag: now})
	}
	e.gate.tryAdvance()
	cur := e.gate.current()
	keep := e.retireQueue[:0]
	for _, it := range e.retireQueue {
		if it.tag+2 <= cur {
			delete(e.retiredBlks, it.name)
		} else {
			keep = append(keep, it)
		}
	}
	e.retireQueue = keep
	e.retireMu.Unlock()
}

// indexDefFor lowers an IndexSpec to the core index definition.
func indexDefFor(t TableDef, s IndexSpec) core.IndexDef {
	def := core.IndexDef{HashBits: s.HashBits}
	for _, c := range s.Equality {
		def.Equality = append(def.Equality, core.Column{Name: c, Kind: t.Columns[t.colIndex(c)].Kind})
	}
	for _, c := range s.Sort {
		def.Sort = append(def.Sort, core.Column{Name: c, Kind: t.Columns[t.colIndex(c)].Kind})
	}
	for _, c := range s.Included {
		def.Included = append(def.Included, core.Column{Name: c, Kind: t.Columns[t.colIndex(c)].Kind})
	}
	return def
}
