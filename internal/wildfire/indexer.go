package wildfire

import (
	"fmt"

	"umzi/internal/core"
	"umzi/internal/run"
	"umzi/internal/types"
)

// The indexer side of Figure 5: the indexer tracks IndexedPSN and polls
// the post-groomer's MaxPSN; whenever IndexedPSN < MaxPSN it performs an
// index evolve operation for IndexedPSN+1, strictly in order, and lets
// the index persist the new watermark. Asynchrony is safe because a
// post-groom only copies data between zones — a query finds the same
// record through either zone's RID until the groomed blocks are dropped.

// SyncIndex applies every published-but-unindexed post-groom operation.
// It is the poll loop body; tests call it directly for determinism.
func (e *Engine) SyncIndex() error {
	for {
		indexed := uint64(e.idx.IndexedPSN())
		max := e.maxPSN.Load()
		if indexed >= max {
			return nil
		}
		if err := e.evolveOne(types.PSN(indexed + 1)); err != nil {
			return err
		}
	}
}

// evolveOne builds the index entries for one post-groom operation and
// hands them to the index's evolve, then deletes the deprecated groomed
// blocks (they are no longer referenced once the evolve completes).
func (e *Engine) evolveOne(psn types.PSN) error {
	meta, err := e.store.Get(psnMetaName(e.table.Name, psn))
	if err != nil {
		return fmt.Errorf("wildfire: reading PSN %d meta: %w", psn, err)
	}
	lo, hi, blockIDs, err := decodePSNMeta(meta)
	if err != nil {
		return err
	}

	var entries []run.Entry
	nUser := len(e.table.Columns)
	for _, id := range blockIDs {
		blk, err := e.fetchBlock(postBlockName(e.table.Name, id))
		if err != nil {
			return fmt.Errorf("wildfire: evolve reading post block %d: %w", id, err)
		}
		for r := 0; r < blk.NumRows(); r++ {
			row := make(Row, nUser)
			for c := 0; c < nUser; c++ {
				row[c] = blk.Value(r, c)
			}
			beginTS := types.TS(blk.Value(r, nUser).Uint())
			rid := types.RID{Zone: types.ZonePostGroomed, Block: id, Offset: uint32(r)}
			entry, err := e.entryForRow(row, beginTS, rid)
			if err != nil {
				return err
			}
			entries = append(entries, entry)
		}
	}

	if err := e.idx.Evolve(psn, entries, types.BlockRange{Min: lo, Max: hi}); err != nil {
		return err
	}

	// Groomed blocks consumed by this post-groom are deprecated and
	// eventually deleted (§5.4). "Eventually" has two conditions here:
	//
	//   - no live groomed run may still reference the block — merged runs
	//     can span ranges evolve only partially covered, and their entries
	//     hand out RIDs into low blocks until they are GC'd;
	//   - in-flight queries that already resolved a groomed RID keep the
	//     block readable through the engine block cache until their query
	//     epoch drains (epoch-based reclamation).
	e.deprecateMu.Lock()
	for id := lo; id <= hi; id++ {
		e.deprecated = append(e.deprecated, id)
	}
	safe := e.idx.MaxCoveredGroomedID() + 1
	if min, ok := e.idx.MinLiveGroomedBlock(); ok && min < safe {
		safe = min
	}
	var retire []string
	keep := e.deprecated[:0]
	for _, id := range e.deprecated {
		if id < safe {
			retire = append(retire, groomedBlockName(e.table.Name, id))
		} else {
			keep = append(keep, id)
		}
	}
	e.deprecated = keep
	e.deprecateMu.Unlock()

	// The storage objects can go immediately: current and future queries
	// reach retired blocks only through the cache (the index no longer
	// hands out their RIDs to queries starting after this point, and
	// recovery cannot resurrect references to them thanks to the safe
	// rule above).
	for _, name := range retire {
		_ = e.store.Delete(name)
	}
	e.retireCacheEntries(retire)
	return nil
}

// retireItem is one cached block awaiting query-epoch drain.
type retireItem struct {
	name string
	tag  uint64
}

// retireCacheEntries queues cache entries of deleted blocks and reclaims
// every queued entry whose tag epoch has drained.
func (e *Engine) retireCacheEntries(names []string) {
	e.retireMu.Lock()
	now := e.gate.current()
	for _, n := range names {
		e.retireQueue = append(e.retireQueue, retireItem{name: n, tag: now})
	}
	e.gate.tryAdvance()
	cur := e.gate.current()
	keep := e.retireQueue[:0]
	var drop []string
	for _, it := range e.retireQueue {
		if it.tag+2 <= cur {
			drop = append(drop, it.name)
		} else {
			keep = append(keep, it)
		}
	}
	e.retireQueue = keep
	e.retireMu.Unlock()

	e.blockMu.Lock()
	for _, n := range drop {
		delete(e.blockCache, n)
	}
	e.blockMu.Unlock()
}

// indexDefFor lowers an IndexSpec to the core index definition.
func indexDefFor(t TableDef, s IndexSpec) core.IndexDef {
	def := core.IndexDef{HashBits: s.HashBits}
	for _, c := range s.Equality {
		def.Equality = append(def.Equality, core.Column{Name: c, Kind: t.Columns[t.colIndex(c)].Kind})
	}
	for _, c := range s.Sort {
		def.Sort = append(def.Sort, core.Column{Name: c, Kind: t.Columns[t.colIndex(c)].Kind})
	}
	for _, c := range s.Included {
		def.Included = append(def.Included, core.Column{Name: c, Kind: t.Columns[t.colIndex(c)].Kind})
	}
	return def
}
