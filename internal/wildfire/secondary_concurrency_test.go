package wildfire

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"umzi/internal/exec"
	"umzi/internal/keyenc"
)

// TestSecondaryConcurrentWithPipeline interleaves secondary-index point,
// range and covered queries (plus index-selected Execute plans) with
// concurrent ingest, grooms, post-grooms and evolves — the stale-entry
// window this design must keep closed. Run under -race; correctness
// here is internal consistency, not a fixed result: every returned row
// must actually satisfy the query predicate, and no query may error or
// return a duplicated primary key.
func TestSecondaryConcurrentWithPipeline(t *testing.T) {
	e := newOrdersEngine(t, nil)
	const (
		writers   = 2
		readers   = 3
		opsPerGor = 150
		keySpace  = 80
	)
	var stop atomic.Bool
	var wg, wgPipe sync.WaitGroup

	// Writers: multi-version churn, rows hopping between regions.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerGor; i++ {
				id := int64(rng.Intn(keySpace))
				r := orderRow(id, testRegions[rng.Intn(len(testRegions))], int64(rng.Intn(3)), int64(rng.Intn(1000)))
				if err := e.UpsertRows(0, r); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w) + 1)
	}

	// The pipeline: groom / post-groom / evolve / merge maintenance.
	wgPipe.Add(1)
	go func() {
		defer wgPipe.Done()
		for i := 0; !stop.Load(); i++ {
			if err := e.Groom(); err != nil {
				t.Error(err)
				return
			}
			if i%3 == 1 {
				if _, err := e.PostGroom(); err != nil {
					t.Error(err)
					return
				}
			}
			if i%3 == 2 {
				if err := e.SyncIndex(); err != nil {
					t.Error(err)
					return
				}
				for _, ti := range e.indexSet() {
					if _, err := ti.idx.MaintainOnce(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}
	}()

	// Readers: secondary scans, covered scans, index-selected plans.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerGor; i++ {
				region := testRegions[rng.Intn(len(testRegions))]
				eq := []keyenc.Value{keyenc.Str(region)}
				switch i % 3 {
				case 0:
					recs, err := e.ScanOn("by_region", eq, nil, nil, QueryOptions{})
					if err != nil {
						t.Error(err)
						return
					}
					seen := map[int64]bool{}
					for _, rec := range recs {
						if string(rec.Row[1].Bytes()) != region {
							t.Errorf("ScanOn(%s) returned region %s", region, rec.Row[1].Bytes())
							return
						}
						if id := rec.Row[0].Int(); seen[id] {
							t.Errorf("ScanOn(%s) duplicated id %d", region, id)
							return
						} else {
							seen[id] = true
						}
					}
				case 1:
					rows, err := e.IndexOnlyScanOn("by_region", eq, nil, nil, QueryOptions{})
					if err != nil {
						t.Error(err)
						return
					}
					for _, row := range rows {
						if string(row[0].Bytes()) != region {
							t.Errorf("covered scan of %s returned %s", region, row[0].Bytes())
							return
						}
					}
				default:
					status := int64(rng.Intn(3))
					res, err := e.Execute(exec.Plan{
						Filter: exec.And(exec.Eq("status", keyenc.I64(status)), exec.Ge("amount", keyenc.I64(500))),
						Aggs:   []exec.Agg{{Func: exec.Count}, {Func: exec.Min, Col: "amount"}},
					}, QueryOptions{})
					if err != nil {
						t.Error(err)
						return
					}
					// COUNT 0 means MIN is the zero (NULL stand-in) Value.
					if len(res.Rows) > 0 && res.Rows[0][0].Int() > 0 && res.Rows[0][1].Int() < 500 {
						t.Errorf("index-selected MIN(amount) %d below the filter bound", res.Rows[0][1].Int())
						return
					}
				}
			}
		}(int64(r) + 100)
	}

	wg.Wait()
	stop.Store(true)
	wgPipe.Wait()
	// Final flush, then structural invariants on every index.
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PostGroom(); err != nil {
		t.Fatal(err)
	}
	if err := e.SyncIndex(); err != nil {
		t.Fatal(err)
	}
	for _, ti := range e.indexSet() {
		if err := ti.idx.VerifyInvariants(); err != nil {
			t.Fatalf("index %q: %v", ti.name, err)
		}
	}
}
