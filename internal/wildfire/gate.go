package wildfire

import "sync/atomic"

// queryGate is a two-slot epoch-based reclamation gate. Queries enter and
// exit without locks; the reclaimer advances the epoch only when the
// previous epoch's readers have drained, so an item tagged with epoch T
// is safe to reclaim once the current epoch reaches T+2 — every query
// that could have observed it has finished by then.
//
// This is how the engine honors the paper's "deprecated and eventually
// deleted" for groomed data blocks (§5.4) without ever blocking a reader:
// a query that resolved a groomed RID keeps the deprecated block readable
// through the engine block cache until the query's epoch drains.
type queryGate struct {
	epoch  atomic.Uint64
	active [2]atomic.Int64
}

// enter registers a query and returns its epoch token.
func (g *queryGate) enter() uint64 {
	for {
		e := g.epoch.Load()
		g.active[e%2].Add(1)
		if g.epoch.Load() == e {
			return e
		}
		// The epoch advanced between the load and the registration; our
		// count may sit in a slot the reclaimer considers draining.
		// Re-register under the new epoch.
		g.active[e%2].Add(-1)
	}
}

// exit deregisters a query entered with token e.
func (g *queryGate) exit(e uint64) { g.active[e%2].Add(-1) }

// tryAdvance moves the epoch forward if the previous epoch's queries have
// drained; it reports whether the epoch advanced.
func (g *queryGate) tryAdvance() bool {
	e := g.epoch.Load()
	if g.active[(e+1)%2].Load() != 0 { // slot of epoch e-1
		return false
	}
	return g.epoch.CompareAndSwap(e, e+1)
}

// current returns the current epoch.
func (g *queryGate) current() uint64 { return g.epoch.Load() }
