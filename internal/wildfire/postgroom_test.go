package wildfire

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"umzi/internal/keyenc"
	"umzi/internal/storage"
	"umzi/internal/types"
)

func ingestAndGroom(t *testing.T, e *Engine, rows ...Row) {
	t.Helper()
	if err := e.UpsertRows(0, rows...); err != nil {
		t.Fatal(err)
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
}

func TestPostGroomEndToEnd(t *testing.T) {
	e := newTestEngine(t, nil)
	ingestAndGroom(t, e, row(1, 1, 10.0, 100), row(1, 2, 11.0, 101))
	ingestAndGroom(t, e, row(1, 1, 20.0, 100), row(2, 1, 30.0, 102))

	psn, err := e.PostGroom()
	if err != nil {
		t.Fatal(err)
	}
	if psn != 1 {
		t.Fatalf("PSN = %d, want 1", psn)
	}
	if e.MaxPSN() != 1 {
		t.Fatalf("MaxPSN = %d", e.MaxPSN())
	}
	// Indexer is asynchronous: before SyncIndex the index still reads the
	// groomed zone. Queries must be correct either way.
	eq, sortv := key(1, 1)
	rec, found, err := e.Get(eq, sortv, QueryOptions{})
	if err != nil || !found {
		t.Fatal(err, found)
	}
	if rec.Row[2].Float() != 20.0 {
		t.Errorf("pre-sync read = %v", rec.Row[2])
	}

	if err := e.SyncIndex(); err != nil {
		t.Fatal(err)
	}
	if got := e.idx.IndexedPSN(); got != 1 {
		t.Fatalf("IndexedPSN = %d", got)
	}
	rec, found, err = e.Get(eq, sortv, QueryOptions{})
	if err != nil || !found {
		t.Fatal(err, found)
	}
	if rec.Row[2].Float() != 20.0 {
		t.Errorf("post-sync read = %v", rec.Row[2])
	}
	if rec.RID.Zone != types.ZonePostGroomed {
		t.Errorf("record not served from post-groomed zone: %v", rec.RID)
	}
	// The deprecated groomed blocks are gone from storage.
	names, _ := e.store.List("tbl/sensors/groomed/")
	if len(names) != 0 {
		t.Errorf("deprecated groomed blocks remain: %v", names)
	}
}

func TestPostGroomSetsPrevRIDAndEndTS(t *testing.T) {
	e := newTestEngine(t, nil)
	ingestAndGroom(t, e, row(1, 1, 10.0, 100))
	ingestAndGroom(t, e, row(1, 1, 20.0, 100))
	if _, err := e.PostGroom(); err != nil {
		t.Fatal(err)
	}
	if err := e.SyncIndex(); err != nil {
		t.Fatal(err)
	}
	eq, sortv := key(1, 1)
	rec, found, err := e.Get(eq, sortv, QueryOptions{})
	if err != nil || !found {
		t.Fatal(err, found)
	}
	if rec.PrevRID.IsZero() {
		t.Fatal("newest version has no prevRID after post-groom")
	}
	prev, err := e.Fetch(rec.PrevRID)
	if err != nil {
		t.Fatal(err)
	}
	if prev.Row[2].Float() != 10.0 {
		t.Errorf("prev version reading = %v, want 10.0", prev.Row[2])
	}
	// The replaced version's endTS equals the replacement's beginTS.
	if prev.EndTS != rec.BeginTS {
		t.Errorf("prev endTS = %v, want %v (replacement beginTS)", prev.EndTS, rec.BeginTS)
	}
	if rec.EndTS != types.MaxTS {
		t.Errorf("current version endTS = %v, want MaxTS", rec.EndTS)
	}
}

func TestHistoryWalk(t *testing.T) {
	e := newTestEngine(t, nil)
	for v := 1; v <= 4; v++ {
		ingestAndGroom(t, e, row(1, 1, float64(v*10), 100))
		if _, err := e.PostGroom(); err != nil {
			t.Fatal(err)
		}
		if err := e.SyncIndex(); err != nil {
			t.Fatal(err)
		}
	}
	eq, sortv := key(1, 1)
	hist, err := e.History(eq, sortv, QueryOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 4 {
		t.Fatalf("history length = %d, want 4", len(hist))
	}
	for i, want := range []float64{40, 30, 20, 10} {
		if hist[i].Row[2].Float() != want {
			t.Errorf("history[%d] = %v, want %v", i, hist[i].Row[2], want)
		}
	}
	// Version chain timestamps: each older version ends where the newer
	// one begins.
	for i := 0; i+1 < len(hist); i++ {
		if hist[i+1].EndTS != hist[i].BeginTS {
			t.Errorf("chain broken at %d: endTS %v != beginTS %v", i, hist[i+1].EndTS, hist[i].BeginTS)
		}
	}
	// Limited walk.
	hist, err = e.History(eq, sortv, QueryOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 {
		t.Errorf("limited history length = %d, want 2", len(hist))
	}
}

func TestPostGroomPartitionsByKey(t *testing.T) {
	e := newTestEngine(t, func(c *Config) { c.Partitions = 4 })
	// Rows across 4 distinct days: expect multiple post blocks.
	var rows []Row
	for msg := int64(0); msg < 16; msg++ {
		rows = append(rows, row(1, msg, 1.0, 100+msg%4))
	}
	ingestAndGroom(t, e, rows...)
	if _, err := e.PostGroom(); err != nil {
		t.Fatal(err)
	}
	names, err := e.store.List("tbl/sensors/post/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 2 {
		t.Errorf("partitioned post-groom produced %d blocks, want >= 2", len(names))
	}
	if err := e.SyncIndex(); err != nil {
		t.Fatal(err)
	}
	// All rows still reachable.
	recs, err := e.Scan([]keyenc.Value{keyenc.I64(1)}, nil, nil, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 16 {
		t.Errorf("scan after partitioned post-groom: %d rows, want 16", len(recs))
	}
}

func TestPostGroomNothingPending(t *testing.T) {
	e := newTestEngine(t, nil)
	psn, err := e.PostGroom()
	if err != nil {
		t.Fatal(err)
	}
	if psn != 0 {
		t.Errorf("PSN = %d for empty post-groom, want 0", psn)
	}
}

func TestMultiplePostGroomCycles(t *testing.T) {
	e := newTestEngine(t, nil)
	for c := 0; c < 6; c++ {
		ingestAndGroom(t, e,
			row(1, int64(c), float64(c), 100),
			row(2, int64(c), float64(c)*2, 101),
		)
		if c%2 == 1 {
			if _, err := e.PostGroom(); err != nil {
				t.Fatal(err)
			}
			if err := e.SyncIndex(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if e.MaxPSN() != 3 {
		t.Fatalf("MaxPSN = %d, want 3", e.MaxPSN())
	}
	recs, err := e.Scan([]keyenc.Value{keyenc.I64(1)}, nil, nil, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("scan = %d rows, want 6", len(recs))
	}
	if err := e.idx.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineRecovery(t *testing.T) {
	store := storage.NewMemStore(storage.LatencyModel{})
	cfg := Config{
		Table:    iotTable(),
		Index:    iotIndex(),
		Store:    store,
		Replicas: 1,
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.UpsertRows(0, row(1, 1, 10.0, 100), row(1, 2, 11.0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	if err := e.UpsertRows(0, row(1, 1, 20.0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PostGroom(); err != nil {
		t.Fatal(err)
	}
	if err := e.SyncIndex(); err != nil {
		t.Fatal(err)
	}
	// More data groomed after the post-groom so both zones are live.
	if err := e.UpsertRows(0, row(2, 1, 30.0, 101)); err != nil {
		t.Fatal(err)
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	lastTS := e.LastGroomTS()
	e.Close()

	// Crash: a new engine over the same storage.
	e2, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.LastGroomTS() < lastTS {
		t.Errorf("recovered groom TS %v < pre-crash %v", e2.LastGroomTS(), lastTS)
	}
	if e2.MaxPSN() != 1 {
		t.Errorf("recovered MaxPSN = %d, want 1", e2.MaxPSN())
	}
	eq, sortv := key(1, 1)
	rec, found, err := e2.Get(eq, sortv, QueryOptions{})
	if err != nil || !found {
		t.Fatal(err, found)
	}
	if rec.Row[2].Float() != 20.0 {
		t.Errorf("recovered read = %v, want 20.0", rec.Row[2])
	}
	// endTS overlay recovered from sidecars.
	if !rec.PrevRID.IsZero() {
		prev, err := e2.Fetch(rec.PrevRID)
		if err != nil {
			t.Fatal(err)
		}
		if prev.EndTS == types.MaxTS {
			t.Error("endTS sidecar lost in recovery")
		}
	}
	eq, sortv = key(2, 1)
	if _, found, _ := e2.Get(eq, sortv, QueryOptions{}); !found {
		t.Error("groomed-after-postgroom record lost in recovery")
	}
	// The engine keeps working after recovery.
	if err := e2.UpsertRows(0, row(3, 1, 40.0, 102)); err != nil {
		t.Fatal(err)
	}
	if err := e2.Groom(); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.PostGroom(); err != nil {
		t.Fatal(err)
	}
	if err := e2.SyncIndex(); err != nil {
		t.Fatal(err)
	}
	eq, sortv = key(3, 1)
	if _, found, _ := e2.Get(eq, sortv, QueryOptions{}); !found {
		t.Error("post-recovery ingest lost")
	}
}

func TestBackgroundDaemons(t *testing.T) {
	e := newTestEngine(t, nil)
	e.Start(2*time.Millisecond, 10*time.Millisecond)
	for i := int64(0); i < 50; i++ {
		if err := e.UpsertRows(int(i)%2, row(1, i, float64(i), 100+i%3)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(500 * time.Microsecond)
	}
	deadline := time.Now().Add(3 * time.Second)
	for e.MaxPSN() == 0 || uint64(e.idx.IndexedPSN()) < uint64(e.MaxPSN()) {
		if time.Now().After(deadline) {
			t.Fatalf("daemons stalled: MaxPSN=%d IndexedPSN=%d live=%d", e.MaxPSN(), e.idx.IndexedPSN(), e.LiveCount())
		}
		time.Sleep(2 * time.Millisecond)
	}
	recs, err := e.Scan([]keyenc.Value{keyenc.I64(1)}, nil, nil, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no data visible after background grooming")
	}
}

func TestConcurrentIngestAndQueries(t *testing.T) {
	// The Figure 12 shape at test scale: ingest + groom + post-groom +
	// evolve running while readers hammer point lookups.
	e := newTestEngine(t, nil)
	const devices, msgs = 4, 8

	// Seed so readers always find data.
	var seed []Row
	for d := int64(0); d < devices; d++ {
		for m := int64(0); m < msgs; m++ {
			seed = append(seed, row(d, m, 1.0, 100+m%4))
		}
	}
	ingestAndGroom(t, e, seed...)

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for round := 0; round < 15; round++ {
			for d := int64(0); d < devices; d++ {
				if err := e.UpsertRows(int(d)%2, row(d, int64(round)%msgs, float64(round), 100+int64(round)%4)); err != nil {
					report(err)
					return
				}
			}
			if err := e.Groom(); err != nil {
				report(err)
				return
			}
			if round%4 == 3 {
				if _, err := e.PostGroom(); err != nil {
					report(err)
					return
				}
				if err := e.SyncIndex(); err != nil {
					report(err)
					return
				}
			}
			if _, err := e.idx.MaintainOnce(); err != nil {
				report(err)
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200 || !stop.Load(); i++ {
				d := int64((r + i) % devices)
				m := int64(i % msgs)
				eq, sortv := key(d, m)
				_, found, err := e.Get(eq, sortv, QueryOptions{})
				if err != nil {
					report(err)
					return
				}
				if !found {
					report(errNotFound{d, m})
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := e.idx.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

type errNotFound struct{ d, m int64 }

func (e errNotFound) Error() string {
	return "key vanished during concurrent maintenance"
}
