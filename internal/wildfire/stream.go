package wildfire

import (
	"bytes"
	"container/heap"
	"context"
	"errors"
	"sync"
)

// Streaming query results. A Cursor pulls rows one at a time instead of
// materializing a []Record: the single-engine cursors fetch data blocks
// lazily per row, and the sharded cursors run one worker per shard that
// streams its shard's ordered results into a bounded channel while a
// k-way heap merge reassembles global order at the consumer. Closing a
// cursor early — or cancelling the context it was opened with — cancels
// the workers' context, which unblocks their channel sends and block
// fetches, so abandoned queries stop doing work instead of finishing a
// scatter-gather nobody is waiting for.

// Cursor streams query results of type T in order. The zero value is not
// usable; cursors are returned by the streaming query entry points. A
// Cursor is not safe for concurrent use. Exhausting the cursor (Next
// returning false) releases its resources; Close releases them early and
// is idempotent.
type Cursor[T any] struct {
	fetch   func() (T, bool, error)
	release func() error
	cur     T
	err     error
	done    bool
}

func newCursor[T any](fetch func() (T, bool, error), release func() error) *Cursor[T] {
	return &Cursor[T]{fetch: fetch, release: release}
}

// Next advances to the next result, reporting whether one is available.
// After Next returns false, Err distinguishes exhaustion from failure —
// including a failure of the release path run by the automatic close.
func (c *Cursor[T]) Next() bool {
	if c.done {
		return false
	}
	v, ok, err := c.fetch()
	if err != nil || !ok {
		c.err = err
		if cerr := c.Close(); cerr != nil && c.err == nil {
			c.err = cerr
		}
		return false
	}
	c.cur = v
	return true
}

// Value returns the result Next advanced to. After the stream ends —
// Next returning false, or Close — it returns the zero value, never a
// stale row.
func (c *Cursor[T]) Value() T { return c.cur }

// Err returns the error that terminated the stream, if any. A cancelled
// context surfaces here as the context's error.
func (c *Cursor[T]) Err() error { return c.err }

// Close releases the cursor's resources: the query-gate epoch of a
// single-engine cursor, or the per-shard workers of a sharded cursor
// (Close cancels their context and waits for them to exit, so no
// goroutine outlives it). The first Close returns the release path's
// error; Close is idempotent and safe (a nil no-op) after exhaustion.
func (c *Cursor[T]) Close() error {
	if c.done {
		return nil
	}
	c.done = true
	var zero T
	c.cur = zero
	if c.release != nil {
		return c.release()
	}
	return nil
}

// drainCursor materializes a cursor — the shim the legacy []Record entry
// points are built on, so the streaming code path is the only scan
// implementation. A release-path failure surfaces when iteration itself
// succeeded (exhaustion auto-closes, so Err already carries it; the
// explicit Close covers an early break).
func drainCursor[T any](cur *Cursor[T], err error) ([]T, error) {
	if err != nil {
		return nil, err
	}
	var out []T
	for cur.Next() {
		out = append(out, cur.Value())
	}
	err = cur.Err()
	if cerr := cur.Close(); err == nil {
		err = cerr
	}
	return out, err
}

// streamBuf is the per-shard channel depth of a sharded stream: deep
// enough to overlap shard production with consumer-side merging, shallow
// enough that an abandoned query has little in flight.
const streamBuf = 64

// shardItem is one value of a per-shard stream with its precomputed
// merge key (computed in the worker, so key encoding parallelizes). A
// worker that fails delivers its error IN-BAND as the stream's final
// item: the merge encounters it exactly when it would next need that
// shard's rows, so a limited scan can never paper over a failed shard
// with a silently short result — rows emitted before the error item
// provably precede the failed shard's pending position in merge order.
type shardItem[T any] struct {
	val T
	key []byte
	err error
}

// shardSource is one shard's stream position in the merge heap.
type shardSource[T any] struct {
	ch    chan shardItem[T]
	cur   shardItem[T]
	shard int
}

// streamHeap orders shard sources by their current merge key; ties break
// by shard ordinal for determinism.
type streamHeap[T any] []*shardSource[T]

func (h streamHeap[T]) Len() int { return len(h) }
func (h streamHeap[T]) Less(i, j int) bool {
	if c := bytes.Compare(h[i].cur.key, h[j].cur.key); c != 0 {
		return c < 0
	}
	return h[i].shard < h[j].shard
}
func (h streamHeap[T]) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *streamHeap[T]) Push(x interface{}) { *h = append(*h, x.(*shardSource[T])) }
func (h *streamHeap[T]) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// scatterStream fans a streaming scan out to nShards workers and k-way
// merges their ordered streams into one cursor. open must honor the
// context it is given; keyOf extracts the merge key of one item. limit
// caps the merged emission (0 = unlimited) — per-shard limits are the
// open callback's business (limit pushdown). The merged cursor's Close
// cancels the workers and waits for them, so cancellation propagates
// into every shard's scan and no goroutine leaks.
//
// onReleaseErr (nil ok) observes the error of a shard cursor's Close
// when the worker exits without reaching its own error reporting — a
// cancelled worker closing its cursor mid-scan. Such errors rarely
// surface through the merged cursor's fetch path (the consumer is gone
// or a sibling's failure already owns the attribution), so they are
// counted — and additionally the first one is returned from the merged
// cursor's own Close, so a caller tearing a stream down mid-flight (the
// network server after a client disconnect) still learns its release
// path failed instead of reading a silent nil.
//
// The goroutines themselves are per query (a cursor may stay open at
// the consumer's pleasure, so tying its streaming to a shared pool
// would let one idle cursor starve every other query), but the
// expensive eager phase — each shard's index walk and verification
// pass inside open — is bounded by the engine's scatter-gather pool: a
// burst of concurrent streaming queries cannot run shards×queries
// index scans at once. The slot is held only across open, never across
// a channel send.
func scatterStream[T any](
	parent context.Context,
	pool *gatherPool,
	nShards, limit int,
	open func(ctx context.Context, shard int) (*Cursor[T], error),
	keyOf func(v T) []byte,
	onReleaseErr func(error),
) *Cursor[T] {
	ctx, cancel := context.WithCancel(parent)
	sources := make([]*shardSource[T], nShards)
	errCh := make(chan error, nShards)
	var wg sync.WaitGroup
	// releaseErr records the first shard-cursor Close failure; release()
	// returns it after the workers are drained. Cancellation noise is
	// filtered like fail() filters it: a context-shaped Close error just
	// restates that the stream was torn down.
	var relMu sync.Mutex
	var releaseErr error
	for i := 0; i < nShards; i++ {
		src := &shardSource[T]{ch: make(chan shardItem[T], streamBuf), shard: i}
		sources[i] = src
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(src.ch)
			// fail delivers an error in-band (for the merge) and to errCh
			// (for consumers unblocked by the cancel instead), then stops
			// the sibling workers. Pure cancellation is NOT delivered: it
			// means a sibling's failure (or the consumer's close, or the
			// parent context) cancelled this worker mid-scan, and the root
			// cause is already in errCh or the parent — registering the
			// secondary Canceled would let it displace the real error in
			// the merge's attribution.
			fail := func(err error) {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return
				}
				errCh <- err
				select {
				case src.ch <- shardItem[T]{err: err}:
				case <-ctx.Done():
				}
				cancel()
			}
			select {
			case pool.sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			cur, err := open(ctx, src.shard)
			<-pool.sem
			if err != nil {
				fail(err)
				return
			}
			defer func() {
				err := cur.Close()
				if err == nil {
					return
				}
				if onReleaseErr != nil {
					onReleaseErr(err)
				}
				if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
					relMu.Lock()
					if releaseErr == nil {
						releaseErr = err
					}
					relMu.Unlock()
				}
			}()
			for cur.Next() {
				select {
				case src.ch <- shardItem[T]{val: cur.Value(), key: keyOf(cur.Value())}:
				case <-ctx.Done():
					return
				}
			}
			if err := cur.Err(); err != nil {
				fail(err)
			}
		}()
	}

	release := func() error {
		cancel()
		wg.Wait()
		relMu.Lock()
		defer relMu.Unlock()
		return releaseErr
	}

	// terminalErr resolves what ended the stream: a worker's error wins
	// over the bare cancellation it triggered, the parent context's error
	// wins over everything (the caller cancelled; workers were merely
	// told to stop).
	terminalErr := func() error {
		if err := parent.Err(); err != nil {
			return err
		}
		select {
		case err := <-errCh:
			return err
		default:
			return ctx.Err()
		}
	}

	// pull blocks for the next item of one source, bailing on cancel. A
	// closed channel always means clean exhaustion: failures arrive as
	// an in-band error item first.
	pull := func(src *shardSource[T]) (shardItem[T], bool, error) {
		select {
		case it, ok := <-src.ch:
			if !ok {
				return shardItem[T]{}, false, nil
			}
			if it.err != nil {
				return shardItem[T]{}, false, it.err
			}
			return it, true, nil
		case <-ctx.Done():
			return shardItem[T]{}, false, terminalErr()
		}
	}

	var h streamHeap[T]
	initialized := false
	emitted := 0
	fetch := func() (T, bool, error) {
		var zero T
		if limit > 0 && emitted >= limit {
			// Even with the limit satisfied, a shard failure makes the
			// emitted prefix suspect: a sibling worker truncated by the
			// failure's cancel may have dropped rows that belonged in the
			// window. fail() writes errCh before cancelling, so this
			// check cannot miss it.
			if err := terminalErr(); err != nil {
				return zero, false, err
			}
			return zero, false, nil
		}
		if !initialized {
			initialized = true
			for _, src := range sources {
				it, ok, err := pull(src)
				if err != nil {
					return zero, false, err
				}
				if ok {
					src.cur = it
					h = append(h, src)
				}
			}
			heap.Init(&h)
		}
		if len(h) == 0 {
			// Fully drained — or drained because workers aborted on error.
			if err := terminalErr(); err != nil {
				return zero, false, err
			}
			return zero, false, nil
		}
		src := h[0]
		out := src.cur
		it, ok, err := pull(src)
		if err != nil {
			return zero, false, err
		}
		if ok {
			src.cur = it
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
		emitted++
		return out.val, true, nil
	}
	return newCursor(fetch, release)
}
