package wildfire

import (
	"testing"
	"time"

	"umzi/internal/core"
	"umzi/internal/keyenc"
	"umzi/internal/storage"
	"umzi/internal/types"
)

// msgShardedTable is the IoT table sharded by the sort column (msg): a
// scan for one device then spans every shard, exercising the
// scatter-gather path and the sort-merge.
func msgShardedTable() TableDef {
	td := iotTable()
	td.ShardKey = []string{"msg"}
	return td
}

func newTestShardedEngine(t *testing.T, shards int, mutate func(*ShardedConfig)) *ShardedEngine {
	t.Helper()
	cfg := ShardedConfig{
		Table:    iotTable(),
		Index:    iotIndex(),
		Shards:   shards,
		Store:    storage.NewMemStore(storage.LatencyModel{}),
		Replicas: 2,
	}
	cfg.IndexTuning.K = 2
	cfg.IndexTuning.GroomedLevels = 3
	cfg.IndexTuning.PostGroomedLevels = 2
	cfg.IndexTuning.BlockSize = 1024
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewShardedEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestShardRouterAgreement(t *testing.T) {
	// shardOfRow and shardOfKey must agree for every key, under both
	// sharding layouts (shard key in equality vs in sort columns).
	for _, td := range []TableDef{iotTable(), msgShardedTable()} {
		r, err := newShardRouter(td, iotIndex(), 4)
		if err != nil {
			t.Fatal(err)
		}
		used := map[int]bool{}
		for dev := int64(0); dev < 16; dev++ {
			for msg := int64(0); msg < 16; msg++ {
				byRow := r.shardOfRow(row(dev, msg, 1.0, 100))
				eq, sortv := key(dev, msg)
				byKey := r.shardOfKey(eq, sortv)
				if byRow != byKey {
					t.Fatalf("%v: row routes to %d, key to %d", td.ShardKey, byRow, byKey)
				}
				used[byRow] = true
			}
		}
		if len(used) != 4 {
			t.Errorf("%v: only %d of 4 shards used over 256 keys", td.ShardKey, len(used))
		}
	}
	// Device-sharded scans pin; msg-sharded scans scatter.
	rd, _ := newShardRouter(iotTable(), iotIndex(), 4)
	if _, ok := rd.pinScan([]keyenc.Value{keyenc.I64(7)}); !ok {
		t.Error("device-sharded scan did not pin")
	}
	rm, _ := newShardRouter(msgShardedTable(), iotIndex(), 4)
	if _, ok := rm.pinScan([]keyenc.Value{keyenc.I64(7)}); ok {
		t.Error("msg-sharded scan pinned")
	}
	// No declared shard key: route by the full primary key.
	td := iotTable()
	td.ShardKey = nil
	rp, err := newShardRouter(td, iotIndex(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rp.pinScan([]keyenc.Value{keyenc.I64(7)}); ok {
		t.Error("pk-sharded scan pinned despite msg in the routing key")
	}
	if rp.shardOfRow(row(3, 5, 0, 0)) != rp.shardOfKey([]keyenc.Value{keyenc.I64(3)}, []keyenc.Value{keyenc.I64(5)}) {
		t.Error("pk routing disagrees between row and key")
	}
}

func TestShardedIngestGroomGet(t *testing.T) {
	s := newTestShardedEngine(t, 4, nil)
	const devices, msgs = 8, 6
	for dev := int64(0); dev < devices; dev++ {
		for msg := int64(0); msg < msgs; msg++ {
			if err := s.UpsertRows(int(dev)%2, row(dev, msg, float64(dev*100+msg), 100)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := s.LiveCount(); got != devices*msgs {
		t.Fatalf("LiveCount = %d, want %d", got, devices*msgs)
	}
	n, err := s.GroomCount()
	if err != nil {
		t.Fatal(err)
	}
	if n != devices*msgs {
		t.Fatalf("groomed %d, want %d", n, devices*msgs)
	}
	if got := s.LiveCount(); got != 0 {
		t.Fatalf("LiveCount after groom = %d", got)
	}
	for dev := int64(0); dev < devices; dev++ {
		for msg := int64(0); msg < msgs; msg++ {
			eq, sortv := key(dev, msg)
			rec, found, err := s.Get(eq, sortv, QueryOptions{})
			if err != nil || !found {
				t.Fatalf("get (%d,%d): %v %v", dev, msg, err, found)
			}
			if rec.Row[2].Float() != float64(dev*100+msg) {
				t.Errorf("get (%d,%d) = %v", dev, msg, rec.Row[2])
			}
		}
	}
	eq, sortv := key(99, 99)
	if _, found, _ := s.Get(eq, sortv, QueryOptions{}); found {
		t.Error("found absent key")
	}
}

func TestShardedScanFanOutOrdered(t *testing.T) {
	// msg-sharded: one device's messages are spread over every shard, so
	// the scan scatters and the merge must restore global msg order.
	s := newTestShardedEngine(t, 4, func(c *ShardedConfig) { c.Table = msgShardedTable() })
	const msgs = 40
	for msg := int64(0); msg < msgs; msg++ {
		if err := s.UpsertRows(0, row(7, msg, float64(msg), 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Groom(); err != nil {
		t.Fatal(err)
	}
	eq := []keyenc.Value{keyenc.I64(7)}
	recs, err := s.Scan(eq, []keyenc.Value{keyenc.I64(5)}, []keyenc.Value{keyenc.I64(34)}, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 30 {
		t.Fatalf("scan returned %d, want 30", len(recs))
	}
	for i, rec := range recs {
		if rec.Row[1].Int() != int64(5+i) {
			t.Fatalf("scan[%d] msg = %v, want %d (global order)", i, rec.Row[1], 5+i)
		}
	}
	// Unordered variant returns the same multiset.
	un, err := s.ScanUnordered(eq, []keyenc.Value{keyenc.I64(5)}, []keyenc.Value{keyenc.I64(34)}, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(un) != len(recs) {
		t.Fatalf("unordered scan returned %d, want %d", len(un), len(recs))
	}
	seen := map[int64]bool{}
	for _, rec := range un {
		seen[rec.Row[1].Int()] = true
	}
	for msg := int64(5); msg <= 34; msg++ {
		if !seen[msg] {
			t.Fatalf("unordered scan missing msg %d", msg)
		}
	}
	// Index-only fan-out scan merges the same way.
	rows, err := s.IndexOnlyScan(eq, nil, nil, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != msgs {
		t.Fatalf("index-only scan returned %d, want %d", len(rows), msgs)
	}
	for i, r := range rows {
		if r[0].Int() != 7 || r[1].Int() != int64(i) || r[2].Float() != float64(i) {
			t.Errorf("index-only row %d = %v", i, r)
		}
	}
}

func TestShardedScanPinned(t *testing.T) {
	// device-sharded: a per-device scan is served by exactly one shard
	// and must equal querying that shard directly.
	s := newTestShardedEngine(t, 4, nil)
	for dev := int64(0); dev < 6; dev++ {
		for msg := int64(0); msg < 10; msg++ {
			if err := s.UpsertRows(0, row(dev, msg, float64(msg), 100)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Groom(); err != nil {
		t.Fatal(err)
	}
	for dev := int64(0); dev < 6; dev++ {
		eq := []keyenc.Value{keyenc.I64(dev)}
		got, err := s.Scan(eq, nil, nil, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 10 {
			t.Fatalf("dev %d: %d results", dev, len(got))
		}
		shard, ok := s.router.pinScan(eq)
		if !ok {
			t.Fatal("expected pinned scan")
		}
		direct, err := s.Shard(shard).Scan(eq, nil, nil, QueryOptions{TS: types.MaxTS})
		if err != nil {
			t.Fatal(err)
		}
		if len(direct) != len(got) {
			t.Fatalf("dev %d: pinned scan %d results, shard %d directly %d", dev, len(got), shard, len(direct))
		}
	}
}

func TestShardedGetBatch(t *testing.T) {
	s := newTestShardedEngine(t, 4, nil)
	const devices, msgs = 6, 5
	for dev := int64(0); dev < devices; dev++ {
		for msg := int64(0); msg < msgs; msg++ {
			if err := s.UpsertRows(0, row(dev, msg, float64(dev*10+msg), 100)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Groom(); err != nil {
		t.Fatal(err)
	}
	// A batch mixing hits across all shards with misses.
	var keys []core.LookupKey
	type kk struct{ dev, msg int64 }
	var want []kk
	for dev := int64(0); dev < devices+2; dev++ {
		for msg := int64(0); msg < msgs+1; msg += 2 {
			keys = append(keys, core.LookupKey{
				Equality: []keyenc.Value{keyenc.I64(dev)},
				Sort:     []keyenc.Value{keyenc.I64(msg)},
			})
			want = append(want, kk{dev, msg})
		}
	}
	recs, found, err := s.GetBatch(keys, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range want {
		wantFound := k.dev < devices && k.msg < msgs
		if found[i] != wantFound {
			t.Fatalf("batch[%d] (%d,%d): found=%v want %v", i, k.dev, k.msg, found[i], wantFound)
		}
		if found[i] && recs[i].Row[2].Float() != float64(k.dev*10+k.msg) {
			t.Errorf("batch[%d]: reading %v", i, recs[i].Row[2])
		}
	}
}

func TestShardedTxnLifecycle(t *testing.T) {
	s := newTestShardedEngine(t, 4, nil)
	tx, err := s.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	for msg := int64(0); msg < 8; msg++ {
		if err := tx.Upsert(row(1, msg, 1.0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if s.LiveCount() != 0 {
		t.Error("uncommitted rows visible")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Error("double commit accepted")
	}
	if err := tx.Upsert(row(1, 9, 1.0, 1)); err == nil {
		t.Error("upsert after commit accepted")
	}
	if s.LiveCount() != 8 {
		t.Errorf("LiveCount = %d, want 8", s.LiveCount())
	}

	tx2, _ := s.Begin(0)
	if err := tx2.Upsert(row(2, 1, 2.0, 1)); err != nil {
		t.Fatal(err)
	}
	tx2.Abort()
	if s.LiveCount() != 8 {
		t.Errorf("aborted rows leaked: LiveCount = %d", s.LiveCount())
	}

	if _, err := s.Begin(99); err == nil {
		t.Error("bad replica accepted")
	}
	tx3, _ := s.Begin(0)
	if err := tx3.Upsert(Row{keyenc.I64(1)}); err == nil {
		t.Error("short row accepted")
	}
}

func TestShardedSnapshotLockstep(t *testing.T) {
	// Groom rounds in which only some shards receive data must still
	// advance every shard's snapshot clock, so the cross-shard snapshot
	// boundary (the min) moves and covers all groomed data.
	s := newTestShardedEngine(t, 4, nil)
	var lastTS types.TS
	for round := int64(0); round < 6; round++ {
		// One device per round: exactly one shard gets data.
		for msg := int64(0); msg < 4; msg++ {
			if err := s.UpsertRows(0, row(round, msg, float64(round), 100)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Groom(); err != nil {
			t.Fatal(err)
		}
		ts := s.SnapshotTS()
		if ts <= lastTS {
			t.Fatalf("round %d: snapshot %v did not advance past %v", round, ts, lastTS)
		}
		lastTS = ts
		// Default-snapshot reads see everything groomed so far.
		for dev := int64(0); dev <= round; dev++ {
			recs, err := s.Scan([]keyenc.Value{keyenc.I64(dev)}, nil, nil, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 4 {
				t.Fatalf("round %d dev %d: %d rows at snapshot, want 4", round, dev, len(recs))
			}
		}
	}
	// All shard clocks are equal after lockstep rounds.
	c0 := s.Shard(0).groomCycle.Load()
	for i := 1; i < s.NumShards(); i++ {
		if c := s.Shard(i).groomCycle.Load(); c != c0 {
			t.Fatalf("shard %d at cycle %d, shard 0 at %d", i, c, c0)
		}
	}
}

func TestShardedRecovery(t *testing.T) {
	// Shards recover independently from the shared store; the reopened
	// engine realigns shard clocks and serves the same data.
	store := storage.NewMemStore(storage.LatencyModel{})
	cfg := ShardedConfig{
		Table:    iotTable(),
		Index:    iotIndex(),
		Shards:   4,
		Store:    store,
		Replicas: 2,
	}
	cfg.IndexTuning.BlockSize = 1024
	s, err := NewShardedEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const devices, msgs = 6, 4
	for dev := int64(0); dev < devices; dev++ {
		for msg := int64(0); msg < msgs; msg++ {
			if err := s.UpsertRows(0, row(dev, msg, float64(dev+1), 100)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Groom(); err != nil {
		t.Fatal(err)
	}
	if err := s.PostGroom(); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncIndex(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewShardedEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for dev := int64(0); dev < devices; dev++ {
		recs, err := s2.Scan([]keyenc.Value{keyenc.I64(dev)}, nil, nil, QueryOptions{TS: types.MaxTS})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != msgs {
			t.Fatalf("dev %d after recovery: %d rows, want %d", dev, len(recs), msgs)
		}
		for _, rec := range recs {
			if rec.Row[2].Float() != float64(dev+1) {
				t.Errorf("dev %d after recovery: reading %v", dev, rec.Row[2])
			}
		}
	}
}

func TestShardedHistoryAndPostGroom(t *testing.T) {
	s := newTestShardedEngine(t, 3, nil)
	// Three versions of one key across groom rounds, post-groomed in
	// between so prevRID chains resolve.
	for v := 1; v <= 3; v++ {
		if err := s.UpsertRows(0, row(5, 1, float64(v), 100)); err != nil {
			t.Fatal(err)
		}
		if err := s.Groom(); err != nil {
			t.Fatal(err)
		}
		if err := s.PostGroom(); err != nil {
			t.Fatal(err)
		}
		if err := s.SyncIndex(); err != nil {
			t.Fatal(err)
		}
	}
	eq, sortv := key(5, 1)
	hist, err := s.History(eq, sortv, QueryOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("history length %d, want 3", len(hist))
	}
	for i, want := range []float64{3, 2, 1} {
		if hist[i].Row[2].Float() != want {
			t.Errorf("history[%d] = %v, want %v", i, hist[i].Row[2], want)
		}
	}
}

func TestShardedBackgroundDaemons(t *testing.T) {
	// Start's daemons must groom in lockstep rounds. A workload touching
	// only one shard would freeze SnapshotTS forever under per-shard
	// daemons (idle shards never advance their clocks), making
	// default-timestamp reads permanently stale.
	s := newTestShardedEngine(t, 4, nil)
	s.Start(time.Millisecond, 5*time.Millisecond)
	// One device: exactly one shard receives data.
	if err := s.UpsertRows(0, row(3, 1, 7.5, 100)); err != nil {
		t.Fatal(err)
	}
	eq, sortv := key(3, 1)
	deadline := time.Now().Add(2 * time.Second)
	for {
		// Default-snapshot read (TS zero resolves to SnapshotTS).
		rec, found, err := s.Get(eq, sortv, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if found {
			if rec.Row[2].Float() != 7.5 {
				t.Fatalf("daemon-groomed read = %v", rec.Row[2])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("row never became visible at SnapshotTS %v (frozen shard clock?)", s.SnapshotTS())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing twice is fine.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedMalformedKeys(t *testing.T) {
	// Short or missing key values must error like the single-engine path,
	// not panic inside the router.
	s := newTestShardedEngine(t, 4, nil)
	if err := s.UpsertRows(0, row(1, 1, 1.0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Groom(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(nil, nil, QueryOptions{}); err == nil {
		t.Error("Get with empty key accepted")
	}
	if _, _, err := s.Get([]keyenc.Value{keyenc.I64(1)}, nil, QueryOptions{}); err == nil {
		t.Error("Get without sort values accepted")
	}
	if _, err := s.History(nil, nil, QueryOptions{}, 0); err == nil {
		t.Error("History with empty key accepted")
	}
	if _, err := s.Scan(nil, nil, nil, QueryOptions{}); err == nil {
		t.Error("Scan without equality values accepted")
	}
	if _, err := s.IndexOnlyScan(nil, nil, nil, QueryOptions{}); err == nil {
		t.Error("IndexOnlyScan without equality values accepted")
	}
	if _, _, err := s.GetBatch([]core.LookupKey{{Equality: []keyenc.Value{keyenc.I64(1)}}}, QueryOptions{}); err == nil {
		t.Error("GetBatch with short key accepted")
	}
}

func TestShardedConfigValidation(t *testing.T) {
	base := ShardedConfig{
		Table: iotTable(),
		Index: iotIndex(),
		Store: storage.NewMemStore(storage.LatencyModel{}),
	}
	bad := base
	bad.Store = nil
	if _, err := NewShardedEngine(bad); err == nil {
		t.Error("missing store accepted")
	}
	bad = base
	bad.Table.PrimaryKey = nil
	if _, err := NewShardedEngine(bad); err == nil {
		t.Error("invalid table accepted")
	}
	bad = base
	bad.Index.Sort = nil
	if _, err := NewShardedEngine(bad); err == nil {
		t.Error("invalid index spec accepted")
	}
	// Defaults: 4 shards, per-shard stores via ShardStore.
	good := base
	good.Store = nil
	good.ShardStore = func(int) storage.ObjectStore { return storage.NewMemStore(storage.LatencyModel{}) }
	s, err := NewShardedEngine(good)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumShards() != 4 {
		t.Errorf("default shards = %d, want 4", s.NumShards())
	}
	if err := s.UpsertRows(0, row(1, 1, 1.0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Groom(); err != nil {
		t.Fatal(err)
	}
	eq, sortv := key(1, 1)
	if _, found, err := s.Get(eq, sortv, QueryOptions{}); err != nil || !found {
		t.Fatalf("per-shard-store get: %v %v", err, found)
	}
}
