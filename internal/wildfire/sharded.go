package wildfire

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"umzi/internal/core"
	"umzi/internal/keyenc"
	"umzi/internal/obs"
	"umzi/internal/storage"
	"umzi/internal/types"
)

// The sharding layer. Wildfire is a sharded multi-master system: a table
// is hash-partitioned by its sharding key across shards, each shard is
// the unit of grooming, post-grooming and indexing, and each runs its
// own Umzi index instance (§2.1, §3). ShardedEngine composes N
// independent Engines into that system: upsert transactions route to the
// shard owning their rows, and queries either pin to one shard or
// scatter-gather across all of them through a bounded worker pool,
// merging per-shard results (sort-merge for ordered scans, positional or
// plain concatenation otherwise).
//
// Snapshot semantics across shards: every shard grooms independently, so
// there is no global commit clock — exactly as in Wildfire, where a
// query's read point is the "quorum-readable" groom boundary. The
// sharded engine keeps the shard groom clocks in lockstep (a groom round
// advances every shard's cycle, empty shards included) and resolves a
// query's default read point to the minimum groom boundary across
// shards, so one timestamp cuts every shard at a groomed prefix and
// repeated reads at that timestamp are stable.

// ShardedConfig configures a ShardedEngine.
type ShardedConfig struct {
	Table TableDef
	Index IndexSpec
	// Secondaries declares secondary indexes; every shard maintains its
	// own instance of each (see Config.Secondaries).
	Secondaries []SecondaryIndexSpec
	// Shards is the number of hash partitions (default 4).
	Shards int
	// Parallelism bounds the scatter-gather worker pool shared by all
	// queries of this engine. The default equals Shards: a fan-out query
	// can overlap the shared-storage reads of every shard at once, which
	// is where scatter-gather wins (I/O parallelism against shared
	// storage, CPU parallelism on multi-core).
	Parallelism int
	// Store is the shared storage backend used by every shard; shard
	// objects live under "tbl/<name>/shard-NNN/...".
	Store storage.ObjectStore
	// ShardStore, when set, gives each shard its own storage backend
	// (modeling scale-out across storage nodes); Store is then ignored.
	ShardStore func(shard int) storage.ObjectStore
	// Cache is the local SSD cache shared by all shards (one node's
	// cache in front of shared storage); nil disables caching.
	Cache *storage.SSDCache
	// BlockCache, when set, is the decoded-block cache every shard reads
	// through; nil creates one sized by BlockCacheBytes. Shard block
	// names are globally disjoint, so one byte budget covers the table.
	BlockCache *BlockCache
	// BlockCacheBytes budgets the table's decoded-block cache when
	// BlockCache is nil (<=0 selects DefaultBlockCacheBytes).
	BlockCacheBytes int64
	// ScanParallelism bounds each shard's intra-shard scan worker pool.
	// <=0 derives a per-shard default from GOMAXPROCS divided by the
	// shard count, so a fan-out query saturates the machine without
	// oversubscribing it; 1 scans each shard sequentially.
	ScanParallelism int
	// Replicas is the number of multi-master replicas per shard.
	Replicas int
	// Partitions is the number of partition-key buckets per shard.
	Partitions int
	// IndexTuning forwards index knobs to every shard's Umzi instance.
	IndexTuning core.Config
	// Durability configures every shard's commit log (one log per
	// shard). Shard watermarks advance in lockstep with the groom
	// rounds, so a cross-shard snapshot cuts every shard at a recovered
	// prefix. The zero value is full per-commit durability.
	Durability DurabilityOptions
	// Obs is the metrics registry every shard registers into; nil gives
	// the engine a private registry (metrics still work, nothing is
	// exported). Shard metrics are labeled by shard-qualified table name.
	Obs *obs.Registry
}

// ShardedEngine is a sharded Wildfire table: N engines behind one
// routing, ingest and scatter-gather query front end.
type ShardedEngine struct {
	table  TableDef
	ixSpec IndexSpec
	shards []*Engine
	router *shardRouter
	pool   *gatherPool

	// mx is the coordinator's metric bundle, labeled by the base table
	// name: cross-shard query counts/latencies and stream release errors.
	// Per-shard ingest/groom/storage metrics live in the shards' own
	// bundles (same registry, shard-qualified table label).
	mx *engineMetrics

	// primaryMeta is the primary index's routing/merge metadata (the
	// sharded-level analogue of a shard's tableIndex, with no core index
	// attached); merge-key extraction reads its sortIdx.
	primaryMeta *tableIndex

	// secondaries holds per-secondary routing/merge metadata (no index
	// instance — those live in the shards); createMu serializes whole
	// CreateIndex operations across callers.
	secMu       sync.Mutex
	createMu    sync.Mutex
	secondaries map[string]*tableIndex

	// groomMu serializes groom rounds so the lockstep cycle advance stays
	// consistent.
	groomMu sync.Mutex

	stopCh chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// shardTableName names one shard's table; every storage object of the
// shard lives under the derived "tbl/<this>/" prefix, disjoint between
// shards and recoverable independently.
func shardTableName(base string, shard int) string {
	return fmt.Sprintf("%s/shard-%03d", base, shard)
}

// ShardTableName exposes the shard naming scheme to storage tooling.
func ShardTableName(base string, shard int) string { return shardTableName(base, shard) }

// NewShardedEngine creates (or recovers, per shard) a sharded engine.
func NewShardedEngine(cfg ShardedConfig) (*ShardedEngine, error) {
	if err := cfg.Table.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Index.Validate(cfg.Table); err != nil {
		return nil, err
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = cfg.Shards
	}
	if cfg.Store == nil && cfg.ShardStore == nil {
		return nil, fmt.Errorf("wildfire: ShardedConfig needs Store or ShardStore")
	}

	router, err := newShardRouter(cfg.Table, cfg.Index, cfg.Shards)
	if err != nil {
		return nil, err
	}
	s := &ShardedEngine{
		table:       cfg.Table,
		ixSpec:      cfg.Index,
		router:      router,
		pool:        newGatherPool(cfg.Parallelism),
		secondaries: make(map[string]*tableIndex),
		stopCh:      make(chan struct{}),
	}
	s.mx = newEngineMetrics(cfg.Obs, cfg.Table.Name)
	s.primaryMeta = newTableIndex(cfg.Table, cfg.Index, "", cfg.Index, nil)
	// One decoded-block cache for the whole table: shard object names
	// are disjoint, so the shards share a single byte budget instead of
	// each holding 1/Nth privately.
	blocks := cfg.BlockCache
	if blocks == nil {
		blocks = NewBlockCache(cfg.BlockCacheBytes)
		blocks.instrument(cfg.Obs, cfg.Table.Name)
	}
	scanPar := cfg.ScanParallelism
	if scanPar <= 0 {
		// A scatter-gather query already runs one goroutine per shard;
		// splitting GOMAXPROCS across them keeps the default fan-out at
		// roughly one worker per core.
		if scanPar = runtime.GOMAXPROCS(0) / cfg.Shards; scanPar < 1 {
			scanPar = 1
		}
	}
	for i := 0; i < cfg.Shards; i++ {
		shardCfg := Config{
			Table:           cfg.Table,
			Index:           cfg.Index,
			Secondaries:     cfg.Secondaries,
			Store:           cfg.Store,
			Cache:           cfg.Cache,
			BlockCache:      blocks,
			ScanParallelism: scanPar,
			Replicas:        cfg.Replicas,
			Partitions:      cfg.Partitions,
			IndexTuning:     cfg.IndexTuning,
			Durability:      cfg.Durability,
			Obs:             cfg.Obs,
		}
		shardCfg.Table.Name = shardTableName(cfg.Table.Name, i)
		if cfg.ShardStore != nil {
			shardCfg.Store = cfg.ShardStore(i)
		}
		eng, err := NewEngine(shardCfg)
		if err != nil {
			for _, e := range s.shards {
				e.Close()
			}
			return nil, fmt.Errorf("wildfire: shard %d: %w", i, err)
		}
		s.shards = append(s.shards, eng)
	}
	// Recovery can leave shard groom clocks unequal (empty-cycle advances
	// are not persisted); realign so the first snapshot is consistent.
	var max uint64
	for _, e := range s.shards {
		if c := e.groomCycle.Load(); c > max {
			max = c
		}
	}
	for _, e := range s.shards {
		e.alignGroomCycle(max)
	}
	// Register routing/merge metadata for every secondary the shards
	// hold — declared ones plus any recovered from the shard catalogs.
	// The union is taken across ALL shards and healed everywhere: a crash
	// mid-CreateIndex can leave an index on a subset of shards, and
	// per-shard CreateIndex is idempotent, so re-running it converges
	// the stragglers (backfilling from their zones) instead of leaving
	// scattered queries to fail on the shards that missed it.
	var union []SecondaryIndexSpec
	seen := map[string]IndexSpec{}
	for i, e := range s.shards {
		for _, spec := range e.SecondarySpecs() {
			if prev, ok := seen[spec.Name]; ok {
				if !specEqual(prev, spec.IndexSpec) {
					s.Close()
					return nil, fmt.Errorf("wildfire: shard %d recovered index %q with a conflicting spec", i, spec.Name)
				}
				continue
			}
			seen[spec.Name] = spec.IndexSpec
			union = append(union, spec)
		}
	}
	for _, spec := range union {
		for i, e := range s.shards {
			// Only the stragglers rebuild; a shard that recovered the
			// index from its own catalog is left untouched (CreateIndex
			// would be idempotent but rewrites the catalog).
			if _, err := e.lookupIndex(spec.Name); err == nil {
				continue
			}
			if err := e.CreateIndex(spec); err != nil {
				s.Close()
				return nil, fmt.Errorf("wildfire: shard %d: healing index %q: %w", i, spec.Name, err)
			}
		}
		s.registerSecondary(spec)
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *ShardedEngine) NumShards() int { return len(s.shards) }

// BlockCache returns the decoded-block cache shared by every shard.
func (s *ShardedEngine) BlockCache() *BlockCache { return s.shards[0].blocks }

// Shard exposes one shard's engine (benchmarks and tests inspect shards
// directly; production code should not bypass routing).
func (s *ShardedEngine) Shard(i int) *Engine { return s.shards[i] }

// SecondarySpecs returns the declared spec of every secondary, in
// creation order (every shard holds the same set; shard 0 answers).
func (s *ShardedEngine) SecondarySpecs() []SecondaryIndexSpec {
	return s.shards[0].SecondarySpecs()
}

// Table returns the table definition.
func (s *ShardedEngine) Table() TableDef { return s.table }

// IndexSpec returns the primary index's declared spec.
func (s *ShardedEngine) IndexSpec() IndexSpec { return s.ixSpec }

// SnapshotTS returns the default cross-shard read point: the minimum
// groom boundary over all shards. Every shard shows a groomed prefix at
// this timestamp, and with lockstep grooming it equals each shard's own
// boundary.
func (s *ShardedEngine) SnapshotTS() types.TS {
	min := types.MaxTS
	for _, e := range s.shards {
		if ts := e.LastGroomTS(); ts < min {
			min = ts
		}
	}
	return min
}

func (s *ShardedEngine) resolveTS(opts QueryOptions) types.TS {
	if opts.TS == 0 {
		return s.SnapshotTS()
	}
	return opts.TS
}

// Start launches the background daemons. Grooming and post-grooming run
// as sharded-level lockstep rounds — NOT as per-shard daemons, which
// would let an idle shard's snapshot clock freeze and pin SnapshotTS
// (the min over shards) forever. Each shard's own index maintenance
// workers run per shard as usual.
func (s *ShardedEngine) Start(groomEvery, postGroomEvery time.Duration) {
	for _, e := range s.shards {
		e.startIndexMaintenance(groomEvery)
	}
	s.wg.Add(3)
	go s.daemon(groomEvery, func() { _ = s.Groom() })
	go s.daemon(postGroomEvery, func() { _ = s.PostGroom() })
	go s.daemon(groomEvery, func() { _ = s.SyncIndex() })
}

func (s *ShardedEngine) daemon(every time.Duration, f func()) {
	defer s.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			f()
		}
	}
}

// Close stops the daemons and closes all shards.
func (s *ShardedEngine) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(s.stopCh)
	s.wg.Wait()
	var first error
	for _, e := range s.shards {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ShardedTxn is an upsert transaction against the sharded table: rows
// accumulate locally and are routed to their owning shards at Commit.
// Cross-shard commits are not atomic — per Wildfire's multi-master
// semantics a transaction becomes durable per shard and visible at groom
// time (§2.1); a crash between shard commits can persist a prefix.
type ShardedTxn struct {
	eng       *ShardedEngine
	replicaID int
	perShard  [][]Row
	done      bool
}

// Begin starts a transaction that will commit through the given replica
// ordinal of every shard it touches.
func (s *ShardedEngine) Begin(replicaID int) (*ShardedTxn, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("wildfire: engine closed")
	}
	nr := len(s.shards[0].replicas)
	if replicaID < 0 || replicaID >= nr {
		return nil, fmt.Errorf("wildfire: replica %d out of range (%d replicas)", replicaID, nr)
	}
	return &ShardedTxn{eng: s, replicaID: replicaID, perShard: make([][]Row, len(s.shards))}, nil
}

// Upsert stages one row on its owning shard.
func (tx *ShardedTxn) Upsert(row Row) error {
	if tx.done {
		return fmt.Errorf("wildfire: transaction already finished")
	}
	if err := tx.eng.table.validateRow(row); err != nil {
		return err
	}
	cp := make(Row, len(row))
	copy(cp, row)
	shard := tx.eng.router.shardOfRow(cp)
	tx.perShard[shard] = append(tx.perShard[shard], cp)
	return nil
}

// Commit publishes the staged rows shard by shard.
func (tx *ShardedTxn) Commit() error {
	return tx.CommitContext(context.Background())
}

// CommitContext is Commit honoring a context. The context is checked
// before every per-shard commit; per Wildfire's multi-master semantics a
// cancellation between shards leaves the already-committed prefix
// durable (cross-shard commits are not atomic) and the error reports
// the cut.
func (tx *ShardedTxn) CommitContext(ctx context.Context) error {
	if tx.done {
		return fmt.Errorf("wildfire: transaction already finished")
	}
	tx.done = true
	for shard, rows := range tx.perShard {
		if len(rows) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("wildfire: commit interrupted before shard %d (earlier shards are durable): %w", shard, err)
		}
		stx, err := tx.eng.shards[shard].Begin(tx.replicaID)
		if err != nil {
			return err
		}
		for _, r := range rows {
			if err := stx.Upsert(r); err != nil {
				stx.Abort()
				return err
			}
		}
		if err := stx.Commit(); err != nil {
			return err
		}
	}
	tx.perShard = nil
	return nil
}

// Abort discards the staged rows.
func (tx *ShardedTxn) Abort() {
	tx.done = true
	tx.perShard = nil
}

// UpsertRows runs one auto-committed transaction.
func (s *ShardedEngine) UpsertRows(replicaID int, rows ...Row) error {
	tx, err := s.Begin(replicaID)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := tx.Upsert(r); err != nil {
			tx.Abort()
			return err
		}
	}
	return tx.Commit()
}

// WALStatus reports every shard's commit-log state, indexed by shard.
func (s *ShardedEngine) WALStatus() []WALStatus {
	out := make([]WALStatus, len(s.shards))
	for i, e := range s.shards {
		out[i] = e.WALStatus()
	}
	return out
}

// LiveCount reports committed-but-ungroomed records across all shards.
func (s *ShardedEngine) LiveCount() int {
	n := 0
	for _, e := range s.shards {
		n += e.LiveCount()
	}
	return n
}

// Groom performs one lockstep groom round: every shard grooms in
// parallel, then shards that had nothing advance their groom clock to
// the round's cycle so the cross-shard snapshot boundary moves as one.
func (s *ShardedEngine) Groom() error {
	_, err := s.GroomCount()
	return err
}

// GroomCount is Groom returning the total records groomed.
func (s *ShardedEngine) GroomCount() (int, error) {
	if s.closed.Load() {
		return 0, fmt.Errorf("wildfire: engine closed")
	}
	s.groomMu.Lock()
	defer s.groomMu.Unlock()
	counts := make([]int, len(s.shards))
	err := s.pool.each(context.Background(), len(s.shards), func(i int) error {
		n, err := s.shards[i].GroomCount()
		counts[i] = n
		return err
	})
	if err != nil {
		return 0, err
	}
	total := 0
	var maxCycle uint64
	for i, e := range s.shards {
		total += counts[i]
		if c := e.groomCycle.Load(); c > maxCycle {
			maxCycle = c
		}
	}
	if total > 0 {
		for _, e := range s.shards {
			e.alignGroomCycle(maxCycle)
		}
	}
	return total, nil
}

// PostGroom runs one post-groom operation on every shard in parallel.
func (s *ShardedEngine) PostGroom() error {
	if s.closed.Load() {
		return fmt.Errorf("wildfire: engine closed")
	}
	return s.pool.each(context.Background(), len(s.shards), func(i int) error {
		_, err := s.shards[i].PostGroom()
		return err
	})
}

// SyncIndex applies pending index evolve operations on every shard.
func (s *ShardedEngine) SyncIndex() error {
	if s.closed.Load() {
		return fmt.Errorf("wildfire: engine closed")
	}
	return s.pool.each(context.Background(), len(s.shards), func(i int) error {
		return s.shards[i].SyncIndex()
	})
}

// MaintainOnce runs one index maintenance pass per shard; it reports
// whether any shard performed work.
func (s *ShardedEngine) MaintainOnce() (bool, error) {
	if s.closed.Load() {
		return false, fmt.Errorf("wildfire: engine closed")
	}
	did := make([]bool, len(s.shards))
	err := s.pool.each(context.Background(), len(s.shards), func(i int) error {
		d, err := s.shards[i].Index().MaintainOnce()
		did[i] = d
		return err
	})
	for _, d := range did {
		if d {
			return true, err
		}
	}
	return false, err
}

// checkFullKey validates a point-lookup key before routing: the router
// indexes into eq/sortv, so a short key must fail like the single-engine
// path does instead of panicking.
func (s *ShardedEngine) checkFullKey(eq, sortv []keyenc.Value) error {
	if len(eq) != len(s.ixSpec.Equality) || len(sortv) != len(s.ixSpec.Sort) {
		return fmt.Errorf("wildfire: point lookup requires the full key (%d+%d values, want %d+%d)",
			len(eq), len(sortv), len(s.ixSpec.Equality), len(s.ixSpec.Sort))
	}
	return nil
}

// checkScanKey validates a scan's equality values before routing.
func (s *ShardedEngine) checkScanKey(eq []keyenc.Value) error {
	if len(eq) != len(s.ixSpec.Equality) {
		return fmt.Errorf("wildfire: scan requires all equality values (%d, want %d)",
			len(eq), len(s.ixSpec.Equality))
	}
	return nil
}

// Get returns the newest visible version of a key. The full key
// determines the sharding key, so the lookup always pins to one shard.
func (s *ShardedEngine) Get(eq, sortv []keyenc.Value, opts QueryOptions) (Record, bool, error) {
	return s.GetContext(context.Background(), eq, sortv, opts)
}

// GetContext is Get honoring a context.
func (s *ShardedEngine) GetContext(ctx context.Context, eq, sortv []keyenc.Value, opts QueryOptions) (Record, bool, error) {
	if s.closed.Load() {
		return Record{}, false, fmt.Errorf("wildfire: engine closed")
	}
	if err := s.checkFullKey(eq, sortv); err != nil {
		return Record{}, false, err
	}
	opts.TS = s.resolveTS(opts)
	return s.shards[s.router.shardOfKey(eq, sortv)].GetContext(ctx, eq, sortv, opts)
}

// History walks a key's version chain on its owning shard.
func (s *ShardedEngine) History(eq, sortv []keyenc.Value, opts QueryOptions, limit int) ([]Record, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("wildfire: engine closed")
	}
	if err := s.checkFullKey(eq, sortv); err != nil {
		return nil, err
	}
	opts.TS = s.resolveTS(opts)
	return s.shards[s.router.shardOfKey(eq, sortv)].History(eq, sortv, opts, limit)
}

// GetBatch resolves a batch of point lookups: keys group by owning
// shard, the per-shard sub-batches run concurrently through each shard's
// sorted-batch path (§7.2), and results reassemble positionally.
func (s *ShardedEngine) GetBatch(keys []core.LookupKey, opts QueryOptions) ([]Record, []bool, error) {
	if s.closed.Load() {
		return nil, nil, fmt.Errorf("wildfire: engine closed")
	}
	opts.TS = s.resolveTS(opts)
	perShard := make([][]core.LookupKey, len(s.shards))
	perShardPos := make([][]int, len(s.shards))
	for i, k := range keys {
		if err := s.checkFullKey(k.Equality, k.Sort); err != nil {
			return nil, nil, fmt.Errorf("batch key %d: %w", i, err)
		}
		shard := s.router.shardOfKey(k.Equality, k.Sort)
		perShard[shard] = append(perShard[shard], k)
		perShardPos[shard] = append(perShardPos[shard], i)
	}
	out := make([]Record, len(keys))
	found := make([]bool, len(keys))
	// Each shard writes a disjoint set of positions, and pool.each's wait
	// orders the writes before the return — no lock needed.
	err := s.pool.each(context.Background(), len(s.shards), func(i int) error {
		if len(perShard[i]) == 0 {
			return nil
		}
		recs, ok, err := s.shards[i].GetBatch(perShard[i], opts)
		if err != nil {
			return err
		}
		for j, pos := range perShardPos[i] {
			out[pos] = recs[j]
			found[pos] = ok[j]
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, found, nil
}

// Scan returns the newest visible version of every key matching the
// equality values and sort bounds, in global key order. When the
// sharding key is contained in the equality columns the scan pins to one
// shard; otherwise it scatters to all shards and sort-merges the
// per-shard ordered streams (it drains ScanStreamOn — the streaming
// merge is the only ordered scatter-gather code path).
func (s *ShardedEngine) Scan(eq, sortLo, sortHi []keyenc.Value, opts QueryOptions) ([]Record, error) {
	return drainCursor(s.ScanStreamOn(context.Background(), "", eq, sortLo, sortHi, opts))
}

// ScanUnordered is Scan without the sort-merge: per-shard results are
// concatenated in shard order. Cheaper when the caller aggregates and
// does not need global order.
func (s *ShardedEngine) ScanUnordered(eq, sortLo, sortHi []keyenc.Value, opts QueryOptions) ([]Record, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("wildfire: engine closed")
	}
	if err := s.checkScanKey(eq); err != nil {
		return nil, err
	}
	opts.TS = s.resolveTS(opts)
	if shard, ok := s.router.pinScan(eq); ok {
		return s.shards[shard].Scan(eq, sortLo, sortHi, opts)
	}
	parts := make([][]Record, len(s.shards))
	err := s.pool.each(context.Background(), len(s.shards), func(i int) error {
		recs, err := s.shards[i].Scan(eq, sortLo, sortHi, opts)
		parts[i] = recs
		return err
	})
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, p := range parts {
		out = append(out, p...)
		if opts.Limit > 0 && len(out) >= opts.Limit {
			return out[:opts.Limit], nil
		}
	}
	return out, nil
}

// IndexOnlyScan is Scan assembled entirely from the shards' indexes
// (§4.1): scatter, then sort-merge the per-shard index-only streams.
func (s *ShardedEngine) IndexOnlyScan(eq, sortLo, sortHi []keyenc.Value, opts QueryOptions) ([][]keyenc.Value, error) {
	return drainCursor(s.IndexOnlyStreamOn(context.Background(), "", eq, sortLo, sortHi, opts))
}

// indexMeta resolves the sharded layer's routing/merge metadata for an
// index choice ("" is the primary).
func (s *ShardedEngine) indexMeta(index string) (*tableIndex, error) {
	if index == "" {
		return s.primaryMeta, nil
	}
	return s.secondaryMeta(index)
}

// pinStream reports the single shard able to serve a scan on the chosen
// index with the given equality values, or ok=false when it must
// scatter.
func (s *ShardedEngine) pinStream(ti *tableIndex, eq []keyenc.Value) (int, bool) {
	if ti.primary() {
		return s.router.pinScan(eq)
	}
	return s.pinSecondary(ti, eq)
}

// ScanStreamOn streams Scan through a chosen index across shards: pin
// to one shard when the sharding key is contained in the index's
// equality columns, otherwise scatter one worker per shard and k-way
// merge the per-shard streams on the index's effective sort columns
// (which embed the primary key for secondaries, so merge keys are
// unique across shards). Closing the cursor early — or cancelling ctx —
// stops the workers; they are waited out before Close returns.
func (s *ShardedEngine) ScanStreamOn(ctx context.Context, index string, eq, sortLo, sortHi []keyenc.Value, opts QueryOptions) (*Cursor[Record], error) {
	ti, opts, err := s.openStream(index, eq, opts)
	if err != nil {
		return nil, err
	}
	if shard, ok := s.pinStream(ti, eq); ok {
		return s.shards[shard].ScanStreamOn(ctx, index, eq, sortLo, sortHi, opts)
	}
	sortIdx := ti.sortIdx
	return scatterStream(ctx, s.pool, len(s.shards), opts.Limit,
		func(ctx context.Context, shard int) (*Cursor[Record], error) {
			return s.shards[shard].ScanStreamOn(ctx, index, eq, sortLo, sortHi, opts)
		},
		func(r Record) []byte { return sortKeyOfRecord(sortIdx, &r) },
		s.mx.onReleaseErr,
	), nil
}

// IndexOnlyStreamOn is ScanStreamOn assembled entirely from the shards'
// chosen indexes: scatter (or pin), then sort-merge the per-shard
// index-only streams on the effective sort columns.
func (s *ShardedEngine) IndexOnlyStreamOn(ctx context.Context, index string, eq, sortLo, sortHi []keyenc.Value, opts QueryOptions) (*Cursor[[]keyenc.Value], error) {
	ti, opts, err := s.openStream(index, eq, opts)
	if err != nil {
		return nil, err
	}
	if shard, ok := s.pinStream(ti, eq); ok {
		return s.shards[shard].IndexOnlyStreamOn(ctx, index, eq, sortLo, sortHi, opts)
	}
	nEq, nSort := len(ti.spec.Equality), len(ti.spec.Sort)
	return scatterStream(ctx, s.pool, len(s.shards), opts.Limit,
		func(ctx context.Context, shard int) (*Cursor[[]keyenc.Value], error) {
			return s.shards[shard].IndexOnlyStreamOn(ctx, index, eq, sortLo, sortHi, opts)
		},
		func(row []keyenc.Value) []byte { return sortKeyOfIndexRow(nEq, nSort, row) },
		s.mx.onReleaseErr,
	), nil
}

// openStream validates a streaming scan and resolves its index metadata
// and timestamp.
func (s *ShardedEngine) openStream(index string, eq []keyenc.Value, opts QueryOptions) (*tableIndex, QueryOptions, error) {
	if s.closed.Load() {
		return nil, opts, fmt.Errorf("wildfire: engine closed")
	}
	ti, err := s.indexMeta(index)
	if err != nil {
		return nil, opts, err
	}
	if len(eq) != len(ti.spec.Equality) {
		return nil, opts, fmt.Errorf("wildfire: index %q scan requires all equality values (%d, want %d)",
			ti.name, len(eq), len(ti.spec.Equality))
	}
	opts.TS = s.resolveTS(opts)
	return ti, opts, nil
}
