package wildfire

import (
	"context"
	"fmt"
	"sort"
	"time"

	"umzi/internal/columnar"
	"umzi/internal/exec"
	"umzi/internal/keyenc"
	"umzi/internal/obs"
	"umzi/internal/types"
)

// The analytical execution path (paper §1, §7: Umzi exists to serve the
// analytical side of HTAP). Unlike the key-side queries in query.go,
// which walk the index and fetch records RID by RID, Execute evaluates a
// plan block-at-a-time directly over the columnar groomed and
// post-groomed blocks — skipping blocks whose per-column min/max
// synopses prove no row can match — and unions in the live zone at the
// query timestamp for freshness. Each shard reduces to an exec.Partial
// (per-group aggregate states, not rows), which is what the sharded
// layer merges at the coordinator.

// Execute runs an analytical plan on this shard and finalizes the
// result. QueryOptions have their usual meaning: TS selects the
// snapshot (zero: the newest groomed snapshot), IncludeLive unions
// committed-but-ungroomed records into the scan, and Limit caps the
// result rows (the tighter of opts.Limit and Plan.Limit wins).
func (e *Engine) Execute(p exec.Plan, opts QueryOptions) (*exec.Result, error) {
	return e.ExecuteContext(context.Background(), p, opts)
}

// ExecuteContext is Execute honoring a context: cancellation stops the
// block scan (checked per block, the unit of I/O) and index-probe work.
func (e *Engine) ExecuteContext(ctx context.Context, p exec.Plan, opts QueryOptions) (*exec.Result, error) {
	p.Limit = tightenLimit(p.Limit, opts.Limit)
	bound, err := p.Bind(e.table.Columns)
	if err != nil {
		return nil, err
	}
	part, err := e.executePlan(ctx, bound, p.Filter, opts)
	if err != nil {
		return nil, err
	}
	return bound.Finalize(part), nil
}

// tightenLimit resolves a plan's limit against QueryOptions.Limit: the
// tighter nonzero bound wins, zero means unlimited on both sides.
func tightenLimit(planLimit, optsLimit int) int {
	if optsLimit > 0 && (planLimit == 0 || optsLimit < planLimit) {
		return optsLimit
	}
	return planLimit
}

// zoneSnapshot captures the set of data blocks to scan: the groomed
// blocks not yet post-groomed plus the post-groomed blocks of committed
// post-grooms. It deliberately does not take postMu — a query must not
// stall behind an in-flight post-groom. The read order (pending before
// postBlocks) mirrors the commit's write order (postBlocks before
// pending), so a migrating batch is always captured at least once: if
// the pending read misses it, the commit — which consumed it from
// pending only after publishing the post blocks — has already made it
// visible to the later postBlocks read. The transient state where a
// batch appears in both lists (also reachable through recovery, before
// the indexer catches up) is harmless: both copies of a version carry
// the same key and beginTS, so the executor's winner map keeps exactly
// one and both evaluate identically.
func (e *Engine) zoneSnapshot() (groomed, post []uint64) {
	e.pendingMu.Lock()
	groomed = append([]uint64(nil), e.pending...)
	e.pendingMu.Unlock()
	e.postListMu.Lock()
	post = append([]uint64(nil), e.postBlocks...)
	e.postListMu.Unlock()
	return groomed, post
}

// execCandidate is one primary key's newest visible version found so
// far: either a (block, row) reference or a live-zone row. sel is the
// block's vectorized selection bitmap; it is nil when the version sits
// in a block the skip structures excluded — the version still shadows
// older ones but cannot itself qualify.
type execCandidate struct {
	beginTS uint64
	blk     *columnar.Block
	row     int
	liveRow Row
	sel     *exec.Bitmap
}

// liveBest is the newest committed-but-ungroomed version of one key.
type liveBest struct {
	row Row
	seq uint64
}

// liveOverlay collects the newest live version per primary key when the
// query's snapshot covers the live zone. Like Get, live records are
// only consulted for reads at the newest snapshot.
func (e *Engine) liveOverlay(ts types.TS, opts QueryOptions) map[string]liveBest {
	if !opts.IncludeLive || ts < e.LastGroomTS() {
		return nil
	}
	live := make(map[string]liveBest)
	for _, rep := range e.replicas {
		rep.scan(func(rec logRecord) {
			pk := e.table.pkEncoding(rec.row)
			if best, ok := live[pk]; !ok || rec.commitSeq >= best.seq {
				live[pk] = liveBest{row: rec.row, seq: rec.commitSeq}
			}
		})
	}
	return live
}

// scanBlk is one visible zone block of a query, with its skip verdict
// and object name (the block-cache key the fast path memoizes under).
// drop marks a block with nothing visible at the query timestamp; it is
// compacted away after the parallel classify.
type scanBlk struct {
	name string
	blk  *columnar.Block
	skip exec.SkipReason
	drop bool
}

// executeBound evaluates a bound plan on this shard into a partial
// result. Multi-version, multi-zone semantics match Scan: of every
// primary key, exactly the newest version with beginTS <= TS qualifies
// (plus live records when requested), and the filter applies to that
// reconciled row — an old version whose key was since updated never
// leaks into the result.
//
// Block-at-a-time with three levels of skipping: a block whose minimum
// beginTS exceeds the timestamp holds no visible rows and is skipped
// outright; a block excluded by the filter synopses or by a per-column
// bloom filter is scanned for its key and beginTS columns only (its
// versions may still shadow older versions of the same keys elsewhere),
// never materializing data columns.
//
// Predicates evaluate vectorized (exec.BoundPlan.FilterBlock): one
// selection bitmap per block, computed directly over the encoded
// columns, with rows materialized only after selection. When the
// visible blocks provably hold at most one version per key — pairwise
// disjoint primary-key ranges across blocks and distinct keys within
// each scanned block — the per-row winner reconciliation is skipped
// entirely and selected visible rows feed the partial directly; blocks
// under groom/post-groom migration overlap transiently and fall back to
// the winner map. QueryOptions.ScalarExec forces the legacy
// row-at-a-time path (the Figure S5 baseline).
//
// Both the block fetch/classify pass and the fast path run on the
// engine's intra-shard scan pool (Config.ScanParallelism workers): the
// candidate block list is partitioned into contiguous chunks, each
// worker reduces its chunk into a private exec.Partial over its own
// scratch buffers — BoundPlan and Block are read-only and shared — and
// the shard merges the partials before the cross-shard merge. The
// overlap fallback stays sequential: winner reconciliation is a global
// per-key argmax that the transient migration states it serves do not
// justify parallelizing.
func (e *Engine) executeBound(ctx context.Context, bound *exec.BoundPlan, opts QueryOptions) (*exec.Partial, error) {
	if opts.ScalarExec {
		return e.executeBoundScalar(ctx, bound, opts)
	}
	if e.closed.Load() {
		return nil, fmt.Errorf("wildfire: engine closed")
	}
	epoch := e.gate.enter()
	defer e.gate.exit(epoch)
	ts := e.resolveTS(opts)
	start := time.Now()

	pkIdx := make([]int, len(e.table.PrimaryKey))
	for i, k := range e.table.PrimaryKey {
		pkIdx[i] = e.table.colIndex(k)
	}
	nUser := len(e.table.Columns)

	// Phase 1: fetch the zone snapshot and classify every block, in
	// parallel across the scan pool (positional writes keep the zone
	// order deterministic; overlapping storage reads is where a cold
	// scan wins first).
	groomedIDs, postIDs := e.zoneSnapshot()
	names := make([]string, 0, len(groomedIDs)+len(postIDs))
	for _, id := range groomedIDs {
		names = append(names, groomedBlockName(e.table.Name, id))
	}
	for _, id := range postIDs {
		names = append(names, postBlockName(e.table.Name, id))
	}
	classified := make([]scanBlk, len(names))
	err := e.scanPool.each(ctx, len(names), func(i int) error {
		blk, err := e.fetchBlock(ctx, names[i])
		if err != nil {
			return err
		}
		sb := scanBlk{name: names[i], blk: blk}
		if min, ok := blk.ColumnMin(nUser); !ok || types.TS(min.Uint()) > ts {
			sb.drop = true // empty, or nothing visible at this timestamp
		} else {
			sb.skip = bound.BlockSkip(blk)
		}
		classified[i] = sb
		return nil
	})
	if err != nil {
		return nil, err
	}
	var blocksRead, blocksSkipped, blocksBloomSkipped int64
	blks := classified[:0]
	for _, sb := range classified {
		if sb.drop {
			blocksSkipped++
			continue
		}
		switch sb.skip {
		case exec.SkipNone:
			blocksRead++
		case exec.SkipBloom:
			blocksSkipped++
			blocksBloomSkipped++
		default:
			// Key/beginTS columns only: the synopsis proved no row can
			// qualify, so the scan counts as skipped for skip-ratio purposes.
			blocksSkipped++
		}
		blks = append(blks, sb)
	}

	live := e.liveOverlay(ts, opts)
	liveUnion := int64(len(live))

	e.mx.execBlocksRead.Add(blocksRead)
	e.mx.execBlocksSkipped.Add(blocksSkipped)
	e.mx.execBlocksBloomSkipped.Add(blocksBloomSkipped)
	opts.Trace.AddBlocksRead(blocksRead)
	opts.Trace.AddBlocksSkipped(blocksSkipped)
	opts.Trace.AddBlocksBloomSkipped(blocksBloomSkipped)
	opts.Trace.AddLiveUnion(liveUnion)
	defer func() {
		opts.Trace.AddSpan(obs.TraceSpan{
			Shard:              e.table.Name,
			BlocksRead:         blocksRead,
			BlocksSkipped:      blocksSkipped,
			BlocksBloomSkipped: blocksBloomSkipped,
			LiveUnion:          liveUnion,
			Elapsed:            time.Since(start),
		})
	}()

	part := bound.NewPartial()
	var keyBuf []byte
	var tsBuf []uint64

	// Phase 2: if no key can have two versions across the visible blocks,
	// winner reconciliation is a no-op — emit selected visible rows
	// directly, suppressing only live-superseded keys. Chunks of the
	// block list reduce into per-worker partials merged at the shard.
	if e.disjointUniqueBlocks(blks, pkIdx) {
		nw := e.scanPar
		if nw > len(blks) {
			nw = len(blks)
		}
		if nw <= 1 {
			e.scanChunk(bound, part, blks, ts, live, pkIdx, nUser)
		} else {
			parts := make([]*exec.Partial, nw)
			err := e.scanPool.each(ctx, nw, func(w int) error {
				lo, hi := w*len(blks)/nw, (w+1)*len(blks)/nw
				p := bound.NewPartial()
				e.scanChunk(bound, p, blks[lo:hi], ts, live, pkIdx, nUser)
				parts[w] = p
				return nil
			})
			if err != nil {
				return nil, err
			}
			for _, p := range parts {
				part.Merge(p)
			}
		}
		addLiveRows(part, bound, live)
		return part, nil
	}

	// Phase 3: general path — reconcile the newest visible version per
	// primary key across blocks, then emit the winners their block's
	// selection bitmap accepts.
	winners := make(map[string]execCandidate)
	for _, sb := range blks {
		var sel *exec.Bitmap
		if sb.skip == exec.SkipNone {
			sel = bound.FilterBlock(sb.blk)
		}
		blk := sb.blk
		tsBuf = blk.AppendNums(nUser, tsBuf[:0])
		for r := 0; r < blk.NumRows(); r++ {
			beginTS := tsBuf[r]
			if types.TS(beginTS) > ts {
				continue
			}
			keyBuf = keyBuf[:0]
			for _, c := range pkIdx {
				keyBuf = keyenc.Append(keyBuf, blk.Value(r, c))
			}
			if w, ok := winners[string(keyBuf)]; ok && w.beginTS >= beginTS {
				continue
			}
			winners[string(keyBuf)] = execCandidate{beginTS: beginTS, blk: blk, row: r, sel: sel}
		}
	}
	// Committed-but-ungroomed records are newer than every groomed
	// version of their key (the groomer will assign them a larger
	// beginTS), so the newest live version per key supersedes any zone
	// candidate.
	for pk, best := range live {
		winners[pk] = execCandidate{beginTS: uint64(types.MaxTS), liveRow: best.row}
	}
	for _, w := range winners {
		if w.liveRow != nil {
			row := w.liveRow
			view := exec.RowView(func(c int) keyenc.Value { return row[c] })
			if bound.Matches(view) {
				part.Add(view)
			}
			continue
		}
		if w.sel == nil || !w.sel.Get(w.row) {
			continue
		}
		blk, r := w.blk, w.row
		part.Add(func(c int) keyenc.Value { return blk.Value(r, c) })
	}
	return part, nil
}

// scanChunk is one fast-path worker: it reduces a contiguous run of the
// candidate block list into a private partial. bound, the blocks and
// the live map are shared read-only across workers; the partial and the
// scratch buffers are worker-owned.
func (e *Engine) scanChunk(bound *exec.BoundPlan, part *exec.Partial, blks []scanBlk, ts types.TS, live map[string]liveBest, pkIdx []int, nUser int) {
	var keyBuf []byte
	var tsBuf []uint64
	for _, sb := range blks {
		if sb.skip != exec.SkipNone {
			continue // proved unmatchable; shadows nothing (unique keys)
		}
		sel := bound.FilterBlock(sb.blk)
		if sel.None() {
			continue
		}
		blk := sb.blk
		tsBuf = blk.AppendNums(nUser, tsBuf[:0])
		sel.ForEach(func(r int) {
			if types.TS(tsBuf[r]) > ts {
				return
			}
			if len(live) > 0 {
				keyBuf = keyBuf[:0]
				for _, c := range pkIdx {
					keyBuf = keyenc.Append(keyBuf, blk.Value(r, c))
				}
				if _, shadowed := live[string(keyBuf)]; shadowed {
					return
				}
			}
			part.Add(func(c int) keyenc.Value { return blk.Value(r, c) })
		})
	}
}

// addLiveRows feeds the qualifying live-zone rows into the partial.
func addLiveRows(part *exec.Partial, bound *exec.BoundPlan, live map[string]liveBest) {
	for _, best := range live {
		row := best.row
		view := exec.RowView(func(c int) keyenc.Value { return row[c] })
		if bound.Matches(view) {
			part.Add(view)
		}
	}
}

// disjointUniqueBlocks decides fast-path eligibility: true when no
// primary key can have versions in two visible blocks (the blocks'
// leading-primary-key-column ranges are pairwise disjoint) and no
// scanned block holds two versions of one key (distinct full keys,
// memoized per cached block). Blocks mid-migration between the groomed
// and post-groomed zones appear twice with identical ranges and fail
// the disjointness test, falling back to winner reconciliation.
func (e *Engine) disjointUniqueBlocks(blks []scanBlk, pkIdx []int) bool {
	if len(blks) == 0 {
		return true
	}
	pk0 := pkIdx[0]
	type krange struct{ min, max keyenc.Value }
	ranges := make([]krange, len(blks))
	for i, sb := range blks {
		min, ok := sb.blk.ColumnMin(pk0)
		if !ok {
			return false
		}
		max, _ := sb.blk.ColumnMax(pk0)
		ranges[i] = krange{min: min, max: max}
	}
	sort.Slice(ranges, func(i, j int) bool { return keyenc.Compare(ranges[i].min, ranges[j].min) < 0 })
	for i := 1; i < len(ranges); i++ {
		if keyenc.Compare(ranges[i-1].max, ranges[i].min) >= 0 {
			return false
		}
	}
	for _, sb := range blks {
		if sb.skip != exec.SkipNone {
			continue // never emitted; within-block duplicates are unobservable
		}
		if !e.blockPKUnique(sb.name, sb.blk, pkIdx) {
			return false
		}
	}
	return true
}

// executeBoundScalar is the legacy row-at-a-time zone scan, preserved
// verbatim as the vectorized path's baseline (QueryOptions.ScalarExec;
// Figure S5 sweeps one against the other): min/max synopsis skipping
// only, per-row beginTS decode through Value, and per-winner predicate
// evaluation through RowView.
func (e *Engine) executeBoundScalar(ctx context.Context, bound *exec.BoundPlan, opts QueryOptions) (*exec.Partial, error) {
	if e.closed.Load() {
		return nil, fmt.Errorf("wildfire: engine closed")
	}
	epoch := e.gate.enter()
	defer e.gate.exit(epoch)
	ts := e.resolveTS(opts)
	start := time.Now()
	var blocksRead, blocksSkipped int64

	pkIdx := make([]int, len(e.table.PrimaryKey))
	for i, k := range e.table.PrimaryKey {
		pkIdx[i] = e.table.colIndex(k)
	}
	nUser := len(e.table.Columns)
	winners := make(map[string]execCandidate)
	var keyBuf []byte

	groomedIDs, postIDs := e.zoneSnapshot()
	scanBlock := func(name string) error {
		blk, err := e.fetchBlock(ctx, name)
		if err != nil {
			return err
		}
		if min, ok := blk.ColumnMin(nUser); !ok || types.TS(min.Uint()) > ts {
			blocksSkipped++
			return nil // empty, or nothing visible at this timestamp
		}
		var sel *exec.Bitmap
		if bound.CanMatchBlock(blk) {
			blocksRead++
			sel = allRowsBitmap(blk.NumRows())
		} else {
			// Key/beginTS columns only: the synopsis proved no row can
			// qualify, so the scan counts as skipped for skip-ratio purposes.
			blocksSkipped++
		}
		for r := 0; r < blk.NumRows(); r++ {
			beginTS := blk.Value(r, nUser).Uint()
			if types.TS(beginTS) > ts {
				continue
			}
			keyBuf = keyBuf[:0]
			for _, c := range pkIdx {
				keyBuf = keyenc.Append(keyBuf, blk.Value(r, c))
			}
			if w, ok := winners[string(keyBuf)]; ok && w.beginTS >= beginTS {
				continue
			}
			winners[string(keyBuf)] = execCandidate{beginTS: beginTS, blk: blk, row: r, sel: sel}
		}
		return nil
	}
	for _, id := range groomedIDs {
		if err := scanBlock(groomedBlockName(e.table.Name, id)); err != nil {
			return nil, err
		}
	}
	for _, id := range postIDs {
		if err := scanBlock(postBlockName(e.table.Name, id)); err != nil {
			return nil, err
		}
	}

	live := e.liveOverlay(ts, opts)
	for pk, best := range live {
		winners[pk] = execCandidate{beginTS: uint64(types.MaxTS), liveRow: best.row}
	}
	liveUnion := int64(len(live))

	e.mx.execBlocksRead.Add(blocksRead)
	e.mx.execBlocksSkipped.Add(blocksSkipped)
	opts.Trace.AddBlocksRead(blocksRead)
	opts.Trace.AddBlocksSkipped(blocksSkipped)
	opts.Trace.AddLiveUnion(liveUnion)
	opts.Trace.AddSpan(obs.TraceSpan{
		Shard:         e.table.Name,
		BlocksRead:    blocksRead,
		BlocksSkipped: blocksSkipped,
		LiveUnion:     liveUnion,
		Elapsed:       time.Since(start),
	})

	part := bound.NewPartial()
	for _, w := range winners {
		var view exec.RowView
		if w.liveRow != nil {
			row := w.liveRow
			view = func(c int) keyenc.Value { return row[c] }
		} else {
			if w.sel == nil {
				continue
			}
			blk, r := w.blk, w.row
			view = func(c int) keyenc.Value { return blk.Value(r, c) }
		}
		if !bound.Matches(view) {
			continue
		}
		part.Add(view)
	}
	return part, nil
}

// allRowsBitmap is a fully set selection bitmap; the scalar path uses
// it as the "block scanned" marker so both paths share execCandidate.
func allRowsBitmap(n int) *exec.Bitmap {
	bm := exec.NewBitmap(n)
	bm.SetAll()
	return bm
}

// Execute runs an analytical plan across all shards: the bound plan is
// pushed into every shard in parallel through the scatter-gather pool,
// each shard reduces its blocks and live records to an exec.Partial, and
// the coordinator merges the partial aggregates — sum/count pairs and
// per-group accumulator maps, never rows — before finalizing. Row-shaped
// plans (no aggregates) are the exception: shards return their
// qualifying projected rows, concatenated and deterministically sorted
// at finalize.
func (s *ShardedEngine) Execute(p exec.Plan, opts QueryOptions) (*exec.Result, error) {
	return s.ExecuteContext(context.Background(), p, opts)
}

// ExecuteContext is Execute honoring a context: cancellation aborts the
// per-shard scatter and each shard's block scan.
func (s *ShardedEngine) ExecuteContext(ctx context.Context, p exec.Plan, opts QueryOptions) (*exec.Result, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("wildfire: engine closed")
	}
	p.Limit = tightenLimit(p.Limit, opts.Limit)
	bound, err := p.Bind(s.table.Columns)
	if err != nil {
		return nil, err
	}
	opts.TS = s.resolveTS(opts)
	parts := make([]*exec.Partial, len(s.shards))
	err = s.pool.each(ctx, len(s.shards), func(i int) error {
		// Index selection runs per shard: every shard holds the same
		// index set, so the (deterministic) rule picks the same access
		// path everywhere.
		part, err := s.shards[i].executePlan(ctx, bound, p.Filter, opts)
		parts[i] = part
		return err
	})
	if err != nil {
		return nil, err
	}
	return bound.Finalize(parts...), nil
}
