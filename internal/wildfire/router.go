package wildfire

import (
	"fmt"

	"umzi/internal/keyenc"
)

// Shard routing. Wildfire hash-partitions every table by its sharding key
// (§2.1): each shard runs its own engine — live zone, groomer,
// post-groomer and Umzi index instance — and transactions are routed to
// the shard that owns their rows. Queries either pin to one shard (the
// sharding key is fully determined by the query) or scatter to all of
// them.
//
// The router precomputes where each sharding-key column lives — its
// ordinal in the table row, and its position in the (equality, sort)
// query-key layout of the index spec — so that routing a row or a query
// key is a hash over a few values with no per-call column lookups.

// keyLocator says where one sharding-key column appears in a query key:
// in the equality values (fromSort false) or the sort values (fromSort
// true), at position idx within that group.
type keyLocator struct {
	fromSort bool
	idx      int
}

// shardRouter maps rows and query keys to their owning shard.
type shardRouter struct {
	n int // shard count

	// cols are the routing columns: the table's sharding key, or the full
	// primary key when no sharding key is declared.
	cols []string
	// rowIdx[i] is cols[i]'s ordinal in the table row.
	rowIdx []int
	// keyLoc[i] locates cols[i] in a query's (equality, sort) values.
	keyLoc []keyLocator
	// pinnable reports whether every routing column is an equality column
	// of the index spec: then any scan (which fixes all equality values)
	// is served by exactly one shard.
	pinnable bool
}

// newShardRouter builds the router for a validated table and index spec.
func newShardRouter(t TableDef, s IndexSpec, shards int) (*shardRouter, error) {
	cols := t.ShardKey
	if len(cols) == 0 {
		// No declared sharding key: partition by the full primary key.
		cols = t.PrimaryKey
	}
	r := &shardRouter{n: shards, cols: cols}
	for _, c := range cols {
		r.rowIdx = append(r.rowIdx, t.colIndex(c))
		loc, err := locateKeyColumn(s, c)
		if err != nil {
			return nil, err
		}
		r.keyLoc = append(r.keyLoc, loc)
	}
	r.pinnable = true
	for _, loc := range r.keyLoc {
		if loc.fromSort {
			r.pinnable = false
			break
		}
	}
	return r, nil
}

// locateKeyColumn finds a column's position in the index key layout. The
// sharding key is a subset of the primary key and the index key covers
// the whole primary key, so every routing column is found.
func locateKeyColumn(s IndexSpec, col string) (keyLocator, error) {
	for i, c := range s.Equality {
		if c == col {
			return keyLocator{fromSort: false, idx: i}, nil
		}
	}
	for i, c := range s.Sort {
		if c == col {
			return keyLocator{fromSort: true, idx: i}, nil
		}
	}
	return keyLocator{}, fmt.Errorf("wildfire: sharding column %q not covered by the index key", col)
}

// shardOfRow returns the shard owning a row.
func (r *shardRouter) shardOfRow(row Row) int {
	var scratch [4]keyenc.Value
	vals := scratch[:0]
	for _, i := range r.rowIdx {
		vals = append(vals, row[i])
	}
	return int(keyenc.HashValues(vals) % uint64(r.n))
}

// shardOfKey returns the shard owning a full query key (all equality and
// sort values present, as in Get/GetBatch/History).
func (r *shardRouter) shardOfKey(eq, sortv []keyenc.Value) int {
	var scratch [4]keyenc.Value
	vals := scratch[:0]
	for _, loc := range r.keyLoc {
		if loc.fromSort {
			vals = append(vals, sortv[loc.idx])
		} else {
			vals = append(vals, eq[loc.idx])
		}
	}
	return int(keyenc.HashValues(vals) % uint64(r.n))
}

// pinScan returns the single shard able to serve a scan with the given
// equality values, or ok=false when the scan must scatter to all shards
// (some routing column is a sort column, so rows matching the scan live
// on different shards).
func (r *shardRouter) pinScan(eq []keyenc.Value) (int, bool) {
	if !r.pinnable {
		return 0, false
	}
	var scratch [4]keyenc.Value
	vals := scratch[:0]
	for _, loc := range r.keyLoc {
		vals = append(vals, eq[loc.idx])
	}
	return int(keyenc.HashValues(vals) % uint64(r.n)), true
}
