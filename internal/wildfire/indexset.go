package wildfire

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"umzi/internal/core"
	"umzi/internal/keyenc"
	"umzi/internal/run"
	"umzi/internal/storage"
	"umzi/internal/types"
)

// The index set: one table shard maintains N Umzi indexes — the primary
// (whose key is the primary key) plus any number of named secondaries
// over arbitrary column subsets (§4.1: the index definition is general,
// hash + sort + included columns; Umzi is Wildfire's index structure,
// not just its primary-key path). Every layer of the pipeline drives the
// whole set in lockstep: the groomer builds one run per index per groom
// cycle (§5.2), the indexer evolves each index through the same PSN
// sequence (§5.4), deprecated groomed blocks are reclaimed only once
// every index has passed them, and recovery restores the full set from
// shared storage (§5.5) via the persisted index catalog.
//
// Multi-version semantics of a secondary: its effective key is the
// declared (equality, sort) columns with the primary-key columns that
// are missing from the key appended to the sort columns as a uniquifier.
// Every version of a row therefore owns exactly one entry per secondary
// key it ever carried, and the standard per-key newest-visible-version
// reconciliation applies within the secondary. What the secondary cannot
// see on its own is a *newer* version of the same row under a different
// secondary key — the classic stale-entry problem of multi-version
// secondary indexes (MV-PBT solves it with version chains; we solve it
// with a primary back-check): every secondary query re-validates each
// candidate against the primary index at the query timestamp and keeps
// the candidate only when its beginTS is still the row's newest visible
// version.

// SecondaryIndexSpec declares one secondary index over a table: a name
// (unique per table) plus an IndexSpec whose key columns may be any user
// columns, not just the primary key. The primary-key columns missing
// from the key are appended to the sort columns as a uniquifier, so they
// may not be listed as included columns.
type SecondaryIndexSpec struct {
	Name string
	IndexSpec
}

// Validate checks a secondary declaration against a table definition.
func (s SecondaryIndexSpec) Validate(t TableDef) error {
	if s.Name == "" {
		return fmt.Errorf("wildfire: secondary index needs a name")
	}
	if strings.ContainsAny(s.Name, "/ \t\n") {
		return fmt.Errorf("wildfire: secondary index name %q contains reserved characters", s.Name)
	}
	if len(s.Equality)+len(s.Sort) == 0 {
		return fmt.Errorf("wildfire: secondary index %q needs at least one key column", s.Name)
	}
	pk := map[string]bool{}
	for _, k := range t.PrimaryKey {
		pk[k] = true
	}
	seen := map[string]bool{}
	for _, group := range [][]string{s.Equality, s.Sort, s.Included} {
		for _, c := range group {
			if t.colIndex(c) < 0 {
				return fmt.Errorf("wildfire: secondary index %q: column %q not in table", s.Name, c)
			}
			if seen[c] {
				return fmt.Errorf("wildfire: secondary index %q: duplicate column %q", s.Name, c)
			}
			seen[c] = true
		}
	}
	for _, c := range s.Included {
		if pk[c] {
			return fmt.Errorf("wildfire: secondary index %q: primary-key column %q joins the key as a uniquifier and cannot be an included column", s.Name, c)
		}
	}
	return nil
}

// effectiveSecondarySpec lowers a declared secondary spec to its storage
// layout: the declared spec with the primary-key columns missing from
// the key appended to the sort columns. userSort is the number of sort
// columns the user declared (the prefix scans bound).
func effectiveSecondarySpec(t TableDef, s IndexSpec) (eff IndexSpec, userSort int) {
	eff = IndexSpec{
		Equality: append([]string(nil), s.Equality...),
		Sort:     append([]string(nil), s.Sort...),
		Included: append([]string(nil), s.Included...),
		HashBits: s.HashBits,
	}
	userSort = len(s.Sort)
	inKey := map[string]bool{}
	for _, c := range s.Equality {
		inKey[c] = true
	}
	for _, c := range s.Sort {
		inKey[c] = true
	}
	for _, c := range t.PrimaryKey {
		if !inKey[c] {
			eff.Sort = append(eff.Sort, c)
		}
	}
	return eff, userSort
}

// tableIndex is one index of a table's set: its Umzi instance plus the
// precomputed column plumbing every pipeline stage needs (row → entry
// projection, decoded-entry → table-column mapping, primary-key
// extraction for back-checks and live-zone suppression).
type tableIndex struct {
	name     string    // "" is the primary
	declared IndexSpec // as declared (catalog form)
	spec     IndexSpec // effective layout (pk-uniquified for secondaries)
	userSort int       // sort columns declared by the user (prefix of spec.Sort)
	idx      *core.Index

	// Table-row ordinals of the effective spec's columns.
	eqIdx, sortIdx, inclIdx []int
	// valPos[c] locates table column c in the decoded entry layout
	// (equality ++ sort ++ included), or -1 when the index does not
	// carry the column.
	valPos []int
	// pkPos[i] locates PrimaryKey[i] in the decoded layout; secondaries
	// carry the whole primary key in their key columns by construction.
	pkPos []int
	// priEqPos / priSortPos locate the primary spec's equality and sort
	// values in the decoded layout, for back-check lookups.
	priEqPos, priSortPos []int
}

func (ti *tableIndex) primary() bool { return ti.name == "" }

// flatPos returns the decoded-layout position of a column in spec, or -1.
func flatPos(spec IndexSpec, col string) int {
	for i, c := range spec.Equality {
		if c == col {
			return i
		}
	}
	for i, c := range spec.Sort {
		if c == col {
			return len(spec.Equality) + i
		}
	}
	for i, c := range spec.Included {
		if c == col {
			return len(spec.Equality) + len(spec.Sort) + i
		}
	}
	return -1
}

// newTableIndex precomputes the column plumbing of one index. primarySpec
// is the table's primary index spec (for back-check positions); idx may
// be attached later by the caller.
func newTableIndex(t TableDef, primarySpec IndexSpec, name string, declared IndexSpec, idx *core.Index) *tableIndex {
	ti := &tableIndex{name: name, declared: declared, idx: idx}
	if name == "" {
		ti.spec, ti.userSort = declared, len(declared.Sort)
	} else {
		ti.spec, ti.userSort = effectiveSecondarySpec(t, declared)
	}
	for _, c := range ti.spec.Equality {
		ti.eqIdx = append(ti.eqIdx, t.colIndex(c))
	}
	for _, c := range ti.spec.Sort {
		ti.sortIdx = append(ti.sortIdx, t.colIndex(c))
	}
	for _, c := range ti.spec.Included {
		ti.inclIdx = append(ti.inclIdx, t.colIndex(c))
	}
	ti.valPos = make([]int, len(t.Columns))
	for i, c := range t.Columns {
		ti.valPos[i] = flatPos(ti.spec, c.Name)
	}
	for _, c := range t.PrimaryKey {
		ti.pkPos = append(ti.pkPos, flatPos(ti.spec, c))
	}
	for _, c := range primarySpec.Equality {
		ti.priEqPos = append(ti.priEqPos, flatPos(ti.spec, c))
	}
	for _, c := range primarySpec.Sort {
		ti.priSortPos = append(ti.priSortPos, flatPos(ti.spec, c))
	}
	return ti
}

// rowEq / rowSort / rowIncl project a table row onto the index columns.
func (ti *tableIndex) rowEq(row Row) []keyenc.Value {
	out := make([]keyenc.Value, len(ti.eqIdx))
	for i, c := range ti.eqIdx {
		out[i] = row[c]
	}
	return out
}

func (ti *tableIndex) rowSort(row Row) []keyenc.Value {
	out := make([]keyenc.Value, len(ti.sortIdx))
	for i, c := range ti.sortIdx {
		out[i] = row[c]
	}
	return out
}

func (ti *tableIndex) rowIncl(row Row) []keyenc.Value {
	out := make([]keyenc.Value, len(ti.inclIdx))
	for i, c := range ti.inclIdx {
		out[i] = row[c]
	}
	return out
}

// entryForRow builds this index's entry for one record version.
func (ti *tableIndex) entryForRow(row Row, ts types.TS, rid types.RID) (run.Entry, error) {
	return ti.idx.MakeEntry(ti.rowEq(row), ti.rowSort(row), ti.rowIncl(row), ts, rid)
}

// decodeFlat splits an entry into the flat decoded layout
// (equality ++ sort ++ included values).
func (ti *tableIndex) decodeFlat(e run.Entry) ([]keyenc.Value, error) {
	eq, sortv, incl, err := ti.idx.DecodeEntry(e)
	if err != nil {
		return nil, err
	}
	flat := make([]keyenc.Value, 0, len(eq)+len(sortv)+len(incl))
	flat = append(flat, eq...)
	flat = append(flat, sortv...)
	flat = append(flat, incl...)
	return flat, nil
}

// pkFromFlat extracts the primary index's lookup key from a decoded
// secondary entry.
func (ti *tableIndex) pkFromFlat(flat []keyenc.Value) (eq, sortv []keyenc.Value) {
	eq = make([]keyenc.Value, len(ti.priEqPos))
	for i, p := range ti.priEqPos {
		eq[i] = flat[p]
	}
	sortv = make([]keyenc.Value, len(ti.priSortPos))
	for i, p := range ti.priSortPos {
		sortv[i] = flat[p]
	}
	return eq, sortv
}

// pkEncodingFromFlat is TableDef.pkEncoding computed from a decoded
// entry instead of a row.
func (ti *tableIndex) pkEncodingFromFlat(flat []keyenc.Value) string {
	var buf []byte
	for _, p := range ti.pkPos {
		buf = keyenc.Append(buf, flat[p])
	}
	return string(buf)
}

// coversOrdinals reports whether the index carries every listed table
// column — the covered-query test.
func (ti *tableIndex) coversOrdinals(ords []int) bool {
	for _, o := range ords {
		if ti.valPos[o] < 0 {
			return false
		}
	}
	return true
}

// IndexStoragePrefix returns the shared-storage prefix of one index of a
// table: the primary ("") under tbl/<t>/idx, secondaries under
// tbl/<t>/idx2/<name>.
func IndexStoragePrefix(table, index string) string {
	if index == "" {
		return "tbl/" + table + "/idx"
	}
	return "tbl/" + table + "/idx2/" + index
}

// specEqual compares two index specs structurally.
func specEqual(a, b IndexSpec) bool {
	eq := func(x, y []string) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return a.HashBits == b.HashBits && eq(a.Equality, b.Equality) &&
		eq(a.Sort, b.Sort) && eq(a.Included, b.Included)
}

// ---- Index catalog -------------------------------------------------
//
// The catalog persists the table's index set — the primary spec plus
// every secondary declaration — so that recovery restores the full set
// from shared storage alone (§5.5), including secondaries created online
// after the engine first started. Like index meta records, catalog
// objects are sequenced (shared storage has no in-place update) and the
// newest valid record wins.

// IndexCatalogEntry is one catalog record: the declared spec of one
// index. Name "" is the primary.
type IndexCatalogEntry struct {
	Name string
	Spec IndexSpec
}

const catalogMagic = "UMZICAT1"

func catalogName(table string, seq uint64) string {
	return fmt.Sprintf("tbl/%s/catalog/%012d", table, seq)
}

func appendCatalogString(out []byte, s string) []byte {
	out = binary.BigEndian.AppendUint16(out, uint16(len(s)))
	return append(out, s...)
}

func appendCatalogGroup(out []byte, cols []string) []byte {
	out = binary.BigEndian.AppendUint16(out, uint16(len(cols)))
	for _, c := range cols {
		out = appendCatalogString(out, c)
	}
	return out
}

func encodeIndexCatalog(entries []IndexCatalogEntry) []byte {
	out := append([]byte(nil), catalogMagic...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(entries)))
	for _, e := range entries {
		out = appendCatalogString(out, e.Name)
		out = append(out, e.Spec.HashBits)
		out = appendCatalogGroup(out, e.Spec.Equality)
		out = appendCatalogGroup(out, e.Spec.Sort)
		out = appendCatalogGroup(out, e.Spec.Included)
	}
	return out
}

type catalogReader struct {
	data []byte
	off  int
	err  error
}

func (r *catalogReader) str() string {
	if r.err != nil {
		return ""
	}
	if r.off+2 > len(r.data) {
		r.err = fmt.Errorf("wildfire: truncated index catalog")
		return ""
	}
	n := int(binary.BigEndian.Uint16(r.data[r.off:]))
	r.off += 2
	if r.off+n > len(r.data) {
		r.err = fmt.Errorf("wildfire: truncated index catalog")
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

func (r *catalogReader) group() []string {
	if r.err != nil {
		return nil
	}
	if r.off+2 > len(r.data) {
		r.err = fmt.Errorf("wildfire: truncated index catalog")
		return nil
	}
	n := int(binary.BigEndian.Uint16(r.data[r.off:]))
	r.off += 2
	var out []string
	for i := 0; i < n; i++ {
		out = append(out, r.str())
	}
	return out
}

func decodeIndexCatalog(data []byte) ([]IndexCatalogEntry, error) {
	if len(data) < 12 || string(data[:8]) != catalogMagic {
		return nil, fmt.Errorf("wildfire: bad index catalog record")
	}
	n := int(binary.BigEndian.Uint32(data[8:12]))
	r := &catalogReader{data: data, off: 12}
	var out []IndexCatalogEntry
	for i := 0; i < n; i++ {
		var e IndexCatalogEntry
		e.Name = r.str()
		if r.err == nil && r.off < len(r.data) {
			e.Spec.HashBits = r.data[r.off]
			r.off++
		} else if r.err == nil {
			r.err = fmt.Errorf("wildfire: truncated index catalog")
		}
		e.Spec.Equality = r.group()
		e.Spec.Sort = r.group()
		e.Spec.Included = r.group()
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, e)
	}
	return out, nil
}

// LoadIndexCatalog reads the newest valid catalog record of a table from
// shared storage, returning (nil, 0, nil) when the table has never
// written one (pre-catalog tables recover as primary-only). seq is the
// record's sequence number, so writers can continue the sequence.
func LoadIndexCatalog(store storage.ObjectStore, table string) ([]IndexCatalogEntry, uint64, error) {
	names, err := store.List("tbl/" + table + "/catalog/")
	if err != nil {
		return nil, 0, err
	}
	if len(names) == 0 {
		return nil, 0, nil
	}
	sort.Strings(names)
	var maxSeq uint64
	fmt.Sscanf(strings.TrimPrefix(names[len(names)-1], "tbl/"+table+"/catalog/"), "%d", &maxSeq)
	// Walk newest to oldest: only a record that exists but does not
	// decode is an interrupted write we may skip. A failing Get on a
	// listed object is a storage error and must surface — silently
	// falling back to an older catalog would drop online-created
	// secondaries from the recovered set.
	for i := len(names) - 1; i >= 0; i-- {
		data, err := store.Get(names[i])
		if err != nil {
			return nil, 0, fmt.Errorf("wildfire: reading catalog record %s: %w", names[i], err)
		}
		entries, err := decodeIndexCatalog(data)
		if err != nil {
			continue
		}
		return entries, maxSeq, nil
	}
	return nil, maxSeq, fmt.Errorf("wildfire: table %s has catalog objects but no readable record", table)
}

// writeCatalogLocked persists the current index set as a fresh catalog
// record and prunes old records. Callers hold e.indexMu.
func (e *Engine) writeCatalogLocked() error {
	var entries []IndexCatalogEntry
	for _, ti := range e.indexSet() {
		entries = append(entries, IndexCatalogEntry{Name: ti.name, Spec: ti.declared})
	}
	seq := e.catalogSeq.Add(1)
	if err := e.store.Put(catalogName(e.table.Name, seq), encodeIndexCatalog(entries)); err != nil {
		return err
	}
	names, err := e.store.List("tbl/" + e.table.Name + "/catalog/")
	if err == nil && len(names) > 2 {
		sort.Strings(names)
		for _, n := range names[:len(names)-2] {
			_ = e.store.Delete(n)
		}
	}
	return nil
}

// ---- Engine-side set management ------------------------------------

// indexSet returns the current index set; element 0 is the primary. The
// slice is immutable (copy-on-write installs).
func (e *Engine) indexSet() []*tableIndex { return *e.indexes.Load() }

// lookupIndex resolves an index by name; "" is the primary.
func (e *Engine) lookupIndex(name string) (*tableIndex, error) {
	for _, ti := range e.indexSet() {
		if ti.name == name {
			return ti, nil
		}
	}
	return nil, fmt.Errorf("wildfire: table %s has no index %q", e.table.Name, name)
}

// SecondaryNames lists the table's secondary indexes in creation order.
func (e *Engine) SecondaryNames() []string {
	var out []string
	for _, ti := range e.indexSet() {
		if !ti.primary() {
			out = append(out, ti.name)
		}
	}
	return out
}

// SecondarySpecs returns the declared spec of every secondary, in
// creation order.
func (e *Engine) SecondarySpecs() []SecondaryIndexSpec {
	var out []SecondaryIndexSpec
	for _, ti := range e.indexSet() {
		if !ti.primary() {
			out = append(out, SecondaryIndexSpec{Name: ti.name, IndexSpec: ti.declared})
		}
	}
	return out
}

// SecondaryIndex exposes one secondary's Umzi instance (inspection,
// benchmarks).
func (e *Engine) SecondaryIndex(name string) (*core.Index, error) {
	ti, err := e.lookupIndex(name)
	if err != nil {
		return nil, err
	}
	return ti.idx, nil
}

// openTableIndex opens (or creates) the core index of one set member.
func (e *Engine) openTableIndex(name string, declared IndexSpec) (*tableIndex, error) {
	ti := newTableIndex(e.table, e.ixSpec, name, declared, nil)
	ixCfg := e.tuning
	ixCfg.Name = IndexStoragePrefix(e.table.Name, name)
	ixCfg.Def = indexDefFor(e.table, ti.spec)
	ixCfg.Store = e.store
	ixCfg.Cache = e.cache
	idx, err := core.Open(ixCfg)
	if err != nil {
		return nil, fmt.Errorf("wildfire: opening index %q: %w", name, err)
	}
	ti.idx = idx
	return ti, nil
}

// CreateIndex builds a new secondary index online from the existing
// zones and adds it to the set: the post-groomed zone is adopted
// wholesale (one bootstrap run over the published post-groomed blocks,
// watermark fast-forwarded to the engine's PSN), the pending groomed
// blocks get one run each, and the index joins the catalog so recovery
// and every subsequent groom/post-groom/evolve cycle maintain it.
// Grooming and post-grooming are blocked for the duration; queries are
// not.
func (e *Engine) CreateIndex(spec SecondaryIndexSpec) error {
	if e.closed.Load() {
		return fmt.Errorf("wildfire: engine closed")
	}
	if err := spec.Validate(e.table); err != nil {
		return err
	}
	e.groomMu.Lock()
	defer e.groomMu.Unlock()
	e.postMu.Lock()
	defer e.postMu.Unlock()
	e.indexMu.Lock()
	defer e.indexMu.Unlock()
	// Re-check under indexMu: Close tears the set down holding it, so a
	// create that observes closed==false here is ordered before the
	// teardown and its index will be closed by Close, not leaked.
	if e.closed.Load() {
		return fmt.Errorf("wildfire: engine closed")
	}

	for _, ti := range e.indexSet() {
		if ti.name == spec.Name {
			// Idempotent on an identical declaration, so a sharded
			// CreateIndex that failed partway can be retried: shards
			// that already built the index fall through here while the
			// stragglers backfill. The catalog is rewritten even here —
			// if the original attempt failed between publishing the
			// index and persisting the catalog, the retry must not
			// report success while leaving the index unrecoverable.
			if specEqual(ti.declared, spec.IndexSpec) {
				return e.writeCatalogLocked()
			}
			return fmt.Errorf("wildfire: table %s already has an index %q with a different spec", e.table.Name, spec.Name)
		}
	}

	// Wipe leftovers of an interrupted earlier build: the index is not in
	// the set (nor the catalog), so any objects under its prefix are a
	// partial build with no readers.
	prefix := IndexStoragePrefix(e.table.Name, spec.Name)
	if stale, err := e.store.List(prefix + "/"); err == nil {
		for _, n := range stale {
			_ = e.store.Delete(n)
		}
	}

	ti, err := e.openTableIndex(spec.Name, spec.IndexSpec)
	if err != nil {
		return err
	}

	// Backfill the post-groomed zone: every record version in a published
	// post-groomed block, as one bootstrap run.
	if maxPSN := types.PSN(e.maxPSN.Load()); maxPSN > 0 {
		e.postListMu.Lock()
		postIDs := append([]uint64(nil), e.postBlocks...)
		e.postListMu.Unlock()
		entries, err := e.entriesFromBlocks(ti, types.ZonePostGroomed, postIDs)
		if err != nil {
			ti.idx.Close()
			return err
		}
		if err := ti.idx.BootstrapPostZone(maxPSN, entries, e.consumedHi.Load()); err != nil {
			ti.idx.Close()
			return err
		}
	}

	// Backfill the groomed zone: one run per pending groomed block, in
	// groom order (BuildRun prepends, so ascending builds yield the
	// newest-first list).
	e.pendingMu.Lock()
	pending := append([]uint64(nil), e.pending...)
	e.pendingMu.Unlock()
	for _, id := range pending {
		entries, err := e.entriesFromBlocks(ti, types.ZoneGroomed, []uint64{id})
		if err != nil {
			ti.idx.Close()
			return err
		}
		if err := ti.idx.BuildRun(entries, types.BlockRange{Min: id, Max: id}); err != nil {
			ti.idx.Close()
			return err
		}
	}

	// Publish: from here grooms, evolves, recovery and queries all see
	// the new index.
	cur := e.indexSet()
	set := make([]*tableIndex, 0, len(cur)+1)
	set = append(set, cur...)
	set = append(set, ti)
	e.indexes.Store(&set)
	if e.started.Load() {
		ti.idx.Start(e.maintEvery)
	}
	return e.writeCatalogLocked()
}

// entriesFromBlocks builds one index's entries for the listed data
// blocks of a zone, in block order.
func (e *Engine) entriesFromBlocks(ti *tableIndex, zone types.ZoneID, blockIDs []uint64) ([]run.Entry, error) {
	var entries []run.Entry
	nUser := len(e.table.Columns)
	for _, id := range blockIDs {
		var name string
		if zone == types.ZoneGroomed {
			name = groomedBlockName(e.table.Name, id)
		} else {
			name = postBlockName(e.table.Name, id)
		}
		blk, err := e.fetchBlock(context.Background(), name)
		if err != nil {
			return nil, fmt.Errorf("wildfire: indexing %s: %w", name, err)
		}
		for r := 0; r < blk.NumRows(); r++ {
			row := make(Row, nUser)
			for c := 0; c < nUser; c++ {
				row[c] = blk.Value(r, c)
			}
			beginTS := types.TS(blk.Value(r, nUser).Uint())
			rid := types.RID{Zone: zone, Block: id, Offset: uint32(r)}
			entry, err := ti.entryForRow(row, beginTS, rid)
			if err != nil {
				return nil, err
			}
			entries = append(entries, entry)
		}
	}
	return entries, nil
}
