package wildfire

import (
	"fmt"
	"math/rand"
	"testing"

	"umzi/internal/core"
	"umzi/internal/keyenc"
	"umzi/internal/types"
)

// TestShardedEquivalenceProperty drives a single Engine and a
// ShardedEngine(N=4) with the same random workload — upsert batches,
// lockstep grooms, post-grooms, index maintenance — and checks after
// every few rounds that scans, point lookups, batched lookups and
// index-only scans agree exactly, at the newest snapshot, at MaxTS and
// at randomly chosen historical groom boundaries. Sharding must be
// invisible to queries: it only changes where rows live.
//
// The comparison runs under both sharding layouts: device (scans pin to
// one shard) and msg (every scan scatters and sort-merges).
func TestShardedEquivalenceProperty(t *testing.T) {
	seeds := []int64{1, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, shardBy := range []string{"device", "msg"} {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("shardBy=%s/seed=%d", shardBy, seed), func(t *testing.T) {
				shardedEquivalence(t, shardBy, seed)
			})
		}
	}
}

func shardedEquivalence(t *testing.T, shardBy string, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	td := iotTable()
	td.ShardKey = []string{shardBy}

	single := newTestEngine(t, func(c *Config) { c.Table = td })
	sharded := newTestShardedEngine(t, 4, func(c *ShardedConfig) { c.Table = td })

	const devices, msgs = 5, 8
	var boundaries []types.TS // per lockstep groom round

	// upsertBoth applies one committed batch to both systems in the same
	// order through the same replica. Same-key updates land on the same
	// shard, so relative commit order — and therefore last-writer-wins —
	// is preserved on both sides.
	upsertBoth := func(rows []Row, replica int) {
		if err := single.UpsertRows(replica, rows...); err != nil {
			t.Fatal(err)
		}
		if err := sharded.UpsertRows(replica, rows...); err != nil {
			t.Fatal(err)
		}
	}

	groomBoth := func() {
		n1, err := single.GroomCount()
		if err != nil {
			t.Fatal(err)
		}
		n2, err := sharded.GroomCount()
		if err != nil {
			t.Fatal(err)
		}
		if n1 != n2 {
			t.Fatalf("groomed %d records single, %d sharded", n1, n2)
		}
		b1, b2 := single.LastGroomTS(), sharded.SnapshotTS()
		if b1 != b2 {
			t.Fatalf("snapshot boundaries diverged: single %v, sharded %v", b1, b2)
		}
		boundaries = append(boundaries, b1)
	}

	postGroomBoth := func() {
		if _, err := single.PostGroom(); err != nil {
			t.Fatal(err)
		}
		if err := single.SyncIndex(); err != nil {
			t.Fatal(err)
		}
		if err := sharded.PostGroom(); err != nil {
			t.Fatal(err)
		}
		if err := sharded.SyncIndex(); err != nil {
			t.Fatal(err)
		}
	}

	maintainBoth := func() {
		if _, err := single.Index().MaintainOnce(); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.MaintainOnce(); err != nil {
			t.Fatal(err)
		}
	}

	// rowsEqual compares records by user-row values and beginTS. RIDs and
	// zones legitimately differ (independent grooming pipelines); beginTS
	// groom cycles align because grooms are lockstep, but the commit-seq
	// part is per-shard, so only the cycle part is compared.
	recEqual := func(a, b Record) bool {
		if len(a.Row) != len(b.Row) {
			return false
		}
		for i := range a.Row {
			if keyenc.Compare(a.Row[i], b.Row[i]) != 0 {
				return false
			}
		}
		return a.BeginTS.GroomSeq() == b.BeginTS.GroomSeq()
	}

	checkAt := func(ts types.TS, label string) {
		opts := QueryOptions{TS: ts}
		// Per-device scans: full range plus a random sub-range.
		for dev := int64(0); dev < devices; dev++ {
			eq := []keyenc.Value{keyenc.I64(dev)}
			lo := rng.Int63n(msgs)
			hi := lo + rng.Int63n(msgs-lo)
			for _, bounds := range [][2][]keyenc.Value{
				{nil, nil},
				{{keyenc.I64(lo)}, {keyenc.I64(hi)}},
			} {
				want, err := single.Scan(eq, bounds[0], bounds[1], opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sharded.Scan(eq, bounds[0], bounds[1], opts)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s dev %d: sharded scan %d rows, single %d", label, dev, len(got), len(want))
				}
				for i := range want {
					if !recEqual(want[i], got[i]) {
						t.Fatalf("%s dev %d row %d: sharded %v@%v, single %v@%v",
							label, dev, i, got[i].Row, got[i].BeginTS, want[i].Row, want[i].BeginTS)
					}
				}
			}
			// Index-only scans agree value-for-value.
			wantRows, err := single.IndexOnlyScan(eq, nil, nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			gotRows, err := sharded.IndexOnlyScan(eq, nil, nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotRows) != len(wantRows) {
				t.Fatalf("%s dev %d: index-only %d vs %d rows", label, dev, len(gotRows), len(wantRows))
			}
			for i := range wantRows {
				for c := range wantRows[i] {
					if keyenc.Compare(wantRows[i][c], gotRows[i][c]) != 0 {
						t.Fatalf("%s dev %d index-only row %d col %d: %v vs %v",
							label, dev, i, c, gotRows[i][c], wantRows[i][c])
					}
				}
			}
		}
		// Point lookups over the whole key space, hits and misses.
		for dev := int64(0); dev < devices+1; dev++ {
			for msg := int64(0); msg < msgs+1; msg++ {
				eq, sortv := key(dev, msg)
				wr, wf, err := single.Get(eq, sortv, opts)
				if err != nil {
					t.Fatal(err)
				}
				gr, gf, err := sharded.Get(eq, sortv, opts)
				if err != nil {
					t.Fatal(err)
				}
				if wf != gf {
					t.Fatalf("%s get (%d,%d): found %v vs %v", label, dev, msg, gf, wf)
				}
				if wf && !recEqual(wr, gr) {
					t.Fatalf("%s get (%d,%d): %v vs %v", label, dev, msg, gr.Row, wr.Row)
				}
			}
		}
		// A batched lookup mixing hits and misses.
		var keys []core.LookupKey
		for i := 0; i < 16; i++ {
			keys = append(keys, core.LookupKey{
				Equality: []keyenc.Value{keyenc.I64(rng.Int63n(devices + 2))},
				Sort:     []keyenc.Value{keyenc.I64(rng.Int63n(msgs + 2))},
			})
		}
		wrecs, wfound, err := single.GetBatch(keys, opts)
		if err != nil {
			t.Fatal(err)
		}
		grecs, gfound, err := sharded.GetBatch(keys, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range keys {
			if wfound[i] != gfound[i] {
				t.Fatalf("%s batch[%d]: found %v vs %v", label, i, gfound[i], wfound[i])
			}
			if wfound[i] && !recEqual(wrecs[i], grecs[i]) {
				t.Fatalf("%s batch[%d]: %v vs %v", label, i, grecs[i].Row, wrecs[i].Row)
			}
		}
	}

	for round := 0; round < 30; round++ {
		// One committed batch per round (1..3·devices upserts, skewed to
		// recent devices so updates and inserts mix).
		n := 1 + rng.Intn(3*devices)
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = row(rng.Int63n(devices), rng.Int63n(msgs), float64(rng.Int63n(1<<20)), 100+rng.Int63n(3))
		}
		upsertBoth(rows, rng.Intn(2))
		groomBoth()

		switch rng.Intn(4) {
		case 0:
			postGroomBoth()
		case 1:
			maintainBoth()
		}

		if round%5 == 4 {
			checkAt(sharded.SnapshotTS(), fmt.Sprintf("round %d snapshot", round))
			checkAt(types.MaxTS, fmt.Sprintf("round %d max", round))
			if len(boundaries) > 1 {
				b := boundaries[rng.Intn(len(boundaries))]
				checkAt(b, fmt.Sprintf("round %d boundary %v", round, b))
			}
		}
	}
	postGroomBoth()
	maintainBoth()
	checkAt(types.MaxTS, "final")
}
