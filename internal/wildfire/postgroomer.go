package wildfire

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"umzi/internal/columnar"
	"umzi/internal/keyenc"
	"umzi/internal/types"
)

// PostGroom performs one post-groom operation (§2.1): it takes every
// groomed block not yet post-groomed, uses the post-groomed portion of
// the index to collect the RIDs of the already-post-groomed records that
// the new records replace, sets prevRID on the new copies and endTS on
// the replaced ones, re-organizes the records by partition key into
// larger post-groomed blocks, and publishes the operation's metadata
// under the next PSN for the indexer to pick up asynchronously
// (Figure 5). It returns the PSN published, or 0 when there was nothing
// to post-groom.
//
// Version chains within the batch are resolved locally: when several
// versions of one key migrate together, each points at its in-batch
// predecessor's new RID and carries the matching endTS directly in the
// block. Only the oldest in-batch version consults the index, and only
// its replaced predecessor — living in an older, immutable post-groomed
// block — needs the endTS sidecar (shared storage forbids in-place
// updates; Wildfire versions this metadata similarly).
func (e *Engine) PostGroom() (types.PSN, error) {
	if e.closed.Load() {
		return 0, fmt.Errorf("wildfire: engine closed")
	}
	e.postMu.Lock()
	defer e.postMu.Unlock()

	// The prevRID lookups below read the post-groomed index portion, so
	// earlier post-grooms must be indexed first (the indexer applies
	// evolves in PSN order; see §5.4).
	if err := e.SyncIndex(); err != nil {
		return 0, err
	}

	// The batch is a snapshot of pending, consumed only at commit: a
	// post-groom that fails partway leaves pending untouched and the
	// next operation retries the same batch. Grooms append to pending
	// concurrently; those blocks are not part of this batch and survive
	// the commit's prefix removal.
	e.pendingMu.Lock()
	blocks := append([]uint64(nil), e.pending...)
	e.pendingMu.Unlock()
	if len(blocks) == 0 {
		return 0, nil
	}
	lo, hi := blocks[0], blocks[len(blocks)-1]

	psn := types.PSN(e.maxPSN.Load() + 1)

	// Pass 1: read the groomed blocks and bucket rows by partition key,
	// remembering each row's destination.
	type rowVersion struct {
		row     Row
		beginTS types.TS
		prevRID types.RID
		endTS   types.TS
		bucket  int
		offset  int
	}
	buckets := make([][]*rowVersion, e.partitions)
	byKey := map[string][]*rowVersion{}

	for _, id := range blocks {
		blk, err := e.fetchBlock(context.Background(), groomedBlockName(e.table.Name, id))
		if err != nil {
			return 0, fmt.Errorf("wildfire: post-groom reading block %d: %w", id, err)
		}
		nUser := len(e.table.Columns)
		for r := 0; r < blk.NumRows(); r++ {
			row := make(Row, nUser)
			for c := 0; c < nUser; c++ {
				row[c] = blk.Value(r, c)
			}
			rv := &rowVersion{
				row:     row,
				beginTS: types.TS(blk.Value(r, nUser).Uint()),
				endTS:   types.MaxTS,
			}
			rv.bucket = e.partitionOf(row)
			rv.offset = len(buckets[rv.bucket])
			buckets[rv.bucket] = append(buckets[rv.bucket], rv)
			pk := e.table.pkEncoding(row)
			byKey[pk] = append(byKey[pk], rv)
		}
	}

	// Allocate the new block IDs so in-batch RIDs are known up front.
	blockID := make([]uint64, e.partitions)
	for b := range buckets {
		if len(buckets[b]) > 0 {
			blockID[b] = e.postBlockSeq.Add(1)
		}
	}
	newRID := func(rv *rowVersion) types.RID {
		return types.RID{Zone: types.ZonePostGroomed, Block: blockID[rv.bucket], Offset: uint32(rv.offset)}
	}

	// Pass 2: resolve version chains. Versions of one key are in beginTS
	// order within the batch (grooms assign monotonic beginTS and blocks
	// were read oldest-first). prevRID lookups go through the primary
	// index: only it maps a primary key to the row's post-groomed RID.
	primary := e.indexSet()[0]
	var endTSUpdates []endTSUpdate
	for _, chain := range byKey {
		sort.Slice(chain, func(i, j int) bool { return chain[i].beginTS < chain[j].beginTS })
		for i, rv := range chain {
			if i > 0 {
				prev := chain[i-1]
				rv.prevRID = newRID(prev)
				prev.endTS = rv.beginTS
				continue
			}
			// Oldest in-batch version: its predecessor, if any, lives in
			// an older post-groomed block (§2.1).
			if rv.beginTS == 0 {
				continue
			}
			prev, found, err := e.idx.PointLookupPostGroomed(primary.rowEq(rv.row), primary.rowSort(rv.row), rv.beginTS-1)
			if err != nil {
				return 0, err
			}
			if found {
				rv.prevRID = prev.RID
				endTSUpdates = append(endTSUpdates, endTSUpdate{rid: prev.RID, ts: rv.beginTS})
			}
		}
	}

	// Pass 3: write one post-groomed block per non-empty partition
	// bucket; they are larger than groomed blocks, which is the point
	// (§2.1: less frequent post-grooms produce bigger blocks that read
	// better from shared storage).
	schema, err := e.table.blockSchema()
	if err != nil {
		return 0, err
	}
	var writtenIDs []uint64
	for b, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		builder := columnar.NewBuilder(schema)
		builder.AddBloom(e.bloomOrdinals()...)
		for _, rv := range bucket {
			full := append(append(Row{}, rv.row...),
				keyenc.U64(uint64(rv.beginTS)),
				keyenc.U64(uint64(rv.endTS)),
				keyenc.Raw(types.EncodeRID(nil, rv.prevRID)),
			)
			if err := builder.Append(full); err != nil {
				return 0, err
			}
		}
		blk := builder.Build()
		if err := e.store.Put(postBlockName(e.table.Name, blockID[b]), blk.Marshal()); err != nil {
			return 0, err
		}
		e.cacheBlock(postBlockName(e.table.Name, blockID[b]), blk)
		writtenIDs = append(writtenIDs, blockID[b])
	}

	// Persist the endTS sidecar (no in-place updates on shared storage).
	if len(endTSUpdates) > 0 {
		if err := e.store.Put(endTSName(e.table.Name, psn), encodeEndTSSidecar(endTSUpdates)); err != nil {
			return 0, err
		}
		e.endTSMu.Lock()
		for _, u := range endTSUpdates {
			e.endTS[u.rid] = u.ts
		}
		e.endTSMu.Unlock()
	}

	// Publish the PSN metadata and bump MaxPSN — the indexer polls it.
	meta := encodePSNMeta(lo, hi, writtenIDs)
	if err := e.store.Put(psnMetaName(e.table.Name, psn), meta); err != nil {
		return 0, err
	}
	e.maxPSN.Store(uint64(psn))
	e.consumedHi.Store(hi)
	// Commit for the analytical executor: publish the written post
	// blocks first, then consume the migrated groomed blocks from
	// pending. The executor snapshots pending before postBlocks, so
	// with this write order a snapshot that misses the batch in pending
	// is guaranteed to find it in postBlocks — seen at least once,
	// transiently possibly twice, and the duplicate is harmless: both
	// copies of a version carry the same key and beginTS and reconcile
	// identically in the executor's winner map.
	e.postListMu.Lock()
	e.postBlocks = append(e.postBlocks, writtenIDs...)
	e.postListMu.Unlock()
	e.pendingMu.Lock()
	e.pending = e.pending[len(blocks):]
	e.pendingMu.Unlock()
	return psn, nil
}

// partitionOf buckets a row by its partition key (hash partitioning); a
// table without a partition key lands everything in bucket 0.
func (e *Engine) partitionOf(row Row) int {
	if e.table.PartitionKey == "" || e.partitions <= 1 {
		return 0
	}
	v := row[e.table.colIndex(e.table.PartitionKey)]
	h := keyenc.HashValues([]keyenc.Value{v})
	return int(h % uint64(e.partitions))
}

// endTSUpdate is one sidecar entry: the version at rid was replaced at ts.
type endTSUpdate struct {
	rid types.RID
	ts  types.TS
}

// Sidecar wire format: magic "UMZIENDT", u32 count, then per entry the
// 13-byte RID and the u64 endTS.
const endTSMagic = "UMZIENDT"

func encodeEndTSSidecar(updates []endTSUpdate) []byte {
	out := make([]byte, 0, 8+4+len(updates)*(types.RIDSize+8))
	out = append(out, endTSMagic...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(updates)))
	for _, u := range updates {
		out = types.EncodeRID(out, u.rid)
		out = binary.BigEndian.AppendUint64(out, uint64(u.ts))
	}
	return out
}

func decodeEndTSSidecar(data []byte, visit func(types.RID, types.TS)) {
	if len(data) < 12 || string(data[:8]) != endTSMagic {
		return
	}
	n := int(binary.BigEndian.Uint32(data[8:12]))
	off := 12
	for i := 0; i < n && off+types.RIDSize+8 <= len(data); i++ {
		rid, err := types.DecodeRID(data[off:])
		if err != nil {
			return
		}
		off += types.RIDSize
		visit(rid, types.TS(binary.BigEndian.Uint64(data[off:])))
		off += 8
	}
}

// PSN meta wire format: magic "UMZIPSNM", groomed range lo/hi u64, u32
// block count, block IDs u64 each.
const psnMagic = "UMZIPSNM"

func encodePSNMeta(lo, hi uint64, blocks []uint64) []byte {
	out := make([]byte, 0, 8+16+4+len(blocks)*8)
	out = append(out, psnMagic...)
	out = binary.BigEndian.AppendUint64(out, lo)
	out = binary.BigEndian.AppendUint64(out, hi)
	out = binary.BigEndian.AppendUint32(out, uint32(len(blocks)))
	for _, b := range blocks {
		out = binary.BigEndian.AppendUint64(out, b)
	}
	return out
}

func decodePSNMeta(data []byte) (lo, hi uint64, blocks []uint64, err error) {
	if len(data) < 28 || string(data[:8]) != psnMagic {
		return 0, 0, nil, fmt.Errorf("wildfire: bad PSN meta")
	}
	lo = binary.BigEndian.Uint64(data[8:16])
	hi = binary.BigEndian.Uint64(data[16:24])
	n := int(binary.BigEndian.Uint32(data[24:28]))
	off := 28
	for i := 0; i < n; i++ {
		if off+8 > len(data) {
			return 0, 0, nil, fmt.Errorf("wildfire: truncated PSN meta")
		}
		blocks = append(blocks, binary.BigEndian.Uint64(data[off:]))
		off += 8
	}
	return lo, hi, blocks, nil
}
