package wildfire

import (
	"testing"

	"umzi/internal/exec"
	"umzi/internal/keyenc"
	"umzi/internal/storage"
)

// Directed tests of the analytical executor: zone union, multi-version
// reconciliation under updates, the live-zone union, recovery of the
// post-block list, and limit pushdown in the sharded ordered scan. The
// randomized equivalence property lives in execute_prop_test.go.

func sumReadings(t *testing.T, eng interface {
	Execute(exec.Plan, QueryOptions) (*exec.Result, error)
}, p exec.Plan, opts QueryOptions) *exec.Result {
	t.Helper()
	res, err := eng.Execute(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExecuteAggregatesAcrossZones(t *testing.T) {
	e := newTestEngine(t, nil)

	// Cycle 1: devices 0..2, then post-groom so the rows live in the
	// post-groomed zone. Cycle 2 stays groomed. Cycle 3 stays live.
	for dev := int64(0); dev < 3; dev++ {
		if err := e.UpsertRows(0, row(dev, 1, 10, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PostGroom(); err != nil {
		t.Fatal(err)
	}
	if err := e.SyncIndex(); err != nil {
		t.Fatal(err)
	}
	for dev := int64(0); dev < 3; dev++ {
		if err := e.UpsertRows(0, row(dev, 2, 20, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	if err := e.UpsertRows(0, row(0, 3, 40, 2)); err != nil {
		t.Fatal(err)
	}

	plan := exec.Plan{Aggs: []exec.Agg{{Func: exec.Count}, {Func: exec.Sum, Col: "reading"}}}

	// Without the live zone: 3 post-groomed + 3 groomed rows.
	res := sumReadings(t, e, plan, QueryOptions{})
	if res.Rows[0][0].Int() != 6 || res.Rows[0][1].Float() != 90 {
		t.Fatalf("zones aggregate = %v, want count 6 sum 90", res.Rows[0])
	}
	// With it: the live row joins.
	res = sumReadings(t, e, plan, QueryOptions{IncludeLive: true})
	if res.Rows[0][0].Int() != 7 || res.Rows[0][1].Float() != 130 {
		t.Fatalf("live-union aggregate = %v, want count 7 sum 130", res.Rows[0])
	}
	// Grouped, filtered: readings >= 20 per day.
	res = sumReadings(t, e, exec.Plan{
		Filter:  exec.Ge("reading", keyenc.F64(20)),
		GroupBy: []string{"day"},
		Aggs:    []exec.Agg{{Func: exec.Count}, {Func: exec.Avg, Col: "reading"}},
	}, QueryOptions{IncludeLive: true})
	if len(res.Rows) != 2 {
		t.Fatalf("got %d groups, want 2: %v", len(res.Rows), res.Rows)
	}
	if res.Rows[0][0].Int() != 1 || res.Rows[0][1].Int() != 3 || res.Rows[0][2].Float() != 20 {
		t.Fatalf("day 1 group = %v", res.Rows[0])
	}
	if res.Rows[1][0].Int() != 2 || res.Rows[1][1].Int() != 1 || res.Rows[1][2].Float() != 40 {
		t.Fatalf("day 2 group = %v", res.Rows[1])
	}
}

// TestExecuteUpdateShadowing is the case a naive pushdown gets wrong: a
// key's old version matches the filter but its newest version does not,
// so the key must not appear — even though the newest version sits in a
// block the filter synopsis excludes (all its readings are out of
// range), and even when the newest version is still in the live zone.
func TestExecuteUpdateShadowing(t *testing.T) {
	e := newTestEngine(t, nil)

	// v1 of both keys matches reading < 50.
	if err := e.UpsertRows(0, row(1, 1, 10, 1), row(2, 1, 20, 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	firstTS := e.LastGroomTS()
	// v2 of key (1,1) does not match; the whole cycle-2 block is out of
	// the filter's range, so the executor prunes it by synopsis and must
	// still let it shadow v1.
	if err := e.UpsertRows(0, row(1, 1, 100, 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}

	plan := exec.Plan{
		Filter: exec.Lt("reading", keyenc.F64(50)),
		Aggs:   []exec.Agg{{Func: exec.Count}, {Func: exec.Sum, Col: "reading"}},
	}
	res := sumReadings(t, e, plan, QueryOptions{})
	if res.Rows[0][0].Int() != 1 || res.Rows[0][1].Float() != 20 {
		t.Fatalf("after groomed update: %v, want count 1 sum 20", res.Rows[0])
	}
	// Time travel: at the first groom boundary v1 is current again.
	res = sumReadings(t, e, plan, QueryOptions{TS: firstTS})
	if res.Rows[0][0].Int() != 2 || res.Rows[0][1].Float() != 30 {
		t.Fatalf("at first boundary: %v, want count 2 sum 30", res.Rows[0])
	}

	// A live update shadows key (2,1) when the live zone is included,
	// and is invisible without it.
	if err := e.UpsertRows(0, row(2, 1, 200, 1)); err != nil {
		t.Fatal(err)
	}
	res = sumReadings(t, e, plan, QueryOptions{})
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("live update leaked into groomed-only read: %v", res.Rows[0])
	}
	res = sumReadings(t, e, plan, QueryOptions{IncludeLive: true})
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 0 || res.Rows[0][1].Float() != 0 {
		t.Fatalf("live-shadowed read = %v, want the zero-count aggregate row", res.Rows)
	}
}

// TestExecuteRecoversPostBlocks checks that a reopened engine rebuilds
// the published post-block list from PSN metadata: post-groomed records
// must stay visible to the executor after a restart.
func TestExecuteRecoversPostBlocks(t *testing.T) {
	cfg := Config{
		Table: iotTable(),
		Index: iotIndex(),
		Store: storage.NewMemStore(storage.LatencyModel{}),
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for dev := int64(0); dev < 4; dev++ {
		if err := e.UpsertRows(0, row(dev, 1, float64(dev), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PostGroom(); err != nil {
		t.Fatal(err)
	}
	if err := e.SyncIndex(); err != nil {
		t.Fatal(err)
	}
	// One more groomed-but-not-post-groomed cycle.
	if err := e.UpsertRows(0, row(9, 1, 9, 2)); err != nil {
		t.Fatal(err)
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	res, err := e2.Execute(exec.Plan{Aggs: []exec.Agg{{Func: exec.Count}, {Func: exec.Sum, Col: "reading"}}}, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 5 || res.Rows[0][1].Float() != 0+1+2+3+9 {
		t.Fatalf("recovered aggregate = %v, want count 5 sum 15", res.Rows[0])
	}
}

func TestExecuteErrors(t *testing.T) {
	s := newTestShardedEngine(t, 2, nil)
	if _, err := s.Execute(exec.Plan{Filter: exec.Eq("nope", keyenc.I64(1))}, QueryOptions{}); err == nil {
		t.Fatal("bad plan accepted by sharded Execute")
	}
	e := newTestEngine(t, nil)
	if _, err := e.Execute(exec.Plan{GroupBy: []string{"day"}}, QueryOptions{}); err == nil {
		t.Fatal("bad plan accepted by Execute")
	}
}

// TestShardedScanLimit checks limit pushdown: a limited ordered scan
// returns exactly the global prefix of the unlimited scan, and each
// shard materializes at most Limit rows.
func TestShardedScanLimit(t *testing.T) {
	s := newTestShardedEngine(t, 4, func(c *ShardedConfig) { c.Table = msgShardedTable() })
	const msgs = 40
	for m := int64(0); m < msgs; m++ {
		if err := s.UpsertRows(0, row(7, m, float64(m), 1)); err != nil {
			t.Fatal(err)
		}
		if m%10 == 9 {
			if err := s.Groom(); err != nil {
				t.Fatal(err)
			}
		}
	}
	eq := []keyenc.Value{keyenc.I64(7)}
	full, err := s.Scan(eq, nil, nil, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != msgs {
		t.Fatalf("full scan returned %d rows, want %d", len(full), msgs)
	}
	for _, limit := range []int{1, 7, msgs, msgs + 5} {
		got, err := s.Scan(eq, nil, nil, QueryOptions{Limit: limit})
		if err != nil {
			t.Fatal(err)
		}
		want := limit
		if want > msgs {
			want = msgs
		}
		if len(got) != want {
			t.Fatalf("limit %d: got %d rows", limit, len(got))
		}
		for i := range got {
			if keyenc.Compare(got[i].Row[1], full[i].Row[1]) != 0 {
				t.Fatalf("limit %d row %d: msg %v, want %v", limit, i, got[i].Row[1], full[i].Row[1])
			}
		}
		// Index-only scans honor the limit identically.
		ir, err := s.IndexOnlyScan(eq, nil, nil, QueryOptions{Limit: limit})
		if err != nil {
			t.Fatal(err)
		}
		if len(ir) != want {
			t.Fatalf("limit %d: index-only returned %d rows", limit, len(ir))
		}
		// Unordered scans return some Limit rows.
		ur, err := s.ScanUnordered(eq, nil, nil, QueryOptions{Limit: limit})
		if err != nil {
			t.Fatal(err)
		}
		if len(ur) != want {
			t.Fatalf("limit %d: unordered returned %d rows", limit, len(ur))
		}
	}
	// The per-shard scans saw the limit too: a 1-row limit must not make
	// any shard return its full partition.
	one, err := s.Shard(0).Scan(eq, nil, nil, QueryOptions{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) > 1 {
		t.Fatalf("shard-local limited scan returned %d rows", len(one))
	}

	// The analytical executor honors QueryOptions.Limit as well, taking
	// the tighter of it and the plan's own limit.
	for _, c := range []struct {
		planLimit, optsLimit, want int
	}{{0, 7, 7}, {7, 0, 7}, {3, 7, 3}, {7, 3, 3}} {
		res, err := s.Execute(
			exec.Plan{Columns: []string{"msg"}, Limit: c.planLimit},
			QueryOptions{Limit: c.optsLimit})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != c.want {
			t.Fatalf("Execute plan limit %d, opts limit %d: %d rows, want %d",
				c.planLimit, c.optsLimit, len(res.Rows), c.want)
		}
	}
}
