package wildfire

import (
	"sync"
	"sync/atomic"
	"testing"

	"umzi/internal/keyenc"
)

func TestGateBasics(t *testing.T) {
	var g queryGate
	e := g.enter()
	if e != 0 {
		t.Fatalf("first epoch = %d", e)
	}
	// Cannot advance past an active reader of the current epoch twice:
	// one advance is allowed (it checks the PREVIOUS epoch's slot).
	if !g.tryAdvance() {
		t.Fatal("advance 0->1 should succeed (epoch -1 slot is empty)")
	}
	if g.tryAdvance() {
		t.Fatal("advance 1->2 must wait for the epoch-0 reader")
	}
	g.exit(e)
	if !g.tryAdvance() {
		t.Fatal("advance 1->2 should succeed after reader exit")
	}
	if g.current() != 2 {
		t.Fatalf("epoch = %d, want 2", g.current())
	}
}

func TestGateReclamationSafety(t *testing.T) {
	// An item tagged at epoch T is reclaimable when current >= T+2. Verify
	// a reader that entered before tagging always blocks reclamation.
	var g queryGate
	reader := g.enter() // epoch 0 reader
	tag := g.current()  // item tagged at epoch 0

	g.tryAdvance() // -> 1
	if g.current() >= tag+2 {
		t.Fatal("reclaimed while the pre-tag reader is still active")
	}
	// Stuck: epoch can't reach 2 until the reader exits.
	for i := 0; i < 3; i++ {
		g.tryAdvance()
	}
	if g.current() >= tag+2 {
		t.Fatal("epoch advanced past an active reader")
	}
	g.exit(reader)
	g.tryAdvance()
	if g.current() < tag+2 {
		t.Fatalf("epoch = %d, want >= %d after reader drain", g.current(), tag+2)
	}
}

func TestGateConcurrent(t *testing.T) {
	var g queryGate
	var wg sync.WaitGroup
	var stop atomic.Bool

	// Readers enter/exit in tight loops.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				e := g.enter()
				g.exit(e)
			}
		}()
	}
	// Reclaimer advances continuously.
	advanced := 0
	for i := 0; i < 200_000; i++ {
		if g.tryAdvance() {
			advanced++
		}
	}
	stop.Store(true)
	wg.Wait()
	if advanced == 0 {
		t.Fatal("gate never advanced under concurrent readers")
	}
	// After all readers exit, both slots must be drained.
	g.tryAdvance()
	g.tryAdvance()
	for s := 0; s < 2; s++ {
		if n := g.active[s].Load(); n != 0 {
			t.Fatalf("slot %d left with %d registrations", s, n)
		}
	}
}

func TestUpdateSkewedEngineWorkload(t *testing.T) {
	// Integration of the Figure 13 ingredients at test scale: update-heavy
	// ingest with post-grooms; every key's newest version must win.
	e := newTestEngine(t, nil)
	latest := map[[2]int64]float64{}
	for c := 0; c < 8; c++ {
		for i := 0; i < 20; i++ {
			dev := int64(i % 4)
			m := int64((c*3 + i) % 10) // heavy overlap across cycles
			val := float64(c*100 + i)
			if err := e.UpsertRows(i%2, row(dev, m, val, 100)); err != nil {
				t.Fatal(err)
			}
			latest[[2]int64{dev, m}] = val
		}
		if err := e.Groom(); err != nil {
			t.Fatal(err)
		}
		if c%3 == 2 {
			if _, err := e.PostGroom(); err != nil {
				t.Fatal(err)
			}
			if err := e.SyncIndex(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for k, want := range latest {
		eq, sortv := key(k[0], k[1])
		rec, found, err := e.Get(eq, sortv, QueryOptions{})
		if err != nil || !found {
			t.Fatalf("(%d,%d): %v %v", k[0], k[1], err, found)
		}
		if rec.Row[2].Float() != want {
			t.Errorf("(%d,%d): reading %v, want %v", k[0], k[1], rec.Row[2].Float(), want)
		}
	}
}

func TestIndexOnlyScanMatchesScan(t *testing.T) {
	e := newTestEngine(t, nil)
	for i := 0; i < 30; i++ {
		if err := e.UpsertRows(0, row(1, int64(i), float64(i)*1.5, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	full, err := e.Scan([]keyenc.Value{keyenc.I64(1)}, nil, nil, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ixOnly, err := e.IndexOnlyScan([]keyenc.Value{keyenc.I64(1)}, nil, nil, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(ixOnly) {
		t.Fatalf("scan %d rows, index-only %d", len(full), len(ixOnly))
	}
	for i := range full {
		if full[i].Row[1].Int() != ixOnly[i][1].Int() || full[i].Row[2].Float() != ixOnly[i][2].Float() {
			t.Errorf("row %d diverges between scan and index-only scan", i)
		}
	}
}
