package wildfire

import (
	"sync"
	"sync/atomic"
	"testing"

	"umzi/internal/exec"
	"umzi/internal/keyenc"
)

// TestExecuteConcurrentWithMaintenance races analytical queries against
// ingest, lockstep grooming, post-grooming and index maintenance on a
// 4-shard engine. The invariant under test is the executor's zone
// snapshot: however a query interleaves with a post-groom — which moves
// records from pending groomed blocks into post-groomed blocks — it
// must see every key exactly once (COUNT never exceeds the key space,
// and per-device counts never exceed the per-device key space). Run
// with -race to exercise the memory model.
func TestExecuteConcurrentWithMaintenance(t *testing.T) {
	s := newTestShardedEngine(t, 4, nil)
	const devices, msgs = 4, 24

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	// Writer: every key exactly once, then repeated updates (same key
	// space, new readings) so queries race with version churn too.
	var workers sync.WaitGroup
	workers.Add(1)
	go func() {
		defer workers.Done()
		for pass := 0; pass < 3 && !stop.Load(); pass++ {
			for dev := int64(0); dev < devices; dev++ {
				for msg := int64(0); msg < msgs; msg++ {
					if err := s.UpsertRows(0, row(dev, msg, float64(pass*1000), 100)); err != nil {
						report(err)
						return
					}
				}
			}
		}
	}()

	// Maintenance: lockstep grooms with periodic post-grooms + sync.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if err := s.Groom(); err != nil {
				report(err)
				return
			}
			if i%3 == 2 {
				if err := s.PostGroom(); err != nil {
					report(err)
					return
				}
				if err := s.SyncIndex(); err != nil {
					report(err)
					return
				}
			}
		}
	}()

	countPlan := exec.Plan{Aggs: []exec.Agg{{Func: exec.Count}}}
	perDevice := exec.Plan{
		Filter:  exec.Lt("device", keyenc.I64(devices)),
		GroupBy: []string{"device"},
		Aggs:    []exec.Agg{{Func: exec.Count}, {Func: exec.Max, Col: "msg"}},
	}
	for r := 0; r < 3; r++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 200 && !stop.Load(); i++ {
				opts := QueryOptions{IncludeLive: i%2 == 0}
				res, err := s.Execute(countPlan, opts)
				if err != nil {
					report(err)
					return
				}
				if len(res.Rows) > 0 && res.Rows[0][0].Int() > devices*msgs {
					t.Errorf("COUNT saw %d rows, key space is %d (duplicated version)",
						res.Rows[0][0].Int(), devices*msgs)
					return
				}
				grouped, err := s.Execute(perDevice, opts)
				if err != nil {
					report(err)
					return
				}
				for _, g := range grouped.Rows {
					if g[1].Int() > msgs {
						t.Errorf("device %v: %d rows, key space is %d", g[0], g[1].Int(), msgs)
						return
					}
					if g[2].Int() >= msgs {
						t.Errorf("device %v: max msg %d out of range", g[0], g[2].Int())
						return
					}
				}
			}
		}()
	}

	// The writer and readers run to completion; the maintenance loop
	// stops once they are done.
	workers.Wait()
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Quiesced: the final count must equal the key space exactly.
	if err := s.Groom(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Execute(countPlan, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != devices*msgs {
		t.Fatalf("final COUNT = %v, want %d", res.Rows, devices*msgs)
	}
}
