package wildfire

import (
	"fmt"
	"math/rand"
	"testing"

	"umzi/internal/columnar"
	"umzi/internal/exec"
	"umzi/internal/keyenc"
	"umzi/internal/storage"
)

// ordersTable is the secondary-index test table: a point-lookup-friendly
// primary key plus low- and mid-cardinality non-key columns.
func ordersTestTable() TableDef {
	return TableDef{
		Name: "orders",
		Columns: []columnar.Column{
			{Name: "id", Kind: keyenc.KindInt64},
			{Name: "region", Kind: keyenc.KindString},
			{Name: "status", Kind: keyenc.KindInt64},
			{Name: "amount", Kind: keyenc.KindInt64},
		},
		PrimaryKey: []string{"id"},
		ShardKey:   []string{"id"},
	}
}

func ordersPrimary() IndexSpec {
	return IndexSpec{Equality: []string{"id"}, HashBits: 6}
}

func byRegion() SecondaryIndexSpec {
	return SecondaryIndexSpec{
		Name:      "by_region",
		IndexSpec: IndexSpec{Equality: []string{"region"}, Included: []string{"amount"}, HashBits: 4},
	}
}

func byStatusAmount() SecondaryIndexSpec {
	return SecondaryIndexSpec{
		Name:      "by_status_amount",
		IndexSpec: IndexSpec{Equality: []string{"status"}, Sort: []string{"amount"}, HashBits: 4},
	}
}

func newOrdersEngine(t *testing.T, mutate func(*Config)) *Engine {
	t.Helper()
	cfg := Config{
		Table:       ordersTestTable(),
		Index:       ordersPrimary(),
		Secondaries: []SecondaryIndexSpec{byRegion(), byStatusAmount()},
		Store:       storage.NewMemStore(storage.LatencyModel{}),
	}
	cfg.IndexTuning.K = 2
	cfg.IndexTuning.GroomedLevels = 3
	cfg.IndexTuning.PostGroomedLevels = 2
	cfg.IndexTuning.BlockSize = 1024
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func orderRow(id int64, region string, status, amount int64) Row {
	return Row{keyenc.I64(id), keyenc.Str(region), keyenc.I64(status), keyenc.I64(amount)}
}

var testRegions = []string{"amer", "emea", "apac"}

// shadowOrders is the naive reference: primary key -> newest row.
type shadowOrders map[int64]Row

func (s shadowOrders) byRegion(region string) map[int64]Row {
	out := map[int64]Row{}
	for id, r := range s {
		if string(r[1].Bytes()) == region {
			out[id] = r
		}
	}
	return out
}

func (s shadowOrders) byStatusAmount(status, lo, hi int64) map[int64]Row {
	out := map[int64]Row{}
	for id, r := range s {
		if r[2].Int() == status && r[3].Int() >= lo && r[3].Int() <= hi {
			out[id] = r
		}
	}
	return out
}

func recordsToMap(t *testing.T, recs []Record) map[int64]Row {
	t.Helper()
	out := map[int64]Row{}
	for _, rec := range recs {
		id := rec.Row[0].Int()
		if _, dup := out[id]; dup {
			t.Fatalf("duplicate id %d in secondary scan result", id)
		}
		out[id] = rec.Row
	}
	return out
}

func sameRows(t *testing.T, what string, got, want map[int64]Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", what, len(got), len(want))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("%s: missing id %d", what, id)
		}
		for c := range w {
			if keyenc.Compare(g[c], w[c]) != 0 {
				t.Fatalf("%s: id %d column %d = %v, want %v", what, id, c, g[c], w[c])
			}
		}
	}
}

// TestSecondaryStaleEntrySuppression is the core multi-version secondary
// semantics: updating a row's secondary-key column must remove it from
// queries on the old value at the current snapshot, while time-travel
// reads at an older snapshot still see it there.
func TestSecondaryStaleEntrySuppression(t *testing.T) {
	e := newOrdersEngine(t, nil)
	if err := e.UpsertRows(0, orderRow(1, "amer", 0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	tsOld := e.LastGroomTS()
	if err := e.UpsertRows(0, orderRow(1, "emea", 1, 150)); err != nil {
		t.Fatal(err)
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}

	stages := []struct {
		name string
		prep func() error
	}{
		{"groomed-only", func() error { return nil }},
		{"post-groomed", func() error {
			if _, err := e.PostGroom(); err != nil {
				return err
			}
			return e.SyncIndex()
		}},
	}
	for _, st := range stages {
		if err := st.prep(); err != nil {
			t.Fatal(err)
		}
		recs, err := e.ScanOn("by_region", []keyenc.Value{keyenc.Str("amer")}, nil, nil, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 0 {
			t.Fatalf("%s: region amer returned %d rows after the row moved to emea", st.name, len(recs))
		}
		recs, err = e.ScanOn("by_region", []keyenc.Value{keyenc.Str("emea")}, nil, nil, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || recs[0].Row[3].Int() != 150 {
			t.Fatalf("%s: region emea = %v, want the updated row", st.name, recs)
		}
		// Time travel: at the old snapshot the row was still in amer.
		recs, err = e.ScanOn("by_region", []keyenc.Value{keyenc.Str("amer")}, nil, nil, QueryOptions{TS: tsOld})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || recs[0].Row[3].Int() != 100 {
			t.Fatalf("%s: region amer at old TS = %v, want the original row", st.name, recs)
		}
	}
}

// TestSecondaryPropertyVsNaive drives a random multi-version workload
// through every pipeline stage and cross-checks secondary point, range
// and covered queries against a scan-filter reference after each round.
func TestSecondaryPropertyVsNaive(t *testing.T) {
	e := newOrdersEngine(t, nil)
	rng := rand.New(rand.NewSource(42))
	shadow := shadowOrders{}

	verify := func(round int) {
		t.Helper()
		// Point/range queries on both secondaries against the reference.
		for _, region := range testRegions {
			eq := []keyenc.Value{keyenc.Str(region)}
			recs, err := e.ScanOn("by_region", eq, nil, nil, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			sameRows(t, fmt.Sprintf("round %d region %s", round, region), recordsToMap(t, recs), shadow.byRegion(region))

			// Covered query: the by_region index carries region (eq), id
			// (pk uniquifier) and amount (included) — enough to answer
			// without touching a data block.
			rows, err := e.IndexOnlyScanOn("by_region", eq, nil, nil, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			want := shadow.byRegion(region)
			if len(rows) != len(want) {
				t.Fatalf("round %d covered region %s: %d rows, want %d", round, region, len(rows), len(want))
			}
			for _, row := range rows {
				// Layout: region (eq), id (sort uniquifier), amount (incl).
				id := row[1].Int()
				w, ok := want[id]
				if !ok {
					t.Fatalf("round %d covered region %s: unexpected id %d", round, region, id)
				}
				if row[2].Int() != w[3].Int() {
					t.Fatalf("round %d covered region %s id %d: amount %d, want %d", round, region, id, row[2].Int(), w[3].Int())
				}
			}
		}
		for status := int64(0); status < 3; status++ {
			lo, hi := int64(200), int64(700)
			recs, err := e.ScanOn("by_status_amount",
				[]keyenc.Value{keyenc.I64(status)},
				[]keyenc.Value{keyenc.I64(lo)}, []keyenc.Value{keyenc.I64(hi)}, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			sameRows(t, fmt.Sprintf("round %d status %d", round, status), recordsToMap(t, recs), shadow.byStatusAmount(status, lo, hi))
		}
		// Point GetOn through the status index.
		for id, w := range shadow {
			if rng.Intn(8) != 0 {
				continue
			}
			rec, found, err := e.GetOn("by_status_amount",
				[]keyenc.Value{w[2]}, []keyenc.Value{w[3]}, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !found {
				t.Fatalf("round %d: GetOn(status=%d, amount=%d) found nothing (id %d expected)", round, w[2].Int(), w[3].Int(), id)
			}
			if rec.Row[2].Int() != w[2].Int() || rec.Row[3].Int() != w[3].Int() {
				t.Fatalf("round %d: GetOn returned %v, want status/amount %d/%d", round, rec.Row, w[2].Int(), w[3].Int())
			}
		}
		for _, ti := range e.indexSet() {
			if err := ti.idx.VerifyInvariants(); err != nil {
				t.Fatalf("round %d: index %q: %v", round, ti.name, err)
			}
		}
	}

	const rounds, keySpace = 12, 60
	for round := 0; round < rounds; round++ {
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			id := int64(rng.Intn(keySpace))
			r := orderRow(id, testRegions[rng.Intn(len(testRegions))], int64(rng.Intn(3)), int64(rng.Intn(1000)))
			if err := e.UpsertRows(0, r); err != nil {
				t.Fatal(err)
			}
			shadow[id] = r
		}
		if err := e.Groom(); err != nil {
			t.Fatal(err)
		}
		switch round % 3 {
		case 1:
			if _, err := e.PostGroom(); err != nil {
				t.Fatal(err)
			}
			if err := e.SyncIndex(); err != nil {
				t.Fatal(err)
			}
		case 2:
			for _, ti := range e.indexSet() {
				if _, err := ti.idx.MaintainOnce(); err != nil {
					t.Fatal(err)
				}
			}
		}
		verify(round)
	}
}

// TestCreateIndexBackfill builds secondaries online after the table
// already holds data in every zone and checks they answer like the
// pipeline-maintained ones.
func TestCreateIndexBackfill(t *testing.T) {
	e := newOrdersEngine(t, func(cfg *Config) { cfg.Secondaries = nil })
	rng := rand.New(rand.NewSource(7))
	shadow := shadowOrders{}
	for round := 0; round < 6; round++ {
		for i := 0; i < 30; i++ {
			id := int64(rng.Intn(50))
			r := orderRow(id, testRegions[rng.Intn(len(testRegions))], int64(rng.Intn(3)), int64(rng.Intn(1000)))
			if err := e.UpsertRows(0, r); err != nil {
				t.Fatal(err)
			}
			shadow[id] = r
		}
		if err := e.Groom(); err != nil {
			t.Fatal(err)
		}
		if round == 2 {
			// Leave rounds 3..5 pending so the backfill covers both the
			// post-groomed and the groomed zone.
			if _, err := e.PostGroom(); err != nil {
				t.Fatal(err)
			}
			if err := e.SyncIndex(); err != nil {
				t.Fatal(err)
			}
		}
	}

	if err := e.CreateIndex(byRegion()); err != nil {
		t.Fatal(err)
	}
	// Identical redeclaration is idempotent (sharded retry path); a
	// conflicting one is rejected.
	if err := e.CreateIndex(byRegion()); err != nil {
		t.Fatalf("idempotent CreateIndex failed: %v", err)
	}
	if names := e.SecondaryNames(); len(names) != 1 {
		t.Fatalf("idempotent CreateIndex duplicated the index: %v", names)
	}
	conflict := byRegion()
	conflict.Equality = []string{"status"}
	if err := e.CreateIndex(conflict); err == nil {
		t.Fatal("conflicting CreateIndex succeeded")
	}
	for _, region := range testRegions {
		recs, err := e.ScanOn("by_region", []keyenc.Value{keyenc.Str(region)}, nil, nil, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, "backfilled "+region, recordsToMap(t, recs), shadow.byRegion(region))
	}

	// The new index must be maintained from here on.
	if err := e.UpsertRows(0, orderRow(999, "amer", 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	shadow[999] = orderRow(999, "amer", 0, 1)
	recs, err := e.ScanOn("by_region", []keyenc.Value{keyenc.Str("amer")}, nil, nil, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "post-create groom", recordsToMap(t, recs), shadow.byRegion("amer"))
}

// TestSecondaryRecovery restores the full index set — declared and
// online-created secondaries — from shared storage alone.
func TestSecondaryRecovery(t *testing.T) {
	store := storage.NewMemStore(storage.LatencyModel{})
	cfg := Config{
		Table:       ordersTestTable(),
		Index:       ordersPrimary(),
		Secondaries: []SecondaryIndexSpec{byRegion()},
		Store:       store,
	}
	cfg.IndexTuning.BlockSize = 1024
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	shadow := shadowOrders{}
	ingest := func(n int) {
		for i := 0; i < n; i++ {
			id := int64(rng.Intn(40))
			r := orderRow(id, testRegions[rng.Intn(len(testRegions))], int64(rng.Intn(3)), int64(rng.Intn(1000)))
			if err := e.UpsertRows(0, r); err != nil {
				t.Fatal(err)
			}
			shadow[id] = r
		}
		if err := e.Groom(); err != nil {
			t.Fatal(err)
		}
	}
	ingest(40)
	ingest(40)
	if _, err := e.PostGroom(); err != nil {
		t.Fatal(err)
	}
	if err := e.SyncIndex(); err != nil {
		t.Fatal(err)
	}
	// Online-created second secondary, then more groomed-but-not-post-
	// groomed data so recovery sees every zone populated.
	if err := e.CreateIndex(byStatusAmount()); err != nil {
		t.Fatal(err)
	}
	ingest(40)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen WITHOUT declaring any secondary: the catalog restores both.
	cfg2 := cfg
	cfg2.Secondaries = nil
	e, err = NewEngine(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	names := e.SecondaryNames()
	if len(names) != 2 || names[0] != "by_region" || names[1] != "by_status_amount" {
		t.Fatalf("recovered secondaries = %v", names)
	}
	for _, region := range testRegions {
		recs, err := e.ScanOn("by_region", []keyenc.Value{keyenc.Str(region)}, nil, nil, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, "recovered "+region, recordsToMap(t, recs), shadow.byRegion(region))
	}
	for status := int64(0); status < 3; status++ {
		recs, err := e.ScanOn("by_status_amount", []keyenc.Value{keyenc.I64(status)}, nil, nil, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, "recovered status", recordsToMap(t, recs), shadow.byStatusAmount(status, 0, 1<<31))
	}
	for _, ti := range e.indexSet() {
		if err := ti.idx.VerifyInvariants(); err != nil {
			t.Fatalf("index %q after recovery: %v", ti.name, err)
		}
	}

	// A conflicting redeclaration must be rejected.
	bad := cfg
	bad.Secondaries = []SecondaryIndexSpec{{
		Name:      "by_region",
		IndexSpec: IndexSpec{Equality: []string{"status"}},
	}}
	if _, err := NewEngine(bad); err == nil {
		t.Fatal("conflicting secondary spec accepted on recovery")
	}
}

// TestRecoveryAfterFullReclamation pins the groom clock across a
// quiescent restart: when every groomed block has been consumed and
// deleted, the block listing alone says nothing about the clock, and a
// reset would let new grooms reuse block IDs and beginTS ranges below
// already-post-groomed versions — updates would silently lose
// newest-version reconciliation.
func TestRecoveryAfterFullReclamation(t *testing.T) {
	store := storage.NewMemStore(storage.LatencyModel{})
	cfg := Config{
		Table: ordersTestTable(),
		Index: ordersPrimary(),
		Store: store,
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := e.UpsertRows(0, orderRow(i, "amer", 0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PostGroom(); err != nil {
		t.Fatal(err)
	}
	if err := e.SyncIndex(); err != nil {
		t.Fatal(err) // every groomed block is now consumed and reclaimed
	}
	oldCycle := e.groomCycle.Load()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e, err = NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if got := e.groomCycle.Load(); got < oldCycle {
		t.Fatalf("groom clock ran backwards across recovery: %d < %d", got, oldCycle)
	}
	if err := e.UpsertRows(0, orderRow(5, "emea", 1, 9999)); err != nil {
		t.Fatal(err)
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	rec, found, err := e.Get([]keyenc.Value{keyenc.I64(5)}, nil, QueryOptions{})
	if err != nil || !found {
		t.Fatalf("Get(5) after regroom: found=%v err=%v", found, err)
	}
	if rec.Row[3].Int() != 9999 {
		t.Fatalf("Get(5) = amount %d, want the post-restart update (9999)", rec.Row[3].Int())
	}
}

// TestSecondaryLimitedScanWidens pins the over-fetch/rescan behavior of
// limited secondary scans: when stale entries outnumber the over-fetch
// headroom (4x the limit), the scan must widen and still find the
// matching rows instead of returning short.
func TestSecondaryLimitedScanWidens(t *testing.T) {
	e := newOrdersEngine(t, nil)
	for i := int64(0); i < 40; i++ {
		if err := e.UpsertRows(0, orderRow(i, "amer", 0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	// Move ids 0..35 out of amer: their by_region entries under "amer"
	// are now stale, and they sort before the four ids still there.
	for i := int64(0); i < 36; i++ {
		if err := e.UpsertRows(0, orderRow(i, "emea", 1, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	recs, err := e.ScanOn("by_region", []keyenc.Value{keyenc.Str("amer")}, nil, nil, QueryOptions{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Row[0].Int() != 36 || recs[1].Row[0].Int() != 37 {
		t.Fatalf("limited scan after heavy staleness = %v, want ids 36,37", recs)
	}
	rec, found, err := e.GetOn("by_region", []keyenc.Value{keyenc.Str("amer")}, nil, QueryOptions{})
	if err != nil || !found || rec.Row[0].Int() != 36 {
		t.Fatalf("GetOn after heavy staleness: found=%v rec=%v err=%v, want id 36", found, rec.Row, err)
	}
}

// TestSecondarySpecValidation exercises the declaration rules.
func TestSecondarySpecValidation(t *testing.T) {
	tbl := ordersTestTable()
	cases := []struct {
		name string
		spec SecondaryIndexSpec
	}{
		{"empty name", SecondaryIndexSpec{IndexSpec: IndexSpec{Equality: []string{"region"}}}},
		{"slash in name", SecondaryIndexSpec{Name: "a/b", IndexSpec: IndexSpec{Equality: []string{"region"}}}},
		{"no key columns", SecondaryIndexSpec{Name: "x", IndexSpec: IndexSpec{Included: []string{"region"}}}},
		{"unknown column", SecondaryIndexSpec{Name: "x", IndexSpec: IndexSpec{Equality: []string{"ghost"}}}},
		{"duplicate column", SecondaryIndexSpec{Name: "x", IndexSpec: IndexSpec{Equality: []string{"region"}, Sort: []string{"region"}}}},
		{"pk as included", SecondaryIndexSpec{Name: "x", IndexSpec: IndexSpec{Equality: []string{"region"}, Included: []string{"id"}}}},
	}
	for _, c := range cases {
		if err := c.spec.Validate(tbl); err == nil {
			t.Errorf("%s: validation passed", c.name)
		}
	}
	ok := SecondaryIndexSpec{Name: "ok", IndexSpec: IndexSpec{Equality: []string{"region"}, Sort: []string{"amount"}, Included: []string{"status"}}}
	if err := ok.Validate(tbl); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestExecuteIndexSelection checks the executor's access-path rule: an
// index-served plan must produce exactly the zone-scan result, covered
// or not, with updates shadowing correctly and live records unioned in.
func TestExecuteIndexSelection(t *testing.T) {
	e := newOrdersEngine(t, nil)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		r := orderRow(int64(i), testRegions[rng.Intn(len(testRegions))], int64(rng.Intn(3)), int64(rng.Intn(1000)))
		if err := e.UpsertRows(0, r); err != nil {
			t.Fatal(err)
		}
		if i%60 == 59 {
			if err := e.Groom(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PostGroom(); err != nil {
		t.Fatal(err)
	}
	if err := e.SyncIndex(); err != nil {
		t.Fatal(err)
	}
	// Move a few rows across regions, and leave some live records.
	for i := 0; i < 20; i++ {
		if err := e.UpsertRows(0, orderRow(int64(i), "apac", 2, 5000+int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	if err := e.UpsertRows(0, orderRow(500, "apac", 2, 9999)); err != nil {
		t.Fatal(err) // stays live
	}

	plans := []exec.Plan{
		// Covered aggregate through by_region (region, id, amount).
		{Filter: exec.Eq("region", keyenc.Str("apac")),
			Aggs: []exec.Agg{{Func: exec.Count}, {Func: exec.Sum, Col: "amount"}}},
		// Non-covered row query through by_region (projects status).
		{Filter: exec.Eq("region", keyenc.Str("emea")),
			Columns: []string{"id", "status", "amount"}},
		// Range through by_status_amount: status pinned, amount bounded.
		{Filter: exec.And(exec.Eq("status", keyenc.I64(2)), exec.Ge("amount", keyenc.I64(400)), exec.Lt("amount", keyenc.I64(900))),
			Aggs: []exec.Agg{{Func: exec.Count}, {Func: exec.Min, Col: "amount"}, {Func: exec.Max, Col: "amount"}}},
		// Disjunction: must fall back to the scan on both sides.
		{Filter: exec.Or(exec.Eq("region", keyenc.Str("amer")), exec.Eq("status", keyenc.I64(1))),
			Aggs: []exec.Agg{{Func: exec.Count}}},
	}
	for _, includeLive := range []bool{false, true} {
		for pi, p := range plans {
			got, err := e.Execute(p, QueryOptions{IncludeLive: includeLive})
			if err != nil {
				t.Fatal(err)
			}
			want, err := e.Execute(p, QueryOptions{IncludeLive: includeLive, NoIndexSelection: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Rows) != len(want.Rows) {
				t.Fatalf("plan %d live=%v: %d rows via index, %d via scan", pi, includeLive, len(got.Rows), len(want.Rows))
			}
			for i := range want.Rows {
				for c := range want.Rows[i] {
					if keyenc.Compare(got.Rows[i][c], want.Rows[i][c]) != 0 {
						t.Fatalf("plan %d live=%v row %d col %d: index %v vs scan %v", pi, includeLive, i, c, got.Rows[i][c], want.Rows[i][c])
					}
				}
			}
		}
	}
}

// TestExecuteIndexPlanTooBroadFallsBack drives the candidate-cap guard:
// an equality value behind more candidates than indexPlanCandidateCap
// must revert to the zone scan and still produce the right answer.
func TestExecuteIndexPlanTooBroadFallsBack(t *testing.T) {
	e := newOrdersEngine(t, nil)
	n := int64(indexPlanCandidateCap + 500)
	for i := int64(0); i < n; i++ {
		if err := e.UpsertRows(0, orderRow(i, "amer", 0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	p := exec.Plan{
		Filter: exec.Eq("region", keyenc.Str("amer")),
		Aggs:   []exec.Agg{{Func: exec.Count}, {Func: exec.Sum, Col: "amount"}},
	}
	res, err := e.Execute(p, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != n || res.Rows[0][1].Int() != n*(n-1)/2 {
		t.Fatalf("broad plan = %v, want count %d sum %d", res.Rows[0], n, n*(n-1)/2)
	}
}

// TestShardedSecondaryQueries checks scatter + merge and pinned routing
// of secondary queries across shards, and sharded Execute parity.
func TestShardedSecondaryQueries(t *testing.T) {
	cfg := ShardedConfig{
		Table:       ordersTestTable(),
		Index:       ordersPrimary(),
		Secondaries: []SecondaryIndexSpec{byRegion(), byStatusAmount()},
		Shards:      4,
		Store:       storage.NewMemStore(storage.LatencyModel{}),
	}
	cfg.IndexTuning.BlockSize = 1024
	s, err := NewShardedEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(21))
	shadow := shadowOrders{}
	for round := 0; round < 4; round++ {
		for i := 0; i < 120; i++ {
			id := int64(rng.Intn(300))
			r := orderRow(id, testRegions[rng.Intn(len(testRegions))], int64(rng.Intn(3)), int64(rng.Intn(1000)))
			if err := s.UpsertRows(0, r); err != nil {
				t.Fatal(err)
			}
			shadow[id] = r
		}
		if err := s.Groom(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PostGroom(); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncIndex(); err != nil {
		t.Fatal(err)
	}

	for _, region := range testRegions {
		recs, err := s.ScanOn("by_region", []keyenc.Value{keyenc.Str(region)}, nil, nil, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, "sharded "+region, recordsToMap(t, recs), shadow.byRegion(region))
		// Ordered by effective key (region pinned, then id): verify ids
		// ascend, which also exercises the k-way merge.
		for i := 1; i < len(recs); i++ {
			if recs[i].Row[0].Int() <= recs[i-1].Row[0].Int() {
				t.Fatalf("sharded %s: merge order broken at %d", region, i)
			}
		}
		// Limit pushdown through the merge.
		limited, err := s.ScanOn("by_region", []keyenc.Value{keyenc.Str(region)}, nil, nil, QueryOptions{Limit: 5})
		if err != nil {
			t.Fatal(err)
		}
		wantLen := len(recs)
		if wantLen > 5 {
			wantLen = 5
		}
		if len(limited) != wantLen {
			t.Fatalf("sharded %s limit: %d rows, want %d", region, len(limited), wantLen)
		}
		for i := range limited {
			if limited[i].Row[0].Int() != recs[i].Row[0].Int() {
				t.Fatalf("sharded %s limit: row %d differs from unlimited prefix", region, i)
			}
		}
	}

	// Covered index-only scatter scan.
	rows, err := s.IndexOnlyScanOn("by_region", []keyenc.Value{keyenc.Str("amer")}, nil, nil, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := shadow.byRegion("amer")
	if len(rows) != len(want) {
		t.Fatalf("sharded covered: %d rows, want %d", len(rows), len(want))
	}

	// Sharded Execute with index selection vs forced scan.
	p := exec.Plan{
		Filter:  exec.Eq("region", keyenc.Str("emea")),
		GroupBy: []string{"status"},
		Aggs:    []exec.Agg{{Func: exec.Count}, {Func: exec.Sum, Col: "amount"}},
	}
	got, err := s.Execute(p, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := s.Execute(p, QueryOptions{NoIndexSelection: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(wantRes.Rows) {
		t.Fatalf("sharded execute: %d groups via index, %d via scan", len(got.Rows), len(wantRes.Rows))
	}
	for i := range wantRes.Rows {
		for c := range wantRes.Rows[i] {
			if keyenc.Compare(got.Rows[i][c], wantRes.Rows[i][c]) != 0 {
				t.Fatalf("sharded execute row %d col %d: %v vs %v", i, c, got.Rows[i][c], wantRes.Rows[i][c])
			}
		}
	}

	// Online CreateIndex across shards, pinnable by the sharding key.
	byID := SecondaryIndexSpec{
		Name:      "by_id_amount",
		IndexSpec: IndexSpec{Equality: []string{"id"}, Sort: []string{"amount"}},
	}
	if err := s.CreateIndex(byID); err != nil {
		t.Fatal(err)
	}
	ti, err := s.secondaryMeta("by_id_amount")
	if err != nil {
		t.Fatal(err)
	}
	for id, w := range shadow {
		if rng.Intn(20) != 0 {
			continue
		}
		if _, ok := s.pinSecondary(ti, []keyenc.Value{keyenc.I64(id)}); !ok {
			t.Fatal("by_id_amount query did not pin despite the sharding key being bound")
		}
		rec, found, err := s.GetOn("by_id_amount", []keyenc.Value{keyenc.I64(id)}, nil, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !found || rec.Row[3].Int() != w[3].Int() {
			t.Fatalf("pinned GetOn(id=%d): found=%v row=%v, want amount %d", id, found, rec.Row, w[3].Int())
		}
	}
}
