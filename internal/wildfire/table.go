// Package wildfire implements the HTAP engine substrate Umzi lives in
// (§2.1 of the paper): the live zone with transaction side-logs and
// committed logs, the groomer that migrates committed data into columnar
// groomed blocks with monotonic beginTS, the post-groomer that resolves
// endTS/prevRID and re-organizes data by partition key, and the indexer
// daemon that keeps the Umzi index in sync through build and evolve
// operations coordinated by post-groom sequence numbers (Figure 5).
//
// The engine models a single table shard — the basic unit of grooming,
// post-grooming and indexing (§2.1, §3) — with a configurable number of
// multi-master shard replicas, each with its own committed log.
package wildfire

import (
	"fmt"

	"umzi/internal/columnar"
	"umzi/internal/keyenc"
	"umzi/internal/types"
)

// TableColumn describes one table column; it is the columnar package's
// column descriptor, aliased so engine users need not import it.
type TableColumn = columnar.Column

// TableDef defines a Wildfire table: user columns, a primary key, a
// sharding key that is a subset of the primary key (used to route
// transactions), and an optional partition key used by the post-groomer
// to organize data for analytics (§2.1).
type TableDef struct {
	Name         string
	Columns      []columnar.Column
	PrimaryKey   []string
	ShardKey     []string
	PartitionKey string // empty: no analytic partitioning
}

// Hidden column names added to every table (§2.1): beginTS tracks when a
// record version was ingested, endTS when it was replaced, prevRID the
// location of the previous version of the same key.
const (
	ColBeginTS = "_beginTS"
	ColEndTS   = "_endTS"
	ColPrevRID = "_prevRID"
)

// Validate checks the definition for consistency.
func (t TableDef) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("wildfire: table needs a name")
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("wildfire: table %s has no columns", t.Name)
	}
	cols := map[string]bool{}
	for _, c := range t.Columns {
		if c.Name == "" {
			return fmt.Errorf("wildfire: empty column name in %s", t.Name)
		}
		if c.Name[0] == '_' {
			return fmt.Errorf("wildfire: column %q: names starting with _ are reserved for hidden columns", c.Name)
		}
		if cols[c.Name] {
			return fmt.Errorf("wildfire: duplicate column %q", c.Name)
		}
		cols[c.Name] = true
	}
	if len(t.PrimaryKey) == 0 {
		return fmt.Errorf("wildfire: table %s needs a primary key (all writes are upserts on it)", t.Name)
	}
	pk := map[string]bool{}
	for _, k := range t.PrimaryKey {
		if !cols[k] {
			return fmt.Errorf("wildfire: primary key column %q not in table", k)
		}
		if pk[k] {
			return fmt.Errorf("wildfire: duplicate primary key column %q", k)
		}
		pk[k] = true
	}
	for _, k := range t.ShardKey {
		if !pk[k] {
			return fmt.Errorf("wildfire: shard key column %q must be part of the primary key", k)
		}
	}
	if t.PartitionKey != "" && !cols[t.PartitionKey] {
		return fmt.Errorf("wildfire: partition key column %q not in table", t.PartitionKey)
	}
	return nil
}

// colIndex returns the ordinal of a named user column.
func (t TableDef) colIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// blockSchema returns the columnar schema of groomed and post-groomed
// blocks: the user columns followed by the three hidden columns.
func (t TableDef) blockSchema() (*columnar.Schema, error) {
	cols := append([]columnar.Column(nil), t.Columns...)
	cols = append(cols,
		columnar.Column{Name: ColBeginTS, Kind: keyenc.KindUint64},
		columnar.Column{Name: ColEndTS, Kind: keyenc.KindUint64},
		columnar.Column{Name: ColPrevRID, Kind: keyenc.KindBytes},
	)
	return columnar.NewSchema(cols...)
}

// Row is one table row: values aligned with TableDef.Columns.
type Row []keyenc.Value

// ValidateRow checks arity and kinds against the table definition; the
// DB layer validates staged rows eagerly with it.
func ValidateRow(t TableDef, r Row) error { return t.validateRow(r) }

// validateRow checks arity and kinds against the table definition.
func (t TableDef) validateRow(r Row) error {
	if len(r) != len(t.Columns) {
		return fmt.Errorf("wildfire: row has %d values, table %s has %d columns", len(r), t.Name, len(t.Columns))
	}
	for i, v := range r {
		want := t.Columns[i].Kind
		got := v.Kind()
		ok := got == want ||
			(want == keyenc.KindBytes && got == keyenc.KindString) ||
			(want == keyenc.KindString && got == keyenc.KindBytes)
		if !ok {
			return fmt.Errorf("wildfire: column %q: value kind %v, want %v", t.Columns[i].Name, got, want)
		}
	}
	return nil
}

// pkValues extracts the primary-key values of a row in PK declaration
// order.
func (t TableDef) pkValues(r Row) []keyenc.Value {
	out := make([]keyenc.Value, len(t.PrimaryKey))
	for i, k := range t.PrimaryKey {
		out[i] = r[t.colIndex(k)]
	}
	return out
}

// pkEncoding is the canonical byte encoding of a row's primary key; the
// groomer and post-groomer use it to group versions of the same key.
func (t TableDef) pkEncoding(r Row) string {
	return string(keyenc.AppendComposite(nil, t.pkValues(r)...))
}

// IndexSpec selects the index key layout over a table (§4.1). Because the
// engine uses Umzi as the primary index, the equality and sort columns
// together must equal the primary key.
type IndexSpec struct {
	Equality []string
	Sort     []string
	Included []string
	HashBits uint8
}

// Validate checks the spec against a table definition.
func (s IndexSpec) Validate(t TableDef) error {
	pk := map[string]bool{}
	for _, k := range t.PrimaryKey {
		pk[k] = true
	}
	keyCols := map[string]bool{}
	for _, group := range [][]string{s.Equality, s.Sort} {
		for _, c := range group {
			if t.colIndex(c) < 0 {
				return fmt.Errorf("wildfire: index column %q not in table", c)
			}
			if keyCols[c] {
				return fmt.Errorf("wildfire: duplicate index key column %q", c)
			}
			keyCols[c] = true
			if !pk[c] {
				return fmt.Errorf("wildfire: index key column %q outside the primary key (Umzi serves as the primary index)", c)
			}
		}
	}
	if len(keyCols) != len(t.PrimaryKey) {
		return fmt.Errorf("wildfire: index key columns must cover the whole primary key (%v)", t.PrimaryKey)
	}
	for _, c := range s.Included {
		if t.colIndex(c) < 0 {
			return fmt.Errorf("wildfire: included column %q not in table", c)
		}
		if keyCols[c] {
			return fmt.Errorf("wildfire: included column %q already a key column", c)
		}
	}
	return nil
}

// rid formats used by engine storage objects.
func groomedBlockName(table string, id uint64) string {
	return fmt.Sprintf("tbl/%s/groomed/block-%012d", table, id)
}

func postBlockName(table string, id uint64) string {
	return fmt.Sprintf("tbl/%s/post/block-%012d", table, id)
}

func psnMetaName(table string, psn types.PSN) string {
	return fmt.Sprintf("tbl/%s/psn/%012d", table, psn)
}

func endTSName(table string, psn types.PSN) string {
	return fmt.Sprintf("tbl/%s/endts/%012d", table, psn)
}
