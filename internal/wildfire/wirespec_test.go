package wildfire

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"umzi/internal/exec"
	"umzi/internal/keyenc"
	"umzi/internal/types"
	"umzi/internal/wire"
)

// randSpecValue draws a filter constant, biased toward the edge cases
// the value codec must carry exactly.
func randSpecValue(rng *rand.Rand) keyenc.Value {
	switch rng.Intn(7) {
	case 0:
		return keyenc.I64([]int64{0, -1, math.MinInt64, math.MaxInt64, rng.Int63()}[rng.Intn(5)])
	case 1:
		return keyenc.U64(rng.Uint64())
	case 2:
		return keyenc.F64([]float64{0, -0.0, 3.5, math.Inf(-1), -1e300}[rng.Intn(5)])
	case 3:
		return keyenc.B(rng.Intn(2) == 0)
	case 4:
		return keyenc.Str("")
	case 5:
		b := make([]byte, rng.Intn(20))
		rng.Read(b)
		return keyenc.Raw(b)
	default:
		return keyenc.Str([]string{"a", "pad", "zzz", "col värde"}[rng.Intn(4)])
	}
}

// randExpr grows a filter tree of bounded depth using only the
// builder-exposed constructors (Cmp through Or), so every generated
// tree is one a client program could have written.
func randExpr(rng *rand.Rand, depth int) exec.Expr {
	cols := []string{"k", "v", "w", "region"}
	if depth >= 4 || rng.Intn(3) > 0 {
		col := cols[rng.Intn(len(cols))]
		op := exec.CmpOp(rng.Intn(6)) // OpEq..OpGe
		return exec.Cmp(col, op, randSpecValue(rng))
	}
	n := 1 + rng.Intn(4)
	kids := make([]exec.Expr, n)
	for i := range kids {
		kids[i] = randExpr(rng, depth+1)
	}
	if rng.Intn(2) == 0 {
		return exec.And(kids...)
	}
	return exec.Or(kids...)
}

func randStrings(rng *rand.Rand, pool []string) []string {
	if rng.Intn(2) == 0 {
		return nil
	}
	n := 1 + rng.Intn(len(pool))
	out := make([]string, 0, n)
	for _, s := range pool[:n] {
		out = append(out, s)
	}
	return out
}

// randQuerySpec draws one spec covering every builder-expressible
// shape: row queries with projections and ordering, aggregates with
// grouping, forced indexes, snapshot pins, and live unions.
func randQuerySpec(rng *rand.Rand) QuerySpec {
	spec := QuerySpec{
		IncludeLive:      rng.Intn(2) == 0,
		NoIndexSelection: rng.Intn(3) == 0,
	}
	if rng.Intn(2) == 0 {
		spec.Filter = randExpr(rng, 0)
	}
	if rng.Intn(3) == 0 {
		spec.TS = types.TS(rng.Uint64() >> 1)
	}
	if rng.Intn(2) == 0 {
		spec.Limit = rng.Intn(1 << 20)
	}
	if rng.Intn(4) == 0 {
		spec.Via = []string{"", "by_region", "idx2"}[rng.Intn(3)]
		spec.ViaSet = true
	}
	if rng.Intn(3) == 0 { // aggregate query
		spec.GroupBy = randStrings(rng, []string{"region", "w"})
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			spec.Aggs = append(spec.Aggs, exec.Agg{
				Func: exec.AggFunc(rng.Intn(5)), // Count..Avg
				Col:  []string{"", "v", "k"}[rng.Intn(3)],
				As:   []string{"", "out", "total"}[rng.Intn(3)],
			})
		}
	} else { // row query
		spec.Columns = randStrings(rng, []string{"k", "v", "region"})
		spec.OrderBy = randStrings(rng, []string{"k", "v"})
	}
	return spec
}

// TestQuerySpecRoundTrip is the codec property behind remote queries:
// every builder-expressible spec survives marshal → unmarshal with its
// meaning intact, witnessed two ways — re-marshaling the decoded spec
// yields the identical bytes, and every non-filter field compares deep
// equal (filters compare through their encoding, since unmarshal
// rebuilds them through the constructors).
func TestQuerySpecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		spec := randQuerySpec(rng)
		b, err := MarshalQuerySpec(spec)
		if err != nil {
			t.Fatalf("iter %d: marshal: %v", i, err)
		}
		got, err := UnmarshalQuerySpec(b)
		if err != nil {
			t.Fatalf("iter %d: unmarshal %+v: %v", i, spec, err)
		}
		b2, err := MarshalQuerySpec(got)
		if err != nil {
			t.Fatalf("iter %d: re-marshal: %v", i, err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("iter %d: re-marshal differs for %+v:\n  %x\n  %x", i, spec, b, b2)
		}

		want := spec
		want.Filter, got.Filter = nil, nil
		// The codec normalizes empty-but-allocated slices to nil.
		normalize := func(s *QuerySpec) {
			if len(s.Columns) == 0 {
				s.Columns = nil
			}
			if len(s.OrderBy) == 0 {
				s.OrderBy = nil
			}
			if len(s.GroupBy) == 0 {
				s.GroupBy = nil
			}
			if len(s.Aggs) == 0 {
				s.Aggs = nil
			}
		}
		normalize(&want)
		normalize(&got)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("iter %d: fields changed:\n want %+v\n  got %+v", i, want, got)
		}
	}
}

func TestQuerySpecTraceDropped(t *testing.T) {
	// Explain traces are process-local handles; they must not affect the
	// wire form, and the decoded spec must not carry one.
	a, err := MarshalQuerySpec(QuerySpec{Limit: 7})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := UnmarshalQuerySpec(a)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Trace != nil {
		t.Fatal("decoded spec carries a trace")
	}
}

func TestQuerySpecVersionRejected(t *testing.T) {
	b, err := MarshalQuerySpec(QuerySpec{})
	if err != nil {
		t.Fatal(err)
	}
	b[0] = 99
	if _, err := UnmarshalQuerySpec(b); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestQuerySpecTrailingBytesRejected(t *testing.T) {
	b, err := MarshalQuerySpec(QuerySpec{Filter: exec.Eq("k", keyenc.I64(1))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalQuerySpec(append(b, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestQuerySpecDepthCapBothWays(t *testing.T) {
	deep := exec.Expr(exec.Eq("k", keyenc.I64(1)))
	for i := 0; i < exprMaxDepth+1; i++ {
		deep = exec.And(deep)
	}
	if _, err := MarshalQuerySpec(QuerySpec{Filter: deep}); err == nil {
		t.Fatal("over-deep filter marshaled")
	}
	// Hand-build the same over-deep tree on the wire: nested And nodes
	// of one kid each, ending in a Cmp leaf. Decode must refuse it.
	b := []byte{wireSpecVersion, specFlagFilter}
	b = wire.AppendString(b, "")   // Via
	b = wire.AppendU64(b, 0)       // TS
	b = wire.AppendUvarint(b, 0)   // Limit
	b = wire.AppendStrings(b, nil) // Columns
	b = wire.AppendStrings(b, nil) // OrderBy
	b = wire.AppendStrings(b, nil) // GroupBy
	b = wire.AppendUvarint(b, 0)   // Aggs
	for i := 0; i < exprMaxDepth+2; i++ {
		b = append(b, exprTagAnd)
		b = wire.AppendUvarint(b, 1)
	}
	b = append(b, exprTagCmp)
	b = wire.AppendString(b, "k")
	b = append(b, byte(exec.OpEq))
	var err error
	if b, err = wire.AppendValue(b, keyenc.I64(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalQuerySpec(b); err == nil {
		t.Fatal("over-deep wire filter decoded")
	}
}

func TestQuerySpecUnknownNodeTagRejected(t *testing.T) {
	// A spec whose filter is a single bogus node: unknown tag, exactly.
	hdr := []byte{wireSpecVersion, specFlagFilter}
	hdr = wire.AppendString(hdr, "")
	hdr = wire.AppendU64(hdr, 0)
	hdr = wire.AppendUvarint(hdr, 0)
	hdr = wire.AppendStrings(hdr, nil)
	hdr = wire.AppendStrings(hdr, nil)
	hdr = wire.AppendStrings(hdr, nil)
	hdr = wire.AppendUvarint(hdr, 0)
	hdr = append(hdr, 0x7f) // no such node tag
	if _, err := UnmarshalQuerySpec(hdr); err == nil {
		t.Fatal("unknown filter node tag accepted")
	}
}

func TestQuerySpecGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		if len(b) > 0 {
			b[0] = wireSpecVersion // get past the version gate sometimes
		}
		UnmarshalQuerySpec(b) // must not panic; errors are fine
	}
}
