package wildfire

import (
	"fmt"
	"sort"
	"time"

	"umzi/internal/columnar"
	"umzi/internal/keyenc"
	"umzi/internal/run"
	"umzi/internal/types"
)

// Groom performs one groom operation (§2.1): it merges the committed
// logs of all shard replicas in commit-time order, resolves concurrent
// updates to the same key by last-writer-wins (the later commit gets the
// larger beginTS, so queries reconcile to it), assigns monotonically
// increasing beginTS values whose high part is the groom cycle and low
// part the commit order, writes one columnar groomed block to shared
// storage, and builds an index run over it (§5.2).
//
// It returns the number of records groomed; zero means the live zone was
// empty and no block or run was produced.
func (e *Engine) Groom() error {
	_, err := e.GroomCount()
	return err
}

// GroomCount is Groom returning the number of records groomed.
func (e *Engine) GroomCount() (int, error) {
	if e.closed.Load() {
		return 0, fmt.Errorf("wildfire: engine closed")
	}
	e.groomMu.Lock()
	defer e.groomMu.Unlock()
	start := time.Now()

	// Merge replica logs in time order.
	var recs []logRecord
	for _, r := range e.replicas {
		recs = append(recs, r.drain()...)
	}
	if len(recs) == 0 {
		return 0, nil
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].commitSeq < recs[j].commitSeq })

	// A groom that fails after draining must not lose the records: they
	// are acknowledged (and durable per the sync policy). Requeue them so
	// they stay visible to live reads and a later groom retries; the
	// watermark cannot pass them because their sequences are only marked
	// drained on success.
	groomed := false
	defer func() {
		if !groomed {
			e.replicas[0].requeue(recs)
		}
	}()

	cycle := e.groomCycle.Add(1)
	schema, err := e.table.blockSchema()
	if err != nil {
		return 0, err
	}
	builder := columnar.NewBuilder(schema)
	builder.AddBloom(e.bloomOrdinals()...)
	// One run per index per groom cycle (§5.2, fanned out to the set):
	// every index — primary and secondaries — gets entries for every
	// record of the cycle, so no index ever lags the groomed zone.
	indexes := e.indexSet()
	perIndex := make([][]run.Entry, len(indexes))
	for x := range perIndex {
		perIndex[x] = make([]run.Entry, 0, len(recs))
	}

	for i, rec := range recs {
		if i >= 1<<24 {
			return 0, fmt.Errorf("wildfire: groom cycle exceeds %d records", 1<<24)
		}
		beginTS := types.MakeTS(cycle, uint32(i))
		rid := types.RID{Zone: types.ZoneGroomed, Block: cycle, Offset: uint32(i)}

		// Hidden columns: endTS is unknown (open version) and prevRID is
		// resolved later by the post-groomer (§2.1).
		full := append(append(Row{}, rec.row...),
			keyenc.U64(uint64(beginTS)),
			keyenc.U64(uint64(types.MaxTS)),
			keyenc.Raw(nil),
		)
		if err := builder.Append(full); err != nil {
			return 0, err
		}

		for x, ti := range indexes {
			entry, err := ti.entryForRow(rec.row, beginTS, rid)
			if err != nil {
				return 0, err
			}
			perIndex[x] = append(perIndex[x], entry)
		}
	}

	blk := builder.Build()
	name := groomedBlockName(e.table.Name, cycle)
	if err := e.store.Put(name, blk.Marshal()); err != nil {
		return 0, err
	}
	e.cacheBlock(name, blk)

	// The groomer also builds indexes over the groomed data (§2.1). A
	// failure partway leaves some indexes without the run; recovery
	// re-derives lost runs from the data block (rebuildLostRuns).
	for x, ti := range indexes {
		if err := ti.idx.BuildRun(perIndex[x], types.BlockRange{Min: cycle, Max: cycle}); err != nil {
			return 0, err
		}
	}

	groomed = true
	e.pendingMu.Lock()
	e.pending = append(e.pending, cycle)
	e.pendingMu.Unlock()

	// Publish the new snapshot boundary: all versions of this cycle are
	// now quorum-readable.
	e.lastGroomTS.Store(uint64(types.MakeTS(cycle, 1<<24-1)))

	// The records just became visible at the groomed snapshot: close the
	// commit-ack -> groomed-visibility freshness window of each (replayed
	// rows carry no ack time and are skipped).
	now := time.Now().UnixNano()
	for _, rec := range recs {
		if rec.ack > 0 {
			e.mx.freshness.Observe(now - rec.ack)
		}
	}
	e.mx.groomCycles.Inc()
	e.mx.groomRows.Observe(int64(len(recs)))
	e.mx.groomDuration.ObserveSince(start)

	// The data block and every index run have landed, so the commit log
	// up to this cycle's sequences is consumed: advance the watermark
	// (gaps pin it), persist it, and reclaim wholly-consumed segments.
	seqs := make([]uint64, len(recs))
	for i, rec := range recs {
		seqs[i] = rec.commitSeq
	}
	mark := e.noteGroomedSeqs(seqs)
	if err := e.publishWalMark(mark, cycle); err != nil {
		return len(recs), err
	}
	return len(recs), nil
}

// alignGroomCycle fast-forwards the groom clock to at least cycle
// without writing a block or a run — an empty groom. The sharding layer
// uses it to keep shard snapshot clocks in lockstep: after a groom round
// the shards that had nothing to groom advance to the round's cycle, so
// a cross-shard snapshot timestamp cuts every shard at the same groom
// boundary. Skipped cycle numbers are legal everywhere block IDs appear:
// recovery takes the maximum over existing blocks, and post-groom block
// ranges simply cover IDs that carry no data.
func (e *Engine) alignGroomCycle(cycle uint64) {
	e.groomMu.Lock()
	defer e.groomMu.Unlock()
	if e.groomCycle.Load() >= cycle {
		return
	}
	e.groomCycle.Store(cycle)
	e.lastGroomTS.Store(uint64(types.MakeTS(cycle, 1<<24-1)))
}
