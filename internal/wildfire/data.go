package wildfire

import (
	"context"
	"fmt"

	"umzi/internal/columnar"
	"umzi/internal/keyenc"
	"umzi/internal/types"
)

// Data-block access path: groomed and post-groomed blocks are immutable
// columnar objects in shared storage; the engine reads them through a
// bounded decoded-block cache (the engine-side analogue of the SSD data
// cache of Figure 1, with a byte budget instead of a device size).

// fetchBlock returns the parsed columnar block with the given object
// name, reading through the block cache. Concurrent misses for one name
// collapse into a single storage read and parse (singleflight). The
// context is checked before paying for a shared-storage read, so
// cancelled queries stop at block granularity — the unit of I/O —
// without a partial-parse state to clean up. Blocks already deleted
// from storage but awaiting query-epoch drain are served from the
// retired overlay.
func (e *Engine) fetchBlock(ctx context.Context, name string) (*columnar.Block, error) {
	if blk := e.retiredBlock(name); blk != nil {
		e.mx.blockCacheHits.Inc()
		return blk, nil
	}
	blk, dedup, err := e.blocks.getOrFetch(ctx, name, func() (*columnar.Block, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e.mx.blockFetches.Inc()
		data, err := e.store.Get(name)
		if err != nil {
			return nil, err
		}
		blk, err := columnar.Unmarshal(data)
		if err != nil {
			return nil, fmt.Errorf("wildfire: corrupt block %s: %w", name, err)
		}
		return blk, nil
	})
	if dedup {
		e.mx.blockCacheHits.Inc()
	}
	return blk, err
}

// cacheBlock pre-populates the cache with a block the engine just built
// (groom and post-groom both write the object and keep the decode hot).
func (e *Engine) cacheBlock(name string, blk *columnar.Block) {
	e.blocks.put(name, blk)
}

func (e *Engine) dropCachedBlock(name string) {
	e.blocks.drop(name)
}

// retiredBlock consults the engine's epoch-drain overlay: blocks whose
// storage objects were reclaimed while queries that could still hold
// their RIDs are in flight.
func (e *Engine) retiredBlock(name string) *columnar.Block {
	e.retireMu.Lock()
	blk := e.retiredBlks[name]
	e.retireMu.Unlock()
	return blk
}

// blockPKUnique reports whether every row of the block carries a
// distinct full primary key — the per-block half of the executor's
// fast-path eligibility check — memoizing the verdict on the block's
// cache entry so repeated queries pay for the scan once. An evicted
// block just loses the memo and recomputes on its next decode.
func (e *Engine) blockPKUnique(name string, blk *columnar.Block, pkIdx []int) bool {
	if u, ok := e.blocks.pkUnique(name, blk); ok {
		return u
	}
	u := pkAllDistinct(blk, pkIdx)
	e.blocks.setPKUnique(name, blk, u)
	return u
}

func pkAllDistinct(blk *columnar.Block, pkIdx []int) bool {
	seen := make(map[string]struct{}, blk.NumRows())
	var buf []byte
	for r := 0; r < blk.NumRows(); r++ {
		buf = buf[:0]
		for _, c := range pkIdx {
			buf = keyenc.Append(buf, blk.Value(r, c))
		}
		if _, dup := seen[string(buf)]; dup {
			return false
		}
		seen[string(buf)] = struct{}{}
	}
	return true
}

// bloomOrdinals returns the block-schema ordinals that carry bloom
// filters in groomed and post-groomed blocks: the primary-key columns
// plus every index's equality columns — exactly the columns point
// lookups and selective equality predicates probe by content.
func (e *Engine) bloomOrdinals() []int {
	seen := make(map[int]bool)
	var ords []int
	add := func(name string) {
		if i := e.table.colIndex(name); i >= 0 && !seen[i] {
			seen[i] = true
			ords = append(ords, i)
		}
	}
	for _, k := range e.table.PrimaryKey {
		add(k)
	}
	for _, ti := range e.indexSet() {
		for _, c := range ti.spec.Equality {
			add(c)
		}
	}
	return ords
}

// Record is a fully resolved record version: the user row plus the hidden
// multi-version columns.
type Record struct {
	Row     Row
	BeginTS types.TS
	EndTS   types.TS // MaxTS while the version is current
	PrevRID types.RID
	RID     types.RID
}

// Fetch resolves an RID to its record (§2.1 footnote 2: an RID is the
// combination of zone, block ID and record offset). The endTS overlay
// from post-groom sidecars is applied on the way out.
func (e *Engine) Fetch(rid types.RID) (Record, error) {
	return e.FetchContext(context.Background(), rid)
}

// FetchContext is Fetch honoring a context: a cancelled context stops
// the block fetch before it reaches shared storage.
func (e *Engine) FetchContext(ctx context.Context, rid types.RID) (Record, error) {
	var name string
	switch rid.Zone {
	case types.ZoneGroomed:
		name = groomedBlockName(e.table.Name, rid.Block)
	case types.ZonePostGroomed:
		name = postBlockName(e.table.Name, rid.Block)
	default:
		return Record{}, fmt.Errorf("wildfire: cannot fetch RID %v (live zone has no blocks)", rid)
	}
	blk, err := e.fetchBlock(ctx, name)
	if err != nil {
		return Record{}, err
	}
	if int(rid.Offset) >= blk.NumRows() {
		return Record{}, fmt.Errorf("wildfire: RID %v beyond block size %d", rid, blk.NumRows())
	}
	nUser := len(e.table.Columns)
	row := make(Row, nUser)
	for c := 0; c < nUser; c++ {
		row[c] = blk.Value(int(rid.Offset), c)
	}
	rec := Record{
		Row:     row,
		BeginTS: types.TS(blk.Value(int(rid.Offset), nUser).Uint()),
		EndTS:   types.TS(blk.Value(int(rid.Offset), nUser+1).Uint()),
		RID:     rid,
	}
	if prevEnc := blk.Value(int(rid.Offset), nUser+2).Bytes(); len(prevEnc) == types.RIDSize {
		if prev, err := types.DecodeRID(prevEnc); err == nil {
			rec.PrevRID = prev
		}
	}
	// Apply the endTS sidecar overlay.
	e.endTSMu.Lock()
	if ts, ok := e.endTS[rid]; ok {
		rec.EndTS = ts
	}
	e.endTSMu.Unlock()
	return rec, nil
}
