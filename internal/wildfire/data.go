package wildfire

import (
	"context"
	"fmt"

	"umzi/internal/columnar"
	"umzi/internal/types"
)

// Data-block access path: groomed and post-groomed blocks are immutable
// columnar objects in shared storage; the engine memoizes parsed blocks
// (the engine-side analogue of the SSD data cache of Figure 1).

type blockEntry struct {
	blk *columnar.Block
}

// fetchBlock returns the parsed columnar block with the given object
// name, reading through the block cache. The context is checked before
// paying for a shared-storage read, so cancelled queries stop at block
// granularity — the unit of I/O — without a partial-parse state to
// clean up.
func (e *Engine) fetchBlock(ctx context.Context, name string) (*columnar.Block, error) {
	e.blockMu.Lock()
	if be, ok := e.blockCache[name]; ok {
		e.blockMu.Unlock()
		e.mx.blockCacheHits.Inc()
		return be.blk, nil
	}
	e.blockMu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	e.mx.blockFetches.Inc()
	data, err := e.store.Get(name)
	if err != nil {
		return nil, err
	}
	blk, err := columnar.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("wildfire: corrupt block %s: %w", name, err)
	}
	e.cacheBlock(name, blk)
	return blk, nil
}

func (e *Engine) cacheBlock(name string, blk *columnar.Block) {
	e.blockMu.Lock()
	e.blockCache[name] = &blockEntry{blk: blk}
	e.blockMu.Unlock()
}

func (e *Engine) dropCachedBlock(name string) {
	e.blockMu.Lock()
	delete(e.blockCache, name)
	e.blockMu.Unlock()
}

// Record is a fully resolved record version: the user row plus the hidden
// multi-version columns.
type Record struct {
	Row     Row
	BeginTS types.TS
	EndTS   types.TS // MaxTS while the version is current
	PrevRID types.RID
	RID     types.RID
}

// Fetch resolves an RID to its record (§2.1 footnote 2: an RID is the
// combination of zone, block ID and record offset). The endTS overlay
// from post-groom sidecars is applied on the way out.
func (e *Engine) Fetch(rid types.RID) (Record, error) {
	return e.FetchContext(context.Background(), rid)
}

// FetchContext is Fetch honoring a context: a cancelled context stops
// the block fetch before it reaches shared storage.
func (e *Engine) FetchContext(ctx context.Context, rid types.RID) (Record, error) {
	var name string
	switch rid.Zone {
	case types.ZoneGroomed:
		name = groomedBlockName(e.table.Name, rid.Block)
	case types.ZonePostGroomed:
		name = postBlockName(e.table.Name, rid.Block)
	default:
		return Record{}, fmt.Errorf("wildfire: cannot fetch RID %v (live zone has no blocks)", rid)
	}
	blk, err := e.fetchBlock(ctx, name)
	if err != nil {
		return Record{}, err
	}
	if int(rid.Offset) >= blk.NumRows() {
		return Record{}, fmt.Errorf("wildfire: RID %v beyond block size %d", rid, blk.NumRows())
	}
	nUser := len(e.table.Columns)
	row := make(Row, nUser)
	for c := 0; c < nUser; c++ {
		row[c] = blk.Value(int(rid.Offset), c)
	}
	rec := Record{
		Row:     row,
		BeginTS: types.TS(blk.Value(int(rid.Offset), nUser).Uint()),
		EndTS:   types.TS(blk.Value(int(rid.Offset), nUser+1).Uint()),
		RID:     rid,
	}
	if prevEnc := blk.Value(int(rid.Offset), nUser+2).Bytes(); len(prevEnc) == types.RIDSize {
		if prev, err := types.DecodeRID(prevEnc); err == nil {
			rec.PrevRID = prev
		}
	}
	// Apply the endTS sidecar overlay.
	e.endTSMu.Lock()
	if ts, ok := e.endTS[rid]; ok {
		rec.EndTS = ts
	}
	e.endTSMu.Unlock()
	return rec, nil
}
