package wildfire

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"umzi/internal/columnar"
	"umzi/internal/obs"
)

// BlockCache is the byte-budgeted decoded-block cache: a sharded LRU of
// parsed columnar blocks keyed by storage object name, shared by every
// index of an engine — and, through ShardedConfig, by every shard of a
// table (block names embed the shard, so one budget covers the whole
// table). It replaces the unbounded per-engine memo map: admission
// charges each block its MemSize, eviction walks the LRU tail, and a
// per-shard singleflight collapses N concurrent misses for one block
// into a single storage read and a single columnar.Unmarshal.
//
// The budget is a hard ceiling on occupancy: an insert that cannot fit
// after evicting every unpinned entry is simply not cached (the caller
// still gets the decoded block). Retired blocks — deleted from storage
// but possibly still referenced by in-flight queries — are held outside
// the cache by the engine's epoch-drain queue, so eviction never has to
// distinguish them.

const (
	blockCacheShards = 8

	// DefaultBlockCacheBytes is the per-table decoded-block budget when
	// none is configured.
	DefaultBlockCacheBytes = 256 << 20
)

// blockFetch is one in-flight fetch; waiters block on done.
type blockFetch struct {
	done chan struct{}
	blk  *columnar.Block
	err  error
}

// cacheEntry is one resident block. pkUnique memoizes whether every row
// carries a distinct full primary key (nil: not yet computed); the
// executor's direct-emit fast path consumes it.
type cacheEntry struct {
	name     string
	blk      *columnar.Block
	size     int64
	pkUnique *bool
	elem     *list.Element
}

// blockCacheShard is one lock stripe: its own LRU and singleflight
// table. Byte accounting is global (BlockCache.bytes), so the whole
// budget is usable no matter how names hash across stripes.
type blockCacheShard struct {
	mu       sync.Mutex
	entries  map[string]*cacheEntry
	lru      *list.List // front = most recently used
	inflight map[string]*blockFetch
}

// BlockCache is safe for concurrent use. See the package comment above.
type BlockCache struct {
	budget      int64
	shards      [blockCacheShards]blockCacheShard
	bytes       atomic.Int64 // total occupancy across shards
	entries     atomic.Int64
	evictCursor atomic.Uint64 // round-robin start stripe for evictOne

	// Handles are bound by instrument(); NewBlockCache binds them into a
	// private registry so they are never nil.
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	dedups    *obs.Counter
}

// NewBlockCache creates a cache with the given byte budget (<=0 selects
// DefaultBlockCacheBytes). Admission reserves bytes against the global
// budget atomically, so the summed occupancy can never exceed it.
func NewBlockCache(budget int64) *BlockCache {
	if budget <= 0 {
		budget = DefaultBlockCacheBytes
	}
	c := &BlockCache{budget: budget}
	for i := range c.shards {
		c.shards[i] = blockCacheShard{
			entries:  make(map[string]*cacheEntry),
			lru:      list.New(),
			inflight: make(map[string]*blockFetch),
		}
	}
	c.instrument(nil, "")
	return c
}

// instrument (re)binds the cache's metric handles into a registry under
// the table label. The engine that creates a cache instruments it; a
// cache shared across shards is instrumented once, by the sharded
// layer, under the base table name.
func (c *BlockCache) instrument(reg *obs.Registry, table string) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	l := obs.Labels{"table": table}
	c.hits = reg.Counter("block_cache_hits", "decoded-block lookups served from the bounded cache", l)
	c.misses = reg.Counter("block_cache_misses", "decoded-block lookups that led a storage fetch", l)
	c.evictions = reg.Counter("block_cache_evictions", "decoded blocks evicted to stay under the byte budget", l)
	c.dedups = reg.Counter("block_cache_dedup", "concurrent misses that piggybacked on another query's fetch", l)
	reg.GaugeFunc("block_cache_bytes", "decoded-block bytes resident in the bounded cache", l,
		func() int64 { return c.bytes.Load() })
	reg.GaugeFunc("block_cache_budget_bytes", "configured decoded-block cache byte budget", l,
		func() int64 { return c.budget })
	reg.GaugeFunc("block_cache_blocks", "decoded blocks resident in the bounded cache", l,
		func() int64 { return c.entries.Load() })
}

// BlockCacheStats is a point-in-time snapshot for tooling and tests.
type BlockCacheStats struct {
	Bytes     int64
	Budget    int64
	Blocks    int64
	Hits      int64
	Misses    int64
	Evictions int64
	Dedups    int64
}

// Stats snapshots occupancy and traffic counters.
func (c *BlockCache) Stats() BlockCacheStats {
	return BlockCacheStats{
		Bytes:     c.bytes.Load(),
		Budget:    c.budget,
		Blocks:    c.entries.Load(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Dedups:    c.dedups.Load(),
	}
}

// shard stripes by FNV-1a over the object name.
func (c *BlockCache) shard(name string) *blockCacheShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return &c.shards[h%blockCacheShards]
}

// get returns the cached block, promoting it to most-recently-used.
func (c *BlockCache) get(name string) (*columnar.Block, bool) {
	s := c.shard(name)
	s.mu.Lock()
	e, ok := s.entries[name]
	if ok {
		s.lru.MoveToFront(e.elem)
	}
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	c.hits.Inc()
	return e.blk, true
}

// getOrFetch reads through the cache: a hit returns immediately; a miss
// either joins an in-flight fetch for the same name (dedup) or runs the
// fetch itself and caches the result. dedup reports whether the call
// piggybacked on another fetch — the caller paid no storage read either
// way when dedup is true or the lookup hit.
func (c *BlockCache) getOrFetch(ctx context.Context, name string, fetch func() (*columnar.Block, error)) (blk *columnar.Block, dedup bool, err error) {
	s := c.shard(name)
	for {
		s.mu.Lock()
		if e, ok := s.entries[name]; ok {
			s.lru.MoveToFront(e.elem)
			s.mu.Unlock()
			c.hits.Inc()
			return e.blk, true, nil
		}
		if f, ok := s.inflight[name]; ok {
			s.mu.Unlock()
			select {
			case <-f.done:
				if f.err == nil {
					c.dedups.Inc()
					return f.blk, true, nil
				}
				// The leader failed — possibly only its own context. Retry
				// as leader rather than inheriting a cancellation that is
				// not ours.
				if cerr := ctx.Err(); cerr != nil {
					return nil, false, cerr
				}
				continue
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		f := &blockFetch{done: make(chan struct{})}
		s.inflight[name] = f
		s.mu.Unlock()

		c.misses.Inc()
		f.blk, f.err = fetch()

		// Insert before clearing the inflight marker, so a racing miss in
		// the gap either sees the cached entry or still joins this fetch.
		if f.err == nil {
			c.insert(name, f.blk)
		}
		s.mu.Lock()
		delete(s.inflight, name)
		s.mu.Unlock()
		close(f.done)
		return f.blk, false, f.err
	}
}

// put inserts a freshly built block (groom and post-groom pre-populate
// the cache with the blocks they just wrote).
func (c *BlockCache) put(name string, blk *columnar.Block) {
	c.insert(name, blk)
}

// drop removes the entry if present.
func (c *BlockCache) drop(name string) {
	s := c.shard(name)
	s.mu.Lock()
	if e, ok := s.entries[name]; ok {
		s.removeLocked(c, e)
	}
	s.mu.Unlock()
}

// pkUnique returns the memoized distinct-keys verdict for the named
// block, valid only while the cache still holds this exact decode.
func (c *BlockCache) pkUnique(name string, blk *columnar.Block) (verdict, ok bool) {
	s := c.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, found := s.entries[name]; found && e.blk == blk && e.pkUnique != nil {
		return *e.pkUnique, true
	}
	return false, false
}

// setPKUnique memoizes the distinct-keys verdict on the entry, if the
// cache still holds this exact decode (an evicted block just loses the
// memo and recomputes next time).
func (c *BlockCache) setPKUnique(name string, blk *columnar.Block, verdict bool) {
	s := c.shard(name)
	s.mu.Lock()
	if e, found := s.entries[name]; found && e.blk == blk {
		e.pkUnique = &verdict
	}
	s.mu.Unlock()
}

// insert admits a block under the global byte budget. It reserves the
// block's bytes with a compare-and-swap against the budget — evicting
// LRU tails across stripes while the total cannot take the block — so
// concurrent inserts can never push the summed occupancy past the
// ceiling. A block that does not fit once every stripe is drained is
// simply not cached; the caller still holds the decode.
func (c *BlockCache) insert(name string, blk *columnar.Block) {
	size := int64(blk.MemSize())
	if size > c.budget {
		return
	}
	s := c.shard(name)
	s.mu.Lock()
	if old, ok := s.entries[name]; ok && old.blk == blk {
		s.lru.MoveToFront(old.elem)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	for {
		cur := c.bytes.Load()
		if cur+size <= c.budget {
			if c.bytes.CompareAndSwap(cur, cur+size) {
				break
			}
			continue
		}
		if !c.evictOne() {
			return
		}
	}
	s.mu.Lock()
	if old, ok := s.entries[name]; ok {
		// Raced with another insert of the same name: keep the resident
		// decode and release our reservation.
		s.lru.MoveToFront(old.elem)
		s.mu.Unlock()
		c.bytes.Add(-size)
		return
	}
	e := &cacheEntry{name: name, blk: blk, size: size}
	e.elem = s.lru.PushFront(e)
	s.entries[name] = e
	c.entries.Add(1)
	s.mu.Unlock()
}

// evictOne removes one stripe's LRU tail, starting from a rotating
// cursor so pressure spreads. It reports false when every stripe is
// empty (nothing left to evict).
func (c *BlockCache) evictOne() bool {
	start := c.evictCursor.Add(1)
	for i := uint64(0); i < blockCacheShards; i++ {
		s := &c.shards[(start+i)%blockCacheShards]
		s.mu.Lock()
		if tail := s.lru.Back(); tail != nil {
			s.removeLocked(c, tail.Value.(*cacheEntry))
			s.mu.Unlock()
			c.evictions.Inc()
			return true
		}
		s.mu.Unlock()
	}
	return false
}

func (s *blockCacheShard) removeLocked(c *BlockCache, e *cacheEntry) {
	s.lru.Remove(e.elem)
	delete(s.entries, e.name)
	c.bytes.Add(-e.size)
	c.entries.Add(-1)
}
