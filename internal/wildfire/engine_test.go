package wildfire

import (
	"testing"

	"umzi/internal/columnar"
	"umzi/internal/core"
	"umzi/internal/keyenc"
	"umzi/internal/storage"
	"umzi/internal/types"
)

// iotTable is the paper's motivating IoT example: deviceID as equality /
// sharding column, msg number as sort column, a reading payload, and the
// date as partition key for analytics (§2.1, §4.1).
func iotTable() TableDef {
	return TableDef{
		Name: "sensors",
		Columns: []columnar.Column{
			{Name: "device", Kind: keyenc.KindInt64},
			{Name: "msg", Kind: keyenc.KindInt64},
			{Name: "reading", Kind: keyenc.KindFloat64},
			{Name: "day", Kind: keyenc.KindInt64},
		},
		PrimaryKey:   []string{"device", "msg"},
		ShardKey:     []string{"device"},
		PartitionKey: "day",
	}
}

func iotIndex() IndexSpec {
	return IndexSpec{
		Equality: []string{"device"},
		Sort:     []string{"msg"},
		Included: []string{"reading"},
		HashBits: 6,
	}
}

func newTestEngine(t *testing.T, mutate func(*Config)) *Engine {
	t.Helper()
	cfg := Config{
		Table:    iotTable(),
		Index:    iotIndex(),
		Store:    storage.NewMemStore(storage.LatencyModel{}),
		Replicas: 2,
	}
	cfg.IndexTuning.K = 2
	cfg.IndexTuning.GroomedLevels = 3
	cfg.IndexTuning.PostGroomedLevels = 2
	cfg.IndexTuning.BlockSize = 1024
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func row(device, msg int64, reading float64, day int64) Row {
	return Row{keyenc.I64(device), keyenc.I64(msg), keyenc.F64(reading), keyenc.I64(day)}
}

func key(device, msg int64) ([]keyenc.Value, []keyenc.Value) {
	return []keyenc.Value{keyenc.I64(device)}, []keyenc.Value{keyenc.I64(msg)}
}

func TestTableValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*TableDef)
	}{
		{"no name", func(td *TableDef) { td.Name = "" }},
		{"no columns", func(td *TableDef) { td.Columns = nil }},
		{"no pk", func(td *TableDef) { td.PrimaryKey = nil }},
		{"pk not in table", func(td *TableDef) { td.PrimaryKey = []string{"ghost"} }},
		{"shard key outside pk", func(td *TableDef) { td.ShardKey = []string{"reading"} }},
		{"partition key missing", func(td *TableDef) { td.PartitionKey = "ghost" }},
		{"reserved column", func(td *TableDef) {
			td.Columns = append(td.Columns, columnar.Column{Name: "_sneaky", Kind: keyenc.KindInt64})
		}},
		{"duplicate column", func(td *TableDef) {
			td.Columns = append(td.Columns, columnar.Column{Name: "device", Kind: keyenc.KindInt64})
		}},
	}
	for _, c := range cases {
		td := iotTable()
		c.mutate(&td)
		if err := td.Validate(); err == nil {
			t.Errorf("%s: validation passed", c.name)
		}
	}
	td := iotTable()
	if err := td.Validate(); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
}

func TestIndexSpecValidation(t *testing.T) {
	td := iotTable()
	cases := []struct {
		name string
		spec IndexSpec
	}{
		{"missing pk coverage", IndexSpec{Equality: []string{"device"}}},
		{"non-pk key column", IndexSpec{Equality: []string{"device"}, Sort: []string{"reading"}}},
		{"unknown column", IndexSpec{Equality: []string{"ghost"}, Sort: []string{"msg"}}},
		{"dup key column", IndexSpec{Equality: []string{"device"}, Sort: []string{"device", "msg"}}},
		{"included is key", IndexSpec{Equality: []string{"device"}, Sort: []string{"msg"}, Included: []string{"device"}}},
	}
	for _, c := range cases {
		if err := c.spec.Validate(td); err == nil {
			t.Errorf("%s: validation passed", c.name)
		}
	}
	if err := iotIndex().Validate(td); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestIngestGroomGet(t *testing.T) {
	e := newTestEngine(t, nil)
	if err := e.UpsertRows(0, row(1, 1, 20.5, 100), row(2, 1, 21.0, 100)); err != nil {
		t.Fatal(err)
	}
	if got := e.LiveCount(); got != 2 {
		t.Fatalf("LiveCount = %d, want 2", got)
	}
	n, err := e.GroomCount()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("groomed %d records, want 2", n)
	}
	if got := e.LiveCount(); got != 0 {
		t.Fatalf("LiveCount after groom = %d, want 0", got)
	}
	eq, sortv := key(1, 1)
	rec, found, err := e.Get(eq, sortv, QueryOptions{})
	if err != nil || !found {
		t.Fatal(err, found)
	}
	if rec.Row[2].Float() != 20.5 {
		t.Errorf("reading = %v", rec.Row[2])
	}
	if rec.RID.Zone != types.ZoneGroomed {
		t.Errorf("RID zone = %v, want groomed", rec.RID.Zone)
	}
	if rec.EndTS != types.MaxTS {
		t.Errorf("open version endTS = %v, want MaxTS", rec.EndTS)
	}
	// Missing key.
	eq, sortv = key(9, 9)
	if _, found, _ := e.Get(eq, sortv, QueryOptions{}); found {
		t.Error("found absent key")
	}
}

func TestUpsertIsUpdate(t *testing.T) {
	e := newTestEngine(t, nil)
	if err := e.UpsertRows(0, row(1, 1, 20.0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	ts1 := e.LastGroomTS()
	if err := e.UpsertRows(0, row(1, 1, 25.0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	eq, sortv := key(1, 1)
	rec, found, err := e.Get(eq, sortv, QueryOptions{})
	if err != nil || !found {
		t.Fatal(err, found)
	}
	if rec.Row[2].Float() != 25.0 {
		t.Errorf("newest reading = %v, want 25.0", rec.Row[2])
	}
	// Time travel to the first groom's snapshot.
	old, found, err := e.Get(eq, sortv, QueryOptions{TS: ts1})
	if err != nil || !found {
		t.Fatal(err, found)
	}
	if old.Row[2].Float() != 20.0 {
		t.Errorf("snapshot reading = %v, want 20.0", old.Row[2])
	}
}

func TestLastWriterWinsAcrossReplicas(t *testing.T) {
	e := newTestEngine(t, nil)
	// Concurrent updates to the same key on different replicas: commit
	// order decides (LWW, §2.1).
	if err := e.UpsertRows(0, row(1, 1, 10.0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := e.UpsertRows(1, row(1, 1, 99.0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	eq, sortv := key(1, 1)
	rec, found, err := e.Get(eq, sortv, QueryOptions{})
	if err != nil || !found {
		t.Fatal(err, found)
	}
	if rec.Row[2].Float() != 99.0 {
		t.Errorf("LWW violated: reading = %v, want 99.0 (later commit)", rec.Row[2])
	}
}

func TestTxnLifecycle(t *testing.T) {
	e := newTestEngine(t, nil)
	tx, err := e.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Upsert(row(1, 1, 1.0, 1)); err != nil {
		t.Fatal(err)
	}
	// Uncommitted data is invisible everywhere.
	if e.LiveCount() != 0 {
		t.Error("uncommitted rows visible in live zone")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Error("double commit accepted")
	}
	if err := tx.Upsert(row(1, 2, 1.0, 1)); err == nil {
		t.Error("upsert after commit accepted")
	}

	tx2, _ := e.Begin(0)
	if err := tx2.Upsert(row(2, 1, 2.0, 1)); err != nil {
		t.Fatal(err)
	}
	tx2.Abort()
	if e.LiveCount() != 1 {
		t.Errorf("LiveCount = %d, want 1 (aborted txn discarded)", e.LiveCount())
	}

	if _, err := e.Begin(99); err == nil {
		t.Error("bad replica accepted")
	}
	tx3, _ := e.Begin(0)
	if err := tx3.Upsert(Row{keyenc.I64(1)}); err == nil {
		t.Error("short row accepted")
	}
	if err := tx3.Upsert(Row{keyenc.Str("x"), keyenc.I64(1), keyenc.F64(0), keyenc.I64(0)}); err == nil {
		t.Error("wrong kind accepted")
	}
}

func TestLiveZoneReads(t *testing.T) {
	e := newTestEngine(t, nil)
	if err := e.UpsertRows(0, row(1, 1, 10.0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	// Newer committed-but-ungroomed update.
	if err := e.UpsertRows(0, row(1, 1, 20.0, 100)); err != nil {
		t.Fatal(err)
	}
	eq, sortv := key(1, 1)
	// Default read: groomed snapshot only.
	rec, _, err := e.Get(eq, sortv, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Row[2].Float() != 10.0 {
		t.Errorf("groomed-snapshot read = %v, want 10.0", rec.Row[2])
	}
	// Freshness read sees the live zone.
	rec, _, err = e.Get(eq, sortv, QueryOptions{IncludeLive: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Row[2].Float() != 20.0 {
		t.Errorf("live read = %v, want 20.0", rec.Row[2])
	}
}

func TestScanAndIndexOnlyScan(t *testing.T) {
	e := newTestEngine(t, nil)
	for msg := int64(0); msg < 20; msg++ {
		if err := e.UpsertRows(int(msg)%2, row(7, msg, float64(msg)/2, 100+msg%3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	eq := []keyenc.Value{keyenc.I64(7)}
	recs, err := e.Scan(eq, []keyenc.Value{keyenc.I64(5)}, []keyenc.Value{keyenc.I64(14)}, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("scan returned %d, want 10", len(recs))
	}
	for i, rec := range recs {
		if rec.Row[1].Int() != int64(5+i) {
			t.Errorf("scan[%d] msg = %v, want %d (ordered)", i, rec.Row[1], 5+i)
		}
	}
	// Index-only: reading comes from the included column, no block fetch.
	rows, err := e.IndexOnlyScan(eq, []keyenc.Value{keyenc.I64(5)}, []keyenc.Value{keyenc.I64(14)}, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("index-only scan returned %d, want 10", len(rows))
	}
	for i, r := range rows {
		if r[0].Int() != 7 || r[1].Int() != int64(5+i) || r[2].Float() != float64(5+i)/2 {
			t.Errorf("index-only row %d = %v", i, r)
		}
	}
}

func TestGetBatch(t *testing.T) {
	e := newTestEngine(t, nil)
	for msg := int64(0); msg < 10; msg++ {
		if err := e.UpsertRows(0, row(1, msg, float64(msg), 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Groom(); err != nil {
		t.Fatal(err)
	}
	var keys []core.LookupKey
	for msg := int64(0); msg < 12; msg += 2 { // msgs 10 and beyond miss
		keys = append(keys, core.LookupKey{
			Equality: []keyenc.Value{keyenc.I64(1)},
			Sort:     []keyenc.Value{keyenc.I64(msg)},
		})
	}
	recs, found, err := e.GetBatch(keys, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, msg := range []int64{0, 2, 4, 6, 8, 10} {
		wantFound := msg < 10
		if found[i] != wantFound {
			t.Fatalf("batch[%d] (msg %d): found=%v, want %v", i, msg, found[i], wantFound)
		}
		if found[i] && recs[i].Row[2].Float() != float64(msg) {
			t.Errorf("batch[%d]: reading %v, want %d", i, recs[i].Row[2], msg)
		}
	}
}
